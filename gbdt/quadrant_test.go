package gbdt

import (
	"bytes"
	"testing"
)

// encode serializes a model or fails the test.
func encode(t *testing.T, m *Model) []byte {
	t.Helper()
	enc, err := m.Encode()
	if err != nil {
		t.Fatal(err)
	}
	return enc
}

// TestTrainQuadrantAuto trains with automatic quadrant selection on two
// datasets whose shapes select different quadrants and checks that the
// choice and rationale surface in the report.
func TestTrainQuadrantAuto(t *testing.T) {
	wide, err := Synthetic(SyntheticConfig{N: 600, D: 400, C: 2, InformativeRatio: 0.4, Density: 0.3, Seed: 42})
	if err != nil {
		t.Fatal(err)
	}
	narrow, err := Synthetic(SyntheticConfig{N: 20000, D: 5, C: 2, InformativeRatio: 0.4, Density: 1.0, Seed: 42})
	if err != nil {
		t.Fatal(err)
	}
	train := func(ds *Dataset, layers, splits int) (*Model, *Report) {
		m, r, err := Train(ds, Options{
			Quadrant: QuadrantAuto, Workers: 4, Trees: 2, Layers: layers, Splits: splits,
		})
		if err != nil {
			t.Fatal(err)
		}
		if r.Selection == nil {
			t.Fatal("auto training reported no selection")
		}
		if r.Selection.Advice.Rationale == "" {
			t.Fatal("selection has no rationale")
		}
		if m.NumTrees() != 2 {
			t.Fatalf("trained %d trees, want 2", m.NumTrees())
		}
		return m, r
	}
	_, rWide := train(wide, 6, 16)
	_, rNarrow := train(narrow, 4, 8)
	if rWide.Selection.Quadrant != QD4 {
		t.Fatalf("wide dataset selected %v, want QD4", rWide.Selection.Quadrant)
	}
	if rNarrow.Selection.Quadrant != QD2 {
		t.Fatalf("narrow dataset selected %v, want QD2", rNarrow.Selection.Quadrant)
	}
}

// TestTrainExplicitQuadrant pins Options.Quadrant to the quadrant's
// reference system: the model must be bit-identical to naming the system,
// and no selection is reported.
func TestTrainExplicitQuadrant(t *testing.T) {
	ds, err := Synthetic(SyntheticConfig{N: 800, D: 30, C: 2, InformativeRatio: 0.4, Density: 0.4, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	pairs := map[Quadrant]System{
		QD1: SystemXGBoost,
		QD2: SystemLightGBM,
		QD3: SystemQD3,
		QD4: SystemVero,
	}
	for q, sys := range pairs {
		opts := Options{Workers: 3, Trees: 2, Layers: 5, Splits: 16}
		opts.Quadrant = q
		mq, rq, err := Train(ds, opts)
		if err != nil {
			t.Fatalf("%v: %v", q, err)
		}
		if rq.Selection != nil {
			t.Fatalf("%v: explicit quadrant reported a selection", q)
		}
		opts.Quadrant = 0
		opts.System = sys
		ms, _, err := Train(ds, opts)
		if err != nil {
			t.Fatalf("%s: %v", sys, err)
		}
		if !bytes.Equal(encode(t, mq), encode(t, ms)) {
			t.Fatalf("%v differs from its reference system %s", q, sys)
		}
	}
}

// TestTrainConcurrentBitIdentical pins Options.Concurrent: goroutine
// workers must produce the same bytes as the sequential default, for a
// horizontal and a vertical quadrant.
func TestTrainConcurrentBitIdentical(t *testing.T) {
	ds, err := Synthetic(SyntheticConfig{N: 700, D: 25, C: 3, InformativeRatio: 0.4, Density: 0.4, Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	for _, q := range []Quadrant{QD1, QD4} {
		opts := Options{Quadrant: q, Workers: 3, Trees: 3, Layers: 5, Splits: 16}
		seq, _, err := Train(ds, opts)
		if err != nil {
			t.Fatalf("%v sequential: %v", q, err)
		}
		opts.Concurrent = true
		conc, _, err := Train(ds, opts)
		if err != nil {
			t.Fatalf("%v concurrent: %v", q, err)
		}
		if !bytes.Equal(encode(t, seq), encode(t, conc)) {
			t.Fatalf("%v: concurrent model differs from sequential", q)
		}
	}
}
