package index

import (
	"math/rand"
	"testing"
)

func TestNodeToInstanceInitial(t *testing.T) {
	idx := NewNodeToInstance(5)
	got := idx.Instances(0)
	if len(got) != 5 {
		t.Fatalf("root has %d instances, want 5", len(got))
	}
	for i, inst := range got {
		if inst != uint32(i) {
			t.Fatalf("instance %d = %d", i, inst)
		}
	}
	if idx.Count(0) != 5 || idx.Nodes() != 1 {
		t.Fatalf("Count=%d Nodes=%d", idx.Count(0), idx.Nodes())
	}
	if idx.Instances(7) != nil {
		t.Fatal("unknown node returned instances")
	}
}

func TestNodeToInstanceSplitStable(t *testing.T) {
	idx := NewNodeToInstance(6)
	// Even instances left, odd right.
	idx.Split(0, 1, 2, func(i uint32) bool { return i%2 == 0 })
	left := idx.Instances(1)
	right := idx.Instances(2)
	if len(left) != 3 || len(right) != 3 {
		t.Fatalf("split sizes %d/%d", len(left), len(right))
	}
	for i, inst := range left {
		if inst != uint32(2*i) {
			t.Fatalf("left not stable: %v", left)
		}
	}
	for i, inst := range right {
		if inst != uint32(2*i+1) {
			t.Fatalf("right not stable: %v", right)
		}
	}
	if idx.Instances(0) != nil {
		t.Fatal("parent still has instances after split")
	}
}

func TestNodeToInstanceDeepSplits(t *testing.T) {
	const n = 1000
	idx := NewNodeToInstance(n)
	rng := rand.New(rand.NewSource(5))
	side := make([]uint8, n)
	for i := range side {
		side[i] = uint8(rng.Intn(4))
	}
	idx.Split(0, 1, 2, func(i uint32) bool { return side[i] < 2 })
	idx.Split(1, 3, 4, func(i uint32) bool { return side[i] == 0 })
	idx.Split(2, 5, 6, func(i uint32) bool { return side[i] == 2 })
	total := 0
	for node := int32(3); node <= 6; node++ {
		for _, inst := range idx.Instances(node) {
			if side[inst] != uint8(node-3) {
				t.Fatalf("instance %d (side %d) landed on node %d", inst, side[inst], node)
			}
		}
		total += idx.Count(node)
	}
	if total != n {
		t.Fatalf("leaves cover %d instances, want %d", total, n)
	}
}

func TestNodeToInstanceSplitUnknownPanics(t *testing.T) {
	idx := NewNodeToInstance(3)
	defer func() {
		if recover() == nil {
			t.Fatal("split of unknown node did not panic")
		}
	}()
	idx.Split(9, 1, 2, func(uint32) bool { return true })
}

func TestNodeToInstanceReset(t *testing.T) {
	idx := NewNodeToInstance(4)
	idx.Split(0, 1, 2, func(i uint32) bool { return i < 2 })
	idx.Reset()
	if idx.Count(0) != 4 || idx.Nodes() != 1 {
		t.Fatalf("after Reset: Count=%d Nodes=%d", idx.Count(0), idx.Nodes())
	}
}

func TestInstanceToNodeSplitLayer(t *testing.T) {
	idx := NewInstanceToNode(8)
	if idx.Len() != 8 {
		t.Fatalf("Len = %d", idx.Len())
	}
	// Layer 1: root splits into 1,2 by parity.
	idx.SplitLayer(map[int32][2]int32{0: {1, 2}}, func(i uint32) bool { return i%2 == 0 })
	// Layer 2: both children split again by i < 4.
	idx.SplitLayer(map[int32][2]int32{1: {3, 4}, 2: {5, 6}}, func(i uint32) bool { return i < 4 })
	want := map[uint32]int32{0: 3, 1: 5, 2: 3, 3: 5, 4: 4, 5: 6, 6: 4, 7: 6}
	for i, node := range want {
		if got := idx.Node(i); got != node {
			t.Fatalf("instance %d on node %d, want %d", i, got, node)
		}
	}
}

func TestInstanceToNodeUntouchedNodesStay(t *testing.T) {
	idx := NewInstanceToNode(4)
	idx.SplitLayer(map[int32][2]int32{0: {1, 2}}, func(i uint32) bool { return i < 2 })
	// Split only node 1; node 2's instances must not move.
	idx.SplitLayer(map[int32][2]int32{1: {3, 4}}, func(i uint32) bool { return i == 0 })
	if idx.Node(2) != 2 || idx.Node(3) != 2 {
		t.Fatal("instances on non-splitting node moved")
	}
	idx.Reset()
	for i := uint32(0); i < 4; i++ {
		if idx.Node(i) != 0 {
			t.Fatal("Reset did not return instances to root")
		}
	}
}

func TestColumnWiseSplit(t *testing.T) {
	// Two columns: col 0 holds instances {0,1,2,3}, col 1 holds {1,3}.
	colInst := [][]uint32{{0, 1, 2, 3}, {1, 3}}
	cw := NewColumnWise([]int{4, 2})
	if cw.NumCols() != 2 {
		t.Fatalf("NumCols = %d", cw.NumCols())
	}
	instOf := func(col int, pos uint32) uint32 { return colInst[col][pos] }
	// Instances 0,1 go left.
	cw.Split(0, 1, 2, func(i uint32) bool { return i < 2 }, instOf)
	if got := cw.Entries(0, 1); len(got) != 2 || instOf(0, got[0]) != 0 || instOf(0, got[1]) != 1 {
		t.Fatalf("col0 left entries = %v", got)
	}
	if got := cw.Entries(1, 2); len(got) != 1 || instOf(1, got[0]) != 3 {
		t.Fatalf("col1 right entries = %v", got)
	}
	if cw.Entries(0, 0) != nil {
		t.Fatal("parent range survived split")
	}
}

func TestColumnWiseMissingNodeOnColumn(t *testing.T) {
	// Column 1 has no entries for the left child; a further split of that
	// child must not panic and must leave column 1 untouched.
	colInst := [][]uint32{{0, 1}, {1}}
	cw := NewColumnWise([]int{2, 1})
	instOf := func(col int, pos uint32) uint32 { return colInst[col][pos] }
	cw.Split(0, 1, 2, func(i uint32) bool { return i == 0 }, instOf)
	if got := cw.Entries(1, 1); len(got) != 0 {
		t.Fatalf("col1 has left entries %v", got)
	}
	cw.Split(1, 3, 4, func(i uint32) bool { return true }, instOf)
	if got := cw.Entries(0, 3); len(got) != 1 {
		t.Fatalf("col0 node3 entries = %v", got)
	}
}

func TestColumnWiseReset(t *testing.T) {
	colInst := [][]uint32{{0, 1, 2}}
	cw := NewColumnWise([]int{3})
	instOf := func(col int, pos uint32) uint32 { return colInst[col][pos] }
	cw.Split(0, 1, 2, func(i uint32) bool { return i == 1 }, instOf)
	cw.Reset()
	if got := cw.Entries(0, 0); len(got) != 3 {
		t.Fatalf("after Reset root entries = %v", got)
	}
}

func TestAllIndexesAgreeOnRandomSplits(t *testing.T) {
	// Drive the three indexes through the same random split sequence and
	// check they report identical node memberships.
	const n = 500
	rng := rand.New(rand.NewSource(11))
	n2i := NewNodeToInstance(n)
	i2n := NewInstanceToNode(n)
	colInst := make([][]uint32, 3)
	colLen := make([]int, 3)
	for j := range colInst {
		for i := uint32(0); i < n; i++ {
			if rng.Intn(2) == 0 {
				colInst[j] = append(colInst[j], i)
			}
		}
		colLen[j] = len(colInst[j])
	}
	cw := NewColumnWise(colLen)
	instOf := func(col int, pos uint32) uint32 { return colInst[col][pos] }

	frontier := []int32{0}
	next := int32(1)
	for layer := 0; layer < 4; layer++ {
		children := make(map[int32][2]int32)
		assign := make([]bool, n)
		for i := range assign {
			assign[i] = rng.Intn(2) == 0
		}
		goesLeft := func(i uint32) bool { return assign[i] }
		var newFrontier []int32
		for _, node := range frontier {
			l, r := next, next+1
			next += 2
			children[node] = [2]int32{l, r}
			n2i.Split(node, l, r, goesLeft)
			cw.Split(node, l, r, goesLeft, instOf)
			newFrontier = append(newFrontier, l, r)
		}
		i2n.SplitLayer(children, goesLeft)
		frontier = newFrontier
	}

	// Membership per instance-to-node must match node-to-instance ranges.
	fromRanges := make(map[uint32]int32, n)
	for _, node := range frontier {
		for _, inst := range n2i.Instances(node) {
			fromRanges[inst] = node
		}
	}
	if len(fromRanges) != n {
		t.Fatalf("node-to-instance covers %d instances, want %d", len(fromRanges), n)
	}
	for i := uint32(0); i < n; i++ {
		if fromRanges[i] != i2n.Node(i) {
			t.Fatalf("instance %d: n2i says node %d, i2n says %d", i, fromRanges[i], i2n.Node(i))
		}
	}
	// Column-wise entries must sit on the node of their instance.
	for j := range colInst {
		seen := 0
		for _, node := range frontier {
			for _, pos := range cw.Entries(j, node) {
				if i2n.Node(instOf(j, pos)) != node {
					t.Fatalf("col %d pos %d on wrong node", j, pos)
				}
				seen++
			}
		}
		if seen != colLen[j] {
			t.Fatalf("col %d: %d entries indexed, want %d", j, seen, colLen[j])
		}
	}
}
