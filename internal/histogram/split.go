package histogram

// Split finding per Equation 2 of the paper: for every candidate split of
// every feature, compute
//
//	Gain = 1/2 * [ GL^2/(HL+lambda) + GR^2/(HR+lambda) - G^2/(H+lambda) ] - gamma
//
// summed over classes, and keep the maximum. Instances with a missing
// value on the split feature (zero entries of a sparse dataset) carry the
// gradient mass (node total - histogram total); both default directions
// are tried and the better one is recorded, following DimBoost [17].

// minSplitGain is the smallest gain accepted as a real split. A node whose
// every candidate split has mathematically zero gain (e.g. a pure node)
// computes gains of +/- a few ulps depending on accumulation order; the
// threshold keeps such noise from splitting in one quadrant but not
// another.
const minSplitGain = 1e-9

// gainTieEps is the relative tolerance under which two split gains are
// considered tied. Different data-management policies accumulate the same
// gradient sums in different orders, so mathematically equal gains can
// differ in their last bits; ties are broken deterministically by
// (feature, bin, default direction) so that every quadrant grows the same
// tree.
const gainTieEps = 1e-10

// Prefer reports whether candidate cand should replace best, comparing
// gains with a relative tolerance and breaking ties by lower feature, then
// lower bin, then default-right.
func Prefer(cand, best Split) bool {
	if !cand.Valid {
		return false
	}
	if !best.Valid {
		return true
	}
	eps := gainTieEps * (abs(best.Gain) + 1)
	if cand.Gain > best.Gain+eps {
		return true
	}
	if cand.Gain < best.Gain-eps {
		return false
	}
	if cand.Feature != best.Feature {
		return cand.Feature < best.Feature
	}
	if cand.Bin != best.Bin {
		return cand.Bin < best.Bin
	}
	return !cand.DefaultLeft && best.DefaultLeft
}

func abs(x float64) float64 {
	if x < 0 {
		return -x
	}
	return x
}

// Split describes the best split found for one node on one worker.
type Split struct {
	// Feature is the worker-local feature slot; callers translate it to a
	// global feature id.
	Feature int
	// Bin is the candidate-split index: instances with bin <= Bin go left.
	Bin int
	// Gain is the split gain of Equation 2.
	Gain float64
	// DefaultLeft directs instances with a missing value on Feature.
	DefaultLeft bool
	// Valid is false when no split improves on the leaf.
	Valid bool
}

// Finder holds the regularization hyper-parameters of the objective
// (Section 2.1.1): lambda is the L2 penalty on leaf weights, gamma the
// per-leaf complexity penalty, MinChildHess the minimum second-order mass
// of each child (a min_child_weight analogue).
type Finder struct {
	Lambda       float64
	Gamma        float64
	MinChildHess float64
}

// score is the leaf objective contribution sum_k G_k^2 / (H_k + lambda).
func (f *Finder) score(g, h []float64) float64 {
	var s float64
	for k := range g {
		s += g[k] * g[k] / (h[k] + f.Lambda)
	}
	return s
}

func sumSlice(x []float64) float64 {
	var s float64
	for _, v := range x {
		s += v
	}
	return s
}

// FindBest scans the histograms of node hist, whose per-class totals over
// all node instances are totalG/totalH, and returns the best split across
// the worker's feature slots. numBins[feat] gives the true candidate count
// of each slot (<= MaxBins).
func (f *Finder) FindBest(hist *Hist, totalG, totalH []float64, numBins []int) Split {
	return f.FindBestInRange(hist, totalG, totalH, numBins, 0, hist.NumFeat)
}

// FindBestInRange is FindBest restricted to feature slots [featLo, featHi).
// Horizontal systems that shard aggregated histograms across workers
// (LightGBM's reduce-scatter, DimBoost's parameter servers) use it for
// per-worker split finding on their feature shard.
func (f *Finder) FindBestInRange(hist *Hist, totalG, totalH []float64, numBins []int, featLo, featHi int) Split {
	c := hist.NumClass
	best := Split{Gain: 0, Valid: false}
	parentScore := f.score(totalG, totalH)
	totalHess := sumSlice(totalH)

	featG := make([]float64, c)
	featH := make([]float64, c)
	missG := make([]float64, c)
	missH := make([]float64, c)
	leftG := make([]float64, c)
	leftH := make([]float64, c)
	rightG := make([]float64, c)
	rightH := make([]float64, c)

	for feat := featLo; feat < featHi; feat++ {
		nb := hist.MaxBins
		if numBins != nil {
			nb = numBins[feat]
		}
		if nb < 2 {
			continue // a single bin admits no split
		}
		hist.FeatTotals(feat, featG, featH)
		for k := 0; k < c; k++ {
			missG[k] = totalG[k] - featG[k]
			missH[k] = totalH[k] - featH[k]
		}
		missHess := sumSlice(missH)

		// Prefix scan over bins; the last bin cannot be a split point
		// (everything would go left).
		for k := 0; k < c; k++ {
			leftG[k] = 0
			leftH[k] = 0
		}
		base := hist.offset(feat, 0)
		var leftHess float64
		for bin := 0; bin < nb-1; bin++ {
			for k := 0; k < c; k++ {
				leftG[k] += hist.Grad[base+bin*c+k]
				leftH[k] += hist.Hess[base+bin*c+k]
			}
			leftHess = sumSlice(leftH)

			// Default right: missing mass joins the right child.
			if leftHess >= f.MinChildHess && totalHess-leftHess >= f.MinChildHess {
				for k := 0; k < c; k++ {
					rightG[k] = totalG[k] - leftG[k]
					rightH[k] = totalH[k] - leftH[k]
				}
				gain := 0.5*(f.score(leftG, leftH)+f.score(rightG, rightH)-parentScore) - f.Gamma
				if gain > minSplitGain {
					cand := Split{Feature: feat, Bin: bin, Gain: gain, DefaultLeft: false, Valid: true}
					if Prefer(cand, best) {
						best = cand
					}
				}
			}
			// Default left: missing mass joins the left child. Skip when
			// there is no missing mass — identical to default right.
			if missHess > 0 && leftHess+missHess >= f.MinChildHess && totalHess-leftHess-missHess >= f.MinChildHess {
				for k := 0; k < c; k++ {
					lg := leftG[k] + missG[k]
					lh := leftH[k] + missH[k]
					rightG[k] = totalG[k] - lg
					rightH[k] = totalH[k] - lh
					leftG[k] = lg // temporarily fold missing in
					leftH[k] = lh
				}
				gain := 0.5*(f.score(leftG, leftH)+f.score(rightG, rightH)-parentScore) - f.Gamma
				if gain > minSplitGain {
					cand := Split{Feature: feat, Bin: bin, Gain: gain, DefaultLeft: true, Valid: true}
					if Prefer(cand, best) {
						best = cand
					}
				}
				for k := 0; k < c; k++ { // restore the prefix
					leftG[k] -= missG[k]
					leftH[k] -= missH[k]
				}
			}
		}
	}
	return best
}

// LeafWeights returns the optimal leaf weight vector of Equation 1,
// w_k = -G_k / (H_k + lambda), for a node with the given totals.
func (f *Finder) LeafWeights(totalG, totalH []float64) []float64 {
	w := make([]float64, len(totalG))
	for k := range totalG {
		w[k] = -totalG[k] / (totalH[k] + f.Lambda)
	}
	return w
}

// LeafObjective returns the node's contribution to the training objective,
// -1/2 * sum_k G_k^2/(H_k+lambda) + gamma (Equation 1, per-leaf term).
func (f *Finder) LeafObjective(totalG, totalH []float64) float64 {
	return -0.5*f.score(totalG, totalH) + f.Gamma
}
