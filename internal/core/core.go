// Package core implements the paper's primary contribution: a distributed
// GBDT trainer parametrized by data-management policy — the four quadrants
// of partitioning scheme x storage pattern (Figure 1):
//
//	QD1  horizontal + column-store   (XGBoost)
//	QD2  horizontal + row-store      (LightGBM, DimBoost)
//	QD3  vertical + column-store     (Yggdrasil)
//	QD4  vertical + row-store        (Vero — this paper)
//
// All quadrants share one histogram-based boosting loop (Section 2.1) and
// differ exactly where the paper says they do: how gradient histograms are
// constructed and exchanged (Section 2.2.1), which node/instance index is
// maintained (Section 3.2), and how node-split placements propagate.
// Training runs on the simulated cluster of internal/cluster, so every
// byte the policies move is accounted and converted to simulated time.
package core

import (
	"fmt"
	"strings"

	"vero/internal/advisor"
	"vero/internal/cluster"
	"vero/internal/datasets"
	"vero/internal/histogram"
	"vero/internal/loss"
	"vero/internal/partition"
	"vero/internal/sparse"
	"vero/internal/tree"
)

// Quadrant selects the data-management policy.
type Quadrant int

// The four quadrants of Figure 1.
const (
	QD1 Quadrant = iota + 1 // horizontal + column-store
	QD2                     // horizontal + row-store
	QD3                     // vertical + column-store
	QD4                     // vertical + row-store (Vero)
)

// QuadrantAuto asks Train to pick among QD1-QD4 itself: prepare derives
// the advisor's workload from the dataset and cluster, applies the
// paper's cost model (Section 3.1) and decision matrix (Table 1), and
// trains with the recommended quadrant's reference policy. The choice and
// its rationale are recorded in Result.Selection.
const QuadrantAuto Quadrant = -1

// String names the quadrant as in the paper.
func (q Quadrant) String() string {
	switch q {
	case QuadrantAuto:
		return "auto"
	case QD1:
		return "QD1 (horizontal+column)"
	case QD2:
		return "QD2 (horizontal+row)"
	case QD3:
		return "QD3 (vertical+column)"
	case QD4:
		return "QD4 (vertical+row)"
	default:
		return fmt.Sprintf("Quadrant(%d)", int(q))
	}
}

// ParseQuadrant reads a quadrant from its command-line spelling: "qd1"
// through "qd4" (or the bare digit), and "auto" for QuadrantAuto.
func ParseQuadrant(s string) (Quadrant, error) {
	switch strings.ToLower(s) {
	case "auto":
		return QuadrantAuto, nil
	case "qd1", "1":
		return QD1, nil
	case "qd2", "2":
		return QD2, nil
	case "qd3", "3":
		return QD3, nil
	case "qd4", "4":
		return QD4, nil
	}
	return 0, fmt.Errorf("core: unknown quadrant %q (want qd1..qd4 or auto)", s)
}

// Vertical reports whether the quadrant partitions by features.
func (q Quadrant) Vertical() bool { return q == QD3 || q == QD4 }

// ConfigureQuadrant specializes cfg to quadrant q's reference policy —
// the policy of the named system occupying that quadrant of Figure 1:
// QD1 all-reduce aggregation (XGBoost), QD2 reduce-scatter (LightGBM
// data-parallel), QD3 hybrid column index (the paper's optimized
// baseline), QD4 the horizontal-to-vertical transformation (Vero). The
// single copy of this mapping serves both internal/systems and the
// auto-quadrant resolution, so the two cannot drift.
func ConfigureQuadrant(q Quadrant, cfg Config) (Config, error) {
	switch q {
	case QD1:
		cfg.Quadrant, cfg.Aggregation = QD1, AggAllReduce
	case QD2:
		cfg.Quadrant, cfg.Aggregation = QD2, AggReduceScatter
	case QD3:
		cfg.Quadrant, cfg.ColumnIndex = QD3, IndexHybrid
	case QD4:
		cfg.Quadrant, cfg.FullCopy = QD4, false
	default:
		return cfg, fmt.Errorf("core: no reference policy for quadrant %v", q)
	}
	return cfg, nil
}

// Aggregation selects how horizontal quadrants aggregate histograms
// (Section 4.1).
type Aggregation int

// Aggregation methods of the systems the paper analyzes.
const (
	// AggAllReduce: histograms all-reduced, a leader finds splits
	// (XGBoost).
	AggAllReduce Aggregation = iota
	// AggReduceScatter: each worker owns a feature shard of the
	// aggregated histograms and finds splits for it (LightGBM).
	AggReduceScatter
	// AggParameterServer: histograms pushed to sharded parameter servers
	// with server-side split finding (DimBoost).
	AggParameterServer
)

// ColumnIndexPlan selects the index for vertical column-store (QD3).
type ColumnIndexPlan int

// QD3 index plans (Sections 3.2.3 and 5.2.2).
const (
	// IndexHybrid combines instance-to-node linear scans for dense
	// columns with node-to-instance binary searches for sparse ones —
	// the paper's optimized QD3 implementation.
	IndexHybrid ColumnIndexPlan = iota
	// IndexColumnWise maintains a node-to-instance index per column, as
	// Yggdrasil does; node splitting must update all columns.
	IndexColumnWise
)

// Config holds every training hyper-parameter. Defaults mirror the paper:
// T=100 trees, L=8 layers, q=20 candidate splits (Section 5.1).
type Config struct {
	Quadrant Quadrant

	Trees  int // T
	Layers int // L, counting the root layer
	Splits int // q

	LearningRate float64
	Lambda       float64
	Gamma        float64
	MinChildHess float64

	// Objective is "square", "logistic" or "softmax"; NumClass matters
	// for softmax only.
	Objective string
	NumClass  int

	// Aggregation applies to QD1/QD2.
	Aggregation Aggregation
	// ColumnIndex applies to QD3.
	ColumnIndex ColumnIndexPlan
	// FullCopy applies to QD4: every worker keeps the entire dataset and
	// splits nodes locally — LightGBM's feature-parallel mode
	// (Appendix D). No placement broadcast is needed, but data memory is
	// multiplied by W.
	FullCopy bool
	// TransformCharge selects the wire variant charged by the QD4
	// horizontal-to-vertical transformation (Table 5).
	TransformCharge partition.Variant
	// SketchEps is the quantile sketch error (default 0.01).
	SketchEps float64

	// MemBudget bounds the resident streaming scratch of an out-of-core
	// run (a dataset served by datasets.BlockSource) in bytes; zero means
	// a 64 MiB default. It only sizes block buffers — models are
	// bit-identical for any budget — so it stays out of the checkpoint
	// config hash.
	MemBudget int64
	// BlockRows and BlockNNZ override the derived out-of-core block
	// sizes (rows per rebuilt row block, entries per column chunk);
	// mainly for tests pinning block-boundary edge cases. Zero derives
	// both from MemBudget.
	BlockRows int
	BlockNNZ  int

	Seed int64

	// CheckpointDir, with CheckpointEvery > 0, enables crash-safe
	// training: every CheckpointEvery trees the trainer atomically writes
	// resumable state (partial forest, round, config hash, dataset
	// fingerprint) to CheckpointDir/train.vckp, and Train resumes from a
	// matching checkpoint instead of starting over. See checkpoint.go and
	// docs/ROBUSTNESS.md.
	CheckpointDir   string
	CheckpointEvery int
	// DistIdentity, when non-empty, names this rank's slot in a distributed
	// deployment (the façade sets "rank/workers@peers-hash"). It folds into
	// the checkpoint config hash, so a checkpoint written under one
	// deployment shape is rejected — not silently replayed — under another
	// (a W=2 checkpoint at W=4, or rank 1's file fed to rank 0).
	DistIdentity string

	// OnTree, when set, is invoked after each tree with the cumulative
	// simulated time (measured computation + simulated communication)
	// and the tree just trained — the hook the convergence experiments
	// (Figure 11) use to score a validation set incrementally.
	OnTree func(treeIdx int, elapsedSec float64, tr *tree.Tree)
	// ShouldStop, when set, is consulted after each tree (after OnTree);
	// returning true ends training early. Used for early stopping on a
	// validation metric.
	ShouldStop func(treeIdx int) bool
}

func (c *Config) setDefaults() error {
	if c.Quadrant != QuadrantAuto && (c.Quadrant < QD1 || c.Quadrant > QD4) {
		return fmt.Errorf("core: unknown quadrant %d", c.Quadrant)
	}
	if c.Trees == 0 {
		c.Trees = 100
	}
	if c.Layers == 0 {
		c.Layers = 8
	}
	if c.Splits == 0 {
		c.Splits = 20
	}
	if c.Trees < 1 || c.Layers < 2 || c.Splits < 2 || c.Splits > sparse.MaxBins {
		return fmt.Errorf("core: invalid T=%d L=%d q=%d", c.Trees, c.Layers, c.Splits)
	}
	if c.LearningRate == 0 {
		c.LearningRate = 0.3
	}
	if c.Lambda == 0 {
		c.Lambda = 1
	}
	if c.SketchEps == 0 {
		c.SketchEps = 0.01
	}
	if c.FullCopy && c.Quadrant != QD4 {
		return fmt.Errorf("core: FullCopy (feature-parallel) requires QD4, got %v", c.Quadrant)
	}
	return nil
}

// Selection records an auto-quadrant decision (Config.Quadrant ==
// QuadrantAuto): the chosen quadrant, the workload the advisor scored,
// and the full recommendation including its human-readable rationale.
type Selection struct {
	Quadrant Quadrant
	Workload advisor.Workload
	Advice   advisor.Recommendation
}

// Result is the outcome of a training run.
type Result struct {
	Forest *tree.Forest
	// Selection is non-nil when the quadrant was chosen by the advisor
	// (Config.Quadrant == QuadrantAuto).
	Selection *Selection
	// PerTreeSeconds is the simulated wall time of each tree:
	// measured computation makespan plus simulated communication.
	PerTreeSeconds []float64
	// Breakdown of total training time.
	CompSeconds float64
	CommSeconds float64
	// PrepSeconds covers data preparation (sketching, binning and, for
	// QD4, the horizontal-to-vertical transformation).
	PrepSeconds float64
	// TransformBytes is the QD4 transformation's byte report (zero for
	// other quadrants).
	TransformBytes partition.ByteReport
	// StartRound is the boosting round training began at: 0 for a fresh
	// run, k when a checkpoint with k completed trees was resumed.
	StartRound int
	// PeakHeapBytes is the heap high-water mark observed at tree
	// boundaries (runtime.MemStats HeapAlloc) — the number the
	// out-of-core memory-budget guarantee is stated against.
	PeakHeapBytes uint64
	// CheckpointErr records the last non-fatal checkpoint housekeeping
	// failure (a failed periodic save, or a failed removal of the
	// checkpoint after a completed run). Training itself succeeded; the
	// caller decides whether a missing checkpoint is worth surfacing.
	CheckpointErr error
}

// Train runs distributed GBDT over the dataset with the given policy. The
// cluster's statistics accumulate the per-phase computation and
// communication record; pass a fresh cluster for a clean report.
func Train(cl *cluster.Cluster, ds *datasets.Dataset, cfg Config) (*Result, error) {
	if err := cfg.setDefaults(); err != nil {
		return nil, err
	}
	obj, err := objective(ds, cfg)
	if err != nil {
		return nil, err
	}
	if err := validateShard(cl, ds, cfg); err != nil {
		return nil, err
	}
	var sel *Selection
	if cfg.Quadrant == QuadrantAuto {
		if cfg, sel, err = resolveAuto(cl, ds, cfg, obj); err != nil {
			return nil, err
		}
	}
	t := newTrainer(cl, ds, cfg, obj)
	if t.n == 0 {
		return nil, fmt.Errorf("core: empty dataset")
	}
	if err := t.prepare(); err != nil {
		return nil, err
	}
	var ck *checkpoint
	if path := t.checkpointPath(); path != "" {
		// Fingerprints are derived after auto-quadrant resolution and
		// preparation so they cover the concrete policy and the binner the
		// checkpointed trees were grown against.
		t.ckptConfigHash = t.configHash()
		t.ckptDataFP = t.datasetFingerprint()
		if cl.Distributed() {
			// Distributed resume must agree on one round cluster-wide
			// before replaying anything; a rank with a bad or missing
			// checkpoint drags the mesh to round 0, never a mixed resume.
			if ck, err = t.loadCheckpointDistributed(path); err != nil {
				return nil, err
			}
		} else {
			if ck, err = t.loadCheckpoint(path); err != nil {
				return nil, err
			}
			if ck != nil {
				if err := t.verifyResume(ck.forest); err != nil {
					return nil, err
				}
			}
		}
	}
	res, err := t.run(ck)
	if err != nil {
		return nil, err
	}
	res.Selection = sel
	return res, nil
}

// validateShard rejects dataset/cluster/config combinations a sharded
// (partially materialized) dataset cannot serve. A shard only makes sense
// under the distributed transport — a simulated cluster hosts every
// worker and would train on a fraction of the data — and its axis must
// match the quadrant's partitioning so each rank materialized exactly the
// slice its engine reads.
func validateShard(cl *cluster.Cluster, ds *datasets.Dataset, cfg Config) error {
	sh := ds.Shard
	if sh == nil {
		return nil
	}
	if !cl.Distributed() {
		return fmt.Errorf("core: dataset is a rank shard (%s %d/%d) but the cluster is simulated; sharded loading needs the distributed transport", sh.Kind, sh.Rank, sh.Workers)
	}
	if sh.Workers != cl.Workers() || sh.Rank != cl.Rank() {
		return fmt.Errorf("core: dataset shard is %d/%d but this process is rank %d of %d", sh.Rank, sh.Workers, cl.Rank(), cl.Workers())
	}
	if cfg.Quadrant == QuadrantAuto {
		// The advisor scores the dataset it is handed; a shard would feed it
		// rank-local statistics and ranks could resolve different quadrants.
		return fmt.Errorf("core: auto quadrant selection needs the full dataset; pick a quadrant explicitly for sharded training")
	}
	if cfg.FullCopy {
		return fmt.Errorf("core: FullCopy (feature-parallel) replicates the dataset at every worker and cannot train on a shard")
	}
	switch cfg.Quadrant {
	case QD1, QD2:
		if sh.Kind != datasets.ShardRows {
			return fmt.Errorf("core: %v partitions by rows but the dataset is a %s shard", cfg.Quadrant, sh.Kind)
		}
	case QD3, QD4:
		if sh.Kind != datasets.ShardCols {
			return fmt.Errorf("core: %v partitions by columns but the dataset is a %s shard", cfg.Quadrant, sh.Kind)
		}
	}
	if ds.Prebin == nil || !ds.Prebin.Quantized {
		// The quantile sketch scans the matrix; a shard holds a fraction of
		// it, so candidate splits must ride in from the cache image.
		return fmt.Errorf("core: sharded training needs the cache's candidate splits (a quantized prebin); load shards with ingest.ReadCacheShard")
	}
	return nil
}

// newTrainer assembles an unprepared trainer over the cluster and dataset.
func newTrainer(cl *cluster.Cluster, ds *datasets.Dataset, cfg Config, obj loss.Objective) *trainer {
	return &trainer{
		cl:  cl,
		cfg: cfg,
		ds:  ds,
		obj: obj,
		n:   ds.NumInstances(),
		d:   ds.NumFeatures(),
		c:   obj.NumClass(),
		w:   cl.Workers(),
		finder: histogram.Finder{
			Lambda:       cfg.Lambda,
			Gamma:        cfg.Gamma,
			MinChildHess: cfg.MinChildHess,
		},
		pool: histogram.NewPool(),
	}
}

// objective resolves the loss from config and dataset: square for
// regression datasets, logistic for binary, softmax for multi-class when
// the caller left the objective empty or at the default binary objective.
func objective(ds *datasets.Dataset, cfg Config) (loss.Objective, error) {
	name := cfg.Objective
	numClass := cfg.NumClass
	if numClass == 0 {
		numClass = ds.NumClass
	}
	if name == "" {
		if numClass == 1 {
			name = "square"
		} else {
			name = "logistic"
		}
	}
	if name == "logistic" && numClass > 2 {
		name = "softmax"
	}
	return loss.ByName(name, numClass)
}
