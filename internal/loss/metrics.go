package loss

import (
	"fmt"
	"math"
	"sort"
)

// RMSE returns the root-mean-square error between predictions and labels.
func RMSE(pred []float64, labels []float32) float64 {
	if len(pred) != len(labels) {
		panic(fmt.Sprintf("loss: %d predictions vs %d labels", len(pred), len(labels)))
	}
	if len(pred) == 0 {
		return 0
	}
	var sum float64
	for i, p := range pred {
		d := p - float64(labels[i])
		sum += d * d
	}
	return math.Sqrt(sum / float64(len(pred)))
}

// AUC returns the area under the ROC curve for binary labels in {0,1} and
// raw scores (any monotone transform of the probability). Ties receive
// average rank. It returns NaN if either class is absent.
func AUC(score []float64, labels []float32) float64 {
	if len(score) != len(labels) {
		panic(fmt.Sprintf("loss: %d scores vs %d labels", len(score), len(labels)))
	}
	n := len(score)
	idx := make([]int, n)
	for i := range idx {
		idx[i] = i
	}
	sort.Slice(idx, func(a, b int) bool { return score[idx[a]] < score[idx[b]] })
	var rankSumPos float64
	var nPos, nNeg float64
	i := 0
	for i < n {
		j := i
		for j < n && score[idx[j]] == score[idx[i]] {
			j++
		}
		// Average rank of the tie group (1-based ranks i+1 .. j).
		avgRank := float64(i+1+j) / 2
		for k := i; k < j; k++ {
			if labels[idx[k]] >= 0.5 {
				rankSumPos += avgRank
				nPos++
			} else {
				nNeg++
			}
		}
		i = j
	}
	if nPos == 0 || nNeg == 0 {
		return math.NaN()
	}
	return (rankSumPos - nPos*(nPos+1)/2) / (nPos * nNeg)
}

// BinaryAccuracy returns the fraction of instances whose raw score sign
// matches the {0,1} label (threshold at margin 0, i.e. probability 0.5).
func BinaryAccuracy(score []float64, labels []float32) float64 {
	if len(score) == 0 {
		return 0
	}
	correct := 0
	for i, s := range score {
		if (s >= 0) == (labels[i] >= 0.5) {
			correct++
		}
	}
	return float64(correct) / float64(len(score))
}

// MultiAccuracy returns the fraction of instances whose argmax score
// matches the class label. score is row-major with stride numClass.
func MultiAccuracy(score []float64, labels []float32, numClass int) float64 {
	n := len(labels)
	if len(score) != n*numClass {
		panic(fmt.Sprintf("loss: %d scores for %d instances x %d classes", len(score), n, numClass))
	}
	if n == 0 {
		return 0
	}
	correct := 0
	for i := 0; i < n; i++ {
		best, bestV := 0, score[i*numClass]
		for k := 1; k < numClass; k++ {
			if v := score[i*numClass+k]; v > bestV {
				best, bestV = k, v
			}
		}
		if best == int(labels[i]) {
			correct++
		}
	}
	return float64(correct) / float64(n)
}

// LogLoss returns the mean binary cross-entropy of raw scores against
// labels in {0,1}.
func LogLoss(score []float64, labels []float32) float64 {
	if len(score) == 0 {
		return 0
	}
	var sum float64
	for i, s := range score {
		p := Sigmoid(s)
		p = math.Min(math.Max(p, 1e-15), 1-1e-15)
		if labels[i] >= 0.5 {
			sum -= math.Log(p)
		} else {
			sum -= math.Log(1 - p)
		}
	}
	return sum / float64(len(score))
}

// MultiLogLoss returns the mean softmax cross-entropy. score is row-major
// with stride numClass.
func MultiLogLoss(score []float64, labels []float32, numClass int) float64 {
	n := len(labels)
	if n == 0 {
		return 0
	}
	var sum float64
	for i := 0; i < n; i++ {
		row := score[i*numClass : (i+1)*numClass]
		maxv := row[0]
		for _, v := range row[1:] {
			if v > maxv {
				maxv = v
			}
		}
		var z float64
		for _, v := range row {
			z += math.Exp(v - maxv)
		}
		sum += math.Log(z) - (row[int(labels[i])] - maxv)
	}
	return sum / float64(n)
}
