package core

import (
	"vero/internal/cluster"
	"vero/internal/histogram"
	"vero/internal/index"
	"vero/internal/partition"
	"vero/internal/sparse"
	"vero/internal/tree"
)

// horizontalEngine implements the horizontal quadrants (QD1: column-store
// + instance-to-node index; QD2: row-store + node-to-instance index).
// Workers hold disjoint row ranges with all features; histograms are built
// locally for every feature and aggregated across workers (Figure 4(a)).
type horizontalEngine struct {
	t *trainer

	// flatG/flatH are per-worker arena scratch for the routed column-scan
	// kernel: one flat buffer pair holds every histogram a worker builds in
	// a layer, reused (and re-zeroed) layer after layer.
	flatG, flatH [][]float64

	rows   []*sparse.BinnedCSR // QD2: per-worker row shards
	cols   []*sparse.BinnedCSC // QD1: per-worker column views of row shards
	blocks []*rowBlockBuilder  // QD2 out-of-core: per-worker row rebuilders
	n2i    []*index.NodeToInstance
	i2n    []*index.InstanceToNode
	agg    map[int32]*histogram.Hist // aggregated histograms, by node id
	layout histogram.Layout
}

// splitWireBytes is the serialized size of one best-split record
// (feature id, bin, gain, default direction).
const splitWireBytes = 24

// prepare sketches candidate splits and bins each worker's row shard into
// the quadrant's storage pattern.
func (e *horizontalEngine) prepare() error {
	t := e.t
	if t.stream != nil {
		return e.prepareStreamed()
	}
	if _, err := t.distributedSketch(); err != nil {
		return err
	}
	if err := t.checkMaxBins(); err != nil {
		return err
	}
	e.flatG = make([][]float64, t.w)
	e.flatH = make([][]float64, t.w)
	e.layout = histogram.Layout{NumFeat: t.d, MaxBins: t.maxBins, NumClass: t.c}
	e.agg = make(map[int32]*histogram.Hist)

	dataGauge := t.cl.Stats().Mem("data")
	errs := make([]error, t.w)
	if t.cfg.Quadrant == QD2 {
		e.rows = make([]*sparse.BinnedCSR, t.w)
		e.n2i = make([]*index.NodeToInstance, t.w)
		t.cl.ParallelLocal("prep.bin", func(w int) {
			shard := t.ds.X.SliceRows(t.ranges[w][0], t.ranges[w][1])
			binned, err := t.binner.BinCSR(shard)
			if err != nil {
				errs[w] = err
				return
			}
			e.rows[w] = binned
			e.n2i[w] = index.NewNodeToInstance(binned.Rows())
			dataGauge.Set(w, binnedCSRBytes(binned))
		})
		return cluster.FirstError(errs)
	}

	// QD1: column views of the row shards, instance-to-node index.
	e.cols = make([]*sparse.BinnedCSC, t.w)
	e.i2n = make([]*index.InstanceToNode, t.w)
	t.cl.ParallelLocal("prep.bin", func(w int) {
		shard := t.ds.X.SliceRows(t.ranges[w][0], t.ranges[w][1])
		binned, err := t.binner.BinCSR(shard)
		if err != nil {
			errs[w] = err
			return
		}
		e.cols[w] = binned.ToCSC()
		e.i2n[w] = index.NewInstanceToNode(shard.Rows())
		dataGauge.Set(w, binnedCSCBytes(e.cols[w]))
	})
	return cluster.FirstError(errs)
}

// beginRun implements engine; the horizontal quadrants need no per-run
// scratch beyond the trainer's shared buffers.
func (e *horizontalEngine) beginRun() {}

// usesSubtraction implements engine: QD1's shared accumulators cannot
// retain per-parent state, so both children always build.
func (e *horizontalEngine) usesSubtraction() bool { return e.t.cfg.Quadrant != QD1 }

// transformReport implements engine: no repartitioning happens.
func (e *horizontalEngine) transformReport() partition.ByteReport { return partition.ByteReport{} }

// computeGradients has each worker process its own row range.
func (e *horizontalEngine) computeGradients() {
	t := e.t
	labels := t.ds.Labels
	t.cl.ParallelLocal(phaseGrad, func(w int) {
		lo, hi := t.ranges[w][0], t.ranges[w][1]
		for i := lo; i < hi; i++ {
			t.obj.GradHess(t.preds[i*t.c:(i+1)*t.c], labels[i], t.grads[i*t.c:(i+1)*t.c], t.hessv[i*t.c:(i+1)*t.c])
		}
	})
}

func (e *horizontalEngine) resetIndexes() {
	// Non-hosted workers' indexes are nil on a distributed cluster.
	if e.t.cfg.Quadrant == QD1 {
		for _, idx := range e.i2n {
			if idx != nil {
				idx.Reset()
			}
		}
		return
	}
	for _, idx := range e.n2i {
		if idx != nil {
			idx.Reset()
		}
	}
}

func (e *horizontalEngine) clearHists() {
	for id := range e.agg {
		e.dropHist(id)
	}
}

func (e *horizontalEngine) dropHist(id int32) {
	t := e.t
	if h, ok := e.agg[id]; ok {
		g := t.cl.Stats().Mem("histogram")
		for w := 0; w < t.w; w++ {
			g.Add(w, -e.layout.SizeBytes())
		}
		t.pool.Put(h)
		delete(e.agg, id)
	}
}

// deriveHistograms computes each node's histogram as parent minus built
// sibling, reusing the parent's storage (the parent entry is consumed).
// On a distributed cluster every rank derives its own copy; with
// reduce-scatter aggregation the non-owned regions hold local
// contributions on both parent and sibling, so their difference is the
// derived node's local contribution — the invariant every shard reader
// relies on survives subtraction.
func (e *horizontalEngine) deriveHistograms(toDerive []*nodeInfo) {
	e.t.cl.ParallelLocal(phaseHist, func(w int) {
		if !e.t.cl.Lead(w) {
			return // aggregated histograms are logically replicated; derive once
		}
		for _, nd := range toDerive {
			parent := e.agg[nd.parent]
			sibling := e.agg[siblingOf(nd)]
			parent.Sub(sibling)
			e.agg[nd.id] = parent
			delete(e.agg, nd.parent)
		}
	})
}

// flatScratch returns worker w's zeroed arena scratch of n floats per
// side, growing the buffers when a layer needs more histogram slots than
// any before it.
func (e *horizontalEngine) flatScratch(w, n int) (g, h []float64) {
	if cap(e.flatG[w]) < n {
		e.flatG[w] = make([]float64, n)
		e.flatH[w] = make([]float64, n)
	} else {
		e.flatG[w] = e.flatG[w][:n]
		e.flatH[w] = e.flatH[w][:n]
		clear(e.flatG[w])
		clear(e.flatH[w])
	}
	return e.flatG[w], e.flatH[w]
}

func (e *horizontalEngine) rootTotals() ([]float64, []float64) {
	t := e.t
	locals := make([][]float64, t.w)
	t.cl.ParallelLocal(phaseGrad, func(w int) {
		acc := make([]float64, 2*t.c)
		lo, hi := t.ranges[w][0], t.ranges[w][1]
		if t.c == 1 {
			var g, h float64
			for i := lo; i < hi; i++ {
				g += t.grads[i]
				h += t.hessv[i]
			}
			acc[0], acc[1] = g, h
		} else {
			for i := lo; i < hi; i++ {
				for k := 0; k < t.c; k++ {
					acc[k] += t.grads[i*t.c+k]
					acc[t.c+k] += t.hessv[i*t.c+k]
				}
			}
		}
		locals[w] = acc
	})
	sum := t.cl.AllReduceSum(phaseGrad, locals)
	return sum[:t.c], sum[t.c:]
}

// buildHistograms constructs local histograms and aggregates them per the
// configured method.
func (e *horizontalEngine) buildHistograms(toBuild []*nodeInfo) {
	t := e.t
	if t.cfg.Quadrant == QD2 {
		if t.stream != nil {
			e.buildHistogramsStreamedQD2(toBuild)
			return
		}
		// Row-store: per node, scan the node's instances (node-to-instance
		// index) through the fused row-scan kernel and aggregate
		// immediately, keeping one transient local histogram per worker at
		// a time (recycled through the arena).
		for _, nd := range toBuild {
			locals := make([]*histogram.Hist, t.w)
			t.cl.ParallelLocal(phaseHist, func(w int) {
				h := t.pool.Get(e.layout)
				shard := e.rows[w]
				h.RowScan(e.n2i[w].Instances(nd.id), 0, shard.RowPtr, shard.Feat, shard.Bin,
					t.grads, t.hessv, t.ranges[w][0])
				locals[w] = h
			})
			e.aggregate(nd.id, locals)
			for _, h := range locals {
				if h != nil {
					t.pool.Put(h)
				}
			}
		}
		return
	}

	// QD1 column-store: one pass over each worker's columns updates all
	// build nodes at once, routing each (instance, bin) entry through the
	// instance-to-node index (the fused column-scan kernel reads the raw
	// assignment array and a dense node-to-slot table). Workers fold their
	// local histograms into shared accumulators right after their pass, so
	// physical memory stays at two layers of histograms instead of W+1
	// (the logical per-worker copies are still charged to the memory
	// gauge).
	maxID := int32(0)
	for _, nd := range toBuild {
		if nd.id > maxID {
			maxID = nd.id
		}
	}
	slot := make([]int32, maxID+1) // node id -> local slot, -1 = not building
	for i := range slot {
		slot[i] = -1
	}
	for i, nd := range toBuild {
		slot[nd.id] = int32(i)
	}
	acc := make([]*histogram.Hist, len(toBuild))
	for i := range acc {
		acc[i] = t.pool.Get(e.layout)
	}
	// merged[w] closes once worker w has folded its partials in; worker
	// w+1 waits for it, so the floating-point reduction order is the
	// worker order regardless of goroutine scheduling.
	merged := make([]chan struct{}, t.w)
	for w := range merged {
		merged[w] = make(chan struct{})
	}
	if t.stream != nil {
		e.buildHistogramsStreamedQD1(toBuild, slot, acc, merged)
	} else {
		t.cl.ParallelLocal(phaseHist, func(w int) {
			stride := e.layout.FloatsPerSide()
			ag, ah := e.flatScratch(w, stride*len(toBuild))
			cols := e.cols[w]
			nodeOf := e.i2n[w].Assignments()
			base := t.ranges[w][0]
			for j := 0; j < cols.Cols(); j++ {
				insts, bins := cols.Col(j)
				histogram.ColumnScanRouted(ag, ah, stride, e.layout, j, insts, bins, nodeOf, slot, t.grads, t.hessv, base)
			}
			if w > 0 && t.cl.HostsWorker(w-1) {
				<-merged[w-1]
			}
			for i := range acc {
				acc[i].Merge(&histogram.Hist{Layout: e.layout,
					Grad: ag[i*stride : (i+1)*stride], Hess: ah[i*stride : (i+1)*stride]})
			}
			close(merged[w])
		})
	}
	mem := t.cl.Stats().Mem("histogram")
	for i, nd := range toBuild {
		e.aggregateMerged(acc[i])
		e.agg[nd.id] = acc[i]
		for w := 0; w < t.w; w++ {
			mem.Add(w, e.layout.SizeBytes())
		}
	}
}

// aggregateMerged runs the configured aggregation collective over a
// histogram that already holds the hosted workers' merged contribution
// (QD1's shared accumulators). On the simulation the accumulator is
// already the global sum, so this only charges; on a distributed cluster
// the two sides travel as one charged payload and the accumulator comes
// back reduced — fully for all-reduce, per owned feature shard for the
// scatter variants. The transport adds rank contributions in rank order
// from a zeroed base, the exact order the simulation's merge chain uses,
// so the sums are bit-identical.
func (e *horizontalEngine) aggregateMerged(h *histogram.Hist) {
	t := e.t
	switch t.cfg.Aggregation {
	case AggReduceScatter:
		t.cl.ReduceScatterMerged(phaseHist, e.featureBounds(), h.Grad, h.Hess)
	case AggParameterServer:
		t.cl.ShardedGatherMerged(phaseHist, t.w, e.featureBounds(), h.Grad, h.Hess)
	default: // AggAllReduce
		t.cl.AllReduceMerged(phaseHist, h.Grad, h.Hess)
	}
}

// featureBounds maps findSplits' per-worker feature shards (worker w owns
// features [w*per, (w+1)*per) for per = ceil(d/W)) onto element bounds of
// one histogram side, so the scatter collectives deliver exactly the
// region each worker's split search reads.
func (e *horizontalEngine) featureBounds() []int {
	t := e.t
	per := (t.d + t.w - 1) / t.w
	stride := e.layout.MaxBins * e.layout.NumClass
	bounds := make([]int, t.w+1)
	for v := 1; v <= t.w; v++ {
		bounds[v] = min(v*per, t.d) * stride
	}
	return bounds
}

// aggregate reduces per-worker histograms of one node into the aggregated
// map, charging the configured collective.
func (e *horizontalEngine) aggregate(node int32, locals []*histogram.Hist) {
	t := e.t
	gl := make([][]float64, t.w)
	hl := make([][]float64, t.w)
	for w, h := range locals {
		if h != nil {
			gl[w] = h.Grad
			hl[w] = h.Hess
		}
	}
	// Reduce straight into a pooled histogram: every histogram the trainer
	// releases was drawn from the pool (keeping the free list bounded by
	// the live set), and the steady state allocates nothing per node.
	agg := t.pool.Get(e.layout)
	switch t.cfg.Aggregation {
	case AggReduceScatter:
		t.cl.ReduceScatterSumInto(phaseHist, gl, agg.Grad, e.featureBounds())
		t.cl.ReduceScatterSumInto(phaseHist, hl, agg.Hess, e.featureBounds())
	case AggParameterServer:
		t.cl.ShardedGatherSumInto(phaseHist, gl, agg.Grad, t.w, e.featureBounds())
		t.cl.ShardedGatherSumInto(phaseHist, hl, agg.Hess, t.w, e.featureBounds())
	default: // AggAllReduce
		t.cl.AllReduceSumInto(phaseHist, gl, agg.Grad)
		t.cl.AllReduceSumInto(phaseHist, hl, agg.Hess)
	}
	e.agg[node] = agg
	mem := t.cl.Stats().Mem("histogram")
	for w := 0; w < t.w; w++ {
		mem.Add(w, e.layout.SizeBytes())
	}
}

// findSplits locates each frontier node's best split on the aggregated
// histograms, with the work placed where the aggregation method puts it: a
// leader for all-reduce, per-feature-shard workers for reduce-scatter and
// the parameter servers.
func (e *horizontalEngine) findSplits(frontier []*nodeInfo) map[int32]resolvedSplit {
	t := e.t
	out := make(map[int32]resolvedSplit, len(frontier))
	switch t.cfg.Aggregation {
	case AggReduceScatter, AggParameterServer:
		// Each worker finds the best split over its feature shard and
		// serializes it; the records travel in an all-gather and every
		// rank merges the same W records in worker order, so the chosen
		// split is identical on every backend.
		recs := make([][]byte, t.w)
		per := (t.d + t.w - 1) / t.w
		t.cl.ParallelLocal(phaseSplit, func(w int) {
			lo := min(w*per, t.d)
			hi := min(lo+per, t.d)
			splits := make([]histogram.Split, len(frontier))
			for i, nd := range frontier {
				splits[i] = t.finder.FindBestInRange(e.agg[nd.id], nd.totalG, nd.totalH, t.numBinsGlobal, lo, hi)
			}
			recs[w] = encodeSplits(splits)
		})
		for w := range recs {
			if recs[w] == nil {
				recs[w] = make([]byte, len(frontier)*splitWireBytes)
			}
		}
		t.cl.AllGatherFixed(phaseSplit, recs)
		for i, nd := range frontier {
			best := histogram.Split{}
			for w := 0; w < t.w; w++ {
				if s := decodeSplit(recs[w][i*splitWireBytes:]); histogram.Prefer(s, best) {
					best = s
				}
			}
			out[nd.id] = resolvedSplit{node: nd.id, feature: best.Feature, bin: best.Bin,
				gain: best.Gain, defaultLeft: best.DefaultLeft, valid: best.Valid}
		}
	default: // AggAllReduce: the leader scans all features.
		t.cl.ParallelLocal(phaseSplit, func(w int) {
			if !t.cl.Lead(w) {
				return // at most one lead per rank writes out
			}
			// Every rank's lead recomputes the identical result from the
			// fully reduced histograms; the broadcast below charges the
			// split records the leader would send.
			for _, nd := range frontier {
				s := t.finder.FindBest(e.agg[nd.id], nd.totalG, nd.totalH, t.numBinsGlobal)
				out[nd.id] = resolvedSplit{node: nd.id, feature: s.Feature, bin: s.Bin,
					gain: s.Gain, defaultLeft: s.DefaultLeft, valid: s.Valid}
			}
		})
		t.cl.Broadcast(phaseSplit, int64(len(frontier))*splitWireBytes)
	}
	return out
}

// applyLayer updates each worker's local node/instance index; every worker
// holds all features of its rows, so placements are computed locally — no
// placement broadcast, only the (tiny) split records travel.
func (e *horizontalEngine) applyLayer(splits map[int32]resolvedSplit, children map[int32][2]int32) {
	t := e.t
	if t.stream != nil {
		e.applyLayerStreamed(splits, children)
		return
	}
	t.cl.Broadcast(phaseNode, int64(len(splits))*splitWireBytes)
	if t.cfg.Quadrant == QD2 {
		t.cl.ParallelLocal(phaseNode, func(w int) {
			shard := e.rows[w]
			for parent, ch := range children {
				sp := splits[parent]
				e.n2i[w].Split(parent, ch[0], ch[1], func(inst uint32) bool {
					feats, bins := shard.Row(int(inst))
					bin, ok := lookupBin(feats, bins, uint32(sp.feature))
					if !ok {
						return sp.defaultLeft
					}
					return int(bin) <= sp.bin
				})
			}
		})
		return
	}
	// QD1: instance-to-node updated in one pass; each instance's split
	// feature value is found by binary search on its column (the
	// column-store node-splitting cost of Section 3.2.3).
	t.cl.ParallelLocal(phaseNode, func(w int) {
		cols := e.cols[w]
		i2n := e.i2n[w]
		i2n.SplitLayer(children, func(inst uint32) bool {
			sp := splits[i2n.Node(inst)]
			insts, bins := cols.Col(sp.feature)
			bin, ok := searchColumn(insts, bins, inst)
			if !ok {
				return sp.defaultLeft
			}
			return int(bin) <= sp.bin
		})
	})
}

// childStats computes counts and gradient totals of the new children from
// local rows plus one small all-reduce.
func (e *horizontalEngine) childStats(nodes []*nodeInfo) {
	t := e.t
	stride := 2*t.c + 1 // totals + count
	slot := make(map[int32]int, len(nodes))
	for i, nd := range nodes {
		slot[nd.id] = i
	}
	locals := make([][]float64, t.w)
	if t.cfg.Quadrant == QD2 {
		t.cl.ParallelLocal(phaseNode, func(w int) {
			acc := make([]float64, stride*len(nodes))
			base := t.ranges[w][0]
			for _, nd := range nodes {
				o := slot[nd.id] * stride
				insts := e.n2i[w].Instances(nd.id)
				if t.c == 1 {
					var g, h float64
					for _, inst := range insts {
						g += t.grads[base+int(inst)]
						h += t.hessv[base+int(inst)]
					}
					acc[o] += g
					acc[o+1] += h
					acc[o+2] += float64(len(insts))
					continue
				}
				for _, inst := range insts {
					gi := (base + int(inst)) * t.c
					for k := 0; k < t.c; k++ {
						acc[o+k] += t.grads[gi+k]
						acc[o+t.c+k] += t.hessv[gi+k]
					}
					acc[o+2*t.c]++
				}
			}
			locals[w] = acc
		})
	} else {
		t.cl.ParallelLocal(phaseNode, func(w int) {
			acc := make([]float64, stride*len(nodes))
			i2n := e.i2n[w]
			base := t.ranges[w][0]
			if t.c == 1 {
				for inst, nid := range i2n.Assignments() {
					i, ok := slot[nid]
					if !ok {
						continue
					}
					o := i * stride
					acc[o] += t.grads[base+inst]
					acc[o+1] += t.hessv[base+inst]
					acc[o+2]++
				}
				locals[w] = acc
				return
			}
			for inst := 0; inst < i2n.Len(); inst++ {
				i, ok := slot[i2n.Node(uint32(inst))]
				if !ok {
					continue
				}
				o := i * stride
				gi := (base + inst) * t.c
				for k := 0; k < t.c; k++ {
					acc[o+k] += t.grads[gi+k]
					acc[o+t.c+k] += t.hessv[gi+k]
				}
				acc[o+2*t.c]++
			}
			locals[w] = acc
		})
	}
	sum := t.cl.AllReduceSum(phaseNode, locals)
	for i, nd := range nodes {
		o := i * stride
		nd.totalG = append([]float64(nil), sum[o:o+t.c]...)
		nd.totalH = append([]float64(nil), sum[o+t.c:o+2*t.c]...)
		nd.count = int(sum[o+2*t.c])
	}
}

// updatePredictions adds the finished tree's leaf weights to the raw
// scores of each worker's rows; the leaf weights travel in one small
// broadcast.
func (e *horizontalEngine) updatePredictions(tr *tree.Tree) {
	t := e.t
	t.cl.Broadcast(phaseUpdate, int64(tr.NumLeaves()*t.c)*8)
	eta := t.cfg.LearningRate
	if t.cfg.Quadrant == QD2 {
		t.cl.ParallelLocal(phaseUpdate, func(w int) {
			base := t.ranges[w][0]
			for id := range tr.Nodes {
				n := &tr.Nodes[id]
				if !n.IsLeaf() {
					continue
				}
				for _, inst := range e.n2i[w].Instances(int32(id)) {
					gi := (base + int(inst)) * t.c
					for k := 0; k < t.c; k++ {
						t.preds[gi+k] += eta * n.Weights[k]
					}
				}
			}
		})
		return
	}
	t.cl.ParallelLocal(phaseUpdate, func(w int) {
		i2n := e.i2n[w]
		base := t.ranges[w][0]
		for inst := 0; inst < i2n.Len(); inst++ {
			leaf := &tr.Nodes[i2n.Node(uint32(inst))]
			gi := (base + inst) * t.c
			for k := 0; k < t.c; k++ {
				t.preds[gi+k] += eta * leaf.Weights[k]
			}
		}
	})
}

// lookupBin binary-searches a sorted sparse row for a feature.
func lookupBin(feats []uint32, bins []uint16, f uint32) (uint16, bool) {
	lo, hi := 0, len(feats)
	for lo < hi {
		mid := (lo + hi) / 2
		if feats[mid] < f {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	if lo < len(feats) && feats[lo] == f {
		return bins[lo], true
	}
	return 0, false
}

// searchColumn binary-searches a column's sorted instance list.
func searchColumn(insts []uint32, bins []uint16, inst uint32) (uint16, bool) {
	lo, hi := 0, len(insts)
	for lo < hi {
		mid := (lo + hi) / 2
		if insts[mid] < inst {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	if lo < len(insts) && insts[lo] == inst {
		return bins[lo], true
	}
	return 0, false
}
