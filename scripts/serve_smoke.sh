#!/usr/bin/env bash
# End-to-end veroserve smoke test: train two small models, serve one,
# predict, hot-swap to the other without restarting, predict again, and
# scrape /metricz. Run from the repo root; used by CI and reproducible
# locally with `bash scripts/serve_smoke.sh`.
set -euo pipefail

ADDR="127.0.0.1:${SMOKE_PORT:-18099}"
DIR="$(mktemp -d)"
trap 'kill "${SERVER_PID:-}" 2>/dev/null || true; rm -rf "$DIR"' EXIT

echo "== build"
go build -o "$DIR/veroctl" ./cmd/veroctl
go build -o "$DIR/veroserve" ./cmd/veroserve
go build -o "$DIR/datagen" ./cmd/datagen

echo "== train two model versions"
"$DIR/datagen" -n 2000 -d 30 -c 2 -density 0.4 -informative 0.4 -out "$DIR/train.libsvm"
"$DIR/veroctl" train -data "$DIR/train.libsvm" -classes 2 -trees 5 -layers 4 \
  -model "$DIR/model_v1.json" >/dev/null
"$DIR/veroctl" train -data "$DIR/train.libsvm" -classes 2 -trees 8 -layers 4 \
  -model "$DIR/model_v2.json" >/dev/null

echo "== start veroserve"
"$DIR/veroserve" -model "default=$DIR/model_v1.json" -admin -addr "$ADDR" \
  2>"$DIR/server.log" &
SERVER_PID=$!
for i in $(seq 1 50); do
  curl -sf "http://$ADDR/readyz" >/dev/null 2>&1 && break
  [ "$i" = 50 ] && { echo "server never became ready"; cat "$DIR/server.log"; exit 1; }
  sleep 0.2
done

fail() { echo "FAIL: $1"; echo "--- server log:"; cat "$DIR/server.log"; exit 1; }

echo "== predict on v1"
OUT=$(curl -sf -d '{"rows":[{"indices":[0,3],"values":[1.5,-2]}],"proba":true}' \
  "http://$ADDR/v1/predict")
echo "$OUT" | grep -q '"version":1' || fail "predict did not report version 1: $OUT"
echo "$OUT" | grep -q '"probabilities"' || fail "no probabilities: $OUT"

echo "== hot-swap to v2"
OUT=$(curl -sf -d "{\"path\":\"$DIR/model_v2.json\"}" "http://$ADDR/v1/models/default")
echo "$OUT" | grep -q '"version":2' || fail "swap did not bump version: $OUT"
echo "$OUT" | grep -q '"num_trees":8' || fail "swap did not load the new forest: $OUT"
grep -q 'hot-swapped model "default" v1 -> v2' "$DIR/server.log" \
  || fail "swap rationale missing from server log"

echo "== predict on v2"
OUT=$(curl -sf -d '{"rows":[{"indices":[0,3],"values":[1.5,-2]}]}' "http://$ADDR/v1/predict")
echo "$OUT" | grep -q '"version":2' || fail "predict still on old version: $OUT"

echo "== scrape /metricz"
OUT=$(curl -sf "http://$ADDR/metricz")
echo "$OUT" | grep -q '"model":"default"' || fail "metricz missing model: $OUT"
echo "$OUT" | grep -q '"requests":2' || fail "metricz request count wrong: $OUT"
echo "$OUT" | grep -Eq '"p50":[0-9.]+' || fail "metricz missing p50: $OUT"

echo "== list models"
curl -sf "http://$ADDR/v1/models" | grep -q '"version":2' || fail "model list stale"

echo "== corrupt model is rejected before swap"
echo '{"trees": "garbage"}' >"$DIR/corrupt.json"
CODE=$(curl -s -o "$DIR/swap_err.json" -w '%{http_code}' \
  -d "{\"path\":\"$DIR/corrupt.json\"}" "http://$ADDR/v1/models/default")
[ "$CODE" = 400 ] || fail "corrupt model swap answered $CODE, want 400"
curl -sf "http://$ADDR/v1/models/default" | grep -q '"version":2' \
  || fail "corrupt model replaced the serving version"

echo "== SIGTERM drains: /readyz goes 503 (or the listener closes), never stays ready"
kill -TERM "$SERVER_PID"
for i in $(seq 1 50); do
  CODE=$(curl -s -o /dev/null -w '%{http_code}' "http://$ADDR/readyz" 2>/dev/null) || CODE=000
  # 503 = draining, 000 = drain already finished; both mean traffic stopped.
  { [ "$CODE" = 503 ] || [ "$CODE" = 000 ]; } && break
  [ "$i" = 50 ] && fail "/readyz still ready after SIGTERM"
  sleep 0.05
done
wait "$SERVER_PID" 2>/dev/null || true
SERVER_PID=""

echo "serve smoke OK"
