package partition

import (
	"fmt"

	"vero/internal/cluster"
	"vero/internal/datasets"
	"vero/internal/sparse"
)

// TransformSharded is the rank-sharded variant of Transform: the caller
// already materialized only this rank's feature group (a column shard
// loaded by ingest.ReadCacheShard — x keeps the global shape but holds
// entries for the rank's columns only), so the transformation builds just
// the rank's own blockified shard and charges the repartition from the
// shard's replicated GroupNNZ matrix instead of walking remote data.
//
// The charge matrices are byte-identical to what Transform computes over
// the full image: each (source, destination) cell's row and entry counts
// come from the cache's column index (datasets.Shard.GroupNNZ), which
// every rank derives identically — a requirement, since charge-only
// collectives are realized as shadow frames on the distributed transport
// and rank-divergent volumes would desynchronize the mesh.
//
// Like TransformStreamed it requires ingestion-derived splits: a shard
// holds a fraction of the values, so candidate splits cannot be sketched
// from it.
func TransformSharded(cl *cluster.Cluster, x *sparse.CSR, labels []float32, sh *datasets.Shard, opts Options) (*Result, error) {
	if err := opts.setDefaults(); err != nil {
		return nil, err
	}
	rows, d := x.Rows(), x.Cols()
	if rows != len(labels) {
		return nil, fmt.Errorf("partition: %d rows but %d labels", rows, len(labels))
	}
	if opts.Splits == nil || opts.FeatCount == nil {
		return nil, fmt.Errorf("partition: sharded transformation requires ingestion-derived splits (load shards from a .vbin cache)")
	}
	if len(opts.Splits) != d || len(opts.FeatCount) != d {
		return nil, fmt.Errorf("partition: prebin covers %d features, matrix has %d", len(opts.Splits), d)
	}
	w := cl.Workers()
	if sh.Workers != w {
		return nil, fmt.Errorf("partition: shard spans %d workers, cluster has %d", sh.Workers, w)
	}
	if len(sh.GroupNNZ) != w {
		return nil, fmt.Errorf("partition: shard carries a %dx? group matrix, want %dx%d", len(sh.GroupNNZ), w, w)
	}
	rank := sh.Rank
	ranges := HorizontalRanges(rows, w)
	var report ByteReport

	// Step 2 (warm): broadcast the ingestion-derived candidate splits.
	binner := &sparse.Binner{Splits: opts.Splits}
	var splitBytes int64
	for f := 0; f < d; f++ {
		splitBytes += int64(len(opts.Splits[f])) * 4
	}
	cl.Broadcast("transform.splits", splitBytes)
	report.SplitBroadcast = splitBytes

	// Step 3: column grouping (replicated — FeatCount is the full image's)
	// plus the rank's own blocks: one per source row range, holding the
	// rows of that range restricted to the rank's feature group. These are
	// exactly the blocks Transform would have shipped to this destination.
	groups := GroupColumnsBalanced(opts.FeatCount, w)
	slotOf := make([]int32, d)
	for slot, f := range groups[rank] {
		slotOf[f] = int32(slot)
	}
	own := make([]*Block, w)
	cl.ParallelLocal("transform.group", func(int) {
		for src := 0; src < w; src++ {
			lo, hi := ranges[src][0], ranges[src][1]
			b := &Block{RowStart: lo, RowPtr: make([]int64, 1, hi-lo+1)}
			for i := lo; i < hi; i++ {
				feats, vals := x.Row(i)
				for k, f := range feats {
					b.Feat = append(b.Feat, uint32(slotOf[f]))
					b.Bin = append(b.Bin, binner.BinValue(int(f), vals[k]))
				}
				b.RowPtr = append(b.RowPtr, int64(len(b.Feat)))
			}
			own[src] = b
		}
	})

	// Step 4: charge the selected repartition variant from the replicated
	// group matrix; report all three (formulas match TransformStreamed).
	naive := make([][]int64, w)
	compressed := make([][]int64, w)
	blockified := make([][]int64, w)
	binWidth := BinWidthBytes(opts.Q)
	for s := 0; s < w; s++ {
		naive[s] = make([]int64, w)
		compressed[s] = make([]int64, w)
		blockified[s] = make([]int64, w)
		nrows := int64(ranges[s][1] - ranges[s][0])
		for dst := 0; dst < w; dst++ {
			n := sh.GroupNNZ[s][dst]
			fw := FeatWidthBytes(len(groups[dst]))
			naive[s][dst] = n*naiveKVBytes + nrows*perObjectOverheadBytes
			compressed[s][dst] = n*(fw+binWidth) + nrows*perObjectOverheadBytes
			blockified[s][dst] = 16 + (nrows+1)*4 + n*(fw+binWidth)
		}
	}
	sumOffDiag := func(m [][]int64) int64 {
		var t int64
		for i := range m {
			for j := range m[i] {
				if i != j {
					t += m[i][j]
				}
			}
		}
		return t
	}
	report.NaiveShuffle = sumOffDiag(naive)
	report.CompressedShuffle = sumOffDiag(compressed)
	report.BlockifiedShuffle = sumOffDiag(blockified)
	switch opts.Charge {
	case VariantNaive:
		cl.Shuffle("transform.repartition", naive)
	case VariantCompressed:
		cl.Shuffle("transform.repartition", compressed)
	default:
		cl.Shuffle("transform.repartition", blockified)
	}

	// Step 5: label gather + broadcast (labels ride full on every shard).
	labelBytes := int64(len(labels)) * 4
	cl.PointToPoint("transform.labels", labelBytes)
	cl.Broadcast("transform.labels", labelBytes)
	report.LabelBroadcast = labelBytes

	// Assemble the rank's shard only; the other slots stay nil, matching
	// the engine's hosted-only structures on a sharded cluster.
	bs, err := NewBlockSet(own)
	if err != nil {
		return nil, err
	}
	bs.Merge(opts.MaxBlocks)
	numBins := make([]int, len(groups[rank]))
	for slot, f := range groups[rank] {
		numBins[slot] = len(binner.Splits[f])
	}
	shards := make([]*Shard, w)
	shards[rank] = &Shard{
		Worker:   rank,
		Features: groups[rank],
		NumBins:  numBins,
		Data:     bs,
		Labels:   labels,
	}
	return &Result{Groups: groups, Binner: binner, Shards: shards, Bytes: report}, nil
}
