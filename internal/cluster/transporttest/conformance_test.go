package transporttest

import "testing"

// TestConformanceSim pins the simulated backend to the conformance
// contract — it is the reference the TCP backend must be bit-identical to.
func TestConformanceSim(t *testing.T) {
	Run(t, Sim())
}

// TestConformanceTCP runs the identical contract over a live loopback
// mesh: same values bit for bit, same accounted charges, and measured
// payload bytes equal to accounted bytes in every phase.
func TestConformanceTCP(t *testing.T) {
	Run(t, TCP())
}
