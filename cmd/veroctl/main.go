// Command veroctl trains, evaluates and applies GBDT models on LibSVM,
// CSV or .vbin-cache files with any of the paper's data-management
// policies.
//
// Usage:
//
//	veroctl train -data train.libsvm -classes 2 -system vero -model model.json
//	veroctl train -data train.csv -format csv -cache .vero-cache -quadrant auto -model model.json
//	veroctl train -data train.libsvm -checkpoint-dir ckpt -checkpoint-every 10 -model model.json
//	veroctl train -data train.vbin -workers host1:9000,host2:9000 -rank 0 -model model.json
//	veroctl train -data train.vbin -workers host1:9000,host2:9000 -rank 0 -shard -quadrant qd2 -model model.json
//	veroctl ingest -data train.libsvm -classes 2 -out train.vbin
//	veroctl eval  -data valid.libsvm -classes 2 -model model.json
//	veroctl predict -data test.libsvm -classes 2 -model model.json
//	veroctl advise -n 1000000 -d 100000 -workers 8
//	veroctl systems
//
// Data files ending in .vbin are loaded as binned binary caches (see
// docs/DATA.md); -cache DIR keeps a .vbin cache per source file so warm
// runs skip parsing and binning entirely.
package main

import (
	"flag"
	"fmt"
	"net"
	"os"
	"strconv"
	"strings"
	"time"

	"vero/gbdt"
	"vero/internal/failpoint"
)

func main() {
	if len(os.Args) < 2 {
		usage()
		os.Exit(2)
	}
	// Arm fault-injection points requested via VERO_FAILPOINTS — the hook
	// the crash-test harness (scripts/crash_smoke.sh) kills training with.
	// Unset, this is a no-op and every point stays a dead branch.
	if err := failpoint.EnableFromEnv(); err != nil {
		fmt.Fprintln(os.Stderr, "veroctl:", err)
		os.Exit(2)
	}
	var err error
	switch os.Args[1] {
	case "train":
		err = cmdTrain(os.Args[2:])
	case "eval":
		err = cmdEval(os.Args[2:])
	case "predict":
		err = cmdPredict(os.Args[2:])
	case "ingest":
		err = cmdIngest(os.Args[2:])
	case "systems":
		for _, s := range gbdt.Systems() {
			fmt.Printf("%-12s %s\n", s, gbdt.DescribeSystem(s))
		}
	case "advise":
		err = cmdAdvise(os.Args[2:])
	default:
		usage()
		os.Exit(2)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "veroctl:", err)
		os.Exit(1)
	}
}

func usage() {
	fmt.Fprintln(os.Stderr, `usage: veroctl <train|ingest|eval|predict|advise|systems> [flags]
run "veroctl <command> -h" for command flags`)
}

// cmdAdvise implements the paper's future work: recommend a
// data-management policy for a workload and environment (Section 6).
func cmdAdvise(args []string) error {
	fs := flag.NewFlagSet("advise", flag.ExitOnError)
	n := fs.Int64("n", 0, "instances")
	d := fs.Int64("d", 0, "features")
	c := fs.Int64("c", 1, "classes (1 = binary/regression)")
	w := fs.Int64("workers", 8, "workers")
	layers := fs.Int64("layers", 8, "tree layers (L)")
	splits := fs.Int64("splits", 20, "candidate splits (q)")
	nnz := fs.Float64("nnz", 0, "average nonzeros per row (default: dense)")
	tenGig := fs.Bool("10g", false, "10 Gbps network (default 1 Gbps)")
	memGB := fs.Float64("mem", 0, "per-worker memory budget in GB (0 = unlimited)")
	data := fs.String("data", "", "infer shape from a LibSVM file instead")
	classes := fs.Int("classes", 2, "classes for -data")
	fs.Parse(args)

	net := gbdt.Gigabit()
	if *tenGig {
		net = gbdt.TenGigabit()
	}
	var (
		advice gbdt.Advice
		err    error
	)
	if *data != "" {
		ds, rerr := gbdt.ReadLibSVMFile(*data, *classes)
		if rerr != nil {
			return rerr
		}
		advice, err = gbdt.AdviseDataset(ds, int(*w), net)
	} else {
		if *n <= 0 || *d <= 0 {
			return fmt.Errorf("provide -n and -d, or -data")
		}
		advice, err = gbdt.Advise(gbdt.AdvisorWorkload{
			N: *n, D: *d, C: *c, W: *w, L: *layers, Q: *splits,
			NNZPerRow:            *nnz,
			Net:                  net,
			MemoryPerWorkerBytes: int64(*memGB * (1 << 30)),
		})
	}
	if err != nil {
		return err
	}
	fmt.Printf("recommendation: QD%d (%s partitioning + %s-store) -> system %q\n",
		advice.Quadrant, advice.Partitioning, advice.Storage, advice.System)
	fmt.Printf("  modeled comm/tree: horizontal %.4fs, vertical %.4fs\n",
		advice.HorizontalCommSecPerTree, advice.VerticalCommSecPerTree)
	fmt.Printf("  modeled histogram memory/worker: horizontal %.2f GB, vertical %.2f GB\n",
		float64(advice.HorizontalMemBytes)/(1<<30), float64(advice.VerticalMemBytes)/(1<<30))
	fmt.Printf("  why: %s\n", advice.Rationale)
	return nil
}

// ingestFlags registers the shared ingestion flags on fs and returns a
// closure that folds their values (and the class count) into options.
func ingestFlags(fs *flag.FlagSet) func(base gbdt.Options, classes int) (gbdt.Options, error) {
	format := fs.String("format", "", "input format: libsvm (default) or csv")
	cache := fs.String("cache", "", "cache directory: keep a .vbin binned cache per source file")
	chunk := fs.Int("chunk-rows", 0, "ingestion block size in rows (default 4096)")
	workers := fs.Int("parse-workers", 0, "parse worker pool size (default GOMAXPROCS)")
	return func(base gbdt.Options, classes int) (gbdt.Options, error) {
		f, err := gbdt.ParseFormat(*format)
		if err != nil {
			return base, err
		}
		base.Format = f
		base.CacheDir = *cache
		base.ChunkRows = *chunk
		base.NumParseWorkers = *workers
		base.NumClass = classes
		return base, nil
	}
}

// cmdIngest parses a dataset and writes its binned binary cache, either
// to an explicit -out path or into a -cache directory.
func cmdIngest(args []string) error {
	fs := flag.NewFlagSet("ingest", flag.ExitOnError)
	data := fs.String("data", "", "input data (LibSVM or CSV)")
	classes := fs.Int("classes", 2, "1=regression, 2=binary, >2=multi-class")
	out := fs.String("out", "", "output .vbin path (default: derive under -cache)")
	splits := fs.Int("splits", 20, "candidate splits per feature (q)")
	finish := ingestFlags(fs)
	fs.Parse(args)
	if *data == "" {
		return fmt.Errorf("-data is required")
	}
	opts, err := finish(gbdt.Options{Splits: *splits}, *classes)
	if err != nil {
		return err
	}
	if *out != "" && opts.CacheDir != "" {
		return fmt.Errorf("-out and -cache are mutually exclusive")
	}
	if *out == "" && opts.CacheDir == "" {
		opts.CacheDir = ".vero-cache"
	}
	start := time.Now()
	ds, status, err := gbdt.IngestFile(*data, opts)
	if err != nil {
		return err
	}
	if *out != "" {
		if err := gbdt.WriteCacheFile(*out, ds, opts); err != nil {
			return err
		}
	}
	elapsed := time.Since(start)
	rate := float64(ds.NumInstances()) / elapsed.Seconds()
	fmt.Printf("ingested %d x %d (%d classes, %d nonzeros) in %v (%s, %.0f rows/s)\n",
		ds.NumInstances(), ds.NumFeatures(), ds.NumClass, ds.X.NNZ(), elapsed.Round(time.Millisecond), status, rate)
	if *out != "" {
		fmt.Printf("cache written to %s\n", *out)
	} else {
		fmt.Printf("cache directory: %s\n", opts.CacheDir)
	}
	return nil
}

func cmdTrain(args []string) error {
	fs := flag.NewFlagSet("train", flag.ExitOnError)
	data := fs.String("data", "", "training data (LibSVM)")
	classes := fs.Int("classes", 2, "1=regression, 2=binary, >2=multi-class")
	system := fs.String("system", "vero", "GBDT system (see 'veroctl systems')")
	quadrant := fs.String("quadrant", "", "data-management quadrant: qd1..qd4, or 'auto' to let the advisor choose (overrides -system)")
	workers := fs.String("workers", "8", "simulated worker count, or a comma-separated host:port list naming every rank of a real TCP deployment")
	rank := fs.Int("rank", 0, "this process's rank in the -workers peer list (distributed runs)")
	listen := fs.String("listen", "", "listen address override for this rank, e.g. \":9000\" behind NAT (distributed runs; default: own -workers entry)")
	dialTimeout := fs.Duration("dial-timeout", 0, "mesh establishment timeout, including retries while peers start (distributed runs; default 30s)")
	opTimeout := fs.Duration("op-timeout", 0, "per-frame send/receive deadline inside collectives (distributed runs; default 30s)")
	concurrent := fs.Bool("concurrent", false, "run simulated workers on goroutines (needs ~workers idle cores for timing fidelity)")
	trees := fs.Int("trees", 100, "number of trees (T)")
	layers := fs.Int("layers", 8, "tree layers (L)")
	splits := fs.Int("splits", 20, "candidate splits (q)")
	eta := fs.Float64("eta", 0.3, "learning rate")
	lambda := fs.Float64("lambda", 1.0, "L2 regularization")
	gamma := fs.Float64("gamma", 0.0, "per-leaf penalty")
	model := fs.String("model", "model.json", "output model path")
	ckptDir := fs.String("checkpoint-dir", "", "checkpoint directory: save resumable training state every -checkpoint-every trees and resume from it after a crash")
	ckptEvery := fs.Int("checkpoint-every", 0, "checkpoint period in trees (0 disables checkpointing)")
	outOfCore := fs.Bool("out-of-core", false, "train from an mmap-backed view of the .vbin cache instead of loading the matrix into memory (bit-identical models; needs a .vbin -data path or -cache)")
	shard := fs.Bool("shard", false, "load only this rank's shard of the .vbin cache — its row range (qd1/qd2) or feature group (qd3/qd4) — instead of the full image (distributed runs; needs -quadrant and a .vbin -data path)")
	memBudgetMB := fs.Int64("mem-budget-mb", 64, "out-of-core streaming scratch budget in MiB")
	verbose := fs.Bool("v", false, "per-tree progress")
	finish := ingestFlags(fs)
	fs.Parse(args)
	if *data == "" {
		return fmt.Errorf("-data is required")
	}
	if (*ckptDir == "") != (*ckptEvery == 0) {
		return fmt.Errorf("-checkpoint-dir and -checkpoint-every must be set together")
	}
	simWorkers, dist, err := parseWorkers(*workers, *rank, *listen, *dialTimeout, *opTimeout)
	if err != nil {
		return err
	}
	opts, err := finish(gbdt.Options{
		System: gbdt.System(*system), Workers: simWorkers, Distributed: dist, Concurrent: *concurrent,
		Trees: *trees, Layers: *layers, Splits: *splits,
		LearningRate: *eta, Lambda: *lambda, Gamma: *gamma,
		CheckpointDir: *ckptDir, CheckpointEvery: *ckptEvery,
		OutOfCore: *outOfCore, MemBudget: *memBudgetMB << 20,
	}, *classes)
	if err != nil {
		return err
	}
	policy := *system
	if *quadrant != "" {
		q, err := gbdt.ParseQuadrant(*quadrant)
		if err != nil {
			return err
		}
		opts.Quadrant = q
		policy = q.String()
	}
	ingestStart := time.Now()
	var (
		ds     *gbdt.Dataset
		status gbdt.IngestStatus
	)
	if *shard {
		if dist == nil {
			return fmt.Errorf("-shard needs a distributed deployment: pass a host:port peer list to -workers")
		}
		if *outOfCore {
			return fmt.Errorf("-shard and -out-of-core are distinct memory-reduction strategies; pick one")
		}
		ds, err = gbdt.IngestShard(*data, opts)
		status = gbdt.IngestWarm // shard loads always come from the cache image
	} else {
		ds, status, err = gbdt.IngestFile(*data, opts)
	}
	if err != nil {
		return err
	}
	defer ds.Close() // releases the out-of-core mapping; no-op in memory
	fmt.Printf("ingested %d x %d in %v (%s)\n",
		ds.NumInstances(), ds.NumFeatures(), time.Since(ingestStart).Round(time.Millisecond), status)
	if *verbose {
		opts.OnTree = func(i int, elapsed float64, _ *gbdt.Tree) {
			fmt.Printf("tree %3d  simulated elapsed %.3fs\n", i, elapsed)
		}
	}
	m, report, err := gbdt.Train(ds, opts)
	if err != nil {
		return err
	}
	if report.StartRound > 0 {
		fmt.Printf("resumed from checkpoint at round %d of %d\n", report.StartRound, *trees)
	}
	if report.CheckpointErr != nil {
		fmt.Fprintf(os.Stderr, "veroctl: warning: checkpointing degraded: %v\n", report.CheckpointErr)
	}
	// Every rank trains the bit-identical model; only rank 0 persists it
	// so co-located workers don't race on the output path.
	writeModel := !report.Distributed || report.Rank == 0
	if writeModel {
		enc, err := m.Encode()
		if err != nil {
			return err
		}
		if err := os.WriteFile(*model, enc, 0o644); err != nil {
			return err
		}
	}
	if sel := report.Selection; sel != nil {
		policy = sel.Quadrant.String()
		fmt.Printf("auto-selected %v -> system %q\n  why: %s\n",
			sel.Quadrant, sel.Advice.System, sel.Advice.Rationale)
	}
	fmt.Printf("trained %d trees on %d x %d (%s)\n", m.NumTrees(), ds.NumInstances(), ds.NumFeatures(), policy)
	fmt.Printf("simulated: comp %.3fs  comm %.3fs  prep %.3fs  comm volume %.1f MB\n",
		report.CompSeconds, report.CommSeconds, report.PrepSeconds, float64(report.CommBytes)/(1<<20))
	if report.Distributed {
		printDistributed(report, len(dist.Peers))
	}
	fmt.Printf("peak heap: %.1f MiB\n", float64(report.PeakHeapBytes)/(1<<20))
	if writeModel {
		fmt.Printf("model written to %s\n", *model)
	}
	return nil
}

// parseWorkers interprets -workers: a bare integer is a simulated worker
// count; a comma-separated host:port list is a real deployment's peer
// roster, one entry per rank.
func parseWorkers(spec string, rank int, listen string, dialTimeout, opTimeout time.Duration) (int, *gbdt.DistributedOptions, error) {
	if n, err := strconv.Atoi(strings.TrimSpace(spec)); err == nil {
		return n, nil, nil
	}
	peers := strings.Split(spec, ",")
	for i, p := range peers {
		peers[i] = strings.TrimSpace(p)
		if _, _, err := net.SplitHostPort(peers[i]); err != nil {
			return 0, nil, fmt.Errorf("-workers entry %q: %w", peers[i], err)
		}
	}
	if rank < 0 || rank >= len(peers) {
		return 0, nil, fmt.Errorf("-rank %d out of range for %d peers", rank, len(peers))
	}
	return len(peers), &gbdt.DistributedOptions{
		Peers: peers, Rank: rank, Listen: listen,
		DialTimeout: dialTimeout, OpTimeout: opTimeout,
	}, nil
}

// printDistributed prints the measured transport numbers next to the
// alpha-beta model's predictions, totals first, then per phase. The two
// byte columns agree by construction — the accounted volume is exactly
// the payload the transport moves — so a mismatch means a lost frame.
func printDistributed(report *gbdt.Report, peers int) {
	check := "bytes agree"
	if report.MeasuredCommBytes != report.CommBytes {
		check = "BYTE MISMATCH"
	}
	fmt.Printf("distributed: rank %d of %d peers\n", report.Rank, peers)
	fmt.Printf("measured: comm %.3fs  payload %.1f MB (%s)  wire %.1f MB incl. framing\n",
		report.MeasuredCommSeconds, float64(report.MeasuredCommBytes)/(1<<20), check,
		float64(report.WireBytes)/(1<<20))
	fmt.Printf("%-22s %14s %14s %12s %12s\n", "phase", "accounted B", "measured B", "model s", "measured s")
	for _, p := range report.Phases {
		fmt.Printf("%-22s %14d %14d %12.4f %12.4f\n",
			p.Phase, p.AccountedBytes, p.MeasuredBytes, p.ModelSeconds, p.MeasuredSeconds)
	}
}

func loadModelAndData(fs *flag.FlagSet, args []string) (*gbdt.Model, *gbdt.Dataset, error) {
	data := fs.String("data", "", "data file (LibSVM, CSV or .vbin)")
	classes := fs.Int("classes", 2, "1=regression, 2=binary, >2=multi-class")
	model := fs.String("model", "model.json", "model path")
	finish := ingestFlags(fs)
	fs.Parse(args)
	if *data == "" {
		return nil, nil, fmt.Errorf("-data is required")
	}
	enc, err := os.ReadFile(*model)
	if err != nil {
		return nil, nil, err
	}
	m, err := gbdt.DecodeModel(enc)
	if err != nil {
		return nil, nil, err
	}
	opts, err := finish(gbdt.Options{}, *classes)
	if err != nil {
		return nil, nil, err
	}
	// Evaluation and prediction discard candidate splits, so read without
	// the sketch pass.
	ds, _, err := gbdt.ReadDataFile(*data, opts)
	if err != nil {
		return nil, nil, err
	}
	return m, ds, nil
}

func cmdEval(args []string) error {
	m, ds, err := loadModelAndData(flag.NewFlagSet("eval", flag.ExitOnError), args)
	if err != nil {
		return err
	}
	switch {
	case ds.NumClass == 1:
		fmt.Printf("rmse: %.6f\n", gbdt.RMSE(m, ds))
	case ds.NumClass == 2:
		fmt.Printf("auc: %.6f  accuracy: %.6f  logloss: %.6f\n",
			gbdt.AUC(m, ds), gbdt.Accuracy(m, ds), gbdt.LogLoss(m, ds))
	default:
		fmt.Printf("accuracy: %.6f  logloss: %.6f\n", gbdt.Accuracy(m, ds), gbdt.LogLoss(m, ds))
	}
	return nil
}

func cmdPredict(args []string) error {
	m, ds, err := loadModelAndData(flag.NewFlagSet("predict", flag.ExitOnError), args)
	if err != nil {
		return err
	}
	scores := m.Predict(ds)
	stride := len(scores) / ds.NumInstances()
	for i := 0; i < ds.NumInstances(); i++ {
		for k := 0; k < stride; k++ {
			if k > 0 {
				fmt.Print(" ")
			}
			fmt.Printf("%g", scores[i*stride+k])
		}
		fmt.Println()
	}
	return nil
}
