package datasets

// Prebin carries binning state derived during ingestion: the candidate
// split points and per-feature value counts that a (SketchEps, Q)
// quantile-sketch pass over the source data produced. When a Dataset
// arrives with a Prebin whose parameters match the training
// configuration, the trainer adopts it instead of re-sketching — the warm
// path a .vbin cache (internal/ingest) enables.
//
// The split points are exactly what sketch.Canonical + CandidateSplits
// would compute over the raw values, so adopting them changes nothing
// about the trained model; it only removes the sketch phase from
// preparation.
type Prebin struct {
	// SketchEps is the quantile-sketch error bound the splits were
	// derived with (core.Config.SketchEps).
	SketchEps float64
	// Q is the candidate-split budget per feature (core.Config.Splits).
	Q int
	// Splits holds the ascending candidate split values of each feature;
	// Splits[f] is nil for features with no stored values.
	Splits [][]float32
	// FeatCount is the number of non-NaN stored values per feature — the
	// sketch counts the vertical quadrants balance column groups with.
	FeatCount []int64
	// Quantized marks a dataset whose X values are bin representatives
	// reconstructed from a cache rather than source values. Training a
	// quantized dataset with parameters other than (SketchEps, Q) is an
	// error: the source values needed to re-sketch are gone.
	Quantized bool
}

// Matches reports whether the prebin was derived with exactly the given
// sketch parameters.
func (p *Prebin) Matches(eps float64, q int) bool {
	return p != nil && p.SketchEps == eps && p.Q == q
}
