// Package transporttest is the conformance suite every cluster.Transport
// backend must pass. It drives the full collective surface — all-reduce,
// reduce-scatter (even and custom bounds), sharded gather, root gather,
// fixed-record all-gather, the merged-contribution variants and every
// charge-only (shadow-realized) collective — across several deployment
// sizes and aligned, ragged, tiny and empty payloads, and checks three
// invariants:
//
//  1. Values: reductions equal the rank-ordered sum bit for bit (the
//     simulation's reduction order), with distributed ownership semantics
//     (non-owned regions keep the local contribution).
//  2. Accounting: every handle charges exactly what a plain simulated
//     cluster charges for the same sequence — the alpha-beta model is
//     backend-independent.
//  3. Measurement: on a distributed backend, after SyncMeasured every
//     phase's measured payload bytes equal its accounted bytes.
package transporttest

import (
	"fmt"
	"sync"
	"testing"
	"time"

	"vero/internal/cluster"
)

// Backend constructs a W-worker deployment for the suite. New returns one
// cluster handle per process of the deployment: the simulated backend
// returns a single handle hosting all W workers, a real transport returns
// W handles, one per rank. Cleanup is the constructor's job (t.Cleanup).
type Backend struct {
	Name string
	New  func(t *testing.T, w int) []*cluster.Cluster
}

// Sim is the simulated (in-process, charge-only) backend.
func Sim() Backend {
	return Backend{
		Name: "sim",
		New: func(t *testing.T, w int) []*cluster.Cluster {
			return []*cluster.Cluster{cluster.New(w, cluster.Gigabit())}
		},
	}
}

// TCP is the socket backend over a loopback mesh.
func TCP() Backend {
	return Backend{
		Name: "tcp",
		New: func(t *testing.T, w int) []*cluster.Cluster {
			return Loopback(t, w, cluster.Gigabit())
		},
	}
}

// Loopback builds a live W-rank TCP deployment on 127.0.0.1: it pre-binds
// one port-0 listener per rank (sidestepping the address chicken-and-egg
// of config-file topologies) and connects all ranks concurrently. The
// returned handles are rank-ordered; Close is registered on tb.
func Loopback(tb testing.TB, w int, model cluster.NetworkModel) []*cluster.Cluster {
	tb.Helper()
	handles, errs := ConnectMesh(tb, MeshConfig{W: w, Model: model, OpTimeout: 10 * time.Second})
	for r, err := range errs {
		if err != nil {
			tb.Fatalf("connecting rank %d: %v", r, err)
		}
	}
	return handles
}

// Run drives the conformance suite against the backend.
func Run(t *testing.T, b Backend) {
	for _, w := range []int{2, 3, 5, 8} {
		t.Run(fmt.Sprintf("W%d", w), func(t *testing.T) {
			handles := b.New(t, w)
			var wg sync.WaitGroup
			wg.Add(len(handles))
			for _, h := range handles {
				go func(h *cluster.Cluster) {
					defer wg.Done()
					runScript(t, h, w)
					if err := h.SyncMeasured(); err != nil {
						t.Errorf("rank %d: SyncMeasured: %v", h.Rank(), err)
					}
				}(h)
			}
			wg.Wait()
			if t.Failed() {
				return
			}
			// Reference accounting: the same script on a plain simulation.
			ref := cluster.New(w, cluster.Gigabit())
			runScript(t, ref, w)
			for _, h := range handles {
				checkAccounting(t, h, ref)
			}
		})
	}
}

// payloadLens returns the element counts the script sweeps: empty, a
// single element (fewer elements than workers), a ragged length no worker
// count divides, and an aligned multiple of W.
func payloadLens(w int) []int {
	return []int{0, 1, 3*w + 1, 8 * w}
}

// vec is rank v's deterministic contribution for an n-element reduction.
func vec(v, n int) []float64 {
	xs := make([]float64, n)
	for i := range xs {
		xs[i] = float64((v*2654435761+i*40503)%2048)/16.0 - 60.0
	}
	return xs
}

// rankOrderSum is the expected reduction: zero-initialized, contributions
// added in rank order — bit for bit what every conforming backend returns.
func rankOrderSum(w, n int) []float64 {
	acc := make([]float64, n)
	for v := 0; v < w; v++ {
		for i, x := range vec(v, n) {
			acc[i] += x
		}
	}
	return acc
}

// hostedLocals builds the locals slice for one handle: rank v's vector at
// every hosted index, nil elsewhere.
func hostedLocals(c *cluster.Cluster, w, n int) [][]float64 {
	locals := make([][]float64, w)
	for v := 0; v < w; v++ {
		if c.HostsWorker(v) {
			locals[v] = vec(v, n)
		}
	}
	return locals
}

// localContribution is what a distributed rank's buffer holds outside the
// segments it owns; on the simulation every element is globally reduced.
func localContribution(c *cluster.Cluster, w, n int) []float64 {
	if !c.Distributed() {
		return rankOrderSum(w, n)
	}
	return vec(c.Rank(), n)
}

// checkRegion compares got[lo:hi] against want[lo:hi] bit for bit.
func checkRegion(t *testing.T, c *cluster.Cluster, op string, got, want []float64, lo, hi int) {
	t.Helper()
	for i := lo; i < hi; i++ {
		if got[i] != want[i] {
			t.Errorf("rank %d: %s: element %d = %v, want %v", c.Rank(), op, i, got[i], want[i])
			return
		}
	}
}

// checkOwned verifies distributed ownership semantics: segment s of bounds
// holds the global sum at its owning rank, and every other element holds
// the local contribution. On the simulation everything is the global sum.
func checkOwned(t *testing.T, c *cluster.Cluster, op string, got []float64, bounds []int, w, n int) {
	t.Helper()
	global := rankOrderSum(w, n)
	local := localContribution(c, w, n)
	segs := len(bounds) - 1
	for i := range got {
		want := local[i]
		for s := 0; s < segs; s++ {
			if i >= bounds[s] && i < bounds[s+1] && (!c.Distributed() || s == c.Rank()) {
				want = global[i]
			}
		}
		if got[i] != want {
			t.Errorf("rank %d: %s: element %d = %v, want %v (bounds %v)", c.Rank(), op, i, got[i], want, bounds)
			return
		}
	}
}

// runScript executes the canonical collective sequence on one handle. It
// must stay deterministic and handle-independent: every rank of a
// distributed deployment replays it against the same phase labels, which
// is also what keeps the frames' sequence numbers aligned.
func runScript(t *testing.T, c *cluster.Cluster, w int) {
	shards := min(3, w)
	for _, n := range payloadLens(w) {
		global := rankOrderSum(w, n)

		got := c.AllReduceSum("conf.allreduce", hostedLocals(c, w, n))
		checkRegion(t, c, "all-reduce", got, global, 0, n)

		dst := make([]float64, n)
		c.AllReduceSumInto("conf.allreduce.into", hostedLocals(c, w, n), dst)
		checkRegion(t, c, "all-reduce-into", dst, global, 0, n)

		sum, shard := c.ReduceScatterSum("conf.rs", hostedLocals(c, w, n))
		bounds := make([]int, w+1)
		for v := 0; v < w; v++ {
			bounds[v], bounds[v+1] = shard[v][0], shard[v][1]
		}
		checkOwned(t, c, "reduce-scatter", sum, bounds, w, n)

		if n >= 2 {
			ragged := []int{0, 1, n} // two deliberately unequal segments
			dst = make([]float64, n)
			c.ReduceScatterSumInto("conf.rs.bounds", hostedLocals(c, w, n), dst, ragged)
			checkOwned(t, c, "reduce-scatter-bounds", dst, ragged, w, n)
		}

		got = c.ShardedGatherSum("conf.sg", hostedLocals(c, w, n), shards)
		checkOwned(t, c, "sharded-gather", got, cluster.EvenBounds(n, shards), w, n)

		got = c.GatherSum("conf.gather", hostedLocals(c, w, n))
		rootBounds := []int{0, n} // one segment, owned by rank 0
		checkOwned(t, c, "gather", got, rootBounds, w, n)

		// Merged-contribution variants: the buffer enters holding the
		// hosted workers' merged contribution.
		buf := append([]float64(nil), localContribution(c, w, n)...)
		c.AllReduceMerged("conf.merged.ar", buf)
		checkRegion(t, c, "all-reduce-merged", buf, global, 0, n)

		buf = append([]float64(nil), localContribution(c, w, n)...)
		c.ReduceScatterMerged("conf.merged.rs", nil, buf)
		checkOwned(t, c, "reduce-scatter-merged", buf, cluster.EvenBounds(n, w), w, n)

		buf = append([]float64(nil), localContribution(c, w, n)...)
		c.ShardedGatherMerged("conf.merged.sg", shards, nil, buf)
		checkOwned(t, c, "sharded-gather-merged", buf, cluster.EvenBounds(n, shards), w, n)

		// Fixed-record all-gather, including zero-length records.
		for _, b := range []int{0, 24} {
			recs := make([][]byte, w)
			for v := 0; v < w; v++ {
				recs[v] = make([]byte, b)
				if c.HostsWorker(v) {
					for i := range recs[v] {
						recs[v][i] = byte(v*31 + i)
					}
				}
			}
			c.AllGatherFixed("conf.ag", recs)
			for v := 0; v < w; v++ {
				for i := range recs[v] {
					if recs[v][i] != byte(v*31+i) {
						t.Errorf("rank %d: all-gather: record %d byte %d = %#x, want %#x", c.Rank(), v, i, recs[v][i], byte(v*31+i))
						return
					}
				}
			}
		}

		// Data-carrying broadcast: the root's bytes must arrive verbatim at
		// every rank, for several roots and payload sizes (including empty).
		for _, root := range []int{0, w - 1} {
			for _, b := range []int{0, 17} {
				buf := make([]byte, b)
				if !c.Distributed() || c.Rank() == root {
					for i := range buf {
						buf[i] = byte(root*13 + i)
					}
				}
				c.BroadcastBytes("conf.bcastbytes", buf, root)
				for i := range buf {
					if buf[i] != byte(root*13+i) {
						t.Errorf("rank %d: broadcast-bytes root %d: byte %d = %#x, want %#x", c.Rank(), root, i, buf[i], byte(root*13+i))
						return
					}
				}
			}
		}

		// Charge-only collectives, realized as shadow traffic on a real
		// transport in exactly the charged volume.
		c.Broadcast("conf.bcast", 1000)
		c.AllGatherSmall("conf.smallag", 64)
		c.PointToPoint("conf.p2p", 128)
		matrix := make([][]int64, w)
		for i := range matrix {
			matrix[i] = make([]int64, w)
			for j := range matrix[i] {
				if i != j {
					matrix[i][j] = int64((i + 1) * (j + 2))
				}
			}
		}
		c.Shuffle("conf.shuffle", matrix)
		c.ChargeComm("conf.charge", cluster.OpShuffle, 997, 1e-3)
	}
	if err := c.Err(); err != nil {
		t.Errorf("rank %d: transport error after script: %v", c.Rank(), err)
	}
}

// checkAccounting pins one handle's per-phase records to the simulated
// reference: identical accounted bytes and model seconds, and — on a
// distributed handle, after SyncMeasured — measured payload bytes equal
// to the accounted bytes of every phase.
func checkAccounting(t *testing.T, h, ref *cluster.Cluster) {
	t.Helper()
	for _, name := range ref.Stats().PhaseNames() {
		want := ref.Stats().Phase(name)
		got := h.Stats().Phase(name)
		if got.TotalBytes() != want.TotalBytes() {
			t.Errorf("rank %d: phase %s accounted %d bytes, reference %d", h.Rank(), name, got.TotalBytes(), want.TotalBytes())
		}
		if got.CommSeconds != want.CommSeconds {
			t.Errorf("rank %d: phase %s modeled %v comm seconds, reference %v", h.Rank(), name, got.CommSeconds, want.CommSeconds)
		}
		if h.Distributed() {
			if got.MeasuredBytes != got.TotalBytes() {
				t.Errorf("rank %d: phase %s measured %d bytes, accounted %d", h.Rank(), name, got.MeasuredBytes, got.TotalBytes())
			}
		} else if got.MeasuredBytes != 0 {
			t.Errorf("rank %d: phase %s measured %d bytes on the simulation", h.Rank(), name, got.MeasuredBytes)
		}
	}
	if h.Distributed() && h.WireBytes() == 0 {
		t.Errorf("rank %d: zero wire bytes after a distributed script", h.Rank())
	}
}
