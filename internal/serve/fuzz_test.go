package serve

import (
	"bytes"
	"testing"
)

// FuzzDecodePredictRequest feeds arbitrary bytes through the /v1/predict
// body decoder: it must never panic, and any body it accepts must come
// out as normalized rows the prediction engine's preconditions hold for
// (parallel slices, strictly sorted feature ids, within the batch limit).
func FuzzDecodePredictRequest(f *testing.F) {
	f.Add([]byte(`{"rows":[{"indices":[0,7],"values":[1.5,-2]}],"proba":true}`))
	f.Add([]byte(`{"dense":[[1.5,0,0,-2]]}`))
	f.Add([]byte(`{"rows":[{"indices":[7,0],"values":[1,2]}],"dense":[[0,1]]}`))
	f.Add([]byte(`{"rows":[{"indices":[1,1],"values":[1,2]}]}`))
	f.Add([]byte(`{"rows":[{"indices":[4294967295],"values":[3.4e38]}]}`))
	f.Add([]byte(`{nope`))
	f.Add([]byte(`{"rows":[],"dense":[]}`))
	f.Add([]byte(`{"unknown":1}`))
	f.Fuzz(func(t *testing.T, data []byte) {
		const maxRows = 64
		req, feats, vals, status, err := decodePredictRequest(bytes.NewReader(data), maxRows)
		if err != nil {
			if status < 400 || status > 599 {
				t.Fatalf("error %v carries non-error status %d", err, status)
			}
			return
		}
		if req == nil {
			t.Fatal("accepted body returned nil request")
		}
		n := len(req.Rows) + len(req.Dense)
		if n == 0 || n > maxRows {
			t.Fatalf("accepted %d rows outside (0,%d]", n, maxRows)
		}
		if len(feats) != n || len(vals) != n {
			t.Fatalf("%d rows decoded to %d/%d slices", n, len(feats), len(vals))
		}
		for i := range feats {
			if len(feats[i]) != len(vals[i]) {
				t.Fatalf("row %d: %d indices, %d values", i, len(feats[i]), len(vals[i]))
			}
			for j := 1; j < len(feats[i]); j++ {
				if feats[i][j] <= feats[i][j-1] {
					t.Fatalf("row %d not strictly sorted at %d: %v", i, j, feats[i])
				}
			}
		}
	})
}
