package ingest

import (
	"fmt"
	"io"
	"os"

	"vero/internal/datasets"
	"vero/internal/sketch"
	"vero/internal/sparse"
)

// collector accumulates ordered blocks into CSR arrays, optionally feeding
// per-feature quantile sketches as rows arrive.
type collector struct {
	labels []float32
	rowPtr []int64
	feat   []uint32
	val    []float32
	cols   int

	sketchEps float64
	sketches  []*sketch.GK // nil when the pass does not sketch
}

func newCollector(sketchEps float64) *collector {
	c := &collector{rowPtr: make([]int64, 1, 1024), sketchEps: sketchEps}
	if sketchEps > 0 {
		c.sketches = make([]*sketch.GK, 0)
	}
	return c
}

// add appends one block. Blocks arrive in file order (ScanBlocks
// guarantees it), so sketch insertion order equals global row order —
// exactly the order sketch.Canonical uses.
func (c *collector) add(b *Block) error {
	if b.Cols > c.cols {
		c.cols = b.Cols
	}
	base := int64(len(c.feat))
	c.feat = append(c.feat, b.Feat...)
	c.val = append(c.val, b.Val...)
	for i := 1; i < len(b.RowPtr); i++ {
		c.rowPtr = append(c.rowPtr, base+b.RowPtr[i])
	}
	c.labels = append(c.labels, b.Labels...)
	if c.sketches != nil {
		for len(c.sketches) < c.cols {
			c.sketches = append(c.sketches, nil)
		}
		for k, f := range b.Feat {
			if c.sketches[f] == nil {
				c.sketches[f] = sketch.New(c.sketchEps)
			}
			c.sketches[f].Add(float64(b.Val[k]))
		}
	}
	return nil
}

// dataset finalizes the accumulated matrix into a Dataset named name.
func (c *collector) dataset(name string, numClass int) (*datasets.Dataset, error) {
	cols := c.cols
	if len(c.labels) == 0 {
		cols = 0
	} else if cols == 0 {
		// Rows but no stored entries: the reference parser derives cols as
		// maxFeat+1 with maxFeat starting at zero, so feature 0 exists.
		cols = 1
	}
	x, err := sparse.NewCSR(len(c.labels), cols, c.rowPtr, c.feat, c.val)
	if err != nil {
		return nil, fmt.Errorf("ingest: assemble: %w", err)
	}
	task := datasets.TaskRegression
	switch {
	case numClass == 2:
		task = datasets.TaskBinary
	case numClass > 2:
		task = datasets.TaskMulti
	}
	return &datasets.Dataset{Name: name, X: x, Labels: c.labels, NumClass: numClass, Task: task}, nil
}

// prebin derives the candidate splits and per-feature counts from the
// collector's streamed sketches. cols is the finalized dataset width,
// which can exceed the sketched width (a dataset with rows but no stored
// entries still has one feature).
func (c *collector) prebin(q, cols int) *datasets.Prebin {
	pb := &datasets.Prebin{
		SketchEps: c.sketchEps,
		Q:         q,
		Splits:    make([][]float32, cols),
		FeatCount: make([]int64, cols),
	}
	for f, sk := range c.sketches {
		if sk == nil || sk.Count() == 0 {
			continue
		}
		pb.Splits[f] = sk.CandidateSplits(q)
		pb.FeatCount[f] = sk.Count()
	}
	return pb
}

// ReadDataset parses the input through the chunked parallel pipeline and
// returns the in-memory dataset, without deriving bins. The result is
// bit-identical to the single-threaded reference parser for LibSVM input
// (datasets.ReadLibSVM): same matrix, same labels.
func ReadDataset(r io.Reader, opts Options) (*datasets.Dataset, error) {
	opts, err := opts.withDefaults()
	if err != nil {
		return nil, err
	}
	c := newCollector(0)
	if err := ScanBlocks(r, opts, c.add); err != nil {
		return nil, err
	}
	return c.dataset(string(opts.Format), opts.NumClass)
}

// Ingest parses the input and simultaneously feeds per-feature quantile
// sketches, returning a dataset with a Prebin attached: candidate splits
// identical to what the trainer's canonical sketch pass would derive with
// the same (SketchEps, Q). Training the result skips the sketch phase.
func Ingest(r io.Reader, opts Options) (*datasets.Dataset, error) {
	opts, err := opts.withDefaults()
	if err != nil {
		return nil, err
	}
	c := newCollector(opts.SketchEps)
	if err := ScanBlocks(r, opts, c.add); err != nil {
		return nil, err
	}
	ds, err := c.dataset(string(opts.Format), opts.NumClass)
	if err != nil {
		return nil, err
	}
	ds.Prebin = c.prebin(opts.Q, ds.NumFeatures())
	return ds, nil
}

// IngestFile is Ingest over a file.
func IngestFile(path string, opts Options) (*datasets.Dataset, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("ingest: %w", err)
	}
	defer f.Close()
	return Ingest(f, opts)
}

// Prebinned derives a Prebin for an already-materialized dataset by the
// same canonical pass ingestion streams: one sketch per feature, values
// inserted in global row order. It is how datasets that never passed
// through a file (synthetic generators) get cached.
func Prebinned(ds *datasets.Dataset, sketchEps float64, q int) *datasets.Prebin {
	sks := sketch.Canonical(ds.X, sketchEps)
	pb := &datasets.Prebin{
		SketchEps: sketchEps,
		Q:         q,
		Splits:    make([][]float32, ds.NumFeatures()),
		FeatCount: make([]int64, ds.NumFeatures()),
	}
	for f, sk := range sks {
		if sk == nil || sk.Count() == 0 {
			continue
		}
		pb.Splits[f] = sk.CandidateSplits(q)
		pb.FeatCount[f] = sk.Count()
	}
	return pb
}
