package ingest

import (
	"bytes"
	"encoding/binary"
	"errors"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"
	"time"

	"vero/internal/datasets"
	"vero/internal/sparse"
)

// TestCacheRoundTrip writes a cache and checks the reconstructed dataset
// re-bins to exactly the stored bins: the invariant the bit-identical
// training guarantee reduces to.
func TestCacheRoundTrip(t *testing.T) {
	ref, text := sampleLibSVM(t, 400, 60, 3, 21)
	ds, err := Ingest(strings.NewReader(text), Options{NumClass: 3})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := WriteCache(&buf, ds, ds.Prebin); err != nil {
		t.Fatal(err)
	}
	got, err := ReadCache(bytes.NewReader(buf.Bytes()), "roundtrip")
	if err != nil {
		t.Fatal(err)
	}
	if got.NumInstances() != ref.NumInstances() || got.NumFeatures() != ref.NumFeatures() {
		t.Fatalf("shape %dx%d, want %dx%d", got.NumInstances(), got.NumFeatures(), ref.NumInstances(), ref.NumFeatures())
	}
	if !reflect.DeepEqual(got.Labels, ref.Labels) {
		t.Fatal("labels differ")
	}
	if got.NumClass != 3 || got.Task != datasets.TaskMulti {
		t.Fatalf("numClass %d task %s", got.NumClass, got.Task)
	}
	pb := got.Prebin
	if pb == nil || !pb.Quantized || !pb.Matches(0.01, 20) {
		t.Fatalf("prebin = %+v", pb)
	}
	if !reflect.DeepEqual(pb.Splits, ds.Prebin.Splits) || !reflect.DeepEqual(pb.FeatCount, ds.Prebin.FeatCount) {
		t.Fatal("cached splits differ from ingested splits")
	}
	// Same sparsity pattern...
	if !reflect.DeepEqual(got.X.RowPtr, ref.X.RowPtr) || !reflect.DeepEqual(got.X.Feat, ref.X.Feat) {
		t.Fatal("sparsity pattern differs")
	}
	// ...and bin-identical values: binning the reconstructed matrix equals
	// binning the source matrix.
	binner := &sparse.Binner{Splits: pb.Splits}
	wantBins, err := binner.BinCSR(ref.X)
	if err != nil {
		t.Fatal(err)
	}
	gotBins, err := binner.BinCSR(got.X)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(gotBins.Bin, wantBins.Bin) {
		t.Fatal("reconstructed values bin differently than source values")
	}
}

func TestCacheVersionMismatchRejected(t *testing.T) {
	_, text := sampleLibSVM(t, 50, 10, 2, 1)
	ds, err := Ingest(strings.NewReader(text), Options{NumClass: 2})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := WriteCache(&buf, ds, ds.Prebin); err != nil {
		t.Fatal(err)
	}
	img := buf.Bytes()
	binary.LittleEndian.PutUint32(img[4:], vbinVersion+1)
	_, err = ReadCache(bytes.NewReader(img), "future")
	var mismatch *CacheMismatchError
	if !errors.As(err, &mismatch) {
		t.Fatalf("err = %v, want CacheMismatchError", err)
	}
	if !strings.Contains(err.Error(), "cache version 2, want 1") {
		t.Fatalf("err = %v", err)
	}
}

func TestCacheCorruptionRejected(t *testing.T) {
	_, text := sampleLibSVM(t, 50, 10, 2, 2)
	ds, err := Ingest(strings.NewReader(text), Options{NumClass: 2})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := WriteCache(&buf, ds, ds.Prebin); err != nil {
		t.Fatal(err)
	}
	img := buf.Bytes()

	flipped := append([]byte(nil), img...)
	flipped[vbinHeaderSize+8] ^= 0xff
	if _, err := ReadCache(bytes.NewReader(flipped), "flip"); err == nil || !strings.Contains(err.Error(), "checksum") {
		t.Fatalf("flipped byte: err = %v", err)
	}
	if _, err := ReadCache(bytes.NewReader(img[:len(img)/2]), "trunc"); err == nil {
		t.Fatal("truncated image accepted")
	}
	if _, err := ReadCache(bytes.NewReader([]byte("not a cache at all")), "junk"); err == nil || !strings.Contains(err.Error(), "bad magic") {
		t.Fatalf("junk: err = %v", err)
	}
}

func TestCachedWarmAndCold(t *testing.T) {
	dir := t.TempDir()
	_, text := sampleLibSVM(t, 200, 30, 2, 9)
	src := filepath.Join(dir, "train.libsvm")
	if err := os.WriteFile(src, []byte(text), 0o644); err != nil {
		t.Fatal(err)
	}
	cacheDir := filepath.Join(dir, "cache")
	opts := Options{NumClass: 2}

	cold, status, err := Cached(cacheDir, src, opts)
	if err != nil {
		t.Fatal(err)
	}
	if status != CacheCold {
		t.Fatalf("first load: status %s, want cold", status)
	}
	warm, status, err := Cached(cacheDir, src, opts)
	if err != nil {
		t.Fatal(err)
	}
	if status != CacheWarm {
		t.Fatalf("second load: status %s, want warm", status)
	}
	if !warm.Prebin.Quantized || cold.Prebin.Quantized {
		t.Fatal("quantized flags wrong way around")
	}
	if !reflect.DeepEqual(warm.Labels, cold.Labels) {
		t.Fatal("warm labels differ")
	}

	// Different parameters key a different cache file -> cold again.
	_, status, err = Cached(cacheDir, src, Options{NumClass: 2, Q: 16})
	if err != nil {
		t.Fatal(err)
	}
	if status != CacheCold {
		t.Fatalf("changed q: status %s, want cold", status)
	}

	// Touching the source invalidates the cache.
	future := time.Now().Add(time.Hour)
	if err := os.Chtimes(src, future, future); err != nil {
		t.Fatal(err)
	}
	_, status, err = Cached(cacheDir, src, opts)
	if err != nil {
		t.Fatal(err)
	}
	if status != CacheCold {
		t.Fatalf("stale cache: status %s, want cold", status)
	}

	// A corrupted cache file is a miss, not an error.
	path, err := CachePath(cacheDir, src, opts)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, []byte("garbage"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := os.Chtimes(path, future.Add(time.Hour), future.Add(time.Hour)); err != nil {
		t.Fatal(err)
	}
	_, status, err = Cached(cacheDir, src, opts)
	if err != nil {
		t.Fatal(err)
	}
	if status != CacheCold {
		t.Fatalf("corrupt cache: status %s, want cold", status)
	}
}

func TestWriteCacheRequiresPrebin(t *testing.T) {
	ds, _ := sampleLibSVM(t, 10, 5, 2, 4)
	if err := WriteCache(&bytes.Buffer{}, ds, nil); err == nil {
		t.Fatal("nil prebin accepted")
	}
}

// TestCacheNaNValues checks the NaN path end to end: NaN values are
// stored (bin 0), sketch counts exclude them, and reconstruction re-bins
// identically.
func TestCacheNaNValues(t *testing.T) {
	text := "1 0:nan 1:2\n0 0:1 1:3\n1 0:nan 1:4\n"
	ds, err := Ingest(strings.NewReader(text), Options{NumClass: 2})
	if err != nil {
		t.Fatal(err)
	}
	if ds.Prebin.FeatCount[0] != 1 || ds.Prebin.FeatCount[1] != 3 {
		t.Fatalf("featCount = %v, want [1 3]", ds.Prebin.FeatCount)
	}
	var buf bytes.Buffer
	if err := WriteCache(&buf, ds, ds.Prebin); err != nil {
		t.Fatal(err)
	}
	got, err := ReadCache(bytes.NewReader(buf.Bytes()), "nan")
	if err != nil {
		t.Fatal(err)
	}
	binner := &sparse.Binner{Splits: ds.Prebin.Splits}
	want, err := binner.BinCSR(ds.X)
	if err != nil {
		t.Fatal(err)
	}
	gotBins, err := binner.BinCSR(got.X)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(gotBins.Bin, want.Bin) {
		t.Fatal("NaN rows bin differently after reconstruction")
	}
}

// TestCacheImplausibleShapeRejected covers the header-outside-checksum
// hole: absurd dimensions must be rejected before any allocation, not
// panic in makeslice.
func TestCacheImplausibleShapeRejected(t *testing.T) {
	_, text := sampleLibSVM(t, 20, 5, 2, 6)
	ds, err := Ingest(strings.NewReader(text), Options{NumClass: 2})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := WriteCache(&buf, ds, ds.Prebin); err != nil {
		t.Fatal(err)
	}
	for _, off := range []int{8, 16, 24} { // rows, cols, nnz
		img := append([]byte(nil), buf.Bytes()...)
		binary.LittleEndian.PutUint64(img[off:], 1<<50)
		if _, err := ReadCache(bytes.NewReader(img), "huge"); err == nil || !strings.Contains(err.Error(), "implausible shape") {
			t.Fatalf("offset %d: err = %v, want implausible-shape rejection", off, err)
		}
	}
}
