// Package advisor implements the paper's stated future work (Section 6):
// "How to determine an optimal dataset management strategy given the size
// of dataset (number of instances, feature dimensionality and number of
// classes) along with the application environment (network bandwidth,
// number of machines) is remained unsolved."
//
// The advisor combines the paper's findings:
//
//   - the closed-form communication/memory model of Section 3.1
//     (histogram aggregation vs placement broadcast),
//   - the computation analysis of Section 3.2 (row-store beats
//     column-store unless the dataset has very few instances), and
//   - the empirical decision matrix of Table 1,
//
// into a concrete recommendation with a quantified rationale.
package advisor

import (
	"fmt"

	"vero/internal/cluster"
	"vero/internal/costmodel"
	"vero/internal/datasets"
)

// Workload describes a training job in the paper's notation plus the
// environment.
type Workload struct {
	N int64 // instances
	D int64 // features
	C int64 // gradient dimension: 1 for binary/regression, classes for multi
	W int64 // workers
	L int64 // tree layers
	Q int64 // candidate splits per feature
	// NNZPerRow is the average number of nonzero features per instance
	// (d-bar in Section 3.2.4); use D for dense data.
	NNZPerRow float64
	// Net is the cluster's network model.
	Net cluster.NetworkModel
	// MemoryPerWorkerBytes optionally caps per-worker memory; zero means
	// unconstrained.
	MemoryPerWorkerBytes int64
}

func (w Workload) normalize() (Workload, error) {
	if w.L == 0 {
		w.L = 8
	}
	if w.Q == 0 {
		w.Q = 20
	}
	if w.C == 0 {
		w.C = 1
	}
	if w.NNZPerRow == 0 {
		w.NNZPerRow = float64(w.D)
	}
	if w.Net == (cluster.NetworkModel{}) {
		w.Net = cluster.Gigabit()
	}
	if w.N <= 0 || w.D <= 0 || w.W <= 0 {
		return w, fmt.Errorf("advisor: invalid workload N=%d D=%d W=%d", w.N, w.D, w.W)
	}
	return w, nil
}

// FromDataset derives the workload of a concrete dataset on a cluster of
// the given size and network: shape (N, D), the dataset's gradient
// dimension C, and the measured sparsity (nnz/row). L and Q are left at
// zero — normalize fills the paper's defaults. This is the single
// dataset-derivation both `Advise` on datasets and the trainer's
// auto-quadrant selection go through; auto-selection additionally
// overlays its configured L, q and objective's gradient dimension on the
// result, so the two agree whenever those match the defaults.
func FromDataset(ds *datasets.Dataset, workers int, net cluster.NetworkModel) Workload {
	c := int64(1)
	if ds.NumClass > 2 {
		c = int64(ds.NumClass)
	}
	n := ds.NumInstances()
	return Workload{
		N:         int64(n),
		D:         int64(ds.NumFeatures()),
		C:         c,
		W:         int64(workers),
		NNZPerRow: float64(ds.NNZ()) / float64(max(1, n)),
		Net:       net,
	}
}

// Partitioning is the recommended partitioning scheme.
type Partitioning string

// Storage is the recommended storage pattern.
type Storage string

// Recommendation values.
const (
	Horizontal  Partitioning = "horizontal"
	Vertical    Partitioning = "vertical"
	RowStore    Storage      = "row"
	ColumnStore Storage      = "column"
)

// Recommendation is the advisor's output: a quadrant, the matching named
// system, and the quantities that drove the choice.
type Recommendation struct {
	Partitioning Partitioning
	Storage      Storage
	// Quadrant is 1-4 per Figure 1.
	Quadrant int
	// System is the matching evaluated system name ("vero", "lightgbm",
	// "qd3", "xgboost").
	System string
	// HorizontalCommSecPerTree and VerticalCommSecPerTree are the
	// modeled per-tree communication times of the two schemes.
	HorizontalCommSecPerTree float64
	VerticalCommSecPerTree   float64
	// HorizontalMemBytes and VerticalMemBytes are the modeled per-worker
	// histogram memory footprints.
	HorizontalMemBytes int64
	VerticalMemBytes   int64
	// MemoryForcedVertical is true when only vertical partitioning fits
	// the worker memory budget.
	MemoryForcedVertical bool
	// Rationale is a human-readable explanation.
	Rationale string
}

// Recommend picks a data-management policy for the workload.
func Recommend(w Workload) (Recommendation, error) {
	w, err := w.normalize()
	if err != nil {
		return Recommendation{}, err
	}
	cm := costmodel.Workload{N: w.N, D: w.D, W: w.W, L: w.L, Q: w.Q, C: w.C}
	rec := Recommendation{
		HorizontalMemBytes: cm.HorizontalMemoryBytes(),
		VerticalMemBytes:   cm.VerticalMemoryBytes(),
	}

	// Communication model (Section 3.1.3): volumes to seconds under the
	// alpha-beta model. Horizontal aggregates histograms for every
	// splitting node; vertical broadcasts one bitmap per layer.
	beta := 1.0 / w.Net.BandwidthBytesPerSec
	hBytes := float64(cm.HorizontalCommBytesPerTree())
	vBytes := float64(cm.VerticalCommBytesPerTree())
	// Latency steps: systems batch one aggregation per layer, so
	// horizontal pays ~2(W-1) ring steps per layer; vertical pays
	// ~log2(W)+W steps per layer (split exchange + bitmap broadcast).
	hSteps := float64(2*(w.W-1)) * float64(w.L)
	vSteps := float64(w.W+w.L) * float64(w.L)
	rec.HorizontalCommSecPerTree = hSteps*w.Net.LatencySec + hBytes*beta/float64(w.W)
	rec.VerticalCommSecPerTree = vSteps*w.Net.LatencySec + vBytes*beta/float64(w.W)

	verticalWins := rec.VerticalCommSecPerTree < rec.HorizontalCommSecPerTree
	if w.MemoryPerWorkerBytes > 0 && rec.HorizontalMemBytes > w.MemoryPerWorkerBytes {
		if rec.VerticalMemBytes <= w.MemoryPerWorkerBytes {
			verticalWins = true
			rec.MemoryForcedVertical = true
		}
	}

	// Storage pattern (Section 3.2.4): row-store achieves minimal
	// computation unless the dataset has very few instances relative to
	// its dimensionality — then column-store's cache-friendly
	// construction wins (Figure 10(g): N=10K vs D>=25K, i.e. D/N >= ~2).
	colStoreWins := float64(w.D) >= 2*float64(w.N) && w.N <= 100_000

	switch {
	case verticalWins && !colStoreWins:
		rec.Partitioning, rec.Storage, rec.Quadrant, rec.System = Vertical, RowStore, 4, "vero"
	case verticalWins && colStoreWins:
		rec.Partitioning, rec.Storage, rec.Quadrant, rec.System = Vertical, ColumnStore, 3, "qd3"
	case !verticalWins && !colStoreWins:
		rec.Partitioning, rec.Storage, rec.Quadrant, rec.System = Horizontal, RowStore, 2, "lightgbm"
	default:
		rec.Partitioning, rec.Storage, rec.Quadrant, rec.System = Horizontal, ColumnStore, 1, "xgboost"
	}

	switch {
	case rec.MemoryForcedVertical:
		rec.Rationale = fmt.Sprintf(
			"horizontal histograms need %.1f GB/worker (budget %.1f GB); vertical fits at %.1f GB",
			gb(rec.HorizontalMemBytes), gb(w.MemoryPerWorkerBytes), gb(rec.VerticalMemBytes))
	case verticalWins:
		rec.Rationale = fmt.Sprintf(
			"histogram aggregation (%.3fs/tree) dwarfs placement broadcasts (%.3fs/tree): D*q*C is large relative to N",
			rec.HorizontalCommSecPerTree, rec.VerticalCommSecPerTree)
	default:
		rec.Rationale = fmt.Sprintf(
			"placement broadcasts (%.3fs/tree) exceed histogram aggregation (%.3fs/tree): low dimensionality, many instances",
			rec.VerticalCommSecPerTree, rec.HorizontalCommSecPerTree)
	}
	if colStoreWins {
		rec.Rationale += "; very few instances relative to D favor column-store construction"
	}
	return rec, nil
}

func gb(b int64) float64 { return float64(b) / (1 << 30) }
