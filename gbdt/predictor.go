package gbdt

import (
	"fmt"
	"math"
	"runtime"
	"sync"

	"vero/internal/tree"
)

// Predictor is the serving-side inference engine: a Model compiled into a
// flattened, cache-friendly forest plus a bounded goroutine pool for batch
// scoring. A Predictor is immutable and safe for concurrent use; build one
// per loaded model and share it across request handlers.
type Predictor struct {
	flat      *tree.FlatForest
	binned    *tree.BinnedForest // non-nil when binned inference is on
	objective string
	workers   int
	blockRows int
}

// PredictorOptions configures NewPredictor.
type PredictorOptions struct {
	// Workers bounds the goroutines used per batch-prediction call
	// (default GOMAXPROCS).
	Workers int
	// BlockRows is the instance-block size for batch scoring: batches are
	// traversed in blocks of this many rows, tree-by-tree, so each tree's
	// node arrays stay cache-hot across the block (bit-identical margins
	// to the per-row walk). 0 selects tree.DefaultBlockRows; 1 disables
	// blocking and scores row-at-a-time.
	BlockRows int
	// Binned selects bin-code descent: incoming values are quantized to
	// uint8/uint16 bin indices against the model's candidate splits and
	// every node comparison is an integer compare — bit-identical margins
	// with a smaller node image. Requires a model carrying its candidate
	// splits (Model.HasBins); NewPredictor fails otherwise.
	Binned bool
}

// NewPredictor compiles the model's forest into the flat inference engine.
// The compiled forest is shared with the model's own Predict path, so
// building a Predictor for a model that is also evaluated in-process costs
// nothing extra.
func NewPredictor(m *Model, opts PredictorOptions) (*Predictor, error) {
	flat := m.flatForest()
	if err := flat.Validate(); err != nil {
		return nil, fmt.Errorf("gbdt: compile predictor: %w", err)
	}
	workers := opts.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	blockRows := opts.BlockRows
	if blockRows <= 0 {
		blockRows = tree.DefaultBlockRows
	}
	p := &Predictor{
		flat:      flat,
		objective: m.forest.Objective,
		workers:   workers,
		blockRows: blockRows,
	}
	if opts.Binned {
		binned, err := flat.CompileBinned(m.forest.Splits)
		if err != nil {
			return nil, fmt.Errorf("gbdt: compile binned predictor: %w", err)
		}
		p.binned = binned
	}
	return p, nil
}

// Binned reports whether the predictor scores through bin-code descent.
func (p *Predictor) Binned() bool { return p.binned != nil }

// CodeBits returns the binned engine's code width in bits (8 or 16), or 0
// when binned inference is off.
func (p *Predictor) CodeBits() int {
	if p.binned == nil {
		return 0
	}
	return p.binned.CodeBits()
}

// NumClass returns the per-row score dimensionality (1 for regression and
// binary models, C for multi-class).
func (p *Predictor) NumClass() int { return p.flat.NumClass() }

// NumTrees returns the number of compiled trees.
func (p *Predictor) NumTrees() int { return p.flat.NumTrees() }

// Objective returns the model's training objective ("square", "logistic"
// or "softmax").
func (p *Predictor) Objective() string { return p.objective }

// PredictRow returns raw scores (margins) for one sparse row, given as
// parallel feature-id/value slices sorted by feature id.
func (p *Predictor) PredictRow(feat []uint32, val []float32) []float64 {
	if p.binned != nil {
		return p.binned.PredictRow(feat, val)
	}
	return p.flat.PredictRow(feat, val)
}

// PredictRowInto is PredictRow without the allocation; out must have
// length NumClass.
func (p *Predictor) PredictRowInto(feat []uint32, val []float32, out []float64) {
	if p.binned != nil {
		p.binned.PredictRowInto(feat, val, out)
		return
	}
	p.flat.PredictRowInto(feat, val, out)
}

// Predict returns raw scores for every instance of ds, row-major with
// stride NumClass, scored in parallel by the predictor's worker pool
// through the blocked batch kernel (see PredictorOptions.BlockRows).
func (p *Predictor) Predict(ds *Dataset) []float64 {
	if p.binned != nil {
		return p.binned.PredictCSRBlocked(ds.X, p.workers, p.blockRows)
	}
	if p.blockRows == 1 {
		return p.flat.PredictCSR(ds.X, p.workers)
	}
	return p.flat.PredictCSRBlocked(ds.X, p.workers, p.blockRows)
}

// predictRowsChunk is the number of rows one parallel work unit claims.
const predictRowsChunk = 64

// PredictRows scores a batch of independent sparse rows (parallel
// feature-id/value slices per row, each sorted by feature id) with the
// predictor's worker pool, returning margins row-major with stride
// NumClass. This is the batch path behind cmd/veroserve.
func (p *Predictor) PredictRows(feats [][]uint32, vals [][]float32) []float64 {
	n := len(feats)
	k := p.flat.NumClass()
	out := make([]float64, n*k)
	chunk := predictRowsChunk
	if p.blockRows > chunk {
		chunk = p.blockRows
	}
	workers := p.workers
	if max := (n + chunk - 1) / chunk; workers > max {
		workers = max
	}
	if workers <= 1 {
		p.scoreChunk(feats, vals, out, 0, n)
		return out
	}
	next := make(chan int)
	go func() {
		for lo := 0; lo < n; lo += chunk {
			next <- lo
		}
		close(next)
	}()
	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			for lo := range next {
				hi := lo + chunk
				if hi > n {
					hi = n
				}
				p.scoreChunk(feats, vals, out, lo, hi)
			}
		}()
	}
	wg.Wait()
	return out
}

// scoreChunk scores rows [lo, hi) on the calling goroutine, through the
// blocked kernel unless BlockRows disabled it.
func (p *Predictor) scoreChunk(feats [][]uint32, vals [][]float32, out []float64, lo, hi int) {
	k := p.flat.NumClass()
	if p.blockRows == 1 {
		for i := lo; i < hi; i++ {
			p.PredictRowInto(feats[i], vals[i], out[i*k:(i+1)*k])
		}
		return
	}
	if p.binned != nil {
		p.binned.PredictBlock(feats[lo:hi], vals[lo:hi], out[lo*k:hi*k], p.blockRows)
		return
	}
	p.flat.PredictBlock(feats[lo:hi], vals[lo:hi], out[lo*k:hi*k], p.blockRows)
}

// Probabilities converts raw scores (as returned by Predict or PredictRow,
// row-major with stride NumClass) into per-row probabilities: sigmoid for
// logistic models, softmax for multi-class. For regression models the
// scores are returned unchanged.
func (p *Predictor) Probabilities(scores []float64) []float64 {
	k := p.flat.NumClass()
	out := make([]float64, len(scores))
	switch {
	case p.objective == "softmax" && k > 1:
		for i := 0; i+k <= len(scores); i += k {
			softmaxInto(scores[i:i+k], out[i:i+k])
		}
	case p.objective == "logistic":
		for i, s := range scores {
			out[i] = 1 / (1 + math.Exp(-s))
		}
	default:
		copy(out, scores)
	}
	return out
}

// softmaxInto writes the numerically-stable softmax of row into out.
func softmaxInto(row, out []float64) {
	max := row[0]
	for _, v := range row[1:] {
		if v > max {
			max = v
		}
	}
	sum := 0.0
	for i, v := range row {
		e := math.Exp(v - max)
		out[i] = e
		sum += e
	}
	for i := range out {
		out[i] /= sum
	}
}
