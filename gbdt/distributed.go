package gbdt

import (
	"fmt"
	"hash/crc32"
	"net"
	"time"

	"vero/internal/cluster"
	"vero/internal/cluster/tcptransport"
)

// DistributedOptions turns a training run into one rank of a real
// multi-process deployment: the W ranks listed in Peers connect a TCP
// mesh, every collective the simulation accounts moves its payload over
// that mesh in the same rank-ordered reduction order, and each rank
// trains the bit-identical model a single-process simulated run of W
// workers produces. Every rank must load the same dataset and pass the
// same hyper-parameters; rank r hosts worker r.
type DistributedOptions struct {
	// Peers lists every rank's host:port in rank order; len(Peers) is the
	// deployment size and overrides Options.Workers.
	Peers []string
	// Rank is this process's index into Peers.
	Rank int
	// Listen optionally overrides the address this rank binds (e.g.
	// ":9000" behind NAT); empty means Peers[Rank].
	Listen string
	// DialTimeout bounds mesh establishment, including retries while
	// late-starting peers come up (default 30s).
	DialTimeout time.Duration
	// OpTimeout bounds each frame send/receive inside a collective, so a
	// dead peer surfaces as an error instead of a hang (default 30s).
	OpTimeout time.Duration

	// listener, when set, is a pre-bound socket to use instead of binding
	// Listen (test hook: loopback meshes bind port 0 first and exchange
	// the chosen addresses).
	listener net.Listener
}

// PhaseComm is one phase's communication record with the model's
// prediction and the transport's measurement side by side. On a
// distributed run the two byte columns are equal by construction — the
// alpha-beta model's accounted volume is exactly what the transport puts
// on the wire (before framing) — while the seconds columns compare the
// model's prediction against measured wall-clock.
type PhaseComm struct {
	Phase string
	// AccountedBytes is the volume the alpha-beta model charged.
	AccountedBytes int64
	// ModelSeconds is the alpha-beta model's simulated duration.
	ModelSeconds float64
	// MeasuredBytes is the payload volume sent over the transport, summed
	// across ranks (zero on the simulated backend).
	MeasuredBytes int64
	// MeasuredSeconds is wall-clock spent in transport operations, the
	// slowest rank's (zero on the simulated backend).
	MeasuredSeconds float64
}

// connectCluster builds the cluster the options describe, attaching a TCP
// transport when DistributedOptions are present. dataFP is the dataset
// fingerprint exchanged in the mesh's hello handshake (meshFingerprint);
// every rank must present the identical value.
func connectCluster(opts Options, dataFP uint32) (*cluster.Cluster, error) {
	var copts []cluster.Option
	if opts.Concurrent {
		copts = append(copts, cluster.WithConcurrent())
	}
	if d := opts.Distributed; d != nil {
		tr, err := tcptransport.Connect(tcptransport.Config{
			Rank:        d.Rank,
			Peers:       d.Peers,
			Listen:      d.Listen,
			Listener:    d.listener,
			DialTimeout: d.DialTimeout,
			OpTimeout:   d.OpTimeout,
			Fingerprint: dataFP,
		})
		if err != nil {
			return nil, fmt.Errorf("gbdt: connecting the worker mesh: %w", err)
		}
		copts = append(copts, cluster.WithTransport(tr))
	}
	return cluster.New(opts.Workers, opts.Network, copts...), nil
}

// meshFingerprint derives the 32-bit dataset fingerprint the hello
// handshake exchanges. Shards and out-of-core views present the backing
// cache image's fingerprint — identical at every rank even though the
// materialized bytes differ per rank — so a deployment where one rank
// opened a different cache fails at connect time. Fully replicated
// in-memory datasets present zero (all ranks unset still must agree).
func meshFingerprint(ds *Dataset) uint32 {
	switch {
	case ds.Shard != nil:
		return ds.Shard.FingerprintCRC()
	case ds.OutOfCore():
		return crc32.Checksum([]byte(ds.Blocks.Fingerprint()), crc32.MakeTable(crc32.Castagnoli))
	}
	return 0
}

// distIdentity names this rank's deployment slot — rank and worker count
// — for checkpoint validation: a checkpoint written under one deployment
// shape is rejected under another (a W=2 image never resumes a W=4 run).
// Peer addresses deliberately stay out of the identity: a deployment
// restarted after a crash may bind new ports, and what must match for a
// safe resume is the shape and the dataset fingerprint, not the wiring.
func distIdentity(d *DistributedOptions) string {
	return fmt.Sprintf("rank%d/%d", d.Rank, len(d.Peers))
}

// phaseComms extracts the per-phase accounted-vs-measured table from the
// cluster's statistics, skipping phases that moved no bytes.
func phaseComms(cl *cluster.Cluster) []PhaseComm {
	stats := cl.Stats()
	var out []PhaseComm
	for _, name := range stats.PhaseNames() {
		p := stats.Phase(name)
		if p.TotalBytes() == 0 && p.MeasuredBytes == 0 {
			continue
		}
		out = append(out, PhaseComm{
			Phase:           name,
			AccountedBytes:  p.TotalBytes(),
			ModelSeconds:    p.CommSeconds,
			MeasuredBytes:   p.MeasuredBytes,
			MeasuredSeconds: p.MeasuredSeconds,
		})
	}
	return out
}
