package datasets

import (
	"fmt"
	"sort"
)

// Kind categorizes datasets the way Table 2 of the paper does.
type Kind string

// Dataset categories of Table 2.
const (
	KindLowDim     Kind = "LD" // low-dimensional dense
	KindHighDim    Kind = "HS" // high-dimensional sparse
	KindMultiCls   Kind = "MC" // multi-classification
	KindIndustrial Kind = "IND"
)

// Descriptor records a paper dataset and the scaled simulacrum that stands
// in for it. Paper* fields are the original sizes (Table 2 / Section 6);
// the Sim* fields are what we generate — same N:D:C proportions and
// sparsity regime, scaled to run on one machine.
type Descriptor struct {
	Name       string
	Kind       Kind
	PaperN     int64
	PaperD     int64
	PaperC     int
	SimN       int
	SimD       int
	SimC       int
	SimDensity float64
	LabelNoise float64
	// SimBoost concentrates the signal in high-dimensional simulacra
	// (see SyntheticConfig.InformativeBoost).
	SimBoost float64
}

// Catalog lists every dataset of the paper's evaluation: the six public
// and two synthetic datasets of Table 2 plus the three industrial datasets
// of Section 6.
var catalog = []Descriptor{
	// Low-dimensional dense (Table 2). Dense -> density 1.
	{Name: "susy", Kind: KindLowDim, PaperN: 5_000_000, PaperD: 18, PaperC: 2,
		SimN: 20000, SimD: 18, SimC: 2, SimDensity: 1, LabelNoise: 0.08},
	{Name: "higgs", Kind: KindLowDim, PaperN: 11_000_000, PaperD: 28, PaperC: 2,
		SimN: 22000, SimD: 28, SimC: 2, SimDensity: 1, LabelNoise: 0.10},
	{Name: "criteo", Kind: KindLowDim, PaperN: 45_000_000, PaperD: 39, PaperC: 2,
		SimN: 30000, SimD: 39, SimC: 2, SimDensity: 1, LabelNoise: 0.12},
	{Name: "epsilon", Kind: KindLowDim, PaperN: 500_000, PaperD: 2000, PaperC: 2,
		SimN: 4000, SimD: 2000, SimC: 2, SimDensity: 1, LabelNoise: 0.05},
	// High-dimensional sparse.
	{Name: "rcv1", Kind: KindHighDim, PaperN: 697_000, PaperD: 47_000, PaperC: 2,
		SimN: 4000, SimD: 9400, SimC: 2, SimDensity: 0.0064, LabelNoise: 0.03, SimBoost: 0.3},
	{Name: "synthesis", Kind: KindHighDim, PaperN: 50_000_000, PaperD: 100_000, PaperC: 2,
		SimN: 25000, SimD: 4000, SimC: 2, SimDensity: 0.01, LabelNoise: 0.05, SimBoost: 0.3},
	// Multi-classification.
	{Name: "rcv1-multi", Kind: KindMultiCls, PaperN: 534_000, PaperD: 47_000, PaperC: 53,
		SimN: 3000, SimD: 4700, SimC: 12, SimDensity: 0.0128, LabelNoise: 0.03, SimBoost: 0.3},
	{Name: "synthesis-multi", Kind: KindMultiCls, PaperN: 50_000_000, PaperD: 25_000, PaperC: 10,
		SimN: 20000, SimD: 1000, SimC: 10, SimDensity: 0.02, LabelNoise: 0.05, SimBoost: 0.3},
	// Industrial (Section 6). Gender: 122M x 330K binary; Age: 48M x 330K
	// x 9; Taste: 10M x 15K x 100.
	{Name: "gender", Kind: KindIndustrial, PaperN: 122_000_000, PaperD: 330_000, PaperC: 2,
		SimN: 40000, SimD: 1100, SimC: 2, SimDensity: 0.01, LabelNoise: 0.08, SimBoost: 0.3},
	{Name: "age", Kind: KindIndustrial, PaperN: 48_000_000, PaperD: 330_000, PaperC: 9,
		SimN: 16000, SimD: 1100, SimC: 9, SimDensity: 0.01, LabelNoise: 0.08, SimBoost: 0.3},
	{Name: "taste", Kind: KindIndustrial, PaperN: 10_000_000, PaperD: 15_000, PaperC: 100,
		SimN: 5000, SimD: 150, SimC: 20, SimDensity: 0.1, LabelNoise: 0.08},
}

// Catalog returns the descriptors of every paper dataset, sorted by name.
func Catalog() []Descriptor {
	out := append([]Descriptor(nil), catalog...)
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// Describe returns the descriptor of a named dataset.
func Describe(name string) (Descriptor, error) {
	for _, d := range catalog {
		if d.Name == name {
			return d, nil
		}
	}
	return Descriptor{}, fmt.Errorf("datasets: unknown dataset %q", name)
}

// SimInformativeRatio returns the informative-feature fraction of a
// simulacrum: boosted high-dimensional datasets concentrate the signal in
// a small feature set (2%), as real text corpora do; dense low-dimensional
// datasets keep the paper's p = 0.2.
func SimInformativeRatio(desc Descriptor) float64 {
	if desc.SimBoost > 0 {
		return 0.02
	}
	return 0.2
}

// Load generates the scaled simulacrum of a named paper dataset. The same
// name and seed always produce the same bytes.
func Load(name string, seed int64) (*Dataset, error) {
	desc, err := Describe(name)
	if err != nil {
		return nil, err
	}
	ds, err := Synthetic(SyntheticConfig{
		N: desc.SimN, D: desc.SimD, C: desc.SimC,
		InformativeRatio: SimInformativeRatio(desc),
		Density:          desc.SimDensity,
		Seed:             seed,
		LabelNoise:       desc.LabelNoise,
		InformativeBoost: desc.SimBoost,
	})
	if err != nil {
		return nil, err
	}
	ds.Name = name
	return ds, nil
}
