package tcptransport

import (
	"bytes"
	"strings"
	"testing"
)

// sampleFrames covers every op with empty, tiny, ragged and block-sized
// payloads — the shapes real collectives emit.
func sampleFrames() []frame {
	payload := func(n int) []byte {
		p := make([]byte, n)
		for i := range p {
			p[i] = byte(i*7 + 3)
		}
		return p
	}
	return []frame{
		{Op: opHello, Rank: 0, PhaseCRC: 0, Seq: 0, Payload: payload(8)},
		{Op: opContrib, Rank: 3, PhaseCRC: phaseCRC("train.histogram"), Seq: 17, Payload: payload(0)},
		{Op: opContrib, Rank: 1, PhaseCRC: phaseCRC("train.gradient"), Seq: 1, Payload: payload(24)},
		{Op: opResult, Rank: 65535, PhaseCRC: phaseCRC("train.split"), Seq: 4294967295, Payload: payload(129)},
		{Op: opRecord, Rank: 7, PhaseCRC: phaseCRC("cluster.syncstats"), Seq: 2, Payload: payload(44)},
		{Op: opShadow, Rank: 2, PhaseCRC: phaseCRC("prep.repartition"), Seq: 9, Payload: payload(1024)},
	}
}

// TestFrameRoundTrip pins the wire encoding: encode, then decode both via
// the in-place parser and the streaming reader, and compare every field.
func TestFrameRoundTrip(t *testing.T) {
	for _, f := range sampleFrames() {
		enc := appendFrame(nil, &f)
		if len(enc) != f.encodedSize() {
			t.Fatalf("%s: encoded %d bytes, encodedSize says %d", f.Op, len(enc), f.encodedSize())
		}
		got, n, err := decodeFrame(enc, 1<<20)
		if err != nil {
			t.Fatalf("%s: decode: %v", f.Op, err)
		}
		if n != len(enc) {
			t.Fatalf("%s: decode consumed %d of %d bytes", f.Op, n, len(enc))
		}
		checkFrameEqual(t, "decodeFrame", got, f)

		sr, err := readFrame(bytes.NewReader(enc), 1<<20)
		if err != nil {
			t.Fatalf("%s: readFrame: %v", f.Op, err)
		}
		checkFrameEqual(t, "readFrame", sr, f)
	}
}

func checkFrameEqual(t *testing.T, via string, got, want frame) {
	t.Helper()
	if got.Op != want.Op || got.Rank != want.Rank || got.PhaseCRC != want.PhaseCRC ||
		got.Seq != want.Seq || !bytes.Equal(got.Payload, want.Payload) {
		t.Fatalf("%s: decoded {%s rank=%d phase=%#x seq=%d |payload|=%d}, want {%s rank=%d phase=%#x seq=%d |payload|=%d}",
			via, got.Op, got.Rank, got.PhaseCRC, got.Seq, len(got.Payload),
			want.Op, want.Rank, want.PhaseCRC, want.Seq, len(want.Payload))
	}
}

// TestDecodeFrameTruncation cuts a valid frame at every byte boundary:
// each prefix must produce an error, never a panic and never a frame with
// a silently shortened payload.
func TestDecodeFrameTruncation(t *testing.T) {
	for _, f := range sampleFrames() {
		enc := appendFrame(nil, &f)
		for cut := 0; cut < len(enc); cut++ {
			if _, _, err := decodeFrame(enc[:cut], 1<<20); err == nil {
				t.Fatalf("%s: decode of %d/%d-byte prefix succeeded", f.Op, cut, len(enc))
			}
			if _, err := readFrame(bytes.NewReader(enc[:cut]), 1<<20); err == nil {
				t.Fatalf("%s: readFrame of %d/%d-byte prefix succeeded", f.Op, cut, len(enc))
			}
		}
	}
}

// TestDecodeFrameBitFlip flips every bit of valid frames: the CRC-32C
// trailer (or an earlier structural check) must reject each mutant — a
// flipped histogram bit that decoded cleanly would be a silently wrong sum.
func TestDecodeFrameBitFlip(t *testing.T) {
	for _, f := range sampleFrames() {
		enc := appendFrame(nil, &f)
		for i := range enc {
			for bit := 0; bit < 8; bit++ {
				mut := append([]byte(nil), enc...)
				mut[i] ^= 1 << bit
				if _, _, err := decodeFrame(mut, 1<<20); err == nil {
					t.Fatalf("%s: decode accepted bit %d of byte %d flipped", f.Op, bit, i)
				}
			}
		}
	}
}

// TestDecodeFrameLengthBomb plants an absurd payload length: both parsers
// must reject it via the cap before allocating or slicing anything.
func TestDecodeFrameLengthBomb(t *testing.T) {
	f := sampleFrames()[1]
	enc := appendFrame(nil, &f)
	enc[16], enc[17], enc[18], enc[19] = 0xff, 0xff, 0xff, 0xff
	if _, _, err := decodeFrame(enc, 1<<20); err == nil || !strings.Contains(err.Error(), "exceeds limit") {
		t.Fatalf("decodeFrame on length bomb: %v", err)
	}
	if _, err := readFrame(bytes.NewReader(enc), 1<<20); err == nil || !strings.Contains(err.Error(), "exceeds limit") {
		t.Fatalf("readFrame on length bomb: %v", err)
	}
}

// FuzzDecodeFrame throws arbitrary bytes at the frame parser. It must
// never panic; when it accepts, the decoded frame must re-encode to
// exactly the consumed bytes (the encoding is canonical) and the
// streaming reader must agree with the in-place parser.
func FuzzDecodeFrame(f *testing.F) {
	for _, sf := range sampleFrames() {
		enc := appendFrame(nil, &sf)
		f.Add(enc)
		f.Add(enc[:len(enc)-1])
		f.Add(enc[:headerSize])
		f.Add(append(enc, enc...))
	}
	f.Add([]byte(frameMagic))
	f.Add([]byte{})
	f.Fuzz(func(t *testing.T, data []byte) {
		const maxPayload = 1 << 16
		fr, n, err := decodeFrame(data, maxPayload)
		sf, serr := readFrame(bytes.NewReader(data), maxPayload)
		if err != nil {
			if serr == nil {
				t.Fatalf("decodeFrame rejected (%v) what readFrame accepted", err)
			}
			return
		}
		if n < headerSize+trailerSize || n > len(data) {
			t.Fatalf("decode consumed %d of %d bytes", n, len(data))
		}
		if !bytes.Equal(appendFrame(nil, &fr), data[:n]) {
			t.Fatalf("re-encoding the decoded frame does not reproduce the input")
		}
		if serr != nil {
			t.Fatalf("readFrame rejected (%v) what decodeFrame accepted", serr)
		}
		checkFrameEqual(t, "readFrame-vs-decodeFrame", sf, fr)
	})
}
