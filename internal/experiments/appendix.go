package experiments

import (
	"vero/internal/cluster"
	"vero/internal/datasets"
	"vero/internal/partition"
	"vero/internal/systems"
)

// Table5Row is one dataset's transformation cost breakdown (appendix A):
// the simulated seconds of each preprocessing step, with the repartition
// step under all three wire variants.
type Table5Row struct {
	Dataset        string
	LoadSeconds    float64 // sketch building (data loading analogue)
	SplitsSeconds  float64 // candidate-split generation + broadcast
	RepartitionSec map[partition.Variant]float64
	LabelSeconds   float64
	// Volumes in MB for the three variants.
	RepartitionMB map[partition.Variant]float64
}

// Table5 reproduces the transformation-efficiency study on RCV1-,
// RCV1-multi- and Synthesis-like datasets.
func Table5(scale float64) ([]Table5Row, error) {
	var rows []Table5Row
	for _, name := range []string{"rcv1", "rcv1-multi", "synthesis"} {
		ds, err := loadScaled(name, scale)
		if err != nil {
			return nil, err
		}
		row := Table5Row{
			Dataset:        name,
			RepartitionSec: make(map[partition.Variant]float64),
			RepartitionMB:  make(map[partition.Variant]float64),
		}
		for _, variant := range []partition.Variant{partition.VariantNaive, partition.VariantCompressed, partition.VariantBlockified} {
			cl := cluster.New(8, cluster.Gigabit())
			res, err := partition.Transform(cl, ds.X, ds.Labels, partition.Options{Q: 20, Charge: variant})
			if err != nil {
				return nil, err
			}
			// Simulated network time only: the encoding CPU time is
			// reported separately (it is identical across variants since
			// all three build the same blocks).
			repart := cl.Stats().Phase("transform.repartition")
			row.RepartitionSec[variant] = repart.CommSeconds
			switch variant {
			case partition.VariantNaive:
				row.RepartitionMB[variant] = float64(res.Bytes.NaiveShuffle) / (1 << 20)
			case partition.VariantCompressed:
				row.RepartitionMB[variant] = float64(res.Bytes.CompressedShuffle) / (1 << 20)
			default:
				row.RepartitionMB[variant] = float64(res.Bytes.BlockifiedShuffle) / (1 << 20)
			}
			if variant == partition.VariantBlockified {
				sk := cl.Stats().Phase("transform.sketch")
				sp := cl.Stats().Phase("transform.splits")
				lb := cl.Stats().Phase("transform.labels")
				row.LoadSeconds = sk.CompSeconds + sk.CommSeconds
				row.SplitsSeconds = sp.CompSeconds + sp.CommSeconds
				row.LabelSeconds = lb.CompSeconds + lb.CommSeconds
			}
		}
		rows = append(rows, row)
	}
	return rows, nil
}

// Table6Row is one scalability measurement (appendix B).
type Table6Row struct {
	Dataset string
	Workers int
	Seconds float64 // per tree
	Speedup float64 // vs the 2-worker run
}

// Table6 reproduces the scalability test: Vero on the Synthesis-N10M and
// Synthesis-D25K subsets with 2-8 machines.
func Table6(scale float64) ([]Table6Row, error) {
	// Subsets of the Synthesis simulacrum, as the appendix takes subsets
	// of Synthesis: N-subset keeps 40% of rows, D-subset 25% of columns.
	desc, err := datasets.Describe("synthesis")
	if err != nil {
		return nil, err
	}
	subsets := []struct {
		label string
		n, d  int
	}{
		{"synthesis-n10m", scaleN(desc.SimN*2/5, scale), desc.SimD},
		{"synthesis-d25k", scaleN(desc.SimN, scale), desc.SimD / 4},
	}
	var rows []Table6Row
	for _, sub := range subsets {
		ds, err := datasets.Synthetic(datasets.SyntheticConfig{
			N: sub.n, D: sub.d, C: 2,
			InformativeRatio: 0.2, Density: desc.SimDensity, Seed: 1001,
			LabelNoise: desc.LabelNoise,
		})
		if err != nil {
			return nil, err
		}
		var base float64
		for _, w := range []int{2, 4, 6, 8} {
			cl := cluster.New(w, cluster.Gigabit())
			res, err := systems.Train(cl, ds, systems.Vero, endToEndConfig(2))
			if err != nil {
				return nil, err
			}
			var sum float64
			for _, s := range res.PerTreeSeconds {
				sum += s
			}
			sec := sum / float64(len(res.PerTreeSeconds))
			if w == 2 {
				base = sec
			}
			rows = append(rows, Table6Row{Dataset: sub.label, Workers: w, Seconds: sec, Speedup: base / sec})
		}
	}
	return rows, nil
}

// AblationRow measures one design choice's contribution (DESIGN.md's
// ablation index): Vero with the feature disabled vs enabled.
type AblationRow struct {
	Name        string
	BaselineSec float64 // per tree, feature enabled
	AblatedSec  float64 // per tree, feature disabled
}

// AblationSubtraction measures the histogram subtraction technique
// (Section 2.1.2) by comparing QD2 (subtraction) against QD1 (no
// subtraction possible) on identical data — isolating construction time.
func AblationSubtraction(scale float64) (AblationRow, error) {
	ds, err := synthetic(scaleN(8000, scale), 500, 2, 0.1, 1004)
	if err != nil {
		return AblationRow{}, err
	}
	with, err := perTree(ds, systems.LightGBM, quadrantConfig(7), 4, cluster.Gigabit())
	if err != nil {
		return AblationRow{}, err
	}
	without, err := perTree(ds, systems.XGBoost, quadrantConfig(7), 4, cluster.Gigabit())
	if err != nil {
		return AblationRow{}, err
	}
	return AblationRow{Name: "histogram-subtraction", BaselineSec: with.CompSec, AblatedSec: without.CompSec}, nil
}

// AblationCompression measures Vero's key-value compression by charging
// the transformation's naive vs blockified wire cost.
func AblationCompression(scale float64) (AblationRow, error) {
	ds, err := loadScaled("synthesis", scale)
	if err != nil {
		return AblationRow{}, err
	}
	run := func(v partition.Variant) (float64, error) {
		cl := cluster.New(8, cluster.Gigabit())
		_, err := partition.Transform(cl, ds.X, ds.Labels, partition.Options{Q: 20, Charge: v})
		if err != nil {
			return 0, err
		}
		p := cl.Stats().Phase("transform.repartition")
		return p.CommSeconds, nil
	}
	blockified, err := run(partition.VariantBlockified)
	if err != nil {
		return AblationRow{}, err
	}
	naive, err := run(partition.VariantNaive)
	if err != nil {
		return AblationRow{}, err
	}
	return AblationRow{Name: "transform-compression", BaselineSec: blockified, AblatedSec: naive}, nil
}

// AblationLoadBalance compares greedy column grouping against round-robin
// by the resulting worst-worker key-value load.
func AblationLoadBalance(scale float64) (AblationRow, error) {
	ds, err := loadScaled("rcv1", scale)
	if err != nil {
		return AblationRow{}, err
	}
	const w = 8
	counts := make([]int64, ds.NumFeatures())
	for i := 0; i < ds.NumInstances(); i++ {
		feats, _ := ds.X.Row(i)
		for _, f := range feats {
			counts[f]++
		}
	}
	greedy := partition.GroupColumnsBalanced(counts, w)
	var maxGreedy int64
	for _, l := range partition.GroupLoads(greedy, counts) {
		if l > maxGreedy {
			maxGreedy = l
		}
	}
	rr := make([][]int, w)
	for f := range counts {
		rr[f%w] = append(rr[f%w], f)
	}
	var maxRR int64
	for _, l := range partition.GroupLoads(rr, counts) {
		if l > maxRR {
			maxRR = l
		}
	}
	// Report loads as "seconds" stand-ins: straggler work is proportional
	// to the worst worker's pair count.
	return AblationRow{Name: "column-grouping-load-balance",
		BaselineSec: float64(maxGreedy), AblatedSec: float64(maxRR)}, nil
}
