package core

import (
	"encoding/binary"
	"math"

	"vero/internal/histogram"
)

// Wire codec for best-split records: the per-worker split candidates that
// the engines exchange after local split finding. Each record is exactly
// splitWireBytes so a frontier of f nodes always serializes to
// f*splitWireBytes bytes — the size the collectives have always charged.
// The layout is fixed little-endian: feature id and bin as int32, the
// gain's IEEE-754 bits verbatim (so merging decoded splits is bit-exact),
// one flag byte (bit 0 valid, bit 1 default-left) and 7 zero pad bytes.

const (
	splitFlagValid       = 1 << 0
	splitFlagDefaultLeft = 1 << 1
)

// encodeSplits serializes one split per frontier node into a fresh buffer
// of len(splits)*splitWireBytes bytes.
func encodeSplits(splits []histogram.Split) []byte {
	buf := make([]byte, len(splits)*splitWireBytes)
	for i, s := range splits {
		encodeSplit(buf[i*splitWireBytes:], s)
	}
	return buf
}

// encodeSplit writes one record into b[:splitWireBytes].
func encodeSplit(b []byte, s histogram.Split) {
	binary.LittleEndian.PutUint32(b[0:], uint32(int32(s.Feature)))
	binary.LittleEndian.PutUint32(b[4:], uint32(int32(s.Bin)))
	binary.LittleEndian.PutUint64(b[8:], math.Float64bits(s.Gain))
	var flags byte
	if s.Valid {
		flags |= splitFlagValid
	}
	if s.DefaultLeft {
		flags |= splitFlagDefaultLeft
	}
	b[16] = flags
	clear(b[17:splitWireBytes])
}

// decodeSplit reads one record from b[:splitWireBytes].
func decodeSplit(b []byte) histogram.Split {
	flags := b[16]
	return histogram.Split{
		Feature:     int(int32(binary.LittleEndian.Uint32(b[0:]))),
		Bin:         int(int32(binary.LittleEndian.Uint32(b[4:]))),
		Gain:        math.Float64frombits(binary.LittleEndian.Uint64(b[8:])),
		Valid:       flags&splitFlagValid != 0,
		DefaultLeft: flags&splitFlagDefaultLeft != 0,
	}
}
