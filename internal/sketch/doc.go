// Package sketch implements the Greenwald–Khanna (GK) quantile sketch used
// to propose candidate splits for histogram-based GBDT (Section 2.1.2 of
// the paper, reference [15]).
//
// The sketch supports streaming insertion, compression to O(1/eps * log(eps*n))
// space, rank queries with eps*n additive error, and merging — the operation
// the distributed sketching step of the horizontal-to-vertical
// transformation relies on (local per-worker sketches of one feature are
// merged into a global sketch, Section 4.2.1 step 1). Merging two sketches
// with errors eps1 and eps2 yields a sketch with error at most eps1+eps2.
//
// Two consumers drive the sketch:
//
//   - Canonical builds one sketch per feature by inserting values in
//     global row order, making candidate splits independent of how the
//     matrix is partitioned — the property every cross-quadrant
//     bit-identity guarantee in this repository rests on.
//   - internal/ingest feeds the same sketches incrementally while
//     streaming row blocks off disk, so one pass over the source derives
//     the bin boundaries stored in a .vbin cache. Because blocks are
//     re-sequenced into row order before insertion, the streaming pass
//     reproduces Canonical's splits exactly.
package sketch
