package ingest

import (
	"bytes"
	"errors"
	"os"
	"path/filepath"
	"runtime"
	"strings"
	"testing"

	"vero/internal/cluster"
	"vero/internal/core"
	"vero/internal/datasets"
	"vero/internal/failpoint"
)

// oocPair builds one dataset two ways from the same cache image: the
// materialized warm load and the out-of-core mapped view. The caller must
// Close the returned view.
func oocPair(t *testing.T, n, d int, seed int64) (warm, ooc *datasets.Dataset, mc *MappedCache) {
	t.Helper()
	_, text := sampleLibSVM(t, n, d, 2, seed)
	cold, err := Ingest(strings.NewReader(text), Options{NumClass: 2, ChunkRows: 64})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := WriteCache(&buf, cold, cold.Prebin); err != nil {
		t.Fatal(err)
	}
	warm, err = ReadCache(bytes.NewReader(buf.Bytes()), "warm")
	if err != nil {
		t.Fatal(err)
	}
	mc, err = MapCacheBytes(buf.Bytes(), "ooc")
	if err != nil {
		t.Fatal(err)
	}
	ooc = mc.Dataset()
	if !ooc.OutOfCore() {
		t.Fatal("mapped dataset does not report out-of-core")
	}
	return warm, ooc, mc
}

// TestOutOfCoreBitIdentical is the tentpole acceptance property: for every
// quadrant's reference policy, training from the mmap-backed view produces
// a byte-identical model encoding to training from the materialized
// warm-cache dataset.
func TestOutOfCoreBitIdentical(t *testing.T) {
	warm, ooc, mc := oocPair(t, 300, 40, 33)
	defer mc.Close()
	for _, q := range []core.Quadrant{core.QD1, core.QD2, core.QD3, core.QD4} {
		want := encodeTrained(t, warm, q, 20)
		if got := encodeTrained(t, ooc, q, 20); !bytes.Equal(got, want) {
			t.Fatalf("%v: out-of-core model differs from in-memory", q)
		}
	}
}

// TestOutOfCoreBlockBoundaries pins the block-iterator edge cases: one-row
// blocks, a block larger than the dataset (single block), a ragged last
// block, and one-entry column chunks must all stay bit-identical — the
// chunking must never change what flows into any accumulator.
func TestOutOfCoreBlockBoundaries(t *testing.T) {
	warm, ooc, mc := oocPair(t, 150, 25, 7)
	defer mc.Close()
	for _, q := range []core.Quadrant{core.QD1, core.QD2, core.QD3, core.QD4} {
		want := encodeTrained(t, warm, q, 20)
		for _, bc := range []struct {
			name      string
			rows, nnz int
		}{
			{"rows=1,nnz=1", 1, 1},
			{"ragged rows=7", 7, 5},
			{"block>rows", 1000, 0},
		} {
			cfg, err := core.ConfigureQuadrant(q, core.Config{Trees: 4, Layers: 4, Splits: 20})
			if err != nil {
				t.Fatal(err)
			}
			cfg.BlockRows, cfg.BlockNNZ = bc.rows, bc.nnz
			res, err := core.Train(cluster.New(4, cluster.Gigabit()), ooc, cfg)
			if err != nil {
				t.Fatalf("%v %s: %v", q, bc.name, err)
			}
			got, err := res.Forest.Encode()
			if err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(got, want) {
				t.Fatalf("%v %s: model differs from in-memory", q, bc.name)
			}
		}
	}
}

// TestOutOfCoreTransformParity: the streamed QD4 transformation must
// charge exactly the bytes the materialized one does — same grouping, same
// per-variant shuffle volumes.
func TestOutOfCoreTransformParity(t *testing.T) {
	warm, ooc, mc := oocPair(t, 200, 30, 11)
	defer mc.Close()
	train := func(ds *datasets.Dataset) *core.Result {
		cfg, err := core.ConfigureQuadrant(core.QD4, core.Config{Trees: 2, Layers: 3, Splits: 20})
		if err != nil {
			t.Fatal(err)
		}
		res, err := core.Train(cluster.New(4, cluster.Gigabit()), ds, cfg)
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	want, got := train(warm), train(ooc)
	if got.TransformBytes != want.TransformBytes {
		t.Fatalf("transform byte report differs:\nstreamed %+v\nmemory   %+v",
			got.TransformBytes, want.TransformBytes)
	}
	// The identical charges can accumulate in a different order across
	// phases, so the simulated time agrees to float rounding, not bit for
	// bit.
	if diff := got.CommSeconds - want.CommSeconds; diff > 1e-12 || diff < -1e-12 {
		t.Fatalf("simulated comm time differs: streamed %v, memory %v",
			got.CommSeconds, want.CommSeconds)
	}
}

// TestOutOfCoreRejectsUnstreamable: policies that inherently materialize
// the dataset must be refused up front with a descriptive error, and an
// out-of-core dataset without its cache prebin is unusable.
func TestOutOfCoreRejectsUnstreamable(t *testing.T) {
	_, ooc, mc := oocPair(t, 100, 15, 3)
	defer mc.Close()

	cfg := core.Config{Trees: 2, Layers: 3, Quadrant: core.QD3, ColumnIndex: core.IndexColumnWise}
	if _, err := core.Train(cluster.New(2, cluster.Gigabit()), ooc, cfg); err == nil || !strings.Contains(err.Error(), "cannot stream") {
		t.Fatalf("column-wise index: %v, want cannot-stream rejection", err)
	}
	cfg = core.Config{Trees: 2, Layers: 3, Quadrant: core.QD4, FullCopy: true}
	if _, err := core.Train(cluster.New(2, cluster.Gigabit()), ooc, cfg); err == nil || !strings.Contains(err.Error(), "cannot stream") {
		t.Fatalf("full copy: %v, want cannot-stream rejection", err)
	}
	bare := &datasets.Dataset{
		Name: "bare", Labels: ooc.Labels, NumClass: ooc.NumClass,
		Task: ooc.Task, Blocks: mc,
	}
	cfg = core.Config{Trees: 2, Layers: 3, Quadrant: core.QD2}
	if _, err := core.Train(cluster.New(2, cluster.Gigabit()), bare, cfg); err == nil || !strings.Contains(err.Error(), "prebin") {
		t.Fatalf("missing prebin: %v, want prebin rejection", err)
	}
}

// TestOutOfCoreReadFailureAborts arms the mmap-read failpoint under a
// training run: the injected fault must surface as a descriptive
// ErrCacheCorrupt-wrapped training error — never a panic, never a model
// built from garbage reads. QD2 performs no block reads during
// preparation, so the fault lands mid-train and the run aborts at the
// tree boundary; QD4 hits it in the streamed transformation.
func TestOutOfCoreReadFailureAborts(t *testing.T) {
	defer failpoint.Reset()
	_, ooc, mc := oocPair(t, 120, 20, 9)
	defer mc.Close()

	for _, tc := range []struct {
		quadrant core.Quadrant
		contains string
	}{
		{core.QD2, "aborted during round"},
		{core.QD4, ""},
	} {
		cfg, err := core.ConfigureQuadrant(tc.quadrant, core.Config{Trees: 3, Layers: 3, Splits: 20})
		if err != nil {
			t.Fatal(err)
		}
		if err := failpoint.Enable(FailpointMmapRead, "error"); err != nil {
			t.Fatal(err)
		}
		_, err = core.Train(cluster.New(2, cluster.Gigabit()), ooc, cfg)
		failpoint.Reset()
		if err == nil {
			t.Fatalf("%v: training succeeded under injected read failures", tc.quadrant)
		}
		if !errors.Is(err, ErrCacheCorrupt) || !errors.Is(err, failpoint.ErrInjected) {
			t.Fatalf("%v: error does not wrap ErrCacheCorrupt and the injected fault: %v", tc.quadrant, err)
		}
		if tc.contains != "" && !strings.Contains(err.Error(), tc.contains) {
			t.Fatalf("%v: error %q does not mention %q", tc.quadrant, err, tc.contains)
		}
		// Disarmed, the same configuration trains cleanly.
		if _, err := core.Train(cluster.New(2, cluster.Gigabit()), ooc, cfg); err != nil {
			t.Fatalf("%v: disarmed run failed: %v", tc.quadrant, err)
		}
	}
}

// TestOutOfCoreBudgetBoundsHeap is the memory guarantee: training a cache
// image at least 3x larger than the budget must keep the trainer's peak
// heap (Result.PeakHeapBytes, sampled at tree boundaries) under the
// budget — the matrix stays on disk.
func TestOutOfCoreBudgetBoundsHeap(t *testing.T) {
	if testing.Short() {
		t.Skip("builds a multi-hundred-megabit cache image")
	}
	const budget = 24 << 20
	ds, err := datasets.Synthetic(datasets.SyntheticConfig{
		N: 5600, D: 5500, C: 2, InformativeRatio: 0.2, Density: 0.52, Seed: 41,
	})
	if err != nil {
		t.Fatal(err)
	}
	pb := Prebinned(ds, DefaultSketchEps, 20)
	path := filepath.Join(t.TempDir(), "big.vbin")
	if err := WriteCacheFile(path, ds, pb); err != nil {
		t.Fatal(err)
	}
	st, err := os.Stat(path)
	if err != nil {
		t.Fatal(err)
	}
	if st.Size() < 3*budget {
		t.Fatalf("cache image is %d bytes, need >= 3x the %d budget", st.Size(), budget)
	}
	ds, pb = nil, nil
	runtime.GC()

	mc, err := MapCacheFile(path)
	if err != nil {
		t.Fatal(err)
	}
	defer mc.Close()
	cfg, err := core.ConfigureQuadrant(core.QD4, core.Config{
		Trees: 2, Layers: 2, Splits: 20, MemBudget: budget,
	})
	if err != nil {
		t.Fatal(err)
	}
	res, err := core.Train(cluster.New(2, cluster.Gigabit()), mc.Dataset(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.PeakHeapBytes == 0 {
		t.Fatal("peak heap not sampled")
	}
	if res.PeakHeapBytes >= budget {
		t.Fatalf("peak heap %.1f MiB >= budget %.1f MiB (image %.1f MiB)",
			float64(res.PeakHeapBytes)/(1<<20), float64(budget)/(1<<20), float64(st.Size())/(1<<20))
	}
	t.Logf("image %.1f MiB, budget %.1f MiB, peak heap %.1f MiB",
		float64(st.Size())/(1<<20), float64(budget)/(1<<20), float64(res.PeakHeapBytes)/(1<<20))
}
