package ingest

import (
	"fmt"
	"hash/fnv"
	"os"
	"path/filepath"
	"strings"

	"vero/internal/datasets"
)

// CacheStatus reports how Cached obtained its dataset.
type CacheStatus string

// Cached outcomes.
const (
	// CacheCold means the source was parsed and the cache (re)built.
	CacheCold CacheStatus = "cold"
	// CacheWarm means the dataset was loaded from a fresh cache.
	CacheWarm CacheStatus = "warm"
)

// CachePath derives the cache file path for a source file under dir. The
// name embeds a hash of the absolute source path and every ingestion
// parameter that shapes the cache, so parameter changes key different
// cache files instead of silently reusing stale ones.
func CachePath(dir, source string, opts Options) (string, error) {
	opts, err := opts.withDefaults()
	if err != nil {
		return "", err
	}
	abs, err := filepath.Abs(source)
	if err != nil {
		return "", fmt.Errorf("ingest: %w", err)
	}
	h := fnv.New64a()
	fmt.Fprintf(h, "%s|%s|%d|%g|%d", abs, opts.Format, opts.NumClass, opts.SketchEps, opts.Q)
	base := strings.TrimSuffix(filepath.Base(source), filepath.Ext(source))
	return filepath.Join(dir, fmt.Sprintf("%s-%016x.vbin", base, h.Sum64())), nil
}

// ReadFreshCache warm-loads the cache for source under dir when the
// cache file exists, is at least as new as the source and matches the
// requested parameters. Any other condition — including corruption — is
// reported as an error the caller treats as a miss.
func ReadFreshCache(dir, source string, opts Options) (*datasets.Dataset, error) {
	path, err := CachePath(dir, source, opts)
	if err != nil {
		return nil, err
	}
	opts, err = opts.withDefaults()
	if err != nil {
		return nil, err
	}
	if !fresh(path, source) {
		return nil, fmt.Errorf("ingest: no fresh cache for %s", source)
	}
	ds, err := ReadCacheFile(path)
	if err != nil {
		return nil, err
	}
	if !ds.Prebin.Matches(opts.SketchEps, opts.Q) || ds.NumClass != opts.NumClass {
		return nil, &CacheMismatchError{Reason: fmt.Sprintf("cache %s does not match requested parameters", path)}
	}
	return ds, nil
}

// Cached loads source through the cache directory: when a cache file
// exists, is at least as new as the source and matches the requested
// parameters, it is warm-loaded (no parsing, no binning); otherwise the
// source is cold-ingested and the cache rewritten. A corrupt or mismatched
// cache is treated as a miss, never an error.
func Cached(dir, source string, opts Options) (*datasets.Dataset, CacheStatus, error) {
	if ds, err := ReadFreshCache(dir, source, opts); err == nil {
		return ds, CacheWarm, nil
	}
	path, err := CachePath(dir, source, opts)
	if err != nil {
		return nil, "", err
	}
	opts, err = opts.withDefaults()
	if err != nil {
		return nil, "", err
	}
	ds, err := IngestFile(source, opts)
	if err != nil {
		return nil, "", err
	}
	if mkErr := os.MkdirAll(dir, 0o755); mkErr != nil {
		return nil, "", fmt.Errorf("ingest: cache dir: %w", mkErr)
	}
	if err := WriteCacheFile(path, ds, ds.Prebin); err != nil {
		return nil, "", err
	}
	return ds, CacheCold, nil
}

// EnsureCache guarantees a fresh cache image for source under dir,
// cold-ingesting and writing it when missing or stale, and returns the
// cache file's path. The name embeds the ingestion parameters (see
// CachePath), so an existing fresh file at the derived path matches the
// request by construction. This is the entry point for out-of-core
// training, which maps the image instead of loading it.
func EnsureCache(dir, source string, opts Options) (string, CacheStatus, error) {
	path, err := CachePath(dir, source, opts)
	if err != nil {
		return "", "", err
	}
	if fresh(path, source) {
		return path, CacheWarm, nil
	}
	opts, err = opts.withDefaults()
	if err != nil {
		return "", "", err
	}
	ds, err := IngestFile(source, opts)
	if err != nil {
		return "", "", err
	}
	if mkErr := os.MkdirAll(dir, 0o755); mkErr != nil {
		return "", "", fmt.Errorf("ingest: cache dir: %w", mkErr)
	}
	if err := WriteCacheFile(path, ds, ds.Prebin); err != nil {
		return "", "", err
	}
	return path, CacheCold, nil
}

// fresh reports whether the cache at path exists and is at least as new
// as the source file.
func fresh(path, source string) bool {
	ci, err := os.Stat(path)
	if err != nil {
		return false
	}
	si, err := os.Stat(source)
	if err != nil {
		return false
	}
	return !ci.ModTime().Before(si.ModTime())
}
