package sketch

import (
	"fmt"
	"math"
	"sort"
)

// tuple is one GK summary entry. For the i-th tuple (ordered by value),
// g is rmin(i) - rmin(i-1) and delta is rmax(i) - rmin(i).
type tuple struct {
	v     float64
	g     int64
	delta int64
}

// GK is a Greenwald–Khanna epsilon-approximate quantile summary.
// The zero value is not usable; construct with New.
type GK struct {
	eps    float64
	n      int64
	tuples []tuple
	buf    []float64 // pending unsorted inserts, folded in lazily
	bufCap int
	mergeE float64 // accumulated error from merges, in units of eps
}

// New returns an empty sketch with the given error bound (0 < eps < 1).
func New(eps float64) *GK {
	if eps <= 0 || eps >= 1 {
		panic(fmt.Sprintf("sketch: eps %v out of (0,1)", eps))
	}
	cap := int(1.0/(2.0*eps)) + 1
	if cap < 16 {
		cap = 16
	}
	return &GK{eps: eps, bufCap: cap, mergeE: 1}
}

// Eps returns the nominal error bound the sketch was created with.
func (s *GK) Eps() float64 { return s.eps }

// ErrorBound returns the current additive rank-error bound as a fraction of
// n, accounting for merges (each merge adds the operands' errors).
func (s *GK) ErrorBound() float64 { return s.eps * s.mergeE }

// Count returns the number of values inserted (including both operands of
// any merges).
func (s *GK) Count() int64 { return s.n + int64(len(s.buf)) }

// Add inserts one value into the sketch.
func (s *GK) Add(v float64) {
	if math.IsNaN(v) {
		return // NaN values carry no rank information; treat as missing
	}
	s.buf = append(s.buf, v)
	if len(s.buf) >= s.bufCap {
		s.flush()
	}
}

// flush folds buffered values into the tuple list and compresses.
func (s *GK) flush() {
	if len(s.buf) == 0 {
		return
	}
	sort.Float64s(s.buf)
	// Merge the sorted buffer into the sorted tuple list in one pass.
	out := make([]tuple, 0, len(s.tuples)+len(s.buf))
	ti := 0
	for _, v := range s.buf {
		for ti < len(s.tuples) && s.tuples[ti].v < v {
			out = append(out, s.tuples[ti])
			ti++
		}
		s.n++
		var delta int64
		if len(out) == 0 || ti >= len(s.tuples) {
			// A new minimum, or a value inserted past the current end of
			// the summary: at insertion time it is a running maximum, so
			// its rank is known exactly (delta = 0).
			delta = 0
		} else {
			delta = int64(2 * s.eps * float64(s.n))
		}
		out = append(out, tuple{v: v, g: 1, delta: delta})
	}
	out = append(out, s.tuples[ti:]...)
	s.tuples = out
	s.buf = s.buf[:0]
	s.compress()
}

// compress merges adjacent tuples whose combined band fits the error bound.
func (s *GK) compress() {
	if len(s.tuples) < 3 {
		return
	}
	threshold := int64(2 * s.eps * float64(s.n))
	out := s.tuples[:0]
	out = append(out, s.tuples[0])
	for i := 1; i < len(s.tuples); i++ {
		t := s.tuples[i]
		last := &out[len(out)-1]
		// Never merge away the global min/max tuples (first and last).
		if len(out) > 1 && i < len(s.tuples)-1 && last.g+t.g+t.delta <= threshold {
			t.g += last.g
			out[len(out)-1] = t
		} else {
			out = append(out, t)
		}
	}
	s.tuples = out
}

// Query returns an eps-approximate phi-quantile (phi in [0,1]). It returns
// NaN for an empty sketch.
func (s *GK) Query(phi float64) float64 {
	s.flush()
	if s.n == 0 {
		return math.NaN()
	}
	if phi <= 0 {
		return s.tuples[0].v
	}
	if phi >= 1 {
		return s.tuples[len(s.tuples)-1].v
	}
	r := phi * float64(s.n)
	e := s.ErrorBound() * float64(s.n)
	// The GK existence guarantee needs a tolerance of at least half the
	// widest tuple band; with few samples eps*n drops below one rank and
	// no tuple would qualify, so floor the tolerance at one.
	if e < 1 {
		e = 1
	}
	var rmin int64
	for i, t := range s.tuples {
		rmin += t.g
		rmax := rmin + t.delta
		if r-float64(rmin) <= e && float64(rmax)-r <= e {
			return t.v
		}
		if i == len(s.tuples)-1 {
			break
		}
	}
	return s.tuples[len(s.tuples)-1].v
}

// Merge folds other into s. Both sketches remain valid GK summaries; the
// resulting error bound is the sum of the operands' bounds. other is left
// unchanged.
func (s *GK) Merge(other *GK) {
	other.flush()
	s.flush()
	if other.n == 0 {
		return
	}
	if s.n == 0 {
		s.n = other.n
		s.tuples = append([]tuple(nil), other.tuples...)
		s.mergeE = other.mergeE * other.eps / s.eps
		if s.mergeE < 1 {
			s.mergeE = 1
		}
		return
	}
	merged := make([]tuple, 0, len(s.tuples)+len(other.tuples))
	i, j := 0, 0
	for i < len(s.tuples) && j < len(other.tuples) {
		if s.tuples[i].v <= other.tuples[j].v {
			merged = append(merged, s.tuples[i])
			i++
		} else {
			merged = append(merged, other.tuples[j])
			j++
		}
	}
	merged = append(merged, s.tuples[i:]...)
	merged = append(merged, other.tuples[j:]...)
	s.tuples = merged
	s.n += other.n
	// Error bounds add under merge (standard GK merge result).
	s.mergeE = s.mergeE + other.mergeE*other.eps/s.eps
	s.compress()
}

// Quantiles returns the k values at phi = 1/k, 2/k, ..., 1. It is the
// "propose candidate splits" primitive of Figure 3.
func (s *GK) Quantiles(k int) []float64 {
	out := make([]float64, k)
	for i := 1; i <= k; i++ {
		out[i-1] = s.Query(float64(i) / float64(k))
	}
	return out
}

// CandidateSplits returns up to q strictly increasing candidate split
// values for this feature, derived from the q-quantiles with duplicates
// removed. An empty sketch yields nil.
func (s *GK) CandidateSplits(q int) []float32 {
	s.flush()
	if s.n == 0 {
		return nil
	}
	qs := s.Quantiles(q)
	out := make([]float32, 0, q)
	for _, v := range qs {
		f := float32(v)
		if len(out) == 0 || f > out[len(out)-1] {
			out = append(out, f)
		}
	}
	return out
}

// NumTuples reports the summary size; exported for space-bound tests.
func (s *GK) NumTuples() int {
	s.flush()
	return len(s.tuples)
}
