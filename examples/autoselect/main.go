// Autoselect: the paper's stated future work (Section 6) wired end to
// end. Three workloads with different shapes train under
// gbdt.QuadrantAuto; for each, the advisor derives the workload from the
// dataset, scores the cost model (Section 3.1) against Table 1's decision
// matrix, and the trainer runs the recommended quadrant. The decision and
// its rationale come back in the report.
package main

import (
	"fmt"
	"log"

	"vero/gbdt"
)

func main() {
	shapes := []struct {
		label string
		cfg   gbdt.SyntheticConfig
	}{
		// High-dimensional and sparse: histogram aggregation dominates,
		// vertical partitioning with row-store (QD4, Vero) wins.
		{"high-dimensional sparse", gbdt.SyntheticConfig{
			N: 4000, D: 2000, C: 2, InformativeRatio: 0.2, Density: 0.05, Seed: 7}},
		// Few features, many instances: placement bitmaps scale with N,
		// horizontal row-store (QD2, LightGBM) wins.
		{"low-dimensional dense", gbdt.SyntheticConfig{
			N: 60000, D: 8, C: 2, InformativeRatio: 0.8, Density: 1.0, Seed: 7}},
		// Very few instances relative to D: column-store construction is
		// cache-friendly enough to beat row-store (QD3).
		{"tiny-N very wide", gbdt.SyntheticConfig{
			N: 800, D: 3000, C: 2, InformativeRatio: 0.2, Density: 0.1, Seed: 7}},
	}

	for _, s := range shapes {
		ds, err := gbdt.Synthetic(s.cfg)
		if err != nil {
			log.Fatal(err)
		}
		model, report, err := gbdt.Train(ds, gbdt.Options{
			Quadrant: gbdt.QuadrantAuto,
			Workers:  4,
			Trees:    5,
			Layers:   5,
		})
		if err != nil {
			log.Fatal(err)
		}
		sel := report.Selection
		fmt.Printf("%-24s (N=%d D=%d)\n", s.label, ds.NumInstances(), ds.NumFeatures())
		fmt.Printf("  selected %v -> system %q, trained %d trees\n",
			sel.Quadrant, sel.Advice.System, model.NumTrees())
		fmt.Printf("  modeled comm/tree: horizontal %.4fs, vertical %.4fs\n",
			sel.Advice.HorizontalCommSecPerTree, sel.Advice.VerticalCommSecPerTree)
		fmt.Printf("  why: %s\n\n", sel.Advice.Rationale)
	}
	fmt.Println("The same decision is available without training via " +
		"gbdt.AdviseDataset or `veroctl advise`; `veroctl train -quadrant auto` " +
		"applies it to LibSVM files.")
}
