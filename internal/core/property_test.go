package core

import (
	"math/rand"
	"testing"
	"testing/quick"

	"vero/internal/cluster"
	"vero/internal/datasets"
)

// TestQuadrantEquivalenceProperty drives the cross-quadrant identity over
// randomized shapes, class counts, densities, worker counts and
// hyper-parameters — the strongest correctness check in the repository:
// any divergence in histogram construction, aggregation, subtraction,
// index maintenance, placement broadcasting or split selection in any
// quadrant shows up as a structural tree difference.
func TestQuadrantEquivalenceProperty(t *testing.T) {
	if testing.Short() {
		t.Skip("property sweep in short mode")
	}
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		c := 2 + rng.Intn(4)
		ds, err := datasets.Synthetic(datasets.SyntheticConfig{
			N:                300 + rng.Intn(500),
			D:                10 + rng.Intn(60),
			C:                c,
			InformativeRatio: 0.2 + 0.6*rng.Float64(),
			Density:          0.1 + 0.8*rng.Float64(),
			Seed:             seed,
		})
		if err != nil {
			t.Log(err)
			return false
		}
		cfg := Config{
			Quadrant: QD2,
			Trees:    2,
			Layers:   3 + rng.Intn(3),
			Splits:   4 + rng.Intn(16),
			Lambda:   0.5 + rng.Float64(),
			Gamma:    rng.Float64() * 0.1,
		}
		workers := 1 + rng.Intn(5)
		train := func(q Quadrant) *Result {
			cfg := cfg
			cfg.Quadrant = q
			cl := cluster.New(workers, cluster.Gigabit())
			res, err := Train(cl, ds, cfg)
			if err != nil {
				t.Logf("seed %d quadrant %v: %v", seed, q, err)
				return nil
			}
			return res
		}
		ref := train(QD2)
		if ref == nil {
			return false
		}
		for _, q := range []Quadrant{QD1, QD3, QD4} {
			res := train(q)
			if res == nil {
				return false
			}
			if !forestsStructurallyEqual(ref, res) {
				t.Logf("seed %d: %v diverged (N=%d D=%d C=%d L=%d q=%d W=%d)",
					seed, q, ds.NumInstances(), ds.NumFeatures(), c, cfg.Layers, cfg.Splits, workers)
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 12}); err != nil {
		t.Fatal(err)
	}
}

func forestsStructurallyEqual(a, b *Result) bool {
	if a.Forest.NumTrees() != b.Forest.NumTrees() {
		return false
	}
	for ti := range a.Forest.Trees {
		ta, tb := a.Forest.Trees[ti], b.Forest.Trees[ti]
		if len(ta.Nodes) != len(tb.Nodes) {
			return false
		}
		for ni := range ta.Nodes {
			na, nb := &ta.Nodes[ni], &tb.Nodes[ni]
			if na.Feature != nb.Feature || na.SplitBin != nb.SplitBin || na.DefaultLeft != nb.DefaultLeft {
				return false
			}
		}
	}
	return true
}
