// Command datagen writes synthetic datasets: either the paper's
// random-linear-model generator with explicit shape parameters, or a
// named simulacrum of one of the paper's datasets (Table 2 / Section 6).
// Output is LibSVM text by default; -format vbin emits the binned binary
// cache directly (docs/DATA.md), so training starts warm with no parse
// and no binning.
//
// Usage:
//
//	datagen -n 100000 -d 1000 -c 2 -density 0.2 -out train.libsvm
//	datagen -n 100000 -d 1000 -c 2 -format vbin -out train.vbin
//	datagen -name rcv1 -out rcv1.libsvm
//	datagen -list
package main

import (
	"flag"
	"fmt"
	"os"

	"vero/gbdt"
)

func main() {
	n := flag.Int("n", 10000, "instances")
	d := flag.Int("d", 100, "features")
	c := flag.Int("c", 2, "classes (>= 2)")
	density := flag.Float64("density", 0.2, "nonzero fraction per instance (phi)")
	informative := flag.Float64("informative", 0.2, "informative feature ratio (p)")
	noise := flag.Float64("noise", 0.0, "label noise fraction")
	name := flag.String("name", "", "named paper dataset simulacrum (overrides shape flags)")
	seed := flag.Int64("seed", 1, "random seed")
	out := flag.String("out", "", "output path (default stdout; required for -format vbin)")
	format := flag.String("format", "libsvm", "output format: libsvm or vbin (binned binary cache)")
	splits := flag.Int("splits", 20, "candidate splits per feature for -format vbin (q)")
	list := flag.Bool("list", false, "list named datasets and exit")
	flag.Parse()

	if *list {
		fmt.Printf("%-16s %6s %22s %22s\n", "name", "kind", "paper (NxDxC)", "simulated (NxDxC)")
		for _, desc := range gbdt.DatasetCatalog() {
			fmt.Printf("%-16s %6s %10dx%-7dx%-3d %10dx%-7dx%-3d\n", desc.Name, desc.Kind,
				desc.PaperN, desc.PaperD, desc.PaperC, desc.SimN, desc.SimD, desc.SimC)
		}
		return
	}

	var (
		ds  *gbdt.Dataset
		err error
	)
	if *name != "" {
		ds, err = gbdt.NamedDataset(*name, *seed)
	} else {
		ds, err = gbdt.Synthetic(gbdt.SyntheticConfig{
			N: *n, D: *d, C: *c,
			InformativeRatio: *informative,
			Density:          *density,
			LabelNoise:       *noise,
			Seed:             *seed,
		})
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "datagen:", err)
		os.Exit(1)
	}

	switch *format {
	case "vbin":
		if *out == "" {
			fmt.Fprintln(os.Stderr, "datagen: -format vbin requires -out")
			os.Exit(1)
		}
		if err := gbdt.WriteCacheFile(*out, ds, gbdt.Options{Splits: *splits}); err != nil {
			fmt.Fprintln(os.Stderr, "datagen:", err)
			os.Exit(1)
		}
	case "libsvm":
		w := os.Stdout
		if *out != "" {
			f, err := os.Create(*out)
			if err != nil {
				fmt.Fprintln(os.Stderr, "datagen:", err)
				os.Exit(1)
			}
			defer f.Close()
			w = f
		}
		if err := gbdt.WriteLibSVM(w, ds); err != nil {
			fmt.Fprintln(os.Stderr, "datagen:", err)
			os.Exit(1)
		}
	default:
		fmt.Fprintf(os.Stderr, "datagen: unknown format %q (want libsvm or vbin)\n", *format)
		os.Exit(1)
	}
	if *out != "" {
		fmt.Fprintf(os.Stderr, "wrote %d x %d (%d classes, %d nonzeros) to %s\n",
			ds.NumInstances(), ds.NumFeatures(), ds.NumClass, ds.X.NNZ(), *out)
	}
}
