// Package serve implements the model-serving HTTP layer behind
// cmd/veroserve: JSON prediction endpoints over a registry of compiled
// gbdt.Predictors with atomic hot-swap, per-model admission control and
// request accounting.
//
// Endpoints (see docs/SERVING.md for the full wire format):
//
//	GET    /healthz                   liveness probe
//	GET    /readyz                    readiness probe (503 once draining)
//	GET    /metricz                   per-model request/latency accounting
//	GET    /v1/models                 list registered models
//	GET    /v1/models/{name}          one model's metadata
//	POST   /v1/models/{name}/predict  single-row or batch prediction
//	POST   /v1/models/{name}          load or hot-swap a model (admin)
//	DELETE /v1/models/{name}          unregister a model (admin)
//	GET    /v1/model                  alias: default model's metadata
//	POST   /v1/predict                alias: predict on the default model
//
// A predict request carries sparse rows (parallel indices/values arrays),
// dense rows, or both:
//
//	{"rows": [{"indices": [0, 7], "values": [1.5, -2.0]}],
//	 "dense": [[1.5, 0, 0, 0, 0, 0, 0, -2.0]],
//	 "proba": true}
//
// The response returns raw margins per row (stride num_class), the
// (model, version) that scored them, and, when proba is set,
// sigmoid/softmax probabilities:
//
//	{"model": "default", "version": 2, "num_class": 1,
//	 "scores": [[0.83]], "probabilities": [[0.69]]}
//
// Every request resolves its model handle exactly once, so a hot-swap
// landing mid-request never mixes versions: the response is entirely the
// version named in it. Concurrency is bounded per model: MaxInFlight caps
// the predict requests decoded and scored at once (excess requests wait,
// honoring request cancellation), and the predictor's worker pool caps
// the goroutines one batch fans out to.
package serve

import (
	"encoding/json"
	"fmt"
	"io"
	"log"
	"math"
	"net/http"
	"os"
	"sort"
	"sync/atomic"
	"time"

	"vero/gbdt"
	"vero/internal/tree"
)

// DefaultModel is the name the single-model constructor registers its
// model under, and the model the legacy /v1/model and /v1/predict aliases
// resolve.
const DefaultModel = "default"

// Options configures a Server.
type Options struct {
	// Workers bounds the prediction goroutines per batch (default
	// GOMAXPROCS, via gbdt.PredictorOptions).
	Workers int
	// BlockRows is the batch-scoring instance-block size (default
	// tree.DefaultBlockRows; 1 disables blocking). See
	// gbdt.PredictorOptions.BlockRows.
	BlockRows int
	// MaxInFlight bounds concurrently served predict requests per model
	// (default 64).
	MaxInFlight int
	// MaxBatchRows rejects predict requests with more rows (default 10000).
	MaxBatchRows int
	// Batch enables cross-request micro-batching for every model:
	// concurrent single-row predict requests coalesce into one blocked
	// scoring call (see BatchConfig and batcher.go). The zero value
	// disables batching.
	Batch BatchConfig
	// BatchOverrides replaces Batch for specific model names. An override
	// with zero Deadline disables batching for that model only.
	BatchOverrides map[string]BatchConfig
	// Binned scores through bin-code descent when a model carries its
	// candidate splits (bit-identical margins, smaller node images).
	// Models without bin metadata fall back to float descent with a log
	// line.
	Binned bool
	// EnableAdmin exposes the model load/swap/delete endpoints. Off by
	// default: the admin endpoint reads model files from the server's
	// filesystem, so only enable it on trusted networks.
	EnableAdmin bool
	// Logger receives load/swap/delete rationale lines (default
	// log.Default()).
	Logger *log.Logger

	// clock is the batcher's time source; tests inject a fake to drive
	// flush deadlines deterministically.
	clock clock
}

func (o Options) withDefaults() Options {
	if o.MaxInFlight <= 0 {
		o.MaxInFlight = 64
	}
	if o.MaxBatchRows <= 0 {
		o.MaxBatchRows = 10000
	}
	if o.Logger == nil {
		o.Logger = log.Default()
	}
	if o.clock == nil {
		o.clock = realClock{}
	}
	return o
}

// batchConfig resolves the effective micro-batching config for one model:
// the per-name override when present, the global Batch otherwise, with
// MaxRows defaulted to the scoring block size and clamped to MaxInFlight
// (admission bounds how many single-row requests can ever queue, so a
// larger count would never fill). The returned config has MaxRows > 1 iff
// batching is on.
func (o Options) batchConfig(name string) BatchConfig {
	cfg := o.Batch
	if ov, ok := o.BatchOverrides[name]; ok {
		cfg = ov
	}
	if cfg.Deadline <= 0 {
		return BatchConfig{}
	}
	if cfg.MaxRows <= 0 {
		cfg.MaxRows = o.BlockRows
		if cfg.MaxRows <= 0 {
			cfg.MaxRows = tree.DefaultBlockRows
		}
	}
	if cfg.MaxRows > o.MaxInFlight {
		cfg.MaxRows = o.MaxInFlight
	}
	if cfg.MaxRows <= 1 {
		return BatchConfig{}
	}
	return cfg
}

// Server serves predictions for a registry of models.
type Server struct {
	reg         *Registry
	defaultName string
	opts        Options
	// ready backs /readyz: true once every construction-time model has
	// loaded, false again when a drain begins — so load balancers stop
	// routing before the listener closes.
	ready atomic.Bool
}

// ModelSpec names one model for NewMulti.
type ModelSpec struct {
	Name   string
	Source string // provenance echoed in /v1/models (typically the file path)
	Model  *gbdt.Model
}

// New compiles a single model and returns a ready Server with the model
// registered as the default. name is recorded as the model's source
// (typically the model file path).
func New(model *gbdt.Model, name string, opts Options) (*Server, error) {
	return NewMulti([]ModelSpec{{Name: DefaultModel, Source: name, Model: model}}, opts)
}

// NewMulti compiles several models into a fresh registry. The first spec
// is the default model served by the legacy /v1/model and /v1/predict
// aliases.
func NewMulti(specs []ModelSpec, opts Options) (*Server, error) {
	if len(specs) == 0 {
		return nil, fmt.Errorf("serve: no models")
	}
	opts = opts.withDefaults()
	s := &Server{reg: newRegistry(opts), defaultName: specs[0].Name, opts: opts}
	for _, spec := range specs {
		if spec.Name == "" {
			return nil, fmt.Errorf("serve: model with empty name")
		}
		if _, err := s.reg.Load(spec.Name, spec.Source, spec.Model); err != nil {
			return nil, err
		}
	}
	s.ready.Store(true)
	return s, nil
}

// Registry exposes the model registry for programmatic load/swap/delete.
func (s *Server) Registry() *Registry { return s.reg }

// BeginDrain flips /readyz to 503 without touching in-flight or future
// requests. Call it when a shutdown signal arrives, before
// http.Server.Shutdown, so load balancers stop routing new work while the
// listener still answers the requests already on the wire.
func (s *Server) BeginDrain() { s.ready.Store(false) }

// Ready reports whether /readyz currently answers 200.
func (s *Server) Ready() bool { return s.ready.Load() }

// Close drains every model's coalescing queue: rows already enqueued are
// scored and answered normally, and later requests score inline. Call
// after (or concurrently with) http.Server.Shutdown so no queued request
// is dropped. Close implies BeginDrain.
func (s *Server) Close() {
	s.BeginDrain()
	s.reg.Close()
}

// DefaultModelName returns the name served by the legacy aliases.
func (s *Server) DefaultModelName() string { return s.defaultName }

// Handler returns the HTTP handler tree.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		fmt.Fprintln(w, `{"status":"ok"}`)
	})
	mux.HandleFunc("GET /readyz", func(w http.ResponseWriter, r *http.Request) {
		if !s.ready.Load() {
			writeError(w, http.StatusServiceUnavailable, "draining")
			return
		}
		w.Header().Set("Content-Type", "application/json")
		fmt.Fprintln(w, `{"status":"ready"}`)
	})
	mux.HandleFunc("GET /metricz", s.handleMetricz)
	mux.HandleFunc("GET /v1/models", s.handleList)
	mux.HandleFunc("GET /v1/models/{name}", s.handleModel)
	mux.HandleFunc("POST /v1/models/{name}/predict", s.handlePredict)
	mux.HandleFunc("POST /v1/models/{name}", s.handleAdminSwap)
	mux.HandleFunc("DELETE /v1/models/{name}", s.handleAdminDelete)
	// Legacy single-model aliases, routed at the default model.
	mux.HandleFunc("GET /v1/model", s.handleModel)
	mux.HandleFunc("POST /v1/predict", s.handlePredict)
	return mux
}

// resolve picks the request's model handle: the {name} path segment, or
// the default model for the legacy alias routes.
func (s *Server) resolve(r *http.Request) (*handle, string, bool) {
	name := r.PathValue("name")
	if name == "" {
		name = s.defaultName
	}
	h, ok := s.reg.get(name)
	return h, name, ok
}

// ModelInfo is the /v1/model and /v1/models/{name} response: the
// registry status plus whether the model backs the legacy aliases.
type ModelInfo struct {
	ModelStatus
	Default bool `json:"default"`
}

func (s *Server) info(st ModelStatus) ModelInfo {
	return ModelInfo{ModelStatus: st, Default: st.Name == s.defaultName}
}

func (s *Server) handleModel(w http.ResponseWriter, r *http.Request) {
	h, name, ok := s.resolve(r)
	if !ok {
		writeError(w, http.StatusNotFound, fmt.Sprintf("model %q not registered", name))
		return
	}
	writeJSON(w, http.StatusOK, s.info(h.status()))
}

// ModelList is the /v1/models response.
type ModelList struct {
	Models []ModelInfo `json:"models"`
}

func (s *Server) handleList(w http.ResponseWriter, r *http.Request) {
	sts := s.reg.List()
	list := ModelList{Models: make([]ModelInfo, 0, len(sts))}
	for _, st := range sts {
		list.Models = append(list.Models, s.info(st))
	}
	writeJSON(w, http.StatusOK, list)
}

// MetricsResponse is the /metricz response.
type MetricsResponse struct {
	Models []MetricsSnapshot `json:"models"`
}

func (s *Server) handleMetricz(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, MetricsResponse{Models: s.reg.Metrics()})
}

// SparseRow is one instance in sparse form: parallel feature-id/value
// arrays, in any order, duplicates rejected.
type SparseRow struct {
	Indices []uint32  `json:"indices"`
	Values  []float32 `json:"values"`
}

// PredictRequest is the /v1/predict request body. Sparse rows are scored
// first, then dense rows.
type PredictRequest struct {
	Rows  []SparseRow `json:"rows,omitempty"`
	Dense [][]float32 `json:"dense,omitempty"`
	// Proba requests sigmoid/softmax probabilities alongside raw margins.
	Proba bool `json:"proba,omitempty"`
}

// PredictResponse is the /v1/predict response body. Model and Version
// identify the exact registry entry that scored every row of the
// response.
type PredictResponse struct {
	Model         string      `json:"model"`
	Version       int         `json:"version"`
	NumClass      int         `json:"num_class"`
	Scores        [][]float64 `json:"scores"`
	Probabilities [][]float64 `json:"probabilities,omitempty"`
}

// apiError is the stable JSON error envelope every non-2xx response
// carries: {"error": {"code": "...", "message": "..."}}. Code is a
// machine-readable slug derived from the HTTP status; Message is
// human-readable detail. Clients should match on Code, never on Message.
type apiError struct {
	Error ErrorBody `json:"error"`
}

// ErrorBody is the payload inside the apiError envelope.
type ErrorBody struct {
	Code    string `json:"code"`
	Message string `json:"message"`
}

// errorCode maps an HTTP status to the envelope's stable code slug.
func errorCode(status int) string {
	switch status {
	case http.StatusBadRequest:
		return "bad_request"
	case http.StatusNotFound:
		return "not_found"
	case http.StatusRequestEntityTooLarge:
		return "too_large"
	case http.StatusServiceUnavailable:
		return "capacity"
	case http.StatusForbidden:
		return "forbidden"
	case http.StatusConflict:
		return "conflict"
	default:
		return "internal"
	}
}

// writeError answers with the stable error envelope for status.
func writeError(w http.ResponseWriter, status int, msg string) {
	writeJSON(w, status, apiError{Error: ErrorBody{Code: errorCode(status), Message: msg}})
}

func (s *Server) handlePredict(w http.ResponseWriter, r *http.Request) {
	// Resolve the handle once: everything below — admission, scoring,
	// accounting, the response's (model, version) — is this one version,
	// no matter what swaps land meanwhile.
	h, name, ok := s.resolve(r)
	if !ok {
		writeError(w, http.StatusNotFound, fmt.Sprintf("model %q not registered", name))
		return
	}

	// Bounded per-model concurrency: wait for a slot or client hang-up.
	select {
	case h.inflight <- struct{}{}:
		defer func() { <-h.inflight }()
	case <-r.Context().Done():
		h.metrics.rejected.Add(1)
		writeError(w, http.StatusServiceUnavailable, "request canceled while waiting for capacity")
		return
	}
	h.metrics.inFlight.Add(1)
	defer h.metrics.inFlight.Add(-1)
	start := time.Now()

	req, feats, vals, status, err := decodePredictRequest(r.Body, s.opts.MaxBatchRows)
	if err != nil {
		h.metrics.observe(time.Since(start), 0, true)
		writeError(w, status, err.Error())
		return
	}
	// Single-row requests coalesce with concurrent ones into a shared
	// blocked scoring call (see batcher.go); multi-row requests are
	// already batches and score directly, as does everything when the
	// coalescer declines (batching off, shutdown drain, or no concurrent
	// request worth waiting for).
	var margins []float64
	batched := false
	if h.batcher != nil && len(feats) == 1 {
		margins, batched = h.batcher.enqueue(feats[0], vals[0])
	}
	if !batched {
		margins = h.pred.PredictRows(feats, vals)
	}

	k := h.pred.NumClass()
	resp := PredictResponse{
		Model:    h.name,
		Version:  h.version,
		NumClass: k,
		Scores:   reshape(margins, k),
	}
	if req.Proba {
		resp.Probabilities = reshape(h.pred.Probabilities(margins), k)
	}
	h.metrics.observe(time.Since(start), len(feats), false)
	writeJSON(w, http.StatusOK, resp)
}

// decodePredictRequest parses and validates a predict body, returning the
// normalized sparse rows ready for the prediction engine. On error the
// returned status is the HTTP code to answer with.
func decodePredictRequest(body io.Reader, maxRows int) (*PredictRequest, [][]uint32, [][]float32, int, error) {
	var req PredictRequest
	dec := json.NewDecoder(body)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&req); err != nil {
		return nil, nil, nil, http.StatusBadRequest, fmt.Errorf("decode request: %w", err)
	}
	n := len(req.Rows) + len(req.Dense)
	if n == 0 {
		return nil, nil, nil, http.StatusBadRequest, fmt.Errorf("empty request: provide rows or dense")
	}
	if maxRows > 0 && n > maxRows {
		return nil, nil, nil, http.StatusRequestEntityTooLarge,
			fmt.Errorf("%d rows exceeds batch limit %d", n, maxRows)
	}
	feats := make([][]uint32, 0, n)
	vals := make([][]float32, 0, n)
	for i := range req.Rows {
		feat, val, err := normalizeSparse(req.Rows[i])
		if err != nil {
			return nil, nil, nil, http.StatusBadRequest, fmt.Errorf("row %d: %w", i, err)
		}
		feats, vals = append(feats, feat), append(vals, val)
	}
	for _, dense := range req.Dense {
		feat, val := sparsify(dense)
		feats, vals = append(feats, feat), append(vals, val)
	}
	return &req, feats, vals, http.StatusOK, nil
}

// SwapRequest is the admin POST /v1/models/{name} body: the encoded-model
// file to load.
type SwapRequest struct {
	Path string `json:"path"`
}

func (s *Server) handleAdminSwap(w http.ResponseWriter, r *http.Request) {
	if !s.opts.EnableAdmin {
		writeError(w, http.StatusForbidden, "admin endpoints disabled (start with admin enabled)")
		return
	}
	name := r.PathValue("name")
	var req SwapRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		writeError(w, http.StatusBadRequest, "decode request: "+err.Error())
		return
	}
	if req.Path == "" {
		writeError(w, http.StatusBadRequest, "empty path")
		return
	}
	data, err := os.ReadFile(req.Path)
	if err != nil {
		writeError(w, http.StatusBadRequest, "read model: "+err.Error())
		return
	}
	model, err := gbdt.DecodeModel(data)
	if err != nil {
		writeError(w, http.StatusBadRequest, "decode model: "+err.Error())
		return
	}
	// Score a probe row before the swap becomes visible: a model that
	// decodes but cannot produce finite scores must never replace a
	// serving version.
	if err := probeModel(model); err != nil {
		writeError(w, http.StatusBadRequest, "model failed probe scoring: "+err.Error())
		return
	}
	st, prior, err := s.reg.Swap(name, req.Path, model)
	if err != nil {
		writeError(w, http.StatusInternalServerError, err.Error())
		return
	}
	if prior != nil {
		s.opts.Logger.Printf("serve: hot-swapped model %q v%d -> v%d (%d trees from %s; in-flight requests finish on v%d)",
			name, prior.Version, st.Version, st.NumTrees, st.Source, prior.Version)
	} else {
		s.opts.Logger.Printf("serve: loaded model %q v%d (%d trees from %s)", name, st.Version, st.NumTrees, st.Source)
	}
	writeJSON(w, http.StatusOK, st)
}

// probeModel scores one empty sparse row (every feature missing — a row
// any model must route via its default directions) through the model's
// compiled engine and rejects panics and non-finite outputs. It is the
// last line of defense behind DecodeForest's structural validation: a
// model can be structurally sound yet carry weights that overflow to
// Inf/NaN the moment they are summed.
func probeModel(m *gbdt.Model) (err error) {
	defer func() {
		if r := recover(); r != nil {
			err = fmt.Errorf("panic scoring probe row: %v", r)
		}
	}()
	margins := m.PredictRow(nil, nil)
	if len(margins) == 0 {
		return fmt.Errorf("no scores for probe row")
	}
	for k, v := range margins {
		if math.IsNaN(v) || math.IsInf(v, 0) {
			return fmt.Errorf("non-finite score %v for class %d", v, k)
		}
	}
	return nil
}

func (s *Server) handleAdminDelete(w http.ResponseWriter, r *http.Request) {
	if !s.opts.EnableAdmin {
		writeError(w, http.StatusForbidden, "admin endpoints disabled (start with admin enabled)")
		return
	}
	name := r.PathValue("name")
	if name == s.defaultName {
		writeError(w, http.StatusConflict, "cannot delete the default model")
		return
	}
	if err := s.reg.Delete(name); err != nil {
		writeError(w, http.StatusNotFound, err.Error())
		return
	}
	s.opts.Logger.Printf("serve: deleted model %q (in-flight requests finish on their version)", name)
	writeJSON(w, http.StatusOK, map[string]string{"deleted": name})
}

// normalizeSparse validates one sparse row and returns it sorted by
// feature id, as the prediction engine requires.
func normalizeSparse(row SparseRow) ([]uint32, []float32, error) {
	if len(row.Indices) != len(row.Values) {
		return nil, nil, fmt.Errorf("%d indices but %d values", len(row.Indices), len(row.Values))
	}
	feat := append([]uint32(nil), row.Indices...)
	val := append([]float32(nil), row.Values...)
	if !sort.SliceIsSorted(feat, func(i, j int) bool { return feat[i] < feat[j] }) {
		order := make([]int, len(feat))
		for i := range order {
			order[i] = i
		}
		sort.Slice(order, func(i, j int) bool { return feat[order[i]] < feat[order[j]] })
		sf := make([]uint32, len(feat))
		sv := make([]float32, len(val))
		for i, o := range order {
			sf[i] = feat[o]
			sv[i] = val[o]
		}
		feat, val = sf, sv
	}
	for i := 1; i < len(feat); i++ {
		if feat[i] == feat[i-1] {
			return nil, nil, fmt.Errorf("duplicate feature index %d", feat[i])
		}
	}
	return feat, val, nil
}

// sparsify converts a dense row to sorted sparse form, dropping zeros
// (the storage convention of the training data).
func sparsify(dense []float32) ([]uint32, []float32) {
	var feat []uint32
	var val []float32
	for j, v := range dense {
		if v != 0 {
			feat = append(feat, uint32(j))
			val = append(val, v)
		}
	}
	return feat, val
}

// reshape splits a flat stride-k score vector into per-row slices.
func reshape(flat []float64, k int) [][]float64 {
	rows := make([][]float64, len(flat)/k)
	for i := range rows {
		rows[i] = flat[i*k : (i+1)*k]
	}
	return rows
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	_ = json.NewEncoder(w).Encode(v)
}
