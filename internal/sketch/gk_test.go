package sketch

import (
	"math"
	"math/rand"
	"sort"
	"testing"
)

// exactRank returns the fraction of values in sorted xs that are <= v.
func exactRank(xs []float64, v float64) float64 {
	i := sort.SearchFloat64s(xs, math.Nextafter(v, math.Inf(1)))
	return float64(i) / float64(len(xs))
}

func checkQuantiles(t *testing.T, s *GK, xs []float64, slack float64) {
	t.Helper()
	sorted := append([]float64(nil), xs...)
	sort.Float64s(sorted)
	bound := s.ErrorBound()*slack + 1e-9
	for _, phi := range []float64{0.01, 0.1, 0.25, 0.5, 0.75, 0.9, 0.99} {
		got := s.Query(phi)
		r := exactRank(sorted, got)
		// got must have rank within bound of phi. Use the rank of the
		// value interval [rank(got-), rank(got)] to handle duplicates.
		lo := float64(sort.SearchFloat64s(sorted, got)) / float64(len(sorted))
		if phi < lo-bound || phi > r+bound {
			t.Errorf("phi=%v: Query=%v has rank [%v,%v], outside +/-%v", phi, got, lo, r, bound)
		}
	}
}

func TestEmptySketch(t *testing.T) {
	s := New(0.01)
	if s.Count() != 0 {
		t.Fatalf("Count = %d, want 0", s.Count())
	}
	if !math.IsNaN(s.Query(0.5)) {
		t.Fatal("Query on empty sketch did not return NaN")
	}
	if s.CandidateSplits(10) != nil {
		t.Fatal("CandidateSplits on empty sketch not nil")
	}
}

func TestNewPanicsOnBadEps(t *testing.T) {
	for _, eps := range []float64{0, -0.1, 1, 2} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("New(%v) did not panic", eps)
				}
			}()
			New(eps)
		}()
	}
}

func TestSingleValue(t *testing.T) {
	s := New(0.1)
	s.Add(7.5)
	for _, phi := range []float64{0, 0.5, 1} {
		if got := s.Query(phi); got != 7.5 {
			t.Fatalf("Query(%v) = %v, want 7.5", phi, got)
		}
	}
}

func TestNaNIgnored(t *testing.T) {
	s := New(0.1)
	s.Add(math.NaN())
	s.Add(1)
	if s.Count() != 1 {
		t.Fatalf("Count = %d, want 1 (NaN ignored)", s.Count())
	}
}

func TestUniformStream(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	s := New(0.01)
	xs := make([]float64, 20000)
	for i := range xs {
		xs[i] = rng.Float64()
		s.Add(xs[i])
	}
	checkQuantiles(t, s, xs, 2)
}

func TestSortedAndReversedStreams(t *testing.T) {
	for name, gen := range map[string]func(i int) float64{
		"ascending":  func(i int) float64 { return float64(i) },
		"descending": func(i int) float64 { return float64(-i) },
	} {
		t.Run(name, func(t *testing.T) {
			s := New(0.02)
			xs := make([]float64, 10000)
			for i := range xs {
				xs[i] = gen(i)
				s.Add(xs[i])
			}
			checkQuantiles(t, s, xs, 2)
		})
	}
}

func TestHeavyDuplicates(t *testing.T) {
	// Sparse features have long runs of identical values; the sketch must
	// stay correct and candidate splits must deduplicate.
	rng := rand.New(rand.NewSource(2))
	s := New(0.01)
	xs := make([]float64, 10000)
	for i := range xs {
		xs[i] = float64(rng.Intn(5))
		s.Add(xs[i])
	}
	checkQuantiles(t, s, xs, 2)
	splits := s.CandidateSplits(20)
	if len(splits) > 5 {
		t.Fatalf("got %d candidate splits from 5 distinct values", len(splits))
	}
	for k := 1; k < len(splits); k++ {
		if splits[k-1] >= splits[k] {
			t.Fatalf("splits not strictly increasing: %v", splits)
		}
	}
}

func TestSpaceBound(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	s := New(0.01)
	for i := 0; i < 200000; i++ {
		s.Add(rng.NormFloat64())
	}
	// GK keeps O((1/eps) log(eps n)) tuples; allow a generous constant.
	limit := int(11.0 / 0.01 * math.Log2(0.01*200000))
	if got := s.NumTuples(); got > limit {
		t.Fatalf("summary has %d tuples, budget %d", got, limit)
	}
}

func TestMergeTwoSketches(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	a, b := New(0.01), New(0.01)
	var xs []float64
	for i := 0; i < 10000; i++ {
		v := rng.NormFloat64()
		xs = append(xs, v)
		a.Add(v)
	}
	for i := 0; i < 15000; i++ {
		v := rng.NormFloat64()*2 + 1
		xs = append(xs, v)
		b.Add(v)
	}
	a.Merge(b)
	if a.Count() != int64(len(xs)) {
		t.Fatalf("merged Count = %d, want %d", a.Count(), len(xs))
	}
	if a.ErrorBound() <= a.Eps() {
		t.Fatal("merge did not widen the error bound")
	}
	checkQuantiles(t, a, xs, 2)
}

func TestMergeManyWorkerSketches(t *testing.T) {
	// Simulates step 1 of the horizontal-to-vertical transformation:
	// 8 worker-local sketches of the same feature merged into one.
	rng := rand.New(rand.NewSource(5))
	const workers = 8
	global := New(0.005)
	var xs []float64
	for w := 0; w < workers; w++ {
		local := New(0.005)
		for i := 0; i < 4000; i++ {
			v := rng.ExpFloat64() * float64(w+1)
			xs = append(xs, v)
			local.Add(v)
		}
		global.Merge(local)
	}
	checkQuantiles(t, global, xs, 2)
}

func TestMergeIntoEmpty(t *testing.T) {
	a, b := New(0.01), New(0.01)
	for i := 0; i < 100; i++ {
		b.Add(float64(i))
	}
	a.Merge(b)
	if a.Count() != 100 {
		t.Fatalf("Count = %d, want 100", a.Count())
	}
	if got := a.Query(0.5); got < 40 || got > 60 {
		t.Fatalf("median after merge-into-empty = %v", got)
	}
	// And merging an empty sketch is a no-op.
	before := a.Count()
	a.Merge(New(0.01))
	if a.Count() != before {
		t.Fatal("merging empty sketch changed count")
	}
}

func TestCandidateSplitsCoverDistribution(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	s := New(0.005)
	for i := 0; i < 50000; i++ {
		s.Add(rng.Float64() * 100)
	}
	splits := s.CandidateSplits(20)
	if len(splits) != 20 {
		t.Fatalf("got %d splits, want 20", len(splits))
	}
	// Splits of a uniform[0,100] stream should be near 5,10,...,100.
	for i, sp := range splits {
		want := float32(5 * (i + 1))
		if math.Abs(float64(sp-want)) > 3 {
			t.Errorf("split %d = %v, want ~%v", i, sp, want)
		}
	}
}

func TestQuantilesMonotone(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	s := New(0.01)
	for i := 0; i < 30000; i++ {
		s.Add(rng.NormFloat64())
	}
	qs := s.Quantiles(50)
	for i := 1; i < len(qs); i++ {
		if qs[i] < qs[i-1] {
			t.Fatalf("quantiles not monotone at %d: %v > %v", i, qs[i-1], qs[i])
		}
	}
}

func BenchmarkAdd(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	s := New(0.01)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		s.Add(rng.Float64())
	}
}
