// Command doclint checks godoc completeness for the packages named on the
// command line (as directories): every package must have a package
// comment (staticcheck ST1000 class) and every exported top-level
// identifier — functions, methods on exported types, types, and
// const/var specs — must carry a doc comment (ST1020/ST1021/ST1022
// class). Test files are ignored.
//
// Usage:
//
//	go run ./scripts/doclint ./gbdt ./internal/ingest ./internal/sketch ./internal/datasets
//
// It exits nonzero and lists each undocumented identifier with its
// position, so CI keeps the godoc surface complete.
package main

import (
	"fmt"
	"go/ast"
	"go/parser"
	"go/token"
	"os"
	"strings"
)

func main() {
	if len(os.Args) < 2 {
		fmt.Fprintln(os.Stderr, "usage: doclint <package-dir>...")
		os.Exit(2)
	}
	bad := 0
	for _, dir := range os.Args[1:] {
		bad += lintDir(dir)
	}
	if bad > 0 {
		fmt.Fprintf(os.Stderr, "doclint: %d missing doc comments\n", bad)
		os.Exit(1)
	}
}

// lintDir parses one package directory and reports undocumented exported
// declarations, returning the count.
func lintDir(dir string) int {
	fset := token.NewFileSet()
	pkgs, err := parser.ParseDir(fset, dir, func(fi os.FileInfo) bool {
		return !strings.HasSuffix(fi.Name(), "_test.go")
	}, parser.ParseComments)
	if err != nil {
		fmt.Fprintf(os.Stderr, "doclint: %s: %v\n", dir, err)
		return 1
	}
	bad := 0
	for name, pkg := range pkgs {
		if strings.HasSuffix(name, "_test") {
			continue
		}
		hasPkgDoc := false
		for _, f := range pkg.Files {
			if f.Doc != nil && strings.TrimSpace(f.Doc.Text()) != "" {
				hasPkgDoc = true
			}
		}
		if !hasPkgDoc && name != "main" {
			fmt.Printf("%s: package %s has no package comment (ST1000)\n", dir, name)
			bad++
		}
		for _, f := range pkg.Files {
			for _, decl := range f.Decls {
				bad += lintDecl(fset, decl)
			}
		}
	}
	return bad
}

// lintDecl reports undocumented exported identifiers in one top-level
// declaration.
func lintDecl(fset *token.FileSet, decl ast.Decl) int {
	switch d := decl.(type) {
	case *ast.FuncDecl:
		if !d.Name.IsExported() || !exportedReceiver(d) {
			return 0
		}
		if d.Doc == nil || strings.TrimSpace(d.Doc.Text()) == "" {
			fmt.Printf("%s: %s is undocumented (ST1020)\n", fset.Position(d.Pos()), d.Name.Name)
			return 1
		}
	case *ast.GenDecl:
		// A group doc comment covers every spec in the group.
		if d.Doc != nil && strings.TrimSpace(d.Doc.Text()) != "" {
			return 0
		}
		bad := 0
		for _, spec := range d.Specs {
			switch s := spec.(type) {
			case *ast.TypeSpec:
				if s.Name.IsExported() && (s.Doc == nil || strings.TrimSpace(s.Doc.Text()) == "") {
					fmt.Printf("%s: type %s is undocumented (ST1021)\n", fset.Position(s.Pos()), s.Name.Name)
					bad++
				}
			case *ast.ValueSpec:
				if s.Doc != nil && strings.TrimSpace(s.Doc.Text()) != "" {
					continue
				}
				for _, n := range s.Names {
					if n.IsExported() {
						fmt.Printf("%s: %s %s is undocumented (ST1022)\n", fset.Position(s.Pos()), d.Tok, n.Name)
						bad++
						break
					}
				}
			}
		}
		return bad
	}
	return 0
}

// exportedReceiver reports whether the function is a plain function or a
// method whose receiver type is exported; methods on unexported types are
// not part of the godoc surface.
func exportedReceiver(d *ast.FuncDecl) bool {
	if d.Recv == nil || len(d.Recv.List) == 0 {
		return true
	}
	t := d.Recv.List[0].Type
	for {
		switch tt := t.(type) {
		case *ast.StarExpr:
			t = tt.X
		case *ast.IndexExpr:
			t = tt.X
		case *ast.Ident:
			return tt.IsExported()
		default:
			return true
		}
	}
}
