package loss

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestByName(t *testing.T) {
	for _, name := range []string{"square", "logistic"} {
		obj, err := ByName(name, 0)
		if err != nil {
			t.Fatalf("ByName(%q): %v", name, err)
		}
		if obj.Name() != name {
			t.Fatalf("Name() = %q, want %q", obj.Name(), name)
		}
		if obj.NumClass() != 1 {
			t.Fatalf("%s NumClass = %d, want 1", name, obj.NumClass())
		}
	}
	obj, err := ByName("softmax", 5)
	if err != nil {
		t.Fatal(err)
	}
	if obj.NumClass() != 5 {
		t.Fatalf("softmax NumClass = %d, want 5", obj.NumClass())
	}
	if _, err := ByName("softmax", 1); err == nil {
		t.Fatal("softmax with 1 class accepted")
	}
	if _, err := ByName("hinge", 0); err == nil {
		t.Fatal("unknown objective accepted")
	}
}

func TestSquareGradHess(t *testing.T) {
	var g, h [1]float64
	(Square{}).GradHess([]float64{3}, 1, g[:], h[:])
	if g[0] != 2 || h[0] != 1 {
		t.Fatalf("g,h = %v,%v want 2,1", g[0], h[0])
	}
}

func TestSquareInitScore(t *testing.T) {
	s := (Square{}).InitScore([]float32{1, 2, 3, 4})
	if s[0] != 2.5 {
		t.Fatalf("InitScore = %v, want 2.5", s[0])
	}
	if (Square{}).InitScore(nil)[0] != 0 {
		t.Fatal("InitScore(nil) != 0")
	}
}

func TestLogisticGradHess(t *testing.T) {
	var g, h [1]float64
	(Logistic{}).GradHess([]float64{0}, 1, g[:], h[:])
	if math.Abs(g[0]+0.5) > 1e-12 {
		t.Fatalf("g = %v, want -0.5", g[0])
	}
	if math.Abs(h[0]-0.25) > 1e-12 {
		t.Fatalf("h = %v, want 0.25", h[0])
	}
	// Extreme margin: hessian clamped away from zero.
	(Logistic{}).GradHess([]float64{100}, 0, g[:], h[:])
	if h[0] <= 0 {
		t.Fatalf("h = %v, want > 0", h[0])
	}
}

// TestLogisticGradMatchesFiniteDifference checks g = dl/dpred numerically.
func TestLogisticGradMatchesFiniteDifference(t *testing.T) {
	l := func(pred float64, y float64) float64 {
		p := Sigmoid(pred)
		return -(y*math.Log(p) + (1-y)*math.Log(1-p))
	}
	var g, h [1]float64
	for _, pred := range []float64{-2, -0.5, 0, 0.7, 3} {
		for _, y := range []float32{0, 1} {
			(Logistic{}).GradHess([]float64{pred}, y, g[:], h[:])
			const eps = 1e-6
			want := (l(pred+eps, float64(y)) - l(pred-eps, float64(y))) / (2 * eps)
			if math.Abs(g[0]-want) > 1e-5 {
				t.Fatalf("pred=%v y=%v: g=%v, finite diff %v", pred, y, g[0], want)
			}
		}
	}
}

func TestSoftmaxGradients(t *testing.T) {
	s := Softmax{C: 3}
	g := make([]float64, 3)
	h := make([]float64, 3)
	s.GradHess([]float64{0, 0, 0}, 1, g, h)
	third := 1.0 / 3.0
	if math.Abs(g[0]-third) > 1e-12 || math.Abs(g[1]-(third-1)) > 1e-12 || math.Abs(g[2]-third) > 1e-12 {
		t.Fatalf("g = %v", g)
	}
	for k, hv := range h {
		want := 2 * third * (1 - third)
		if math.Abs(hv-want) > 1e-12 {
			t.Fatalf("h[%d] = %v, want %v", k, hv, want)
		}
	}
}

func TestSoftmaxGradSumZero(t *testing.T) {
	// Property: softmax gradients over classes sum to zero.
	s := Softmax{C: 4}
	f := func(a, b, c, d float64, yRaw uint8) bool {
		pred := []float64{clamp(a), clamp(b), clamp(c), clamp(d)}
		g := make([]float64, 4)
		h := make([]float64, 4)
		s.GradHess(pred, float32(int(yRaw)%4), g, h)
		var sum float64
		for _, v := range g {
			sum += v
		}
		for _, v := range h {
			if v <= 0 {
				return false
			}
		}
		return math.Abs(sum) < 1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func clamp(x float64) float64 {
	if math.IsNaN(x) || math.IsInf(x, 0) {
		return 0
	}
	return math.Mod(x, 30)
}

func TestSigmoid(t *testing.T) {
	if s := Sigmoid(0); s != 0.5 {
		t.Fatalf("Sigmoid(0) = %v", s)
	}
	if s := Sigmoid(1000); s != 1 {
		t.Fatalf("Sigmoid(1000) = %v", s)
	}
	if s := Sigmoid(-1000); s != 0 {
		t.Fatalf("Sigmoid(-1000) = %v", s)
	}
	// Symmetry: sigmoid(-x) = 1 - sigmoid(x).
	for _, x := range []float64{0.1, 1, 5, 20} {
		if d := Sigmoid(-x) + Sigmoid(x) - 1; math.Abs(d) > 1e-12 {
			t.Fatalf("symmetry broken at %v: %v", x, d)
		}
	}
}

func TestRMSE(t *testing.T) {
	got := RMSE([]float64{1, 2, 3}, []float32{1, 2, 5})
	want := math.Sqrt(4.0 / 3.0)
	if math.Abs(got-want) > 1e-12 {
		t.Fatalf("RMSE = %v, want %v", got, want)
	}
	if RMSE(nil, nil) != 0 {
		t.Fatal("RMSE(nil) != 0")
	}
}

func TestAUCPerfectAndRandom(t *testing.T) {
	score := []float64{0.9, 0.8, 0.2, 0.1}
	labels := []float32{1, 1, 0, 0}
	if got := AUC(score, labels); got != 1 {
		t.Fatalf("perfect AUC = %v, want 1", got)
	}
	// Reversed scores: AUC 0.
	if got := AUC([]float64{0.1, 0.2, 0.8, 0.9}, labels); got != 0 {
		t.Fatalf("inverted AUC = %v, want 0", got)
	}
}

func TestAUCTies(t *testing.T) {
	// All scores equal: AUC must be exactly 0.5 via average ranks.
	score := []float64{1, 1, 1, 1}
	labels := []float32{1, 0, 1, 0}
	if got := AUC(score, labels); got != 0.5 {
		t.Fatalf("tied AUC = %v, want 0.5", got)
	}
}

func TestAUCDegenerate(t *testing.T) {
	if !math.IsNaN(AUC([]float64{1, 2}, []float32{1, 1})) {
		t.Fatal("AUC with one class should be NaN")
	}
}

func TestAUCMatchesBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	n := 200
	score := make([]float64, n)
	labels := make([]float32, n)
	for i := range score {
		score[i] = float64(rng.Intn(20)) // force ties
		labels[i] = float32(rng.Intn(2))
	}
	var wins, total float64
	for i := 0; i < n; i++ {
		if labels[i] < 0.5 {
			continue
		}
		for j := 0; j < n; j++ {
			if labels[j] >= 0.5 {
				continue
			}
			total++
			switch {
			case score[i] > score[j]:
				wins++
			case score[i] == score[j]:
				wins += 0.5
			}
		}
	}
	want := wins / total
	if got := AUC(score, labels); math.Abs(got-want) > 1e-12 {
		t.Fatalf("AUC = %v, brute force %v", got, want)
	}
}

func TestBinaryAccuracy(t *testing.T) {
	got := BinaryAccuracy([]float64{1, -1, 2, -2}, []float32{1, 0, 0, 1})
	if got != 0.5 {
		t.Fatalf("accuracy = %v, want 0.5", got)
	}
}

func TestMultiAccuracy(t *testing.T) {
	score := []float64{
		1, 2, 0, // argmax 1
		3, 1, 0, // argmax 0
	}
	got := MultiAccuracy(score, []float32{1, 2}, 3)
	if got != 0.5 {
		t.Fatalf("multi accuracy = %v, want 0.5", got)
	}
}

func TestLogLossBounds(t *testing.T) {
	// Confident correct predictions drive loss to ~0; wrong ones blow up.
	low := LogLoss([]float64{10, -10}, []float32{1, 0})
	high := LogLoss([]float64{-10, 10}, []float32{1, 0})
	if low > 0.01 {
		t.Fatalf("confident-correct logloss = %v", low)
	}
	if high < 5 {
		t.Fatalf("confident-wrong logloss = %v", high)
	}
}

func TestMultiLogLossUniform(t *testing.T) {
	// Uniform scores: loss = log(C).
	got := MultiLogLoss(make([]float64, 3*4), []float32{0, 1, 2}, 4)
	if math.Abs(got-math.Log(4)) > 1e-12 {
		t.Fatalf("uniform multi logloss = %v, want log 4", got)
	}
}
