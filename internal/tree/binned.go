// Binned inference: descent over bin codes instead of float thresholds.
//
// Histogram-based training never compares raw float values: it quantizes
// every feature into at most q bins and routes on bin indices. The trained
// model records both views of each split — the float threshold
// (Node.SplitValue) and the bin index it came from (Node.SplitBin) — and,
// since PR 6, the per-feature candidate split arrays themselves
// (Forest.Splits). BinnedForest exploits that: incoming rows are quantized
// once per feature (a binary search over at most q splits), and the
// per-node comparison becomes a uint8/uint16 compare against a
// precomputed bin threshold. The node image shrinks (1-2 bytes of
// threshold per node instead of 4) and the block image shrinks 4x/2x,
// so more of the descent working set stays cache-resident.
//
// Routing is bit-identical to the float walk for every input value. With
// s = Splits[f] ascending and t = s[b] the node's threshold, quantize v to
// code(v) = the first index i with s[i] >= v (len(s) when v exceeds every
// split — deliberately one past the last bin, never clamped). Then
//
//	code(v) <= b  <=>  exists i <= b with s[i] >= v  <=>  s[b] >= v  <=>  v <= t
//
// so the binned predicate equals the float predicate exactly, including
// for out-of-range and boundary values. Missing features follow
// DefaultLeft in both engines. CompileBinned verifies the metadata
// (thresholds must equal their split values) and refuses models where the
// equivalence cannot be guaranteed.
package tree

import (
	"fmt"
	"sync"

	"vero/internal/sparse"
)

// binCode is the constraint shared by the two bin-code widths: uint8 when
// every routed feature has fewer than 256 candidate splits, uint16
// otherwise.
type binCode interface {
	~uint8 | ~uint16
}

// BinnedForest is a bin-code inference engine compiled from a FlatForest
// and the model's candidate split arrays. It is immutable and safe for
// concurrent use, and produces bit-identical margins to the float engine.
type BinnedForest struct {
	ff *FlatForest
	// Exactly one of e8/e16 is non-nil, chosen by the widest per-feature
	// split count.
	e8  *binnedEngine[uint8]
	e16 *binnedEngine[uint16]
}

// binnedEngine holds the width-specialized node image and scratch pools.
type binnedEngine[C binCode] struct {
	ff *FlatForest
	// thresh[i] is node i's SplitBin (0 on leaves): code <= thresh routes
	// left, mirroring value <= threshold.
	thresh []C
	// splits[g] holds the candidate splits of compact feature g, the
	// quantization table for incoming values.
	splits [][]float32

	rowScratch   sync.Pool // *binScratch[C]
	blockScratch sync.Pool // *binImage[C]
}

// binScratch is the single-row dense code image (numSplitFeat wide).
type binScratch[C binCode] struct {
	code    []C
	present []bool
	touched []int32
}

// binImage is the block-of-rows code image plus descent state, the binned
// counterpart of blockImage.
type binImage[C binCode] struct {
	code    []C
	present []bool
	touched []int32
	ids     []int32
}

// CompileBinned builds the bin-code engine for a compiled forest. splits
// is indexed by global feature id (Forest.Splits). It fails when any
// routed feature lacks splits, when a split array is not ascending, when
// a node's float threshold is not exactly its split array entry (the
// invariant bit-identical routing rests on), or when a feature has too
// many bins for a uint16 code.
func (ff *FlatForest) CompileBinned(splits [][]float32) (*BinnedForest, error) {
	if len(splits) == 0 {
		return nil, fmt.Errorf("tree: model carries no candidate splits")
	}
	compact := make([][]float32, ff.numSplitFeat)
	maxBins := 0
	for f, g := range ff.remap {
		if g < 0 {
			continue
		}
		if f >= len(splits) || len(splits[f]) == 0 {
			return nil, fmt.Errorf("tree: split feature %d has no candidate splits", f)
		}
		s := splits[f]
		for i := 1; i < len(s); i++ {
			if s[i] < s[i-1] {
				return nil, fmt.Errorf("tree: feature %d splits not ascending at %d", f, i)
			}
		}
		compact[g] = s
		if len(s) > maxBins {
			maxBins = len(s)
		}
	}
	// code(v) ranges over [0, len(s)] inclusive: the out-of-range code is
	// one past the last bin and must fit the code type too.
	if maxBins >= sparse.MaxBins {
		return nil, fmt.Errorf("tree: %d bins exceed the uint16 code range", maxBins)
	}
	for i, f := range ff.feature {
		if f < 0 {
			continue
		}
		s := splits[f]
		b := int(ff.splitBin[i])
		if b >= len(s) {
			return nil, fmt.Errorf("tree: node %d split bin %d out of range for feature %d (%d splits)", i, b, f, len(s))
		}
		if s[b] != ff.threshold[i] {
			return nil, fmt.Errorf("tree: node %d threshold %v != splits[%d][%d] = %v; bin metadata inconsistent",
				i, ff.threshold[i], f, b, s[b])
		}
	}
	bf := &BinnedForest{ff: ff}
	if maxBins < 1<<8 {
		bf.e8 = newBinnedEngine[uint8](ff, compact)
	} else {
		bf.e16 = newBinnedEngine[uint16](ff, compact)
	}
	return bf, nil
}

func newBinnedEngine[C binCode](ff *FlatForest, compact [][]float32) *binnedEngine[C] {
	e := &binnedEngine[C]{ff: ff, splits: compact}
	e.thresh = make([]C, len(ff.splitBin))
	for i, b := range ff.splitBin {
		e.thresh[i] = C(b)
	}
	e.rowScratch.New = func() any {
		return &binScratch[C]{
			code:    make([]C, ff.numSplitFeat),
			present: make([]bool, ff.numSplitFeat),
			touched: make([]int32, 0, 64),
		}
	}
	e.blockScratch.New = func() any { return &binImage[C]{} }
	return e
}

// CodeBits reports the bin-code width in bits (8 or 16).
func (bf *BinnedForest) CodeBits() int {
	if bf.e8 != nil {
		return 8
	}
	return 16
}

// NumClass returns the per-row output dimensionality.
func (bf *BinnedForest) NumClass() int { return bf.ff.numClass }

// binValue quantizes one raw value of compact feature g: the first split
// index >= v, or len(splits) when v exceeds every split. Unlike
// sparse.Binner.BinValue it never clamps — the out-of-range code must
// compare greater than every stored SplitBin for bit-identical routing.
func (e *binnedEngine[C]) binValue(g int32, v float32) C {
	s := e.splits[g]
	lo, hi := 0, len(s)
	for lo < hi {
		mid := int(uint(lo+hi) >> 1)
		if s[mid] < v {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return C(lo)
}

// scatter quantizes a sparse row into the dense code image. Features no
// split routes on are skipped.
func (e *binnedEngine[C]) scatter(s *binScratch[C], feat []uint32, val []float32) {
	remap := e.ff.remap
	for j, f := range feat {
		if int(f) >= len(remap) {
			continue
		}
		g := remap[f]
		if g < 0 {
			continue
		}
		s.code[g] = e.binValue(g, val[j])
		s.present[g] = true
		s.touched = append(s.touched, g)
	}
}

func (s *binScratch[C]) clear() {
	for _, g := range s.touched {
		s.present[g] = false
	}
	s.touched = s.touched[:0]
}

// predictRowInto walks every tree comparing bin codes, accumulating the
// pre-scaled leaf weights (identical order and predicate to the float
// walk).
func (e *binnedEngine[C]) predictRowInto(feat []uint32, val []float32, out []float64) {
	ff := e.ff
	copy(out, ff.initScore)
	s := e.rowScratch.Get().(*binScratch[C])
	e.scatter(s, feat, val)
	for _, root := range ff.roots {
		id := root
		for {
			if ff.feature[id] < 0 {
				w := ff.weights[ff.left[id] : ff.left[id]+int32(ff.numClass)]
				for k := range w {
					out[k] += w[k]
				}
				break
			}
			g := ff.blockFeat[id]
			if s.present[g] {
				if s.code[g] <= e.thresh[id] {
					id = ff.left[id]
				} else {
					id = ff.right[id]
				}
			} else if ff.defaultLeft[id] {
				id = ff.left[id]
			} else {
				id = ff.right[id]
			}
		}
	}
	s.clear()
	e.rowScratch.Put(s)
}

// PredictRowInto computes the raw scores (margins) of one sparse row into
// out, which must have length NumClass.
func (bf *BinnedForest) PredictRowInto(feat []uint32, val []float32, out []float64) {
	if bf.e8 != nil {
		bf.e8.predictRowInto(feat, val, out)
	} else {
		bf.e16.predictRowInto(feat, val, out)
	}
}

// PredictRow returns the raw scores (margins) of one sparse row.
func (bf *BinnedForest) PredictRow(feat []uint32, val []float32) []float64 {
	out := make([]float64, bf.ff.numClass)
	bf.PredictRowInto(feat, val, out)
	return out
}

// PredictBlock scores a batch of independent sparse rows into out
// (row-major, stride NumClass) on the calling goroutine through the binned
// blocked kernel, block rows at a time (<=0 means DefaultBlockRows).
// Margins are bit-identical to the float engine on every row.
func (bf *BinnedForest) PredictBlock(feats [][]uint32, vals [][]float32, out []float64, block int) {
	if bf.e8 != nil {
		bf.e8.predictBlockRange(sliceRows{feats, vals}, 0, len(feats), out, block)
	} else {
		bf.e16.predictBlockRange(sliceRows{feats, vals}, 0, len(feats), out, block)
	}
}

// PredictCSRBlocked returns raw scores for every row of m, row-major with
// stride NumClass, computed by `workers` goroutines over instance blocks
// of `block` rows through the binned kernel.
func (bf *BinnedForest) PredictCSRBlocked(m *sparse.CSR, workers, block int) []float64 {
	rows := m.Rows()
	out := make([]float64, rows*bf.ff.numClass)
	if rows == 0 {
		return out
	}
	block = bf.ff.blockSize(block)
	chunk := ((batchRows + block - 1) / block) * block
	fn := func(lo, hi int) {
		if bf.e8 != nil {
			bf.e8.predictBlockRange(m, lo, hi, out, block)
		} else {
			bf.e16.predictBlockRange(m, lo, hi, out, block)
		}
	}
	parallelRowRanges(rows, chunk, workers, fn)
	return out
}

// ensure sizes the image for cells entries and rows ids, keeping capacity
// across uses.
func (s *binImage[C]) ensure(cells, rows int) {
	if cap(s.code) < cells {
		s.code = make([]C, cells)
		s.present = make([]bool, cells)
	}
	s.code = s.code[:cells]
	s.present = s.present[:cells]
	if cap(s.ids) < rows {
		s.ids = make([]int32, rows)
	}
	s.ids = s.ids[:rows]
}

func (s *binImage[C]) clear() {
	for _, p := range s.touched {
		s.present[p] = false
	}
	s.touched = s.touched[:0]
}

// predictBlockRange scores rows [lo, hi) into out with one code image,
// block rows at a time — the binned mirror of the float
// predictBlockRange, falling back to the per-row binned walk for tiny
// batches.
func (e *binnedEngine[C]) predictBlockRange(rows rowSource, lo, hi int, out []float64, block int) {
	ff := e.ff
	if hi-lo < blockedMinRows {
		k := ff.numClass
		for i := lo; i < hi; i++ {
			feat, val := rows.Row(i)
			e.predictRowInto(feat, val, out[i*k:(i+1)*k])
		}
		return
	}
	block = ff.blockSize(block)
	s := e.blockScratch.Get().(*binImage[C])
	s.ensure(block*ff.numSplitFeat, block)
	f := ff.numSplitFeat
	remap := ff.remap
	for b0 := lo; b0 < hi; b0 += block {
		b1 := b0 + block
		if b1 > hi {
			b1 = hi
		}
		for i := b0; i < b1; i++ {
			base := int32((i - b0) * f)
			feat, val := rows.Row(i)
			for j, ft := range feat {
				if int(ft) >= len(remap) {
					continue
				}
				g := remap[ft]
				if g < 0 {
					continue
				}
				s.code[base+g] = e.binValue(g, val[j])
				s.present[base+g] = true
				s.touched = append(s.touched, base+g)
			}
			copy(out[i*ff.numClass:(i+1)*ff.numClass], ff.initScore)
		}
		if ff.numClass == 1 {
			e.walkBlockScalar(s, out[b0:b1])
		} else {
			e.walkBlockVec(s, out[b0*ff.numClass:b1*ff.numClass], b1-b0)
		}
		s.clear()
	}
	e.blockScratch.Put(s)
}

// descendBlock advances every row of the block through one tree in
// lock-step levels, exactly like the float kernel but with an integer
// compare: present ? code<=thresh : defaultLeft, leaves self-looping via
// nav.
func (e *binnedEngine[C]) descendBlock(s *binImage[C], rows int, root, steps int32) {
	ff := e.ff
	blockFeat, defaultLeft, nav := ff.blockFeat, ff.defaultLeft, ff.nav
	thresh := e.thresh
	code, present := s.code, s.present
	f := ff.numSplitFeat
	ids := s.ids[:rows]
	for r := range ids {
		ids[r] = root
	}
	for d := int32(0); d < steps; d++ {
		base := 0
		for r := range ids {
			id := int(ids[r])
			p := base + int(blockFeat[id])
			l, rt := nav[2*id], nav[2*id+1]
			routed := rt
			if code[p] <= thresh[id] {
				routed = l
			}
			next := rt
			if defaultLeft[id] {
				next = l
			}
			if present[p] {
				next = routed
			}
			ids[r] = next
			base += f
		}
	}
}

// walkBlockScalar is the numClass==1 fast path over the binned descent.
func (e *binnedEngine[C]) walkBlockScalar(s *binImage[C], out []float64) {
	ff := e.ff
	left, weights := ff.left, ff.weights
	for t, root := range ff.roots {
		e.descendBlock(s, len(out), root, ff.treeSteps[t])
		for r := range out {
			out[r] += weights[left[s.ids[r]]]
		}
	}
}

// walkBlockVec is the multiclass path: identical descent, vector
// accumulation per leaf.
func (e *binnedEngine[C]) walkBlockVec(s *binImage[C], out []float64, rows int) {
	ff := e.ff
	left, weights := ff.left, ff.weights
	k := ff.numClass
	for t, root := range ff.roots {
		e.descendBlock(s, rows, root, ff.treeSteps[t])
		for r := 0; r < rows; r++ {
			w := weights[left[s.ids[r]] : left[s.ids[r]]+int32(k)]
			orow := out[r*k : r*k+k]
			for c := range w {
				orow[c] += w[c]
			}
		}
	}
}
