package partition

import (
	"math/rand"
	"testing"
)

// FuzzShardBounds fuzzes the two shard-bound derivations every rank of a
// deployment runs independently: whatever (n, w, feature histogram)
// arrive, HorizontalRanges must tile [0, n) contiguously with no gap or
// overlap, and GroupColumnsBalanced must place every feature in exactly
// one group and do so deterministically — the properties the sharded
// loader's "every rank carves the same image identically" contract
// reduces to.
func FuzzShardBounds(f *testing.F) {
	f.Add(uint16(10), uint8(3), int64(1))
	f.Add(uint16(0), uint8(1), int64(2))   // empty image
	f.Add(uint16(3), uint8(16), int64(3))  // more workers than rows
	f.Add(uint16(1), uint8(8), int64(4))   // single row, single feature
	f.Add(uint16(999), uint8(7), int64(5)) // ragged division
	f.Fuzz(func(t *testing.T, nRaw uint16, wRaw uint8, seed int64) {
		n := int(nRaw % 2048)
		w := int(wRaw%32) + 1

		ranges := HorizontalRanges(n, w)
		if len(ranges) != w {
			t.Fatalf("n=%d w=%d: %d ranges", n, w, len(ranges))
		}
		next := 0
		for r, rg := range ranges {
			if rg[0] != next || rg[1] < rg[0] {
				t.Fatalf("n=%d w=%d: range %d = %v breaks contiguity at %d", n, w, r, rg, next)
			}
			next = rg[1]
		}
		if next != n {
			t.Fatalf("n=%d w=%d: ranges end at %d", n, w, next)
		}

		// Feature histogram with a mix of zero, small and heavy counts —
		// the shapes that stress the greedy balancer's tie-breaking.
		d := n%64 + 1
		rng := rand.New(rand.NewSource(seed))
		counts := make([]int64, d)
		for i := range counts {
			switch rng.Intn(3) {
			case 0: // feature absent from the data
			case 1:
				counts[i] = int64(rng.Intn(10))
			default:
				counts[i] = int64(rng.Intn(100000))
			}
		}
		groups := GroupColumnsBalanced(counts, w)
		if len(groups) != w {
			t.Fatalf("d=%d w=%d: %d groups", d, w, len(groups))
		}
		seen := make([]bool, d)
		for _, g := range groups {
			for i := 1; i < len(g); i++ {
				if g[i] <= g[i-1] {
					t.Fatalf("group %v not strictly sorted", g)
				}
			}
			for _, feat := range g {
				if feat < 0 || feat >= d {
					t.Fatalf("feature %d outside [0,%d)", feat, d)
				}
				if seen[feat] {
					t.Fatalf("feature %d in two groups", feat)
				}
				seen[feat] = true
			}
		}
		for feat, ok := range seen {
			if !ok {
				t.Fatalf("feature %d in no group", feat)
			}
		}

		// Determinism: a second derivation from the same inputs must agree
		// bound for bound, or ranks desynchronize.
		again := GroupColumnsBalanced(counts, w)
		for g := range groups {
			if len(groups[g]) != len(again[g]) {
				t.Fatalf("group %d sized %d then %d", g, len(groups[g]), len(again[g]))
			}
			for i := range groups[g] {
				if groups[g][i] != again[g][i] {
					t.Fatalf("group %d position %d: %d then %d", g, i, groups[g][i], again[g][i])
				}
			}
		}
	})
}
