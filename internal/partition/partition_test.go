package partition

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestHorizontalRanges(t *testing.T) {
	r := HorizontalRanges(10, 3)
	if len(r) != 3 {
		t.Fatalf("got %d ranges", len(r))
	}
	if r[0] != [2]int{0, 4} || r[1] != [2]int{4, 7} || r[2] != [2]int{7, 10} {
		t.Fatalf("ranges = %v", r)
	}
}

func TestHorizontalRangesCoverAndDisjoint(t *testing.T) {
	f := func(nRaw, wRaw uint16) bool {
		n := int(nRaw % 1000)
		w := int(wRaw%16) + 1
		r := HorizontalRanges(n, w)
		next := 0
		for _, x := range r {
			if x[0] != next || x[1] < x[0] {
				return false
			}
			next = x[1]
		}
		// Sizes differ by at most 1.
		min, max := n, 0
		for _, x := range r {
			s := x[1] - x[0]
			if s < min {
				min = s
			}
			if s > max {
				max = s
			}
		}
		return next == n && max-min <= 1
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestGroupColumnsBalanced(t *testing.T) {
	counts := []int64{100, 1, 1, 1, 97, 1, 1, 1}
	groups := GroupColumnsBalanced(counts, 2)
	loads := GroupLoads(groups, counts)
	// Greedy LPT puts the two heavy features on different workers.
	if loads[0] < 90 && loads[1] < 90 {
		t.Fatalf("heavy features not separated: loads %v", loads)
	}
	diff := loads[0] - loads[1]
	if diff < 0 {
		diff = -diff
	}
	if diff > 10 {
		t.Fatalf("imbalance %d too high: %v", diff, loads)
	}
	// Every feature appears exactly once.
	seen := map[int]bool{}
	for _, g := range groups {
		for _, f := range g {
			if seen[f] {
				t.Fatalf("feature %d in two groups", f)
			}
			seen[f] = true
		}
	}
	if len(seen) != len(counts) {
		t.Fatalf("%d features grouped, want %d", len(seen), len(counts))
	}
}

func TestGroupColumnsBalancedRandom(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	counts := make([]int64, 500)
	var total int64
	for i := range counts {
		counts[i] = int64(rng.Intn(1000))
		total += counts[i]
	}
	const w = 8
	groups := GroupColumnsBalanced(counts, w)
	loads := GroupLoads(groups, counts)
	avg := total / w
	for g, l := range loads {
		if l > avg*13/10 {
			t.Fatalf("group %d load %d exceeds 1.3x average %d", g, l, avg)
		}
	}
}

func TestGroupColumnsDeterministic(t *testing.T) {
	counts := []int64{5, 5, 5, 5}
	a := GroupColumnsBalanced(counts, 2)
	b := GroupColumnsBalanced(counts, 2)
	for g := range a {
		if len(a[g]) != len(b[g]) {
			t.Fatal("nondeterministic grouping")
		}
		for i := range a[g] {
			if a[g][i] != b[g][i] {
				t.Fatal("nondeterministic grouping")
			}
		}
	}
}

func TestWidths(t *testing.T) {
	if FeatWidthBytes(200) != 1 || FeatWidthBytes(256) != 1 || FeatWidthBytes(257) != 2 ||
		FeatWidthBytes(70000) != 4 {
		t.Fatal("FeatWidthBytes wrong")
	}
	if BinWidthBytes(20) != 1 || BinWidthBytes(300) != 2 {
		t.Fatal("BinWidthBytes wrong")
	}
}
