package ingest

import (
	"math"
	"strings"
	"testing"
)

func readCSV(t *testing.T, text string, numClass, chunk int) (*Block, error) {
	t.Helper()
	var merged *Block
	err := ScanBlocks(strings.NewReader(text), Options{Format: FormatCSV, NumClass: numClass, ChunkRows: chunk}, func(b *Block) error {
		if merged == nil {
			merged = b
			return nil
		}
		base := int64(len(merged.Feat))
		merged.Feat = append(merged.Feat, b.Feat...)
		merged.Val = append(merged.Val, b.Val...)
		for i := 1; i < len(b.RowPtr); i++ {
			merged.RowPtr = append(merged.RowPtr, base+b.RowPtr[i])
		}
		merged.Labels = append(merged.Labels, b.Labels...)
		return nil
	})
	return merged, err
}

func TestCSVBasic(t *testing.T) {
	text := "label,f0,f1,f2\n1,0.5,,2\n0,,,\n1,-1,3.25,0\n"
	ds, err := ReadDataset(strings.NewReader(text), Options{Format: FormatCSV, NumClass: 2})
	if err != nil {
		t.Fatal(err)
	}
	if ds.NumInstances() != 3 || ds.NumFeatures() != 3 {
		t.Fatalf("shape %dx%d, want 3x3", ds.NumInstances(), ds.NumFeatures())
	}
	// Row 0: features 0 and 2 (feature 1 missing).
	feat, val := ds.X.Row(0)
	if len(feat) != 2 || feat[0] != 0 || feat[1] != 2 || val[0] != 0.5 || val[1] != 2 {
		t.Fatalf("row 0 = %v %v", feat, val)
	}
	// Row 1: fully missing.
	if ds.X.RowNNZ(1) != 0 {
		t.Fatalf("row 1 nnz = %d, want 0", ds.X.RowNNZ(1))
	}
	// Row 2: explicit zero IS stored.
	feat, val = ds.X.Row(2)
	if len(feat) != 3 || val[2] != 0 {
		t.Fatalf("row 2 = %v %v (explicit 0 must be stored)", feat, val)
	}
	if ds.Labels[0] != 1 || ds.Labels[1] != 0 || ds.Labels[2] != 1 {
		t.Fatalf("labels = %v", ds.Labels)
	}
}

func TestCSVQuotedFields(t *testing.T) {
	// Quoted values, escaped quotes inside a quoted header cell, commas
	// inside quotes.
	text := "\"label\",\"feature \"\"one\"\"\",\"b,c\"\n\"1\",\"0.5\",\"-2\"\n0,1,\"3\"\n"
	b, err := readCSV(t, text, 2, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(b.Labels) != 2 {
		t.Fatalf("rows = %d, want 2", len(b.Labels))
	}
	if b.Val[0] != 0.5 || b.Val[1] != -2 {
		t.Fatalf("row 0 vals = %v", b.Val[:2])
	}
}

func TestCSVNaNValue(t *testing.T) {
	ds, err := ReadDataset(strings.NewReader("1,nan,2\n0,1,2\n"), Options{Format: FormatCSV, NumClass: 2})
	if err != nil {
		t.Fatal(err)
	}
	_, val := ds.X.Row(0)
	if !math.IsNaN(float64(val[0])) {
		t.Fatalf("val = %v, want NaN stored", val[0])
	}
}

func TestCSVHeaderOnlyOnFirstLine(t *testing.T) {
	// Header on line 1 is skipped; a non-numeric label later is an error.
	if _, err := readCSV(t, "lab,a\n1,2\nbad,3\n", 2, 100); err == nil || !strings.Contains(err.Error(), "line 3: bad label") {
		t.Fatalf("err = %v", err)
	}
}

func TestCSVRaggedRows(t *testing.T) {
	// Within one chunk.
	if _, err := readCSV(t, "1,2,3\n0,1\n", 2, 100); err == nil || !strings.Contains(err.Error(), "line 2: row has 2 fields, want 3") {
		t.Fatalf("in-chunk: err = %v", err)
	}
	// Across chunks (each chunk internally consistent).
	if _, err := readCSV(t, "1,2,3\n0,1\n", 2, 1); err == nil || !strings.Contains(err.Error(), "fields, want 3") {
		t.Fatalf("cross-chunk: err = %v", err)
	}
}

func TestCSVUnterminatedQuote(t *testing.T) {
	_, err := readCSV(t, "1,\"broken\n", 2, 100)
	if err == nil || !strings.Contains(err.Error(), "unterminated quoted field") {
		t.Fatalf("err = %v", err)
	}
	_, err = readCSV(t, "1,\"a\"x,2\n", 2, 100)
	if err == nil || !strings.Contains(err.Error(), "after closing quote") {
		t.Fatalf("err = %v", err)
	}
}

func TestCSVCRLF(t *testing.T) {
	ds, err := ReadDataset(strings.NewReader("1,2\r\n0,3\r\n"), Options{Format: FormatCSV, NumClass: 2})
	if err != nil {
		t.Fatal(err)
	}
	if ds.NumInstances() != 2 {
		t.Fatalf("rows = %d, want 2", ds.NumInstances())
	}
	_, val := ds.X.Row(1)
	if val[0] != 3 {
		t.Fatalf("row 1 val = %v (stray \\r?)", val[0])
	}
}

func TestCSVLabelValidation(t *testing.T) {
	if _, err := readCSV(t, "7,1\n", 3, 100); err == nil || !strings.Contains(err.Error(), "label 7 outside [0,3)") {
		t.Fatalf("err = %v", err)
	}
	// Regression accepts any numeric label.
	if _, err := readCSV(t, "-3.5,1\n", 1, 100); err != nil {
		t.Fatal(err)
	}
}
