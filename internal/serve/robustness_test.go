package serve

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// TestReadyzDrain checks the load-balancer handshake: /readyz answers 200
// on a fresh server, flips to 503 after BeginDrain, and in-flight traffic
// keeps being served during the drain window — only routing stops, work
// does not.
func TestReadyzDrain(t *testing.T) {
	srv, err := New(constModel(t, 3), "seed", Options{})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	status := func(path string) int {
		t.Helper()
		resp, err := http.Get(ts.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		return resp.StatusCode
	}
	if got := status("/readyz"); got != http.StatusOK {
		t.Fatalf("fresh /readyz returned %d, want 200", got)
	}
	if !srv.Ready() {
		t.Fatal("fresh server reports not ready")
	}

	srv.BeginDrain()
	if got := status("/readyz"); got != http.StatusServiceUnavailable {
		t.Fatalf("draining /readyz returned %d, want 503", got)
	}
	// Liveness is orthogonal to readiness: the process is still healthy.
	if got := status("/healthz"); got != http.StatusOK {
		t.Fatalf("draining /healthz returned %d, want 200", got)
	}
	// Requests already routed here must still be answered.
	resp, err := http.Post(ts.URL+"/v1/predict", "application/json",
		bytes.NewReader([]byte(`{"rows":[{"indices":[],"values":[]}]}`)))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var pr PredictResponse
	if resp.StatusCode != http.StatusOK || json.NewDecoder(resp.Body).Decode(&pr) != nil {
		t.Fatalf("predict during drain returned %d", resp.StatusCode)
	}
	if pr.Scores[0][0] != 3 {
		t.Fatalf("predict during drain scored %v, want 3", pr.Scores[0][0])
	}

	// Close implies BeginDrain on a fresh server.
	srv2, err := New(constModel(t, 1), "seed", Options{})
	if err != nil {
		t.Fatal(err)
	}
	srv2.Close()
	if srv2.Ready() {
		t.Fatal("closed server still reports ready")
	}
}

// TestAdminSwapProbeRejects swaps in a structurally valid model whose
// margins overflow to +Inf: the probe must reject it with 400 before the
// registry version moves, and the incumbent model must keep serving.
func TestAdminSwapProbeRejects(t *testing.T) {
	srv, err := New(constModel(t, 1), "seed", Options{EnableAdmin: true})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	// Two leaves of 1e308 sum past MaxFloat64 on every row.
	leaf := `{"num_class":1,"nodes":[{"feature":-1,"left":-1,"right":-1,"weights":[1e308]}]}`
	data := fmt.Sprintf(`{"num_class":1,"learning_rate":1,"init_score":[0],
		"objective":"square","num_feature":4,"trees":[%s,%s]}`, leaf, leaf)
	path := filepath.Join(t.TempDir(), "overflow.json")
	if err := os.WriteFile(path, []byte(data), 0o644); err != nil {
		t.Fatal(err)
	}

	resp, err := http.Post(ts.URL+"/v1/models/default", "application/json",
		bytes.NewReader([]byte(fmt.Sprintf(`{"path":%q}`, path))))
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	_, _ = buf.ReadFrom(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("non-finite swap returned %d: %s", resp.StatusCode, buf.Bytes())
	}
	if !strings.Contains(buf.String(), "probe") {
		t.Fatalf("rejection does not mention the probe: %s", buf.Bytes())
	}

	// The incumbent stays at version 1 and keeps answering.
	st, ok := srv.Registry().Status(DefaultModel)
	if !ok || st.Version != 1 {
		t.Fatalf("registry moved to %+v after rejected swap", st)
	}
	resp, err = http.Post(ts.URL+"/v1/predict", "application/json",
		bytes.NewReader([]byte(`{"rows":[{"indices":[],"values":[]}]}`)))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var pr PredictResponse
	if resp.StatusCode != http.StatusOK || json.NewDecoder(resp.Body).Decode(&pr) != nil {
		t.Fatalf("predict after rejected swap returned %d", resp.StatusCode)
	}
	if pr.Scores[0][0] != 1 || pr.Version != 1 {
		t.Fatalf("rejected swap leaked: score %v version %d", pr.Scores[0][0], pr.Version)
	}
}

// probeModel itself must catch scoring panics, not just non-finite
// margins — a nil model is the degenerate case.
func TestProbeModelRecovers(t *testing.T) {
	if err := probeModel(nil); err == nil {
		t.Fatal("probe of nil model succeeded")
	}
}
