// Package datasets provides the training data used across the
// reproduction: the paper's synthetic generator (Section 5.2), scaled-down
// simulacra of its public and industrial datasets (Table 2, Section 6),
// and LibSVM-format I/O.
//
// The paper generates synthetic data "from random linear regression
// models": a weight matrix W of size D x C with an informative fraction p
// of nonzero rows; each instance is a random D-dimensional vector with
// density phi, and its label is argmax(x^T W). The same process is
// reproduced here with deterministic seeding.
//
// A Dataset couples a sparse feature matrix (see package sparse) with
// labels. Datasets come from four sources:
//
//   - Synthetic / SyntheticRegression — the paper's generator;
//   - Load — a named simulacrum of one of the paper's datasets;
//   - ReadLibSVM — the single-threaded reference parser for LibSVM text;
//   - package ingest — the production path: chunked, parallel parsing of
//     LibSVM or CSV sources with an optional binned binary cache (.vbin).
//
// A Dataset optionally carries a Prebin: candidate split points and
// per-feature value counts derived during ingestion. The trainer adopts a
// matching Prebin instead of re-sketching, which is what lets a warm
// .vbin cache skip the parse and bin phases entirely while still growing
// bit-identical trees (see internal/ingest and docs/DATA.md).
package datasets
