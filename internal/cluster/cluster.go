// Package cluster implements the simulated distributed runtime that stands
// in for the paper's 8-node Spark cluster.
//
// The paper's conclusions rest on (a) how many bytes each data-management
// policy moves per tree and (b) how much computation each storage pattern
// performs. Both are reproduced faithfully: collectives account exact byte
// counts, and a configurable NetworkModel (latency alpha + bandwidth beta,
// the standard cost model of Thakur et al. [36], which the paper cites for
// its aggregation methods) converts them into simulated seconds.
// Computation time is measured for real, per worker, and the per-phase
// record keeps the maximum across workers — the makespan a real cluster
// would observe.
//
// Workers can execute sequentially (deterministic timing on a single core,
// the default) or concurrently via goroutines; results are identical
// because every reduction is order-normalized.
package cluster

import (
	"fmt"
	"sync"
	"time"
)

// NetworkModel converts transferred bytes into simulated seconds using the
// alpha-beta model: each collective step costs LatencySec, and each byte
// costs 1/BandwidthBytesPerSec.
type NetworkModel struct {
	LatencySec           float64
	BandwidthBytesPerSec float64
}

// Gigabit models the paper's laboratory cluster NICs (Section 5.1,
// 1 Gbps Ethernet).
func Gigabit() NetworkModel {
	return NetworkModel{LatencySec: 1e-4, BandwidthBytesPerSec: 125e6}
}

// TenGigabit models the paper's production cluster NICs (Section 6,
// 10 Gbps Ethernet).
func TenGigabit() NetworkModel {
	return NetworkModel{LatencySec: 5e-5, BandwidthBytesPerSec: 1.25e9}
}

// Cluster is a cluster of W workers. By default every worker is simulated
// in-process and communication is only accounted (tr == nil); with
// WithTransport the cluster becomes one rank of a real W-process
// deployment and collectives additionally move payloads over the wire.
type Cluster struct {
	w          int
	net        NetworkModel
	concurrent bool
	stats      *Stats
	tr         Transport
}

// Option configures a Cluster.
type Option func(*Cluster)

// WithConcurrent makes Parallel run workers on goroutines instead of
// sequentially. Timing fidelity requires at least W idle cores; the
// sequential default measures per-worker busy time exactly on any machine.
func WithConcurrent() Option { return func(c *Cluster) { c.concurrent = true } }

// New returns a cluster of w workers over the given network model.
func New(w int, net NetworkModel, opts ...Option) *Cluster {
	if w <= 0 {
		panic(fmt.Sprintf("cluster: worker count %d", w))
	}
	c := &Cluster{w: w, net: net, stats: newStats(w)}
	for _, o := range opts {
		o(c)
	}
	return c
}

// Workers returns the number of workers W.
func (c *Cluster) Workers() int { return c.w }

// Net returns the network model.
func (c *Cluster) Net() NetworkModel { return c.net }

// Stats returns the live statistics collector.
func (c *Cluster) Stats() *Stats { return c.stats }

// ResetStats discards all accumulated statistics.
func (c *Cluster) ResetStats() { c.stats = newStats(c.w) }

// Parallel runs fn(worker) for every worker and records, under the given
// phase, the maximum per-worker busy time — the makespan of the phase.
func (c *Cluster) Parallel(phase string, fn func(worker int)) {
	elapsed := make([]time.Duration, c.w)
	if c.concurrent {
		var wg sync.WaitGroup
		wg.Add(c.w)
		for w := 0; w < c.w; w++ {
			go func(w int) {
				defer wg.Done()
				start := time.Now()
				fn(w)
				elapsed[w] = time.Since(start)
			}(w)
		}
		wg.Wait()
	} else {
		for w := 0; w < c.w; w++ {
			start := time.Now()
			fn(w)
			elapsed[w] = time.Since(start)
		}
	}
	var max time.Duration
	for w, e := range elapsed {
		c.stats.addWorkerComp(w, e)
		if e > max {
			max = e
		}
	}
	c.stats.addComp(phase, max.Seconds())
}

// FirstError collapses a per-worker error slice to the first failure.
// It is the companion of Parallel for fallible worker bodies: each worker
// writes only its own slot, so filling the slice needs no synchronization
// even on a concurrent cluster.
func FirstError(errs []error) error {
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}

// simTime converts one logical transfer of b bytes over `steps` collective
// rounds into seconds under the alpha-beta model.
func (c *Cluster) simTime(steps int, bytesPerStep float64) float64 {
	return float64(steps)*c.net.LatencySec + bytesPerStep/c.net.BandwidthBytesPerSec
}
