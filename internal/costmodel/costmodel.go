// Package costmodel implements the closed-form memory and communication
// cost model of Section 3.1 of the paper, used both to sanity-check the
// simulator and to reproduce the worked example of Section 3.1.4 (the Age
// dataset).
package costmodel

import "fmt"

// Workload describes one training configuration in the paper's notation.
type Workload struct {
	N int64 // instances
	D int64 // features
	W int64 // workers
	L int64 // tree layers
	Q int64 // candidate splits per feature
	C int64 // gradient dimension (1 binary, #classes multi)
}

func (w Workload) validate() error {
	if w.N <= 0 || w.D <= 0 || w.W <= 0 || w.L < 2 || w.Q <= 0 || w.C <= 0 {
		return fmt.Errorf("costmodel: invalid workload %+v", w)
	}
	return nil
}

// HistogramBytes returns Sizehist, the per-node gradient-histogram size:
// 2 sides x D features x q bins x C classes x 8 bytes (Section 3.1.1).
func (w Workload) HistogramBytes() int64 {
	return 2 * w.D * w.Q * w.C * 8
}

// HorizontalMemoryBytes returns the per-worker histogram memory of
// horizontal partitioning: Sizehist x 2^(L-2), the histograms of the
// last-but-one layer retained for subtraction (Section 3.1.2).
func (w Workload) HorizontalMemoryBytes() int64 {
	return w.HistogramBytes() * (1 << uint(w.L-2))
}

// VerticalMemoryBytes returns the expected per-worker histogram memory of
// vertical partitioning: the horizontal cost divided by W, since each
// worker only holds histograms for its feature subset.
func (w Workload) VerticalMemoryBytes() int64 {
	return w.HorizontalMemoryBytes() / w.W
}

// HorizontalCommBytesPerTree returns the total histogram-aggregation
// volume for one tree under horizontal partitioning:
// Sizehist x W x (2^(L-1) - 1) (Section 3.1.3; every node of the first
// L-1 layers aggregates a full histogram from every worker).
func (w Workload) HorizontalCommBytesPerTree() int64 {
	return w.HistogramBytes() * w.W * ((1 << uint(w.L-1)) - 1)
}

// VerticalCommBytesPerTree returns the placement-broadcast volume for one
// tree under vertical partitioning: ceil(N/8) x W x L bytes
// (Section 3.1.3; one bitmap per layer, broadcast to W workers).
func (w Workload) VerticalCommBytesPerTree() int64 {
	return (w.N + 7) / 8 * w.W * w.L
}

// Report summarizes the model's four headline quantities.
type Report struct {
	HistogramBytes             int64
	HorizontalMemoryBytes      int64
	VerticalMemoryBytes        int64
	HorizontalCommBytesPerTree int64
	VerticalCommBytesPerTree   int64
}

// Analyze validates the workload and computes the full report.
func Analyze(w Workload) (Report, error) {
	if err := w.validate(); err != nil {
		return Report{}, err
	}
	return Report{
		HistogramBytes:             w.HistogramBytes(),
		HorizontalMemoryBytes:      w.HorizontalMemoryBytes(),
		VerticalMemoryBytes:        w.VerticalMemoryBytes(),
		HorizontalCommBytesPerTree: w.HorizontalCommBytesPerTree(),
		VerticalCommBytesPerTree:   w.VerticalCommBytesPerTree(),
	}, nil
}

// AgeExample returns the workload of the paper's Section 3.1.4 worked
// example: the Tencent Age dataset on 8 workers (48M instances, 330K
// features, 9 classes, 8-layer trees, 20 candidate splits).
func AgeExample() Workload {
	return Workload{N: 48_000_000, D: 330_000, W: 8, L: 8, Q: 20, C: 9}
}

// Crossover returns the feature dimensionality at which vertical
// partitioning's per-tree communication volume undercuts horizontal's,
// holding the rest of the workload fixed. It solves
// Sizehist(D) * W * (2^(L-1)-1) = ceil(N/8) * W * L for D.
func Crossover(w Workload) int64 {
	perFeature := 2 * w.Q * w.C * 8 * ((int64(1) << uint(w.L-1)) - 1)
	vertical := (w.N + 7) / 8 * w.L
	if perFeature == 0 {
		return 0
	}
	d := vertical / perFeature
	if d < 1 {
		d = 1
	}
	return d
}
