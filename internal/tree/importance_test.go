package tree

import (
	"strings"
	"testing"
)

func importanceFixture(t *testing.T) *Forest {
	t.Helper()
	f := NewForest(1, 1.0, []float64{0}, "square", 3)
	// Tree 1: root on feature 0 (gain 10), left child on feature 1 (gain 4).
	t1 := New(1)
	l, r := t1.Split(0, 0, 0.5, 0, false, 10)
	t1.SetLeaf(r, []float64{1})
	ll, lr := t1.Split(l, 1, 0.5, 0, false, 4)
	t1.SetLeaf(ll, []float64{2})
	t1.SetLeaf(lr, []float64{3})
	f.Append(t1)
	// Tree 2: root on feature 0 again (gain 2).
	t2 := New(1)
	a, b := t2.Split(0, 0, 0.1, 0, true, 2)
	t2.SetLeaf(a, []float64{0})
	t2.SetLeaf(b, []float64{1})
	f.Append(t2)
	return f
}

func TestFeatureImportanceGain(t *testing.T) {
	f := importanceFixture(t)
	imp, err := f.FeatureImportance(ImportanceGain)
	if err != nil {
		t.Fatal(err)
	}
	if imp[0] != 12 || imp[1] != 4 {
		t.Fatalf("gain importance = %v", imp)
	}
}

func TestFeatureImportanceSplit(t *testing.T) {
	f := importanceFixture(t)
	imp, err := f.FeatureImportance(ImportanceSplit)
	if err != nil {
		t.Fatal(err)
	}
	if imp[0] != 2 || imp[1] != 1 {
		t.Fatalf("split importance = %v", imp)
	}
}

func TestFeatureImportanceUnknownKind(t *testing.T) {
	f := importanceFixture(t)
	if _, err := f.FeatureImportance("cover"); err == nil {
		t.Fatal("unknown kind accepted")
	}
}

func TestTopFeatures(t *testing.T) {
	f := importanceFixture(t)
	top, err := f.TopFeatures(ImportanceGain, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(top) != 1 || top[0].Feature != 0 || top[0].Score != 12 {
		t.Fatalf("top = %v", top)
	}
	all, err := f.TopFeatures(ImportanceGain, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(all) != 2 {
		t.Fatalf("all = %v", all)
	}
}

func TestDump(t *testing.T) {
	f := importanceFixture(t)
	d := f.Trees[0].Dump()
	for _, want := range []string{"[f0 <= 0.5]", "gain=10.0000", "leaf weights=[1]", "default=right"} {
		if !strings.Contains(d, want) {
			t.Fatalf("dump missing %q:\n%s", want, d)
		}
	}
	// Default-left tree prints default=left.
	if !strings.Contains(f.Trees[1].Dump(), "default=left") {
		t.Fatal("default-left not rendered")
	}
}

func TestSummarize(t *testing.T) {
	f := importanceFixture(t)
	s := f.Summarize()
	if s.NumTrees != 2 || s.TotalLeaves != 5 || s.MaxDepth != 3 {
		t.Fatalf("stats = %+v", s)
	}
	wantMean := (10.0 + 4 + 2) / 3
	if s.MeanGain != wantMean {
		t.Fatalf("mean gain = %v, want %v", s.MeanGain, wantMean)
	}
}
