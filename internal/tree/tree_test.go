package tree

import (
	"math"
	"testing"

	"vero/internal/sparse"
)

// buildStump returns the tree of Figure 2 (left): root splits on feature 0
// ("Married", <=0 goes left), left child splits on feature 1 ("Age" < 35).
func buildStump(t *testing.T) *Tree {
	t.Helper()
	tr := New(1)
	l, r := tr.Split(tr.Root(), 0, 0.5, 0, false, 1.0)
	tr.SetLeaf(r, []float64{5})
	ll, lr := tr.Split(l, 1, 35, 1, true, 0.5)
	tr.SetLeaf(ll, []float64{3})
	tr.SetLeaf(lr, []float64{10})
	return tr
}

func TestSplitAndLeaves(t *testing.T) {
	tr := buildStump(t)
	if got := tr.NumLeaves(); got != 3 {
		t.Fatalf("NumLeaves = %d, want 3", got)
	}
	if got := tr.MaxDepth(); got != 3 {
		t.Fatalf("MaxDepth = %d, want 3", got)
	}
	if len(tr.Nodes) != 5 {
		t.Fatalf("len(Nodes) = %d, want 5", len(tr.Nodes))
	}
}

func TestSplitOnInteriorPanics(t *testing.T) {
	tr := buildStump(t)
	defer func() {
		if recover() == nil {
			t.Fatal("Split on interior node did not panic")
		}
	}()
	tr.Split(0, 1, 0, 0, false, 0)
}

func TestSetLeafValidation(t *testing.T) {
	tr := New(2)
	defer func() {
		if recover() == nil {
			t.Fatal("SetLeaf with wrong arity did not panic")
		}
	}()
	tr.SetLeaf(0, []float64{1})
}

func TestPredictLeafRouting(t *testing.T) {
	tr := buildStump(t)
	cases := []struct {
		feat []uint32
		val  []float32
		want float64
	}{
		{[]uint32{0, 1}, []float32{1, 40}, 5},  // married -> right leaf
		{[]uint32{0, 1}, []float32{0, 20}, 3},  // unmarried, young
		{[]uint32{0, 1}, []float32{0, 50}, 10}, // unmarried, old
		{[]uint32{0}, []float32{0}, 3},         // age missing -> default left
		{nil, nil, 5},                          // feature 0 missing -> default right
	}
	for i, c := range cases {
		out := make([]float64, 1)
		tr.Predict(c.feat, c.val, 1.0, out)
		if out[0] != c.want {
			t.Errorf("case %d: predict = %v, want %v", i, out[0], c.want)
		}
	}
}

func TestPredictScalesByEta(t *testing.T) {
	tr := buildStump(t)
	out := make([]float64, 1)
	tr.Predict([]uint32{0, 1}, []float32{1, 40}, 0.1, out)
	if math.Abs(out[0]-0.5) > 1e-12 {
		t.Fatalf("eta-scaled predict = %v, want 0.5", out[0])
	}
}

func TestForestSumsTrees(t *testing.T) {
	// Figure 2: prediction = sum of leaf predictions of all trees.
	t1 := buildStump(t)
	t2 := New(1)
	t2.SetLeaf(t2.Root(), []float64{5})
	f := NewForest(1, 1.0, []float64{0}, "square", 2)
	f.Append(t1)
	f.Append(t2)
	got := f.PredictRow([]uint32{0, 1}, []float32{0, 20})
	if got[0] != 8 { // 3 + 5, as in the paper's Figure 2
		t.Fatalf("forest prediction = %v, want 8", got[0])
	}
}

func TestForestInitScore(t *testing.T) {
	f := NewForest(1, 1.0, []float64{2.5}, "square", 1)
	if got := f.PredictRow(nil, nil)[0]; got != 2.5 {
		t.Fatalf("init-only prediction = %v, want 2.5", got)
	}
}

func TestPredictCSR(t *testing.T) {
	tr := buildStump(t)
	f := NewForest(1, 1.0, []float64{0}, "square", 2)
	f.Append(tr)
	b := sparse.NewCSRBuilder(2)
	for _, row := range [][]sparse.KV{
		{{Index: 0, Value: 1}, {Index: 1, Value: 40}},
		{{Index: 0, Value: 0}, {Index: 1, Value: 20}},
	} {
		if err := b.AddRow(row); err != nil {
			t.Fatal(err)
		}
	}
	got := f.PredictCSR(b.Build())
	if got[0] != 5 || got[1] != 3 {
		t.Fatalf("PredictCSR = %v, want [5 3]", got)
	}
}

func TestMultiClassLeaves(t *testing.T) {
	tr := New(3)
	tr.SetLeaf(tr.Root(), []float64{1, 2, 3})
	out := make([]float64, 3)
	tr.Predict(nil, nil, 0.5, out)
	if out[0] != 0.5 || out[1] != 1 || out[2] != 1.5 {
		t.Fatalf("multi-class predict = %v", out)
	}
}

func TestEncodeDecodeRoundTrip(t *testing.T) {
	tr := buildStump(t)
	f := NewForest(1, 0.3, []float64{0.1}, "logistic", 2)
	f.Append(tr)
	data, err := f.Encode()
	if err != nil {
		t.Fatal(err)
	}
	g, err := DecodeForest(data)
	if err != nil {
		t.Fatal(err)
	}
	if g.NumTrees() != 1 || g.LearningRate != 0.3 || g.Objective != "logistic" {
		t.Fatalf("decoded forest = %+v", g)
	}
	row := []uint32{0, 1}
	val := []float32{0, 50}
	if a, b := f.PredictRow(row, val)[0], g.PredictRow(row, val)[0]; a != b {
		t.Fatalf("prediction changed after round trip: %v vs %v", a, b)
	}
}

func TestDecodeForestRejectsGarbage(t *testing.T) {
	if _, err := DecodeForest([]byte("not json")); err == nil {
		t.Fatal("DecodeForest accepted garbage")
	}
	if _, err := DecodeForest([]byte(`{"num_class":0}`)); err == nil {
		t.Fatal("DecodeForest accepted num_class 0")
	}
}

func TestLookup(t *testing.T) {
	feat := []uint32{2, 5, 9}
	val := []float32{1, 2, 3}
	if v, ok := lookup(feat, val, 5); !ok || v != 2 {
		t.Fatalf("lookup(5) = %v,%v", v, ok)
	}
	if _, ok := lookup(feat, val, 4); ok {
		t.Fatal("lookup(4) found a phantom")
	}
	if _, ok := lookup(nil, nil, 1); ok {
		t.Fatal("lookup on empty row found a phantom")
	}
}
