package ingest

import (
	"bytes"
	"fmt"
	"reflect"
	"strings"
	"testing"

	"vero/internal/datasets"
)

// sampleLibSVM returns a synthetic dataset and its LibSVM serialization.
func sampleLibSVM(t *testing.T, n, d int, c int, seed int64) (*datasets.Dataset, string) {
	t.Helper()
	ds, err := datasets.Synthetic(datasets.SyntheticConfig{
		N: n, D: d, C: c, InformativeRatio: 0.2, Density: 0.3, Seed: seed,
	})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := datasets.WriteLibSVM(&buf, ds); err != nil {
		t.Fatal(err)
	}
	return ds, buf.String()
}

func sameMatrix(t *testing.T, got, want *datasets.Dataset, label string) {
	t.Helper()
	if got.X.Rows() != want.X.Rows() || got.X.Cols() != want.X.Cols() {
		t.Fatalf("%s: shape %dx%d, want %dx%d", label, got.X.Rows(), got.X.Cols(), want.X.Rows(), want.X.Cols())
	}
	if !reflect.DeepEqual(got.X.RowPtr, want.X.RowPtr) ||
		!reflect.DeepEqual(got.X.Feat, want.X.Feat) ||
		!reflect.DeepEqual(got.X.Val, want.X.Val) ||
		!reflect.DeepEqual(got.Labels, want.Labels) {
		t.Fatalf("%s: matrix or labels differ", label)
	}
}

// TestChunkedMatchesWholeFile is the property the pipeline stands on:
// any chunk size — rows straddling block boundaries, block == file,
// rows divisible by the block size (empty trailing chunk) — produces the
// same dataset as the single-threaded reference parser, bit for bit.
func TestChunkedMatchesWholeFile(t *testing.T) {
	const n = 257
	_, text := sampleLibSVM(t, n, 40, 2, 11)
	ref, err := datasets.ReadLibSVM(strings.NewReader(text), 2)
	if err != nil {
		t.Fatal(err)
	}
	// 1: every row is its own block. 3/7: rows straddle boundaries.
	// 257: exactly one block. 256+1, n divisible cases below.
	for _, chunk := range []int{1, 3, 7, 64, 256, 257, 258, 4096} {
		got, err := ReadDataset(strings.NewReader(text), Options{NumClass: 2, ChunkRows: chunk, Workers: 4})
		if err != nil {
			t.Fatalf("chunk %d: %v", chunk, err)
		}
		sameMatrix(t, got, ref, fmt.Sprintf("chunk %d", chunk))
	}
}

// TestEmptyTrailingChunk covers row counts exactly divisible by the
// block size: no phantom empty block may corrupt the row numbering.
func TestEmptyTrailingChunk(t *testing.T) {
	_, text := sampleLibSVM(t, 128, 20, 2, 3)
	ref, err := datasets.ReadLibSVM(strings.NewReader(text), 2)
	if err != nil {
		t.Fatal(err)
	}
	for _, chunk := range []int{32, 64, 128} {
		var blocks, rows int
		err := ScanBlocks(strings.NewReader(text), Options{NumClass: 2, ChunkRows: chunk}, func(b *Block) error {
			if b.Index != blocks {
				t.Fatalf("block %d delivered out of order (want %d)", b.Index, blocks)
			}
			if b.Start != rows {
				t.Fatalf("block %d starts at %d, want %d", b.Index, b.Start, rows)
			}
			blocks++
			rows += b.NumRows()
			return nil
		})
		if err != nil {
			t.Fatal(err)
		}
		if want := 128 / chunk; blocks != want {
			t.Fatalf("chunk %d: %d blocks, want %d", chunk, blocks, want)
		}
		if rows != ref.NumInstances() {
			t.Fatalf("chunk %d: %d rows, want %d", chunk, rows, ref.NumInstances())
		}
	}
}

func TestBlanksCommentsAndMissingNewline(t *testing.T) {
	text := "# comment\n1 0:1.5 2:2\n\n   \n0 1:3\n# tail\n0 0:-1" // no trailing newline
	ds, err := ReadDataset(strings.NewReader(text), Options{NumClass: 2, ChunkRows: 2})
	if err != nil {
		t.Fatal(err)
	}
	ref, err := datasets.ReadLibSVM(strings.NewReader(text), 2)
	if err != nil {
		t.Fatal(err)
	}
	sameMatrix(t, ds, ref, "blanks/comments")
	if ds.NumInstances() != 3 {
		t.Fatalf("rows = %d, want 3", ds.NumInstances())
	}
}

func TestStreamedPrebinMatchesCanonical(t *testing.T) {
	ref, text := sampleLibSVM(t, 300, 50, 2, 7)
	ing, err := Ingest(strings.NewReader(text), Options{NumClass: 2, ChunkRows: 37, Workers: 3})
	if err != nil {
		t.Fatal(err)
	}
	// The file round-trip may drop float precision? No: WriteLibSVM uses %g
	// which round-trips float32 exactly, so sketching the parsed matrix
	// equals sketching the generated one.
	want := Prebinned(ref, 0.01, 20)
	if !reflect.DeepEqual(ing.Prebin.Splits, want.Splits) {
		t.Fatal("streamed splits differ from canonical pass")
	}
	if !reflect.DeepEqual(ing.Prebin.FeatCount, want.FeatCount) {
		t.Fatal("streamed feature counts differ from canonical pass")
	}
	if ing.Prebin.Quantized {
		t.Fatal("cold ingest must not mark the dataset quantized")
	}
}

func TestParseErrorsReportLines(t *testing.T) {
	cases := []struct {
		name, text, want string
	}{
		{"bad label", "1 0:1\nx 0:1\n", "line 2: bad label"},
		{"bad pair", "1 0:1\n0 zap\n", "line 2: bad pair"},
		{"bad index", "0 -1:2\n", "line 1: bad index"},
		{"bad value", "0 0:zap\n", "line 1: bad value"},
		{"duplicate feature", "1 3:1 3:2\n", "line 1: duplicate feature index 3"},
		{"label out of range", "1 0:1\n5 0:1\n", "line 2: label 5 outside [0,2)"},
		{"fractional label", "0.5 0:1\n", "line 1: label 0.5 outside [0,2)"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := ReadDataset(strings.NewReader(tc.text), Options{NumClass: 2, ChunkRows: 1})
			if err == nil || !strings.Contains(err.Error(), tc.want) {
				t.Fatalf("err = %v, want %q", err, tc.want)
			}
		})
	}
}

// TestFirstErrorInFileOrderWins pins down determinism: with many workers
// racing, the reported error must always be the earliest one in the file.
func TestFirstErrorInFileOrderWins(t *testing.T) {
	var sb strings.Builder
	for i := 0; i < 100; i++ {
		sb.WriteString("1 0:1\n")
	}
	text := sb.String() + "x 0:1\n" + strings.Repeat("1 0:1\n", 100) + "y 0:1\n"
	for trial := 0; trial < 10; trial++ {
		_, err := ReadDataset(strings.NewReader(text), Options{NumClass: 2, ChunkRows: 1, Workers: 8})
		if err == nil || !strings.Contains(err.Error(), "line 101: bad label \"x\"") {
			t.Fatalf("trial %d: err = %v, want the line-101 error", trial, err)
		}
	}
}

func TestConsumerErrorStopsScan(t *testing.T) {
	_, text := sampleLibSVM(t, 500, 20, 2, 5)
	calls := 0
	wantErr := fmt.Errorf("stop here")
	err := ScanBlocks(strings.NewReader(text), Options{NumClass: 2, ChunkRows: 10, Workers: 4}, func(b *Block) error {
		calls++
		if calls == 3 {
			return wantErr
		}
		return nil
	})
	if err != wantErr {
		t.Fatalf("err = %v, want %v", err, wantErr)
	}
	if calls != 3 {
		t.Fatalf("fn ran %d times after error, want 3", calls)
	}
}

func TestEmptyInput(t *testing.T) {
	ds, err := ReadDataset(strings.NewReader(""), Options{NumClass: 2})
	if err != nil {
		t.Fatal(err)
	}
	if ds.NumInstances() != 0 || ds.NumFeatures() != 0 {
		t.Fatalf("empty input produced %dx%d", ds.NumInstances(), ds.NumFeatures())
	}
}

func TestOptionValidation(t *testing.T) {
	for _, opts := range []Options{
		{NumClass: 0},
		{NumClass: 2, ChunkRows: -1},
		{NumClass: 2, Workers: -2},
		{NumClass: 2, SketchEps: 1.5},
		{NumClass: 2, Q: 1},
		{NumClass: 2, Format: "parquet"},
	} {
		if _, err := Ingest(strings.NewReader("1 0:1\n"), opts); err == nil {
			t.Fatalf("opts %+v accepted", opts)
		}
	}
	if _, err := ParseFormat("tsv"); err == nil {
		t.Fatal("ParseFormat accepted tsv")
	}
	if f, err := ParseFormat(""); err != nil || f != FormatLibSVM {
		t.Fatalf("ParseFormat(\"\") = %v, %v", f, err)
	}
}
