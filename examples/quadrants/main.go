// Quadrants: the Section 5.2 breakdown comparison in miniature. Trains the
// same high-dimensional sparse workload under all four data-management
// quadrants and prints the per-tree computation/communication breakdown
// and peak histogram memory — the quantities behind Figure 10.
package main

import (
	"fmt"
	"log"

	"vero/gbdt"
)

func main() {
	// A high-dimensional sparse workload: the regime where the paper's
	// analysis favors vertical partitioning (QD3/QD4).
	ds, err := gbdt.Synthetic(gbdt.SyntheticConfig{
		N: 8000, D: 2000, C: 2,
		InformativeRatio: 0.2,
		Density:          0.05,
		Seed:             7,
	})
	if err != nil {
		log.Fatal(err)
	}

	quadrants := []struct {
		label  string
		system gbdt.System
	}{
		{"QD1 horizontal+column (xgboost)", gbdt.SystemXGBoost},
		{"QD2 horizontal+row    (lightgbm)", gbdt.SystemLightGBM},
		{"QD3 vertical+column   (optimized)", gbdt.SystemQD3},
		{"QD4 vertical+row      (vero)", gbdt.SystemVero},
	}

	fmt.Printf("workload: N=%d D=%d sparse, W=4, T=3, L=6, q=20\n\n", ds.NumInstances(), ds.NumFeatures())
	fmt.Printf("%-36s %12s %10s %10s %12s %12s\n",
		"quadrant", "sec/tree", "comp (s)", "comm (s)", "comm (MB)", "hist (MB)")
	for _, q := range quadrants {
		_, report, err := gbdt.Train(ds, gbdt.Options{
			System: q.system, Workers: 4, Trees: 3, Layers: 6,
		})
		if err != nil {
			log.Fatal(err)
		}
		var perTree float64
		for _, s := range report.PerTreeSeconds {
			perTree += s
		}
		perTree /= float64(len(report.PerTreeSeconds))
		fmt.Printf("%-36s %12.4f %10.4f %10.4f %12.2f %12.2f\n", q.label,
			perTree,
			report.CompSeconds,
			report.CommSeconds,
			float64(report.CommBytes)/(1<<20),
			float64(report.HistogramPeakBytes)/(1<<20))
	}
	fmt.Println("\nExpected shape (paper, Table 1): vertical partitioning wins on")
	fmt.Println("communication and histogram memory for high-dimensional data;")
	fmt.Println("row-store (QD2/QD4) wins on computation.")
}
