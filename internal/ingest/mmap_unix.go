//go:build linux || darwin || freebsd || netbsd || openbsd || dragonfly

package ingest

import (
	"os"
	"syscall"
)

// mmapAvailable reports whether this platform supports memory-mapped
// cache views; when false MapCacheFile always uses the pread fallback.
const mmapAvailable = true

// mmapFile maps size bytes of f read-only and shared. The returned slice
// aliases the page cache: it must never be written to and must be released
// with munmapFile.
func mmapFile(f *os.File, size int64) ([]byte, error) {
	return syscall.Mmap(int(f.Fd()), 0, int(size), syscall.PROT_READ, syscall.MAP_SHARED)
}

// munmapFile releases a mapping created by mmapFile.
func munmapFile(data []byte) error {
	return syscall.Munmap(data)
}
