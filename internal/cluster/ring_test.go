package cluster

import (
	"math"
	"math/rand"
	"net"
	"testing"
)

// ringConns builds the ring topology over in-memory pipes: send[i] writes
// to worker (i+1) mod w, recv[i] reads from worker (i-1) mod w.
func ringConns(w int) (send, recv []*CountingConn) {
	send = make([]*CountingConn, w)
	recv = make([]*CountingConn, w)
	for i := 0; i < w; i++ {
		a, b := net.Pipe()
		send[i] = &CountingConn{Conn: a}
		recv[(i+1)%w] = &CountingConn{Conn: b}
	}
	return send, recv
}

func asConns(cs []*CountingConn) []net.Conn {
	out := make([]net.Conn, len(cs))
	for i, c := range cs {
		out[i] = c
	}
	return out
}

// TestRingAllReduceCorrect runs a genuine ring all-reduce over net.Pipe and
// checks every worker ends with the global sum.
func TestRingAllReduceCorrect(t *testing.T) {
	for _, w := range []int{2, 3, 4, 8} {
		rng := rand.New(rand.NewSource(int64(w)))
		const n = 103 // deliberately not divisible by w
		locals := make([][]float64, w)
		want := make([]float64, n)
		for i := range locals {
			locals[i] = make([]float64, n)
			for k := range locals[i] {
				locals[i][k] = rng.NormFloat64()
				want[k] += locals[i][k]
			}
		}
		send, recv := ringConns(w)
		if err := RingAllReduce(locals, asConns(send), asConns(recv)); err != nil {
			t.Fatalf("w=%d: %v", w, err)
		}
		for i := range locals {
			for k := range want {
				if math.Abs(locals[i][k]-want[k]) > 1e-9 {
					t.Fatalf("w=%d: worker %d entry %d = %v, want %v", w, i, k, locals[i][k], want[k])
				}
			}
		}
	}
}

// TestRingAllReduceMatchesModel validates the simulator's cost accounting
// against real wire traffic: the bytes each worker writes in a genuine
// ring all-reduce must equal the 2(W-1)/W * n per-worker volume that
// ChargeAllReduce charges.
func TestRingAllReduceMatchesModel(t *testing.T) {
	const w = 4
	const n = 128 // divisible by w so shard sizes are uniform
	locals := make([][]float64, w)
	for i := range locals {
		locals[i] = make([]float64, n)
	}
	send, recv := ringConns(w)
	if err := RingAllReduce(locals, asConns(send), asConns(recv)); err != nil {
		t.Fatal(err)
	}
	var realBytes int64
	for _, c := range send {
		realBytes += c.Written()
	}
	c := New(w, Gigabit())
	c.ChargeAllReduce("x", n*8)
	modelBytes := c.Stats().Phase("x").Bytes[OpAllReduce]
	if realBytes != modelBytes {
		t.Fatalf("real ring moved %d bytes, model charges %d", realBytes, modelBytes)
	}
}

func TestRingAllReduceSingleWorker(t *testing.T) {
	locals := [][]float64{{1, 2, 3}}
	if err := RingAllReduce(locals, make([]net.Conn, 1), make([]net.Conn, 1)); err != nil {
		t.Fatal(err)
	}
	if locals[0][0] != 1 {
		t.Fatal("single-worker all-reduce changed data")
	}
}

func TestRingAllReduceValidation(t *testing.T) {
	if err := RingAllReduce(nil, nil, nil); err == nil {
		t.Fatal("accepted zero workers")
	}
	if err := RingAllReduce([][]float64{{1}, {1, 2}}, make([]net.Conn, 2), make([]net.Conn, 2)); err == nil {
		t.Fatal("accepted ragged arrays")
	}
	if err := RingAllReduce([][]float64{{1}, {2}}, make([]net.Conn, 1), make([]net.Conn, 2)); err == nil {
		t.Fatal("accepted wrong connection count")
	}
}
