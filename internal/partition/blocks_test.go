package partition

import (
	"math/rand"
	"testing"
)

func makeBlock(rowStart int, rows [][]uint32, bins [][]uint16) *Block {
	b := &Block{RowStart: rowStart, RowPtr: []int64{0}}
	for i := range rows {
		b.Feat = append(b.Feat, rows[i]...)
		b.Bin = append(b.Bin, bins[i]...)
		b.RowPtr = append(b.RowPtr, int64(len(b.Feat)))
	}
	return b
}

func TestBlockRow(t *testing.T) {
	b := makeBlock(10,
		[][]uint32{{0, 2}, {}, {1}},
		[][]uint16{{3, 4}, {}, {5}})
	if b.NumRows() != 3 || b.NNZ() != 3 {
		t.Fatalf("rows=%d nnz=%d", b.NumRows(), b.NNZ())
	}
	feat, bin := b.Row(10)
	if len(feat) != 2 || feat[1] != 2 || bin[0] != 3 {
		t.Fatalf("Row(10) = %v %v", feat, bin)
	}
	if feat, _ := b.Row(11); len(feat) != 0 {
		t.Fatal("empty row not empty")
	}
	feat, bin = b.Row(12)
	if len(feat) != 1 || feat[0] != 1 || bin[0] != 5 {
		t.Fatalf("Row(12) = %v %v", feat, bin)
	}
}

func TestBlockEncodeDecodeRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for _, widths := range [][2]int64{{1, 1}, {2, 1}, {4, 2}} {
		fw, bw := widths[0], widths[1]
		b := &Block{RowStart: 7, RowPtr: []int64{0}}
		for i := 0; i < 20; i++ {
			n := rng.Intn(5)
			for k := 0; k < n; k++ {
				maxFeat := int64(1) << uint(8*fw)
				if maxFeat > 1<<20 {
					maxFeat = 1 << 20
				}
				b.Feat = append(b.Feat, uint32(rng.Int63n(maxFeat)))
				maxBin := int64(1) << uint(8*bw)
				b.Bin = append(b.Bin, uint16(rng.Int63n(maxBin)))
			}
			b.RowPtr = append(b.RowPtr, int64(len(b.Feat)))
		}
		data, err := b.Encode(fw, bw)
		if err != nil {
			t.Fatal(err)
		}
		if int64(len(data)) != b.WireSizeBytes(fw, bw) {
			t.Fatalf("fw=%d bw=%d: encoded %d bytes, WireSizeBytes says %d",
				fw, bw, len(data), b.WireSizeBytes(fw, bw))
		}
		got, err := DecodeBlock(data)
		if err != nil {
			t.Fatal(err)
		}
		if got.RowStart != b.RowStart || got.NumRows() != b.NumRows() || got.NNZ() != b.NNZ() {
			t.Fatalf("shape changed after round trip")
		}
		for i := range b.Feat {
			if got.Feat[i] != b.Feat[i] || got.Bin[i] != b.Bin[i] {
				t.Fatalf("pair %d changed: (%d,%d) vs (%d,%d)",
					i, b.Feat[i], b.Bin[i], got.Feat[i], got.Bin[i])
			}
		}
	}
}

func TestBlockEncodeBadWidths(t *testing.T) {
	b := makeBlock(0, [][]uint32{{0}}, [][]uint16{{0}})
	if _, err := b.Encode(3, 1); err == nil {
		t.Fatal("accepted feature width 3")
	}
	if _, err := b.Encode(1, 4); err == nil {
		t.Fatal("accepted bin width 4")
	}
}

func TestDecodeBlockErrors(t *testing.T) {
	if _, err := DecodeBlock([]byte{1, 2, 3}); err == nil {
		t.Fatal("accepted short payload")
	}
	b := makeBlock(0, [][]uint32{{0, 1}}, [][]uint16{{0, 1}})
	data, _ := b.Encode(1, 1)
	if _, err := DecodeBlock(data[:len(data)-1]); err == nil {
		t.Fatal("accepted truncated payload")
	}
}

func TestBlockSetTwoPhaseIndex(t *testing.T) {
	b1 := makeBlock(0, [][]uint32{{1}, {2}}, [][]uint16{{1}, {2}})
	b2 := makeBlock(2, [][]uint32{{3}, {}}, [][]uint16{{3}, {}})
	b3 := makeBlock(4, [][]uint32{{5}}, [][]uint16{{5}})
	// Deliberately out of order: NewBlockSet must sort by RowStart.
	bs, err := NewBlockSet([]*Block{b3, b1, b2})
	if err != nil {
		t.Fatal(err)
	}
	if bs.NumRows() != 5 || bs.NumBlocks() != 3 || bs.NNZ() != 4 {
		t.Fatalf("rows=%d blocks=%d nnz=%d", bs.NumRows(), bs.NumBlocks(), bs.NNZ())
	}
	for r, want := range map[int]uint32{0: 1, 1: 2, 2: 3, 4: 5} {
		feat, _ := bs.Row(r)
		if len(feat) != 1 || feat[0] != want {
			t.Fatalf("Row(%d) = %v, want [%d]", r, feat, want)
		}
	}
	if feat, _ := bs.Row(3); len(feat) != 0 {
		t.Fatal("empty row not empty")
	}
}

func TestBlockSetRejectsGaps(t *testing.T) {
	b1 := makeBlock(0, [][]uint32{{1}}, [][]uint16{{1}})
	b3 := makeBlock(5, [][]uint32{{2}}, [][]uint16{{2}})
	if _, err := NewBlockSet([]*Block{b1, b3}); err == nil {
		t.Fatal("accepted non-contiguous blocks")
	}
}

func TestBlockSetMergePreservesRows(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	var blocks []*Block
	rowStart := 0
	type rowData struct {
		feat []uint32
		bin  []uint16
	}
	var all []rowData
	for b := 0; b < 8; b++ {
		nRows := 1 + rng.Intn(10)
		var rows [][]uint32
		var bins [][]uint16
		for r := 0; r < nRows; r++ {
			n := rng.Intn(4)
			feat := make([]uint32, n)
			bin := make([]uint16, n)
			for k := range feat {
				feat[k] = uint32(rng.Intn(100))
				bin[k] = uint16(rng.Intn(20))
			}
			rows = append(rows, feat)
			bins = append(bins, bin)
			all = append(all, rowData{feat, bin})
		}
		blocks = append(blocks, makeBlock(rowStart, rows, bins))
		rowStart += nRows
	}
	bs, err := NewBlockSet(blocks)
	if err != nil {
		t.Fatal(err)
	}
	bs.Merge(3)
	if bs.NumBlocks() > 3 {
		t.Fatalf("merge left %d blocks", bs.NumBlocks())
	}
	if bs.NumRows() != len(all) {
		t.Fatalf("merge changed row count: %d vs %d", bs.NumRows(), len(all))
	}
	for r, want := range all {
		feat, bin := bs.Row(r)
		if len(feat) != len(want.feat) {
			t.Fatalf("row %d nnz %d, want %d", r, len(feat), len(want.feat))
		}
		for k := range feat {
			if feat[k] != want.feat[k] || bin[k] != want.bin[k] {
				t.Fatalf("row %d entry %d changed", r, k)
			}
		}
	}
}
