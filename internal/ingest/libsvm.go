package ingest

import (
	"fmt"
	"strconv"
	"strings"
)

// parseLibSVMChunk parses one chunk of LibSVM/SVMLight lines: "label
// idx:value idx:value ...". Blank lines and lines starting with '#' are
// skipped. Indices may be 0- or 1-based and are used as-is, matching the
// reference parser (datasets.ReadLibSVM).
func parseLibSVMChunk(c rawChunk, opts Options) (*Block, error) {
	b := &Block{firstLine: c.firstLine, RowPtr: make([]int64, 1, 64)}
	s := string(c.data)
	line := c.firstLine - 1
	for len(s) > 0 {
		line++
		var raw string
		if i := strings.IndexByte(s, '\n'); i >= 0 {
			raw, s = s[:i], s[i+1:]
		} else {
			raw, s = s, ""
		}
		text := strings.TrimSpace(raw)
		if text == "" || strings.HasPrefix(text, "#") {
			continue
		}
		fields := strings.Fields(text)
		label, err := strconv.ParseFloat(fields[0], 32)
		if err != nil {
			return nil, fmt.Errorf("ingest: line %d: bad label %q: %w", line, fields[0], err)
		}
		if err := checkLabel(label, opts.NumClass, line); err != nil {
			return nil, err
		}
		rowStart := len(b.Feat)
		for _, f := range fields[1:] {
			colon := strings.IndexByte(f, ':')
			if colon < 0 {
				return nil, fmt.Errorf("ingest: line %d: bad pair %q", line, f)
			}
			idx, err := strconv.ParseUint(f[:colon], 10, 32)
			if err != nil {
				return nil, fmt.Errorf("ingest: line %d: bad index %q: %w", line, f[:colon], err)
			}
			val, err := strconv.ParseFloat(f[colon+1:], 32)
			if err != nil {
				return nil, fmt.Errorf("ingest: line %d: bad value %q: %w", line, f[colon+1:], err)
			}
			b.Feat = append(b.Feat, uint32(idx))
			b.Val = append(b.Val, float32(val))
			if cols := int(idx) + 1; cols > b.Cols {
				b.Cols = cols
			}
		}
		if err := sortRow(b.Feat[rowStart:], b.Val[rowStart:], line); err != nil {
			return nil, err
		}
		b.Labels = append(b.Labels, float32(label))
		b.RowPtr = append(b.RowPtr, int64(len(b.Feat)))
	}
	return b, nil
}
