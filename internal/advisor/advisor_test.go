package advisor

import (
	"strings"
	"testing"

	"vero/internal/cluster"
	"vero/internal/datasets"
)

func TestHighDimensionalPicksVero(t *testing.T) {
	// RCV1-like: 697K x 47K sparse, the regime Table 3 shows Vero winning.
	rec, err := Recommend(Workload{N: 697_000, D: 47_000, C: 1, W: 5, NNZPerRow: 75})
	if err != nil {
		t.Fatal(err)
	}
	if rec.System != "vero" || rec.Quadrant != 4 {
		t.Fatalf("recommended %s (QD%d), want vero (QD4): %s", rec.System, rec.Quadrant, rec.Rationale)
	}
}

func TestMultiClassPicksVero(t *testing.T) {
	// Age-like: 48M x 330K x 9 — the Section 3.1.4 example.
	rec, err := Recommend(Workload{N: 48_000_000, D: 330_000, C: 9, W: 8, NNZPerRow: 300})
	if err != nil {
		t.Fatal(err)
	}
	if rec.System != "vero" {
		t.Fatalf("recommended %s, want vero: %s", rec.System, rec.Rationale)
	}
}

func TestLowDimensionalPicksLightGBM(t *testing.T) {
	// SUSY-like: 5M x 18 dense — LightGBM's regime (Table 3).
	rec, err := Recommend(Workload{N: 5_000_000, D: 18, C: 1, W: 5})
	if err != nil {
		t.Fatal(err)
	}
	if rec.System != "lightgbm" || rec.Quadrant != 2 {
		t.Fatalf("recommended %s (QD%d), want lightgbm (QD2): %s", rec.System, rec.Quadrant, rec.Rationale)
	}
}

func TestTinyNHighDPicksQD3(t *testing.T) {
	// Figure 10(g)'s regime: N=10K, D=100K.
	rec, err := Recommend(Workload{N: 10_000, D: 100_000, C: 1, W: 4, NNZPerRow: 100})
	if err != nil {
		t.Fatal(err)
	}
	if rec.System != "qd3" || rec.Storage != ColumnStore {
		t.Fatalf("recommended %s/%s, want qd3/column: %s", rec.System, rec.Storage, rec.Rationale)
	}
}

func TestMemoryBudgetForcesVertical(t *testing.T) {
	// Borderline communication, but horizontal histograms exceed the
	// 8 GB worker budget (the paper's QD2 OOM at D=100K, C=10).
	rec, err := Recommend(Workload{
		N: 50_000_000, D: 100_000, C: 10, W: 8,
		MemoryPerWorkerBytes: 8 << 30,
		Net:                  cluster.TenGigabit(),
	})
	if err != nil {
		t.Fatal(err)
	}
	if rec.Partitioning != Vertical {
		t.Fatalf("recommended %s, want vertical: %s", rec.Partitioning, rec.Rationale)
	}
	if rec.HorizontalMemBytes <= 8<<30 {
		t.Fatalf("horizontal memory model says %d bytes, expected above budget", rec.HorizontalMemBytes)
	}
}

func TestFasterNetworkShiftsTowardHorizontal(t *testing.T) {
	// Section 6's Gender observation: on a 10x faster network the
	// horizontal aggregation penalty shrinks. The modeled horizontal
	// comm time must drop ~10x between the presets.
	wl := Workload{N: 122_000_000, D: 330_000, C: 1, W: 8, NNZPerRow: 300}
	slow, err := Recommend(wl)
	if err != nil {
		t.Fatal(err)
	}
	wl.Net = cluster.TenGigabit()
	fast, err := Recommend(wl)
	if err != nil {
		t.Fatal(err)
	}
	if fast.HorizontalCommSecPerTree >= slow.HorizontalCommSecPerTree/5 {
		t.Fatalf("10 Gbps horizontal comm %v not well below 1 Gbps %v",
			fast.HorizontalCommSecPerTree, slow.HorizontalCommSecPerTree)
	}
}

func TestFromDatasetDerivesWorkload(t *testing.T) {
	ds, err := datasets.Synthetic(datasets.SyntheticConfig{
		N: 500, D: 40, C: 5, InformativeRatio: 0.5, Density: 0.5, Seed: 3,
	})
	if err != nil {
		t.Fatal(err)
	}
	w := FromDataset(ds, 6, cluster.TenGigabit())
	if w.N != 500 || w.D != 40 || w.W != 6 {
		t.Fatalf("shape %+v", w)
	}
	if w.C != 5 {
		t.Fatalf("multi-class C = %d, want 5", w.C)
	}
	if want := float64(ds.X.NNZ()) / 500; w.NNZPerRow != want {
		t.Fatalf("NNZPerRow = %v, want %v", w.NNZPerRow, want)
	}
	if w.Net != cluster.TenGigabit() {
		t.Fatalf("network %+v not propagated", w.Net)
	}
	// Binary data collapses the gradient dimension to 1.
	ds.NumClass = 2
	if w := FromDataset(ds, 6, cluster.Gigabit()); w.C != 1 {
		t.Fatalf("binary C = %d, want 1", w.C)
	}
	// The derived workload must be directly recommendable.
	if _, err := Recommend(FromDataset(ds, 6, cluster.Gigabit())); err != nil {
		t.Fatal(err)
	}
}

func TestDefaultsAndValidation(t *testing.T) {
	if _, err := Recommend(Workload{}); err == nil {
		t.Fatal("empty workload accepted")
	}
	rec, err := Recommend(Workload{N: 1000, D: 10, W: 2})
	if err != nil {
		t.Fatal(err)
	}
	if rec.Rationale == "" || rec.System == "" {
		t.Fatalf("incomplete recommendation: %+v", rec)
	}
}

func TestRationaleMentionsDrivingQuantity(t *testing.T) {
	rec, _ := Recommend(Workload{N: 697_000, D: 47_000, C: 1, W: 5})
	if !strings.Contains(rec.Rationale, "aggregation") {
		t.Fatalf("rationale lacks explanation: %q", rec.Rationale)
	}
}
