package ingest

import (
	"bytes"
	"encoding/binary"
	"math"
	"reflect"
	"strings"
	"testing"

	"vero/internal/datasets"
)

// FuzzIngestLibSVM is a differential fuzzer: whatever bytes arrive, the
// chunked parallel parser must agree with the single-threaded reference
// parser — both on acceptance and on the exact matrix produced. Small
// chunk sizes force rows onto block boundaries.
func FuzzIngestLibSVM(f *testing.F) {
	f.Add([]byte("1 0:1.5 2:nan\n0 1:inf\n"), 1)
	f.Add([]byte("2.5e-1 4294967295:1\n"), 2)
	f.Add([]byte("# only a comment\n\n"), 3)
	f.Add([]byte("1 5:0\n1 0:-0 5:1e39\n"), 7)
	f.Add([]byte("1 3:1 3:2\n"), 1)
	f.Fuzz(func(t *testing.T, data []byte, chunk int) {
		if chunk < 1 || chunk > 64 {
			chunk = 1 + (chunk&0x3f+64)&0x3f
		}
		for _, numClass := range []int{1, 2, 3} {
			ref, refErr := datasets.ReadLibSVM(bytes.NewReader(data), numClass)
			got, gotErr := ReadDataset(bytes.NewReader(data), Options{NumClass: numClass, ChunkRows: chunk})
			if (refErr == nil) != (gotErr == nil) {
				t.Fatalf("numClass %d chunk %d: reference err %v, chunked err %v", numClass, chunk, refErr, gotErr)
			}
			if refErr != nil {
				continue
			}
			if got.NumInstances() != ref.NumInstances() || got.NumFeatures() != ref.NumFeatures() {
				t.Fatalf("shape %dx%d, want %dx%d", got.NumInstances(), got.NumFeatures(), ref.NumInstances(), ref.NumFeatures())
			}
			for i := range ref.Labels {
				if math.Float32bits(got.Labels[i]) != math.Float32bits(ref.Labels[i]) {
					t.Fatalf("row %d label %v, want %v", i, got.Labels[i], ref.Labels[i])
				}
			}
			if !reflect.DeepEqual(got.X.RowPtr, ref.X.RowPtr) || !reflect.DeepEqual(got.X.Feat, ref.X.Feat) {
				t.Fatal("sparsity pattern differs from reference")
			}
			for k := range ref.X.Val {
				if math.Float32bits(got.X.Val[k]) != math.Float32bits(ref.X.Val[k]) {
					t.Fatalf("entry %d value %v, want %v", k, got.X.Val[k], ref.X.Val[k])
				}
			}
		}
	})
}

// FuzzIngestCSV feeds arbitrary bytes through the CSV parser: it must
// never panic, and accepted input must produce a structurally valid
// dataset.
func FuzzIngestCSV(f *testing.F) {
	f.Add([]byte("label,a,b\n1,0.5,2\n0,,1\n"), 4)
	f.Add([]byte("1,\"quo\"\"ted\",3\n"), 1)
	f.Add([]byte("\"1\",\"a,b\"\n"), 2)
	f.Add([]byte("1,2\r\n0,\n"), 1)
	f.Add([]byte("1,\"open\n"), 3)
	f.Fuzz(func(t *testing.T, data []byte, chunk int) {
		if chunk < 1 || chunk > 64 {
			chunk = 1 + (chunk&0x3f+64)&0x3f
		}
		ds, err := ReadDataset(bytes.NewReader(data), Options{Format: FormatCSV, NumClass: 1, ChunkRows: chunk})
		if err != nil {
			return
		}
		if ds.NumInstances() != len(ds.Labels) {
			t.Fatalf("%d rows but %d labels", ds.NumInstances(), len(ds.Labels))
		}
		for i := 0; i < ds.NumInstances(); i++ {
			feat, val := ds.X.Row(i)
			if len(feat) != len(val) {
				t.Fatalf("row %d: %d indices, %d values", i, len(feat), len(val))
			}
			for j := 1; j < len(feat); j++ {
				if feat[j] <= feat[j-1] {
					t.Fatalf("row %d not strictly sorted", i)
				}
			}
		}
		// Chunk-size independence: one block must equal many blocks.
		whole, err := ReadDataset(bytes.NewReader(data), Options{Format: FormatCSV, NumClass: 1, ChunkRows: 1 << 20})
		if err != nil {
			t.Fatalf("whole-file parse rejected chunk-accepted input: %v", err)
		}
		if !reflect.DeepEqual(whole.X.RowPtr, ds.X.RowPtr) || !reflect.DeepEqual(whole.X.Feat, ds.X.Feat) {
			t.Fatal("chunked CSV parse differs from whole-file parse")
		}
	})
}

// FuzzReadCache throws arbitrary bytes at the .vbin decoder: it must
// reject corruption gracefully (error, never panic), and a valid image
// must round-trip.
func FuzzReadCache(f *testing.F) {
	_, text := sampleLibSVMFuzz(f)
	ds, err := Ingest(strings.NewReader(text), Options{NumClass: 2})
	if err != nil {
		f.Fatal(err)
	}
	var buf bytes.Buffer
	if err := WriteCache(&buf, ds, ds.Prebin); err != nil {
		f.Fatal(err)
	}
	f.Add(buf.Bytes())
	f.Add(buf.Bytes()[:vbinHeaderSize])
	f.Add([]byte("VBIN junk"))
	// Truncation mutants: a valid image cut inside each payload section,
	// and a valid header over an empty payload.
	img := buf.Bytes()
	for _, frac := range []int{2, 3, 4, 8} {
		if cut := len(img) / frac; cut > vbinHeaderSize {
			f.Add(img[:cut])
		}
	}
	f.Add(img[:len(img)-1])
	f.Add(img[:vbinHeaderSize+4])
	// Oversized-section-table mutant: the header (uncovered by the CRC)
	// claims huge dimensions over a tiny payload.
	huge := append([]byte(nil), img[:vbinHeaderSize+16]...)
	binary.LittleEndian.PutUint64(huge[8:], 1<<39)  // rows
	binary.LittleEndian.PutUint64(huge[16:], 1<<39) // cols
	binary.LittleEndian.PutUint64(huge[24:], 1<<39) // nnz
	f.Add(huge)
	f.Fuzz(func(t *testing.T, data []byte) {
		got, err := ReadCache(bytes.NewReader(data), "fuzz")
		if err != nil {
			return
		}
		// Accepted images must be internally consistent: re-binning the
		// reconstruction with its own splits must stay in range.
		if got.NumInstances() != len(got.Labels) {
			t.Fatalf("%d rows but %d labels", got.NumInstances(), len(got.Labels))
		}
		var out bytes.Buffer
		if err := WriteCache(&out, got, got.Prebin); err != nil {
			t.Fatalf("re-encode of accepted cache failed: %v", err)
		}
		back, err := ReadCache(bytes.NewReader(out.Bytes()), "fuzz2")
		if err != nil {
			t.Fatalf("re-decode failed: %v", err)
		}
		if back.NumInstances() != got.NumInstances() || back.X.NNZ() != got.X.NNZ() {
			t.Fatal("cache round trip changed shape")
		}
	})
}

// sampleLibSVMFuzz builds a small corpus file for the cache fuzzer
// without *testing.T helpers.
func sampleLibSVMFuzz(f *testing.F) (*datasets.Dataset, string) {
	f.Helper()
	ds, err := datasets.Synthetic(datasets.SyntheticConfig{
		N: 60, D: 12, C: 2, InformativeRatio: 0.3, Density: 0.4, Seed: 2,
	})
	if err != nil {
		f.Fatal(err)
	}
	var buf bytes.Buffer
	if err := datasets.WriteLibSVM(&buf, ds); err != nil {
		f.Fatal(err)
	}
	return ds, buf.String()
}
