// Package partition implements the data-partitioning substrates of the
// paper: horizontal row ranges, greedy load-balanced column grouping
// (Section 4.2.3), and the five-step horizontal-to-vertical transformation
// of Section 4.2.1 with compressed key-value encoding, blockified column
// groups, and two-phase row indexing (Figure 9).
package partition

import (
	"fmt"
	"sort"
)

// HorizontalRanges splits n rows into w near-equal contiguous ranges
// [lo, hi), the de facto horizontal partitioning of distributed ML.
func HorizontalRanges(n, w int) [][2]int {
	if w <= 0 {
		panic(fmt.Sprintf("partition: worker count %d", w))
	}
	out := make([][2]int, w)
	base := n / w
	rem := n % w
	lo := 0
	for i := 0; i < w; i++ {
		size := base
		if i < rem {
			size++
		}
		out[i] = [2]int{lo, lo + size}
		lo += size
	}
	return out
}

// GroupColumnsBalanced assigns features to w groups so that the number of
// key-value pairs per group is as even as possible, using the greedy
// longest-processing-time heuristic the paper adopts for its NP-hard
// balancing problem (Section 4.2.3, [19]): features are sorted by
// occurrence count descending and each is placed into the currently
// lightest group. Feature ids within each group come out sorted.
func GroupColumnsBalanced(featCount []int64, w int) [][]int {
	if w <= 0 {
		panic(fmt.Sprintf("partition: worker count %d", w))
	}
	type fc struct {
		feat  int
		count int64
	}
	fcs := make([]fc, len(featCount))
	for f, c := range featCount {
		fcs[f] = fc{feat: f, count: c}
	}
	sort.Slice(fcs, func(i, j int) bool {
		if fcs[i].count != fcs[j].count {
			return fcs[i].count > fcs[j].count
		}
		return fcs[i].feat < fcs[j].feat // deterministic tie-break
	})
	groups := make([][]int, w)
	loads := make([]int64, w)
	for _, x := range fcs {
		lightest := 0
		for g := 1; g < w; g++ {
			if loads[g] < loads[lightest] {
				lightest = g
			}
		}
		groups[lightest] = append(groups[lightest], x.feat)
		loads[lightest] += x.count
	}
	for _, g := range groups {
		sort.Ints(g)
	}
	return groups
}

// GroupLoads returns the total count per group for a grouping produced by
// GroupColumnsBalanced.
func GroupLoads(groups [][]int, featCount []int64) []int64 {
	loads := make([]int64, len(groups))
	for g, feats := range groups {
		for _, f := range feats {
			loads[g] += featCount[f]
		}
	}
	return loads
}

// FeatWidthBytes returns the encoded width of a within-group feature id:
// ceil(log2(p)) bits rounded up to 1, 2 or 4 bytes (Section 4.2.1 step 3).
func FeatWidthBytes(groupSize int) int64 {
	switch {
	case groupSize <= 1<<8:
		return 1
	case groupSize <= 1<<16:
		return 2
	default:
		return 4
	}
}

// BinWidthBytes returns the encoded width of a histogram-bin index:
// q is typically a small integer, so one byte usually suffices.
func BinWidthBytes(q int) int64 {
	if q <= 1<<8 {
		return 1
	}
	return 2
}
