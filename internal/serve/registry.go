// Multi-model registry: many named, versioned models behind one atomic
// pointer, so prediction handlers resolve a model without taking a lock
// and hot-swaps never stall traffic.
//
// The registry publishes an immutable map[name]*handle through an
// atomic.Pointer. Readers (predict requests) load the pointer once,
// resolve their handle, and keep using that handle for the whole request
// — an in-flight request therefore finishes on the exact model version it
// started with, even if a swap lands mid-request. Writers (Load, Swap,
// Delete) serialize on a mutex, copy the map, and publish the new one;
// the per-name metrics and admission limiter are carried across swaps so
// accounting and MaxInFlight are properties of the served name, not of
// one version.
package serve

import (
	"fmt"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"vero/gbdt"
)

// handle is one immutable (name, version) binding of a served model. The
// metrics and inflight fields are shared across versions of the name.
type handle struct {
	name       string
	version    int
	source     string
	loadedAt   time.Time
	pred       *gbdt.Predictor
	numFeature int
	inflight   chan struct{}
	metrics    *modelMetrics
	// batcher, when non-nil, coalesces this version's single-row requests.
	// It is per-version (unlike metrics/inflight): rows it holds are scored
	// by exactly this predictor, so hot-swaps never mix versions.
	batcher *batcher
}

// Registry holds the served models. The zero value is not usable; build
// one through New or NewMulti (or newRegistry for embedding).
type Registry struct {
	mu     sync.Mutex // serializes writers; readers never take it
	models atomic.Pointer[map[string]*handle]
	opts   Options
}

func newRegistry(opts Options) *Registry {
	r := &Registry{opts: opts}
	empty := map[string]*handle{}
	r.models.Store(&empty)
	return r
}

// get resolves a model name lock-free. Callers hold the returned handle
// for the whole request so the served version cannot change under them.
func (r *Registry) get(name string) (*handle, bool) {
	h, ok := (*r.models.Load())[name]
	return h, ok
}

// Names returns the registered model names, sorted.
func (r *Registry) Names() []string {
	m := *r.models.Load()
	names := make([]string, 0, len(m))
	for n := range m {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// ModelStatus describes one registered model version.
type ModelStatus struct {
	Name       string    `json:"name"`
	Version    int       `json:"version"`
	Source     string    `json:"source"`
	LoadedAt   time.Time `json:"loaded_at"`
	NumTrees   int       `json:"num_trees"`
	NumClass   int       `json:"num_class"`
	NumFeature int       `json:"num_feature"`
	Objective  string    `json:"objective"`
}

func (h *handle) status() ModelStatus {
	return ModelStatus{
		Name:       h.name,
		Version:    h.version,
		Source:     h.source,
		LoadedAt:   h.loadedAt,
		NumTrees:   h.pred.NumTrees(),
		NumClass:   h.pred.NumClass(),
		NumFeature: h.numFeature,
		Objective:  h.pred.Objective(),
	}
}

// Status returns the status of one registered model.
func (r *Registry) Status(name string) (ModelStatus, bool) {
	h, ok := r.get(name)
	if !ok {
		return ModelStatus{}, false
	}
	return h.status(), true
}

// List returns the status of every registered model, sorted by name.
func (r *Registry) List() []ModelStatus {
	m := *r.models.Load()
	out := make([]ModelStatus, 0, len(m))
	for _, h := range m {
		out = append(out, h.status())
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// compile builds a fresh handle for model, reusing prior's shared
// per-name state when swapping.
func (r *Registry) compile(name, source string, model *gbdt.Model, prior *handle) (*handle, error) {
	popts := gbdt.PredictorOptions{
		Workers:   r.opts.Workers,
		BlockRows: r.opts.BlockRows,
		Binned:    r.opts.Binned,
	}
	pred, err := gbdt.NewPredictor(model, popts)
	if err != nil && popts.Binned {
		// Serving availability beats the binned speedup: models without
		// usable bin metadata fall back to float descent (bit-identical
		// margins either way).
		r.opts.Logger.Printf("serve: model %q: binned engine unavailable, serving float descent: %v", name, err)
		popts.Binned = false
		pred, err = gbdt.NewPredictor(model, popts)
	}
	if err != nil {
		return nil, fmt.Errorf("serve: model %q: %w", name, err)
	}
	h := &handle{
		name:       name,
		version:    1,
		source:     source,
		loadedAt:   time.Now(),
		pred:       pred,
		numFeature: model.Forest().NumFeature,
	}
	if prior != nil {
		h.version = prior.version + 1
		h.inflight = prior.inflight
		h.metrics = prior.metrics
	} else {
		h.inflight = make(chan struct{}, r.opts.MaxInFlight)
		h.metrics = &modelMetrics{}
	}
	if cfg := r.opts.batchConfig(name); cfg.MaxRows > 1 {
		h.batcher = newBatcher(pred, cfg, r.opts.clock, h.metrics)
	}
	return h, nil
}

// publish installs mutate's result as the new model map. Callers must not
// hold r.mu.
func (r *Registry) publish(mutate func(next map[string]*handle) error) error {
	r.mu.Lock()
	defer r.mu.Unlock()
	cur := *r.models.Load()
	next := make(map[string]*handle, len(cur)+1)
	for k, v := range cur {
		next[k] = v
	}
	if err := mutate(next); err != nil {
		return err
	}
	r.models.Store(&next)
	return nil
}

// Load registers a new model under name. It fails if the name is already
// taken — use Swap to replace a live model.
func (r *Registry) Load(name, source string, model *gbdt.Model) (ModelStatus, error) {
	var st ModelStatus
	err := r.publish(func(next map[string]*handle) error {
		if _, exists := next[name]; exists {
			return fmt.Errorf("serve: model %q already registered", name)
		}
		h, err := r.compile(name, source, model, nil)
		if err != nil {
			return err
		}
		next[name] = h
		st = h.status()
		return nil
	})
	return st, err
}

// Swap atomically replaces (or first registers) the model served under
// name, bumping its version. Requests already in flight finish on the
// version they resolved; new requests see the new version immediately.
// The name's request metrics and MaxInFlight limiter carry over. The
// second return is the replaced version's status, nil when the swap
// registered a fresh name — read inside the swap's critical section, so
// it is the exact predecessor even under concurrent swaps.
func (r *Registry) Swap(name, source string, model *gbdt.Model) (ModelStatus, *ModelStatus, error) {
	var st ModelStatus
	var prior *ModelStatus
	var outgoing *handle
	err := r.publish(func(next map[string]*handle) error {
		old := next[name]
		h, err := r.compile(name, source, model, old)
		if err != nil {
			return err
		}
		if old != nil {
			p := old.status()
			prior = &p
			outgoing = old
		}
		next[name] = h
		st = h.status()
		return nil
	})
	// Drain the outgoing version's coalescing queue now rather than
	// letting it wait out its deadline: the queued rows score on the old
	// predictor and answer as the old version.
	if err == nil && outgoing != nil && outgoing.batcher != nil {
		outgoing.batcher.Close()
	}
	return st, prior, err
}

// Metrics returns every model's accounting snapshot, sorted by name.
func (r *Registry) Metrics() []MetricsSnapshot {
	m := *r.models.Load()
	out := make([]MetricsSnapshot, 0, len(m))
	for _, h := range m {
		out = append(out, h.metrics.snapshot(h.name, h.version, h.batcher != nil))
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Model < out[j].Model })
	return out
}

// Delete unregisters a model. In-flight requests holding its handle
// finish normally (its coalescing queue is drained immediately); new
// requests get 404.
func (r *Registry) Delete(name string) error {
	var gone *handle
	err := r.publish(func(next map[string]*handle) error {
		h, ok := next[name]
		if !ok {
			return fmt.Errorf("serve: model %q not registered", name)
		}
		gone = h
		delete(next, name)
		return nil
	})
	if err == nil && gone.batcher != nil {
		gone.batcher.Close()
	}
	return err
}

// Close drains every model's pending micro-batches: queued rows are
// scored and answered, later single-row requests score inline. Call it
// when shutting the HTTP server down so no request is dropped.
func (r *Registry) Close() {
	for _, h := range *r.models.Load() {
		if h.batcher != nil {
			h.batcher.Close()
		}
	}
}
