package ingest

import (
	"fmt"
	"math"
	"path/filepath"
	"reflect"
	"strings"
	"testing"

	"vero/internal/datasets"
	"vero/internal/partition"
)

// writeShardCache ingests a synthetic dataset and writes it as a .vbin
// cache, returning the cache path and the fully materialized reference
// image every shard is checked against.
func writeShardCache(t *testing.T, n, d int, seed int64) (string, *datasets.Dataset) {
	t.Helper()
	_, text := sampleLibSVM(t, n, d, 2, seed)
	ds, err := Ingest(strings.NewReader(text), Options{NumClass: 2})
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "train.vbin")
	if err := WriteCacheFile(path, ds, ds.Prebin); err != nil {
		t.Fatal(err)
	}
	full, err := ReadCacheFile(path)
	if err != nil {
		t.Fatal(err)
	}
	return path, full
}

// TestShardPartitionProperty is the shard-boundary property test: for a
// sweep of worker counts over shapes that stress the boundaries — ragged
// row counts that don't divide evenly, fewer rows than workers (empty
// shards), a single feature column (all but one column group empty) —
// the W shards of a cache must form an exact partition of the full
// image: every entry lands in exactly one shard, bit-identical to the
// full load, with global shape, labels and quantization replicated.
func TestShardPartitionProperty(t *testing.T) {
	shapes := []struct {
		name string
		n, d int
	}{
		{"ragged", 103, 17},
		{"tiny-rows", 5, 6},
		{"single-feature", 60, 1},
	}
	for _, sh := range shapes {
		path, full := writeShardCache(t, sh.n, sh.d, int64(sh.n+sh.d))
		for _, w := range []int{1, 2, 3, 5, 8} {
			for _, kind := range []datasets.ShardKind{datasets.ShardRows, datasets.ShardCols} {
				t.Run(fmt.Sprintf("%s/w%d/%s", sh.name, w, kind), func(t *testing.T) {
					checkShardPartition(t, path, full, kind, w)
				})
			}
		}
	}
}

func checkShardPartition(t *testing.T, path string, full *datasets.Dataset, kind datasets.ShardKind, w int) {
	t.Helper()
	rows, cols := full.NumInstances(), full.NumFeatures()
	ranges := partition.HorizontalRanges(rows, w)
	groups := partition.GroupColumnsBalanced(full.Prebin.FeatCount, w)
	groupOf := make([]int, cols)
	for g, feats := range groups {
		for _, f := range feats {
			groupOf[f] = g
		}
	}
	ownerOf := func(row int, feat uint32) int {
		if kind == datasets.ShardRows {
			for r, rg := range ranges {
				if row >= rg[0] && row < rg[1] {
					return r
				}
			}
			t.Fatalf("row %d outside every range %v", row, ranges)
		}
		return groupOf[feat]
	}

	shards := make([]*datasets.Dataset, w)
	var shardNNZ int64
	for rank := 0; rank < w; rank++ {
		ds, err := ReadCacheShard(path, kind, rank, w)
		if err != nil {
			t.Fatalf("rank %d: %v", rank, err)
		}
		shards[rank] = ds
		shardNNZ += int64(ds.X.NNZ())

		// Global shape and replicated state survive sharding.
		if ds.NumInstances() != rows || ds.NumFeatures() != cols {
			t.Fatalf("rank %d: shape %dx%d, want %dx%d", rank, ds.NumInstances(), ds.NumFeatures(), rows, cols)
		}
		if !reflect.DeepEqual(ds.Labels, full.Labels) {
			t.Fatalf("rank %d: labels differ from full image", rank)
		}
		if !reflect.DeepEqual(ds.Prebin.Splits, full.Prebin.Splits) {
			t.Fatalf("rank %d: prebin splits differ from full image", rank)
		}
		s := ds.Shard
		if s == nil || s.Kind != kind || s.Rank != rank || s.Workers != w {
			t.Fatalf("rank %d: shard meta %+v", rank, s)
		}
		if s.Fingerprint == "" || s.Fingerprint != shards[0].Shard.Fingerprint {
			t.Fatalf("rank %d: fingerprint %q disagrees with rank 0's %q", rank, s.Fingerprint, shards[0].Shard.Fingerprint)
		}
		if s.GlobalNNZ != int64(full.X.NNZ()) {
			t.Fatalf("rank %d: GlobalNNZ %d, want %d", rank, s.GlobalNNZ, int64(full.X.NNZ()))
		}

		// No foreign entries: everything materialized belongs to this rank.
		for i := 0; i < rows; i++ {
			feat, _ := ds.X.Row(i)
			for _, f := range feat {
				if got := ownerOf(i, f); got != rank {
					t.Fatalf("rank %d holds entry (%d,%d) owned by rank %d", rank, i, f, got)
				}
			}
		}

		if kind == datasets.ShardCols {
			gnnz := s.GroupNNZ
			if len(gnnz) != w {
				t.Fatalf("rank %d: GroupNNZ is %dx?, want %dx%d", rank, len(gnnz), w, w)
			}
			var sum int64
			for _, row := range gnnz {
				for _, c := range row {
					sum += c
				}
			}
			if sum != int64(full.X.NNZ()) {
				t.Fatalf("rank %d: GroupNNZ sums to %d, want the image's %d", rank, sum, int64(full.X.NNZ()))
			}
			if !reflect.DeepEqual(gnnz, shards[0].Shard.GroupNNZ) {
				t.Fatalf("rank %d: GroupNNZ disagrees with rank 0's", rank)
			}
		}
	}

	// Exact cover: every full-image entry is present in its owner's shard
	// with the identical bit pattern, and the shard NNZs sum to the global
	// count, so with no-foreign-entries above the shards partition the
	// image exactly — no loss, no duplication, no drift.
	if shardNNZ != int64(full.X.NNZ()) {
		t.Fatalf("shards hold %d entries in total, want %d", shardNNZ, int64(full.X.NNZ()))
	}
	for i := 0; i < rows; i++ {
		feat, val := full.X.Row(i)
		for k, f := range feat {
			owner := shards[ownerOf(i, f)]
			sf, sv := owner.X.Row(i)
			found := false
			for j, g := range sf {
				if g == f {
					if math.Float32bits(sv[j]) != math.Float32bits(val[k]) {
						t.Fatalf("entry (%d,%d): shard value %v, full image %v", i, f, sv[j], val[k])
					}
					found = true
					break
				}
			}
			if !found {
				t.Fatalf("entry (%d,%d) missing from its owner's shard", i, f)
			}
		}
	}
}

// TestShardEmptyShards pins the W>rows edge: the trailing ranks get
// zero-row (or zero-column) shards that must still load cleanly with the
// global shape and replicated metadata, because a deployment larger than
// the data is legal, just wasteful.
func TestShardEmptyShards(t *testing.T) {
	path, full := writeShardCache(t, 3, 2, 7)
	for _, kind := range []datasets.ShardKind{datasets.ShardRows, datasets.ShardCols} {
		const w = 8
		for rank := 0; rank < w; rank++ {
			ds, err := ReadCacheShard(path, kind, rank, w)
			if err != nil {
				t.Fatalf("%s rank %d: %v", kind, rank, err)
			}
			if ds.NumInstances() != full.NumInstances() || ds.NumFeatures() != full.NumFeatures() {
				t.Fatalf("%s rank %d: global shape lost on an empty shard", kind, rank)
			}
		}
	}
}

// TestShardRejections covers the argument validation of ReadCacheShard.
func TestShardRejections(t *testing.T) {
	path, _ := writeShardCache(t, 10, 3, 5)
	cases := []struct {
		name          string
		kind          datasets.ShardKind
		rank, workers int
		want          string
	}{
		{"zero-workers", datasets.ShardRows, 0, 0, "worker count"},
		{"negative-rank", datasets.ShardRows, -1, 2, "outside deployment"},
		{"rank-beyond", datasets.ShardCols, 2, 2, "outside deployment"},
		{"bad-kind", datasets.ShardKind("diagonal"), 0, 2, "unknown shard kind"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := ReadCacheShard(path, tc.kind, tc.rank, tc.workers)
			if err == nil || !strings.Contains(err.Error(), tc.want) {
				t.Fatalf("err = %v, want %q", err, tc.want)
			}
		})
	}
}
