//go:build !(linux || darwin || freebsd || netbsd || openbsd || dragonfly)

package ingest

import (
	"errors"
	"os"
)

// mmapAvailable reports whether this platform supports memory-mapped
// cache views; when false MapCacheFile always uses the pread fallback.
const mmapAvailable = false

// mmapFile is unavailable on this platform; MapCacheFile falls back to
// positional reads.
func mmapFile(_ *os.File, _ int64) ([]byte, error) {
	return nil, errors.New("ingest: mmap unavailable on this platform")
}

// munmapFile matches mmapFile; it is never reached on this platform.
func munmapFile(_ []byte) error { return nil }
