package core

import (
	"math"
	"testing"

	"vero/internal/cluster"
	"vero/internal/datasets"
	"vero/internal/loss"
	"vero/internal/testutil"
	"vero/internal/tree"
)

func trainQuadrant(t *testing.T, ds *datasets.Dataset, cfg Config, w int) (*Result, *cluster.Cluster) {
	t.Helper()
	cl := cluster.New(w, cluster.Gigabit())
	res, err := Train(cl, ds, cfg)
	if err != nil {
		t.Fatalf("%v: %v", cfg.Quadrant, err)
	}
	return res, cl
}

func smallConfig(q Quadrant) Config {
	return Config{
		Quadrant: q,
		Trees:    3,
		Layers:   5,
		Splits:   16,
	}
}

// forestsEqual compares tree structures and leaf weights.
func forestsEqual(t *testing.T, a, b *tree.Forest, labelA, labelB string) {
	t.Helper()
	if a.NumTrees() != b.NumTrees() {
		t.Fatalf("%s has %d trees, %s has %d", labelA, a.NumTrees(), labelB, b.NumTrees())
	}
	for ti := range a.Trees {
		ta, tb := a.Trees[ti], b.Trees[ti]
		if len(ta.Nodes) != len(tb.Nodes) {
			t.Fatalf("tree %d: %d vs %d nodes (%s vs %s)", ti, len(ta.Nodes), len(tb.Nodes), labelA, labelB)
		}
		for ni := range ta.Nodes {
			na, nb := &ta.Nodes[ni], &tb.Nodes[ni]
			if na.Feature != nb.Feature || na.SplitBin != nb.SplitBin || na.DefaultLeft != nb.DefaultLeft {
				t.Fatalf("tree %d node %d differs: %s=(f%d,b%d,dl%v) %s=(f%d,b%d,dl%v)",
					ti, ni, labelA, na.Feature, na.SplitBin, na.DefaultLeft,
					labelB, nb.Feature, nb.SplitBin, nb.DefaultLeft)
			}
			for k := range na.Weights {
				if math.Abs(na.Weights[k]-nb.Weights[k]) > 1e-9 {
					t.Fatalf("tree %d node %d weight %d: %v vs %v", ti, ni, k, na.Weights[k], nb.Weights[k])
				}
			}
		}
	}
}

// TestQuadrantsProduceIdenticalModels is the reproduction's central
// invariant: the paper implements all four quadrants "in the same code
// base" — they are one algorithm under four data-management policies, so
// with identical hyper-parameters they must grow identical trees.
func TestQuadrantsProduceIdenticalModels(t *testing.T) {
	ds := testutil.Binary(t, 1500, 40, 0.3, 42)
	ref, _ := trainQuadrant(t, ds, smallConfig(QD2), 4)
	for _, q := range []Quadrant{QD1, QD3, QD4} {
		res, _ := trainQuadrant(t, ds, smallConfig(q), 4)
		forestsEqual(t, ref.Forest, res.Forest, "QD2", q.String())
	}
}

func TestAggregationVariantsProduceIdenticalModels(t *testing.T) {
	ds := testutil.Binary(t, 1000, 30, 0.4, 42)
	cfg := smallConfig(QD2)
	ref, _ := trainQuadrant(t, ds, cfg, 3)
	for _, agg := range []Aggregation{AggReduceScatter, AggParameterServer} {
		cfg2 := cfg
		cfg2.Aggregation = agg
		res, _ := trainQuadrant(t, ds, cfg2, 3)
		forestsEqual(t, ref.Forest, res.Forest, "all-reduce", "variant")
	}
}

func TestQD3IndexPlansProduceIdenticalModels(t *testing.T) {
	ds := testutil.Binary(t, 1000, 30, 0.4, 42)
	cfg := smallConfig(QD3)
	hybrid, _ := trainQuadrant(t, ds, cfg, 3)
	cfg.ColumnIndex = IndexColumnWise
	yggdrasil, _ := trainQuadrant(t, ds, cfg, 3)
	forestsEqual(t, hybrid.Forest, yggdrasil.Forest, "hybrid", "column-wise")
}

func TestFeatureParallelProducesIdenticalModel(t *testing.T) {
	ds := testutil.Binary(t, 1000, 30, 0.4, 42)
	ref, _ := trainQuadrant(t, ds, smallConfig(QD4), 3)
	cfg := smallConfig(QD4)
	cfg.FullCopy = true
	fp, _ := trainQuadrant(t, ds, cfg, 3)
	forestsEqual(t, ref.Forest, fp.Forest, "vero", "feature-parallel")
}

func TestWorkerCountDoesNotChangeModel(t *testing.T) {
	ds := testutil.Binary(t, 800, 25, 0.4, 42)
	ref, _ := trainQuadrant(t, ds, smallConfig(QD4), 2)
	for _, w := range []int{1, 5} {
		res, _ := trainQuadrant(t, ds, smallConfig(QD4), w)
		forestsEqual(t, ref.Forest, res.Forest, "w=2", "w=other")
	}
}

func TestTrainingImprovesBinaryMetrics(t *testing.T) {
	ds := testutil.Binary(t, 2000, 40, 0.3, 42)
	train, valid := ds.Split(0.8, 7)
	cfg := Config{Quadrant: QD4, Trees: 10, Layers: 5, Splits: 16}
	cl := cluster.New(4, cluster.Gigabit())
	res, err := Train(cl, train, cfg)
	if err != nil {
		t.Fatal(err)
	}
	scores := res.Forest.PredictCSR(valid.X)
	auc := loss.AUC(scores, valid.Labels)
	if auc < 0.75 {
		t.Fatalf("validation AUC = %v, want >= 0.75", auc)
	}
	// Later trees must improve training fit over the first tree alone.
	one := &tree.Forest{Trees: res.Forest.Trees[:1], NumClass: 1,
		LearningRate: res.Forest.LearningRate, InitScore: res.Forest.InitScore}
	llFull := loss.LogLoss(res.Forest.PredictCSR(train.X), train.Labels)
	llOne := loss.LogLoss(one.PredictCSR(train.X), train.Labels)
	if llFull >= llOne {
		t.Fatalf("10-tree logloss %v not better than 1-tree %v", llFull, llOne)
	}
}

func TestTrainingMultiClass(t *testing.T) {
	ds := testutil.Multi(t, 2000, 30, 5, 0.3, 43)
	train, valid := ds.Split(0.8, 9)
	cfg := Config{Quadrant: QD4, Trees: 8, Layers: 5, Splits: 16}
	cl := cluster.New(4, cluster.Gigabit())
	res, err := Train(cl, train, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Forest.NumClass != 5 {
		t.Fatalf("forest has %d classes", res.Forest.NumClass)
	}
	scores := res.Forest.PredictCSR(valid.X)
	acc := loss.MultiAccuracy(scores, valid.Labels, 5)
	if acc < 0.45 { // 5-class chance is 0.2
		t.Fatalf("validation accuracy = %v, want >= 0.45", acc)
	}
}

func TestTrainingRegression(t *testing.T) {
	ds, err := datasets.SyntheticRegression(1500, 20, 0.5, 0.05, 11)
	if err != nil {
		t.Fatal(err)
	}
	cfg := Config{Quadrant: QD2, Trees: 10, Layers: 5, Splits: 16, Objective: "square"}
	cl := cluster.New(3, cluster.Gigabit())
	res, err := Train(cl, ds, cfg)
	if err != nil {
		t.Fatal(err)
	}
	pred := res.Forest.PredictCSR(ds.X)
	rmse := loss.RMSE(pred, ds.Labels)
	var mean float64
	for _, y := range ds.Labels {
		mean += float64(y)
	}
	mean /= float64(len(ds.Labels))
	base := 0.0
	for _, y := range ds.Labels {
		base += (float64(y) - mean) * (float64(y) - mean)
	}
	base = math.Sqrt(base / float64(len(ds.Labels)))
	if rmse > 0.7*base {
		t.Fatalf("RMSE %v vs baseline %v: model barely learned", rmse, base)
	}
}

func TestOnTreeCallback(t *testing.T) {
	ds := testutil.Binary(t, 500, 20, 0.4, 42)
	var calls int
	var lastElapsed float64
	cfg := smallConfig(QD2)
	cfg.OnTree = func(i int, elapsed float64, tr *tree.Tree) {
		if i != calls {
			t.Fatalf("callback order: got tree %d at call %d", i, calls)
		}
		if elapsed < lastElapsed {
			t.Fatalf("elapsed went backwards: %v -> %v", lastElapsed, elapsed)
		}
		if tr == nil || tr.NumLeaves() < 1 {
			t.Fatal("callback got bad tree")
		}
		lastElapsed = elapsed
		calls++
	}
	trainQuadrant(t, ds, cfg, 2)
	if calls != cfg.Trees {
		t.Fatalf("callback ran %d times, want %d", calls, cfg.Trees)
	}
}

func TestPerTreeSeconds(t *testing.T) {
	ds := testutil.Binary(t, 500, 20, 0.4, 42)
	res, _ := trainQuadrant(t, ds, smallConfig(QD4), 2)
	if len(res.PerTreeSeconds) != 3 {
		t.Fatalf("PerTreeSeconds has %d entries", len(res.PerTreeSeconds))
	}
	for i, s := range res.PerTreeSeconds {
		if s <= 0 {
			t.Fatalf("tree %d took %v seconds", i, s)
		}
	}
	if res.CommSeconds <= 0 || res.CompSeconds <= 0 {
		t.Fatalf("breakdown %v/%v", res.CompSeconds, res.CommSeconds)
	}
}

// TestCommShapeHorizontalVsVertical checks the core claim of Section 3.1.3:
// horizontal aggregation volume scales with D while vertical placement
// volume scales with N, so high-dimensional data favors QD4.
func TestCommShapeHorizontalVsVertical(t *testing.T) {
	wide := testutil.Binary(t, 600, 400, 0.1, 42)
	cfgH := smallConfig(QD2)
	cfgV := smallConfig(QD4)
	_, clH := trainQuadrant(t, wide, cfgH, 4)
	_, clV := trainQuadrant(t, wide, cfgV, 4)
	_, commH, bytesH := clH.Stats().Totals()
	_, commV, bytesV := clV.Stats().Totals()
	if bytesH <= bytesV {
		t.Fatalf("high-dim: horizontal bytes %d not above vertical %d", bytesH, bytesV)
	}
	if commH <= commV {
		t.Fatalf("high-dim: horizontal comm time %v not above vertical %v", commH, commV)
	}

	// Low dimensionality with many instances reverses the ordering
	// (Figure 10(a)): histograms are tiny while placement bitmaps still
	// scale with N. The paper's low-dim workloads have N/D ~ 10^5; use a
	// few-feature dataset with many rows and few candidate splits.
	narrow := testutil.Binary(t, 60000, 5, 1.0, 42)
	cfgH.Splits = 8
	cfgV.Splits = 8
	cfgH.Layers = 6
	cfgV.Layers = 6
	cfgH.Trees = 2
	cfgV.Trees = 2
	_, clH2 := trainQuadrant(t, narrow, cfgH, 4)
	_, clV2 := trainQuadrant(t, narrow, cfgV, 4)
	trainBytes := func(cl *cluster.Cluster) int64 {
		var b int64
		for _, ph := range []string{phaseHist, phaseSplit, phaseNode, phaseUpdate, phaseGrad} {
			p := cl.Stats().Phase(ph)
			b += p.TotalBytes()
		}
		return b
	}
	if h, v := trainBytes(clH2), trainBytes(clV2); h >= v {
		t.Fatalf("low-dim: horizontal train bytes %d not below vertical %d", h, v)
	}
}

// TestMemoryShape checks Section 3.1.2: horizontal histogram memory is ~W
// times vertical.
func TestMemoryShape(t *testing.T) {
	ds := testutil.Binary(t, 600, 200, 0.2, 42)
	_, clH := trainQuadrant(t, ds, smallConfig(QD2), 4)
	_, clV := trainQuadrant(t, ds, smallConfig(QD4), 4)
	h := clH.Stats().Mem("histogram").MaxPeak()
	v := clV.Stats().Mem("histogram").MaxPeak()
	if h < 3*v {
		t.Fatalf("horizontal histogram peak %d not >= 3x vertical %d (W=4)", h, v)
	}
}

func TestConfigValidation(t *testing.T) {
	ds := testutil.Binary(t, 100, 10, 0.5, 42)
	cl := cluster.New(2, cluster.Gigabit())
	if _, err := Train(cl, ds, Config{}); err == nil {
		t.Fatal("accepted zero quadrant")
	}
	if _, err := Train(cl, ds, Config{Quadrant: QD2, Layers: 1}); err == nil {
		t.Fatal("accepted L=1")
	}
	if _, err := Train(cl, ds, Config{Quadrant: QD2, FullCopy: true}); err == nil {
		t.Fatal("accepted FullCopy outside QD4")
	}
	if _, err := Train(cl, ds, Config{Quadrant: QD2, Objective: "nope"}); err == nil {
		t.Fatal("accepted unknown objective")
	}
}

func TestQuadrantString(t *testing.T) {
	for q := QD1; q <= QD4; q++ {
		if q.String() == "" {
			t.Fatal("empty quadrant name")
		}
	}
	if !QD3.Vertical() || !QD4.Vertical() || QD1.Vertical() || QD2.Vertical() {
		t.Fatal("Vertical() wrong")
	}
}

func TestTransformBytesReported(t *testing.T) {
	ds := testutil.Binary(t, 500, 30, 0.3, 42)
	res, _ := trainQuadrant(t, ds, smallConfig(QD4), 3)
	b := res.TransformBytes
	if b.NaiveShuffle == 0 || b.BlockifiedShuffle == 0 || b.LabelBroadcast == 0 {
		t.Fatalf("transform bytes not reported: %+v", b)
	}
}
