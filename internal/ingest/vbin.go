package ingest

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"math"
	"os"
	"path/filepath"
	"strings"

	"vero/internal/datasets"
	"vero/internal/failpoint"
	"vero/internal/sparse"
)

// The .vbin binned binary cache format, version 1. All integers are
// little-endian; the byte-level specification lives in docs/DATA.md.
//
// A 64-byte header is followed by seven payload sections at offsets
// computable from the header alone (an mmap-friendly property: every
// section is a fixed-width array):
//
//	split counts   cols      x uint32
//	split values   sum(cnt)  x float32
//	feature counts cols      x uint64
//	colPtr         cols+1    x uint64
//	instances      nnz       x uint32
//	bins           nnz       x binWidth bytes
//	labels         rows      x float32
const (
	vbinMagic      = "VBIN"
	vbinVersion    = 1
	vbinHeaderSize = 64
)

var crcTable = crc32.MakeTable(crc32.Castagnoli)

// ErrCacheCorrupt marks a .vbin image rejected for structural corruption
// — truncation, checksum mismatch, out-of-range section tables. Every
// such rejection wraps it, so callers distinguish "rebuild the cache"
// from I/O errors with errors.Is.
var ErrCacheCorrupt = errors.New("ingest: cache corrupt")

// corruptf wraps ErrCacheCorrupt with the specific structural complaint.
func corruptf(format string, args ...any) error {
	return fmt.Errorf("%w: %s", ErrCacheCorrupt, fmt.Sprintf(format, args...))
}

// Failpoint names of the ingest seams (see internal/failpoint).
const (
	// FailpointReadCache fails a .vbin cache read.
	FailpointReadCache = "ingest.readcache"
	// FailpointParseBlock fails one parsed block inside the scan worker
	// pool ("N*error" fails the Nth block in arrival order).
	FailpointParseBlock = "ingest.parseblock"
)

// CacheMismatchError marks a structurally valid cache whose parameters
// (version, sketch eps, q, class count) do not match what the caller
// needs. Callers treat it as a miss and rebuild.
type CacheMismatchError struct{ Reason string }

// Error implements error.
func (e *CacheMismatchError) Error() string { return "ingest: cache mismatch: " + e.Reason }

// WriteCache bins the dataset with its prebin's candidate splits and
// writes the .vbin image. The prebin is required: it carries the splits
// the cache stores and the (eps, q) identity of the binning.
func WriteCache(w io.Writer, ds *datasets.Dataset, pb *datasets.Prebin) error {
	if pb == nil {
		return fmt.Errorf("ingest: cache write requires a prebin (see Ingest or Prebinned)")
	}
	if len(pb.Splits) != ds.NumFeatures() || len(pb.FeatCount) != ds.NumFeatures() {
		return fmt.Errorf("ingest: prebin covers %d features, dataset has %d", len(pb.Splits), ds.NumFeatures())
	}
	binner := &sparse.Binner{Splits: pb.Splits}
	binned, err := binner.BinCSR(ds.X)
	if err != nil {
		return fmt.Errorf("ingest: bin: %w", err)
	}
	csc := binned.ToCSC()

	rows, cols, nnz := ds.NumInstances(), ds.NumFeatures(), csc.NNZ()
	splitsTotal := 0
	maxBins := 0
	for _, s := range pb.Splits {
		splitsTotal += len(s)
		if len(s) > maxBins {
			maxBins = len(s)
		}
	}
	binWidth := 1
	if maxBins > 1<<8 {
		binWidth = 2
	}

	payload := make([]byte, 4*cols+4*splitsTotal+8*cols+8*(cols+1)+4*nnz+binWidth*nnz+4*rows)
	off := 0
	for _, s := range pb.Splits {
		binary.LittleEndian.PutUint32(payload[off:], uint32(len(s)))
		off += 4
	}
	for _, s := range pb.Splits {
		for _, v := range s {
			binary.LittleEndian.PutUint32(payload[off:], math.Float32bits(v))
			off += 4
		}
	}
	for _, c := range pb.FeatCount {
		binary.LittleEndian.PutUint64(payload[off:], uint64(c))
		off += 8
	}
	for _, p := range csc.ColPtr {
		binary.LittleEndian.PutUint64(payload[off:], uint64(p))
		off += 8
	}
	for _, i := range csc.Inst {
		binary.LittleEndian.PutUint32(payload[off:], i)
		off += 4
	}
	if binWidth == 1 {
		for _, b := range csc.Bin {
			payload[off] = byte(b)
			off++
		}
	} else {
		for _, b := range csc.Bin {
			binary.LittleEndian.PutUint16(payload[off:], b)
			off += 2
		}
	}
	for _, y := range ds.Labels {
		binary.LittleEndian.PutUint32(payload[off:], math.Float32bits(y))
		off += 4
	}

	header := make([]byte, vbinHeaderSize)
	copy(header, vbinMagic)
	binary.LittleEndian.PutUint32(header[4:], vbinVersion)
	binary.LittleEndian.PutUint64(header[8:], uint64(rows))
	binary.LittleEndian.PutUint64(header[16:], uint64(cols))
	binary.LittleEndian.PutUint64(header[24:], uint64(nnz))
	binary.LittleEndian.PutUint32(header[32:], uint32(ds.NumClass))
	binary.LittleEndian.PutUint32(header[36:], uint32(pb.Q))
	binary.LittleEndian.PutUint64(header[40:], math.Float64bits(pb.SketchEps))
	binary.LittleEndian.PutUint32(header[48:], uint32(binWidth))
	binary.LittleEndian.PutUint32(header[52:], crc32.Checksum(payload, crcTable))
	if _, err := w.Write(header); err != nil {
		return fmt.Errorf("ingest: cache write: %w", err)
	}
	if _, err := w.Write(payload); err != nil {
		return fmt.Errorf("ingest: cache write: %w", err)
	}
	return nil
}

// WriteCacheFile writes the cache atomically: a temp file in the target
// directory, then a rename, so concurrent readers never see a torn image.
func WriteCacheFile(path string, ds *datasets.Dataset, pb *datasets.Prebin) error {
	tmp, err := os.CreateTemp(filepath.Dir(path), filepath.Base(path)+".tmp*")
	if err != nil {
		return fmt.Errorf("ingest: cache write: %w", err)
	}
	defer os.Remove(tmp.Name())
	if err := WriteCache(tmp, ds, pb); err != nil {
		tmp.Close()
		return err
	}
	if err := tmp.Close(); err != nil {
		return fmt.Errorf("ingest: cache write: %w", err)
	}
	return os.Rename(tmp.Name(), path)
}

// vbinHeader is the decoded 64-byte .vbin header. The header sits outside
// the payload checksum, so every field here has passed only plausibility
// checks — sizes must still be cross-checked against the real payload
// length (checkPayloadSize) before allocation.
type vbinHeader struct {
	rows, cols int
	nnz        int64
	numClass   int
	q          int
	eps        float64
	binWidth   int
	crc        uint32
}

// parseVbinHeader validates a 64-byte header prefix: magic, version,
// dimension plausibility and bin width. It reads nothing beyond buf, so
// callers can reject corrupt or forged headers from a capped prefix read
// without allocating room for the claimed payload.
func parseVbinHeader(buf []byte) (vbinHeader, error) {
	var h vbinHeader
	if len(buf) < vbinHeaderSize || string(buf[:4]) != vbinMagic {
		return h, corruptf("not a .vbin cache (bad magic)")
	}
	if v := binary.LittleEndian.Uint32(buf[4:]); v != vbinVersion {
		return h, &CacheMismatchError{Reason: fmt.Sprintf("cache version %d, want %d", v, vbinVersion)}
	}
	rows64 := binary.LittleEndian.Uint64(buf[8:])
	cols64 := binary.LittleEndian.Uint64(buf[16:])
	nnz64 := binary.LittleEndian.Uint64(buf[24:])
	// The header is outside the checksum's reach of plausibility: bound the
	// dimensions before any size arithmetic or allocation can overflow. The
	// exact per-section length checks downstream do the rest.
	const maxDim = 1 << 40
	if rows64 > maxDim || cols64 > maxDim || nnz64 > maxDim {
		return h, corruptf("implausible shape %dx%d, nnz %d", rows64, cols64, nnz64)
	}
	h.rows = int(rows64)
	h.cols = int(cols64)
	h.nnz = int64(nnz64)
	h.numClass = int(binary.LittleEndian.Uint32(buf[32:]))
	h.q = int(binary.LittleEndian.Uint32(buf[36:]))
	h.eps = math.Float64frombits(binary.LittleEndian.Uint64(buf[40:]))
	h.binWidth = int(binary.LittleEndian.Uint32(buf[48:]))
	h.crc = binary.LittleEndian.Uint32(buf[52:])
	if h.binWidth != 1 && h.binWidth != 2 {
		return h, corruptf("bin width %d", h.binWidth)
	}
	return h, nil
}

// minPayload is the smallest payload length consistent with the header
// (the split-values section has unknown length until the split counts are
// decoded, so this is a lower bound).
func (h vbinHeader) minPayload() int64 {
	c := int64(h.cols)
	return 4*c + 8*c + 8*(c+1) + 4*h.nnz + int64(h.binWidth)*h.nnz + 4*int64(h.rows)
}

// checkPayloadSize cross-checks the header's claimed shape against the
// actual payload size: the checksum covers only the payload, so a corrupt
// header claiming huge dimensions must be rejected here, not discovered
// inside a multi-GB allocation further down.
func (h vbinHeader) checkPayloadSize(payloadLen int64) error {
	if payloadLen < h.minPayload() {
		return corruptf("header claims shape %dx%d with %d nonzeros (needs >= %d payload bytes), file holds %d",
			h.rows, h.cols, h.nnz, h.minPayload(), payloadLen)
	}
	return nil
}

// ReadCache decodes a .vbin image into a dataset whose values are bin
// representatives (the upper boundary of each value's bin, which re-bins
// to the identical bin index) and whose Prebin carries the cached splits
// with Quantized set. Training the result with the cache's (eps, q)
// yields a model bit-identical to training from the original source.
//
// The 64-byte header is read and validated on its own before the payload:
// a corrupt or forged header fails from the prefix read alone, without
// the reader ever being asked for (or memory allocated for) the body.
func ReadCache(r io.Reader, name string) (*datasets.Dataset, error) {
	if err := failpoint.Inject(FailpointReadCache); err != nil {
		return nil, fmt.Errorf("ingest: cache read: %w", err)
	}
	var hbuf [vbinHeaderSize]byte
	if n, err := io.ReadFull(r, hbuf[:]); err != nil {
		if errors.Is(err, io.EOF) || errors.Is(err, io.ErrUnexpectedEOF) {
			// A sub-header prefix can never parse; report whichever
			// structural complaint the partial header earns.
			_, herr := parseVbinHeader(hbuf[:n])
			return nil, herr
		}
		return nil, fmt.Errorf("ingest: cache read: %w", err)
	}
	h, err := parseVbinHeader(hbuf[:])
	if err != nil {
		return nil, err
	}
	payload, err := io.ReadAll(r)
	if err != nil {
		return nil, fmt.Errorf("ingest: cache read: %w", err)
	}
	if err := h.checkPayloadSize(int64(len(payload))); err != nil {
		return nil, err
	}
	rows, cols, nnz := h.rows, h.cols, int(h.nnz)
	numClass, q, eps, binWidth := h.numClass, h.q, h.eps, h.binWidth
	if got := crc32.Checksum(payload, crcTable); got != h.crc {
		return nil, corruptf("checksum %08x, want %08x", got, h.crc)
	}

	off := 0
	need := func(n int) error {
		if off+n > len(payload) {
			return corruptf("truncated payload")
		}
		return nil
	}
	if err := need(4 * cols); err != nil {
		return nil, err
	}
	counts := make([]int, cols)
	splitsTotal := 0
	for f := range counts {
		counts[f] = int(binary.LittleEndian.Uint32(payload[off:]))
		splitsTotal += counts[f]
		if splitsTotal > len(payload) {
			return nil, corruptf("truncated payload")
		}
		off += 4
	}
	if err := need(4 * splitsTotal); err != nil {
		return nil, err
	}
	splits := make([][]float32, cols)
	for f, n := range counts {
		if n == 0 {
			continue
		}
		s := make([]float32, n)
		for k := range s {
			s[k] = math.Float32frombits(binary.LittleEndian.Uint32(payload[off:]))
			off += 4
		}
		splits[f] = s
	}
	if err := need(8 * cols); err != nil {
		return nil, err
	}
	featCount := make([]int64, cols)
	for f := range featCount {
		featCount[f] = int64(binary.LittleEndian.Uint64(payload[off:]))
		off += 8
	}
	if err := need(8 * (cols + 1)); err != nil {
		return nil, err
	}
	colPtr := make([]int64, cols+1)
	for j := range colPtr {
		colPtr[j] = int64(binary.LittleEndian.Uint64(payload[off:]))
		off += 8
	}
	if colPtr[0] != 0 || (cols >= 0 && colPtr[cols] != int64(nnz)) {
		return nil, corruptf("colPtr endpoints [%d,%d], want [0,%d]", colPtr[0], colPtr[cols], nnz)
	}
	if err := need(4 * nnz); err != nil {
		return nil, err
	}
	inst := make([]uint32, nnz)
	for k := range inst {
		inst[k] = binary.LittleEndian.Uint32(payload[off:])
		off += 4
	}
	if err := need(binWidth * nnz); err != nil {
		return nil, err
	}
	bins := make([]uint16, nnz)
	if binWidth == 1 {
		for k := range bins {
			bins[k] = uint16(payload[off])
			off++
		}
	} else {
		for k := range bins {
			bins[k] = binary.LittleEndian.Uint16(payload[off:])
			off += 2
		}
	}
	if err := need(4 * rows); err != nil {
		return nil, err
	}
	labels := make([]float32, rows)
	for i := range labels {
		labels[i] = math.Float32frombits(binary.LittleEndian.Uint32(payload[off:]))
		off += 4
	}
	if off != len(payload) {
		return nil, corruptf("%d trailing bytes", len(payload)-off)
	}

	// Transpose the binned columns back into a raw CSR of representative
	// values: entry (i, f, b) becomes value splits[f][b] (NaN for features
	// binned without splits, i.e. NaN-only columns).
	rowCnt := make([]int64, rows+1)
	for j := 0; j < cols; j++ {
		if colPtr[j] > colPtr[j+1] || colPtr[j+1] > int64(nnz) {
			return nil, corruptf("colPtr not monotone at column %d", j)
		}
		for k := colPtr[j]; k < colPtr[j+1]; k++ {
			if int(inst[k]) >= rows {
				return nil, corruptf("instance %d out of range (rows=%d)", inst[k], rows)
			}
			rowCnt[inst[k]+1]++
		}
	}
	rowPtr := make([]int64, rows+1)
	for i := 0; i < rows; i++ {
		rowPtr[i+1] = rowPtr[i] + rowCnt[i+1]
	}
	feat := make([]uint32, nnz)
	val := make([]float32, nnz)
	next := make([]int64, rows)
	copy(next, rowPtr[:rows])
	nan := float32(math.NaN())
	for j := 0; j < cols; j++ {
		s := splits[j]
		for k := colPtr[j]; k < colPtr[j+1]; k++ {
			i := inst[k]
			p := next[i]
			feat[p] = uint32(j)
			if int(bins[k]) < len(s) {
				val[p] = s[bins[k]]
			} else if len(s) == 0 && bins[k] == 0 {
				val[p] = nan
			} else {
				return nil, corruptf("bin %d of feature %d out of range (%d bins)", bins[k], j, len(s))
			}
			next[i] = p + 1
		}
	}
	x, err := sparse.NewCSR(rows, cols, rowPtr, feat, val)
	if err != nil {
		return nil, corruptf("%v", err)
	}
	task := datasets.TaskRegression
	switch {
	case numClass == 2:
		task = datasets.TaskBinary
	case numClass > 2:
		task = datasets.TaskMulti
	case numClass < 1:
		return nil, corruptf("numClass %d", numClass)
	}
	return &datasets.Dataset{
		Name:     name,
		X:        x,
		Labels:   labels,
		NumClass: numClass,
		Task:     task,
		Prebin: &datasets.Prebin{
			SketchEps: eps,
			Q:         q,
			Splits:    splits,
			FeatCount: featCount,
			Quantized: true,
		},
	}, nil
}

// ReadCacheFile reads a .vbin cache from disk; the dataset is named after
// the file. The header is validated against the file's real size before
// the body is read, so a forged header cannot trigger a huge allocation.
func ReadCacheFile(path string) (*datasets.Dataset, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("ingest: %w", err)
	}
	defer f.Close()
	var hbuf [vbinHeaderSize]byte
	if _, err := io.ReadFull(f, hbuf[:]); err != nil {
		if errors.Is(err, io.EOF) || errors.Is(err, io.ErrUnexpectedEOF) {
			return nil, corruptf("file shorter than the %d-byte header", vbinHeaderSize)
		}
		return nil, fmt.Errorf("ingest: cache read: %w", err)
	}
	h, err := parseVbinHeader(hbuf[:])
	if err != nil {
		return nil, err
	}
	st, err := f.Stat()
	if err != nil {
		return nil, fmt.Errorf("ingest: cache read: %w", err)
	}
	if err := h.checkPayloadSize(st.Size() - vbinHeaderSize); err != nil {
		return nil, err
	}
	if _, err := f.Seek(0, io.SeekStart); err != nil {
		return nil, fmt.Errorf("ingest: cache read: %w", err)
	}
	name := strings.TrimSuffix(filepath.Base(path), filepath.Ext(path))
	return ReadCache(f, name)
}
