package core

import (
	"strings"
	"testing"

	"vero/internal/datasets"
	"vero/internal/sparse"
)

// TestSetDefaults drives Config.setDefaults through its validation and
// default-filling paths.
func TestSetDefaults(t *testing.T) {
	cases := []struct {
		name    string
		cfg     Config
		wantErr string
		check   func(t *testing.T, c Config)
	}{
		{name: "zero quadrant", cfg: Config{}, wantErr: "unknown quadrant"},
		{name: "quadrant too high", cfg: Config{Quadrant: QD4 + 1}, wantErr: "unknown quadrant"},
		{name: "quadrant below auto", cfg: Config{Quadrant: -2}, wantErr: "unknown quadrant"},
		{name: "negative trees", cfg: Config{Quadrant: QD2, Trees: -1}, wantErr: "invalid T"},
		{name: "single layer", cfg: Config{Quadrant: QD2, Layers: 1}, wantErr: "invalid T"},
		{name: "one split", cfg: Config{Quadrant: QD2, Splits: 1}, wantErr: "invalid T"},
		{
			name: "splits beyond bin budget",
			cfg:  Config{Quadrant: QD2, Splits: sparse.MaxBins + 1}, wantErr: "invalid T",
		},
		{name: "full copy on QD2", cfg: Config{Quadrant: QD2, FullCopy: true}, wantErr: "FullCopy"},
		{name: "full copy on auto", cfg: Config{Quadrant: QuadrantAuto, FullCopy: true}, wantErr: "FullCopy"},
		{
			name: "defaults filled",
			cfg:  Config{Quadrant: QD1},
			check: func(t *testing.T, c Config) {
				if c.Trees != 100 || c.Layers != 8 || c.Splits != 20 {
					t.Fatalf("T/L/q defaults = %d/%d/%d", c.Trees, c.Layers, c.Splits)
				}
				if c.LearningRate != 0.3 || c.Lambda != 1 || c.SketchEps != 0.01 {
					t.Fatalf("eta/lambda/eps defaults = %v/%v/%v", c.LearningRate, c.Lambda, c.SketchEps)
				}
			},
		},
		{
			name: "auto quadrant accepted",
			cfg:  Config{Quadrant: QuadrantAuto},
			check: func(t *testing.T, c Config) {
				if c.Quadrant != QuadrantAuto {
					t.Fatalf("quadrant rewritten to %v", c.Quadrant)
				}
			},
		},
		{
			name: "explicit values kept",
			cfg:  Config{Quadrant: QD4, Trees: 7, Layers: 3, Splits: 9, LearningRate: 0.1, Lambda: 2},
			check: func(t *testing.T, c Config) {
				if c.Trees != 7 || c.Layers != 3 || c.Splits != 9 || c.LearningRate != 0.1 || c.Lambda != 2 {
					t.Fatalf("explicit values rewritten: %+v", c)
				}
			},
		},
		{name: "full copy on QD4", cfg: Config{Quadrant: QD4, FullCopy: true}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			cfg := tc.cfg
			err := cfg.setDefaults()
			if tc.wantErr != "" {
				if err == nil || !strings.Contains(err.Error(), tc.wantErr) {
					t.Fatalf("error = %v, want one containing %q", err, tc.wantErr)
				}
				return
			}
			if err != nil {
				t.Fatal(err)
			}
			if tc.check != nil {
				tc.check(t, cfg)
			}
		})
	}
}

// TestObjectiveResolution drives the objective/NumClass resolution matrix:
// empty objectives are inferred from the dataset, binary objectives
// upgrade to softmax on multi-class data, and impossible combinations are
// errors.
func TestObjectiveResolution(t *testing.T) {
	cases := []struct {
		name      string
		objective string
		cfgClass  int
		dsClass   int
		wantName  string
		wantC     int
		wantErr   string
	}{
		{name: "regression default", dsClass: 1, wantName: "square", wantC: 1},
		{name: "binary default", dsClass: 2, wantName: "logistic", wantC: 1},
		{name: "multiclass default", dsClass: 5, wantName: "softmax", wantC: 5},
		{name: "logistic upgraded", objective: "logistic", dsClass: 4, wantName: "softmax", wantC: 4},
		{name: "explicit square", objective: "square", dsClass: 1, wantName: "square", wantC: 1},
		{name: "explicit softmax", objective: "softmax", dsClass: 3, wantName: "softmax", wantC: 3},
		{name: "config class overrides dataset", objective: "softmax", cfgClass: 6, dsClass: 3, wantName: "softmax", wantC: 6},
		{name: "softmax on regression data", objective: "softmax", dsClass: 1, wantErr: "softmax needs >= 2 classes"},
		{name: "unknown objective", objective: "hinge", dsClass: 2, wantErr: `unknown objective "hinge"`},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			ds := &datasets.Dataset{NumClass: tc.dsClass}
			obj, err := objective(ds, Config{Objective: tc.objective, NumClass: tc.cfgClass})
			if tc.wantErr != "" {
				if err == nil || !strings.Contains(err.Error(), tc.wantErr) {
					t.Fatalf("error = %v, want one containing %q", err, tc.wantErr)
				}
				return
			}
			if err != nil {
				t.Fatal(err)
			}
			if obj.Name() != tc.wantName {
				t.Fatalf("objective %q, want %q", obj.Name(), tc.wantName)
			}
			if obj.NumClass() != tc.wantC {
				t.Fatalf("gradient dimension %d, want %d", obj.NumClass(), tc.wantC)
			}
		})
	}
}
