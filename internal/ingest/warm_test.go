package ingest

import (
	"os"
	"path/filepath"
	"testing"
	"time"
)

// TestWarmCacheFasterThanCold is the acceptance guard for the cache: the
// warm path must beat the cold parse by a wide margin (the benchmark
// BenchmarkIngestWarmVsCold measures ~10x; this test asserts a
// deliberately loose 1.5x best-of-three so CI noise cannot flake it).
func TestWarmCacheFasterThanCold(t *testing.T) {
	if testing.Short() {
		t.Skip("timing comparison")
	}
	dir := t.TempDir()
	_, text := sampleLibSVM(t, 20000, 100, 2, 99)
	src := filepath.Join(dir, "train.libsvm")
	if err := os.WriteFile(src, []byte(text), 0o644); err != nil {
		t.Fatal(err)
	}
	ds, err := IngestFile(src, Options{NumClass: 2})
	if err != nil {
		t.Fatal(err)
	}
	vbin := filepath.Join(dir, "train.vbin")
	if err := WriteCacheFile(vbin, ds, ds.Prebin); err != nil {
		t.Fatal(err)
	}

	best := func(f func() error) time.Duration {
		bestD := time.Duration(1<<63 - 1)
		for i := 0; i < 3; i++ {
			t0 := time.Now()
			if err := f(); err != nil {
				t.Fatal(err)
			}
			if d := time.Since(t0); d < bestD {
				bestD = d
			}
		}
		return bestD
	}
	cold := best(func() error { _, err := IngestFile(src, Options{NumClass: 2}); return err })
	warm := best(func() error { _, err := ReadCacheFile(vbin); return err })
	t.Logf("cold %v, warm %v (%.1fx)", cold, warm, float64(cold)/float64(warm))
	if float64(cold) < 1.5*float64(warm) {
		t.Errorf("warm cache load (%v) is not >=1.5x faster than cold parse (%v)", warm, cold)
	}
}
