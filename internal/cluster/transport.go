package cluster

import (
	"fmt"
	"time"
)

// Transport moves collective payloads between the processes of a
// distributed cluster. The simulated backend needs no transport at all —
// every worker lives in one process and reductions happen in memory — so
// a nil transport selects the simulation. A real backend (such as
// tcptransport) carries each rank's contributions over the network.
//
// Every method is called with identical arguments, in identical order, at
// every rank: the training loop is SPMD and each process replays the same
// deterministic sequence of collectives. A transport may (and tcptransport
// does) verify this alignment on the wire and fail fast on divergence.
//
// Reduction order contract: any method that sums contributions MUST
// accumulate them in rank order 0..W-1 starting from zero — the exact
// order of the simulation's sumAlignedInto — so that models trained over a
// real transport are bit-identical to simulated runs (floating-point
// addition does not associate).
type Transport interface {
	// Workers returns the deployment size W.
	Workers() int
	// Rank returns this process's rank in [0, W).
	Rank() int

	// AllReduce completes a global element-wise sum: buf holds this rank's
	// contribution on entry and the rank-ordered global sum on return, at
	// every rank.
	AllReduce(phase string, buf []float64) error
	// ReduceScatter is AllReduce minus the final all-gather: segment s of
	// bounds (bounds[s] to bounds[s+1], owned by rank s) is globally
	// reduced at its owner only; everything else keeps the local
	// contribution. len(bounds)-1 may be less than W, leaving high ranks
	// owning nothing. bounds must be identical at every rank.
	ReduceScatter(phase string, buf []float64, bounds []int) error
	// Gather reduces buf at the root rank only; other ranks keep their
	// local contribution.
	Gather(phase string, buf []float64, root int) error
	// AllGather exchanges fixed-size opaque records: recs[Rank()] is this
	// rank's contribution, and every other entry is overwritten with the
	// corresponding rank's record. All entries must share one length.
	AllGather(phase string, recs [][]byte) error
	// Broadcast moves buf from the root rank to every peer: on entry only
	// the root's buf is meaningful; on return every rank holds the root's
	// bytes. len(buf) must be identical at every rank.
	Broadcast(phase string, buf []byte, root int) error
	// Shadow moves synthetic traffic shaped like a charged collective:
	// send[i][j] payload bytes from rank i to rank j (diagonal ignored).
	// It exists so that charge-only collectives of the simulation
	// (Broadcast, Shuffle, ChargeComm...) put real, measurable bytes on
	// the wire in exactly the volume the alpha-beta model accounts.
	Shadow(phase string, send [][]int64) error

	// PayloadBytesSent returns the cumulative collective payload bytes
	// this rank has sent (excluding framing overhead); the cluster diffs
	// it around each operation to attribute measured bytes to phases.
	PayloadBytesSent() int64
	// WireBytes returns the raw bytes written to the network including
	// framing — what a packet counter on the NIC would see.
	WireBytes() int64

	// Err returns the transport's sticky error: the first failure any
	// operation hit. Once set, every subsequent operation fails fast.
	Err() error
	// Close releases connections; pending operations fail.
	Close() error
}

// WithTransport attaches a real transport to the cluster: collectives move
// payloads through it (in simulation-identical reduction order) while
// still charging the alpha-beta model, and Stats additionally records
// measured bytes and wall-clock per phase. The cluster then represents
// one rank of a W-process deployment; see ParallelLocal, Lead and
// HostsWorker for the work-placement seams.
func WithTransport(tr Transport) Option {
	return func(c *Cluster) {
		if tr.Workers() != c.w {
			panic(fmt.Sprintf("cluster: transport has %d workers, cluster has %d", tr.Workers(), c.w))
		}
		c.tr = tr
	}
}

// Distributed reports whether a real transport is attached.
func (c *Cluster) Distributed() bool { return c.tr != nil }

// Rank returns this process's rank: 0 on the simulated backend, which
// hosts every worker in-process.
func (c *Cluster) Rank() int {
	if c.tr == nil {
		return 0
	}
	return c.tr.Rank()
}

// HostsWorker reports whether logical worker w runs in this process. The
// simulation hosts all workers; a distributed cluster hosts exactly its
// rank (one logical worker per process — partial sums over several local
// workers would change the floating-point reduction order).
func (c *Cluster) HostsWorker(w int) bool {
	if c.tr == nil {
		return true
	}
	return w == c.tr.Rank()
}

// LocalWorkers returns the logical workers hosted by this process, in
// ascending order.
func (c *Cluster) LocalWorkers() []int {
	if c.tr == nil {
		ws := make([]int, c.w)
		for i := range ws {
			ws[i] = i
		}
		return ws
	}
	return []int{c.tr.Rank()}
}

// Lead reports whether worker w is this process's leader for replicated
// state: code that in the simulation ran once "at worker 0" (because the
// result is logically replicated) must instead run once per process on a
// distributed cluster — each process materializes the state locally.
func (c *Cluster) Lead(w int) bool {
	if c.tr == nil {
		return w == 0
	}
	return w == c.tr.Rank()
}

// ParallelLocal runs fn for the workers hosted by this process: all of
// them (exactly Parallel) on the simulation, only this rank's worker on a
// distributed cluster. It is the placement seam for sharded work — per-row
// or per-feature-group loops where each rank computes only its own shard.
// Loops whose side effects every rank needs (replicated state) must keep
// using Parallel.
func (c *Cluster) ParallelLocal(phase string, fn func(worker int)) {
	if c.tr == nil {
		c.Parallel(phase, fn)
		return
	}
	r := c.tr.Rank()
	start := time.Now()
	fn(r)
	e := time.Since(start)
	c.stats.addWorkerComp(r, e)
	c.stats.addComp(phase, e.Seconds())
}

// Err returns the transport's sticky error (nil on the simulation). After
// a transport failure, collectives degrade to their local contributions
// without blocking; callers poll Err at a consistency boundary (the
// trainer does so per tree) and abort with the rank-attributed cause.
func (c *Cluster) Err() error {
	if c.tr == nil {
		return nil
	}
	return c.tr.Err()
}

// Close releases the transport (no-op on the simulation).
func (c *Cluster) Close() error {
	if c.tr == nil {
		return nil
	}
	return c.tr.Close()
}

// WireBytes returns the raw bytes this rank wrote to the network,
// including frame headers and checksums (zero on the simulation). The
// per-phase measured bytes count payloads only, so this is the end-to-end
// framing overhead check.
func (c *Cluster) WireBytes() int64 {
	if c.tr == nil {
		return 0
	}
	return c.tr.WireBytes()
}

// transportOp runs one wire operation, attributing its payload bytes and
// wall-clock to the phase's measured record. Transport failures latch into
// the transport's sticky error (surfaced by Err); the collective then
// falls back to its local contribution so the caller can reach a
// consistency boundary without blocking.
func (c *Cluster) transportOp(phase string, fn func() error) {
	before := c.tr.PayloadBytesSent()
	start := time.Now()
	err := fn()
	c.stats.addMeasured(phase, c.tr.PayloadBytesSent()-before, time.Since(start).Seconds())
	_ = err // sticky in the transport; surfaced via Err()
}

// SyncMeasured merges the per-rank measured communication records across
// the deployment: measured bytes count what each rank sent, so the
// per-phase global volume is their sum, and measured wall-clock is the
// slowest rank's (the makespan). After SyncMeasured, every rank's Stats
// reports deployment-global measured numbers directly comparable to the
// (already global) accounted bytes — the measured-vs-predicted table.
// No-op on the simulation.
func (c *Cluster) SyncMeasured() error {
	if c.tr == nil {
		return nil
	}
	names, bytes, secs := c.stats.measuredSnapshot()
	rec := encodeMeasured(names, bytes, secs)
	recs := make([][]byte, c.w)
	for i := range recs {
		recs[i] = make([]byte, len(rec))
	}
	copy(recs[c.tr.Rank()], rec)
	// The sync itself is bookkeeping, not part of any training phase: call
	// the transport directly so its bytes land in no phase record.
	if err := c.tr.AllGather("cluster.syncstats", recs); err != nil {
		return fmt.Errorf("cluster: syncing measured stats: %w", err)
	}
	totalBytes := make([]int64, len(names))
	maxSecs := make([]float64, len(names))
	for r := 0; r < c.w; r++ {
		rb, rs, err := decodeMeasured(recs[r], names)
		if err != nil {
			return fmt.Errorf("cluster: measured stats from rank %d: %w", r, err)
		}
		for i := range names {
			totalBytes[i] += rb[i]
			if rs[i] > maxSecs[i] {
				maxSecs[i] = rs[i]
			}
		}
	}
	c.stats.setMeasured(names, totalBytes, maxSecs)
	return nil
}
