package cluster

import "testing"

// TestSumIntoMatchesAllocatingCollectives pins the Into variants to their
// allocating counterparts: identical sums (same worker-order reduction)
// and identical communication charges.
func TestSumIntoMatchesAllocatingCollectives(t *testing.T) {
	locals := [][]float64{
		{1, 2, 3},
		{0.5, -1, 4},
		{1e-9, 100, -7},
	}
	type variant struct {
		name string
		get  func(c *Cluster) []float64
		into func(c *Cluster, dst []float64)
	}
	variants := []variant{
		{"all-reduce",
			func(c *Cluster) []float64 { return c.AllReduceSum("p", locals) },
			func(c *Cluster, dst []float64) { c.AllReduceSumInto("p", locals, dst) }},
		{"reduce-scatter",
			func(c *Cluster) []float64 { s, _ := c.ReduceScatterSum("p", locals); return s },
			func(c *Cluster, dst []float64) { c.ReduceScatterSumInto("p", locals, dst, nil) }},
		{"sharded-gather",
			func(c *Cluster) []float64 { return c.ShardedGatherSum("p", locals, 3) },
			func(c *Cluster, dst []float64) { c.ShardedGatherSumInto("p", locals, dst, 3, nil) }},
	}
	for _, v := range variants {
		ca := New(3, Gigabit())
		want := v.get(ca)
		cb := New(3, Gigabit())
		dst := []float64{9, 9, 9} // must be overwritten, not accumulated
		v.into(cb, dst)
		for i := range want {
			if dst[i] != want[i] {
				t.Errorf("%s: dst[%d] = %v, want %v", v.name, i, dst[i], want[i])
			}
		}
		pa, pb := ca.Stats().Phase("p"), cb.Stats().Phase("p")
		if pa.TotalBytes() != pb.TotalBytes() || pa.CommSeconds != pb.CommSeconds {
			t.Errorf("%s: charge mismatch: %d bytes/%vs vs %d bytes/%vs",
				v.name, pa.TotalBytes(), pa.CommSeconds, pb.TotalBytes(), pb.CommSeconds)
		}
	}
}
