package sparse

import (
	"math/rand"
	"testing"
)

func testBinner() *Binner {
	return &Binner{Splits: [][]float32{
		{0.0, 1.0, 2.0},       // feature 0: 3 bins
		{-1.0, 0.0, 1.0, 2.0}, // feature 1: 4 bins
	}}
}

func TestBinValue(t *testing.T) {
	b := testBinner()
	cases := []struct {
		f    int
		v    float32
		want uint16
	}{
		{0, -5.0, 0}, // below first split
		{0, 0.0, 0},  // exactly first split
		{0, 0.5, 1},
		{0, 1.0, 1},
		{0, 1.5, 2},
		{0, 2.0, 2},
		{0, 99.0, 2}, // above last split clamps
		{1, -2.0, 0},
		{1, 0.5, 2},
		{1, 3.0, 3},
	}
	for _, c := range cases {
		if got := b.BinValue(c.f, c.v); got != c.want {
			t.Errorf("BinValue(%d, %v) = %d, want %d", c.f, c.v, got, c.want)
		}
	}
}

func TestBinValueMatchesLinearScan(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	splits := make([]float32, 20)
	v := float32(0)
	for i := range splits {
		v += rng.Float32() + 0.01
		splits[i] = v
	}
	b := &Binner{Splits: [][]float32{splits}}
	for trial := 0; trial < 1000; trial++ {
		x := rng.Float32() * v * 1.2
		want := uint16(len(splits) - 1)
		for i, s := range splits {
			if x <= s {
				want = uint16(i)
				break
			}
		}
		if got := b.BinValue(0, x); got != want {
			t.Fatalf("BinValue(0, %v) = %d, want %d (splits=%v)", x, got, want, splits)
		}
	}
}

func TestNumBins(t *testing.T) {
	b := testBinner()
	if b.NumBins(0) != 3 || b.NumBins(1) != 4 {
		t.Fatalf("NumBins = %d,%d want 3,4", b.NumBins(0), b.NumBins(1))
	}
	if b.MaxNumBins() != 4 {
		t.Fatalf("MaxNumBins = %d, want 4", b.MaxNumBins())
	}
}

func TestBinCSRAndCSCAgree(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	m := randomCSR(rng, 60, 2, 0.7)
	b := testBinner()
	br, err := b.BinCSR(m)
	if err != nil {
		t.Fatal(err)
	}
	bc, err := b.BinCSC(m.ToCSC())
	if err != nil {
		t.Fatal(err)
	}
	// Transposing the binned CSR must equal binning the transposed CSC.
	tr := br.ToCSC()
	if tr.NNZ() != bc.NNZ() {
		t.Fatalf("nnz mismatch %d vs %d", tr.NNZ(), bc.NNZ())
	}
	for j := 0; j < 2; j++ {
		i1, b1 := tr.Col(j)
		i2, b2 := bc.Col(j)
		for k := range i1 {
			if i1[k] != i2[k] || b1[k] != b2[k] {
				t.Fatalf("col %d entry %d: (%d,%d) vs (%d,%d)", j, k, i1[k], b1[k], i2[k], b2[k])
			}
		}
	}
}

func TestBinCSRDimensionMismatch(t *testing.T) {
	m := randomCSR(rand.New(rand.NewSource(1)), 5, 7, 0.5)
	b := testBinner() // 2 features, matrix has 7
	if _, err := b.BinCSR(m); err == nil {
		t.Fatal("BinCSR accepted dimension mismatch")
	}
	if _, err := b.BinCSC(m.ToCSC()); err == nil {
		t.Fatal("BinCSC accepted dimension mismatch")
	}
}

func TestNewBinnedCSRValidation(t *testing.T) {
	if _, err := NewBinnedCSR(1, 2, []int64{0, 1}, []uint32{0}, []uint16{0}); err != nil {
		t.Errorf("rejected valid binned CSR: %v", err)
	}
	if _, err := NewBinnedCSR(1, 2, []int64{0}, []uint32{0}, []uint16{0}); err == nil {
		t.Error("accepted short rowPtr")
	}
	if _, err := NewBinnedCSR(1, 2, []int64{0, 1}, []uint32{5}, []uint16{0}); err == nil {
		t.Error("accepted out-of-range feature")
	}
	if _, err := NewBinnedCSR(1, 2, []int64{0, 2}, []uint32{0, 1}, []uint16{0}); err == nil {
		t.Error("accepted feat/bin length mismatch")
	}
}
