package gbdt

import (
	"math"
	"sync"
	"testing"

	"vero/internal/datasets"
	"vero/internal/testutil"
)

func trainSmall(t testing.TB, classes int) (*Model, *Dataset) {
	t.Helper()
	var ds *Dataset
	if classes == 1 {
		ds = testutil.Regression(t, 2000, 40, 0.4, 0.1, 3)
	} else {
		ds = testutil.Classification(t, datasets.SyntheticConfig{
			N: 2000, D: 40, C: classes,
			InformativeRatio: 0.3, Density: 0.4, Seed: 3,
		})
	}
	model, _, err := Train(ds, Options{Workers: 4, Trees: 8, Layers: 5, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	return model, ds
}

// TestPredictorMatchesPointerWalk pins the serving engine to the training
// forest's pointer-walk output, bit-exactly, across task types.
func TestPredictorMatchesPointerWalk(t *testing.T) {
	for _, classes := range []int{1, 2, 4} {
		model, ds := trainSmall(t, classes)
		want := model.Forest().PredictCSR(ds.X)

		p, err := NewPredictor(model, PredictorOptions{})
		if err != nil {
			t.Fatal(err)
		}
		got := p.Predict(ds)
		if len(got) != len(want) {
			t.Fatalf("classes=%d: %d scores, want %d", classes, len(got), len(want))
		}
		for i := range got {
			if got[i] != want[i] {
				t.Fatalf("classes=%d: score[%d] = %v, want %v", classes, i, got[i], want[i])
			}
		}

		// Model.Predict now routes through the same engine.
		viaModel := model.Predict(ds)
		for i := range viaModel {
			if viaModel[i] != want[i] {
				t.Fatalf("classes=%d: Model.Predict[%d] = %v, want %v", classes, i, viaModel[i], want[i])
			}
		}

		// Single-row path.
		feat, val := ds.X.Row(5)
		rowGot := p.PredictRow(feat, val)
		k := p.NumClass()
		for c := range rowGot {
			if rowGot[c] != want[5*k+c] {
				t.Fatalf("classes=%d: PredictRow[%d] = %v, want %v", classes, c, rowGot[c], want[5*k+c])
			}
		}
	}
}

func TestPredictorConcurrentUse(t *testing.T) {
	model, ds := trainSmall(t, 2)
	p, err := NewPredictor(model, PredictorOptions{Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	want := p.Predict(ds)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			got := p.Predict(ds)
			for i := range got {
				if got[i] != want[i] {
					t.Errorf("concurrent Predict diverged at %d", i)
					return
				}
			}
		}()
	}
	wg.Wait()
}

func TestPredictorProbabilities(t *testing.T) {
	// Binary: sigmoid of margins, in (0,1).
	model, ds := trainSmall(t, 2)
	p, err := NewPredictor(model, PredictorOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if p.Objective() != "logistic" {
		t.Fatalf("objective %q, want logistic", p.Objective())
	}
	scores := p.Predict(ds)
	probs := p.Probabilities(scores)
	for i, pr := range probs {
		if pr <= 0 || pr >= 1 {
			t.Fatalf("prob[%d] = %v outside (0,1)", i, pr)
		}
		want := 1 / (1 + math.Exp(-scores[i]))
		if math.Abs(pr-want) > 1e-15 {
			t.Fatalf("prob[%d] = %v, want sigmoid %v", i, pr, want)
		}
	}

	// Multi-class: softmax rows sum to 1.
	model, ds = trainSmall(t, 3)
	p, err = NewPredictor(model, PredictorOptions{})
	if err != nil {
		t.Fatal(err)
	}
	probs = p.Probabilities(p.Predict(ds))
	k := p.NumClass()
	for i := 0; i+k <= len(probs); i += k {
		sum := 0.0
		for _, v := range probs[i : i+k] {
			sum += v
		}
		if math.Abs(sum-1) > 1e-12 {
			t.Fatalf("softmax row %d sums to %v", i/k, sum)
		}
	}

	// Regression: identity.
	model, ds = trainSmall(t, 1)
	p, err = NewPredictor(model, PredictorOptions{})
	if err != nil {
		t.Fatal(err)
	}
	scores = p.Predict(ds)
	probs = p.Probabilities(scores)
	for i := range probs {
		if probs[i] != scores[i] {
			t.Fatalf("regression Probabilities altered score %d", i)
		}
	}
}
