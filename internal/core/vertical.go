package core

import (
	"math/bits"

	"vero/internal/bitmap"
	"vero/internal/histogram"
	"vero/internal/tree"
)

// Vertical quadrants (QD3: column-store; QD4: row-store — Vero). Workers
// hold complete columns for disjoint feature subsets, find local best
// splits without histogram aggregation, and broadcast instance placements
// as one bitmap per layer (Figure 4(b)).

func (t *trainer) verticalRootTotals() ([]float64, []float64) {
	g := make([]float64, t.c)
	h := make([]float64, t.c)
	t.cl.Parallel(phaseGrad, func(w int) {
		// Every worker computes the same totals from its gradient copy;
		// worker 0's result is adopted.
		lg := make([]float64, t.c)
		lh := make([]float64, t.c)
		if t.c == 1 {
			var sg, sh float64
			for i := 0; i < t.n; i++ {
				sg += t.grads[i]
				sh += t.hessv[i]
			}
			lg[0], lh[0] = sg, sh
		} else {
			for i := 0; i < t.n; i++ {
				for k := 0; k < t.c; k++ {
					lg[k] += t.grads[i*t.c+k]
					lh[k] += t.hessv[i*t.c+k]
				}
			}
		}
		if w == 0 {
			copy(g, lg)
			copy(h, lh)
		}
	})
	return g, h
}

// rowOf returns the (slot, bin) pairs of one instance on one worker for
// the row-store quadrants (QD4 and feature-parallel).
func (t *trainer) rowBins(w int, inst uint32) (feat []uint32, bin []uint16) {
	if t.cfg.FullCopy {
		return t.fullRows.Row(int(inst))
	}
	return t.shards[w].Data.Row(int(inst))
}

func (t *trainer) verticalBuildHistograms(toBuild []*nodeInfo) {
	mem := t.cl.Stats().Mem("histogram")
	t.cl.Parallel(phaseHist, func(w int) {
		hs := make([]*histogram.Hist, len(toBuild))
		for i := range hs {
			hs[i] = t.pool.Get(t.vLayout[w])
			mem.Add(w, t.vLayout[w].SizeBytes())
		}
		switch {
		case t.cfg.Quadrant == QD4 && !t.cfg.FullCopy:
			for i, nd := range toBuild {
				t.buildRowStore(w, nd, hs[i])
			}
		case t.cfg.Quadrant == QD4: // feature-parallel full copy
			for i, nd := range toBuild {
				t.buildFullCopy(w, nd, hs[i])
			}
		case t.cfg.ColumnIndex == IndexColumnWise:
			for i, nd := range toBuild {
				t.buildColumnWise(w, nd, hs[i])
			}
		default:
			for i, nd := range toBuild {
				t.buildHybrid(w, nd, hs[i])
			}
		}
		for i, nd := range toBuild {
			t.vHist[w][nd.id] = hs[i]
		}
	})
}

// buildRowStore scans the node's instances through the blockified rows —
// Vero's histogram construction (node-to-instance index + row-store). The
// node's instance list is ascending (the node-to-instance index partitions
// stably from an ascending initial order) and the shard's blocks cover
// contiguous ascending row ranges, so the scan runs the fused row-scan
// kernel once per block segment instead of resolving every row through a
// per-instance block lookup.
func (t *trainer) buildRowStore(w int, nd *nodeInfo, h *histogram.Hist) {
	insts := t.vN2I[w].Instances(nd.id)
	k := 0
	for _, b := range t.shards[w].Data.Blocks {
		if k == len(insts) {
			break
		}
		end := b.RowStart + b.NumRows()
		start := k
		for k < len(insts) && int(insts[k]) < end {
			k++
		}
		h.RowScan(insts[start:k], b.RowStart, b.RowPtr, b.Feat, b.Bin, t.grads, t.hessv, 0)
	}
}

// buildFullCopy scans full rows but accumulates only the worker's assigned
// features — LightGBM feature-parallel (Appendix D).
func (t *trainer) buildFullCopy(w int, nd *nodeInfo, h *histogram.Hist) {
	h.RowScanOwned(t.vN2I[w].Instances(nd.id), t.fullRows.RowPtr, t.fullRows.Feat, t.fullRows.Bin,
		t.ownerOf, t.slotOf, int32(w), t.grads, t.hessv)
}

// buildColumnWise reads each column's node entries directly from the
// column-wise node-to-instance index (Yggdrasil's plan).
func (t *trainer) buildColumnWise(w int, nd *nodeInfo, h *histogram.Hist) {
	cols := t.vCols[w]
	cw := t.vCW[w]
	for j := 0; j < cols.Cols(); j++ {
		insts, binsArr := cols.Col(j)
		h.ColumnGather(j, cw.Entries(j, nd.id), insts, binsArr, t.grads, t.hessv)
	}
}

// buildHybrid is the paper's optimized QD3 plan (Section 5.2.2): columns
// with few values are scanned linearly against the instance-to-node index;
// long columns are probed by binary search from the node's instance list.
// Both arms run fused kernels, but the scan stays per-node: the linear arm
// is bound by the per-entry instance-to-node probe (Section 3.2.3's
// column-store index cost), which a multi-node routed pass only makes
// heavier — measured, routing every entry through a node-to-slot table
// costs more than the filter scans it replaces.
func (t *trainer) buildHybrid(w int, nd *nodeInfo, h *histogram.Hist) {
	cols := t.vCols[w]
	nodeOf := t.vI2N[w].Assignments()
	nodeInsts := t.vN2I[w].Instances(nd.id)
	for j := 0; j < cols.Cols(); j++ {
		insts, binsArr := cols.Col(j)
		colLen := len(insts)
		if colLen == 0 {
			continue
		}
		searchCost := len(nodeInsts) * (bits.Len(uint(colLen)) + 1)
		if colLen <= searchCost {
			// Linear scan, filtering by the instance-to-node index.
			h.ColumnScanNode(j, insts, binsArr, nodeOf, nd.id, t.grads, t.hessv)
			continue
		}
		for _, inst := range nodeInsts {
			bin, ok := searchColumn(insts, binsArr, inst)
			if !ok {
				continue
			}
			h.AddFlat(j, int(bin), t.grads, t.hessv, int(inst)*t.c)
		}
	}
}

// verticalFindSplits has each worker find the best split over its own
// feature subset, then exchanges the local bests (Section 2.2.1).
func (t *trainer) verticalFindSplits(frontier []*nodeInfo) map[int32]resolvedSplit {
	bests := make([]map[int32]histogram.Split, t.w)
	t.cl.Parallel(phaseSplit, func(w int) {
		m := make(map[int32]histogram.Split, len(frontier))
		for _, nd := range frontier {
			m[nd.id] = t.finder.FindBest(t.vHist[w][nd.id], nd.totalG, nd.totalH, t.vNumBins[w])
		}
		bests[w] = m
	})
	t.cl.AllGatherSmall(phaseSplit, int64(len(frontier))*splitWireBytes)
	out := make(map[int32]resolvedSplit, len(frontier))
	for _, nd := range frontier {
		best := histogram.Split{}
		for w := 0; w < t.w; w++ {
			s := bests[w][nd.id]
			if !s.Valid {
				continue
			}
			s.Feature = t.groups[w][s.Feature] // slot -> global id
			if histogram.Prefer(s, best) {
				best = s
			}
		}
		out[nd.id] = resolvedSplit{node: nd.id, feature: best.Feature, bin: best.Bin,
			gain: best.Gain, defaultLeft: best.DefaultLeft, valid: best.Valid}
	}
	return out
}

// verticalApplyLayer computes instance placements at the split owners,
// broadcasts them as one N-bit bitmap per layer (Section 3.1.3), and
// updates every worker's indexes. Feature-parallel skips the broadcast:
// every worker evaluates placements on its full copy.
func (t *trainer) verticalApplyLayer(splits map[int32]resolvedSplit, children map[int32][2]int32) {
	if t.cfg.FullCopy {
		t.cl.Parallel(phaseNode, func(w int) {
			for parent, ch := range children {
				sp := splits[parent]
				t.vN2I[w].Split(parent, ch[0], ch[1], func(inst uint32) bool {
					feats, binsArr := t.fullRows.Row(int(inst))
					bin, ok := lookupBin(feats, binsArr, uint32(sp.feature))
					if !ok {
						return sp.defaultLeft
					}
					return int(bin) <= sp.bin
				})
			}
		})
		return
	}

	// Each split's owner fills the placement bits for its node; merging
	// the per-worker bitmaps yields the layer's placement.
	parts := make([]*bitmap.Bitmap, t.w)
	t.cl.Parallel(phaseNode, func(w int) {
		bm := bitmap.New(t.n)
		for parent := range children {
			sp := splits[parent]
			if t.ownerOf[sp.feature] != int32(w) {
				continue
			}
			t.fillPlacement(w, parent, sp, bm)
		}
		parts[w] = bm
	})
	placement := parts[0]
	for w := 1; w < t.w; w++ {
		for i := range placement.Len() {
			if parts[w].Get(i) {
				placement.Set(i)
			}
		}
	}
	t.cl.Broadcast(phaseNode, int64(placement.SizeBytes()))

	goesLeft := func(inst uint32) bool { return placement.Get(int(inst)) }
	t.cl.Parallel(phaseNode, func(w int) {
		for parent, ch := range children {
			t.vN2I[w].Split(parent, ch[0], ch[1], goesLeft)
			if t.cfg.Quadrant == QD3 && t.cfg.ColumnIndex == IndexColumnWise {
				cols := t.vCols[w]
				t.vCW[w].Split(parent, ch[0], ch[1], goesLeft, func(col int, pos uint32) uint32 {
					insts, _ := cols.Col(col)
					return insts[pos]
				})
			}
		}
		if t.cfg.Quadrant == QD3 {
			t.vI2N[w].SplitLayer(children, goesLeft)
		}
	})
}

// fillPlacement writes the left/right bits of one splitting node, owned by
// worker w (set bit = left child).
func (t *trainer) fillPlacement(w int, parent int32, sp resolvedSplit, bm *bitmap.Bitmap) {
	insts := t.vN2I[w].Instances(parent)
	if sp.defaultLeft {
		for _, inst := range insts {
			bm.Set(int(inst))
		}
	}
	slot := int(t.slotOf[sp.feature])
	if t.cfg.Quadrant == QD4 {
		data := t.shards[w].Data
		for _, inst := range insts {
			feats, binsArr := data.Row(int(inst))
			bin, ok := lookupBin(feats, binsArr, uint32(slot))
			if !ok {
				continue // stays at the default direction
			}
			bm.SetTo(int(inst), int(bin) <= sp.bin)
		}
		return
	}
	// QD3: the owner holds the split feature's full column; one linear
	// pass with node-membership checks places every present value.
	insts2, binsArr := t.vCols[w].Col(slot)
	i2n := t.vI2N[w]
	for k, inst := range insts2 {
		if i2n.Node(inst) != parent {
			continue
		}
		bm.SetTo(int(inst), int(binsArr[k]) <= sp.bin)
	}
}

// verticalChildStats recomputes child totals from the (identical)
// per-worker gradient copies; worker 0's result is adopted.
func (t *trainer) verticalChildStats(nodes []*nodeInfo) {
	stride := 2 * t.c
	sums := make([]float64, stride*len(nodes))
	counts := make([]int, len(nodes))
	t.cl.Parallel(phaseNode, func(w int) {
		local := make([]float64, stride*len(nodes))
		for i, nd := range nodes {
			insts := t.vN2I[w].Instances(nd.id)
			o := i * stride
			if t.c == 1 {
				var g, h float64
				for _, inst := range insts {
					g += t.grads[inst]
					h += t.hessv[inst]
				}
				local[o], local[o+1] = g, h
			} else {
				for _, inst := range insts {
					gi := int(inst) * t.c
					for k := 0; k < t.c; k++ {
						local[o+k] += t.grads[gi+k]
						local[o+t.c+k] += t.hessv[gi+k]
					}
				}
			}
			if w == 0 {
				counts[i] = len(insts)
			}
		}
		if w == 0 {
			copy(sums, local)
		}
	})
	for i, nd := range nodes {
		o := i * stride
		nd.totalG = append([]float64(nil), sums[o:o+t.c]...)
		nd.totalH = append([]float64(nil), sums[o+t.c:o+stride]...)
		nd.count = counts[i]
	}
}

// verticalUpdatePredictions applies leaf weights through the (identical)
// node-to-instance indexes; every worker performs the update on its own
// prediction copy.
func (t *trainer) verticalUpdatePredictions(tr *tree.Tree) {
	eta := t.cfg.LearningRate
	t.cl.Parallel(phaseUpdate, func(w int) {
		preds := t.preds
		if w != 0 {
			preds = t.scratch[w]
		}
		for id := range tr.Nodes {
			n := &tr.Nodes[id]
			if !n.IsLeaf() {
				continue
			}
			for _, inst := range t.vN2I[w].Instances(int32(id)) {
				gi := int(inst) * t.c
				for k := 0; k < t.c; k++ {
					preds[gi+k] += eta * n.Weights[k]
				}
			}
		}
	})
}
