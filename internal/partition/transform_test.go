package partition

import (
	"testing"

	"vero/internal/cluster"
	"vero/internal/datasets"
)

func transformFixture(t *testing.T, w int, charge Variant) (*datasets.Dataset, *cluster.Cluster, *Result) {
	t.Helper()
	ds, err := datasets.Synthetic(datasets.SyntheticConfig{
		N: 300, D: 40, C: 2, InformativeRatio: 0.3, Density: 0.25, Seed: 21,
	})
	if err != nil {
		t.Fatal(err)
	}
	cl := cluster.New(w, cluster.Gigabit())
	res, err := Transform(cl, ds.X, ds.Labels, Options{Q: 16, Charge: charge})
	if err != nil {
		t.Fatal(err)
	}
	return ds, cl, res
}

func TestTransformShardsHoldAllFeatures(t *testing.T) {
	ds, _, res := transformFixture(t, 4, VariantBlockified)
	seen := map[int]int{}
	for _, shard := range res.Shards {
		for _, f := range shard.Features {
			seen[f]++
		}
	}
	// Features with at least one value must be assigned exactly once.
	counts := map[int]int{}
	for i := 0; i < ds.X.Rows(); i++ {
		feats, _ := ds.X.Row(i)
		for _, f := range feats {
			counts[int(f)]++
		}
	}
	for f := range counts {
		if seen[f] != 1 {
			t.Fatalf("feature %d assigned %d times", f, seen[f])
		}
	}
}

func TestTransformPreservesEveryPair(t *testing.T) {
	ds, _, res := transformFixture(t, 4, VariantBlockified)
	total := 0
	for _, shard := range res.Shards {
		if shard.Data.NumRows() != ds.NumInstances() {
			t.Fatalf("worker %d shard has %d rows, want %d",
				shard.Worker, shard.Data.NumRows(), ds.NumInstances())
		}
		total += shard.Data.NNZ()
	}
	if total != ds.X.NNZ() {
		t.Fatalf("shards hold %d pairs, dataset has %d", total, ds.X.NNZ())
	}
	// Values must match the binner's output for the original data.
	for _, shard := range res.Shards {
		globalOf := shard.Features
		for i := 0; i < ds.NumInstances(); i++ {
			feat, bin := shard.Data.Row(i)
			origFeat, origVal := ds.X.Row(i)
			lookup := map[uint32]float32{}
			for k, f := range origFeat {
				lookup[f] = origVal[k]
			}
			for k, slot := range feat {
				gf := globalOf[slot]
				v, ok := lookup[uint32(gf)]
				if !ok {
					t.Fatalf("row %d: shard pair for absent feature %d", i, gf)
				}
				if want := res.Binner.BinValue(gf, v); bin[k] != want {
					t.Fatalf("row %d feature %d: bin %d, want %d", i, gf, bin[k], want)
				}
			}
		}
	}
}

func TestTransformLabelsBroadcast(t *testing.T) {
	ds, _, res := transformFixture(t, 3, VariantBlockified)
	for _, shard := range res.Shards {
		if len(shard.Labels) != len(ds.Labels) {
			t.Fatalf("worker %d has %d labels, want %d", shard.Worker, len(shard.Labels), len(ds.Labels))
		}
		for i := range ds.Labels {
			if shard.Labels[i] != ds.Labels[i] {
				t.Fatalf("worker %d label %d differs", shard.Worker, i)
			}
		}
	}
	if res.Bytes.LabelBroadcast != int64(len(ds.Labels))*4 {
		t.Fatalf("label broadcast bytes = %d", res.Bytes.LabelBroadcast)
	}
}

func TestTransformCompressionOrdering(t *testing.T) {
	// Table 5's shape: naive > compressed > blockified wire volume.
	_, _, res := transformFixture(t, 4, VariantBlockified)
	b := res.Bytes
	if !(b.NaiveShuffle > b.CompressedShuffle && b.CompressedShuffle > b.BlockifiedShuffle) {
		t.Fatalf("volumes not decreasing: naive=%d compressed=%d blockified=%d",
			b.NaiveShuffle, b.CompressedShuffle, b.BlockifiedShuffle)
	}
	// The paper reports up to 4x pair compression; with 1-byte features
	// and bins our pairs shrink 6x, so overall at least 2x including
	// per-object overhead.
	if b.NaiveShuffle < 2*b.BlockifiedShuffle {
		t.Fatalf("blockified compression below 2x: %d vs %d", b.NaiveShuffle, b.BlockifiedShuffle)
	}
}

func TestTransformChargeVariantAffectsSimTime(t *testing.T) {
	_, clNaive, _ := transformFixture(t, 4, VariantNaive)
	_, clVero, _ := transformFixture(t, 4, VariantBlockified)
	tn := clNaive.Stats().Phase("transform.repartition").CommSeconds
	tv := clVero.Stats().Phase("transform.repartition").CommSeconds
	if tn <= tv {
		t.Fatalf("naive repartition (%v) not slower than blockified (%v)", tn, tv)
	}
}

func TestTransformBlocksMerged(t *testing.T) {
	_, _, res := transformFixture(t, 6, VariantBlockified)
	for _, shard := range res.Shards {
		if shard.Data.NumBlocks() > 4 {
			t.Fatalf("worker %d has %d blocks after merge", shard.Worker, shard.Data.NumBlocks())
		}
	}
}

func TestTransformLoadBalance(t *testing.T) {
	_, _, res := transformFixture(t, 4, VariantBlockified)
	var loads []int
	total := 0
	for _, shard := range res.Shards {
		loads = append(loads, shard.Data.NNZ())
		total += shard.Data.NNZ()
	}
	avg := total / len(loads)
	for w, l := range loads {
		if l > avg*3/2 {
			t.Fatalf("worker %d holds %d pairs, average %d", w, l, avg)
		}
	}
}

func TestTransformValidation(t *testing.T) {
	ds, err := datasets.Synthetic(datasets.SyntheticConfig{
		N: 10, D: 5, C: 2, InformativeRatio: 0.5, Density: 0.5, Seed: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	cl := cluster.New(2, cluster.Gigabit())
	if _, err := Transform(cl, ds.X, ds.Labels[:5], Options{Q: 10}); err == nil {
		t.Fatal("accepted label/row mismatch")
	}
	if _, err := Transform(cl, ds.X, ds.Labels, Options{Q: 1}); err == nil {
		t.Fatal("accepted q=1")
	}
}

func TestVariantString(t *testing.T) {
	if VariantNaive.String() != "naive" || VariantCompressed.String() != "compress" ||
		VariantBlockified.String() != "vero" {
		t.Fatal("variant names wrong")
	}
}
