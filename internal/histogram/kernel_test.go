package histogram

import (
	"math/rand"
	"testing"
)

// kernelFixture builds a random sparse column/row workload plus gradient
// arrays for nClass classes over n instances.
type kernelFixture struct {
	layout     Layout
	grad, hess []float64
	// rows, CSR-shaped over the layout's feature slots
	rowPtr []int64
	feat   []uint32
	bin    []uint16
}

func newKernelFixture(t *testing.T, nClass, n int, seed int64) *kernelFixture {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	f := &kernelFixture{
		layout: Layout{NumFeat: 7, MaxBins: 9, NumClass: nClass},
		grad:   make([]float64, n*nClass),
		hess:   make([]float64, n*nClass),
		rowPtr: make([]int64, 1, n+1),
	}
	for i := range f.grad {
		f.grad[i] = rng.NormFloat64()
		f.hess[i] = rng.Float64()
	}
	for i := 0; i < n; i++ {
		nnz := rng.Intn(f.layout.NumFeat + 1)
		start := rng.Intn(f.layout.NumFeat + 1 - nnz)
		for k := 0; k < nnz; k++ {
			f.feat = append(f.feat, uint32(start+k))
			f.bin = append(f.bin, uint16(rng.Intn(f.layout.MaxBins)))
		}
		f.rowPtr = append(f.rowPtr, int64(len(f.feat)))
	}
	return f
}

func (f *kernelFixture) rows() int { return len(f.rowPtr) - 1 }

func (f *kernelFixture) row(i int) (feat []uint32, bin []uint16) {
	lo, hi := f.rowPtr[i], f.rowPtr[i+1]
	return f.feat[lo:hi], f.bin[lo:hi]
}

func requireEqualHists(t *testing.T, want, got *Hist, name string) {
	t.Helper()
	for i := range want.Grad {
		if want.Grad[i] != got.Grad[i] || want.Hess[i] != got.Hess[i] {
			t.Fatalf("%s: diverged at flat index %d: grad %v vs %v, hess %v vs %v",
				name, i, want.Grad[i], got.Grad[i], want.Hess[i], got.Hess[i])
		}
	}
}

// addVecRow is the reference per-entry accumulation the kernels replace.
func addVecRow(h *Hist, feats []uint32, bins []uint16, grad, hess []float64, gi, c int) {
	for k, f := range feats {
		h.AddVec(int(f), int(bins[k]), grad[gi:gi+c], hess[gi:gi+c])
	}
}

func TestRowScanMatchesAddVec(t *testing.T) {
	for _, c := range []int{1, 3} {
		f := newKernelFixture(t, c, 64, 2)
		// Scan a subset of instances with an id offset, as the trainers do
		// (rowOff re-bases ids into storage, base into gradients — exercise
		// rowOff=0/base>0 and the QD4 block shape rowOff>0/base=0).
		insts := []uint32{0, 3, 4, 10, 33, 63}
		want := New(f.layout)
		for _, inst := range insts {
			feats, bins := f.row(int(inst))
			addVecRow(want, feats, bins, f.grad, f.hess, int(inst)*c, c)
		}
		got := New(f.layout)
		got.RowScan(insts, 0, f.rowPtr, f.feat, f.bin, f.grad, f.hess, 0)
		requireEqualHists(t, want, got, "RowScan")

		// base-shifted gradients: instances are shard-local, gradients global.
		const base = 5
		shifted := make([]float64, (64+base)*c)
		shiftedH := make([]float64, (64+base)*c)
		copy(shifted[base*c:], f.grad)
		copy(shiftedH[base*c:], f.hess)
		got2 := New(f.layout)
		got2.RowScan(insts, 0, f.rowPtr, f.feat, f.bin, shifted, shiftedH, base)
		requireEqualHists(t, want, got2, "RowScan(base)")

		// rowOff-shifted ids: global instance ids into a block starting at 7.
		const off = 7
		offIds := make([]uint32, len(insts))
		for i, inst := range insts {
			offIds[i] = inst + off
		}
		offGrad := make([]float64, (64+off)*c)
		offHess := make([]float64, (64+off)*c)
		copy(offGrad[off*c:], f.grad)
		copy(offHess[off*c:], f.hess)
		got3 := New(f.layout)
		got3.RowScan(offIds, off, f.rowPtr, f.feat, f.bin, offGrad, offHess, 0)
		requireEqualHists(t, want, got3, "RowScan(rowOff)")
	}
}

func TestRowScanOwnedMatchesFilteredAddVec(t *testing.T) {
	for _, c := range []int{1, 3} {
		f := newKernelFixture(t, c, 64, 3)
		const owner = int32(1)
		ownerOf := make([]int32, f.layout.NumFeat)
		slotOf := make([]int32, f.layout.NumFeat)
		slots := 0
		for j := range ownerOf {
			ownerOf[j] = int32(j % 2)
			if ownerOf[j] == owner {
				slotOf[j] = int32(slots)
				slots++
			}
		}
		l := Layout{NumFeat: slots, MaxBins: f.layout.MaxBins, NumClass: c}
		insts := []uint32{1, 2, 8, 40, 63}
		want := New(l)
		for _, inst := range insts {
			feats, bins := f.row(int(inst))
			for k, ft := range feats {
				if ownerOf[ft] != owner {
					continue
				}
				want.AddVec(int(slotOf[ft]), int(bins[k]), f.grad[int(inst)*c:int(inst)*c+c], f.hess[int(inst)*c:int(inst)*c+c])
			}
		}
		got := New(l)
		got.RowScanOwned(insts, f.rowPtr, f.feat, f.bin, ownerOf, slotOf, owner, f.grad, f.hess)
		requireEqualHists(t, want, got, "RowScanOwned")
	}
}

// column returns one synthetic sorted column over n instances.
func column(rng *rand.Rand, n, maxBins int) (insts []uint32, bins []uint16) {
	for i := 0; i < n; i++ {
		if rng.Float64() < 0.6 {
			insts = append(insts, uint32(i))
			bins = append(bins, uint16(rng.Intn(maxBins)))
		}
	}
	return insts, bins
}

func TestColumnScanNodeMatchesAddVec(t *testing.T) {
	for _, c := range []int{1, 3} {
		f := newKernelFixture(t, c, 64, 4)
		rng := rand.New(rand.NewSource(40))
		insts, bins := column(rng, 64, f.layout.MaxBins)
		nodeOf := make([]int32, 64)
		for i := range nodeOf {
			nodeOf[i] = int32(rng.Intn(3))
		}
		const node, col = int32(2), 4
		want := New(f.layout)
		for k, inst := range insts {
			if nodeOf[inst] != node {
				continue
			}
			want.AddVec(col, int(bins[k]), f.grad[int(inst)*c:int(inst)*c+c], f.hess[int(inst)*c:int(inst)*c+c])
		}
		got := New(f.layout)
		got.ColumnScanNode(col, insts, bins, nodeOf, node, f.grad, f.hess)
		requireEqualHists(t, want, got, "ColumnScanNode")
	}
}

func TestColumnGatherMatchesAddVec(t *testing.T) {
	for _, c := range []int{1, 3} {
		f := newKernelFixture(t, c, 64, 5)
		rng := rand.New(rand.NewSource(50))
		insts, bins := column(rng, 64, f.layout.MaxBins)
		var positions []uint32
		for p := range insts {
			if p%3 == 0 {
				positions = append(positions, uint32(p))
			}
		}
		const col = 2
		want := New(f.layout)
		for _, p := range positions {
			inst := int(insts[p])
			want.AddVec(col, int(bins[p]), f.grad[inst*c:inst*c+c], f.hess[inst*c:inst*c+c])
		}
		got := New(f.layout)
		got.ColumnGather(col, positions, insts, bins, f.grad, f.hess)
		requireEqualHists(t, want, got, "ColumnGather")
	}
}

func TestAddFlatMatchesAddVec(t *testing.T) {
	for _, c := range []int{1, 3} {
		f := newKernelFixture(t, c, 16, 6)
		want, got := New(f.layout), New(f.layout)
		for i := 0; i < 16; i++ {
			feat, bin := i%f.layout.NumFeat, (i*5)%f.layout.MaxBins
			want.AddVec(feat, bin, f.grad[i*c:i*c+c], f.hess[i*c:i*c+c])
			got.AddFlat(feat, bin, f.grad, f.hess, i*c)
		}
		requireEqualHists(t, want, got, "AddFlat")
	}
}

func TestColumnScanRoutedMatchesPerNodeScans(t *testing.T) {
	for _, c := range []int{1, 3} {
		f := newKernelFixture(t, c, 64, 7)
		rng := rand.New(rand.NewSource(70))
		insts, bins := column(rng, 64, f.layout.MaxBins)
		nodeOf := make([]int32, 64)
		for i := range nodeOf {
			nodeOf[i] = int32(rng.Intn(5)) // nodes 0..4; only 1 and 3 build
		}
		slot := []int32{-1, 0, -1, 1} // node 4 is beyond the table
		const col = 3

		wants := []*Hist{New(f.layout), New(f.layout)}
		for k, inst := range insts {
			nid := nodeOf[inst]
			if int(nid) >= len(slot) || slot[nid] < 0 {
				continue
			}
			wants[slot[nid]].AddVec(col, int(bins[k]), f.grad[int(inst)*c:int(inst)*c+c], f.hess[int(inst)*c:int(inst)*c+c])
		}

		stride := f.layout.FloatsPerSide()
		ag := make([]float64, 2*stride)
		ah := make([]float64, 2*stride)
		ColumnScanRouted(ag, ah, stride, f.layout, col, insts, bins, nodeOf, slot, f.grad, f.hess, 0)
		for s, want := range wants {
			got := &Hist{Layout: f.layout, Grad: ag[s*stride : (s+1)*stride], Hess: ah[s*stride : (s+1)*stride]}
			requireEqualHists(t, want, got, "ColumnScanRouted")
		}
	}
}
