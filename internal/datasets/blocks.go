package datasets

import "io"

// BlockSource serves a binned sparse matrix in fixed-size blocks from
// out-of-core storage (typically an mmap-backed .vbin view,
// ingest.MappedCache). The storage layout is the cache's global binned
// CSC: entries are grouped by column, ascending by instance id within
// each column, addressed by position in one global entry space [0, NNZ).
//
// Implementations must be safe for concurrent reads with distinct
// scratch. A read failure is sticky for the training run: engines record
// the first error and the trainer aborts at the next tree boundary.
type BlockSource interface {
	// Rows returns the number of instances.
	Rows() int
	// Cols returns the number of features.
	Cols() int
	// NNZ returns the number of stored entries.
	NNZ() int64
	// ColRange returns the half-open entry range [lo, hi) of a column.
	ColRange(col int) (lo, hi int64)
	// Entries materializes entry range [lo, hi): instance ids and bin
	// indexes in storage order. The result is either a zero-copy view
	// (valid until the source closes, never to be modified) or the
	// provided scratch filled by reads; scratch must hold hi-lo entries.
	Entries(lo, hi int64, instBuf []uint32, binBuf []uint16) ([]uint32, []uint16, error)
	// SearchInst returns the first position in [lo, hi) — a range within
	// one column — whose instance id is >= inst (hi if none).
	SearchInst(lo, hi int64, inst uint32) (int64, error)
	// LookupInst returns the bin of instance inst within one column's
	// range [lo, hi), and whether the entry exists.
	LookupInst(lo, hi int64, inst uint32) (uint16, bool, error)
	// Fingerprint identifies the backing image for checkpoint validation.
	Fingerprint() string
}

// OutOfCore reports whether the dataset is served from a BlockSource
// instead of a materialized matrix.
func (d *Dataset) OutOfCore() bool { return d.X == nil && d.Blocks != nil }

// NNZ returns the number of stored entries, whichever representation
// holds them.
func (d *Dataset) NNZ() int64 {
	if d.OutOfCore() {
		return d.Blocks.NNZ()
	}
	return int64(d.X.NNZ())
}

// Close releases the block source's backing resources (mapping, file
// descriptor) if it holds any. In-memory datasets close trivially.
func (d *Dataset) Close() error {
	if c, ok := d.Blocks.(io.Closer); ok {
		return c.Close()
	}
	return nil
}
