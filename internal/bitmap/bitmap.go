// Package bitmap provides a compact bitset used to broadcast instance
// placements after node splitting in vertically partitioned GBDT training.
//
// Section 3.1.3 of the paper encodes the left/right placement of each
// instance into one bit, so broadcasting the placement of N instances
// costs ceil(N/8) bytes per tree layer instead of 4N bytes, a 32x saving.
package bitmap

import "fmt"

// Bitmap is a fixed-length bitset. The zero value is an empty bitmap of
// length zero; use New to allocate one of a given length.
type Bitmap struct {
	words []uint64
	n     int
}

// New returns a Bitmap holding n bits, all cleared.
func New(n int) *Bitmap {
	if n < 0 {
		panic(fmt.Sprintf("bitmap: negative length %d", n))
	}
	return &Bitmap{words: make([]uint64, (n+63)/64), n: n}
}

// Len returns the number of bits in the bitmap.
func (b *Bitmap) Len() int { return b.n }

// Set sets bit i to 1.
func (b *Bitmap) Set(i int) {
	b.words[i>>6] |= 1 << (uint(i) & 63)
}

// Clear sets bit i to 0.
func (b *Bitmap) Clear(i int) {
	b.words[i>>6] &^= 1 << (uint(i) & 63)
}

// SetTo sets bit i to v.
func (b *Bitmap) SetTo(i int, v bool) {
	if v {
		b.Set(i)
	} else {
		b.Clear(i)
	}
}

// Get reports whether bit i is set.
func (b *Bitmap) Get(i int) bool {
	return b.words[i>>6]&(1<<(uint(i)&63)) != 0
}

// Count returns the number of set bits.
func (b *Bitmap) Count() int {
	c := 0
	for _, w := range b.words {
		c += popcount(w)
	}
	return c
}

// Reset clears all bits.
func (b *Bitmap) Reset() {
	for i := range b.words {
		b.words[i] = 0
	}
}

// SizeBytes returns the wire size of the bitmap payload, ceil(n/8) bytes.
// This is the quantity the paper's communication model charges for one
// placement broadcast.
func (b *Bitmap) SizeBytes() int { return (b.n + 7) / 8 }

// MarshalBinary encodes the bitmap into a compact byte slice of
// SizeBytes() bytes (little-endian bit order within each byte).
func (b *Bitmap) MarshalBinary() ([]byte, error) {
	out := make([]byte, b.SizeBytes())
	for i := 0; i < b.n; i++ {
		if b.Get(i) {
			out[i>>3] |= 1 << (uint(i) & 7)
		}
	}
	return out, nil
}

// UnmarshalBinary decodes a payload produced by MarshalBinary. The bitmap
// must already have the correct length.
func (b *Bitmap) UnmarshalBinary(data []byte) error {
	if len(data) != b.SizeBytes() {
		return fmt.Errorf("bitmap: payload has %d bytes, want %d", len(data), b.SizeBytes())
	}
	for i := 0; i < b.n; i++ {
		b.SetTo(i, data[i>>3]&(1<<(uint(i)&7)) != 0)
	}
	return nil
}

// Or sets every bit of b that is set in other. Both bitmaps must share
// one length; merging the per-owner placement shards of a distributed
// vertical layer is the intended use (each instance is routed by exactly
// one owner, so OR-ing the shards reconstructs the full placement).
func (b *Bitmap) Or(other *Bitmap) {
	if other.n != b.n {
		panic(fmt.Sprintf("bitmap: or of %d-bit and %d-bit bitmaps", b.n, other.n))
	}
	for i, w := range other.words {
		b.words[i] |= w
	}
}

// Clone returns a deep copy of the bitmap.
func (b *Bitmap) Clone() *Bitmap {
	c := New(b.n)
	copy(c.words, b.words)
	return c
}

func popcount(x uint64) int {
	// Hacker's Delight population count; avoids importing math/bits for
	// no reason other than symmetry, but math/bits is stdlib — use it via
	// the same algorithm to keep this file dependency-free.
	x -= (x >> 1) & 0x5555555555555555
	x = (x & 0x3333333333333333) + ((x >> 2) & 0x3333333333333333)
	x = (x + (x >> 4)) & 0x0f0f0f0f0f0f0f0f
	return int((x * 0x0101010101010101) >> 56)
}
