package gbdt

import (
	"math/rand"
	"testing"
)

// thresholdRows builds sparse rows whose values sit exactly on the model's
// candidate splits — the boundary cases where binned and float routing
// could disagree if quantization were off by one — plus out-of-range and
// between-split values.
func thresholdRows(rng *rand.Rand, splits [][]float32, rows int) ([][]uint32, [][]float32) {
	feats := make([][]uint32, rows)
	vals := make([][]float32, rows)
	for i := 0; i < rows; i++ {
		for f, s := range splits {
			if len(s) == 0 || rng.Float64() < 0.4 {
				continue
			}
			var v float32
			switch rng.Intn(4) {
			case 0:
				v = s[rng.Intn(len(s))] // exactly on a split
			case 1:
				v = s[len(s)-1] + 1 // above every split
			case 2:
				v = s[0] - 1 // below every split
			default:
				k := rng.Intn(len(s))
				v = s[k] + 1e-4 // just past a split
			}
			feats[i] = append(feats[i], uint32(f))
			vals[i] = append(vals[i], v)
		}
	}
	return feats, vals
}

// TestBinnedPredictorAllQuadrants is the serving-tier bit-identity
// property test: for a model trained through each quadrant QD1-QD4, the
// binned predictor must reproduce the float predictor's margins exactly —
// on every training row and on adversarial rows placed on the split
// thresholds themselves.
func TestBinnedPredictorAllQuadrants(t *testing.T) {
	ds, err := Synthetic(SyntheticConfig{N: 900, D: 35, C: 3, InformativeRatio: 0.4, Density: 0.4, Seed: 11})
	if err != nil {
		t.Fatal(err)
	}
	for _, q := range []Quadrant{QD1, QD2, QD3, QD4} {
		t.Run(q.String(), func(t *testing.T) {
			m, _, err := Train(ds, Options{Quadrant: q, Workers: 3, Trees: 4, Layers: 5, Splits: 16})
			if err != nil {
				t.Fatal(err)
			}
			if !m.HasBins() {
				t.Fatal("trained model carries no candidate splits")
			}
			float, err := NewPredictor(m, PredictorOptions{Workers: 2})
			if err != nil {
				t.Fatal(err)
			}
			binned, err := NewPredictor(m, PredictorOptions{Workers: 2, Binned: true})
			if err != nil {
				t.Fatal(err)
			}
			if !binned.Binned() || binned.CodeBits() == 0 {
				t.Fatal("Binned option did not produce a binned engine")
			}

			want := float.Predict(ds)
			got := binned.Predict(ds)
			for i := range want {
				if got[i] != want[i] {
					t.Fatalf("%v: dataset score[%d] = %v, want %v", q, i, got[i], want[i])
				}
			}

			rng := rand.New(rand.NewSource(int64(q)))
			feats, vals := thresholdRows(rng, m.forest.Splits, 200)
			wantRows := float.PredictRows(feats, vals)
			gotRows := binned.PredictRows(feats, vals)
			for i := range wantRows {
				if gotRows[i] != wantRows[i] {
					t.Fatalf("%v: boundary-row score[%d] = %v, want %v", q, i, gotRows[i], wantRows[i])
				}
			}
			k := binned.NumClass()
			for i := range feats {
				row := binned.PredictRow(feats[i], vals[i])
				for c := 0; c < k; c++ {
					if row[c] != wantRows[i*k+c] {
						t.Fatalf("%v: PredictRow(%d)[%d] = %v, want %v", q, i, c, row[c], wantRows[i*k+c])
					}
				}
			}
		})
	}
}

// TestBinnedRequiresSplits pins NewPredictor's refusal to build a binned
// engine for a model without candidate splits (e.g. decoded from an older
// serialization).
func TestBinnedRequiresSplits(t *testing.T) {
	m, _ := trainSmall(t, 2)
	m.forest.Splits = nil
	if m.HasBins() {
		t.Fatal("HasBins true after clearing splits")
	}
	if _, err := NewPredictor(m, PredictorOptions{Binned: true}); err == nil {
		t.Fatal("NewPredictor(Binned) succeeded without splits")
	}
	if _, err := NewPredictor(m, PredictorOptions{}); err != nil {
		t.Fatalf("float predictor should not need splits: %v", err)
	}
}

// TestBinnedSurvivesRoundtrip checks that candidate splits ride through
// Encode/Decode so a served model file can still compile the binned engine,
// bit-identically.
func TestBinnedSurvivesRoundtrip(t *testing.T) {
	m, ds := trainSmall(t, 3)
	enc, err := m.Encode()
	if err != nil {
		t.Fatal(err)
	}
	back, err := DecodeModel(enc)
	if err != nil {
		t.Fatal(err)
	}
	if !back.HasBins() {
		t.Fatal("decoded model lost its candidate splits")
	}
	binned, err := NewPredictor(back, PredictorOptions{Binned: true})
	if err != nil {
		t.Fatal(err)
	}
	want := m.Predict(ds)
	got := binned.Predict(ds)
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("score[%d] = %v, want %v", i, got[i], want[i])
		}
	}
}
