package experiments

import (
	"vero/internal/cluster"
	"vero/internal/systems"
)

// Figure 10: breakdown comparison of the quadrants over synthetic
// datasets. QD2 is the horizontal+row baseline (LightGBM's policy), QD4 is
// Vero, QD3 the vertical+column baseline — all in the same code base, as
// in Section 5.2. Paper workloads are 5M-50M x 25K-100K on 8 workers; the
// scaled shapes keep the same N:D regimes.

// fig10Run executes one panel: the given systems across the given
// workloads.
func fig10Run(workloads []struct {
	label   string
	n, d, c int
	density float64
}, layers int, ss []systems.System, scale float64) ([]Point, error) {
	var out []Point
	for _, wl := range workloads {
		ds, err := synthetic(scaleN(wl.n, scale), wl.d, wl.c, wl.density, 1002)
		if err != nil {
			return nil, err
		}
		for _, sys := range ss {
			p, err := perTree(ds, sys, quadrantConfig(layers), 4, cluster.Gigabit())
			if err != nil {
				return nil, err
			}
			p.Workload = wl.label
			out = append(out, p)
		}
	}
	return out, nil
}

type fig10Workload = struct {
	label   string
	n, d, c int
	density float64
}

// Fig10a: impact of instance number on partitioning (paper: D=100, C=2,
// L=8, N=5M..20M). Low dimensionality with growing N favors horizontal.
func Fig10a(scale float64) ([]Point, error) {
	var wls []fig10Workload
	for _, n := range []int{10000, 20000, 30000, 40000} {
		wls = append(wls, fig10Workload{label: "N=" + fmtCount(scaleN(n, scale)), n: n, d: 100, c: 2, density: 0.2})
	}
	return fig10Run(wls, 6, []systems.System{systems.LightGBM, systems.Vero}, scale)
}

// Fig10b: impact of dimensionality (paper: N=50M, C=2, L=8, D=25K..100K).
// Histogram aggregation volume grows linearly in D for horizontal.
func Fig10b(scale float64) ([]Point, error) {
	var wls []fig10Workload
	for _, d := range []int{500, 1000, 1500, 2000} {
		wls = append(wls, fig10Workload{label: "D=" + fmtCount(d), n: 8000, d: d, c: 2, density: 0.05})
	}
	return fig10Run(wls, 6, []systems.System{systems.LightGBM, systems.Vero}, scale)
}

// Fig10c: impact of tree depth (paper: N=50M, D=100K, L=8..10).
// Horizontal aggregation grows exponentially with depth, vertical
// placement broadcasts linearly.
func Fig10c(scale float64) ([]Point, error) {
	var out []Point
	for _, layers := range []int{6, 7, 8} {
		wls := []fig10Workload{{label: "L=" + fmtCount(layers), n: 8000, d: 1000, c: 2, density: 0.05}}
		pts, err := fig10Run(wls, layers, []systems.System{systems.LightGBM, systems.Vero}, scale)
		if err != nil {
			return nil, err
		}
		out = append(out, pts...)
	}
	return out, nil
}

// Fig10d: impact of the number of classes (paper: N=50M, D=25K, C=3..10).
// Horizontal aggregation volume is proportional to C.
func Fig10d(scale float64) ([]Point, error) {
	var wls []fig10Workload
	for _, c := range []int{3, 5, 10} {
		wls = append(wls, fig10Workload{label: "C=" + fmtCount(c), n: 8000, d: 500, c: c, density: 0.05})
	}
	return fig10Run(wls, 6, []systems.System{systems.LightGBM, systems.Vero}, scale)
}

// Fig10e: memory breakdown vs dimensionality — same workloads as Fig10b;
// consumers read the HistMB/DataMB fields.
func Fig10e(scale float64) ([]Point, error) { return Fig10b(scale) }

// Fig10f: memory breakdown vs classes — same workloads as Fig10d.
func Fig10f(scale float64) ([]Point, error) { return Fig10d(scale) }

// Fig10g: storage patterns on a tiny-N, high-D dataset (paper: N=10K,
// D=25K..100K) — the one regime where column-store (QD3) wins.
func Fig10g(scale float64) ([]Point, error) {
	var wls []fig10Workload
	for _, d := range []int{1000, 2000, 3000, 4000} {
		wls = append(wls, fig10Workload{label: "D=" + fmtCount(d), n: 1000, d: d, c: 2, density: 0.05})
	}
	return fig10Run(wls, 6, []systems.System{systems.QD3Hybrid, systems.Vero}, scale)
}

// Fig10h: storage patterns vs instance number (paper: D=100K, N=10M..40M).
// Row-store (QD4) wins as N grows; column-store pays binary searches.
func Fig10h(scale float64) ([]Point, error) {
	var wls []fig10Workload
	for _, n := range []int{5000, 10000, 15000, 20000} {
		wls = append(wls, fig10Workload{label: "N=" + fmtCount(scaleN(n, scale)), n: n, d: 2000, c: 2, density: 0.02})
	}
	return fig10Run(wls, 6, []systems.System{systems.QD3Hybrid, systems.Vero}, scale)
}
