package datasets

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"

	"vero/internal/sparse"
)

// ReadLibSVM parses LibSVM/SVMLight format: one instance per line,
// "label idx:value idx:value ...". Indices may be 0- or 1-based; they are
// used as-is, so a 1-based file simply leaves column 0 empty. numClass 1
// marks a regression task; 2 or more a classification task with integer
// labels in [0, numClass).
func ReadLibSVM(r io.Reader, numClass int) (*Dataset, error) {
	scanner := bufio.NewScanner(r)
	scanner.Buffer(make([]byte, 1<<20), 1<<24)
	var rows [][]sparse.KV
	var labels []float32
	maxFeat := uint32(0)
	lineNo := 0
	for scanner.Scan() {
		lineNo++
		line := strings.TrimSpace(scanner.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		fields := strings.Fields(line)
		label, err := strconv.ParseFloat(fields[0], 32)
		if err != nil {
			return nil, fmt.Errorf("datasets: line %d: bad label %q: %w", lineNo, fields[0], err)
		}
		var kvs []sparse.KV
		for _, f := range fields[1:] {
			colon := strings.IndexByte(f, ':')
			if colon < 0 {
				return nil, fmt.Errorf("datasets: line %d: bad pair %q", lineNo, f)
			}
			idx, err := strconv.ParseUint(f[:colon], 10, 32)
			if err != nil {
				return nil, fmt.Errorf("datasets: line %d: bad index %q: %w", lineNo, f[:colon], err)
			}
			val, err := strconv.ParseFloat(f[colon+1:], 32)
			if err != nil {
				return nil, fmt.Errorf("datasets: line %d: bad value %q: %w", lineNo, f[colon+1:], err)
			}
			kvs = append(kvs, sparse.KV{Index: uint32(idx), Value: float32(val)})
			if uint32(idx) > maxFeat {
				maxFeat = uint32(idx)
			}
		}
		rows = append(rows, kvs)
		labels = append(labels, float32(label))
	}
	if err := scanner.Err(); err != nil {
		return nil, fmt.Errorf("datasets: read: %w", err)
	}
	cols := int(maxFeat) + 1
	if len(rows) == 0 {
		cols = 0
	}
	b := sparse.NewCSRBuilder(cols)
	for i, kvs := range rows {
		if err := b.AddRow(kvs); err != nil {
			return nil, fmt.Errorf("datasets: row %d: %w", i, err)
		}
	}
	task := TaskRegression
	switch {
	case numClass == 2:
		task = TaskBinary
	case numClass > 2:
		task = TaskMulti
	case numClass < 1:
		return nil, fmt.Errorf("datasets: numClass %d", numClass)
	}
	if numClass >= 2 {
		for i, y := range labels {
			if y < 0 || int(y) >= numClass || y != float32(int(y)) {
				return nil, fmt.Errorf("datasets: row %d: label %v outside [0,%d)", i, y, numClass)
			}
		}
	}
	return &Dataset{Name: "libsvm", X: b.Build(), Labels: labels, NumClass: numClass, Task: task}, nil
}

// WriteLibSVM writes the dataset in LibSVM format.
func WriteLibSVM(w io.Writer, d *Dataset) error {
	bw := bufio.NewWriter(w)
	for i := 0; i < d.NumInstances(); i++ {
		if _, err := fmt.Fprintf(bw, "%g", d.Labels[i]); err != nil {
			return err
		}
		feat, val := d.X.Row(i)
		for k := range feat {
			if _, err := fmt.Fprintf(bw, " %d:%g", feat[k], val[k]); err != nil {
				return err
			}
		}
		if _, err := bw.WriteString("\n"); err != nil {
			return err
		}
	}
	return bw.Flush()
}
