package failpoint

import (
	"errors"
	"os"
	"sync"
	"testing"
	"time"
)

func TestDisarmedIsNoOp(t *testing.T) {
	Reset()
	if Enabled() {
		t.Fatal("fresh package reports armed")
	}
	if err := Inject("anything"); err != nil {
		t.Fatalf("disarmed Inject: %v", err)
	}
}

func TestErrorKindFires(t *testing.T) {
	defer Reset()
	if err := Enable("p", "error"); err != nil {
		t.Fatal(err)
	}
	if !Enabled() {
		t.Fatal("not armed after Enable")
	}
	err := Inject("p")
	if !errors.Is(err, ErrInjected) {
		t.Fatalf("want ErrInjected, got %v", err)
	}
	if err := Inject("other"); err != nil {
		t.Fatalf("unrelated point fired: %v", err)
	}
	Disable("p")
	if Enabled() {
		t.Fatal("still armed after Disable of the only point")
	}
	if err := Inject("p"); err != nil {
		t.Fatalf("disabled point fired: %v", err)
	}
}

func TestTriggerCount(t *testing.T) {
	defer Reset()
	if err := Enable("p", "3*error"); err != nil {
		t.Fatal(err)
	}
	for hit := 1; hit <= 5; hit++ {
		err := Inject("p")
		if hit < 3 && err != nil {
			t.Fatalf("hit %d fired early: %v", hit, err)
		}
		if hit >= 3 && !errors.Is(err, ErrInjected) {
			t.Fatalf("hit %d did not fire: %v", hit, err)
		}
	}
}

func TestTriggerCountConcurrent(t *testing.T) {
	defer Reset()
	const workers, perWorker = 8, 50
	if err := Enable("p", "100*error"); err != nil {
		t.Fatal(err)
	}
	var fired, clean int64
	var mu sync.Mutex
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < perWorker; i++ {
				err := Inject("p")
				mu.Lock()
				if err != nil {
					fired++
				} else {
					clean++
				}
				mu.Unlock()
			}
		}()
	}
	wg.Wait()
	// 400 hits against a fire-from-100 spec: exactly 99 dormant.
	if clean != 99 || fired != workers*perWorker-99 {
		t.Fatalf("clean=%d fired=%d, want 99 and %d", clean, fired, workers*perWorker-99)
	}
}

func TestTriggerWindow(t *testing.T) {
	defer Reset()
	if err := Enable("p", "2-4*error"); err != nil {
		t.Fatal(err)
	}
	for hit := 1; hit <= 6; hit++ {
		err := Inject("p")
		inWindow := hit >= 2 && hit <= 4
		if inWindow && !errors.Is(err, ErrInjected) {
			t.Fatalf("hit %d did not fire: %v", hit, err)
		}
		if !inWindow && err != nil {
			t.Fatalf("hit %d fired outside the window: %v", hit, err)
		}
	}
}

func TestSleepKind(t *testing.T) {
	defer Reset()
	if err := Enable("p", "sleep(1)"); err != nil {
		t.Fatal(err)
	}
	start := time.Now()
	if err := Inject("p"); err != nil {
		t.Fatalf("sleep kind returned an error: %v", err)
	}
	if time.Since(start) < time.Millisecond {
		t.Fatal("sleep kind did not sleep")
	}
}

func TestPanicKind(t *testing.T) {
	defer Reset()
	if err := Enable("p", "panic"); err != nil {
		t.Fatal(err)
	}
	defer func() {
		if recover() == nil {
			t.Fatal("panic kind did not panic")
		}
	}()
	_ = Inject("p")
}

func TestEnableFromEnv(t *testing.T) {
	defer Reset()
	t.Setenv(EnvVar, " a=error ; b=2*error , c=exit(7) ")
	if err := EnableFromEnv(); err != nil {
		t.Fatal(err)
	}
	if !errors.Is(Inject("a"), ErrInjected) {
		t.Fatal("a not armed")
	}
	if Inject("b") != nil {
		t.Fatal("b fired on first hit despite 2* prefix")
	}
	if !errors.Is(Inject("b"), ErrInjected) {
		t.Fatal("b did not fire on second hit")
	}
	mu.Lock()
	c := points["c"]
	mu.Unlock()
	if c == nil || c.kind != kindExit || c.exitCode != 7 {
		t.Fatalf("c parsed wrong: %+v", c)
	}

	os.Unsetenv(EnvVar)
	Reset()
	if err := EnableFromEnv(); err != nil {
		t.Fatalf("unset env: %v", err)
	}
	if Enabled() {
		t.Fatal("unset env armed points")
	}
}

func TestSpecErrors(t *testing.T) {
	defer Reset()
	for _, spec := range []string{"", "boom", "0*error", "x*error", "error(5)", "exit(x)", "exit(3"} {
		if err := Enable("p", spec); err == nil {
			t.Errorf("spec %q accepted", spec)
		}
	}
	if err := Enable("", "error"); err == nil {
		t.Error("empty name accepted")
	}
	t.Setenv(EnvVar, "justaname")
	if err := EnableFromEnv(); err == nil {
		t.Error("malformed env entry accepted")
	}
}

func TestReEnableResetsHits(t *testing.T) {
	defer Reset()
	if err := Enable("p", "2*error"); err != nil {
		t.Fatal(err)
	}
	_ = Inject("p") // hit 1, dormant
	if err := Enable("p", "2*error"); err != nil {
		t.Fatal(err)
	}
	if Inject("p") != nil {
		t.Fatal("hit count not reset by re-Enable")
	}
}
