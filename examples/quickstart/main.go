// Quickstart: generate a synthetic binary-classification dataset with the
// paper's generator, train Vero (QD4: vertical partitioning + row-store)
// on a simulated 8-worker cluster, and evaluate on a held-out split.
package main

import (
	"fmt"
	"log"

	"vero/gbdt"
)

func main() {
	ds, err := gbdt.Synthetic(gbdt.SyntheticConfig{
		N: 20000, D: 200, C: 2,
		InformativeRatio: 0.2,
		Density:          0.2,
		LabelNoise:       0.05,
		Seed:             1,
	})
	if err != nil {
		log.Fatal(err)
	}
	train, valid := ds.Split(0.8, 2)

	model, report, err := gbdt.Train(train, gbdt.Options{
		System:  gbdt.SystemVero,
		Workers: 8,
		Trees:   20,
		Layers:  6,
		OnTree: func(i int, elapsed float64, _ *gbdt.Tree) {
			if (i+1)%5 == 0 {
				fmt.Printf("  tree %2d  simulated elapsed %.3fs\n", i+1, elapsed)
			}
		},
	})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("\ntrained %d trees on %d x %d\n", model.NumTrees(), train.NumInstances(), train.NumFeatures())
	fmt.Printf("simulated time: computation %.3fs, communication %.3fs (%.1f MB moved)\n",
		report.CompSeconds, report.CommSeconds, float64(report.CommBytes)/(1<<20))
	fmt.Printf("validation AUC: %.4f  accuracy: %.4f\n",
		gbdt.AUC(model, valid), gbdt.Accuracy(model, valid))
}
