package gbdt_test

import (
	"bytes"
	"fmt"
	"log"
	"os"
	"path/filepath"

	"vero/gbdt"
)

// ExampleTrain is the README quickstart: generate data with the paper's
// synthetic generator, train Vero on a simulated 8-worker cluster, and
// evaluate on a held-out split.
func ExampleTrain() {
	ds, err := gbdt.Synthetic(gbdt.SyntheticConfig{
		N: 4000, D: 50, C: 2,
		InformativeRatio: 0.3, Density: 0.3, Seed: 1,
	})
	if err != nil {
		log.Fatal(err)
	}
	train, valid := ds.Split(0.8, 1)

	model, report, err := gbdt.Train(train, gbdt.Options{
		System: gbdt.SystemVero, Workers: 8, Trees: 10, Layers: 5,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("trees:", model.NumTrees())
	fmt.Println("communicated bytes > 0:", report.CommBytes > 0)
	fmt.Println("validation AUC > 0.80:", gbdt.AUC(model, valid) > 0.80)
	// Output:
	// trees: 10
	// communicated bytes > 0: true
	// validation AUC > 0.80: true
}

// ExampleModel_Predict scores a dataset through the flat serving engine
// and shows the score layout: row-major margins with stride NumClass.
func ExampleModel_Predict() {
	ds, err := gbdt.Synthetic(gbdt.SyntheticConfig{
		N: 2000, D: 30, C: 2,
		InformativeRatio: 0.3, Density: 0.4, Seed: 2,
	})
	if err != nil {
		log.Fatal(err)
	}
	model, _, err := gbdt.Train(ds, gbdt.Options{Workers: 4, Trees: 5, Layers: 4})
	if err != nil {
		log.Fatal(err)
	}

	scores := model.Predict(ds)
	fmt.Println("scores per row:", len(scores)/ds.NumInstances())

	// Single rows use the same engine; margins agree bit-exactly.
	feat, val := ds.X.Row(0)
	row := model.PredictRow(feat, val)
	fmt.Println("single-row matches batch:", row[0] == scores[0])
	// Output:
	// scores per row: 1
	// single-row matches batch: true
}

// ExampleDecodeModel round-trips a model through Encode — the artifact
// cmd/veroserve loads — and verifies predictions survive bit-exactly.
func ExampleDecodeModel() {
	ds, err := gbdt.Synthetic(gbdt.SyntheticConfig{
		N: 2000, D: 30, C: 3,
		InformativeRatio: 0.3, Density: 0.4, Seed: 3,
	})
	if err != nil {
		log.Fatal(err)
	}
	model, _, err := gbdt.Train(ds, gbdt.Options{Workers: 4, Trees: 5, Layers: 4})
	if err != nil {
		log.Fatal(err)
	}

	data, err := model.Encode()
	if err != nil {
		log.Fatal(err)
	}
	decoded, err := gbdt.DecodeModel(data)
	if err != nil {
		log.Fatal(err)
	}

	before, after := model.Predict(ds), decoded.Predict(ds)
	exact := true
	for i := range before {
		if before[i] != after[i] {
			exact = false
		}
	}
	fmt.Println("decoded trees:", decoded.NumTrees())
	fmt.Println("predictions bit-exact:", exact)
	// Output:
	// decoded trees: 5
	// predictions bit-exact: true
}

// ExampleTrain_autoQuadrant trains with automatic quadrant selection:
// the advisor derives the workload from the dataset and network, picks a
// quadrant, and the decision surfaces in the report.
func ExampleTrain_autoQuadrant() {
	ds, err := gbdt.Synthetic(gbdt.SyntheticConfig{
		N: 600, D: 400, C: 2,
		InformativeRatio: 0.4, Density: 0.3, Seed: 42,
	})
	if err != nil {
		log.Fatal(err)
	}
	_, report, err := gbdt.Train(ds, gbdt.Options{
		Quadrant: gbdt.QuadrantAuto, Workers: 4, Trees: 2, Layers: 6, Splits: 16,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("selected:", report.Selection.Quadrant)
	fmt.Println("system:", report.Selection.Advice.System)
	// Output:
	// selected: QD4 (vertical+row)
	// system: vero
}

// ExampleAdviseDataset asks the paper's cost model (Section 3.1) which
// data-management quadrant suits a high-dimensional workload.
func ExampleAdviseDataset() {
	ds, err := gbdt.Synthetic(gbdt.SyntheticConfig{
		N: 3000, D: 20000, C: 2,
		InformativeRatio: 0.1, Density: 0.01, Seed: 4,
	})
	if err != nil {
		log.Fatal(err)
	}
	advice, err := gbdt.AdviseDataset(ds, 8, gbdt.Gigabit())
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("quadrant:", advice.Quadrant)
	fmt.Println("partitioning:", advice.Partitioning)
	// Output:
	// quadrant: 3
	// partitioning: vertical
}

// ExampleTrainFile is the ingestion quickstart: write a training file,
// train through the chunked parallel pipeline with a cache directory,
// and train again — the second run ingests warm from the .vbin binned
// cache (no parse, no binning) yet produces a bit-identical model.
func ExampleTrainFile() {
	dir, err := os.MkdirTemp("", "vero-ingest")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(dir)

	ds, err := gbdt.Synthetic(gbdt.SyntheticConfig{
		N: 2000, D: 40, C: 2,
		InformativeRatio: 0.3, Density: 0.3, Seed: 7,
	})
	if err != nil {
		log.Fatal(err)
	}
	path := filepath.Join(dir, "train.libsvm")
	f, err := os.Create(path)
	if err != nil {
		log.Fatal(err)
	}
	if err := gbdt.WriteLibSVM(f, ds); err != nil {
		log.Fatal(err)
	}
	f.Close()

	opts := gbdt.Options{
		NumClass: 2, CacheDir: filepath.Join(dir, "cache"),
		Workers: 4, Trees: 5, Layers: 4,
	}
	cold, _, err := gbdt.TrainFile(path, opts)
	if err != nil {
		log.Fatal(err)
	}
	_, status, err := gbdt.IngestFile(path, opts) // cache is fresh now
	if err != nil {
		log.Fatal(err)
	}
	warm, _, err := gbdt.TrainFile(path, opts)
	if err != nil {
		log.Fatal(err)
	}
	a, _ := cold.Encode()
	b, _ := warm.Encode()
	fmt.Println("second ingest:", status)
	fmt.Println("bit-identical models:", bytes.Equal(a, b))
	// Output:
	// second ingest: warm
	// bit-identical models: true
}
