// Command veroserve serves single-row and batch JSON predictions for
// models trained with gbdt.Train and saved with Model.Encode (for example
// by `veroctl train -model model.json`).
//
// Usage:
//
//	veroserve -model model.json [flags]
//	veroserve -model main=model.json -model canary=candidate.json -admin [flags]
//
// Each -model flag is name=path (a bare path serves as the "default"
// model); the first -model is the default served by the legacy /v1/model
// and /v1/predict aliases. With -admin, models can be loaded, hot-swapped
// and deleted at runtime without dropping traffic.
//
// Endpoints (see internal/serve and docs/SERVING.md for the wire format):
//
//	curl localhost:8080/healthz
//	curl localhost:8080/v1/models
//	curl localhost:8080/metricz
//	curl -d '{"rows":[{"indices":[0,3],"values":[1.5,-2]}],"proba":true}' localhost:8080/v1/predict
//	curl -d '{"path":"retrained.json"}' localhost:8080/v1/models/default   # -admin only
package main

import (
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"strings"
	"time"

	"vero/gbdt"
	"vero/internal/serve"
)

// modelFlags collects repeated -model name=path flags.
type modelFlags []string

func (m *modelFlags) String() string { return strings.Join(*m, ", ") }
func (m *modelFlags) Set(v string) error {
	*m = append(*m, v)
	return nil
}

// parseSpec splits one -model flag into (name, path). A bare path serves
// as the default model.
func parseSpec(arg string) (name, path string, err error) {
	if eq := strings.IndexByte(arg, '='); eq >= 0 {
		name, path = arg[:eq], arg[eq+1:]
		if name == "" || path == "" {
			return "", "", fmt.Errorf("bad -model %q: want name=path", arg)
		}
		return name, path, nil
	}
	return serve.DefaultModel, arg, nil
}

func main() {
	var models modelFlags
	var (
		addr        = flag.String("addr", ":8080", "listen address")
		workers     = flag.Int("workers", 0, "prediction goroutines per batch (0 = GOMAXPROCS)")
		blockRows   = flag.Int("block-rows", 0, "batch-scoring instance-block size (0 = default, 1 = per-row)")
		maxInflight = flag.Int("max-inflight", 64, "concurrent predict requests per model before queueing")
		maxBatch    = flag.Int("max-batch", 10000, "maximum rows per predict request")
		admin       = flag.Bool("admin", false, "enable model load/hot-swap/delete endpoints")
	)
	flag.Var(&models, "model", "model to serve, as name=path or a bare path (repeatable; first is the default)")
	flag.Parse()
	if len(models) == 0 {
		flag.Usage()
		os.Exit(2)
	}

	logger := log.New(os.Stderr, "veroserve: ", log.LstdFlags)
	var specs []serve.ModelSpec
	for _, arg := range models {
		name, path, err := parseSpec(arg)
		if err != nil {
			logger.Fatal(err)
		}
		data, err := os.ReadFile(path)
		if err != nil {
			logger.Fatal(err)
		}
		model, err := gbdt.DecodeModel(data)
		if err != nil {
			logger.Fatalf("%s: %v", path, err)
		}
		specs = append(specs, serve.ModelSpec{Name: name, Source: path, Model: model})
	}

	srv, err := serve.NewMulti(specs, serve.Options{
		Workers:      *workers,
		BlockRows:    *blockRows,
		MaxInFlight:  *maxInflight,
		MaxBatchRows: *maxBatch,
		EnableAdmin:  *admin,
		Logger:       logger,
	})
	if err != nil {
		logger.Fatal(err)
	}

	for _, st := range srv.Registry().List() {
		def := ""
		if st.Name == srv.DefaultModelName() {
			def = " (default)"
		}
		logger.Printf("model %q v%d%s: %d trees, %d classes, objective %q from %s",
			st.Name, st.Version, def, st.NumTrees, st.NumClass, st.Objective, st.Source)
	}
	if *admin {
		logger.Printf("admin endpoints enabled: POST/DELETE /v1/models/{name}")
	}

	httpSrv := &http.Server{
		Addr:              *addr,
		Handler:           srv.Handler(),
		ReadHeaderTimeout: 10 * time.Second,
	}
	logger.Printf("serving %d model(s) on %s", len(specs), *addr)
	logger.Fatal(httpSrv.ListenAndServe())
}
