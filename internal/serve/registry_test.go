package serve

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"vero/gbdt"
)

// constModel builds a single-leaf model that predicts the constant w for
// every row — the cheapest model whose identity is observable from its
// predictions, which is what the swap tests key on.
func constModel(t testing.TB, w float64) *gbdt.Model {
	t.Helper()
	data := fmt.Sprintf(`{"num_class":1,"learning_rate":1,"init_score":[0],
		"objective":"square","num_feature":4,
		"trees":[{"num_class":1,"nodes":[
			{"feature":-1,"left":-1,"right":-1,"weights":[%g]}]}]}`, w)
	m, err := gbdt.DecodeModel([]byte(data))
	if err != nil {
		t.Fatal(err)
	}
	return m
}

func TestRegistryLoadSwapDelete(t *testing.T) {
	srv, err := NewMulti([]ModelSpec{
		{Name: "a", Source: "a-v1", Model: constModel(t, 1)},
		{Name: "b", Source: "b-v1", Model: constModel(t, 2)},
	}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	reg := srv.Registry()

	if _, err := reg.Load("a", "dup", constModel(t, 9)); err == nil {
		t.Fatal("Load over a live name succeeded; want error")
	}
	st, prior, err := reg.Swap("a", "a-v2", constModel(t, 3))
	if err != nil {
		t.Fatal(err)
	}
	if st.Version != 2 || st.Source != "a-v2" {
		t.Fatalf("swap status %+v, want version 2 source a-v2", st)
	}
	if prior == nil || prior.Version != 1 || prior.Source != "a-v1" {
		t.Fatalf("swap prior %+v, want the replaced v1", prior)
	}
	if names := reg.Names(); len(names) != 2 || names[0] != "a" || names[1] != "b" {
		t.Fatalf("names %v", names)
	}
	// Swap of an unregistered name registers it at version 1, no prior.
	st, prior2, err := reg.Swap("c", "c-v1", constModel(t, 4))
	if err != nil || st.Version != 1 {
		t.Fatalf("swap-register: %v %+v", err, st)
	}
	if prior2 != nil {
		t.Fatalf("swap-register returned prior %+v, want nil", prior2)
	}
	if err := reg.Delete("c"); err != nil {
		t.Fatal(err)
	}
	if err := reg.Delete("c"); err == nil {
		t.Fatal("double delete succeeded")
	}
	list := reg.List()
	if len(list) != 2 || list[0].Name != "a" || list[0].Version != 2 || list[1].Name != "b" {
		t.Fatalf("list %+v", list)
	}
}

// TestRegistrySwapNeverMixesVersions is the hot-swap consistency test,
// run under -race in CI: one goroutine hammers Swap while readers predict
// continuously through the HTTP handler. Every constant model is built so
// its prediction equals its registry version, so a response whose score
// differs from its version proves a request observed two versions.
func TestRegistrySwapNeverMixesVersions(t *testing.T) {
	srv, err := New(constModel(t, 1), "v1", Options{MaxInFlight: 16})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	const swaps = 150
	var done atomic.Bool
	go func() {
		defer done.Store(true)
		for v := 2; v <= swaps; v++ {
			if _, _, err := srv.Registry().Swap(DefaultModel, fmt.Sprintf("v%d", v), constModel(t, float64(v))); err != nil {
				t.Errorf("swap %d: %v", v, err)
				return
			}
		}
	}()

	body := []byte(`{"rows":[{"indices":[0],"values":[1]}]}`)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for !done.Load() {
				resp, err := http.Post(ts.URL+"/v1/predict", "application/json", bytes.NewReader(body))
				if err != nil {
					t.Error(err)
					return
				}
				var out PredictResponse
				err = json.NewDecoder(resp.Body).Decode(&out)
				resp.Body.Close()
				if err != nil {
					t.Error(err)
					return
				}
				if resp.StatusCode != http.StatusOK {
					t.Errorf("predict returned %d", resp.StatusCode)
					return
				}
				if out.Model != DefaultModel || out.Version < 1 || out.Version > swaps {
					t.Errorf("response names model %q v%d", out.Model, out.Version)
					return
				}
				if got := out.Scores[0][0]; got != float64(out.Version) {
					t.Errorf("version %d scored %v: response mixed model versions", out.Version, got)
					return
				}
			}
		}()
	}
	wg.Wait()

	// After the dust settles the final version serves everywhere.
	st, ok := srv.Registry().Status(DefaultModel)
	if !ok || st.Version != swaps {
		t.Fatalf("final status %+v, want version %d", st, swaps)
	}
}

// TestRegistryDirectSwapRace exercises the registry API itself (no HTTP):
// readers resolve a handle and predict on it while swaps land.
func TestRegistryDirectSwapRace(t *testing.T) {
	srv, err := New(constModel(t, 1), "v1", Options{})
	if err != nil {
		t.Fatal(err)
	}
	reg := srv.Registry()
	var done atomic.Bool
	go func() {
		defer done.Store(true)
		for v := 2; v <= 200; v++ {
			if _, _, err := reg.Swap(DefaultModel, "src", constModel(t, float64(v))); err != nil {
				t.Errorf("swap: %v", err)
				return
			}
		}
	}()
	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for !done.Load() {
				h, ok := reg.get(DefaultModel)
				if !ok {
					t.Error("default model vanished")
					return
				}
				got := h.pred.PredictRow([]uint32{0}, []float32{1})[0]
				if got != float64(h.version) {
					t.Errorf("handle v%d predicted %v", h.version, got)
					return
				}
			}
		}()
	}
	wg.Wait()
}

func TestMetricz(t *testing.T) {
	srv, err := New(constModel(t, 5), "m", Options{})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	// Two good requests (3 rows total), one bad.
	for _, body := range []string{
		`{"rows":[{"indices":[0],"values":[1]},{"indices":[],"values":[]}]}`,
		`{"dense":[[0,1,0,0]]}`,
		`{"rows":[{"indices":[0,0],"values":[1,2]}]}`,
	} {
		resp, err := http.Post(ts.URL+"/v1/predict", "application/json", bytes.NewReader([]byte(body)))
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
	}

	resp, err := http.Get(ts.URL + "/metricz")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var mr MetricsResponse
	if err := json.NewDecoder(resp.Body).Decode(&mr); err != nil {
		t.Fatal(err)
	}
	if len(mr.Models) != 1 {
		t.Fatalf("%d models in /metricz, want 1", len(mr.Models))
	}
	m := mr.Models[0]
	if m.Model != DefaultModel || m.Requests != 3 || m.Errors != 1 || m.Rows != 3 || m.InFlight != 0 {
		t.Fatalf("metrics %+v", m)
	}
	if m.LatencyMs.Count != 2 || m.LatencyMs.P50 <= 0 || m.LatencyMs.P99 < m.LatencyMs.P50 {
		t.Fatalf("latency %+v", m.LatencyMs)
	}
}

// TestMetricsCarryAcrossSwap pins that accounting belongs to the served
// name, not one version.
func TestMetricsCarryAcrossSwap(t *testing.T) {
	srv, err := New(constModel(t, 1), "m", Options{})
	if err != nil {
		t.Fatal(err)
	}
	h, _ := srv.Registry().get(DefaultModel)
	h.metrics.observe(time.Millisecond, 4, false)
	if _, _, err := srv.Registry().Swap(DefaultModel, "m2", constModel(t, 2)); err != nil {
		t.Fatal(err)
	}
	h2, _ := srv.Registry().get(DefaultModel)
	snap := h2.metrics.snapshot(h2.name, h2.version, false)
	if snap.Version != 2 || snap.Requests != 1 || snap.Rows != 4 {
		t.Fatalf("post-swap snapshot %+v, want carried-over requests", snap)
	}
}

func TestAdminEndpoints(t *testing.T) {
	dir := t.TempDir()
	writeModel := func(name string, w float64) string {
		t.Helper()
		data, err := constModel(t, w).Encode()
		if err != nil {
			t.Fatal(err)
		}
		path := filepath.Join(dir, name)
		if err := os.WriteFile(path, data, 0o644); err != nil {
			t.Fatal(err)
		}
		return path
	}

	srv, err := New(constModel(t, 1), "seed", Options{EnableAdmin: true})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	post := func(url, body string) (int, []byte) {
		t.Helper()
		resp, err := http.Post(url, "application/json", bytes.NewReader([]byte(body)))
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		var buf bytes.Buffer
		_, _ = buf.ReadFrom(resp.Body)
		return resp.StatusCode, buf.Bytes()
	}

	// Hot-swap the default model from a file.
	path2 := writeModel("m2.json", 42)
	code, body := post(ts.URL+"/v1/models/default", fmt.Sprintf(`{"path":%q}`, path2))
	if code != http.StatusOK {
		t.Fatalf("swap returned %d: %s", code, body)
	}
	var st ModelStatus
	if err := json.Unmarshal(body, &st); err != nil {
		t.Fatal(err)
	}
	if st.Version != 2 || st.Source != path2 {
		t.Fatalf("swap status %+v", st)
	}
	code, body = post(ts.URL+"/v1/predict", `{"rows":[{"indices":[],"values":[]}]}`)
	var pr PredictResponse
	if code != http.StatusOK || json.Unmarshal(body, &pr) != nil || pr.Scores[0][0] != 42 || pr.Version != 2 {
		t.Fatalf("post-swap predict %d %s", code, body)
	}

	// Load a second model, predict against it by name, then delete it.
	path3 := writeModel("m3.json", 7)
	if code, body = post(ts.URL+"/v1/models/shadow", fmt.Sprintf(`{"path":%q}`, path3)); code != http.StatusOK {
		t.Fatalf("load shadow returned %d: %s", code, body)
	}
	code, body = post(ts.URL+"/v1/models/shadow/predict", `{"dense":[[1,2,0,0]]}`)
	if code != http.StatusOK || json.Unmarshal(body, &pr) != nil || pr.Scores[0][0] != 7 || pr.Model != "shadow" {
		t.Fatalf("shadow predict %d %s", code, body)
	}
	req, _ := http.NewRequest(http.MethodDelete, ts.URL+"/v1/models/shadow", nil)
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("delete returned %d", resp.StatusCode)
	}
	if code, _ = post(ts.URL+"/v1/models/shadow/predict", `{"dense":[[1]]}`); code != http.StatusNotFound {
		t.Fatalf("deleted model predict returned %d, want 404", code)
	}
	// The default model cannot be deleted.
	req, _ = http.NewRequest(http.MethodDelete, ts.URL+"/v1/models/default", nil)
	if resp, err = http.DefaultClient.Do(req); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusConflict {
		t.Fatalf("delete default returned %d, want 409", resp.StatusCode)
	}
	// Bad paths fail cleanly.
	if code, _ = post(ts.URL+"/v1/models/default", `{"path":"/nonexistent/nope.json"}`); code != http.StatusBadRequest {
		t.Fatalf("bad path returned %d", code)
	}
	if code, _ = post(ts.URL+"/v1/models/default", `{"path":""}`); code != http.StatusBadRequest {
		t.Fatalf("empty path returned %d", code)
	}
}

func TestAdminDisabledByDefault(t *testing.T) {
	srv, err := New(constModel(t, 1), "seed", Options{})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	resp, err := http.Post(ts.URL+"/v1/models/default", "application/json",
		bytes.NewReader([]byte(`{"path":"x"}`)))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusForbidden {
		t.Fatalf("admin swap with admin disabled returned %d, want 403", resp.StatusCode)
	}
}

func TestModelsListEndpoint(t *testing.T) {
	srv, err := NewMulti([]ModelSpec{
		{Name: "main", Source: "p1", Model: constModel(t, 1)},
		{Name: "canary", Source: "p2", Model: constModel(t, 2)},
	}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	resp, err := http.Get(ts.URL + "/v1/models")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var list ModelList
	if err := json.NewDecoder(resp.Body).Decode(&list); err != nil {
		t.Fatal(err)
	}
	if len(list.Models) != 2 || list.Models[0].Name != "canary" || list.Models[1].Name != "main" {
		t.Fatalf("models %+v", list.Models)
	}
	if !list.Models[1].Default || list.Models[0].Default {
		t.Fatalf("default flag wrong: %+v", list.Models)
	}

	// Named metadata route agrees with the legacy alias for the default.
	for _, path := range []string{"/v1/model", "/v1/models/main"} {
		resp, err := http.Get(ts.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		var info ModelInfo
		err = json.NewDecoder(resp.Body).Decode(&info)
		resp.Body.Close()
		if err != nil || info.Name != "main" || info.NumTrees != 1 {
			t.Fatalf("%s: %+v (%v)", path, info, err)
		}
	}
}
