package core

import (
	"testing"

	"vero/internal/cluster"
	"vero/internal/datasets"
	"vero/internal/sparse"
	"vero/internal/testutil"
)

// TestSingleWorker: every quadrant degenerates gracefully to W=1.
func TestSingleWorker(t *testing.T) {
	ds := testutil.Binary(t, 600, 20, 0.4, 42)
	for _, q := range []Quadrant{QD1, QD2, QD3, QD4} {
		res, _ := trainQuadrant(t, ds, smallConfig(q), 1)
		if res.Forest.NumTrees() != 3 {
			t.Fatalf("%v: %d trees", q, res.Forest.NumTrees())
		}
	}
}

// TestMoreWorkersThanRows: empty shards must not break any quadrant.
func TestMoreWorkersThanRows(t *testing.T) {
	ds := testutil.Binary(t, 6, 10, 0.8, 42)
	cfg := Config{Quadrant: QD2, Trees: 1, Layers: 3, Splits: 4}
	for _, q := range []Quadrant{QD1, QD2, QD3, QD4} {
		cfg.Quadrant = q
		cl := cluster.New(8, cluster.Gigabit())
		if _, err := Train(cl, ds, cfg); err != nil {
			t.Fatalf("%v with 8 workers on 6 rows: %v", q, err)
		}
	}
}

// TestConstantFeaturesSkipped: features with a single value admit no split
// and must simply be ignored.
func TestConstantFeaturesSkipped(t *testing.T) {
	b := sparse.NewCSRBuilder(3)
	labels := make([]float32, 200)
	for i := 0; i < 200; i++ {
		v := float32(i%2*2 - 1)
		// Feature 0 constant, feature 1 informative, feature 2 absent.
		if err := b.AddRow([]sparse.KV{{Index: 0, Value: 7}, {Index: 1, Value: v}}); err != nil {
			t.Fatal(err)
		}
		labels[i] = float32(i % 2)
	}
	ds := &datasets.Dataset{Name: "const", X: b.Build(), Labels: labels, NumClass: 2, Task: datasets.TaskBinary}
	for _, q := range []Quadrant{QD2, QD4} {
		cl := cluster.New(2, cluster.Gigabit())
		res, err := Train(cl, ds, Config{Quadrant: q, Trees: 1, Layers: 3, Splits: 8})
		if err != nil {
			t.Fatalf("%v: %v", q, err)
		}
		for _, n := range res.Forest.Trees[0].Nodes {
			if !n.IsLeaf() && (n.Feature == 0 || n.Feature == 2) {
				t.Fatalf("%v: split on unusable feature %d", q, n.Feature)
			}
		}
		// Feature 1 separates the classes perfectly: the root must split.
		if res.Forest.Trees[0].NumLeaves() < 2 {
			t.Fatalf("%v: tree did not split at all", q)
		}
	}
}

// TestAllConstantDatasetFails: no splittable feature at all is an error
// surfaced at preparation time, not a crash.
func TestAllConstantDatasetFails(t *testing.T) {
	b := sparse.NewCSRBuilder(2)
	labels := make([]float32, 50)
	for i := 0; i < 50; i++ {
		if err := b.AddRow([]sparse.KV{{Index: 0, Value: 1}, {Index: 1, Value: 2}}); err != nil {
			t.Fatal(err)
		}
		labels[i] = float32(i % 2)
	}
	ds := &datasets.Dataset{Name: "allconst", X: b.Build(), Labels: labels, NumClass: 2, Task: datasets.TaskBinary}
	cl := cluster.New(2, cluster.Gigabit())
	if _, err := Train(cl, ds, Config{Quadrant: QD2, Trees: 1, Layers: 3, Splits: 8}); err == nil {
		t.Fatal("all-constant dataset accepted")
	}
}

// TestDenseDataset: fully dense rows (no missing values) across quadrants.
func TestDenseDataset(t *testing.T) {
	ds, err := datasets.Synthetic(datasets.SyntheticConfig{
		N: 800, D: 15, C: 2, InformativeRatio: 0.5, Density: 1.0, Seed: 13,
	})
	if err != nil {
		t.Fatal(err)
	}
	ref, _ := trainQuadrant(t, ds, smallConfig(QD2), 3)
	for _, q := range []Quadrant{QD1, QD3, QD4} {
		res, _ := trainQuadrant(t, ds, smallConfig(q), 3)
		forestsEqual(t, ref.Forest, res.Forest, "QD2", q.String())
	}
}

// TestDeterministicRerun: identical config and data give a bit-identical
// model on a fresh run.
func TestDeterministicRerun(t *testing.T) {
	ds := testutil.Binary(t, 700, 25, 0.4, 42)
	a, _ := trainQuadrant(t, ds, smallConfig(QD4), 3)
	b, _ := trainQuadrant(t, ds, smallConfig(QD4), 3)
	forestsEqual(t, a.Forest, b.Forest, "run1", "run2")
}

// TestConcurrentClusterMatchesSequential: running workers on goroutines
// must not change the model (order-normalized reductions).
func TestConcurrentClusterMatchesSequential(t *testing.T) {
	ds := testutil.Binary(t, 700, 25, 0.4, 42)
	seq, _ := trainQuadrant(t, ds, smallConfig(QD4), 3)
	for _, q := range []Quadrant{QD1, QD2, QD3, QD4} {
		cl := cluster.New(3, cluster.Gigabit(), cluster.WithConcurrent())
		res, err := Train(cl, ds, smallConfig(q))
		if err != nil {
			t.Fatalf("%v concurrent: %v", q, err)
		}
		forestsEqual(t, seq.Forest, res.Forest, "sequential", "concurrent "+q.String())
	}
}

// TestDeepTreesSmallData: L much deeper than the data supports — frontier
// collapses early and the loop must terminate cleanly.
func TestDeepTreesSmallData(t *testing.T) {
	ds := testutil.Binary(t, 60, 8, 0.8, 42)
	cfg := Config{Quadrant: QD4, Trees: 2, Layers: 12, Splits: 8}
	cl := cluster.New(2, cluster.Gigabit())
	res, err := Train(cl, ds, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if d := res.Forest.Trees[0].MaxDepth(); d > 12 {
		t.Fatalf("tree depth %d exceeds L", d)
	}
}

// TestGammaPrunesToStump: a huge gamma must stop all splitting, leaving
// single-leaf trees whose weights still update predictions.
func TestGammaPrunesToStump(t *testing.T) {
	ds := testutil.Binary(t, 300, 10, 0.5, 42)
	cfg := Config{Quadrant: QD2, Trees: 2, Layers: 5, Splits: 8, Gamma: 1e12}
	cl := cluster.New(2, cluster.Gigabit())
	res, err := Train(cl, ds, cfg)
	if err != nil {
		t.Fatal(err)
	}
	for _, tr := range res.Forest.Trees {
		if tr.NumLeaves() != 1 {
			t.Fatalf("tree has %d leaves under gamma=1e12", tr.NumLeaves())
		}
	}
}

// TestMinChildHessLimitsLeaves: a large min-child constraint must keep
// leaf instance counts above the threshold (hessian of logistic <= 1/4
// per instance, so count >= 4*MinChildHess).
func TestMinChildHessLimitsLeaves(t *testing.T) {
	ds := testutil.Binary(t, 500, 15, 0.5, 42)
	cfg := Config{Quadrant: QD4, Trees: 1, Layers: 6, Splits: 8, MinChildHess: 10}
	cl := cluster.New(2, cluster.Gigabit())
	res, err := Train(cl, ds, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Forest.Trees[0].NumLeaves() > 16 {
		t.Fatalf("%d leaves despite MinChildHess", res.Forest.Trees[0].NumLeaves())
	}
}

// TestRegressionAcrossQuadrants: square loss produces identical models in
// every quadrant too.
func TestRegressionAcrossQuadrants(t *testing.T) {
	ds, err := datasets.SyntheticRegression(600, 15, 0.5, 0.1, 17)
	if err != nil {
		t.Fatal(err)
	}
	cfg := smallConfig(QD2)
	cfg.Objective = "square"
	ref, _ := trainQuadrant(t, ds, cfg, 3)
	for _, q := range []Quadrant{QD1, QD3, QD4} {
		cfg.Quadrant = q
		res, _ := trainQuadrant(t, ds, cfg, 3)
		forestsEqual(t, ref.Forest, res.Forest, "QD2", q.String())
	}
}

// TestMultiClassAcrossQuadrants: softmax with vector leaves is identical
// in every quadrant.
func TestMultiClassAcrossQuadrants(t *testing.T) {
	ds := testutil.Multi(t, 900, 25, 4, 0.3, 43)
	ref, _ := trainQuadrant(t, ds, smallConfig(QD2), 3)
	for _, q := range []Quadrant{QD1, QD3, QD4} {
		res, _ := trainQuadrant(t, ds, smallConfig(q), 3)
		forestsEqual(t, ref.Forest, res.Forest, "QD2", q.String())
	}
}
