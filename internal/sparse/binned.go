package sparse

import "fmt"

// MaxBins is the largest number of histogram bins per feature supported by
// the binned formats. Bin indices are stored in uint16; the paper uses
// q=20 candidate splits, far below this ceiling.
const MaxBins = 1 << 16

// BinnedCSR stores a quantized dataset in row format: each entry is a
// (feature index, bin index) pair. This is the storage used by QD2
// (horizontal + row) and, after the horizontal-to-vertical transformation,
// by QD4/Vero (vertical + row).
type BinnedCSR struct {
	rows, cols int
	RowPtr     []int64
	Feat       []uint32
	Bin        []uint16
}

// Rows returns the number of instances.
func (m *BinnedCSR) Rows() int { return m.rows }

// Cols returns the feature dimensionality.
func (m *BinnedCSR) Cols() int { return m.cols }

// NNZ returns the number of stored entries.
func (m *BinnedCSR) NNZ() int { return len(m.Feat) }

// Row returns the feature indices and bin indices of row i. The slices
// alias matrix storage.
func (m *BinnedCSR) Row(i int) (feat []uint32, bin []uint16) {
	lo, hi := m.RowPtr[i], m.RowPtr[i+1]
	return m.Feat[lo:hi], m.Bin[lo:hi]
}

// BinnedCSC stores a quantized dataset in column format: each entry is an
// (instance index, bin index) pair. This is the storage used by QD1
// (horizontal + column) and QD3 (vertical + column).
type BinnedCSC struct {
	rows, cols int
	ColPtr     []int64
	Inst       []uint32
	Bin        []uint16
}

// Rows returns the number of instances.
func (m *BinnedCSC) Rows() int { return m.rows }

// Cols returns the feature dimensionality.
func (m *BinnedCSC) Cols() int { return m.cols }

// NNZ returns the number of stored entries.
func (m *BinnedCSC) NNZ() int { return len(m.Inst) }

// Col returns the instance indices and bin indices of column j, sorted by
// instance index. The slices alias matrix storage.
func (m *BinnedCSC) Col(j int) (inst []uint32, bin []uint16) {
	lo, hi := m.ColPtr[j], m.ColPtr[j+1]
	return m.Inst[lo:hi], m.Bin[lo:hi]
}

// ColNNZ returns the number of stored entries in column j.
func (m *BinnedCSC) ColNNZ(j int) int { return int(m.ColPtr[j+1] - m.ColPtr[j]) }

// Binner quantizes raw feature values into histogram-bin indices given
// per-feature candidate split points. Bin b of feature f covers
// (splits[f][b-1], splits[f][b]]; values at or below splits[f][0] map to
// bin 0; values above the last split map to the last bin.
type Binner struct {
	// Splits[f] holds the ascending candidate split values of feature f.
	Splits [][]float32
}

// NumBins returns the number of bins of feature f (== len(Splits[f])).
func (b *Binner) NumBins(f int) int { return len(b.Splits[f]) }

// MaxNumBins returns the largest per-feature bin count.
func (b *Binner) MaxNumBins() int {
	m := 0
	for _, s := range b.Splits {
		if len(s) > m {
			m = len(s)
		}
	}
	return m
}

// BinValue maps one raw value of feature f to its bin index by binary
// search over the candidate splits.
func (b *Binner) BinValue(f int, v float32) uint16 {
	s := b.Splits[f]
	lo, hi := 0, len(s)-1
	// Find the first split >= v; values above all splits clamp to the last
	// bin, matching how histogram-based GBDT treats out-of-range values.
	for lo < hi {
		mid := (lo + hi) / 2
		if s[mid] < v {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return uint16(lo)
}

// BinCSR quantizes a raw CSR into a BinnedCSR.
func (b *Binner) BinCSR(m *CSR) (*BinnedCSR, error) {
	if len(b.Splits) != m.Cols() {
		return nil, fmt.Errorf("sparse: binner has %d features, matrix has %d", len(b.Splits), m.Cols())
	}
	bins := make([]uint16, m.NNZ())
	for i := 0; i < m.Rows(); i++ {
		lo, hi := m.RowPtr[i], m.RowPtr[i+1]
		for k := lo; k < hi; k++ {
			bins[k] = b.BinValue(int(m.Feat[k]), m.Val[k])
		}
	}
	return &BinnedCSR{rows: m.Rows(), cols: m.Cols(), RowPtr: m.RowPtr, Feat: m.Feat, Bin: bins}, nil
}

// BinCSC quantizes a raw CSC into a BinnedCSC.
func (b *Binner) BinCSC(m *CSC) (*BinnedCSC, error) {
	if len(b.Splits) != m.Cols() {
		return nil, fmt.Errorf("sparse: binner has %d features, matrix has %d", len(b.Splits), m.Cols())
	}
	bins := make([]uint16, m.NNZ())
	for j := 0; j < m.Cols(); j++ {
		lo, hi := m.ColPtr[j], m.ColPtr[j+1]
		for k := lo; k < hi; k++ {
			bins[k] = b.BinValue(j, m.Val[k])
		}
	}
	return &BinnedCSC{rows: m.Rows(), cols: m.Cols(), ColPtr: m.ColPtr, Inst: m.Inst, Bin: bins}, nil
}

// ToCSC transposes a BinnedCSR into BinnedCSC form, O(nnz).
func (m *BinnedCSR) ToCSC() *BinnedCSC {
	colPtr := make([]int64, m.cols+1)
	for _, f := range m.Feat {
		colPtr[f+1]++
	}
	for j := 0; j < m.cols; j++ {
		colPtr[j+1] += colPtr[j]
	}
	inst := make([]uint32, m.NNZ())
	bin := make([]uint16, m.NNZ())
	next := make([]int64, m.cols)
	copy(next, colPtr[:m.cols])
	for i := 0; i < m.rows; i++ {
		feats, bins := m.Row(i)
		for k, f := range feats {
			p := next[f]
			inst[p] = uint32(i)
			bin[p] = bins[k]
			next[f] = p + 1
		}
	}
	return &BinnedCSC{rows: m.rows, cols: m.cols, ColPtr: colPtr, Inst: inst, Bin: bin}
}

// NewBinnedCSR assembles a BinnedCSR from raw parts with validation. It is
// used by the transformation pipeline when decoding blockified column
// groups back into row storage.
func NewBinnedCSR(rows, cols int, rowPtr []int64, feat []uint32, bin []uint16) (*BinnedCSR, error) {
	if len(rowPtr) != rows+1 {
		return nil, fmt.Errorf("sparse: rowPtr has %d entries, want %d", len(rowPtr), rows+1)
	}
	if len(feat) != len(bin) {
		return nil, fmt.Errorf("sparse: %d feature indices but %d bins", len(feat), len(bin))
	}
	if rowPtr[0] != 0 || rowPtr[rows] != int64(len(feat)) {
		return nil, fmt.Errorf("sparse: rowPtr endpoints [%d,%d], want [0,%d]", rowPtr[0], rowPtr[rows], len(feat))
	}
	for _, f := range feat {
		if int(f) >= cols {
			return nil, fmt.Errorf("sparse: feature index %d out of range (cols=%d)", f, cols)
		}
	}
	return &BinnedCSR{rows: rows, cols: cols, RowPtr: rowPtr, Feat: feat, Bin: bin}, nil
}
