package gbdt

import (
	"encoding/binary"
	"fmt"

	"vero/internal/advisor"
	"vero/internal/loss"
	"vero/internal/tree"
)

// Model introspection.

// ImportanceKind selects how feature importance is aggregated: "gain"
// (summed split gains, Equation 2) or "split" (split counts).
type ImportanceKind = tree.ImportanceKind

// Importance kinds.
const (
	ImportanceGain  = tree.ImportanceGain
	ImportanceSplit = tree.ImportanceSplit
)

// RankedFeature is one entry of a sorted importance report.
type RankedFeature = tree.RankedFeature

// FeatureImportance aggregates importance over the model's trees.
func (m *Model) FeatureImportance(kind ImportanceKind) (map[int32]float64, error) {
	return m.forest.FeatureImportance(kind)
}

// TopFeatures returns the k most important features.
func (m *Model) TopFeatures(kind ImportanceKind, k int) ([]RankedFeature, error) {
	return m.forest.TopFeatures(kind, k)
}

// DumpTree renders tree i as an indented text diagram.
func (m *Model) DumpTree(i int) (string, error) {
	if i < 0 || i >= len(m.forest.Trees) {
		return "", fmt.Errorf("gbdt: tree %d out of range (%d trees)", i, len(m.forest.Trees))
	}
	return m.forest.Trees[i].Dump(), nil
}

// ModelStats summarizes a trained forest.
type ModelStats = tree.Stats

// Summarize computes forest statistics (node/leaf counts, depth, gains).
func (m *Model) Summarize() ModelStats { return m.forest.Summarize() }

// Early stopping.

// TrainWithEarlyStopping trains like Train but monitors a validation set
// and stops when the metric (AUC for binary, accuracy for multi-class,
// RMSE for regression) has not improved for `patience` consecutive trees.
// It returns the model truncated to the best iteration.
//
// On a distributed cluster (Options.Distributed) rank 0 owns the
// validation set: it evaluates the metric after every tree and broadcasts
// a stop/continue bit plus the best iteration as a real data-carrying
// collective, charged against the alpha-beta model like every other
// collective, so all ranks halt on — and truncate to — the same tree.
// Other ranks' valid argument only sizes scratch; pass the same split
// everywhere (or any dataset with the validation shape).
func TrainWithEarlyStopping(train, valid *Dataset, opts Options, patience int) (*Model, *Report, error) {
	if patience <= 0 {
		return nil, nil, fmt.Errorf("gbdt: patience %d", patience)
	}
	opts = opts.withDefaults()
	numClass := 1
	if train.NumClass > 2 {
		numClass = train.NumClass
	}
	eta := opts.LearningRate
	if eta == 0 {
		eta = 0.3
	}
	margins := make([]float64, valid.NumInstances()*numClass)
	higherBetter := train.NumClass >= 2
	best := -1.0
	if !higherBetter {
		best = 1e300 // RMSE: lower is better
	}
	bestIter := -1
	sinceBest := 0
	stop := false
	userOnTree := opts.OnTree

	cl, err := connectCluster(opts, meshFingerprint(train))
	if err != nil {
		return nil, nil, err
	}
	defer cl.Close()
	base := baseConfig(opts)
	base.OnTree = func(i int, elapsed float64, tr *tree.Tree) {
		if !cl.Distributed() || cl.Rank() == 0 {
			for r := 0; r < valid.NumInstances(); r++ {
				feat, val := valid.X.Row(r)
				tr.Predict(feat, val, eta, margins[r*numClass:(r+1)*numClass])
			}
			var metric float64
			switch {
			case numClass > 1:
				metric = loss.MultiAccuracy(margins, valid.Labels, numClass)
			case train.NumClass == 2:
				metric = loss.AUC(margins, valid.Labels)
			default:
				metric = loss.RMSE(margins, valid.Labels)
			}
			improved := metric > best
			if !higherBetter {
				improved = metric < best
			}
			if improved {
				best = metric
				bestIter = i
				sinceBest = 0
			} else {
				sinceBest++
			}
			stop = sinceBest >= patience
		}
		if cl.Distributed() {
			// The validation owner's verdict travels as a real collective —
			// every rank participates every round, so the mesh stays in
			// lockstep and all ranks halt on (and truncate to) the same
			// tree. 10 bytes: stop bit + best iteration.
			rec := make([]byte, 10)
			if cl.Rank() == 0 {
				if stop {
					rec[0] = 1
				}
				binary.LittleEndian.PutUint64(rec[1:9], uint64(int64(bestIter)))
			}
			cl.BroadcastBytes("train.earlystop", rec, 0)
			stop = rec[0] == 1
			bestIter = int(int64(binary.LittleEndian.Uint64(rec[1:9])))
		}
		if userOnTree != nil {
			userOnTree(i, elapsed, tr)
		}
	}
	base.ShouldStop = func(int) bool { return stop }

	res, err := runTrain(cl, train, opts, base)
	if err != nil {
		return nil, nil, err
	}
	if cl.Distributed() {
		if err := cl.SyncMeasured(); err != nil {
			return nil, nil, err
		}
	}
	// Truncate to the best iteration.
	if bestIter >= 0 && bestIter+1 < len(res.Forest.Trees) {
		res.Forest.Trees = res.Forest.Trees[:bestIter+1]
	}
	return &Model{forest: res.Forest}, buildReport(cl, res), nil
}

// Advisor: the paper's future work (Section 6) — choose a data-management
// policy from the workload and environment.

// AdvisorWorkload describes a job for Advise.
type AdvisorWorkload = advisor.Workload

// Advice is the advisor's recommendation.
type Advice = advisor.Recommendation

// Advise recommends a data-management policy (quadrant and system) for a
// workload, using the paper's cost model and decision matrix (Table 1).
func Advise(w AdvisorWorkload) (Advice, error) { return advisor.Recommend(w) }

// AdviseDataset recommends a policy for a concrete dataset on a cluster
// of the given size and network. It shares its workload derivation with
// the trainer's QuadrantAuto path (advisor.FromDataset), so for default
// hyper-parameters advice and auto-selection agree; auto-selection
// additionally folds the configured layers, splits and objective into
// the workload it scores.
func AdviseDataset(ds *Dataset, workers int, net NetworkModel) (Advice, error) {
	return advisor.Recommend(advisor.FromDataset(ds, workers, net))
}
