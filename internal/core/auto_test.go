package core

import (
	"testing"

	"vero/internal/cluster"
	"vero/internal/datasets"
	"vero/internal/testutil"
)

// autoShape is one workload in TestAutoQuadrantSelection's sweep.
type autoShape struct {
	name    string
	n, d    int
	density float64
	layers  int
	splits  int
	want    Quadrant
}

// autoShapes covers three regimes of the advisor's decision matrix
// (Table 1): high-dimensional sparse data (vertical+row wins), low
// dimensionality with many instances (horizontal+row wins), and very few
// instances relative to D (vertical+column wins).
var autoShapes = []autoShape{
	{name: "wide", n: 600, d: 400, density: 0.3, layers: 6, splits: 16, want: QD4},
	{name: "narrow", n: 20000, d: 5, density: 1.0, layers: 4, splits: 8, want: QD2},
	{name: "tall-col", n: 500, d: 1500, density: 0.1, layers: 6, splits: 16, want: QD3},
}

// TestAutoQuadrantSelection trains with QuadrantAuto on datasets whose
// shapes select three different quadrants, checks the recorded selection,
// and pins the model to the explicit run of the chosen quadrant — auto
// must only pick the policy, never change the trees.
func TestAutoQuadrantSelection(t *testing.T) {
	for _, s := range autoShapes {
		t.Run(s.name, func(t *testing.T) {
			ds, err := datasets.Synthetic(datasets.SyntheticConfig{
				N: s.n, D: s.d, C: 2, InformativeRatio: 0.4, Density: s.density, Seed: 42,
			})
			if err != nil {
				t.Fatal(err)
			}
			cfg := Config{Quadrant: QuadrantAuto, Trees: 2, Layers: s.layers, Splits: s.splits}
			cl := cluster.New(4, cluster.Gigabit())
			res, err := Train(cl, ds, cfg)
			if err != nil {
				t.Fatal(err)
			}
			if res.Selection == nil {
				t.Fatal("auto run recorded no selection")
			}
			if res.Selection.Quadrant != s.want {
				t.Fatalf("selected %v, want %v (rationale: %s)",
					res.Selection.Quadrant, s.want, res.Selection.Advice.Rationale)
			}
			if res.Selection.Advice.Rationale == "" {
				t.Fatal("selection has no rationale")
			}
			if wl := res.Selection.Workload; wl.N != int64(s.n) || wl.D != int64(s.d) ||
				wl.W != 4 || wl.L != int64(s.layers) || wl.Q != int64(s.splits) {
				t.Fatalf("selection workload %+v does not match dataset/config", wl)
			}
			if res.Forest.NumTrees() != 2 {
				t.Fatalf("auto run trained %d trees, want 2", res.Forest.NumTrees())
			}

			cfg.Quadrant = s.want
			explicit, _ := trainQuadrant(t, ds, cfg, 4)
			forestsEqual(t, explicit.Forest, res.Forest, "explicit", "auto")
			if explicit.Selection != nil {
				t.Fatal("explicit run recorded a selection")
			}
		})
	}
}

// TestAutoRejectsFullCopy: FullCopy pins QD4, which the advisor may not
// choose — the combination is a config error, same as FullCopy+QD2.
func TestAutoRejectsFullCopy(t *testing.T) {
	ds := testutil.Binary(t, 100, 10, 0.5, 42)
	cl := cluster.New(2, cluster.Gigabit())
	if _, err := Train(cl, ds, Config{Quadrant: QuadrantAuto, FullCopy: true}); err == nil {
		t.Fatal("accepted FullCopy with QuadrantAuto")
	}
}

func TestParseQuadrant(t *testing.T) {
	good := map[string]Quadrant{
		"auto": QuadrantAuto, "AUTO": QuadrantAuto,
		"qd1": QD1, "QD2": QD2, "qd3": QD3, "qd4": QD4,
		"1": QD1, "2": QD2, "3": QD3, "4": QD4,
	}
	for s, want := range good {
		q, err := ParseQuadrant(s)
		if err != nil {
			t.Fatalf("ParseQuadrant(%q): %v", s, err)
		}
		if q != want {
			t.Fatalf("ParseQuadrant(%q) = %v, want %v", s, q, want)
		}
	}
	for _, s := range []string{"", "qd5", "0", "horizontal", "5"} {
		if _, err := ParseQuadrant(s); err == nil {
			t.Fatalf("ParseQuadrant(%q) accepted", s)
		}
	}
}
