package core

import (
	"math/bits"

	"vero/internal/bitmap"
	"vero/internal/cluster"
	"vero/internal/histogram"
	"vero/internal/index"
	"vero/internal/partition"
	"vero/internal/sparse"
	"vero/internal/tree"
)

// verticalEngine implements the vertical quadrants (QD3: column-store;
// QD4: row-store — Vero). Workers hold complete columns for disjoint
// feature subsets, find local best splits without histogram aggregation,
// and broadcast instance placements as one bitmap per layer (Figure 4(b)).
type verticalEngine struct {
	t *trainer

	groups   [][]int
	ownerOf  []int32             // global feature -> worker
	slotOf   []int32             // global feature -> slot within its group
	shards   []*partition.Shard  // QD4
	fullRows *sparse.BinnedCSR   // QD4 FullCopy (feature-parallel)
	cols     []*sparse.BinnedCSC // QD3: per-worker full columns (slot-indexed)
	blocks   []*rowBlockBuilder  // QD4 out-of-core: per-worker row rebuilders
	numBins  [][]int             // per worker, per slot
	n2i      []*index.NodeToInstance
	i2n      []*index.InstanceToNode // QD3 hybrid
	cw       []*index.ColumnWise     // QD3 column-wise (Yggdrasil)
	hist     []map[int32]*histogram.Hist
	layout   []histogram.Layout

	// scratch holds the non-leader workers' redundant-compute gradient
	// buffers: every worker computes all gradients (Section 4.2.1 step 5),
	// but only worker 0's land in the trainer's shared vectors.
	scratch [][]float64

	transformBytes partition.ByteReport
}

// prepare materializes the vertical layout: QD4 runs the paper's
// horizontal-to-vertical transformation, QD3 repartitions raw columns, and
// feature-parallel keeps a full copy per worker.
func (e *verticalEngine) prepare() error {
	t := e.t
	if t.stream != nil {
		// initStream already rejected the unstreamable policies
		// (QD3 column-wise index, QD4 full copy).
		if t.cfg.Quadrant == QD4 {
			return e.prepareStreamedVero()
		}
		return e.prepareStreamedQD3()
	}
	if t.cfg.Quadrant == QD4 && !t.cfg.FullCopy {
		return e.prepareVero()
	}
	featCount, err := t.distributedSketch()
	if err != nil {
		return err
	}
	if err := t.checkMaxBins(); err != nil {
		return err
	}
	e.groups = partition.GroupColumnsBalanced(featCount, t.w)
	e.buildFeatureMaps()
	dataGauge := t.cl.Stats().Mem("data")

	if t.cfg.Quadrant == QD3 {
		e.cols = make([]*sparse.BinnedCSC, t.w)
		e.numBins = make([][]int, t.w)
		e.n2i = make([]*index.NodeToInstance, t.w)
		e.i2n = make([]*index.InstanceToNode, t.w)
		e.hist = make([]map[int32]*histogram.Hist, t.w)
		e.layout = make([]histogram.Layout, t.w)
		if t.cfg.ColumnIndex == IndexColumnWise {
			e.cw = make([]*index.ColumnWise, t.w)
		}
		errs := make([]error, t.w)
		binPrep := func(w int) {
			sub := t.ds.X.SelectColumns(e.groups[w])
			subBinner := &sparse.Binner{Splits: make([][]float32, len(e.groups[w]))}
			numBins := make([]int, len(e.groups[w]))
			for slot, f := range e.groups[w] {
				subBinner.Splits[slot] = t.binner.Splits[f]
				numBins[slot] = len(t.binner.Splits[f])
			}
			binned, err := subBinner.BinCSR(sub)
			if err != nil {
				errs[w] = err
				return
			}
			e.cols[w] = binned.ToCSC()
			e.numBins[w] = numBins
			e.n2i[w] = index.NewNodeToInstance(t.n)
			e.i2n[w] = index.NewInstanceToNode(t.n)
			e.layout[w] = histogram.Layout{NumFeat: len(e.groups[w]), MaxBins: t.maxBins, NumClass: t.c}
			e.hist[w] = make(map[int32]*histogram.Hist)
			if e.cw != nil {
				colLens := make([]int, len(e.groups[w]))
				for j := range colLens {
					colLens[j] = e.cols[w].ColNNZ(j)
				}
				e.cw[w] = index.NewColumnWise(colLens)
			}
			dataGauge.Set(w, binnedCSCBytes(e.cols[w])+int64(t.n)*4) // + broadcast labels
		}
		globalNNZ := int64(t.ds.X.NNZ())
		if sh := t.ds.Shard; sh != nil {
			// A column shard materialized only this rank's feature group;
			// build hosted-only (applyLayer broadcasts real placement shards
			// instead of deriving the full layer locally) and charge the
			// repartition from the replicated global entry count — the local
			// NNZ differs per rank, and rank-divergent charges desynchronize
			// the transport's shadow frames.
			t.cl.ParallelLocal("prep.bin", binPrep)
			globalNNZ = sh.GlobalNNZ
		} else {
			t.cl.Parallel("prep.bin", binPrep)
		}
		if err := cluster.FirstError(errs); err != nil {
			return err
		}
		// Vertical repartition of the raw data, shipped as uncompressed
		// key-value pairs (QD3 predates Vero's compact transformation).
		shuffleBytes := globalNNZ * 12 * int64(t.w-1) / int64(t.w)
		t.cl.ChargeComm("prep.repartition", cluster.OpShuffle, shuffleBytes, t.commSeconds(shuffleBytes, t.w-1))
		// Labels are broadcast so every worker can compute gradients.
		t.cl.Broadcast("prep.labels", int64(t.n)*4)
		return nil
	}

	// QD4 FullCopy (feature-parallel).
	binned, err := t.binner.BinCSR(t.ds.X)
	if err != nil {
		return err
	}
	e.fullRows = binned
	e.n2i = make([]*index.NodeToInstance, t.w)
	e.hist = make([]map[int32]*histogram.Hist, t.w)
	e.layout = make([]histogram.Layout, t.w)
	e.numBins = make([][]int, t.w)
	for w := 0; w < t.w; w++ {
		e.n2i[w] = index.NewNodeToInstance(t.n)
		e.layout[w] = histogram.Layout{NumFeat: len(e.groups[w]), MaxBins: t.maxBins, NumClass: t.c}
		e.hist[w] = make(map[int32]*histogram.Hist)
		numBins := make([]int, len(e.groups[w]))
		for slot, f := range e.groups[w] {
			numBins[slot] = len(t.binner.Splits[f])
		}
		e.numBins[w] = numBins
		// Feature-parallel's defining cost: the whole dataset on
		// every worker (Appendix D).
		dataGauge.Set(w, binnedCSRBytes(binned)+int64(t.n)*4)
	}
	return nil
}

// prepareVero runs the full horizontal-to-vertical transformation
// (Section 4.2.1) and adopts its shards. A dataset with matching
// ingestion-derived splits starts the transformation at the grouping
// step: sketching was already paid at ingestion.
func (e *verticalEngine) prepareVero() error {
	t := e.t
	opts := partition.Options{
		Q:         t.cfg.Splits,
		SketchEps: t.cfg.SketchEps,
		Charge:    t.cfg.TransformCharge,
	}
	pb, err := t.usablePrebin()
	if err != nil {
		return err
	}
	if pb != nil {
		opts.Splits, opts.FeatCount = pb.Splits, pb.FeatCount
	}
	var res *partition.Result
	if sh := t.ds.Shard; sh != nil {
		// The rank already holds its feature group: build only its own
		// blockified shard and charge the repartition from the replicated
		// per-group entry matrix.
		res, err = partition.TransformSharded(t.cl, t.ds.X, t.ds.Labels, sh, opts)
	} else {
		res, err = partition.Transform(t.cl, t.ds.X, t.ds.Labels, opts)
	}
	if err != nil {
		return err
	}
	t.binner = res.Binner
	e.groups = res.Groups
	e.shards = res.Shards
	e.transformBytes = res.Bytes
	e.buildFeatureMaps()
	t.numBinsGlobal = make([]int, t.d)
	for f := range t.binner.Splits {
		t.numBinsGlobal[f] = len(t.binner.Splits[f])
	}
	if err := t.checkMaxBins(); err != nil {
		return err
	}
	e.n2i = make([]*index.NodeToInstance, t.w)
	e.hist = make([]map[int32]*histogram.Hist, t.w)
	e.layout = make([]histogram.Layout, t.w)
	e.numBins = make([][]int, t.w)
	dataGauge := t.cl.Stats().Mem("data")
	for w := 0; w < t.w; w++ {
		if e.shards[w] == nil {
			// Sharded cluster: only the hosted rank's shard was assembled;
			// the other workers' structures stay nil (every access runs
			// under ParallelLocal or a nil guard).
			continue
		}
		e.n2i[w] = index.NewNodeToInstance(t.n)
		e.layout[w] = histogram.Layout{NumFeat: len(e.groups[w]), MaxBins: t.maxBins, NumClass: t.c}
		e.hist[w] = make(map[int32]*histogram.Hist)
		e.numBins[w] = e.shards[w].NumBins
		var blockBytes int64
		for _, b := range e.shards[w].Data.Blocks {
			blockBytes += int64(len(b.RowPtr))*8 + int64(b.NNZ())*6
		}
		dataGauge.Set(w, blockBytes+int64(t.n)*4)
	}
	return nil
}

// buildFeatureMaps fills ownerOf and slotOf from groups.
func (e *verticalEngine) buildFeatureMaps() {
	e.ownerOf = make([]int32, e.t.d)
	e.slotOf = make([]int32, e.t.d)
	for i := range e.ownerOf {
		e.ownerOf[i] = -1
	}
	for g, feats := range e.groups {
		for slot, f := range feats {
			e.ownerOf[f] = int32(g)
			e.slotOf[f] = int32(slot)
		}
	}
}

// beginRun allocates the redundant-compute gradient scratch of the
// hosted non-lead workers. On a distributed cluster each rank hosts
// exactly its lead worker, which writes the trainer's shared vectors
// directly, so no scratch exists at all.
func (e *verticalEngine) beginRun() {
	t := e.t
	e.scratch = make([][]float64, t.w)
	for w := 0; w < t.w; w++ {
		if t.cl.HostsWorker(w) && !t.cl.Lead(w) {
			e.scratch[w] = make([]float64, t.n*t.c)
		}
	}
}

// usesSubtraction implements engine: both vertical quadrants keep
// per-node local histograms, so siblings derive by subtraction.
func (e *verticalEngine) usesSubtraction() bool { return true }

// transformReport implements engine.
func (e *verticalEngine) transformReport() partition.ByteReport { return e.transformBytes }

// computeGradients has every worker process every instance, because each
// needs the gradients of all instances to build histograms for its
// feature subset (labels were broadcast for exactly this purpose,
// Section 4.2.1 step 5).
func (e *verticalEngine) computeGradients() {
	t := e.t
	labels := t.ds.Labels
	t.cl.ParallelLocal(phaseGrad, func(w int) {
		g, h := t.grads, t.hessv
		if !t.cl.Lead(w) {
			g = e.scratch[w][:t.n*t.c]
			h = e.scratch[w][:t.n*t.c] // same buffer: redundant work, discarded
		}
		for i := 0; i < t.n; i++ {
			t.obj.GradHess(t.preds[i*t.c:(i+1)*t.c], labels[i], g[i*t.c:(i+1)*t.c], h[i*t.c:(i+1)*t.c])
		}
	})
}

func (e *verticalEngine) resetIndexes() {
	// Nil slots belong to workers this rank does not host (sharded
	// clusters build hosted-only structures).
	for _, idx := range e.n2i {
		if idx != nil {
			idx.Reset()
		}
	}
	for _, idx := range e.i2n {
		if idx != nil {
			idx.Reset()
		}
	}
	for _, idx := range e.cw {
		if idx != nil {
			idx.Reset()
		}
	}
}

func (e *verticalEngine) clearHists() {
	// dropHist releases id on every worker; subtraction can leave worker
	// maps holding different id sets, so sweep each worker's keys.
	for w := range e.hist {
		for id := range e.hist[w] {
			e.dropHist(id)
		}
	}
}

func (e *verticalEngine) dropHist(id int32) {
	g := e.t.cl.Stats().Mem("histogram")
	for w := range e.hist {
		if h, ok := e.hist[w][id]; ok {
			g.Add(w, -e.layout[w].SizeBytes())
			e.t.pool.Put(h)
			delete(e.hist[w], id)
		}
	}
}

// deriveHistograms computes each node's histogram as parent minus built
// sibling, reusing the parent's storage (the parent entry is consumed).
func (e *verticalEngine) deriveHistograms(toDerive []*nodeInfo) {
	e.t.cl.ParallelLocal(phaseHist, func(w int) {
		hm := e.hist[w]
		for _, nd := range toDerive {
			parent := hm[nd.parent]
			sibling := hm[siblingOf(nd)]
			parent.Sub(sibling)
			hm[nd.id] = parent
			delete(hm, nd.parent)
		}
	})
}

func (e *verticalEngine) rootTotals() ([]float64, []float64) {
	t := e.t
	g := make([]float64, t.c)
	h := make([]float64, t.c)
	t.cl.ParallelLocal(phaseGrad, func(w int) {
		// Every worker computes the same totals from its gradient copy;
		// the lead worker's result is adopted (identical on every rank).
		lg := make([]float64, t.c)
		lh := make([]float64, t.c)
		if t.c == 1 {
			var sg, sh float64
			for i := 0; i < t.n; i++ {
				sg += t.grads[i]
				sh += t.hessv[i]
			}
			lg[0], lh[0] = sg, sh
		} else {
			for i := 0; i < t.n; i++ {
				for k := 0; k < t.c; k++ {
					lg[k] += t.grads[i*t.c+k]
					lh[k] += t.hessv[i*t.c+k]
				}
			}
		}
		if t.cl.Lead(w) {
			copy(g, lg)
			copy(h, lh)
		}
	})
	return g, h
}

func (e *verticalEngine) buildHistograms(toBuild []*nodeInfo) {
	t := e.t
	if t.stream != nil {
		e.buildHistogramsStreamedVertical(toBuild)
		return
	}
	mem := t.cl.Stats().Mem("histogram")
	t.cl.ParallelLocal(phaseHist, func(w int) {
		hs := make([]*histogram.Hist, len(toBuild))
		for i := range hs {
			hs[i] = t.pool.Get(e.layout[w])
			mem.Add(w, e.layout[w].SizeBytes())
		}
		switch {
		case t.cfg.Quadrant == QD4 && !t.cfg.FullCopy:
			for i, nd := range toBuild {
				e.buildRowStore(w, nd, hs[i])
			}
		case t.cfg.Quadrant == QD4: // feature-parallel full copy
			for i, nd := range toBuild {
				e.buildFullCopy(w, nd, hs[i])
			}
		case t.cfg.ColumnIndex == IndexColumnWise:
			for i, nd := range toBuild {
				e.buildColumnWise(w, nd, hs[i])
			}
		default:
			for i, nd := range toBuild {
				e.buildHybrid(w, nd, hs[i])
			}
		}
		for i, nd := range toBuild {
			e.hist[w][nd.id] = hs[i]
		}
	})
}

// buildRowStore scans the node's instances through the blockified rows —
// Vero's histogram construction (node-to-instance index + row-store). The
// node's instance list is ascending (the node-to-instance index partitions
// stably from an ascending initial order) and the shard's blocks cover
// contiguous ascending row ranges, so the scan runs the fused row-scan
// kernel once per block segment instead of resolving every row through a
// per-instance block lookup.
func (e *verticalEngine) buildRowStore(w int, nd *nodeInfo, h *histogram.Hist) {
	t := e.t
	insts := e.n2i[w].Instances(nd.id)
	k := 0
	for _, b := range e.shards[w].Data.Blocks {
		if k == len(insts) {
			break
		}
		end := b.RowStart + b.NumRows()
		start := k
		for k < len(insts) && int(insts[k]) < end {
			k++
		}
		h.RowScan(insts[start:k], b.RowStart, b.RowPtr, b.Feat, b.Bin, t.grads, t.hessv, 0)
	}
}

// buildFullCopy scans full rows but accumulates only the worker's assigned
// features — LightGBM feature-parallel (Appendix D).
func (e *verticalEngine) buildFullCopy(w int, nd *nodeInfo, h *histogram.Hist) {
	t := e.t
	h.RowScanOwned(e.n2i[w].Instances(nd.id), e.fullRows.RowPtr, e.fullRows.Feat, e.fullRows.Bin,
		e.ownerOf, e.slotOf, int32(w), t.grads, t.hessv)
}

// buildColumnWise reads each column's node entries directly from the
// column-wise node-to-instance index (Yggdrasil's plan).
func (e *verticalEngine) buildColumnWise(w int, nd *nodeInfo, h *histogram.Hist) {
	t := e.t
	cols := e.cols[w]
	cw := e.cw[w]
	for j := 0; j < cols.Cols(); j++ {
		insts, binsArr := cols.Col(j)
		h.ColumnGather(j, cw.Entries(j, nd.id), insts, binsArr, t.grads, t.hessv)
	}
}

// buildHybrid is the paper's optimized QD3 plan (Section 5.2.2): columns
// with few values are scanned linearly against the instance-to-node index;
// long columns are probed by binary search from the node's instance list.
// Both arms run fused kernels, but the scan stays per-node: the linear arm
// is bound by the per-entry instance-to-node probe (Section 3.2.3's
// column-store index cost), which a multi-node routed pass only makes
// heavier — measured, routing every entry through a node-to-slot table
// costs more than the filter scans it replaces.
func (e *verticalEngine) buildHybrid(w int, nd *nodeInfo, h *histogram.Hist) {
	t := e.t
	cols := e.cols[w]
	nodeOf := e.i2n[w].Assignments()
	nodeInsts := e.n2i[w].Instances(nd.id)
	for j := 0; j < cols.Cols(); j++ {
		insts, binsArr := cols.Col(j)
		colLen := len(insts)
		if colLen == 0 {
			continue
		}
		searchCost := len(nodeInsts) * (bits.Len(uint(colLen)) + 1)
		if colLen <= searchCost {
			// Linear scan, filtering by the instance-to-node index.
			h.ColumnScanNode(j, insts, binsArr, nodeOf, nd.id, t.grads, t.hessv)
			continue
		}
		for _, inst := range nodeInsts {
			bin, ok := searchColumn(insts, binsArr, inst)
			if !ok {
				continue
			}
			h.AddFlat(j, int(bin), t.grads, t.hessv, int(inst)*t.c)
		}
	}
}

// findSplits has each worker find the best split over its own feature
// subset, then exchanges the local bests (Section 2.2.1).
func (e *verticalEngine) findSplits(frontier []*nodeInfo) map[int32]resolvedSplit {
	t := e.t
	recs := make([][]byte, t.w)
	t.cl.ParallelLocal(phaseSplit, func(w int) {
		splits := make([]histogram.Split, len(frontier))
		for i, nd := range frontier {
			s := t.finder.FindBest(e.hist[w][nd.id], nd.totalG, nd.totalH, e.numBins[w])
			if s.Valid {
				s.Feature = e.groups[w][s.Feature] // slot -> global id
			}
			splits[i] = s
		}
		recs[w] = encodeSplits(splits)
	})
	for w := range recs {
		if recs[w] == nil {
			recs[w] = make([]byte, len(frontier)*splitWireBytes)
		}
	}
	t.cl.AllGatherFixed(phaseSplit, recs)
	out := make(map[int32]resolvedSplit, len(frontier))
	for i, nd := range frontier {
		best := histogram.Split{}
		for w := 0; w < t.w; w++ {
			s := decodeSplit(recs[w][i*splitWireBytes:])
			if !s.Valid {
				continue
			}
			if histogram.Prefer(s, best) {
				best = s
			}
		}
		out[nd.id] = resolvedSplit{node: nd.id, feature: best.Feature, bin: best.Bin,
			gain: best.Gain, defaultLeft: best.DefaultLeft, valid: best.Valid}
	}
	return out
}

// applyLayer computes instance placements at the split owners, broadcasts
// them as one N-bit bitmap per layer (Section 3.1.3), and updates every
// worker's indexes. Feature-parallel skips the broadcast: every worker
// evaluates placements on its full copy.
func (e *verticalEngine) applyLayer(splits map[int32]resolvedSplit, children map[int32][2]int32) {
	t := e.t
	if t.cfg.FullCopy {
		t.cl.ParallelLocal(phaseNode, func(w int) {
			for parent, ch := range children {
				sp := splits[parent]
				e.n2i[w].Split(parent, ch[0], ch[1], func(inst uint32) bool {
					feats, binsArr := e.fullRows.Row(int(inst))
					bin, ok := lookupBin(feats, binsArr, uint32(sp.feature))
					if !ok {
						return sp.defaultLeft
					}
					return int(bin) <= sp.bin
				})
			}
		})
		return
	}

	if t.ds.Shard != nil {
		e.applyLayerSharded(splits, children)
		return
	}

	// Each split's owner fills the placement bits for its node; merging
	// the per-worker bitmaps yields the layer's placement. This stays a
	// replicated Parallel even on a distributed cluster (full-image and
	// out-of-core datasets): the vertical engines materialize or map every
	// worker's columns and indexes at every rank, so each rank derives the
	// full placement locally and only the broadcast's charge — realized
	// as shadow traffic — touches the wire.
	parts := make([]*bitmap.Bitmap, t.w)
	t.cl.Parallel(phaseNode, func(w int) {
		bm := bitmap.New(t.n)
		for parent := range children {
			sp := splits[parent]
			if e.ownerOf[sp.feature] != int32(w) {
				continue
			}
			e.fillPlacement(w, parent, sp, bm)
		}
		parts[w] = bm
	})
	placement := parts[0]
	for w := 1; w < t.w; w++ {
		for i := range placement.Len() {
			if parts[w].Get(i) {
				placement.Set(i)
			}
		}
	}
	t.cl.Broadcast(phaseNode, int64(placement.SizeBytes()))

	goesLeft := func(inst uint32) bool { return placement.Get(int(inst)) }
	t.cl.Parallel(phaseNode, func(w int) {
		for parent, ch := range children {
			e.n2i[w].Split(parent, ch[0], ch[1], goesLeft)
			if t.cfg.Quadrant == QD3 && t.cfg.ColumnIndex == IndexColumnWise {
				cols := e.cols[w]
				e.cw[w].Split(parent, ch[0], ch[1], goesLeft, func(col int, pos uint32) uint32 {
					insts, _ := cols.Col(col)
					return insts[pos]
				})
			}
		}
		if t.cfg.Quadrant == QD3 {
			e.i2n[w].SplitLayer(children, goesLeft)
		}
	})
}

// applyLayerSharded is applyLayer for a column-sharded cluster: a rank
// holds only its own feature group, so it can place only the nodes whose
// split feature it owns. Each rank fills its own placement shard, then
// every owner of a splitting node broadcasts its shard — a real
// data-carrying collective, charged against the alpha-beta model — and
// ranks OR the shards together (each instance is routed by exactly one
// owner). The merged placement, and hence every index transition, is
// bit-identical to the replicated path's.
//
// Accounting note: each owner sends the whole n-bit bitmap, so a layer
// with k splitting owners charges k full bitmaps where the replicated
// path charges the paper's single compacted bitmap (Section 3.1.3: n
// bits total, each instance's bit carried by its one router). The
// difference — a few bitmap payloads per run — is real data movement
// and is charged truthfully, so sharded runs account slightly more than
// the full-image model while still training the identical bytes.
func (e *verticalEngine) applyLayerSharded(splits map[int32]resolvedSplit, children map[int32][2]int32) {
	t := e.t
	rank := t.cl.Rank()
	placement := bitmap.New(t.n)
	t.cl.ParallelLocal(phaseNode, func(w int) {
		for parent := range children {
			sp := splits[parent]
			if e.ownerOf[sp.feature] != int32(w) {
				continue
			}
			e.fillPlacement(w, parent, sp, placement)
		}
	})
	// The layer's owner set derives from the (replicated) resolved splits,
	// so every rank issues the identical broadcast sequence in ascending
	// rank order.
	owners := make([]bool, t.w)
	for parent := range children {
		owners[e.ownerOf[splits[parent].feature]] = true
	}
	// Snapshot the rank's own shard before merging peers' bits in, so the
	// broadcast payload is exactly this owner's routing decisions.
	ownPayload, _ := placement.MarshalBinary()
	part := bitmap.New(t.n)
	for w := 0; w < t.w; w++ {
		if !owners[w] {
			continue
		}
		payload := ownPayload
		if w != rank {
			payload = make([]byte, placement.SizeBytes())
		}
		t.cl.BroadcastBytes(phaseNode, payload, w)
		if w != rank {
			// A transport failure leaves the payload zeroed; the merge stays
			// well-formed and the trainer aborts at the tree boundary via
			// cl.Err().
			if err := part.UnmarshalBinary(payload); err == nil {
				placement.Or(part)
			}
		}
	}

	goesLeft := func(inst uint32) bool { return placement.Get(int(inst)) }
	t.cl.ParallelLocal(phaseNode, func(w int) {
		for parent, ch := range children {
			e.n2i[w].Split(parent, ch[0], ch[1], goesLeft)
			if t.cfg.Quadrant == QD3 && t.cfg.ColumnIndex == IndexColumnWise {
				cols := e.cols[w]
				e.cw[w].Split(parent, ch[0], ch[1], goesLeft, func(col int, pos uint32) uint32 {
					insts, _ := cols.Col(col)
					return insts[pos]
				})
			}
		}
		if t.cfg.Quadrant == QD3 {
			e.i2n[w].SplitLayer(children, goesLeft)
		}
	})
}

// fillPlacement writes the left/right bits of one splitting node, owned by
// worker w (set bit = left child).
func (e *verticalEngine) fillPlacement(w int, parent int32, sp resolvedSplit, bm *bitmap.Bitmap) {
	if e.t.stream != nil {
		e.fillPlacementStreamed(w, parent, sp, bm)
		return
	}
	insts := e.n2i[w].Instances(parent)
	if sp.defaultLeft {
		for _, inst := range insts {
			bm.Set(int(inst))
		}
	}
	slot := int(e.slotOf[sp.feature])
	if e.t.cfg.Quadrant == QD4 {
		data := e.shards[w].Data
		for _, inst := range insts {
			feats, binsArr := data.Row(int(inst))
			bin, ok := lookupBin(feats, binsArr, uint32(slot))
			if !ok {
				continue // stays at the default direction
			}
			bm.SetTo(int(inst), int(bin) <= sp.bin)
		}
		return
	}
	// QD3: the owner holds the split feature's full column; one linear
	// pass with node-membership checks places every present value.
	insts2, binsArr := e.cols[w].Col(slot)
	i2n := e.i2n[w]
	for k, inst := range insts2 {
		if i2n.Node(inst) != parent {
			continue
		}
		bm.SetTo(int(inst), int(binsArr[k]) <= sp.bin)
	}
}

// childStats recomputes child totals from the (identical) per-worker
// gradient copies; worker 0's result is adopted.
func (e *verticalEngine) childStats(nodes []*nodeInfo) {
	t := e.t
	stride := 2 * t.c
	sums := make([]float64, stride*len(nodes))
	counts := make([]int, len(nodes))
	t.cl.ParallelLocal(phaseNode, func(w int) {
		local := make([]float64, stride*len(nodes))
		for i, nd := range nodes {
			insts := e.n2i[w].Instances(nd.id)
			o := i * stride
			if t.c == 1 {
				var g, h float64
				for _, inst := range insts {
					g += t.grads[inst]
					h += t.hessv[inst]
				}
				local[o], local[o+1] = g, h
			} else {
				for _, inst := range insts {
					gi := int(inst) * t.c
					for k := 0; k < t.c; k++ {
						local[o+k] += t.grads[gi+k]
						local[o+t.c+k] += t.hessv[gi+k]
					}
				}
			}
			if t.cl.Lead(w) {
				counts[i] = len(insts)
			}
		}
		if t.cl.Lead(w) {
			copy(sums, local)
		}
	})
	for i, nd := range nodes {
		o := i * stride
		nd.totalG = append([]float64(nil), sums[o:o+t.c]...)
		nd.totalH = append([]float64(nil), sums[o+t.c:o+stride]...)
		nd.count = counts[i]
	}
}

// updatePredictions applies leaf weights through the (identical)
// node-to-instance indexes; every worker performs the update on its own
// prediction copy.
func (e *verticalEngine) updatePredictions(tr *tree.Tree) {
	t := e.t
	eta := t.cfg.LearningRate
	t.cl.ParallelLocal(phaseUpdate, func(w int) {
		preds := t.preds
		if !t.cl.Lead(w) {
			preds = e.scratch[w]
		}
		for id := range tr.Nodes {
			n := &tr.Nodes[id]
			if !n.IsLeaf() {
				continue
			}
			for _, inst := range e.n2i[w].Instances(int32(id)) {
				gi := int(inst) * t.c
				for k := 0; k < t.c; k++ {
					preds[gi+k] += eta * n.Weights[k]
				}
			}
		}
	})
}
