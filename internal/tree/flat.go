// Flattened forest representation for low-latency inference.
//
// Training produces a Forest of per-tree Node slices whose JSON-tagged
// nodes carry per-node weight slices and diagnostic fields. That layout is
// convenient for growing and serializing trees but hostile to the serving
// hot path: every node visit chases a slice header, every feature probe
// binary-searches the sparse row, and every leaf allocates nothing but
// touches scattered cache lines.
//
// FlatForest compiles a trained Forest once into structure-of-arrays form:
// feature ids, thresholds, child links, default directions and leaf
// weights each live in one contiguous slice shared by every tree, and
// rows are scattered into a dense per-goroutine scratch so routing probes
// features in O(1). The compiled engine produces bit-exact the same
// margins as the pointer walk (identical routing predicate, identical
// accumulation order) and is safe for concurrent use.
package tree

import (
	"fmt"
	"runtime"
	"sync"

	"vero/internal/sparse"
)

// FlatForest is an immutable, cache-friendly compilation of a Forest.
// All exported methods are safe for concurrent use.
type FlatForest struct {
	numClass  int
	initScore []float64
	// scratchDim is 1 + the largest feature id any split routes on; a
	// dense scratch of this size suffices regardless of NumFeature.
	scratchDim int

	// Structure-of-arrays node storage, all trees concatenated. Node i is
	// a leaf when feature[i] < 0, in which case left[i] is the offset of
	// its weight block in weights (stride numClass) and right[i] is
	// unused. Interior nodes hold absolute child indexes.
	feature     []int32
	threshold   []float32
	left        []int32
	right       []int32
	defaultLeft []bool
	// weights holds leaf outputs pre-scaled by the learning rate, so
	// accumulation is a single fused add per class.
	weights []float64

	// roots[t] is the absolute index of tree t's root.
	roots []int32

	scratch sync.Pool
}

// flatScratch is a per-goroutine dense view of one sparse row.
type flatScratch struct {
	val     []float32
	present []bool
	touched []int32
}

// Compile flattens a trained forest. The forest must not be mutated
// afterwards; the compiled engine captures its current trees.
func Compile(f *Forest) *FlatForest {
	ff := &FlatForest{
		numClass:  f.NumClass,
		initScore: append([]float64(nil), f.InitScore...),
		roots:     make([]int32, 0, len(f.Trees)),
	}
	total := 0
	for _, t := range f.Trees {
		total += len(t.Nodes)
	}
	ff.feature = make([]int32, 0, total)
	ff.threshold = make([]float32, 0, total)
	ff.left = make([]int32, 0, total)
	ff.right = make([]int32, 0, total)
	ff.defaultLeft = make([]bool, 0, total)

	maxFeat := int32(-1)
	for _, t := range f.Trees {
		base := int32(len(ff.feature))
		ff.roots = append(ff.roots, base)
		for i := range t.Nodes {
			n := &t.Nodes[i]
			if n.IsLeaf() {
				off := int32(len(ff.weights))
				ff.feature = append(ff.feature, -1)
				ff.threshold = append(ff.threshold, 0)
				ff.left = append(ff.left, off)
				ff.right = append(ff.right, NoChild)
				ff.defaultLeft = append(ff.defaultLeft, false)
				for k := 0; k < f.NumClass; k++ {
					w := 0.0
					if k < len(n.Weights) {
						w = f.LearningRate * n.Weights[k]
					}
					ff.weights = append(ff.weights, w)
				}
				continue
			}
			if n.Feature > maxFeat {
				maxFeat = n.Feature
			}
			ff.feature = append(ff.feature, n.Feature)
			ff.threshold = append(ff.threshold, n.SplitValue)
			ff.left = append(ff.left, base+n.Left)
			ff.right = append(ff.right, base+n.Right)
			ff.defaultLeft = append(ff.defaultLeft, n.DefaultLeft)
		}
	}
	ff.scratchDim = int(maxFeat) + 1
	ff.scratch.New = func() any {
		return &flatScratch{
			val:     make([]float32, ff.scratchDim),
			present: make([]bool, ff.scratchDim),
			touched: make([]int32, 0, 64),
		}
	}
	return ff
}

// NumClass returns the per-row output dimensionality.
func (ff *FlatForest) NumClass() int { return ff.numClass }

// NumTrees returns the number of compiled trees.
func (ff *FlatForest) NumTrees() int { return len(ff.roots) }

// NumNodes returns the total node count across all trees.
func (ff *FlatForest) NumNodes() int { return len(ff.feature) }

// scatter loads a sparse row into the dense scratch. Features beyond
// scratchDim are never routed on by any split and are skipped.
func (s *flatScratch) scatter(feat []uint32, val []float32, dim int) {
	for i, f := range feat {
		if int(f) >= dim {
			continue
		}
		s.val[f] = val[i]
		s.present[f] = true
		s.touched = append(s.touched, int32(f))
	}
}

// clear resets only the entries scatter touched.
func (s *flatScratch) clear() {
	for _, f := range s.touched {
		s.present[f] = false
	}
	s.touched = s.touched[:0]
}

// predictScattered walks every tree for the row currently loaded in s and
// accumulates the pre-scaled leaf weights into out (length numClass).
func (ff *FlatForest) predictScattered(s *flatScratch, out []float64) {
	for _, root := range ff.roots {
		id := root
		for {
			f := ff.feature[id]
			if f < 0 {
				w := ff.weights[ff.left[id] : ff.left[id]+int32(ff.numClass)]
				for k := range w {
					out[k] += w[k]
				}
				break
			}
			if s.present[f] {
				if s.val[f] <= ff.threshold[id] {
					id = ff.left[id]
				} else {
					id = ff.right[id]
				}
			} else if ff.defaultLeft[id] {
				id = ff.left[id]
			} else {
				id = ff.right[id]
			}
		}
	}
}

// PredictRowInto computes the raw scores (margins) of one sparse row into
// out, which must have length NumClass.
func (ff *FlatForest) PredictRowInto(feat []uint32, val []float32, out []float64) {
	copy(out, ff.initScore)
	s := ff.scratch.Get().(*flatScratch)
	s.scatter(feat, val, ff.scratchDim)
	ff.predictScattered(s, out)
	s.clear()
	ff.scratch.Put(s)
}

// PredictRow returns the raw scores (margins) of one sparse row.
func (ff *FlatForest) PredictRow(feat []uint32, val []float32) []float64 {
	out := make([]float64, ff.numClass)
	ff.PredictRowInto(feat, val, out)
	return out
}

// batchRows is the number of rows one parallel work unit claims; large
// enough to amortize scheduling, small enough to balance skewed rows.
const batchRows = 256

// PredictCSR returns the raw scores of every row of m, row-major with
// stride NumClass, computed by `workers` goroutines (0 or negative means
// GOMAXPROCS).
func (ff *FlatForest) PredictCSR(m *sparse.CSR, workers int) []float64 {
	rows := m.Rows()
	out := make([]float64, rows*ff.numClass)
	if rows == 0 {
		return out
	}
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if max := (rows + batchRows - 1) / batchRows; workers > max {
		workers = max
	}
	if workers <= 1 {
		ff.predictRange(m, 0, rows, out)
		return out
	}
	next := make(chan int)
	go func() {
		for lo := 0; lo < rows; lo += batchRows {
			next <- lo
		}
		close(next)
	}()
	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			for lo := range next {
				hi := lo + batchRows
				if hi > rows {
					hi = rows
				}
				ff.predictRange(m, lo, hi, out)
			}
		}()
	}
	wg.Wait()
	return out
}

// predictRange scores rows [lo, hi) with one scratch.
func (ff *FlatForest) predictRange(m *sparse.CSR, lo, hi int, out []float64) {
	s := ff.scratch.Get().(*flatScratch)
	for i := lo; i < hi; i++ {
		row := out[i*ff.numClass : (i+1)*ff.numClass]
		copy(row, ff.initScore)
		feat, val := m.Row(i)
		s.scatter(feat, val, ff.scratchDim)
		ff.predictScattered(s, row)
		s.clear()
	}
	ff.scratch.Put(s)
}

// Validate checks structural invariants of the compiled forest; it is used
// by tests and by model-loading paths that compile untrusted input.
func (ff *FlatForest) Validate() error {
	n := int32(len(ff.feature))
	for i := int32(0); i < n; i++ {
		if ff.feature[i] < 0 {
			if off := ff.left[i]; off < 0 || int(off)+ff.numClass > len(ff.weights) {
				return fmt.Errorf("tree: flat leaf %d weight offset %d out of range", i, off)
			}
			continue
		}
		if ff.left[i] <= i || ff.left[i] >= n || ff.right[i] <= i || ff.right[i] >= n {
			return fmt.Errorf("tree: flat node %d has child links (%d,%d) outside (%d,%d)",
				i, ff.left[i], ff.right[i], i, n)
		}
	}
	return nil
}
