package partition

import (
	"encoding/binary"
	"fmt"
	"sort"
)

// Block is one blockified partial column group (Figure 9): the rows of one
// source file split restricted to one worker's feature group, stored as
// three flat arrays — feature indexes (within-group ids), histogram bin
// indexes, and instance pointers.
type Block struct {
	// RowStart is the global id of the block's first row.
	RowStart int
	// RowPtr has NumRows+1 entries delimiting each row's pairs.
	RowPtr []int64
	// Feat holds within-group feature ids.
	Feat []uint32
	// Bin holds histogram bin indexes.
	Bin []uint16
}

// NumRows returns the number of rows covered by the block.
func (b *Block) NumRows() int { return len(b.RowPtr) - 1 }

// NNZ returns the number of key-value pairs in the block.
func (b *Block) NNZ() int { return len(b.Feat) }

// Row returns the pairs of global row id r, which must lie inside the
// block.
func (b *Block) Row(r int) (feat []uint32, bin []uint16) {
	i := r - b.RowStart
	lo, hi := b.RowPtr[i], b.RowPtr[i+1]
	return b.Feat[lo:hi], b.Bin[lo:hi]
}

// WireSizeBytes returns the block's serialized size under the compact
// encoding: a fixed header, 4-byte row pointers, and featWidth+binWidth
// bytes per pair.
func (b *Block) WireSizeBytes(featWidth, binWidth int64) int64 {
	const header = 16 // row start + row count + pair count + widths
	return header + int64(len(b.RowPtr))*4 + int64(b.NNZ())*(featWidth+binWidth)
}

// Encode serializes the block with the given pair widths. The layout is
// little-endian: header (rowStart, numRows, nnz, widths), row pointers as
// uint32 deltas, then the packed pairs.
func (b *Block) Encode(featWidth, binWidth int64) ([]byte, error) {
	if featWidth != 1 && featWidth != 2 && featWidth != 4 {
		return nil, fmt.Errorf("partition: feature width %d", featWidth)
	}
	if binWidth != 1 && binWidth != 2 {
		return nil, fmt.Errorf("partition: bin width %d", binWidth)
	}
	out := make([]byte, 0, b.WireSizeBytes(featWidth, binWidth))
	var hdr [16]byte
	binary.LittleEndian.PutUint32(hdr[0:], uint32(b.RowStart))
	binary.LittleEndian.PutUint32(hdr[4:], uint32(b.NumRows()))
	binary.LittleEndian.PutUint32(hdr[8:], uint32(b.NNZ()))
	hdr[12] = byte(featWidth)
	hdr[13] = byte(binWidth)
	out = append(out, hdr[:]...)
	var u4 [4]byte
	for _, p := range b.RowPtr {
		binary.LittleEndian.PutUint32(u4[:], uint32(p))
		out = append(out, u4[:]...)
	}
	for i := range b.Feat {
		switch featWidth {
		case 1:
			out = append(out, byte(b.Feat[i]))
		case 2:
			binary.LittleEndian.PutUint16(u4[:2], uint16(b.Feat[i]))
			out = append(out, u4[:2]...)
		default:
			binary.LittleEndian.PutUint32(u4[:], b.Feat[i])
			out = append(out, u4[:]...)
		}
		switch binWidth {
		case 1:
			out = append(out, byte(b.Bin[i]))
		default:
			binary.LittleEndian.PutUint16(u4[:2], b.Bin[i])
			out = append(out, u4[:2]...)
		}
	}
	return out, nil
}

// DecodeBlock parses a payload produced by Encode.
func DecodeBlock(data []byte) (*Block, error) {
	if len(data) < 16 {
		return nil, fmt.Errorf("partition: block payload too short (%d bytes)", len(data))
	}
	rowStart := int(binary.LittleEndian.Uint32(data[0:]))
	numRows := int(binary.LittleEndian.Uint32(data[4:]))
	nnz := int(binary.LittleEndian.Uint32(data[8:]))
	featWidth := int64(data[12])
	binWidth := int64(data[13])
	want := int64(16) + int64(numRows+1)*4 + int64(nnz)*(featWidth+binWidth)
	if int64(len(data)) != want {
		return nil, fmt.Errorf("partition: block payload %d bytes, want %d", len(data), want)
	}
	b := &Block{
		RowStart: rowStart,
		RowPtr:   make([]int64, numRows+1),
		Feat:     make([]uint32, nnz),
		Bin:      make([]uint16, nnz),
	}
	off := 16
	for i := range b.RowPtr {
		b.RowPtr[i] = int64(binary.LittleEndian.Uint32(data[off:]))
		off += 4
	}
	for i := 0; i < nnz; i++ {
		switch featWidth {
		case 1:
			b.Feat[i] = uint32(data[off])
		case 2:
			b.Feat[i] = uint32(binary.LittleEndian.Uint16(data[off:]))
		default:
			b.Feat[i] = binary.LittleEndian.Uint32(data[off:])
		}
		off += int(featWidth)
		switch binWidth {
		case 1:
			b.Bin[i] = uint16(data[off])
		default:
			b.Bin[i] = binary.LittleEndian.Uint16(data[off:])
		}
		off += int(binWidth)
	}
	return b, nil
}

// BlockSet is a worker's vertical data shard after the transformation: the
// blocks of its column group sorted by row offset, accessed through the
// two-phase index of Section 4.2.3 (binary-search the block, then offset
// into its row pointers).
type BlockSet struct {
	Blocks []*Block
	rows   int
}

// NewBlockSet assembles a shard from blocks, sorting them by row offset
// and validating contiguous coverage of [0, n) rows.
func NewBlockSet(blocks []*Block) (*BlockSet, error) {
	bs := &BlockSet{Blocks: append([]*Block(nil), blocks...)}
	sort.Slice(bs.Blocks, func(i, j int) bool { return bs.Blocks[i].RowStart < bs.Blocks[j].RowStart })
	next := 0
	for _, b := range bs.Blocks {
		if b.RowStart != next {
			return nil, fmt.Errorf("partition: block starts at row %d, want %d", b.RowStart, next)
		}
		next += b.NumRows()
	}
	bs.rows = next
	return bs, nil
}

// NumRows returns the total rows covered.
func (bs *BlockSet) NumRows() int { return bs.rows }

// NumBlocks returns the block count (after merging this stays <= 5 in the
// paper's deployments).
func (bs *BlockSet) NumBlocks() int { return len(bs.Blocks) }

// NNZ returns the total pair count.
func (bs *BlockSet) NNZ() int {
	n := 0
	for _, b := range bs.Blocks {
		n += b.NNZ()
	}
	return n
}

// Row locates global row r via the two-phase index: phase one binary
// searches the block, phase two indexes its row pointers.
func (bs *BlockSet) Row(r int) (feat []uint32, bin []uint16) {
	lo, hi := 0, len(bs.Blocks)
	for lo < hi-1 {
		mid := (lo + hi) / 2
		if bs.Blocks[mid].RowStart <= r {
			lo = mid
		} else {
			hi = mid
		}
	}
	return bs.Blocks[lo].Row(r)
}

// Merge coalesces blocks until at most maxBlocks remain (the paper merges
// down to < 5 to amortize the phase-one binary search).
func (bs *BlockSet) Merge(maxBlocks int) {
	if maxBlocks < 1 {
		maxBlocks = 1
	}
	for len(bs.Blocks) > maxBlocks {
		// Merge the adjacent pair with the smallest combined size.
		best, bestSize := 0, int(^uint(0)>>1)
		for i := 0; i+1 < len(bs.Blocks); i++ {
			if s := bs.Blocks[i].NNZ() + bs.Blocks[i+1].NNZ(); s < bestSize {
				best, bestSize = i, s
			}
		}
		a, b := bs.Blocks[best], bs.Blocks[best+1]
		merged := &Block{
			RowStart: a.RowStart,
			RowPtr:   make([]int64, 0, len(a.RowPtr)+len(b.RowPtr)-1),
			Feat:     append(append([]uint32(nil), a.Feat...), b.Feat...),
			Bin:      append(append([]uint16(nil), a.Bin...), b.Bin...),
		}
		merged.RowPtr = append(merged.RowPtr, a.RowPtr...)
		base := a.RowPtr[len(a.RowPtr)-1]
		for _, p := range b.RowPtr[1:] {
			merged.RowPtr = append(merged.RowPtr, base+p)
		}
		bs.Blocks = append(bs.Blocks[:best], append([]*Block{merged}, bs.Blocks[best+2:]...)...)
	}
}
