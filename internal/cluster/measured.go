package cluster

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"math"
)

// Wire form of one rank's measured-stats snapshot, exchanged by
// SyncMeasured: a u32 entry count, then per phase a u32 CRC-32C of the
// phase name, a u64 payload-byte count and a f64 wall-clock. Phase sets
// are identical across ranks (every rank replays the same collective
// sequence), so the name hashes double as an alignment check: a mismatch
// means the ranks diverged, which is worth a hard error rather than a
// silently misattributed table.

var crcTable = crc32.MakeTable(crc32.Castagnoli)

func encodeMeasured(names []string, bytes []int64, secs []float64) []byte {
	buf := make([]byte, 4+20*len(names))
	binary.LittleEndian.PutUint32(buf, uint32(len(names)))
	off := 4
	for i, name := range names {
		binary.LittleEndian.PutUint32(buf[off:], crc32.Checksum([]byte(name), crcTable))
		binary.LittleEndian.PutUint64(buf[off+4:], uint64(bytes[i]))
		binary.LittleEndian.PutUint64(buf[off+12:], math.Float64bits(secs[i]))
		off += 20
	}
	return buf
}

func decodeMeasured(rec []byte, names []string) ([]int64, []float64, error) {
	if len(rec) < 4 {
		return nil, nil, fmt.Errorf("record truncated (%d bytes)", len(rec))
	}
	n := int(binary.LittleEndian.Uint32(rec))
	if n != len(names) {
		return nil, nil, fmt.Errorf("has %d phases, this rank has %d", n, len(names))
	}
	if len(rec) != 4+20*n {
		return nil, nil, fmt.Errorf("record is %d bytes, want %d", len(rec), 4+20*n)
	}
	bytes := make([]int64, n)
	secs := make([]float64, n)
	off := 4
	for i, name := range names {
		if got, want := binary.LittleEndian.Uint32(rec[off:]), crc32.Checksum([]byte(name), crcTable); got != want {
			return nil, nil, fmt.Errorf("phase %d is not %q: the ranks ran different collective sequences", i, name)
		}
		bytes[i] = int64(binary.LittleEndian.Uint64(rec[off+4:]))
		secs[i] = math.Float64frombits(binary.LittleEndian.Uint64(rec[off+12:]))
		off += 20
	}
	return bytes, secs, nil
}
