// Package vero_test holds the benchmark harness that regenerates every
// table and figure of the paper's evaluation (see DESIGN.md section 3 for
// the experiment index and EXPERIMENTS.md for paper-vs-measured results).
//
// Run everything:
//
//	go test -bench=. -benchmem
//
// Each benchmark executes the corresponding experiment at benchScale and
// reports the experiment's headline quantities as custom metrics, so the
// bench output is itself a compact version of the paper's tables. For the
// full-size tables use cmd/benchtab.
package vero_test

import (
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"sync"
	"testing"
	"time"

	"vero/gbdt"
	"vero/internal/cluster"
	"vero/internal/core"
	"vero/internal/costmodel"
	"vero/internal/datasets"
	"vero/internal/experiments"
	"vero/internal/partition"
	"vero/internal/systems"
)

// benchScale shrinks instance counts so the full harness completes in
// minutes on one machine; shapes are preserved (see EXPERIMENTS.md).
const benchScale = 0.3

// BenchmarkCostModelAge evaluates the Section 3.1.4 closed-form example
// and reports the paper's headline numbers as metrics.
func BenchmarkCostModelAge(b *testing.B) {
	var r costmodel.Report
	for i := 0; i < b.N; i++ {
		var err error
		r, err = costmodel.Analyze(costmodel.AgeExample())
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(r.HistogramBytes)/(1<<20), "sizehist_MB")
	b.ReportMetric(float64(r.HorizontalMemoryBytes)/(1<<30), "horiz_mem_GB")
	b.ReportMetric(float64(r.VerticalMemoryBytes)/(1<<30), "vert_mem_GB")
	b.ReportMetric(float64(r.HorizontalCommBytesPerTree)/(1<<30), "horiz_comm_GB")
	b.ReportMetric(float64(r.VerticalCommBytesPerTree)/(1<<20), "vert_comm_MB")
}

// reportEndpoints emits the first/last workload's per-tree times for the
// two systems of a Figure 10 panel.
func reportEndpoints(b *testing.B, pts []experiments.Point) {
	b.Helper()
	if len(pts) < 2 {
		return
	}
	first, last := pts[0].Workload, pts[len(pts)-1].Workload
	for _, p := range pts {
		if p.Workload != first && p.Workload != last {
			continue
		}
		suffix := "_lo"
		if p.Workload == last {
			suffix = "_hi"
		}
		b.ReportMetric(p.CompSec*1e3, p.System+suffix+"_comp_ms")
		b.ReportMetric(p.CommSec*1e3, p.System+suffix+"_comm_ms")
	}
}

func benchFig10(b *testing.B, f func(float64) ([]experiments.Point, error)) {
	var pts []experiments.Point
	for i := 0; i < b.N; i++ {
		var err error
		pts, err = f(benchScale)
		if err != nil {
			b.Fatal(err)
		}
	}
	reportEndpoints(b, pts)
}

func BenchmarkFig10a(b *testing.B) { benchFig10(b, experiments.Fig10a) }
func BenchmarkFig10b(b *testing.B) { benchFig10(b, experiments.Fig10b) }
func BenchmarkFig10c(b *testing.B) { benchFig10(b, experiments.Fig10c) }
func BenchmarkFig10d(b *testing.B) { benchFig10(b, experiments.Fig10d) }

// BenchmarkFig10e reports the memory breakdown vs dimensionality.
func BenchmarkFig10e(b *testing.B) {
	var pts []experiments.Point
	for i := 0; i < b.N; i++ {
		var err error
		pts, err = experiments.Fig10e(benchScale)
		if err != nil {
			b.Fatal(err)
		}
	}
	for _, p := range pts {
		if p.Workload == pts[len(pts)-1].Workload {
			b.ReportMetric(p.HistMB, p.System+"_hist_MB")
			b.ReportMetric(p.DataMB, p.System+"_data_MB")
		}
	}
}

// BenchmarkFig10f reports the memory breakdown vs class count.
func BenchmarkFig10f(b *testing.B) {
	var pts []experiments.Point
	for i := 0; i < b.N; i++ {
		var err error
		pts, err = experiments.Fig10f(benchScale)
		if err != nil {
			b.Fatal(err)
		}
	}
	for _, p := range pts {
		if p.Workload == pts[len(pts)-1].Workload {
			b.ReportMetric(p.HistMB, p.System+"_hist_MB")
		}
	}
}

func BenchmarkFig10g(b *testing.B) { benchFig10(b, experiments.Fig10g) }
func BenchmarkFig10h(b *testing.B) { benchFig10(b, experiments.Fig10h) }

// BenchmarkTable3 runs the end-to-end system comparison and reports each
// high-dimensional dataset's slowdown factors relative to Vero.
func BenchmarkTable3(b *testing.B) {
	var rows []experiments.Table3Row
	for i := 0; i < b.N; i++ {
		var err error
		rows, err = experiments.Table3(benchScale)
		if err != nil {
			b.Fatal(err)
		}
	}
	for _, r := range rows {
		switch r.Dataset {
		case "rcv1", "synthesis", "rcv1-multi", "susy":
			for _, s := range []systems.System{systems.XGBoost, systems.LightGBM, systems.DimBoost} {
				if rel, ok := r.Relative[s]; ok {
					b.ReportMetric(rel, r.Dataset+"_"+string(s)+"_xVero")
				}
			}
		}
	}
}

// BenchmarkFig11 runs the convergence-curve harness on one binary and one
// multi-class dataset and reports each system's final metric.
func BenchmarkFig11(b *testing.B) {
	var curves []experiments.Curve
	for i := 0; i < b.N; i++ {
		for _, name := range []string{"susy", "rcv1-multi"} {
			cs, err := experiments.Fig11(name, 8, benchScale)
			if err != nil {
				b.Fatal(err)
			}
			curves = append(curves, cs...)
		}
	}
	for _, c := range curves[:min(8, len(curves))] {
		if c.Err != "" || len(c.Points) == 0 {
			continue
		}
		last := c.Points[len(c.Points)-1]
		b.ReportMetric(last.Metric, c.Dataset+"_"+string(c.System)+"_final")
	}
}

// BenchmarkTable4 runs the industrial-dataset comparison (10 Gbps model).
func BenchmarkTable4(b *testing.B) {
	var rows []experiments.Table4Row
	for i := 0; i < b.N; i++ {
		var err error
		rows, err = experiments.Table4(benchScale)
		if err != nil {
			b.Fatal(err)
		}
	}
	for _, r := range rows {
		for s, sec := range r.Seconds {
			b.ReportMetric(sec*1e3, r.Dataset+"_"+string(s)+"_ms")
		}
	}
}

// BenchmarkTable5 runs the transformation-efficiency study.
func BenchmarkTable5(b *testing.B) {
	var rows []experiments.Table5Row
	for i := 0; i < b.N; i++ {
		var err error
		rows, err = experiments.Table5(benchScale)
		if err != nil {
			b.Fatal(err)
		}
	}
	for _, r := range rows {
		if r.Dataset != "synthesis" {
			continue
		}
		b.ReportMetric(r.RepartitionMB[partition.VariantNaive], "naive_MB")
		b.ReportMetric(r.RepartitionMB[partition.VariantCompressed], "compress_MB")
		b.ReportMetric(r.RepartitionMB[partition.VariantBlockified], "vero_MB")
	}
}

// BenchmarkTable6 runs the scalability sweep.
func BenchmarkTable6(b *testing.B) {
	var rows []experiments.Table6Row
	for i := 0; i < b.N; i++ {
		var err error
		rows, err = experiments.Table6(benchScale)
		if err != nil {
			b.Fatal(err)
		}
	}
	for _, r := range rows {
		if r.Workers == 8 {
			b.ReportMetric(r.Speedup, r.Dataset+"_speedup_w8")
		}
	}
}

// BenchmarkTable7 runs the Yggdrasil comparison.
func BenchmarkTable7(b *testing.B) {
	var rows []experiments.Table7Row
	for i := 0; i < b.N; i++ {
		var err error
		rows, err = experiments.Table7(benchScale)
		if err != nil {
			b.Fatal(err)
		}
	}
	for _, r := range rows {
		b.ReportMetric(r.Seconds[systems.Yggdrasil]*1e3, r.Dataset+"_yggdrasil_ms")
		b.ReportMetric(r.Seconds[systems.QD3Hybrid]*1e3, r.Dataset+"_qd3_ms")
		b.ReportMetric(r.Seconds[systems.Vero]*1e3, r.Dataset+"_vero_ms")
	}
}

// BenchmarkTable8 runs the LightGBM data- vs feature-parallel comparison.
func BenchmarkTable8(b *testing.B) {
	var rows []experiments.Table8Row
	for i := 0; i < b.N; i++ {
		var err error
		rows, err = experiments.Table8(benchScale)
		if err != nil {
			b.Fatal(err)
		}
	}
	for _, r := range rows {
		b.ReportMetric(r.Seconds[systems.LightGBM]*1e3, r.Dataset+"_dp_ms")
		b.ReportMetric(r.Seconds[systems.LightGBMFP]*1e3, r.Dataset+"_fp_ms")
		b.ReportMetric(r.Seconds[systems.Vero]*1e3, r.Dataset+"_vero_ms")
	}
}

// BenchmarkAblations measures the design-choice ablations of DESIGN.md.
func BenchmarkAblations(b *testing.B) {
	var sub, comp experiments.AblationRow
	for i := 0; i < b.N; i++ {
		var err error
		sub, err = experiments.AblationSubtraction(benchScale)
		if err != nil {
			b.Fatal(err)
		}
		comp, err = experiments.AblationCompression(benchScale)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(sub.AblatedSec/sub.BaselineSec, "subtraction_speedup")
	b.ReportMetric(comp.AblatedSec/comp.BaselineSec, "compression_speedup")
}

// Training-throughput benchmarks: the histogram-construction trajectory.
// One benchmark per quadrant, binary (C==1 gradient) and multiclass, so
// histogram-kernel changes are pinned against a consistent workload. The
// rows/s metric is nominal instance-layer scans (N x Trees x (Layers-1))
// divided by histogram-phase computation seconds — see docs/PERFORMANCE.md
// for how to read it (histogram subtraction makes the numerator an upper
// bound on actual scans, uniformly across quadrants).

const (
	trainHistTrees  = 4
	trainHistLayers = 6
)

var trainHistOnce struct {
	sync.Once
	binary, multi *datasets.Dataset
	err           error
}

func trainHistData(b *testing.B) (binary, multi *datasets.Dataset) {
	b.Helper()
	s := &trainHistOnce
	s.Do(func() {
		s.binary, s.err = datasets.Synthetic(datasets.SyntheticConfig{
			N: 8000, D: 60, C: 2,
			InformativeRatio: 0.3, Density: 0.3, LabelNoise: 0.05, Seed: 17,
		})
		if s.err != nil {
			return
		}
		s.multi, s.err = datasets.Synthetic(datasets.SyntheticConfig{
			N: 8000, D: 60, C: 5,
			InformativeRatio: 0.3, Density: 0.3, LabelNoise: 0.05, Seed: 17,
		})
	})
	if s.err != nil {
		b.Fatal(s.err)
	}
	return s.binary, s.multi
}

func benchTrainHist(b *testing.B, q core.Quadrant) {
	binary, multi := trainHistData(b)
	for _, tc := range []struct {
		name string
		ds   *datasets.Dataset
	}{{"binary", binary}, {"multiclass", multi}} {
		b.Run(tc.name, func(b *testing.B) {
			b.ReportAllocs()
			var histSec float64
			for i := 0; i < b.N; i++ {
				cl := cluster.New(4, cluster.Gigabit())
				_, err := core.Train(cl, tc.ds, core.Config{
					Quadrant: q, Trees: trainHistTrees, Layers: trainHistLayers, Splits: 20,
				})
				if err != nil {
					b.Fatal(err)
				}
				histSec += cl.Stats().Phase("train.histogram").CompSeconds
			}
			rows := float64(b.N) * float64(tc.ds.NumInstances()) * trainHistTrees * (trainHistLayers - 1)
			b.ReportMetric(rows/histSec, "rows/s")
			b.ReportMetric(histSec/float64(b.N)*1e3, "hist_ms/op")
		})
	}
}

func BenchmarkTrainHistQD1(b *testing.B) { benchTrainHist(b, core.QD1) }
func BenchmarkTrainHistQD2(b *testing.B) { benchTrainHist(b, core.QD2) }
func BenchmarkTrainHistQD3(b *testing.B) { benchTrainHist(b, core.QD3) }
func BenchmarkTrainHistQD4(b *testing.B) { benchTrainHist(b, core.QD4) }

// Inference benchmarks: the serving-side comparison between the training
// forest's pointer walk and the flattened SoA engine (gbdt.Predictor).

var inferOnce struct {
	sync.Once
	model   *gbdt.Model
	pred    *gbdt.Predictor
	traffic *gbdt.Dataset
	err     error
}

// inferSetup trains one 100-tree binary model and holds out a traffic set,
// shared by every inference benchmark.
func inferSetup(b *testing.B) (*gbdt.Model, *gbdt.Predictor, *gbdt.Dataset) {
	b.Helper()
	s := &inferOnce
	s.Do(func() {
		ds, err := gbdt.Synthetic(gbdt.SyntheticConfig{
			N: 40000, D: 200, C: 2,
			InformativeRatio: 0.2, Density: 0.2, LabelNoise: 0.05, Seed: 9,
		})
		if err != nil {
			s.err = err
			return
		}
		train, traffic := ds.Split(0.5, 9)
		model, _, err := gbdt.Train(train, gbdt.Options{Workers: 8, Trees: 100, Layers: 6, Seed: 9})
		if err != nil {
			s.err = err
			return
		}
		pred, err := gbdt.NewPredictor(model, gbdt.PredictorOptions{})
		if err != nil {
			s.err = err
			return
		}
		s.model, s.pred, s.traffic = model, pred, traffic
	})
	if s.err != nil {
		b.Fatal(s.err)
	}
	return s.model, s.pred, s.traffic
}

// BenchmarkInferencePointerWalk scores the traffic set with the training
// forest's per-node pointer walk (the pre-serving baseline).
func BenchmarkInferencePointerWalk(b *testing.B) {
	model, _, traffic := inferSetup(b)
	forest := model.Forest()
	b.ResetTimer()
	start := time.Now()
	for i := 0; i < b.N; i++ {
		forest.PredictCSR(traffic.X)
	}
	rows := float64(b.N) * float64(traffic.NumInstances())
	b.ReportMetric(rows/time.Since(start).Seconds(), "rows/s")
}

// BenchmarkInferenceFlat scores the traffic set with the flat engine on a
// single goroutine — the layout win alone.
func BenchmarkInferenceFlat(b *testing.B) {
	model, _, traffic := inferSetup(b)
	pred, err := gbdt.NewPredictor(model, gbdt.PredictorOptions{Workers: 1})
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	start := time.Now()
	for i := 0; i < b.N; i++ {
		pred.Predict(traffic)
	}
	rows := float64(b.N) * float64(traffic.NumInstances())
	b.ReportMetric(rows/time.Since(start).Seconds(), "rows/s")
}

// BenchmarkInferenceFlatParallel adds the goroutine-parallel batch path —
// the configuration cmd/veroserve runs.
func BenchmarkInferenceFlatParallel(b *testing.B) {
	_, pred, traffic := inferSetup(b)
	b.ResetTimer()
	start := time.Now()
	for i := 0; i < b.N; i++ {
		pred.Predict(traffic)
	}
	rows := float64(b.N) * float64(traffic.NumInstances())
	b.ReportMetric(rows/time.Since(start).Seconds(), "rows/s")
}

// Batch-kernel benchmarks: the per-row walk vs the blocked tree-major
// traversal (PredictorOptions.BlockRows), single-threaded so the numbers
// isolate the kernel, at the batch sizes a serving tier actually sees.

func benchPredictBatch(b *testing.B, opts gbdt.PredictorOptions) {
	model, _, traffic := inferSetup(b)
	opts.Workers = 1
	pred, err := gbdt.NewPredictor(model, opts)
	if err != nil {
		b.Fatal(err)
	}
	for _, batch := range []int{1, 64, 256, 1024} {
		b.Run(fmt.Sprintf("batch=%d", batch), func(b *testing.B) {
			feats := make([][]uint32, batch)
			vals := make([][]float32, batch)
			for i := 0; i < batch; i++ {
				feats[i], vals[i] = traffic.X.Row(i % traffic.NumInstances())
			}
			b.ResetTimer()
			start := time.Now()
			for i := 0; i < b.N; i++ {
				pred.PredictRows(feats, vals)
			}
			rows := float64(b.N) * float64(batch)
			b.ReportMetric(rows/time.Since(start).Seconds(), "rows/s")
		})
	}
}

// BenchmarkPredictRow scores batches row-at-a-time (BlockRows=1), the
// pre-blocking serving path.
func BenchmarkPredictRow(b *testing.B) { benchPredictBatch(b, gbdt.PredictorOptions{BlockRows: 1}) }

// BenchmarkPredictBlock scores batches through the blocked kernel at the
// default block size.
func BenchmarkPredictBlock(b *testing.B) { benchPredictBatch(b, gbdt.PredictorOptions{}) }

// BenchmarkPredictBinned scores batches through the binned (bin-code)
// engine: uint8/uint16 node thresholds, integer compares, bit-identical
// margins — the `veroserve -binned` path.
func BenchmarkPredictBinned(b *testing.B) { benchPredictBatch(b, gbdt.PredictorOptions{Binned: true}) }

// BenchmarkInferenceRowLatency measures single-row latency through the
// flat engine — the veroserve single-request path — and reports p50/p99.
func BenchmarkInferenceRowLatency(b *testing.B) {
	_, pred, traffic := inferSetup(b)
	out := make([]float64, pred.NumClass())
	lat := make([]float64, 0, b.N)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		feat, val := traffic.X.Row(i % traffic.NumInstances())
		t0 := time.Now()
		pred.PredictRowInto(feat, val, out)
		lat = append(lat, float64(time.Since(t0).Nanoseconds())/1e3)
	}
	b.StopTimer()
	sort.Float64s(lat)
	b.ReportMetric(lat[len(lat)/2], "p50_us")
	b.ReportMetric(lat[len(lat)*99/100], "p99_us")
}

// --- Ingestion: cold parse vs warm binned cache (docs/DATA.md) ---

// ingestSetup writes a LibSVM training file and its .vbin cache image to
// a temp dir, returning both paths and the row count.
func ingestSetup(b *testing.B, n, d int) (libsvm, vbin string, rows int) {
	b.Helper()
	ds, err := gbdt.Synthetic(gbdt.SyntheticConfig{
		N: n, D: d, C: 2, InformativeRatio: 0.2, Density: 0.2, Seed: 42,
	})
	if err != nil {
		b.Fatal(err)
	}
	dir := b.TempDir()
	libsvm = filepath.Join(dir, "bench.libsvm")
	f, err := os.Create(libsvm)
	if err != nil {
		b.Fatal(err)
	}
	if err := gbdt.WriteLibSVM(f, ds); err != nil {
		b.Fatal(err)
	}
	if err := f.Close(); err != nil {
		b.Fatal(err)
	}
	vbin = filepath.Join(dir, "bench.vbin")
	if err := gbdt.WriteCacheFile(vbin, ds, gbdt.Options{}); err != nil {
		b.Fatal(err)
	}
	return libsvm, vbin, ds.NumInstances()
}

// BenchmarkIngestColdParse measures the full cold path: chunked parallel
// LibSVM parse plus the streaming sketch pass that derives bin boundaries.
func BenchmarkIngestColdParse(b *testing.B) {
	libsvm, _, rows := ingestSetup(b, 20000, 100)
	b.ResetTimer()
	start := time.Now()
	for i := 0; i < b.N; i++ {
		if _, _, err := gbdt.IngestFile(libsvm, gbdt.Options{}); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(rows*b.N)/time.Since(start).Seconds(), "rows/s")
}

// BenchmarkIngestColdParse1Worker is the single-threaded baseline the
// worker pool is measured against.
func BenchmarkIngestColdParse1Worker(b *testing.B) {
	libsvm, _, rows := ingestSetup(b, 20000, 100)
	b.ResetTimer()
	start := time.Now()
	for i := 0; i < b.N; i++ {
		if _, _, err := gbdt.IngestFile(libsvm, gbdt.Options{NumParseWorkers: 1}); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(rows*b.N)/time.Since(start).Seconds(), "rows/s")
}

// BenchmarkIngestWarmCache measures the warm path: loading the binned
// binary cache, which skips parsing, sketching and binning.
func BenchmarkIngestWarmCache(b *testing.B) {
	_, vbin, rows := ingestSetup(b, 20000, 100)
	b.ResetTimer()
	start := time.Now()
	for i := 0; i < b.N; i++ {
		if _, err := gbdt.ReadCacheFile(vbin); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(rows*b.N)/time.Since(start).Seconds(), "rows/s")
}

// BenchmarkTrainOutOfCore trains the same .vbin cache twice — materialized
// in memory and streamed through the mmap-backed view under a small memory
// budget — and reports both training throughputs, the streamed fraction
// (streamed rows/s over in-memory rows/s, the docs/PERFORMANCE.md
// headline) and the streamed run's peak heap.
func BenchmarkTrainOutOfCore(b *testing.B) {
	_, vbin, rows := ingestSetup(b, 20000, 100)
	train := func(outOfCore bool) (*gbdt.Report, float64) {
		b.Helper()
		t0 := time.Now()
		_, rep, err := gbdt.TrainFile(vbin, gbdt.Options{
			Quadrant: gbdt.QD4, Workers: 4, Trees: 4, Layers: 6,
			OutOfCore: outOfCore, MemBudget: 32 << 20,
		})
		if err != nil {
			b.Fatal(err)
		}
		return rep, time.Since(t0).Seconds()
	}
	b.ResetTimer()
	var memSec, oocSec float64
	var peak uint64
	for i := 0; i < b.N; i++ {
		_, s := train(false)
		memSec += s
		rep, s := train(true)
		oocSec += s
		peak = rep.PeakHeapBytes
	}
	b.ReportMetric(float64(rows*b.N)/memSec, "mem_rows/s")
	b.ReportMetric(float64(rows*b.N)/oocSec, "ooc_rows/s")
	b.ReportMetric(memSec/oocSec, "ooc_fraction")
	b.ReportMetric(float64(peak)/(1<<20), "ooc_peak_MiB")
}

// BenchmarkIngestWarmVsCold runs both paths back to back and reports the
// warm-over-cold rows/s ratio — the acceptance headline of the cache.
func BenchmarkIngestWarmVsCold(b *testing.B) {
	libsvm, vbin, rows := ingestSetup(b, 20000, 100)
	b.ResetTimer()
	var coldSec, warmSec float64
	for i := 0; i < b.N; i++ {
		t0 := time.Now()
		if _, _, err := gbdt.IngestFile(libsvm, gbdt.Options{}); err != nil {
			b.Fatal(err)
		}
		coldSec += time.Since(t0).Seconds()
		t0 = time.Now()
		if _, err := gbdt.ReadCacheFile(vbin); err != nil {
			b.Fatal(err)
		}
		warmSec += time.Since(t0).Seconds()
	}
	b.ReportMetric(float64(rows*b.N)/coldSec, "cold_rows/s")
	b.ReportMetric(float64(rows*b.N)/warmSec, "warm_rows/s")
	b.ReportMetric(coldSec/warmSec, "warm_x")
}
