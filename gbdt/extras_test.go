package gbdt

import (
	"strings"
	"testing"
)

func TestFeatureImportanceAPI(t *testing.T) {
	m, _, _, _ := quickTrain(t, SystemVero)
	imp, err := m.FeatureImportance(ImportanceGain)
	if err != nil {
		t.Fatal(err)
	}
	if len(imp) == 0 {
		t.Fatal("no features ranked")
	}
	top, err := m.TopFeatures(ImportanceSplit, 3)
	if err != nil {
		t.Fatal(err)
	}
	if len(top) == 0 || top[0].Score <= 0 {
		t.Fatalf("top = %v", top)
	}
	for i := 1; i < len(top); i++ {
		if top[i].Score > top[i-1].Score {
			t.Fatal("top features not sorted")
		}
	}
}

func TestDumpTreeAPI(t *testing.T) {
	m, _, _, _ := quickTrain(t, SystemLightGBM)
	d, err := m.DumpTree(0)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(d, "leaf") {
		t.Fatalf("dump has no leaves:\n%s", d)
	}
	if _, err := m.DumpTree(99); err == nil {
		t.Fatal("out-of-range tree accepted")
	}
}

func TestSummarizeAPI(t *testing.T) {
	m, _, _, _ := quickTrain(t, SystemVero)
	s := m.Summarize()
	if s.NumTrees != 5 || s.TotalLeaves < 5 || s.MaxDepth < 2 {
		t.Fatalf("stats = %+v", s)
	}
}

func TestEarlyStopping(t *testing.T) {
	ds, err := Synthetic(SyntheticConfig{N: 2000, D: 30, C: 2, InformativeRatio: 0.4, Density: 0.4, Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	train, valid := ds.Split(0.8, 10)
	m, _, err := TrainWithEarlyStopping(train, valid, Options{
		System: SystemLightGBM, Workers: 2, Trees: 40, Layers: 4, Splits: 8,
	}, 3)
	if err != nil {
		t.Fatal(err)
	}
	if m.NumTrees() == 0 {
		t.Fatal("no trees")
	}
	if m.NumTrees() == 40 {
		t.Log("note: early stopping never triggered in 40 trees")
	}
	if auc := AUC(m, valid); auc < 0.7 {
		t.Fatalf("early-stopped AUC = %v", auc)
	}
	if _, _, err := TrainWithEarlyStopping(train, valid, Options{}, 0); err == nil {
		t.Fatal("patience 0 accepted")
	}
}

func TestEarlyStoppingRegression(t *testing.T) {
	ds, err := SyntheticRegression(1200, 15, 0.5, 0.2, 12)
	if err != nil {
		t.Fatal(err)
	}
	train, valid := ds.Split(0.8, 11)
	m, _, err := TrainWithEarlyStopping(train, valid, Options{
		System: SystemLightGBM, Workers: 2, Trees: 30, Layers: 4, Splits: 8, Objective: "square",
	}, 2)
	if err != nil {
		t.Fatal(err)
	}
	if m.NumTrees() == 0 {
		t.Fatal("no trees")
	}
}

func TestAdviseAPI(t *testing.T) {
	a, err := Advise(AdvisorWorkload{N: 697_000, D: 47_000, C: 1, W: 5, NNZPerRow: 75})
	if err != nil {
		t.Fatal(err)
	}
	if a.System != "vero" {
		t.Fatalf("advised %s for rcv1-shaped workload", a.System)
	}
	ds, err := NamedDataset("susy", 1)
	if err != nil {
		t.Fatal(err)
	}
	// SUSY's simulacrum keeps the paper shape's low dimensionality; at
	// paper scale the advisor picks horizontal row-store.
	a, err = Advise(AdvisorWorkload{N: 5_000_000, D: int64(ds.NumFeatures()), C: 1, W: 5})
	if err != nil {
		t.Fatal(err)
	}
	if a.Partitioning != "horizontal" {
		t.Fatalf("advised %s for susy-shaped workload: %s", a.Partitioning, a.Rationale)
	}
	if _, err := AdviseDataset(ds, 4, Gigabit()); err != nil {
		t.Fatal(err)
	}
}
