#!/usr/bin/env bash
# End-to-end micro-batching soak smoke: train a model, serve it with
# cross-request batching and binned inference, fire a short veroload
# burst, and assert the server coalesced requests (non-zero batching
# factor) with zero errors. Run from the repo root; used by CI and
# reproducible locally with `bash scripts/load_smoke.sh`.
set -euo pipefail

ADDR="127.0.0.1:${SMOKE_PORT:-18109}"
DIR="$(mktemp -d)"
trap 'kill "${SERVER_PID:-}" 2>/dev/null || true; rm -rf "$DIR"' EXIT

echo "== build"
go build -o "$DIR/veroctl" ./cmd/veroctl
go build -o "$DIR/veroserve" ./cmd/veroserve
go build -o "$DIR/veroload" ./cmd/veroload
go build -o "$DIR/datagen" ./cmd/datagen

echo "== train"
"$DIR/datagen" -n 2000 -d 30 -c 2 -density 0.4 -informative 0.4 -out "$DIR/train.libsvm"
"$DIR/veroctl" train -data "$DIR/train.libsvm" -classes 2 -trees 5 -layers 4 \
  -model "$DIR/model.json" >/dev/null

echo "== start veroserve with micro-batching + binned inference"
"$DIR/veroserve" -model "default=$DIR/model.json" -addr "$ADDR" \
  -batch-deadline 500us -batch-rows 32 -binned \
  2>"$DIR/server.log" &
SERVER_PID=$!
for i in $(seq 1 50); do
  curl -sf "http://$ADDR/healthz" >/dev/null 2>&1 && break
  [ "$i" = 50 ] && { echo "server never came up"; cat "$DIR/server.log"; exit 1; }
  sleep 0.2
done

fail() { echo "FAIL: $1"; echo "--- server log:"; cat "$DIR/server.log"; exit 1; }

echo "== closed-loop burst"
OUT=$("$DIR/veroload" -url "http://$ADDR" -clients 32 -duration 5s -features 30 -density 0.4) \
  || fail "veroload reported errors: $OUT"
echo "$OUT"
echo "$OUT" | grep -q ' 0 errors' || fail "burst had errors: $OUT"
# The batching factor line reads "server batching: factor F (...)"; at 32
# concurrent closed-loop clients against a sub-millisecond deadline the
# server must have coalesced something, so F > 1 (i.e. not "factor 0.00"
# or "factor 1.00").
echo "$OUT" | grep -q 'server batching: factor' || fail "no batching factor reported: $OUT"
echo "$OUT" | grep -Eq 'server batching: factor (0\.|1\.00)' \
  && fail "batching factor not > 1: $OUT"

echo "== /metricz exposes batching counters"
MET=$(curl -sf "http://$ADDR/metricz")
echo "$MET" | grep -q '"batching"' || fail "metricz missing batching section: $MET"
echo "$MET" | grep -q '"flush_deadline"' || fail "metricz missing flush causes: $MET"
echo "$MET" | grep -q '"queue_wait_ms"' || fail "metricz missing queue wait: $MET"
echo "$MET" | grep -q '"errors":0' || fail "server-side errors recorded: $MET"

echo "== graceful shutdown drains"
kill -TERM "$SERVER_PID"
wait "$SERVER_PID" 2>/dev/null || true
grep -q 'draining micro-batches' "$DIR/server.log" || fail "shutdown drain log line missing"
SERVER_PID=""

echo "load smoke OK"
