package gbdt

import (
	"fmt"
	"os"
	"strings"

	"vero/internal/datasets"
	"vero/internal/ingest"
)

// Format selects an ingestion input dialect.
type Format = ingest.Format

// The supported input formats. The dialects — and the .vbin cache format
// — are specified byte by byte in docs/DATA.md.
const (
	// FormatLibSVM is "label idx:value ..." sparse text (the default).
	FormatLibSVM = ingest.FormatLibSVM
	// FormatCSV is comma-separated text: label first, one column per
	// feature, empty fields meaning missing values.
	FormatCSV = ingest.FormatCSV
)

// ParseFormat reads a format from its command-line spelling ("libsvm",
// "csv", or empty for the default).
func ParseFormat(s string) (Format, error) { return ingest.ParseFormat(s) }

// IngestStatus reports whether a dataset came from a warm cache or a
// cold parse.
type IngestStatus = ingest.CacheStatus

// Ingest outcomes.
const (
	// IngestCold means the source file was parsed (and, with a CacheDir,
	// the cache was written).
	IngestCold = ingest.CacheCold
	// IngestWarm means the dataset was loaded from the binned binary
	// cache without parsing or binning.
	IngestWarm = ingest.CacheWarm
)

// ingestOptions translates the façade options to the pipeline's.
func ingestOptions(opts Options) ingest.Options {
	return ingest.Options{
		Format:    opts.Format,
		NumClass:  opts.NumClass,
		ChunkRows: opts.ChunkRows,
		Workers:   opts.NumParseWorkers,
		Q:         opts.Splits,
	}
}

// IngestFile reads a training file through the chunked, parallel
// ingestion pipeline (internal/ingest), honoring the ingestion fields of
// Options: Format, NumClass, ChunkRows, NumParseWorkers and CacheDir.
//
// With a CacheDir, the binned binary cache is consulted first: a fresh,
// parameter-matching .vbin file is loaded directly — no parsing, no
// binning — and a miss parses the source and rewrites the cache. A path
// ending in ".vbin" is always loaded as a cache image, CacheDir or not.
// The returned status says which happened.
//
// Candidate splits derived during ingestion ride along on the dataset
// (see datasets.Prebin) and training with matching parameters — the
// Splits option, default 20 — adopts them instead of re-sketching; models
// are bit-identical either way.
func IngestFile(path string, opts Options) (*Dataset, IngestStatus, error) {
	opts = opts.withDefaults()
	if opts.NumClass == 0 {
		opts.NumClass = 2
	}
	if opts.OutOfCore {
		return ingestOutOfCore(path, opts)
	}
	if strings.HasSuffix(path, ".vbin") {
		ds, err := ingest.ReadCacheFile(path)
		if err != nil {
			return nil, "", err
		}
		if ds.NumClass != opts.NumClass {
			return nil, "", fmt.Errorf("gbdt: cache %s holds %d classes, want %d", path, ds.NumClass, opts.NumClass)
		}
		return ds, IngestWarm, nil
	}
	if opts.CacheDir != "" {
		return ingest.Cached(opts.CacheDir, path, ingestOptions(opts))
	}
	ds, err := ingest.IngestFile(path, ingestOptions(opts))
	if err != nil {
		return nil, "", err
	}
	return ds, IngestCold, nil
}

// IngestShard opens a .vbin cache and materializes only this rank's
// shard of it: the rank's row range for the horizontal quadrants
// (QD1/QD2), its balanced feature group for the vertical ones (QD3/QD4).
// It requires Options.Distributed — the shard is this deployment slot's
// slice, derived deterministically from (Rank, len(Peers), Quadrant) so
// every rank carves the same image identically — and an explicit
// Quadrant (the advisor cannot run on rank-local statistics).
//
// The returned dataset keeps the global n×d shape with entries
// materialized only inside the shard; labels and the quantized bins stay
// full. Training on it produces the bit-identical model a fully
// replicated run produces, while each rank holds O(nnz/W) of the image.
func IngestShard(path string, opts Options) (*Dataset, error) {
	opts = opts.withDefaults()
	if opts.NumClass == 0 {
		opts.NumClass = 2
	}
	d := opts.Distributed
	if d == nil {
		return nil, fmt.Errorf("gbdt: IngestShard needs Options.Distributed (a deployment slot to shard for)")
	}
	var kind datasets.ShardKind
	switch opts.Quadrant {
	case QD1, QD2:
		kind = datasets.ShardRows
	case QD3, QD4:
		kind = datasets.ShardCols
	case QuadrantAuto, 0:
		return nil, fmt.Errorf("gbdt: IngestShard needs an explicit Quadrant (QD1..QD4): the sharding axis follows it")
	default:
		return nil, fmt.Errorf("gbdt: IngestShard: unknown quadrant %v", opts.Quadrant)
	}
	if !strings.HasSuffix(path, ".vbin") {
		return nil, fmt.Errorf("gbdt: IngestShard loads .vbin cache images; ingest %s once (IngestFile with a CacheDir) and point every rank at the cache", path)
	}
	ds, err := ingest.ReadCacheShard(path, kind, d.Rank, len(d.Peers))
	if err != nil {
		return nil, err
	}
	if ds.NumClass != opts.NumClass {
		return nil, fmt.Errorf("gbdt: cache %s holds %d classes, want %d", path, ds.NumClass, opts.NumClass)
	}
	return ds, nil
}

// ingestOutOfCore serves the Options.OutOfCore path: instead of
// materializing the binned matrix, the .vbin cache image is mapped
// read-only (internal/ingest.MapCacheFile) and training streams blocks
// from it. A path that is not itself a .vbin file needs a CacheDir; a
// missing or stale cache is built first (that cold build materializes the
// dataset transiently — the training run itself stays bounded by
// MemBudget). Close the returned dataset to release the mapping.
func ingestOutOfCore(path string, opts Options) (*Dataset, IngestStatus, error) {
	status := IngestWarm
	if !strings.HasSuffix(path, ".vbin") {
		if opts.CacheDir == "" {
			return nil, "", fmt.Errorf("gbdt: out-of-core training needs a .vbin cache: pass a .vbin path or set CacheDir")
		}
		var err error
		if path, status, err = ingest.EnsureCache(opts.CacheDir, path, ingestOptions(opts)); err != nil {
			return nil, "", err
		}
	}
	mc, err := ingest.MapCacheFile(path)
	if err != nil {
		return nil, "", err
	}
	ds := mc.Dataset()
	if ds.NumClass != opts.NumClass {
		mc.Close()
		return nil, "", fmt.Errorf("gbdt: cache %s holds %d classes, want %d", path, ds.NumClass, opts.NumClass)
	}
	return ds, status, nil
}

// ReadDataFile reads a data file without deriving bins: the chunked
// parallel parse only, no sketch pass. Use it for evaluation and
// prediction workloads, where candidate splits would be discarded.
// A `.vbin` path (or a fresh cache under Options.CacheDir) still
// warm-loads — its bins come for free — but a cache miss parses the
// source without rewriting the cache.
func ReadDataFile(path string, opts Options) (*Dataset, IngestStatus, error) {
	opts = opts.withDefaults()
	if opts.NumClass == 0 {
		opts.NumClass = 2
	}
	if strings.HasSuffix(path, ".vbin") {
		return IngestFile(path, opts)
	}
	if opts.CacheDir != "" {
		if ds, err := readFreshCache(path, opts); err == nil {
			return ds, IngestWarm, nil
		}
	}
	f, err := os.Open(path)
	if err != nil {
		return nil, "", fmt.Errorf("gbdt: %w", err)
	}
	defer f.Close()
	o := ingestOptions(opts)
	ds, err := ingest.ReadDataset(f, o)
	if err != nil {
		return nil, "", err
	}
	return ds, IngestCold, nil
}

// readFreshCache loads the source's cache image if it exists, is fresh
// and matches the requested parameters; any failure is a miss.
func readFreshCache(source string, opts Options) (*Dataset, error) {
	return ingest.ReadFreshCache(opts.CacheDir, source, ingestOptions(opts))
}

// TrainFile ingests a training file per IngestFile and trains on it —
// the one-call path from a file on disk (LibSVM, CSV or .vbin cache) to
// a model.
func TrainFile(path string, opts Options) (*Model, *Report, error) {
	ds, _, err := IngestFile(path, opts)
	if err != nil {
		return nil, nil, err
	}
	defer ds.Close() // releases the out-of-core mapping; no-op in memory
	return Train(ds, opts)
}

// WriteCacheFile writes a dataset as a .vbin binned binary cache;
// Options.Splits (default 20) bounds the per-feature bin count. An
// existing ingestion-derived Prebin is reused when its q matches and
// re-derived otherwise — unless the dataset is quantized (already
// reconstructed from a cache), where a q change is an error because the
// source values are gone. Loading the file with ReadCacheFile or
// IngestFile skips parse and bin entirely.
func WriteCacheFile(path string, ds *Dataset, opts Options) error {
	q := opts.Splits
	if q == 0 {
		q = 20 // the paper's q, core.Config's default
	}
	pb := ds.Prebin
	switch {
	case pb == nil:
		pb = ingest.Prebinned(ds, ingest.DefaultSketchEps, q)
	case pb.Q != q:
		if pb.Quantized {
			return fmt.Errorf("gbdt: dataset was binned with q=%d; caching it with q=%d needs the source values — re-ingest instead", pb.Q, q)
		}
		pb = ingest.Prebinned(ds, pb.SketchEps, q)
	}
	return ingest.WriteCacheFile(path, ds, pb)
}

// ReadCacheFile loads a .vbin binned binary cache written by
// WriteCacheFile (or by a cold IngestFile run with a CacheDir).
func ReadCacheFile(path string) (*Dataset, error) { return ingest.ReadCacheFile(path) }
