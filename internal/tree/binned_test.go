package tree

import (
	"math/rand"
	"testing"
)

// randomSplits builds ascending candidate-split arrays for d features with
// up to maxBins splits each.
func randomSplits(rng *rand.Rand, d, maxBins int) [][]float32 {
	splits := make([][]float32, d)
	for f := range splits {
		n := 2 + rng.Intn(maxBins-1)
		s := make([]float32, n)
		v := float32(rng.NormFloat64())
		for i := range s {
			s[i] = v
			v += float32(rng.Float64()) + 1e-3
		}
		splits[f] = s
	}
	return splits
}

// binnedRandomForest grows a random forest whose split metadata is
// trainer-consistent: every interior node routes on a (feature, bin) pair
// with SplitValue exactly splits[feature][bin], which is what CompileBinned
// verifies and bit-identical binned routing requires.
func binnedRandomForest(t testing.TB, rng *rand.Rand, splits [][]float32, trees, layers, numClass int) *Forest {
	t.Helper()
	d := len(splits)
	f := NewForest(numClass, 0.3, make([]float64, numClass), "logistic", d)
	f.Splits = splits
	for i := 0; i < trees; i++ {
		tr := New(numClass)
		frontier := []int32{0}
		for l := 0; l < layers; l++ {
			var next []int32
			for _, id := range frontier {
				if rng.Float64() < 0.2 {
					continue
				}
				feat := rng.Intn(d)
				bin := rng.Intn(len(splits[feat]))
				left, right := tr.Split(id, int32(feat), splits[feat][bin],
					uint16(bin), rng.Intn(2) == 0, rng.Float64())
				next = append(next, left, right)
			}
			frontier = next
		}
		for id := range tr.Nodes {
			if tr.Nodes[id].IsLeaf() {
				w := make([]float64, numClass)
				for k := range w {
					w[k] = rng.NormFloat64()
				}
				tr.SetLeaf(int32(id), w)
			}
		}
		f.Append(tr)
	}
	return f
}

// boundaryRows generates sparse rows biased to the sharp edges of
// quantization: with high probability a stored value sits exactly on a
// candidate split (including the first and last), and otherwise it lands
// strictly between, below, or above them.
func boundaryRows(rng *rand.Rand, splits [][]float32, rows int, density float64) ([][]uint32, [][]float32) {
	feats := make([][]uint32, rows)
	vals := make([][]float32, rows)
	for i := 0; i < rows; i++ {
		for f := range splits {
			if rng.Float64() >= density {
				continue
			}
			s := splits[f]
			var v float32
			switch rng.Intn(5) {
			case 0: // exactly on a random split (threshold boundary)
				v = s[rng.Intn(len(s))]
			case 1: // exactly the last split
				v = s[len(s)-1]
			case 2: // above every split (out-of-range, must route right of any threshold)
				v = s[len(s)-1] + 1 + float32(rng.Float64())
			case 3: // below every split
				v = s[0] - 1 - float32(rng.Float64())
			default: // strictly between two splits
				k := rng.Intn(len(s) - 1)
				v = (s[k] + s[k+1]) / 2
			}
			feats[i] = append(feats[i], uint32(f))
			vals[i] = append(vals[i], v)
		}
	}
	return feats, vals
}

// TestBinnedMatchesFloat is the binned engine's bit-identity property
// test: for rows saturated with split-boundary values, binned descent
// (per-row and blocked, uint8 and uint16 code widths) must produce margins
// identical to the float engine and the pointer walk.
func TestBinnedMatchesFloat(t *testing.T) {
	for _, tc := range []struct {
		name     string
		numClass int
		maxBins  int
		wantBits int
	}{
		{"binary_uint8", 1, 20, 8},
		{"multiclass_uint8", 3, 20, 8},
		{"binary_uint16", 1, 400, 16},
	} {
		t.Run(tc.name, func(t *testing.T) {
			rng := rand.New(rand.NewSource(29))
			const d = 24
			splits := randomSplits(rng, d, tc.maxBins)
			f := binnedRandomForest(t, rng, splits, 10, 6, tc.numClass)
			ff := Compile(f)
			bf, err := ff.CompileBinned(f.Splits)
			if err != nil {
				t.Fatal(err)
			}
			if bf.CodeBits() != tc.wantBits {
				t.Fatalf("code bits %d, want %d", bf.CodeBits(), tc.wantBits)
			}

			const rows = 300
			feats, vals := boundaryRows(rng, splits, rows, 0.5)
			k := tc.numClass
			wantBlock := make([]float64, rows*k)
			ff.PredictBlock(feats, vals, wantBlock, 0)
			gotBlock := make([]float64, rows*k)
			bf.PredictBlock(feats, vals, gotBlock, 0)
			for i := 0; i < rows; i++ {
				want := f.PredictRow(feats[i], vals[i])
				gotRow := bf.PredictRow(feats[i], vals[i])
				for c := 0; c < k; c++ {
					if gotRow[c] != want[c] {
						t.Fatalf("row %d class %d: binned per-row %v, pointer walk %v", i, c, gotRow[c], want[c])
					}
					if gotBlock[i*k+c] != wantBlock[i*k+c] {
						t.Fatalf("row %d class %d: binned block %v, float block %v", i, c, gotBlock[i*k+c], wantBlock[i*k+c])
					}
					if gotBlock[i*k+c] != want[c] {
						t.Fatalf("row %d class %d: binned block %v, pointer walk %v", i, c, gotBlock[i*k+c], want[c])
					}
				}
			}
		})
	}
}

// TestBinnedMissingAndUnroutedFeatures pins default routing and the
// skip-unknown-feature behavior of the binned scatter.
func TestBinnedMissingAndUnroutedFeatures(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	splits := randomSplits(rng, 8, 12)
	f := binnedRandomForest(t, rng, splits, 6, 5, 1)
	ff := Compile(f)
	bf, err := ff.CompileBinned(f.Splits)
	if err != nil {
		t.Fatal(err)
	}
	// Empty row: every node follows DefaultLeft in both engines.
	if got, want := bf.PredictRow(nil, nil)[0], ff.PredictRow(nil, nil)[0]; got != want {
		t.Fatalf("empty row: binned %v, float %v", got, want)
	}
	// A feature id beyond every split table is ignored, not crashed on.
	feat, val := []uint32{500}, []float32{1.5}
	if got, want := bf.PredictRow(feat, val)[0], ff.PredictRow(feat, val)[0]; got != want {
		t.Fatalf("unrouted feature: binned %v, float %v", got, want)
	}
}

// TestBinnedCSRBlockedMatches runs the parallel CSR path against the float
// engine on a random matrix.
func TestBinnedCSRBlockedMatches(t *testing.T) {
	rng := rand.New(rand.NewSource(37))
	splits := randomSplits(rng, 30, 20)
	f := binnedRandomForest(t, rng, splits, 12, 6, 2)
	ff := Compile(f)
	bf, err := ff.CompileBinned(f.Splits)
	if err != nil {
		t.Fatal(err)
	}
	m := randomCSR(t, rng, 500, 30, 0.4)
	want := ff.PredictCSRBlocked(m, 4, 64)
	got := bf.PredictCSRBlocked(m, 4, 64)
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("cell %d: binned %v, float %v", i, got[i], want[i])
		}
	}
}

// TestCompileBinnedRejectsBadMetadata pins the compile-time hardening: a
// model whose bin metadata cannot guarantee bit-identical routing is
// refused, never silently mis-served.
func TestCompileBinnedRejectsBadMetadata(t *testing.T) {
	rng := rand.New(rand.NewSource(41))
	splits := randomSplits(rng, 6, 10)
	f := binnedRandomForest(t, rng, splits, 3, 4, 1)
	ff := Compile(f)

	if _, err := ff.CompileBinned(nil); err == nil {
		t.Fatal("CompileBinned(nil) succeeded; want error")
	}
	// Drop one routed feature's splits.
	broken := append([][]float32(nil), splits...)
	broken[int(ff.feature[0])] = nil
	if _, err := ff.CompileBinned(broken); err == nil {
		t.Fatal("missing splits for a routed feature accepted")
	}
	// Perturb the threshold<->split correspondence.
	perturbed := make([][]float32, len(splits))
	for i, s := range splits {
		perturbed[i] = append([]float32(nil), s...)
	}
	root := int(ff.feature[0])
	perturbed[root][int(ff.splitBin[0])] += 0.5
	if _, err := ff.CompileBinned(perturbed); err == nil {
		t.Fatal("threshold/split mismatch accepted")
	}
	// Non-ascending splits.
	descending := make([][]float32, len(splits))
	for i, s := range splits {
		descending[i] = append([]float32(nil), s...)
	}
	descending[root][0] = descending[root][len(descending[root])-1] + 1
	if _, err := ff.CompileBinned(descending); err == nil {
		t.Fatal("non-ascending splits accepted")
	}
}
