package core

import (
	"vero/internal/partition"
	"vero/internal/tree"
)

// engine is the quadrant-strategy seam of the trainer: everything the
// layer-wise boosting loop needs that depends on the data-management
// policy (partitioning scheme x storage pattern) lives behind this
// interface. The trainer owns the loop, the shared run state (predictions,
// gradients, hessians) and the candidate splits; an engine owns the
// quadrant's data shards, node/instance indexes and histogram maps.
//
// Two implementations cover Figure 1: horizontalEngine (QD1/QD2, disjoint
// row ranges with all features, aggregated histograms) and verticalEngine
// (QD3/QD4, complete columns for disjoint feature subsets, local
// histograms with placement broadcasts). prep.go constructs the engine
// matching Config.Quadrant; resolveAuto lets the advisor pick it.
type engine interface {
	// prepare materializes the engine's per-worker data layout (binning,
	// repartitioning, index and histogram-map allocation), charging the
	// preparation communication. Called once, before any run.
	prepare() error
	// beginRun allocates per-run scratch that depends on run geometry
	// (e.g. the vertical quadrants' redundant-compute gradient buffers).
	// Called after the trainer's shared run state exists.
	beginRun()
	// computeGradients refreshes the trainer's gradient/hessian vectors
	// with the engine's work placement (horizontal: own rows; vertical:
	// every worker processes all instances, Section 4.2.1 step 5).
	computeGradients()
	// rootTotals returns the gradient/hessian totals over all instances.
	rootTotals() ([]float64, []float64)
	// buildHistograms constructs the histograms of the given nodes by
	// scanning instances (and, for horizontal quadrants, aggregates them).
	buildHistograms(toBuild []*nodeInfo)
	// deriveHistograms computes each node's histogram as parent minus
	// built sibling, consuming the parent's entry (Section 2.1.2).
	deriveHistograms(toDerive []*nodeInfo)
	// findSplits locates each frontier node's best split, with the work
	// placed where the quadrant's aggregation puts it.
	findSplits(frontier []*nodeInfo) map[int32]resolvedSplit
	// applyLayer propagates one layer's split placements into the
	// engine's node/instance indexes.
	applyLayer(splits map[int32]resolvedSplit, children map[int32][2]int32)
	// childStats fills count and gradient totals of the new children.
	childStats(nodes []*nodeInfo)
	// updatePredictions adds the finished tree's leaf weights to the raw
	// scores of every instance.
	updatePredictions(tr *tree.Tree)
	// resetIndexes returns the engine's node/instance indexes to the
	// single-root state at the start of each tree.
	resetIndexes()

	// Histogram lifecycle: the engine owns its histogram maps and the
	// memory-gauge accounting that goes with them.

	// clearHists releases every live histogram back to the pool.
	clearHists()
	// dropHist releases one node's histogram, if present.
	dropHist(id int32)
	// usesSubtraction reports whether the engine derives sibling
	// histograms by subtraction (false only for QD1, whose shared
	// accumulators cannot retain per-parent state).
	usesSubtraction() bool

	// transformReport returns the byte report of the engine's data
	// preparation wire traffic (nonzero only for QD4's
	// horizontal-to-vertical transformation).
	transformReport() partition.ByteReport
}

// siblingOf returns the sibling's node id: children are always created in
// pairs (left = parent's recorded left child).
func siblingOf(nd *nodeInfo) int32 {
	// Children pairs are allocated adjacently by tree.Split: left is even
	// offset, right = left+1. The derive node's sibling is the adjacent id.
	if nd.id%2 == 1 { // left children have odd ids (root=0, then 1,2,3,4...)
		return nd.id + 1
	}
	return nd.id - 1
}
