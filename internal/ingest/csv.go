package ingest

import (
	"fmt"
	"strconv"
	"strings"
)

// The CSV dialect (specified in docs/DATA.md):
//
//   - comma-separated; the first column is the label, column j holds
//     feature j-1 (features are 0-based);
//   - an empty field is a missing value — no entry is stored; an explicit
//     "0" is stored like any other value;
//   - fields may be double-quoted; inside quotes, commas are literal and
//     "" escapes one quote. Embedded newlines are not supported: a
//     quote left open at end of line is an error;
//   - every row must have the same number of fields;
//   - if the very first line's label field does not parse as a number,
//     that line is treated as a header and skipped;
//   - blank lines and lines starting with '#' are skipped.

// parseCSVChunk parses one chunk of CSV lines into a Block.
func parseCSVChunk(c rawChunk, opts Options) (*Block, error) {
	b := &Block{firstLine: c.firstLine, RowPtr: make([]int64, 1, 64)}
	s := string(c.data)
	line := c.firstLine - 1
	var fields []string
	for len(s) > 0 {
		line++
		var raw string
		if i := strings.IndexByte(s, '\n'); i >= 0 {
			raw, s = s[:i], s[i+1:]
		} else {
			raw, s = s, ""
		}
		raw = strings.TrimSuffix(raw, "\r")
		if raw == "" || strings.HasPrefix(raw, "#") {
			continue
		}
		var err error
		fields, err = splitCSVLine(raw, fields[:0])
		if err != nil {
			return nil, fmt.Errorf("ingest: line %d: %w", line, err)
		}
		label, err := strconv.ParseFloat(fields[0], 32)
		if err != nil {
			if line == 1 {
				// A non-numeric label field on the file's first line is a
				// header row.
				continue
			}
			return nil, fmt.Errorf("ingest: line %d: bad label %q: %w", line, fields[0], err)
		}
		if b.width == 0 {
			b.width = len(fields)
			b.firstLine = line
		} else if len(fields) != b.width {
			return nil, fmt.Errorf("ingest: line %d: row has %d fields, want %d", line, len(fields), b.width)
		}
		if err := checkLabel(label, opts.NumClass, line); err != nil {
			return nil, err
		}
		for j, f := range fields[1:] {
			if f == "" {
				continue // missing value
			}
			v, err := strconv.ParseFloat(f, 32)
			if err != nil {
				return nil, fmt.Errorf("ingest: line %d: bad value %q for feature %d: %w", line, f, j, err)
			}
			b.Feat = append(b.Feat, uint32(j))
			b.Val = append(b.Val, float32(v))
		}
		if cols := b.width - 1; cols > b.Cols {
			b.Cols = cols
		}
		b.Labels = append(b.Labels, float32(label))
		b.RowPtr = append(b.RowPtr, int64(len(b.Feat)))
	}
	return b, nil
}

// splitCSVLine splits one physical line into fields, honoring quoting.
// dst is reused storage for the result.
func splitCSVLine(line string, dst []string) ([]string, error) {
	for {
		if len(line) > 0 && line[0] == '"' {
			// Quoted field: scan to the closing quote, unescaping "".
			var sb strings.Builder
			i := 1
			for {
				if i >= len(line) {
					return nil, fmt.Errorf("unterminated quoted field (embedded newlines are not supported)")
				}
				if line[i] == '"' {
					if i+1 < len(line) && line[i+1] == '"' {
						sb.WriteByte('"')
						i += 2
						continue
					}
					break
				}
				sb.WriteByte(line[i])
				i++
			}
			rest := line[i+1:]
			if rest != "" && rest[0] != ',' {
				return nil, fmt.Errorf("unexpected %q after closing quote", rest[0])
			}
			dst = append(dst, sb.String())
			if rest == "" {
				return dst, nil
			}
			line = rest[1:]
			continue
		}
		i := strings.IndexByte(line, ',')
		if i < 0 {
			return append(dst, line), nil
		}
		dst = append(dst, line[:i])
		line = line[i+1:]
	}
}
