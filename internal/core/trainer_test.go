package core

import (
	"math/rand"
	"testing"

	"vero/internal/cluster"
	"vero/internal/datasets"
	"vero/internal/tree"
)

// TestSiblingOfMatchesTreeSplitOrder pins the invariant siblingOf silently
// depends on: tree.Split always appends children in (left, right) pairs,
// so left ids are odd and right = left+1, no matter in which order the
// frontier's nodes split or how many become leaves in between.
func TestSiblingOfMatchesTreeSplitOrder(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for trial := 0; trial < 50; trial++ {
		tr := tree.New(1)
		frontier := []int32{tr.Root()}
		for layer := 0; layer < 4; layer++ {
			var next []int32
			// Split a random subset of the frontier in random order, as the
			// trainer's applySplits does when some nodes become leaves.
			order := rng.Perm(len(frontier))
			for _, i := range order {
				id := frontier[i]
				if rng.Float64() < 0.3 && id != tr.Root() {
					tr.SetLeaf(id, []float64{0})
					continue
				}
				l, r := tr.Split(id, 0, 0, 0, false, 0)
				if l%2 != 1 {
					t.Fatalf("left child id %d is even; siblingOf assumes left ids are odd", l)
				}
				if r != l+1 {
					t.Fatalf("right child %d is not left+1 (left=%d)", r, l)
				}
				if got := siblingOf(&nodeInfo{id: l}); got != r {
					t.Fatalf("siblingOf(left=%d) = %d, want %d", l, got, r)
				}
				if got := siblingOf(&nodeInfo{id: r}); got != l {
					t.Fatalf("siblingOf(right=%d) = %d, want %d", r, got, l)
				}
				next = append(next, l, r)
			}
			frontier = next
			if len(frontier) == 0 {
				break
			}
		}
	}
}

// TestHistogramMemoryGaugeBalances trains every quadrant and checks that
// the histogram memory gauge returns to zero: each charged histogram is
// released exactly once, with the pool recycling in between.
func TestHistogramMemoryGaugeBalances(t *testing.T) {
	ds, err := datasets.Synthetic(datasets.SyntheticConfig{
		N: 400, D: 20, C: 3, InformativeRatio: 0.4, Density: 0.4, Seed: 11,
	})
	if err != nil {
		t.Fatal(err)
	}
	for _, q := range []Quadrant{QD1, QD2, QD3, QD4} {
		cl := cluster.New(3, cluster.Gigabit())
		if _, err := Train(cl, ds, Config{Quadrant: q, Trees: 3, Layers: 4, Splits: 8}); err != nil {
			t.Fatalf("%v: %v", q, err)
		}
		mem := cl.Stats().Mem("histogram")
		for w, cur := range mem.Cur {
			if cur != 0 {
				t.Errorf("%v: worker %d histogram gauge = %d bytes after training, want 0", q, w, cur)
			}
			if mem.Peak[w] <= 0 {
				t.Errorf("%v: worker %d histogram gauge peak = %d, want > 0", q, w, mem.Peak[w])
			}
		}
	}
}

// TestHistogramPoolRecycles drives the training loop directly and checks
// the arena serves the steady state from recycled buffers instead of fresh
// allocations.
func TestHistogramPoolRecycles(t *testing.T) {
	ds, err := datasets.Synthetic(datasets.SyntheticConfig{
		N: 400, D: 20, C: 2, InformativeRatio: 0.4, Density: 0.4, Seed: 11,
	})
	if err != nil {
		t.Fatal(err)
	}
	for _, q := range []Quadrant{QD1, QD2, QD3, QD4} {
		cl := cluster.New(3, cluster.Gigabit())
		// Vertical quadrants hold every built histogram until the tree
		// finishes, so reuse is cross-tree: the avoidance factor grows
		// with the tree count (~Trees; the paper trains T=100).
		tr := newTestTrainer(t, cl, ds, Config{Quadrant: q, Trees: 20, Layers: 4, Splits: 8})
		if _, err := tr.run(nil); err != nil {
			t.Fatalf("%v: %v", q, err)
		}
		gets, reuses := tr.pool.Stats()
		if gets == 0 {
			t.Fatalf("%v: histogram pool unused", q)
		}
		// gets is the number of histograms the phase consumed; gets-reuses
		// the number actually allocated. Their ratio is the factor of
		// histogram-phase allocations the arena avoids vs. allocating per
		// histogram as the pre-pool code did.
		fresh := gets - reuses
		if factor := float64(gets) / float64(fresh); factor < 10 {
			t.Errorf("%v: pool avoids only %.1fx histogram allocations (gets=%d fresh=%d), want >= 10x",
				q, factor, gets, fresh)
		}
	}
}

// newTestTrainer builds a prepared trainer the way Train does, exposing
// internals to white-box tests and benchmarks.
func newTestTrainer(t testing.TB, cl *cluster.Cluster, ds *datasets.Dataset, cfg Config) *trainer {
	t.Helper()
	if err := cfg.setDefaults(); err != nil {
		t.Fatal(err)
	}
	obj, err := objective(ds, cfg)
	if err != nil {
		t.Fatal(err)
	}
	tr := newTrainer(cl, ds, cfg, obj)
	if err := tr.prepare(); err != nil {
		t.Fatal(err)
	}
	return tr
}
