// Package sparse implements the sparse-matrix storage substrates used by
// every quadrant of the paper's data-management taxonomy.
//
// A training dataset is a matrix whose rows are instances and whose columns
// are features. Row-store keeps each instance as a list of
// (feature index, value) pairs — Compressed Sparse Row (CSR). Column-store
// keeps each feature as a list of (instance index, value) pairs —
// Compressed Sparse Column (CSC). After quantile binning, values are
// replaced by histogram-bin indices; the binned variants (BinnedCSR,
// BinnedCSC) store those compactly.
package sparse

import (
	"fmt"
	"sort"
)

// KV is one (feature, value) pair of a row, or one (instance, value) pair
// of a column, depending on context.
type KV struct {
	Index uint32
	Value float32
}

// CSR is an immutable sparse matrix in Compressed Sparse Row format.
type CSR struct {
	rows, cols int
	// RowPtr has rows+1 entries; row i occupies [RowPtr[i], RowPtr[i+1]).
	RowPtr []int64
	Feat   []uint32
	Val    []float32
}

// NewCSR assembles a CSR from raw parts, validating the invariants.
func NewCSR(rows, cols int, rowPtr []int64, feat []uint32, val []float32) (*CSR, error) {
	if rows < 0 || cols < 0 {
		return nil, fmt.Errorf("sparse: negative shape %dx%d", rows, cols)
	}
	if len(rowPtr) != rows+1 {
		return nil, fmt.Errorf("sparse: rowPtr has %d entries, want %d", len(rowPtr), rows+1)
	}
	if len(feat) != len(val) {
		return nil, fmt.Errorf("sparse: %d feature indices but %d values", len(feat), len(val))
	}
	if rowPtr[0] != 0 || rowPtr[rows] != int64(len(feat)) {
		return nil, fmt.Errorf("sparse: rowPtr endpoints [%d,%d], want [0,%d]", rowPtr[0], rowPtr[rows], len(feat))
	}
	for i := 0; i < rows; i++ {
		if rowPtr[i] > rowPtr[i+1] {
			return nil, fmt.Errorf("sparse: rowPtr not monotone at row %d", i)
		}
	}
	for _, f := range feat {
		if int(f) >= cols {
			return nil, fmt.Errorf("sparse: feature index %d out of range (cols=%d)", f, cols)
		}
	}
	return &CSR{rows: rows, cols: cols, RowPtr: rowPtr, Feat: feat, Val: val}, nil
}

// Rows returns the number of instances.
func (m *CSR) Rows() int { return m.rows }

// Cols returns the feature dimensionality.
func (m *CSR) Cols() int { return m.cols }

// NNZ returns the number of stored (nonzero) entries.
func (m *CSR) NNZ() int { return len(m.Feat) }

// Row returns the feature indices and values of row i. The returned slices
// alias the matrix storage and must not be modified.
func (m *CSR) Row(i int) (feat []uint32, val []float32) {
	lo, hi := m.RowPtr[i], m.RowPtr[i+1]
	return m.Feat[lo:hi], m.Val[lo:hi]
}

// RowNNZ returns the number of stored entries in row i.
func (m *CSR) RowNNZ(i int) int { return int(m.RowPtr[i+1] - m.RowPtr[i]) }

// CSRBuilder assembles a CSR row by row.
type CSRBuilder struct {
	cols   int
	rowPtr []int64
	feat   []uint32
	val    []float32
}

// NewCSRBuilder returns a builder for matrices with the given number of
// columns.
func NewCSRBuilder(cols int) *CSRBuilder {
	return &CSRBuilder{cols: cols, rowPtr: []int64{0}}
}

// AddRow appends one instance. Pairs need not be sorted; they are sorted by
// feature index. Duplicate or out-of-range feature indices are an error.
func (b *CSRBuilder) AddRow(kvs []KV) error {
	sorted := make([]KV, len(kvs))
	copy(sorted, kvs)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i].Index < sorted[j].Index })
	for i, kv := range sorted {
		if int(kv.Index) >= b.cols {
			return fmt.Errorf("sparse: feature index %d out of range (cols=%d)", kv.Index, b.cols)
		}
		if i > 0 && sorted[i-1].Index == kv.Index {
			return fmt.Errorf("sparse: duplicate feature index %d in row %d", kv.Index, len(b.rowPtr)-1)
		}
		b.feat = append(b.feat, kv.Index)
		b.val = append(b.val, kv.Value)
	}
	b.rowPtr = append(b.rowPtr, int64(len(b.feat)))
	return nil
}

// Build finalizes the matrix. The builder must not be reused afterwards.
func (b *CSRBuilder) Build() *CSR {
	return &CSR{
		rows:   len(b.rowPtr) - 1,
		cols:   b.cols,
		RowPtr: b.rowPtr,
		Feat:   b.feat,
		Val:    b.val,
	}
}

// CSC is an immutable sparse matrix in Compressed Sparse Column format.
type CSC struct {
	rows, cols int
	// ColPtr has cols+1 entries; column j occupies [ColPtr[j], ColPtr[j+1]).
	ColPtr []int64
	Inst   []uint32
	Val    []float32
}

// Rows returns the number of instances.
func (m *CSC) Rows() int { return m.rows }

// Cols returns the feature dimensionality.
func (m *CSC) Cols() int { return m.cols }

// NNZ returns the number of stored entries.
func (m *CSC) NNZ() int { return len(m.Inst) }

// Col returns the instance indices and values of column j, sorted by
// instance index. The returned slices alias matrix storage.
func (m *CSC) Col(j int) (inst []uint32, val []float32) {
	lo, hi := m.ColPtr[j], m.ColPtr[j+1]
	return m.Inst[lo:hi], m.Val[lo:hi]
}

// ColNNZ returns the number of stored entries in column j.
func (m *CSC) ColNNZ(j int) int { return int(m.ColPtr[j+1] - m.ColPtr[j]) }

// ToCSC transposes a CSR into CSC form using a counting pass, O(nnz).
func (m *CSR) ToCSC() *CSC {
	colPtr := make([]int64, m.cols+1)
	for _, f := range m.Feat {
		colPtr[f+1]++
	}
	for j := 0; j < m.cols; j++ {
		colPtr[j+1] += colPtr[j]
	}
	inst := make([]uint32, m.NNZ())
	val := make([]float32, m.NNZ())
	next := make([]int64, m.cols)
	copy(next, colPtr[:m.cols])
	for i := 0; i < m.rows; i++ {
		feats, vals := m.Row(i)
		for k, f := range feats {
			p := next[f]
			inst[p] = uint32(i)
			val[p] = vals[k]
			next[f] = p + 1
		}
	}
	return &CSC{rows: m.rows, cols: m.cols, ColPtr: colPtr, Inst: inst, Val: val}
}

// ToCSR transposes a CSC back into CSR form, O(nnz). Rows come out sorted
// by feature index because columns are visited in order.
func (m *CSC) ToCSR() *CSR {
	rowPtr := make([]int64, m.rows+1)
	for _, i := range m.Inst {
		rowPtr[i+1]++
	}
	for i := 0; i < m.rows; i++ {
		rowPtr[i+1] += rowPtr[i]
	}
	feat := make([]uint32, m.NNZ())
	val := make([]float32, m.NNZ())
	next := make([]int64, m.rows)
	copy(next, rowPtr[:m.rows])
	for j := 0; j < m.cols; j++ {
		insts, vals := m.Col(j)
		for k, i := range insts {
			p := next[i]
			feat[p] = uint32(j)
			val[p] = vals[k]
			next[i] = p + 1
		}
	}
	return &CSR{rows: m.rows, cols: m.cols, RowPtr: rowPtr, Feat: feat, Val: val}
}

// SliceRows returns the submatrix of rows [lo, hi) as a new CSR. Feature
// indices are preserved. This is the horizontal-partitioning primitive.
func (m *CSR) SliceRows(lo, hi int) *CSR {
	if lo < 0 || hi > m.rows || lo > hi {
		panic(fmt.Sprintf("sparse: SliceRows(%d,%d) out of range for %d rows", lo, hi, m.rows))
	}
	base := m.RowPtr[lo]
	rowPtr := make([]int64, hi-lo+1)
	for i := lo; i <= hi; i++ {
		rowPtr[i-lo] = m.RowPtr[i] - base
	}
	return &CSR{
		rows:   hi - lo,
		cols:   m.cols,
		RowPtr: rowPtr,
		Feat:   m.Feat[base:m.RowPtr[hi]],
		Val:    m.Val[base:m.RowPtr[hi]],
	}
}

// SelectColumns returns the submatrix containing only the given columns,
// with feature indices remapped to 0..len(cols)-1 in the given order. All
// rows are kept (possibly empty). This is the vertical-partitioning
// primitive.
func (m *CSR) SelectColumns(cols []int) *CSR {
	remap := make(map[uint32]uint32, len(cols))
	for newID, c := range cols {
		if c < 0 || c >= m.cols {
			panic(fmt.Sprintf("sparse: column %d out of range (cols=%d)", c, m.cols))
		}
		remap[uint32(c)] = uint32(newID)
	}
	b := NewCSRBuilder(len(cols))
	kvs := make([]KV, 0, 16)
	for i := 0; i < m.rows; i++ {
		kvs = kvs[:0]
		feats, vals := m.Row(i)
		for k, f := range feats {
			if newID, ok := remap[f]; ok {
				kvs = append(kvs, KV{Index: newID, Value: vals[k]})
			}
		}
		if err := b.AddRow(kvs); err != nil {
			panic(err) // unreachable: indices were validated by remap
		}
	}
	return b.Build()
}

// Density returns nnz / (rows*cols), or 0 for an empty shape.
func (m *CSR) Density() float64 {
	if m.rows == 0 || m.cols == 0 {
		return 0
	}
	return float64(m.NNZ()) / (float64(m.rows) * float64(m.cols))
}
