package histogram

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestLayoutSizeBytes(t *testing.T) {
	// The paper's Age example (Section 3.1.4): D=330K, q=20, C=9 gives a
	// per-node histogram of 2*330e3*20*9*8 bytes = 906 MB.
	l := Layout{NumFeat: 330_000, MaxBins: 20, NumClass: 9}
	if got := l.SizeBytes(); got != 950_400_000 {
		t.Fatalf("SizeBytes = %d, want 950400000", got)
	}
}

func TestAddAt(t *testing.T) {
	h := New(Layout{NumFeat: 3, MaxBins: 4, NumClass: 2})
	h.Add(1, 2, 1, 0.5, 0.25)
	h.Add(1, 2, 1, 0.5, 0.25)
	g, hs := h.At(1, 2, 1)
	if g != 1.0 || hs != 0.5 {
		t.Fatalf("At = %v,%v want 1,0.5", g, hs)
	}
	if g, _ := h.At(1, 2, 0); g != 0 {
		t.Fatal("neighbouring class polluted")
	}
}

func TestAddVec(t *testing.T) {
	h := New(Layout{NumFeat: 2, MaxBins: 2, NumClass: 3})
	h.AddVec(1, 1, []float64{1, 2, 3}, []float64{4, 5, 6})
	for k := 0; k < 3; k++ {
		g, hs := h.At(1, 1, k)
		if g != float64(k+1) || hs != float64(k+4) {
			t.Fatalf("class %d: %v,%v", k, g, hs)
		}
	}
}

func randomHist(rng *rand.Rand, l Layout) *Hist {
	h := New(l)
	for i := range h.Grad {
		h.Grad[i] = rng.NormFloat64()
		h.Hess[i] = rng.Float64()
	}
	return h
}

func TestSubtractionRecoversSibling(t *testing.T) {
	// Property: parent - left == right, element-wise.
	l := Layout{NumFeat: 5, MaxBins: 8, NumClass: 3}
	rng := rand.New(rand.NewSource(1))
	left := randomHist(rng, l)
	right := randomHist(rng, l)
	parent := left.Clone()
	parent.Merge(right)
	sibling := parent.Clone()
	sibling.Sub(left)
	for i := range sibling.Grad {
		if math.Abs(sibling.Grad[i]-right.Grad[i]) > 1e-12 ||
			math.Abs(sibling.Hess[i]-right.Hess[i]) > 1e-12 {
			t.Fatalf("entry %d: sibling (%v,%v) vs right (%v,%v)",
				i, sibling.Grad[i], sibling.Hess[i], right.Grad[i], right.Hess[i])
		}
	}
}

func TestMergeLayoutMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Merge with mismatched layout did not panic")
		}
	}()
	New(Layout{1, 2, 1}).Merge(New(Layout{1, 3, 1}))
}

func TestResetAndClone(t *testing.T) {
	h := New(Layout{NumFeat: 1, MaxBins: 2, NumClass: 1})
	h.Add(0, 0, 0, 1, 1)
	c := h.Clone()
	h.Reset()
	if g, _ := h.At(0, 0, 0); g != 0 {
		t.Fatal("Reset did not zero")
	}
	if g, _ := c.At(0, 0, 0); g != 1 {
		t.Fatal("Clone shares storage")
	}
}

func TestFeatTotals(t *testing.T) {
	h := New(Layout{NumFeat: 2, MaxBins: 3, NumClass: 2})
	h.Add(1, 0, 0, 1, 2)
	h.Add(1, 2, 0, 3, 4)
	h.Add(1, 1, 1, 5, 6)
	g := make([]float64, 2)
	hs := make([]float64, 2)
	h.FeatTotals(1, g, hs)
	if g[0] != 4 || hs[0] != 6 || g[1] != 5 || hs[1] != 6 {
		t.Fatalf("FeatTotals = %v %v", g, hs)
	}
}

// bruteForceBest enumerates all (bin, defaultLeft) splits of a 1-feature,
// 1-class histogram and returns the max gain.
func bruteForceBest(h *Hist, totalG, totalH float64, f *Finder, nb int) (float64, bool) {
	var featG, featH float64
	for b := 0; b < nb; b++ {
		g, hs := h.At(0, b, 0)
		featG += g
		featH += hs
	}
	missG, missH := totalG-featG, totalH-featH
	parent := totalG * totalG / (totalH + f.Lambda)
	bestGain := 0.0
	found := false
	for bin := 0; bin < nb-1; bin++ {
		var lg, lh float64
		for b := 0; b <= bin; b++ {
			g, hs := h.At(0, b, 0)
			lg += g
			lh += hs
		}
		for _, defLeft := range []bool{false, true} {
			gl, hl := lg, lh
			if defLeft {
				gl += missG
				hl += missH
			}
			gr, hr := totalG-gl, totalH-hl
			if hl < f.MinChildHess || hr < f.MinChildHess {
				continue
			}
			if !defLeft || missH > 0 {
				gain := 0.5*(gl*gl/(hl+f.Lambda)+gr*gr/(hr+f.Lambda)-parent) - f.Gamma
				if gain > bestGain {
					bestGain = gain
					found = true
				}
			}
		}
	}
	return bestGain, found
}

func TestFindBestMatchesBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	f := &Finder{Lambda: 1.0, Gamma: 0.1}
	for trial := 0; trial < 100; trial++ {
		nb := 2 + rng.Intn(10)
		h := New(Layout{NumFeat: 1, MaxBins: nb, NumClass: 1})
		var totalG, totalH float64
		for b := 0; b < nb; b++ {
			g := rng.NormFloat64()
			hs := rng.Float64()
			h.Add(0, b, 0, g, hs)
			totalG += g
			totalH += hs
		}
		// Sometimes add missing mass (instances absent from the
		// histogram but present in the node totals).
		if rng.Intn(2) == 0 {
			totalG += rng.NormFloat64()
			totalH += rng.Float64()
		}
		got := f.FindBest(h, []float64{totalG}, []float64{totalH}, []int{nb})
		wantGain, wantValid := bruteForceBest(h, totalG, totalH, f, nb)
		if got.Valid != wantValid {
			t.Fatalf("trial %d: Valid=%v, brute force %v", trial, got.Valid, wantValid)
		}
		if wantValid && math.Abs(got.Gain-wantGain) > 1e-9 {
			t.Fatalf("trial %d: Gain=%v, brute force %v", trial, got.Gain, wantGain)
		}
	}
}

func TestFindBestPicksObviousSplit(t *testing.T) {
	// Two bins: all-negative gradients in bin 0, all-positive in bin 1.
	// The split must separate them at bin 0 with large gain.
	f := &Finder{Lambda: 1.0}
	h := New(Layout{NumFeat: 1, MaxBins: 2, NumClass: 1})
	h.Add(0, 0, 0, -50, 25)
	h.Add(0, 1, 0, 50, 25)
	s := f.FindBest(h, []float64{0}, []float64{50}, []int{2})
	if !s.Valid || s.Feature != 0 || s.Bin != 0 {
		t.Fatalf("split = %+v", s)
	}
	// Gain: 0.5*(2500/26 + 2500/26 - 0) ~ 96.2
	if s.Gain < 90 {
		t.Fatalf("gain = %v, want ~96", s.Gain)
	}
}

func TestFindBestHonorsMinChildHess(t *testing.T) {
	f := &Finder{Lambda: 1.0, MinChildHess: 30}
	h := New(Layout{NumFeat: 1, MaxBins: 2, NumClass: 1})
	h.Add(0, 0, 0, -50, 25) // left child hess 25 < 30
	h.Add(0, 1, 0, 50, 25)
	s := f.FindBest(h, []float64{0}, []float64{50}, []int{2})
	if s.Valid {
		t.Fatalf("split %+v violates MinChildHess", s)
	}
}

func TestFindBestDefaultDirection(t *testing.T) {
	// Missing mass has strongly positive gradients; placing it left with
	// the negative bin is worse than right. The finder must choose
	// default-right.
	f := &Finder{Lambda: 1.0}
	h := New(Layout{NumFeat: 1, MaxBins: 2, NumClass: 1})
	h.Add(0, 0, 0, -40, 20)
	h.Add(0, 1, 0, 30, 15)
	// Node totals include extra missing mass (g=+30, h=15).
	s := f.FindBest(h, []float64{20}, []float64{50}, []int{2})
	if !s.Valid {
		t.Fatal("no split found")
	}
	if s.DefaultLeft {
		t.Fatalf("split sent positive missing mass left: %+v", s)
	}
}

func TestFindBestSkipsSingleBinFeatures(t *testing.T) {
	f := &Finder{Lambda: 1.0}
	h := New(Layout{NumFeat: 2, MaxBins: 4, NumClass: 1})
	h.Add(0, 0, 0, -50, 25) // feature 0 has only 1 real bin
	h.Add(1, 0, 0, -50, 25)
	h.Add(1, 3, 0, 50, 25)
	s := f.FindBest(h, []float64{0}, []float64{50}, []int{1, 4})
	if !s.Valid || s.Feature != 1 {
		t.Fatalf("split = %+v, want feature 1", s)
	}
}

func TestGammaSuppressesWeakSplits(t *testing.T) {
	f := &Finder{Lambda: 1.0, Gamma: 1e6}
	h := New(Layout{NumFeat: 1, MaxBins: 2, NumClass: 1})
	h.Add(0, 0, 0, -50, 25)
	h.Add(0, 1, 0, 50, 25)
	if s := f.FindBest(h, []float64{0}, []float64{50}, []int{2}); s.Valid {
		t.Fatalf("split %+v survived gamma=1e6", s)
	}
}

func TestLeafWeights(t *testing.T) {
	f := &Finder{Lambda: 1.0}
	w := f.LeafWeights([]float64{2, -3}, []float64{3, 5})
	if w[0] != -0.5 || w[1] != 0.5 {
		t.Fatalf("weights = %v", w)
	}
}

func TestLeafObjective(t *testing.T) {
	f := &Finder{Lambda: 1.0, Gamma: 0.5}
	got := f.LeafObjective([]float64{2}, []float64{3})
	want := -0.5*(4.0/4.0) + 0.5
	if math.Abs(got-want) > 1e-12 {
		t.Fatalf("objective = %v, want %v", got, want)
	}
}

func TestMultiClassGainAggregatesClasses(t *testing.T) {
	// With two identical classes the gain must be exactly twice the
	// single-class gain.
	f := &Finder{Lambda: 1.0}
	h1 := New(Layout{NumFeat: 1, MaxBins: 2, NumClass: 1})
	h1.Add(0, 0, 0, -50, 25)
	h1.Add(0, 1, 0, 50, 25)
	s1 := f.FindBest(h1, []float64{0}, []float64{50}, []int{2})

	h2 := New(Layout{NumFeat: 1, MaxBins: 2, NumClass: 2})
	for k := 0; k < 2; k++ {
		h2.Add(0, 0, k, -50, 25)
		h2.Add(0, 1, k, 50, 25)
	}
	s2 := f.FindBest(h2, []float64{0, 0}, []float64{50, 50}, []int{2})
	if math.Abs(s2.Gain-2*s1.Gain) > 1e-9 {
		t.Fatalf("2-class gain %v, want 2x %v", s2.Gain, s1.Gain)
	}
}

func TestMergeSubRoundTripQuick(t *testing.T) {
	l := Layout{NumFeat: 2, MaxBins: 3, NumClass: 2}
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		a := randomHist(rng, l)
		b := randomHist(rng, l)
		sum := a.Clone()
		sum.Merge(b)
		sum.Sub(b)
		for i := range sum.Grad {
			if math.Abs(sum.Grad[i]-a.Grad[i]) > 1e-9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}
