package gbdt

import (
	"bytes"
	"math"
	"os"
	"path/filepath"
	"testing"
)

func quickTrain(t *testing.T, sys System) (*Model, *Report, *Dataset, *Dataset) {
	t.Helper()
	ds, err := Synthetic(SyntheticConfig{N: 1500, D: 40, C: 2, InformativeRatio: 0.4, Density: 0.3, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	train, valid := ds.Split(0.8, 2)
	m, r, err := Train(train, Options{System: sys, Workers: 4, Trees: 5, Layers: 5, Splits: 16})
	if err != nil {
		t.Fatal(err)
	}
	return m, r, train, valid
}

func TestTrainDefaultsToVero(t *testing.T) {
	ds, err := Synthetic(SyntheticConfig{N: 400, D: 20, C: 2, InformativeRatio: 0.5, Density: 0.5, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	m, r, err := Train(ds, Options{Trees: 2, Layers: 4})
	if err != nil {
		t.Fatal(err)
	}
	if m.NumTrees() != 2 {
		t.Fatalf("NumTrees = %d", m.NumTrees())
	}
	if r.TransformBytes.BlockifiedShuffle == 0 {
		t.Fatal("default system did not run the Vero transformation")
	}
}

func TestTrainAndEvaluate(t *testing.T) {
	m, r, train, valid := quickTrain(t, SystemVero)
	if auc := AUC(m, valid); auc < 0.7 {
		t.Fatalf("AUC = %v", auc)
	}
	if acc := Accuracy(m, valid); acc < 0.6 {
		t.Fatalf("accuracy = %v", acc)
	}
	if ll := LogLoss(m, train); ll > 0.69 { // below ln 2: learned something
		t.Fatalf("train logloss = %v", ll)
	}
	if len(r.PerTreeSeconds) != 5 || r.CommBytes <= 0 || r.HistogramPeakBytes <= 0 || r.DataBytes <= 0 {
		t.Fatalf("report incomplete: %+v", r)
	}
}

func TestModelRoundTrip(t *testing.T) {
	m, _, _, valid := quickTrain(t, SystemLightGBM)
	data, err := m.Encode()
	if err != nil {
		t.Fatal(err)
	}
	back, err := DecodeModel(data)
	if err != nil {
		t.Fatal(err)
	}
	a := m.Predict(valid)
	b := back.Predict(valid)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("prediction %d changed after round trip", i)
		}
	}
	if _, err := DecodeModel([]byte("junk")); err == nil {
		t.Fatal("DecodeModel accepted junk")
	}
}

func TestOnTreeHook(t *testing.T) {
	ds, err := Synthetic(SyntheticConfig{N: 400, D: 20, C: 2, InformativeRatio: 0.5, Density: 0.5, Seed: 4})
	if err != nil {
		t.Fatal(err)
	}
	var n int
	_, _, err = Train(ds, Options{System: SystemLightGBM, Workers: 2, Trees: 3, Layers: 4,
		OnTree: func(i int, elapsed float64, _ *Tree) { n++ }})
	if err != nil {
		t.Fatal(err)
	}
	if n != 3 {
		t.Fatalf("hook ran %d times", n)
	}
}

func TestLibSVMFileRoundTrip(t *testing.T) {
	ds, err := Synthetic(SyntheticConfig{N: 100, D: 15, C: 2, InformativeRatio: 0.5, Density: 0.4, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := WriteLibSVM(&buf, ds); err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "data.libsvm")
	if err := os.WriteFile(path, buf.Bytes(), 0o644); err != nil {
		t.Fatal(err)
	}
	back, err := ReadLibSVMFile(path, 2)
	if err != nil {
		t.Fatal(err)
	}
	if back.NumInstances() != 100 {
		t.Fatalf("rows = %d", back.NumInstances())
	}
	if _, err := ReadLibSVMFile(filepath.Join(t.TempDir(), "missing"), 2); err == nil {
		t.Fatal("missing file accepted")
	}
}

func TestRegressionAPI(t *testing.T) {
	ds, err := SyntheticRegression(800, 15, 0.5, 0.05, 6)
	if err != nil {
		t.Fatal(err)
	}
	m, _, err := Train(ds, Options{System: SystemLightGBM, Workers: 2, Trees: 8, Layers: 5,
		Objective: "square"})
	if err != nil {
		t.Fatal(err)
	}
	if rmse := RMSE(m, ds); math.IsNaN(rmse) || rmse <= 0 {
		t.Fatalf("RMSE = %v", rmse)
	}
}

func TestNamedDatasetAndCatalog(t *testing.T) {
	if len(DatasetCatalog()) < 11 {
		t.Fatalf("catalog has %d entries", len(DatasetCatalog()))
	}
	ds, err := NamedDataset("taste", 1)
	if err != nil {
		t.Fatal(err)
	}
	if ds.NumClass < 3 {
		t.Fatalf("taste has %d classes", ds.NumClass)
	}
}

func TestSystemsListAndDescriptions(t *testing.T) {
	ss := Systems()
	if len(ss) != 7 {
		t.Fatalf("got %d systems", len(ss))
	}
	for _, s := range ss {
		if DescribeSystem(s) == "" {
			t.Errorf("%s has no description", s)
		}
	}
}

func TestCostModelAPI(t *testing.T) {
	r, err := AnalyzeCost(AgeExampleWorkload())
	if err != nil {
		t.Fatal(err)
	}
	if r.HistogramBytes != 950_400_000 {
		t.Fatalf("Sizehist = %d", r.HistogramBytes)
	}
}
