package cluster

import (
	"fmt"
	"sort"
	"strings"
	"sync"
	"time"
)

// OpKind labels a collective operation in the communication accounting.
type OpKind int

// The collective kinds tracked by Stats.
const (
	OpAllReduce OpKind = iota
	OpReduceScatter
	OpGather
	OpBroadcast
	OpAllGather
	OpPointToPoint
	OpShuffle
	numOpKinds
)

// String returns the collective's name.
func (k OpKind) String() string {
	switch k {
	case OpAllReduce:
		return "all-reduce"
	case OpReduceScatter:
		return "reduce-scatter"
	case OpGather:
		return "gather"
	case OpBroadcast:
		return "broadcast"
	case OpAllGather:
		return "all-gather"
	case OpPointToPoint:
		return "point-to-point"
	case OpShuffle:
		return "shuffle"
	default:
		return fmt.Sprintf("op(%d)", int(k))
	}
}

// PhaseStats aggregates one labeled phase of execution.
type PhaseStats struct {
	// CompSeconds is measured computation makespan (max across workers,
	// summed over Parallel calls under this phase).
	CompSeconds float64
	// CommSeconds is simulated network time under the alpha-beta model.
	CommSeconds float64
	// Bytes is the total communication volume by collective kind.
	Bytes [numOpKinds]int64
	// MeasuredBytes is the collective payload volume actually sent over a
	// real transport (zero on the simulated backend). Before
	// Cluster.SyncMeasured it counts this rank's sends; after, the
	// deployment-global total — directly comparable to TotalBytes, the
	// model's accounted volume.
	MeasuredBytes int64
	// MeasuredSeconds is wall-clock spent inside transport operations
	// (zero on the simulated backend): this rank's before SyncMeasured,
	// the slowest rank's after. The real-network counterpart of
	// CommSeconds' alpha-beta prediction.
	MeasuredSeconds float64
}

// TotalBytes sums the volume over all collective kinds.
func (p *PhaseStats) TotalBytes() int64 {
	var t int64
	for _, b := range p.Bytes {
		t += b
	}
	return t
}

// MemGauge tracks a per-worker byte gauge with its peak (used for the
// paper's memory breakdowns, Figure 10(e)-(f)).
type MemGauge struct {
	Cur  []int64
	Peak []int64
}

// Add adjusts worker w's gauge by delta and updates the peak.
func (g *MemGauge) Add(w int, delta int64) {
	g.Cur[w] += delta
	if g.Cur[w] > g.Peak[w] {
		g.Peak[w] = g.Cur[w]
	}
}

// Set overwrites worker w's gauge and updates the peak.
func (g *MemGauge) Set(w int, v int64) {
	g.Cur[w] = v
	if v > g.Peak[w] {
		g.Peak[w] = v
	}
}

// MaxPeak returns the largest per-worker peak.
func (g *MemGauge) MaxPeak() int64 {
	var m int64
	for _, v := range g.Peak {
		if v > m {
			m = v
		}
	}
	return m
}

// SumPeak returns the sum of per-worker peaks.
func (g *MemGauge) SumPeak() int64 {
	var s int64
	for _, v := range g.Peak {
		s += v
	}
	return s
}

// Stats collects per-phase computation/communication records and memory
// gauges. All methods are safe for concurrent use.
type Stats struct {
	mu         sync.Mutex
	w          int
	phases     map[string]*PhaseStats
	workerComp []time.Duration
	mem        map[string]*MemGauge
}

func newStats(w int) *Stats {
	return &Stats{
		w:          w,
		phases:     make(map[string]*PhaseStats),
		workerComp: make([]time.Duration, w),
		mem:        make(map[string]*MemGauge),
	}
}

func (s *Stats) phase(name string) *PhaseStats {
	p, ok := s.phases[name]
	if !ok {
		p = &PhaseStats{}
		s.phases[name] = p
	}
	return p
}

func (s *Stats) addComp(phase string, seconds float64) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.phase(phase).CompSeconds += seconds
}

func (s *Stats) addWorkerComp(w int, d time.Duration) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.workerComp[w] += d
}

func (s *Stats) addComm(phase string, kind OpKind, bytes int64, seconds float64) {
	s.mu.Lock()
	defer s.mu.Unlock()
	p := s.phase(phase)
	p.Bytes[kind] += bytes
	p.CommSeconds += seconds
}

func (s *Stats) addMeasured(phase string, bytes int64, seconds float64) {
	s.mu.Lock()
	defer s.mu.Unlock()
	p := s.phase(phase)
	p.MeasuredBytes += bytes
	p.MeasuredSeconds += seconds
}

// measuredSnapshot returns every phase's measured record in sorted name
// order — the canonical form SyncMeasured exchanges across ranks.
func (s *Stats) measuredSnapshot() (names []string, bytes []int64, secs []float64) {
	names = s.PhaseNames()
	bytes = make([]int64, len(names))
	secs = make([]float64, len(names))
	s.mu.Lock()
	defer s.mu.Unlock()
	for i, n := range names {
		p := s.phases[n]
		bytes[i] = p.MeasuredBytes
		secs[i] = p.MeasuredSeconds
	}
	return names, bytes, secs
}

// setMeasured overwrites the named phases' measured records with synced
// deployment-global values.
func (s *Stats) setMeasured(names []string, bytes []int64, secs []float64) {
	s.mu.Lock()
	defer s.mu.Unlock()
	for i, n := range names {
		p := s.phase(n)
		p.MeasuredBytes = bytes[i]
		p.MeasuredSeconds = secs[i]
	}
}

// Mem returns the named memory gauge, creating it on first use.
func (s *Stats) Mem(name string) *MemGauge {
	s.mu.Lock()
	defer s.mu.Unlock()
	g, ok := s.mem[name]
	if !ok {
		g = &MemGauge{Cur: make([]int64, s.w), Peak: make([]int64, s.w)}
		s.mem[name] = g
	}
	return g
}

// Phase returns a copy of the named phase's record (zero value if the
// phase never ran).
func (s *Stats) Phase(name string) PhaseStats {
	s.mu.Lock()
	defer s.mu.Unlock()
	if p, ok := s.phases[name]; ok {
		return *p
	}
	return PhaseStats{}
}

// PhaseNames returns the sorted phase labels seen so far.
func (s *Stats) PhaseNames() []string {
	s.mu.Lock()
	defer s.mu.Unlock()
	names := make([]string, 0, len(s.phases))
	for n := range s.phases {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// Totals returns the summed computation and communication seconds and the
// total bytes across all phases.
func (s *Stats) Totals() (compSec, commSec float64, bytes int64) {
	s.mu.Lock()
	defer s.mu.Unlock()
	for _, p := range s.phases {
		compSec += p.CompSeconds
		commSec += p.CommSeconds
		bytes += p.TotalBytes()
	}
	return compSec, commSec, bytes
}

// MeasuredTotals returns the summed measured communication wall-clock and
// payload bytes across all phases (zero on the simulated backend).
func (s *Stats) MeasuredTotals() (commSec float64, bytes int64) {
	s.mu.Lock()
	defer s.mu.Unlock()
	for _, p := range s.phases {
		commSec += p.MeasuredSeconds
		bytes += p.MeasuredBytes
	}
	return commSec, bytes
}

// WorkerComp returns each worker's cumulative measured busy time.
func (s *Stats) WorkerComp() []time.Duration {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]time.Duration, len(s.workerComp))
	copy(out, s.workerComp)
	return out
}

// String renders a human-readable per-phase table.
func (s *Stats) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-24s %12s %12s %14s\n", "phase", "comp (s)", "comm (s)", "bytes")
	for _, name := range s.PhaseNames() {
		p := s.Phase(name)
		fmt.Fprintf(&b, "%-24s %12.4f %12.4f %14d\n", name, p.CompSeconds, p.CommSeconds, p.TotalBytes())
	}
	comp, comm, bytes := s.Totals()
	fmt.Fprintf(&b, "%-24s %12.4f %12.4f %14d\n", "TOTAL", comp, comm, bytes)
	return b.String()
}
