package tcptransport_test

import (
	"errors"
	"net"
	"strings"
	"sync"
	"testing"
	"time"

	"vero/internal/cluster/tcptransport"
	"vero/internal/failpoint"
)

// connectMesh establishes a live loopback mesh with pre-bound listeners
// and returns the rank-ordered transports.
func connectMesh(t *testing.T, w int, tweak func(r int, cfg *tcptransport.Config)) []*tcptransport.Transport {
	t.Helper()
	listeners := make([]net.Listener, w)
	peers := make([]string, w)
	for r := range listeners {
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatalf("binding listener %d: %v", r, err)
		}
		listeners[r] = ln
		peers[r] = ln.Addr().String()
	}
	trs := make([]*tcptransport.Transport, w)
	errs := make([]error, w)
	var wg sync.WaitGroup
	wg.Add(w)
	for r := 0; r < w; r++ {
		go func(r int) {
			defer wg.Done()
			cfg := tcptransport.Config{
				Rank:        r,
				Peers:       peers,
				Listener:    listeners[r],
				DialTimeout: 10 * time.Second,
				OpTimeout:   10 * time.Second,
			}
			if tweak != nil {
				tweak(r, &cfg)
			}
			trs[r], errs[r] = tcptransport.Connect(cfg)
		}(r)
	}
	wg.Wait()
	for r, err := range errs {
		if err != nil {
			t.Fatalf("connecting rank %d: %v", r, err)
		}
	}
	t.Cleanup(func() {
		for _, tr := range trs {
			tr.Close()
		}
	})
	return trs
}

// runBounded fails the test if fn does not return within the deadline —
// the no-hang property every fault script asserts.
func runBounded(t *testing.T, what string, d time.Duration, fn func()) {
	t.Helper()
	done := make(chan struct{})
	go func() {
		defer close(done)
		fn()
	}()
	select {
	case <-done:
	case <-time.After(d):
		t.Fatalf("%s did not return within %v", what, d)
	}
}

// TestDialFailpointFailsConnect arms a persistent dial fault: Connect must
// exhaust its retry budget and return a rank-attributed error wrapping
// the injected failure, not hang.
func TestDialFailpointFailsConnect(t *testing.T) {
	if err := failpoint.Enable(tcptransport.FailpointDial, "error"); err != nil {
		t.Fatal(err)
	}
	defer failpoint.Reset()

	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	peers := []string{ln.Addr().String(), "127.0.0.1:1"} // rank 1's own address is never dialed

	runBounded(t, "Connect with dial fault", 15*time.Second, func() {
		lnSelf, lerr := net.Listen("tcp", "127.0.0.1:0")
		if lerr != nil {
			t.Error(lerr)
			return
		}
		_, err = tcptransport.Connect(tcptransport.Config{
			Rank:        1,
			Peers:       peers,
			Listener:    lnSelf,
			DialTimeout: 500 * time.Millisecond,
		})
	})
	if err == nil {
		t.Fatal("Connect succeeded despite a persistent dial fault")
	}
	if !errors.Is(err, failpoint.ErrInjected) {
		t.Fatalf("error does not wrap the injected failure: %v", err)
	}
	if !strings.Contains(err.Error(), "rank 1") || !strings.Contains(err.Error(), "dialing rank 0") {
		t.Fatalf("error lacks rank attribution: %v", err)
	}
}

// TestDialRetryRecoversLateStart starts rank 1 before rank 0 is even
// listening: the dialer's backoff loop must absorb the refused
// connections until rank 0 appears, and the mesh must then work.
func TestDialRetryRecoversLateStart(t *testing.T) {
	// Reserve an address for rank 0, then free it so rank 1's first dials
	// are refused.
	probe, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr0 := probe.Addr().String()
	probe.Close()
	ln1, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	peers := []string{addr0, ln1.Addr().String()}

	var tr1 *tcptransport.Transport
	var err1 error
	done := make(chan struct{})
	go func() {
		defer close(done)
		tr1, err1 = tcptransport.Connect(tcptransport.Config{
			Rank: 1, Peers: peers, Listener: ln1,
			DialTimeout: 10 * time.Second, OpTimeout: 5 * time.Second,
		})
	}()

	time.Sleep(300 * time.Millisecond) // let rank 1 burn a few refused dials
	ln0, err := net.Listen("tcp", addr0)
	if err != nil {
		t.Fatalf("rebinding rank 0's reserved address: %v", err)
	}
	tr0, err := tcptransport.Connect(tcptransport.Config{
		Rank: 0, Peers: peers, Listener: ln0,
		DialTimeout: 10 * time.Second, OpTimeout: 5 * time.Second,
	})
	if err != nil {
		t.Fatalf("late-started rank 0: %v", err)
	}
	defer tr0.Close()
	<-done
	if err1 != nil {
		t.Fatalf("rank 1: %v", err1)
	}
	defer tr1.Close()

	// The recovered mesh must actually reduce.
	bufs := [][]float64{{1, 2, 3}, {10, 20, 30}}
	runBounded(t, "all-reduce on recovered mesh", 10*time.Second, func() {
		var wg sync.WaitGroup
		wg.Add(2)
		for r, tr := range []*tcptransport.Transport{tr0, tr1} {
			go func(r int, tr *tcptransport.Transport) {
				defer wg.Done()
				if err := tr.AllReduce("fault.recover", bufs[r]); err != nil {
					t.Errorf("rank %d: %v", r, err)
				}
			}(r, tr)
		}
		wg.Wait()
	})
	for r, buf := range bufs {
		for i, want := range []float64{11, 22, 33} {
			if buf[i] != want {
				t.Fatalf("rank %d: element %d = %v, want %v", r, i, buf[i], want)
			}
		}
	}
}

// TestPeerDropMidCollective kills rank 2 of a 3-rank mesh while the
// others reduce: the survivors must fail fast with a rank-attributed
// sticky error — no hang — and every later operation must fail
// immediately with the same cause.
func TestPeerDropMidCollective(t *testing.T) {
	trs := connectMesh(t, 3, nil)
	trs[2].Close() // the "crashed" peer

	buf := make([]float64, 4096)
	runBounded(t, "all-reduce with a dead peer", 20*time.Second, func() {
		var wg sync.WaitGroup
		wg.Add(2)
		for r := 0; r < 2; r++ {
			go func(r int) {
				defer wg.Done()
				if err := trs[r].AllReduce("fault.drop", buf); err == nil {
					t.Errorf("rank %d: all-reduce succeeded with rank 2 dead", r)
				}
			}(r)
		}
		wg.Wait()
	})
	for r := 0; r < 2; r++ {
		err := trs[r].Err()
		if err == nil {
			t.Fatalf("rank %d: no sticky error after peer drop", r)
		}
		if !strings.Contains(err.Error(), "rank 2") {
			t.Fatalf("rank %d: error does not attribute the dead peer: %v", r, err)
		}
		// Sticky fast-fail: later operations return the latched error
		// without touching the (torn down) mesh.
		start := time.Now()
		if err2 := trs[r].AllReduce("fault.after", buf); err2 == nil {
			t.Fatalf("rank %d: post-failure all-reduce succeeded", r)
		} else if err2 != err || time.Since(start) > time.Second {
			t.Fatalf("rank %d: post-failure op took %v and returned %v, want the latched %v", r, time.Since(start), err2, err)
		}
	}
}

// TestReadWriteFailpointsAbort arms each in-collective failpoint on a live
// 2-rank mesh: the collective must return a wrapped, rank-attributed
// error on every rank, fast, and the error must stick.
func TestReadWriteFailpointsAbort(t *testing.T) {
	for _, fp := range []string{tcptransport.FailpointRead, tcptransport.FailpointWrite} {
		t.Run(fp, func(t *testing.T) {
			trs := connectMesh(t, 2, nil)
			if err := failpoint.Enable(fp, "error"); err != nil {
				t.Fatal(err)
			}
			defer failpoint.Reset()

			errs := make([]error, 2)
			runBounded(t, "all-reduce with "+fp, 20*time.Second, func() {
				var wg sync.WaitGroup
				wg.Add(2)
				for r := range trs {
					go func(r int) {
						defer wg.Done()
						errs[r] = trs[r].AllReduce("fault.inject", []float64{1, 2, 3, 4})
					}(r)
				}
				wg.Wait()
			})
			injected := false
			for r, err := range errs {
				if err == nil {
					t.Fatalf("rank %d: collective succeeded despite %s", r, fp)
				}
				if !strings.Contains(err.Error(), "tcptransport: rank") {
					t.Fatalf("rank %d: error lacks rank attribution: %v", r, err)
				}
				injected = injected || errors.Is(err, failpoint.ErrInjected)
				if trs[r].Err() == nil {
					t.Fatalf("rank %d: error did not stick", r)
				}
			}
			if !injected {
				t.Fatalf("no rank surfaced the injected failure: %v / %v", errs[0], errs[1])
			}
		})
	}
}

// TestSilentPeerHitsDeadline reduces against a peer that is alive but
// never participates: the per-frame deadline must convert the silence
// into an error instead of blocking forever.
func TestSilentPeerHitsDeadline(t *testing.T) {
	trs := connectMesh(t, 2, func(r int, cfg *tcptransport.Config) {
		cfg.OpTimeout = 300 * time.Millisecond
	})
	// Rank 1 never calls AllReduce: rank 0's receive must time out.
	var err error
	runBounded(t, "all-reduce against a silent peer", 15*time.Second, func() {
		err = trs[0].AllReduce("fault.silent", []float64{1, 2})
	})
	if err == nil {
		t.Fatal("all-reduce succeeded against a silent peer")
	}
	var nerr net.Error
	if !errors.As(err, &nerr) || !nerr.Timeout() {
		t.Fatalf("error is not a timeout: %v", err)
	}
	if !strings.Contains(err.Error(), "rank 1") {
		t.Fatalf("error does not attribute the silent peer: %v", err)
	}
}
