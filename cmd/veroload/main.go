// Command veroload drives a running veroserve with concurrent single-row
// predict requests and reports client-side latency quantiles plus the
// server's achieved micro-batching factor, read from /metricz.
//
// Closed loop (default): -clients goroutines each keep exactly one
// request in flight, so offered load adapts to the server — the classic
// saturation benchmark. Open loop (-rate): requests are dispatched on a
// fixed schedule regardless of completions, so queueing delay shows up in
// the latencies instead of throttling the load.
//
// Usage:
//
//	veroload -url http://localhost:8080 -clients 256 -duration 10s
//	veroload -url http://localhost:8080 -rate 50000 -clients 1024 -duration 10s
//
// Rows are synthetic sparse rows (-features, -density, -seed); the target
// model only needs to accept that feature space, which holds for any
// model when indices stay below its feature count.
package main

import (
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"os"
	"sync"
	"sync/atomic"
	"time"

	"vero/internal/serve"
)

// latency histogram: geometric buckets, bucket i covers <= floor<<i.
const (
	histBuckets = 30
	histFloor   = 10 * time.Microsecond
)

// recorder accumulates latencies lock-free across client goroutines.
type recorder struct {
	ok      atomic.Int64
	errs    atomic.Int64
	sumNs   atomic.Int64
	buckets [histBuckets]atomic.Int64
}

func (r *recorder) observe(d time.Duration, failed bool) {
	if failed {
		r.errs.Add(1)
		return
	}
	r.ok.Add(1)
	r.sumNs.Add(int64(d))
	b, bound := 0, histFloor
	for b < histBuckets-1 && d > bound {
		b++
		bound <<= 1
	}
	r.buckets[b].Add(1)
}

// quantile returns the upper bound of the bucket holding quantile q.
func (r *recorder) quantile(q float64) time.Duration {
	var counts [histBuckets]int64
	var total int64
	for i := range counts {
		counts[i] = r.buckets[i].Load()
		total += counts[i]
	}
	if total == 0 {
		return 0
	}
	rank := int64(q*float64(total-1)) + 1
	var cum int64
	bound := histFloor
	for i, c := range counts {
		cum += c
		if cum >= rank || i == len(counts)-1 {
			return bound
		}
		bound <<= 1
	}
	return bound
}

// makeBodies pre-encodes a pool of single-row predict requests so the
// request loop does no JSON work.
func makeBodies(rng *rand.Rand, n, features int, density float64) [][]byte {
	bodies := make([][]byte, n)
	for i := range bodies {
		var row serve.SparseRow
		for f := 0; f < features; f++ {
			if rng.Float64() < density {
				row.Indices = append(row.Indices, uint32(f))
				row.Values = append(row.Values, float32(rng.NormFloat64()))
			}
		}
		if len(row.Indices) == 0 {
			row.Indices = []uint32{uint32(rng.Intn(features))}
			row.Values = []float32{float32(rng.NormFloat64())}
		}
		b, err := json.Marshal(serve.PredictRequest{Rows: []serve.SparseRow{row}})
		if err != nil {
			panic(err)
		}
		bodies[i] = b
	}
	return bodies
}

// scrapeBatching fetches the target model's /metricz entry.
func scrapeBatching(client *http.Client, base, model string) (*serve.MetricsSnapshot, error) {
	resp, err := client.Get(base + "/metricz")
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	var mr serve.MetricsResponse
	if err := json.NewDecoder(resp.Body).Decode(&mr); err != nil {
		return nil, err
	}
	for i := range mr.Models {
		if mr.Models[i].Model == model {
			return &mr.Models[i], nil
		}
	}
	return nil, fmt.Errorf("model %q not in /metricz", model)
}

func main() {
	var (
		base     = flag.String("url", "http://localhost:8080", "veroserve base URL")
		model    = flag.String("target", serve.DefaultModel, "model name to load")
		clients  = flag.Int("clients", 64, "concurrent client goroutines")
		duration = flag.Duration("duration", 10*time.Second, "test length")
		rate     = flag.Float64("rate", 0, "open-loop target requests/sec across all clients (0 = closed loop)")
		features = flag.Int("features", 30, "synthetic row feature-space size")
		density  = flag.Float64("density", 0.4, "synthetic row density")
		seed     = flag.Int64("seed", 1, "row generator seed")
	)
	flag.Parse()

	bodies := makeBodies(rand.New(rand.NewSource(*seed)), 1024, *features, *density)
	transport := &http.Transport{
		MaxIdleConns:        *clients,
		MaxIdleConnsPerHost: *clients,
	}
	client := &http.Client{Transport: transport, Timeout: 30 * time.Second}
	url := *base + "/v1/models/" + *model + "/predict"

	before, err := scrapeBatching(client, *base, *model)
	if err != nil {
		fmt.Fprintf(os.Stderr, "veroload: pre-scrape: %v\n", err)
		os.Exit(1)
	}

	var rec recorder
	stop := time.Now().Add(*duration)
	// Open loop: a dispatcher feeds send-permits at the target rate;
	// closed loop: nil channel, clients fire back-to-back.
	var permits chan struct{}
	if *rate > 0 {
		permits = make(chan struct{}, *clients)
		go func() {
			interval := time.Duration(float64(time.Second) / *rate)
			tick := time.NewTicker(interval)
			defer tick.Stop()
			for time.Now().Before(stop) {
				<-tick.C
				select {
				case permits <- struct{}{}:
				default:
					// All clients busy: the schedule slips and the slip
					// shows up as client-side latency, as open loop should.
				}
			}
			close(permits)
		}()
	}

	var wg sync.WaitGroup
	for c := 0; c < *clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			for i := c; ; i++ {
				if permits != nil {
					if _, ok := <-permits; !ok {
						return
					}
				} else if !time.Now().Before(stop) {
					return
				}
				t0 := time.Now()
				resp, err := client.Post(url, "application/json", bytes.NewReader(bodies[i%len(bodies)]))
				if err != nil {
					rec.observe(0, true)
					continue
				}
				_, _ = io.Copy(io.Discard, resp.Body)
				resp.Body.Close()
				rec.observe(time.Since(t0), resp.StatusCode != http.StatusOK)
			}
		}(c)
	}
	start := time.Now()
	wg.Wait()
	elapsed := time.Since(start)

	after, err := scrapeBatching(client, *base, *model)
	if err != nil {
		fmt.Fprintf(os.Stderr, "veroload: post-scrape: %v\n", err)
		os.Exit(1)
	}

	ok, errs := rec.ok.Load(), rec.errs.Load()
	mode := "closed"
	if *rate > 0 {
		mode = fmt.Sprintf("open @ %.0f rps", *rate)
	}
	fmt.Printf("veroload: %s loop, %d clients, %v\n", mode, *clients, elapsed.Round(time.Millisecond))
	fmt.Printf("requests: %d ok, %d errors, %.0f req/s\n", ok, errs, float64(ok)/elapsed.Seconds())
	if ok > 0 {
		mean := time.Duration(rec.sumNs.Load() / ok)
		fmt.Printf("latency: mean %v, p50 %v, p99 %v\n",
			mean.Round(time.Microsecond), rec.quantile(0.50), rec.quantile(0.99))
	}
	if after.Batching != nil && before.Batching != nil {
		db := after.Batching.Batches - before.Batching.Batches
		dr := after.Batching.BatchedRows - before.Batching.BatchedRows
		di := after.Batching.Inline - before.Batching.Inline
		factor := 0.0
		if db > 0 {
			factor = float64(dr) / float64(db)
		}
		fmt.Printf("server batching: factor %.2f (%d rows in %d batches, %d inline), queue wait p99 %.3fms\n",
			factor, dr, db, di, after.Batching.QueueWaitMs.P99)
	} else {
		fmt.Printf("server batching: off\n")
	}
	if errs > 0 {
		os.Exit(1)
	}
}
