package serve

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"sync"
	"testing"

	"vero/gbdt"
	"vero/internal/datasets"
	"vero/internal/testutil"
)

// newTestServer trains a model, round-trips it through Encode/DecodeModel
// (the exact artifact cmd/veroserve loads from disk), and serves it over
// httptest.
func newTestServer(t *testing.T, classes int) (*httptest.Server, *gbdt.Model, *gbdt.Dataset) {
	t.Helper()
	ds := testutil.Classification(t, datasets.SyntheticConfig{
		N: 1500, D: 30, C: classes,
		InformativeRatio: 0.3, Density: 0.4, Seed: 11,
	})
	model, _, err := gbdt.Train(ds, gbdt.Options{Workers: 4, Trees: 6, Layers: 5, Seed: 11})
	if err != nil {
		t.Fatal(err)
	}
	encoded, err := model.Encode()
	if err != nil {
		t.Fatal(err)
	}
	decoded, err := gbdt.DecodeModel(encoded)
	if err != nil {
		t.Fatal(err)
	}
	srv, err := New(decoded, "test-model", Options{Workers: 2, MaxInFlight: 4, MaxBatchRows: 100})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(ts.Close)
	return ts, model, ds
}

func postPredict(t *testing.T, url string, req PredictRequest) (int, PredictResponse, string) {
	t.Helper()
	body, err := json.Marshal(req)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(url+"/v1/predict", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		var e apiError
		_ = json.NewDecoder(resp.Body).Decode(&e)
		return resp.StatusCode, PredictResponse{}, e.Error.Message
	}
	var out PredictResponse
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, out, ""
}

// TestRoundTripPredictions is the Encode → veroserve → HTTP predict
// integration test: predictions served over HTTP for the encoded model
// must match the in-process model bit-exactly (modulo JSON float text,
// which round-trips float64 exactly in Go).
func TestRoundTripPredictions(t *testing.T) {
	for _, classes := range []int{2, 3} {
		t.Run(fmt.Sprintf("classes=%d", classes), func(t *testing.T) {
			ts, model, ds := newTestServer(t, classes)
			want := model.Predict(ds)
			k := 1
			if classes > 2 {
				k = classes
			}

			const rows = 25
			req := PredictRequest{Proba: true}
			for i := 0; i < rows; i++ {
				feat, val := ds.X.Row(i)
				req.Rows = append(req.Rows, SparseRow{Indices: feat, Values: val})
			}
			code, resp, apiErr := postPredict(t, ts.URL, req)
			if code != http.StatusOK {
				t.Fatalf("predict returned %d: %s", code, apiErr)
			}
			if resp.NumClass != k {
				t.Fatalf("num_class %d, want %d", resp.NumClass, k)
			}
			if len(resp.Scores) != rows || len(resp.Probabilities) != rows {
				t.Fatalf("%d scores, %d probabilities, want %d each", len(resp.Scores), len(resp.Probabilities), rows)
			}
			for i := 0; i < rows; i++ {
				for c := 0; c < k; c++ {
					if got := resp.Scores[i][c]; got != want[i*k+c] {
						t.Fatalf("row %d class %d: served %v, want %v", i, c, got, want[i*k+c])
					}
				}
				for _, p := range resp.Probabilities[i] {
					if p < 0 || p > 1 {
						t.Fatalf("row %d: probability %v outside [0,1]", i, p)
					}
				}
			}
		})
	}
}

func TestServeDenseAndUnsortedSparseAgree(t *testing.T) {
	ts, _, ds := newTestServer(t, 2)
	feat, val := ds.X.Row(3)

	// Reverse the sparse order; the server must sort before routing.
	rf := make([]uint32, len(feat))
	rv := make([]float32, len(val))
	for i := range feat {
		rf[len(feat)-1-i] = feat[i]
		rv[len(val)-1-i] = val[i]
	}
	dense := make([]float32, ds.NumFeatures())
	for i, f := range feat {
		dense[f] = val[i]
	}
	code, resp, apiErr := postPredict(t, ts.URL, PredictRequest{
		Rows:  []SparseRow{{Indices: feat, Values: val}, {Indices: rf, Values: rv}},
		Dense: [][]float32{dense},
	})
	if code != http.StatusOK {
		t.Fatalf("predict returned %d: %s", code, apiErr)
	}
	for i := 1; i < 3; i++ {
		if resp.Scores[i][0] != resp.Scores[0][0] {
			t.Fatalf("encoding %d scored %v, sorted sparse scored %v", i, resp.Scores[i][0], resp.Scores[0][0])
		}
	}
}

func TestServeValidation(t *testing.T) {
	ts, _, _ := newTestServer(t, 2)
	for _, tc := range []struct {
		name string
		req  PredictRequest
		code int
	}{
		{"empty", PredictRequest{}, http.StatusBadRequest},
		{"mismatched", PredictRequest{Rows: []SparseRow{{Indices: []uint32{1}, Values: []float32{1, 2}}}}, http.StatusBadRequest},
		{"duplicate", PredictRequest{Rows: []SparseRow{{Indices: []uint32{1, 1}, Values: []float32{1, 2}}}}, http.StatusBadRequest},
		{"too_big", PredictRequest{Dense: make([][]float32, 101)}, http.StatusRequestEntityTooLarge},
	} {
		t.Run(tc.name, func(t *testing.T) {
			code, _, apiErr := postPredict(t, ts.URL, tc.req)
			if code != tc.code {
				t.Fatalf("got %d (%s), want %d", code, apiErr, tc.code)
			}
		})
	}

	// Malformed JSON.
	resp, err := http.Post(ts.URL+"/v1/predict", "application/json", bytes.NewReader([]byte("{nope")))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("malformed JSON returned %d", resp.StatusCode)
	}
}

func TestServeModelAndHealth(t *testing.T) {
	ts, model, ds := newTestServer(t, 3)
	resp, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("healthz returned %d", resp.StatusCode)
	}

	resp, err = http.Get(ts.URL + "/v1/model")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var info ModelInfo
	if err := json.NewDecoder(resp.Body).Decode(&info); err != nil {
		t.Fatal(err)
	}
	if info.NumTrees != model.NumTrees() || info.NumClass != 3 || info.Objective != "softmax" {
		t.Fatalf("model info %+v inconsistent with trained model", info)
	}
	if info.NumFeature != ds.NumFeatures() {
		t.Fatalf("num_feature %d, want %d", info.NumFeature, ds.NumFeatures())
	}
}

// TestServeConcurrentRequests hammers the bounded-concurrency path: many
// more goroutines than MaxInFlight, all must succeed with identical
// results.
func TestServeConcurrentRequests(t *testing.T) {
	ts, _, ds := newTestServer(t, 2)
	feat, val := ds.X.Row(0)
	req := PredictRequest{Rows: []SparseRow{{Indices: feat, Values: val}}}

	code, first, apiErr := postPredict(t, ts.URL, req)
	if code != http.StatusOK {
		t.Fatalf("predict returned %d: %s", code, apiErr)
	}
	var wg sync.WaitGroup
	errs := make(chan error, 32)
	for g := 0; g < 32; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			body, _ := json.Marshal(req)
			resp, err := http.Post(ts.URL+"/v1/predict", "application/json", bytes.NewReader(body))
			if err != nil {
				errs <- err
				return
			}
			defer resp.Body.Close()
			var out PredictResponse
			if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
				errs <- err
				return
			}
			if out.Scores[0][0] != first.Scores[0][0] {
				errs <- fmt.Errorf("concurrent score %v, want %v", out.Scores[0][0], first.Scores[0][0])
			}
		}()
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
}
