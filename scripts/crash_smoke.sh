#!/usr/bin/env bash
# Crash-safety smoke test: kill a real `veroctl train` subprocess mid-run
# — once deterministically at a random boosting round via a failpoint
# exit, then repeatedly with SIGKILL at random wall-clock times — resume
# each time from its checkpoints, and require the final model to be
# byte-identical to an uninterrupted run. Run from the repo root; used by
# CI and reproducible locally with `bash scripts/crash_smoke.sh`.
#
# The runs deliberately avoid -cache: a warm .vbin load materializes
# different dataset bytes than a cold parse, so mixing the two across a
# crash would (correctly) trip the checkpoint's dataset fingerprint.
set -euo pipefail

DIR="$(mktemp -d)"
trap 'kill -9 "${TRAIN_PID:-}" 2>/dev/null || true; rm -rf "$DIR"' EXIT

TREES=${CRASH_SMOKE_TREES:-60}
EVERY=5
TRAIN_ARGS=(-data "$DIR/train.libsvm" -classes 2 -trees "$TREES" -layers 6 -workers 4)

fail() { echo "FAIL: $1"; shift; for f in "$@"; do echo "--- $f:"; cat "$f"; done; exit 1; }

echo "== build"
go build -o "$DIR/veroctl" ./cmd/veroctl
go build -o "$DIR/datagen" ./cmd/datagen

echo "== generate data + uninterrupted reference run"
"$DIR/datagen" -n 4000 -d 40 -c 2 -density 0.4 -informative 0.4 -out "$DIR/train.libsvm"
"$DIR/veroctl" train "${TRAIN_ARGS[@]}" -model "$DIR/clean.json" >/dev/null

echo "== deterministic crash at a random round (failpoint exit), then resume"
CRASH_AT=$(( (RANDOM % (TREES - EVERY)) + EVERY ))
set +e
VERO_FAILPOINTS="core.aftertree=${CRASH_AT}*exit(137)" \
  "$DIR/veroctl" train "${TRAIN_ARGS[@]}" \
  -checkpoint-dir "$DIR/ckpt" -checkpoint-every "$EVERY" \
  -model "$DIR/resumed.json" >"$DIR/crash.log" 2>&1
STATUS=$?
set -e
[ "$STATUS" -eq 137 ] || fail "failpoint crash exited $STATUS, want 137" "$DIR/crash.log"
[ -f "$DIR/ckpt/train.vckp" ] || fail "no checkpoint on disk after crash at round $CRASH_AT"
"$DIR/veroctl" train "${TRAIN_ARGS[@]}" \
  -checkpoint-dir "$DIR/ckpt" -checkpoint-every "$EVERY" \
  -model "$DIR/resumed.json" >"$DIR/resume.log"
grep -q "resumed from checkpoint" "$DIR/resume.log" \
  || fail "resume log line missing" "$DIR/resume.log"
[ -f "$DIR/ckpt/train.vckp" ] && fail "checkpoint not removed after completed run"
cmp -s "$DIR/clean.json" "$DIR/resumed.json" \
  || fail "resumed model differs from uninterrupted run" "$DIR/resume.log"
echo "   crashed after round $CRASH_AT, resumed, models byte-identical"

echo "== SIGKILL at random wall-clock times, resuming until completion"
MAX_KILLS=${CRASH_SMOKE_KILLS:-3}
KILLS=0
RESUMES=0
while :; do
  if [ "$KILLS" -ge "$MAX_KILLS" ]; then
    "$DIR/veroctl" train "${TRAIN_ARGS[@]}" \
      -checkpoint-dir "$DIR/ckpt2" -checkpoint-every "$EVERY" \
      -model "$DIR/killed.json" >"$DIR/kill_final.log"
    grep -q "resumed from checkpoint" "$DIR/kill_final.log" && RESUMES=$((RESUMES + 1))
    break
  fi
  "$DIR/veroctl" train "${TRAIN_ARGS[@]}" \
    -checkpoint-dir "$DIR/ckpt2" -checkpoint-every "$EVERY" \
    -model "$DIR/killed.json" >"$DIR/kill_$KILLS.log" 2>&1 &
  TRAIN_PID=$!
  # GNU sleep takes fractional seconds; land somewhere inside the run.
  sleep "0.$((RANDOM % 8))$((RANDOM % 10))"
  kill -9 "$TRAIN_PID" 2>/dev/null || true
  set +e
  wait "$TRAIN_PID"
  STATUS=$?
  set -e
  grep -q "resumed from checkpoint" "$DIR/kill_$KILLS.log" && RESUMES=$((RESUMES + 1))
  [ "$STATUS" -eq 0 ] && break # finished before the kill landed
  KILLS=$((KILLS + 1))
done
cmp -s "$DIR/clean.json" "$DIR/killed.json" \
  || fail "model after $KILLS SIGKILLs differs from uninterrupted run"
echo "   survived $KILLS SIGKILLs ($RESUMES resumed runs), models byte-identical"

echo "== mismatched config is rejected, not resumed"
set +e
VERO_FAILPOINTS="core.aftertree=${EVERY}*exit(137)" \
  "$DIR/veroctl" train "${TRAIN_ARGS[@]}" \
  -checkpoint-dir "$DIR/ckpt3" -checkpoint-every "$EVERY" \
  -model "$DIR/unused.json" >/dev/null 2>&1
"$DIR/veroctl" train "${TRAIN_ARGS[@]}" -eta 0.1 \
  -checkpoint-dir "$DIR/ckpt3" -checkpoint-every "$EVERY" \
  -model "$DIR/unused.json" >"$DIR/mismatch.log" 2>&1
STATUS=$?
set -e
[ "$STATUS" -ne 0 ] || fail "mismatched config resumed from checkpoint" "$DIR/mismatch.log"
grep -q "config changed" "$DIR/mismatch.log" \
  || fail "mismatch error is not descriptive" "$DIR/mismatch.log"
echo "   config mismatch rejected with a descriptive error"

echo "crash smoke OK"
