package core

import (
	"errors"
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"testing"

	"vero/internal/cluster"
	"vero/internal/datasets"
	"vero/internal/failpoint"
)

func checkpointDataset(t *testing.T) *datasets.Dataset {
	t.Helper()
	ds, err := datasets.Synthetic(datasets.SyntheticConfig{
		N: 300, D: 25, C: 3, InformativeRatio: 0.4, Density: 0.4, Seed: 23,
	})
	if err != nil {
		t.Fatal(err)
	}
	return ds
}

func checkpointConfig(q Quadrant, dir string) Config {
	return Config{
		Quadrant: q, Trees: 11, Layers: 4, Splits: 12,
		CheckpointDir: dir, CheckpointEvery: 4,
	}
}

func trainEncoded(t *testing.T, ds *datasets.Dataset, cfg Config) ([]byte, *Result) {
	t.Helper()
	res, err := Train(cluster.New(3, cluster.Gigabit()), ds, cfg)
	if err != nil {
		t.Fatal(err)
	}
	enc, err := res.Forest.Encode()
	if err != nil {
		t.Fatal(err)
	}
	return enc, res
}

// TestCheckpointResumeBitIdentical is the crash-safety property test: for
// every quadrant, a run killed (via the core.aftertree failpoint) after
// every single round and then resumed must produce Encode output
// byte-identical to an uninterrupted run. Rounds without a checkpoint
// boundary behind them restart from an earlier checkpoint (or scratch) and
// must still converge to the same bytes.
func TestCheckpointResumeBitIdentical(t *testing.T) {
	ds := checkpointDataset(t)
	for _, q := range []Quadrant{QD1, QD2, QD3, QD4} {
		t.Run(q.String(), func(t *testing.T) {
			cfgClean := checkpointConfig(q, "")
			want, _ := trainEncoded(t, ds, cfgClean)

			for crashAfter := 1; crashAfter < cfgClean.Trees; crashAfter++ {
				dir := t.TempDir()
				cfg := checkpointConfig(q, dir)

				if err := failpoint.Enable(FailpointAfterTree, strconv.Itoa(crashAfter)+"*error"); err != nil {
					t.Fatal(err)
				}
				_, err := Train(cluster.New(3, cluster.Gigabit()), ds, cfg)
				failpoint.Reset()
				if !errors.Is(err, failpoint.ErrInjected) {
					t.Fatalf("crash at %d: want injected failure, got %v", crashAfter, err)
				}

				got, res := trainEncoded(t, ds, cfg)
				wantStart := (crashAfter / cfg.CheckpointEvery) * cfg.CheckpointEvery
				if res.StartRound != wantStart {
					t.Fatalf("crash at %d: resumed from round %d, want %d", crashAfter, res.StartRound, wantStart)
				}
				if string(got) != string(want) {
					t.Fatalf("crash at %d: resumed model differs from uninterrupted run", crashAfter)
				}
				if _, err := os.Stat(filepath.Join(dir, CheckpointFile)); !os.IsNotExist(err) {
					t.Fatalf("crash at %d: checkpoint not removed after completed run (stat err %v)", crashAfter, err)
				}
			}
		})
	}
}

// crashLeavingCheckpoint trains with a crash after round crashAfter so a
// checkpoint image is left behind in dir.
func crashLeavingCheckpoint(t *testing.T, ds *datasets.Dataset, cfg Config, crashAfter int) {
	t.Helper()
	if err := failpoint.Enable(FailpointAfterTree, strconv.Itoa(crashAfter)+"*error"); err != nil {
		t.Fatal(err)
	}
	defer failpoint.Reset()
	if _, err := Train(cluster.New(3, cluster.Gigabit()), ds, cfg); !errors.Is(err, failpoint.ErrInjected) {
		t.Fatalf("want injected failure, got %v", err)
	}
}

// TestCheckpointConfigMismatchRejected: resuming under a different
// model-affecting configuration must fail with a descriptive error, not
// silently train a frankenmodel.
func TestCheckpointConfigMismatchRejected(t *testing.T) {
	ds := checkpointDataset(t)
	dir := t.TempDir()
	cfg := checkpointConfig(QD4, dir)
	crashLeavingCheckpoint(t, ds, cfg, 5)

	mutations := map[string]func(*Config){
		"learning rate": func(c *Config) { c.LearningRate = 0.1 },
		"layers":        func(c *Config) { c.Layers = 5 },
		"trees":         func(c *Config) { c.Trees = 30 },
		"quadrant":      func(c *Config) { c.Quadrant = QD2 },
		"lambda":        func(c *Config) { c.Lambda = 2 },
	}
	for name, mutate := range mutations {
		bad := cfg
		mutate(&bad)
		_, err := Train(cluster.New(3, cluster.Gigabit()), ds, bad)
		if err == nil {
			t.Fatalf("%s change: resumed from mismatched checkpoint without error", name)
		}
		if !strings.Contains(err.Error(), "config changed") {
			t.Fatalf("%s change: error does not explain the mismatch: %v", name, err)
		}
	}

	// Worker count changes the histogram aggregation order, so it is part
	// of the config hash even though it lives in the cluster, not Config.
	if _, err := Train(cluster.New(5, cluster.Gigabit()), ds, cfg); err == nil || !strings.Contains(err.Error(), "config changed") {
		t.Fatalf("worker change: want config-changed error, got %v", err)
	}

	// The original configuration still resumes cleanly.
	if _, err := Train(cluster.New(3, cluster.Gigabit()), ds, cfg); err != nil {
		t.Fatalf("original config no longer resumes: %v", err)
	}
}

// TestCheckpointDataMismatchRejected: resuming against different training
// data must fail with a descriptive error.
func TestCheckpointDataMismatchRejected(t *testing.T) {
	ds := checkpointDataset(t)
	dir := t.TempDir()
	cfg := checkpointConfig(QD2, dir)
	crashLeavingCheckpoint(t, ds, cfg, 5)

	other, err := datasets.Synthetic(datasets.SyntheticConfig{
		N: 300, D: 25, C: 3, InformativeRatio: 0.4, Density: 0.4, Seed: 24,
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Train(cluster.New(3, cluster.Gigabit()), other, cfg); err == nil || !strings.Contains(err.Error(), "data changed") {
		t.Fatalf("want data-changed error, got %v", err)
	}
}

// TestCheckpointCorruptionRejected: a torn, truncated or bit-flipped
// checkpoint image must be rejected with an error telling the operator to
// delete it — never resumed from.
func TestCheckpointCorruptionRejected(t *testing.T) {
	ds := checkpointDataset(t)
	dir := t.TempDir()
	cfg := checkpointConfig(QD1, dir)
	crashLeavingCheckpoint(t, ds, cfg, 5)
	path := filepath.Join(dir, CheckpointFile)
	good, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}

	corruptions := map[string][]byte{
		"truncated header": good[:8],
		"truncated body":   good[:len(good)-7],
		"bad magic":        append([]byte("JUNK"), good[4:]...),
		"empty":            {},
	}
	flipped := append([]byte(nil), good...)
	flipped[len(flipped)/2] ^= 0x40
	corruptions["bit flip"] = flipped

	for name, img := range corruptions {
		if err := os.WriteFile(path, img, 0o644); err != nil {
			t.Fatal(err)
		}
		_, err := Train(cluster.New(3, cluster.Gigabit()), ds, cfg)
		if err == nil {
			t.Fatalf("%s: resumed from corrupt checkpoint", name)
		}
		if !strings.Contains(err.Error(), "delete") {
			t.Fatalf("%s: error does not tell the operator what to do: %v", name, err)
		}
	}

	// Restore the good image: it must still resume.
	if err := os.WriteFile(path, good, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := Train(cluster.New(3, cluster.Gigabit()), ds, cfg); err != nil {
		t.Fatalf("pristine checkpoint no longer resumes: %v", err)
	}
}

// TestCheckpointTornWriteDetected drives the checkpoint.torn failpoint — a
// simulated non-atomic writer crash that leaves a half-written image at
// the final path — and checks the next run rejects it.
func TestCheckpointTornWriteDetected(t *testing.T) {
	ds := checkpointDataset(t)
	dir := t.TempDir()
	cfg := checkpointConfig(QD3, dir)

	if err := failpoint.Enable(FailpointCheckpointTorn, "error"); err != nil {
		t.Fatal(err)
	}
	res, err := Train(cluster.New(3, cluster.Gigabit()), ds, cfg)
	failpoint.Reset()
	if err != nil {
		t.Fatalf("training failed outright on checkpoint write error: %v", err)
	}
	if res.CheckpointErr == nil {
		t.Fatal("torn write not recorded in Result.CheckpointErr")
	}

	// The torn image the failpoint left behind must be detected. (The
	// completed run above removes the checkpoint path on success, so
	// re-tear one image in place first.)
	crashTorn := func() {
		if err := failpoint.Enable(FailpointCheckpointTorn, "error"); err != nil {
			t.Fatal(err)
		}
		defer failpoint.Reset()
		if err := failpoint.Enable(FailpointAfterTree, "5*error"); err != nil {
			t.Fatal(err)
		}
		if _, err := Train(cluster.New(3, cluster.Gigabit()), ds, cfg); !errors.Is(err, failpoint.ErrInjected) {
			t.Fatalf("want injected crash, got %v", err)
		}
	}
	crashTorn()
	_, err = Train(cluster.New(3, cluster.Gigabit()), ds, cfg)
	if err == nil || !strings.Contains(err.Error(), "delete") {
		t.Fatalf("torn image not rejected: %v", err)
	}
}

// TestCheckpointSaveFailureNonFatal: a clean checkpoint write failure
// (ENOSPC-style) must not kill training — the run completes and records
// the error, and the model matches a run without checkpointing at all.
func TestCheckpointSaveFailureNonFatal(t *testing.T) {
	ds := checkpointDataset(t)
	want, _ := trainEncoded(t, ds, checkpointConfig(QD4, ""))

	dir := t.TempDir()
	cfg := checkpointConfig(QD4, dir)
	if err := failpoint.Enable(FailpointCheckpointSave, "error"); err != nil {
		t.Fatal(err)
	}
	defer failpoint.Reset()
	res, err := Train(cluster.New(3, cluster.Gigabit()), ds, cfg)
	if err != nil {
		t.Fatalf("training failed on checkpoint save error: %v", err)
	}
	if res.CheckpointErr == nil || !errors.Is(res.CheckpointErr, failpoint.ErrInjected) {
		t.Fatalf("CheckpointErr = %v, want injected save failure", res.CheckpointErr)
	}
	got, err := res.Forest.Encode()
	if err != nil {
		t.Fatal(err)
	}
	if string(got) != string(want) {
		t.Fatal("model differs after non-fatal checkpoint failures")
	}
}
