// Command veroserve serves single-row and batch JSON predictions for a
// model trained with gbdt.Train and saved with Model.Encode (for example
// by `veroctl train -model model.json`).
//
// Usage:
//
//	veroserve -model model.json [-addr :8080] [-workers 0] [-max-inflight 64] [-max-batch 10000]
//
// Endpoints (see internal/serve for the wire format):
//
//	curl localhost:8080/healthz
//	curl localhost:8080/v1/model
//	curl -d '{"rows":[{"indices":[0,3],"values":[1.5,-2]}],"proba":true}' localhost:8080/v1/predict
package main

import (
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"time"

	"vero/gbdt"
	"vero/internal/serve"
)

func main() {
	var (
		modelPath   = flag.String("model", "", "path to a model saved with Model.Encode (required)")
		addr        = flag.String("addr", ":8080", "listen address")
		workers     = flag.Int("workers", 0, "prediction goroutines per batch (0 = GOMAXPROCS)")
		maxInflight = flag.Int("max-inflight", 64, "concurrent predict requests before queueing")
		maxBatch    = flag.Int("max-batch", 10000, "maximum rows per predict request")
	)
	flag.Parse()
	if *modelPath == "" {
		flag.Usage()
		os.Exit(2)
	}

	data, err := os.ReadFile(*modelPath)
	if err != nil {
		log.Fatalf("veroserve: %v", err)
	}
	model, err := gbdt.DecodeModel(data)
	if err != nil {
		log.Fatalf("veroserve: %v", err)
	}
	srv, err := serve.New(model, *modelPath, serve.Options{
		Workers:      *workers,
		MaxInFlight:  *maxInflight,
		MaxBatchRows: *maxBatch,
	})
	if err != nil {
		log.Fatalf("veroserve: %v", err)
	}

	httpSrv := &http.Server{
		Addr:              *addr,
		Handler:           srv.Handler(),
		ReadHeaderTimeout: 10 * time.Second,
	}
	fmt.Printf("veroserve: %d trees, %d classes, objective %q on %s\n",
		model.NumTrees(), model.Forest().NumClass, model.Forest().Objective, *addr)
	log.Fatal(httpSrv.ListenAndServe())
}
