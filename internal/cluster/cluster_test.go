package cluster

import (
	"math"
	"sync/atomic"
	"testing"
	"time"
)

func TestNewValidation(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("New(0) did not panic")
		}
	}()
	New(0, Gigabit())
}

func TestParallelRunsEveryWorker(t *testing.T) {
	for _, concurrent := range []bool{false, true} {
		var opts []Option
		if concurrent {
			opts = append(opts, WithConcurrent())
		}
		c := New(4, Gigabit(), opts...)
		var visited int32
		c.Parallel("phase", func(w int) {
			atomic.AddInt32(&visited, 1<<uint(w))
		})
		if visited != 15 {
			t.Fatalf("concurrent=%v: visited mask %b, want 1111", concurrent, visited)
		}
		if c.Stats().Phase("phase").CompSeconds < 0 {
			t.Fatal("negative comp time")
		}
	}
}

func TestParallelRecordsMakespan(t *testing.T) {
	c := New(3, Gigabit())
	c.Parallel("p", func(w int) {
		if w == 1 {
			time.Sleep(20 * time.Millisecond)
		}
	})
	got := c.Stats().Phase("p").CompSeconds
	if got < 0.019 {
		t.Fatalf("makespan %v, want >= slowest worker's 20ms", got)
	}
	// Sequential execution must not sum all workers into the makespan:
	// the other two workers are ~instant, so the total stays near 20ms.
	if got > 0.2 {
		t.Fatalf("makespan %v looks like a sum across workers", got)
	}
}

func TestAllReduceSum(t *testing.T) {
	c := New(4, Gigabit())
	locals := [][]float64{
		{1, 2}, {10, 20}, {100, 200}, {1000, 2000},
	}
	sum := c.AllReduceSum("agg", locals)
	if sum[0] != 1111 || sum[1] != 2222 {
		t.Fatalf("sum = %v", sum)
	}
	p := c.Stats().Phase("agg")
	// Ring all-reduce: per-worker 2*(W-1)/W*n; total = W times that.
	n := int64(2 * 8)
	want := 2 * int64(3) * n / 4 * 4
	if p.Bytes[OpAllReduce] != want {
		t.Fatalf("bytes = %d, want %d", p.Bytes[OpAllReduce], want)
	}
	if p.CommSeconds <= 0 {
		t.Fatal("no simulated comm time")
	}
}

func TestAllReduceMismatchedArity(t *testing.T) {
	c := New(2, Gigabit())
	defer func() {
		if recover() == nil {
			t.Fatal("mismatched locals did not panic")
		}
	}()
	c.AllReduceSum("x", [][]float64{{1}})
}

func TestReduceScatterSum(t *testing.T) {
	c := New(2, Gigabit())
	sum, shard := c.ReduceScatterSum("agg", [][]float64{{1, 2, 3, 4}, {5, 6, 7, 8}})
	if sum[0] != 6 || sum[3] != 12 {
		t.Fatalf("sum = %v", sum)
	}
	if shard[0] != [2]int{0, 2} || shard[1] != [2]int{2, 4} {
		t.Fatalf("shards = %v", shard)
	}
	p := c.Stats().Phase("agg")
	// Reduce-scatter moves (W-1)/W of the array per worker: 2 workers,
	// 32 bytes payload -> 16 per worker, 32 total.
	if p.Bytes[OpReduceScatter] != 32 {
		t.Fatalf("bytes = %d, want 32", p.Bytes[OpReduceScatter])
	}
	// Reduce-scatter must be cheaper than all-reduce of the same payload.
	c2 := New(2, Gigabit())
	c2.AllReduceSum("agg", [][]float64{{1, 2, 3, 4}, {5, 6, 7, 8}})
	if p.CommSeconds >= c2.Stats().Phase("agg").CommSeconds {
		t.Fatal("reduce-scatter not cheaper than all-reduce")
	}
}

func TestShardUnevenLength(t *testing.T) {
	c := New(3, Gigabit())
	_, shard := c.ReduceScatterSum("x", [][]float64{{1, 2, 3, 4, 5}, {1, 2, 3, 4, 5}, {1, 2, 3, 4, 5}})
	covered := 0
	for _, s := range shard {
		covered += s[1] - s[0]
	}
	if covered != 5 {
		t.Fatalf("shards cover %d entries, want 5: %v", covered, shard)
	}
}

func TestGatherSum(t *testing.T) {
	c := New(4, Gigabit())
	sum := c.GatherSum("agg", [][]float64{{1}, {2}, {3}, {4}})
	if sum[0] != 10 {
		t.Fatalf("sum = %v", sum)
	}
	p := c.Stats().Phase("agg")
	if p.Bytes[OpGather] != 3*8 {
		t.Fatalf("bytes = %d, want 24", p.Bytes[OpGather])
	}
}

func TestShardedGatherFasterThanSingle(t *testing.T) {
	mk := func() [][]float64 {
		ls := make([][]float64, 4)
		for i := range ls {
			ls[i] = make([]float64, 1000)
		}
		return ls
	}
	c1 := New(4, Gigabit())
	c1.GatherSum("agg", mk())
	c2 := New(4, Gigabit())
	c2.ShardedGatherSum("agg", mk(), 4)
	t1 := c1.Stats().Phase("agg").CommSeconds
	t2 := c2.Stats().Phase("agg").CommSeconds
	if t2 >= t1 {
		t.Fatalf("sharded gather (%v) not faster than single gather (%v)", t2, t1)
	}
	// Byte volume is identical — sharding only parallelizes it.
	if c1.Stats().Phase("agg").Bytes[OpGather] != c2.Stats().Phase("agg").Bytes[OpGather] {
		t.Fatal("sharding changed total bytes")
	}
}

func TestBroadcastCost(t *testing.T) {
	c := New(8, Gigabit())
	c.Broadcast("split", 1000)
	p := c.Stats().Phase("split")
	if p.Bytes[OpBroadcast] != 7000 {
		t.Fatalf("bytes = %d, want 7000", p.Bytes[OpBroadcast])
	}
}

func TestAllGatherSmallCost(t *testing.T) {
	c := New(4, Gigabit())
	c.AllGatherSmall("split", 100)
	p := c.Stats().Phase("split")
	if p.Bytes[OpAllGather] != 4*3*100 {
		t.Fatalf("bytes = %d, want 1200", p.Bytes[OpAllGather])
	}
}

func TestShuffle(t *testing.T) {
	c := New(3, Gigabit())
	send := [][]int64{
		{0, 10, 20},
		{5, 0, 15},
		{1, 2, 0},
	}
	c.Shuffle("repart", send)
	p := c.Stats().Phase("repart")
	if p.Bytes[OpShuffle] != 53 {
		t.Fatalf("bytes = %d, want 53", p.Bytes[OpShuffle])
	}
}

func TestCommScalesWithBandwidth(t *testing.T) {
	big := make([]float64, 1<<16)
	slow := New(2, NetworkModel{LatencySec: 0, BandwidthBytesPerSec: 1e6})
	fast := New(2, NetworkModel{LatencySec: 0, BandwidthBytesPerSec: 1e8})
	slow.AllReduceSum("x", [][]float64{big, big})
	fast.AllReduceSum("x", [][]float64{big, big})
	ratio := slow.Stats().Phase("x").CommSeconds / fast.Stats().Phase("x").CommSeconds
	if math.Abs(ratio-100) > 1e-6 {
		t.Fatalf("time ratio = %v, want 100x", ratio)
	}
}

func TestMemGauge(t *testing.T) {
	c := New(2, Gigabit())
	g := c.Stats().Mem("histogram")
	g.Add(0, 100)
	g.Add(0, 50)
	g.Add(0, -120)
	g.Set(1, 70)
	if g.Cur[0] != 30 || g.Peak[0] != 150 {
		t.Fatalf("worker 0 gauge = %d peak %d", g.Cur[0], g.Peak[0])
	}
	if g.MaxPeak() != 150 || g.SumPeak() != 220 {
		t.Fatalf("MaxPeak=%d SumPeak=%d", g.MaxPeak(), g.SumPeak())
	}
	// Same name returns the same gauge.
	if c.Stats().Mem("histogram") != g {
		t.Fatal("Mem not idempotent")
	}
}

func TestTotalsAndString(t *testing.T) {
	c := New(2, Gigabit())
	c.Parallel("build", func(int) {})
	c.AllReduceSum("agg", [][]float64{{1}, {2}})
	comp, comm, bytes := c.Stats().Totals()
	if comp < 0 || comm <= 0 || bytes <= 0 {
		t.Fatalf("Totals = %v %v %v", comp, comm, bytes)
	}
	if s := c.Stats().String(); len(s) == 0 {
		t.Fatal("empty String()")
	}
	names := c.Stats().PhaseNames()
	if len(names) != 2 || names[0] != "agg" || names[1] != "build" {
		t.Fatalf("PhaseNames = %v", names)
	}
	c.ResetStats()
	if _, _, b := c.Stats().Totals(); b != 0 {
		t.Fatal("ResetStats kept bytes")
	}
}

func TestCeilLog2(t *testing.T) {
	cases := map[int]int{1: 0, 2: 1, 3: 2, 4: 2, 5: 3, 8: 3, 9: 4}
	for x, want := range cases {
		if got := ceilLog2(x); got != want {
			t.Errorf("ceilLog2(%d) = %d, want %d", x, got, want)
		}
	}
}

func TestOpKindString(t *testing.T) {
	for k := OpKind(0); k < numOpKinds; k++ {
		if k.String() == "" {
			t.Fatalf("empty name for kind %d", k)
		}
	}
	if OpKind(99).String() != "op(99)" {
		t.Fatal("unknown kind formatting")
	}
}
