// Package failpoint provides name-registered fault-injection points for
// crash and corruption testing. Production code marks its failure-prone
// seams with a single call:
//
//	if err := failpoint.Inject("checkpoint.save"); err != nil {
//	        return err
//	}
//
// When no point is armed — the production state — Inject is one atomic
// load and a branch; the injection machinery is never touched. Tests (and
// the crash harness, via the VERO_FAILPOINTS environment variable) arm
// points by name with a small spec grammar:
//
//	failpoint.Enable("core.aftertree", "3*error") // fail on the 3rd hit
//	VERO_FAILPOINTS='core.aftertree=5*exit(3);ingest.readcache=error'
//
// A spec is [N[-M]*]kind[(arg)]:
//
//	error      return ErrInjected from Inject
//	panic      panic with the point name
//	exit       os.Exit(3), simulating a hard crash (exit(N) picks the code)
//	sleep      sleep (sleep(ms) picks the duration, default 10ms), then
//	           return nil — a delay, not a failure
//	N*kind     stay dormant for the first N-1 hits, fire from the Nth on
//	N-M*kind   fire on hits N through M only, then go dormant again — a
//	           transient fault window (e.g. "1-3*error" on a dial point
//	           models a drop-then-reconnect)
//
// Hit counting is per point and concurrency-safe, so a point inside a
// worker pool fires deterministically on the Nth evaluation in program
// order of that point.
package failpoint

import (
	"errors"
	"fmt"
	"os"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// ErrInjected is the error returned by Inject at an armed "error" point.
// Callers that want to distinguish injected failures from real ones can
// errors.Is against it; production code should treat it like any error.
var ErrInjected = errors.New("failpoint: injected failure")

// EnvVar is the environment variable EnableFromEnv reads.
const EnvVar = "VERO_FAILPOINTS"

type kind int

const (
	kindError kind = iota
	kindPanic
	kindExit
	kindSleep
)

// point is one armed injection point.
type point struct {
	mu       sync.Mutex
	kind     kind
	after    int // fire on the after-th hit and every one following (1-based)
	until    int // last firing hit, inclusive; 0 means never go dormant
	sleep    time.Duration
	hits     int
	exitCode int
}

var (
	mu     sync.Mutex
	points = map[string]*point{}
	// armed is the production fast path: false means Inject returns
	// immediately without looking anything up.
	armed atomic.Bool
)

// Enable arms the named point with a spec ([N*]kind[(arg)], see the
// package comment). Re-enabling an armed point replaces its spec and
// resets its hit count.
func Enable(name, spec string) error {
	p, err := parseSpec(spec)
	if err != nil {
		return fmt.Errorf("failpoint %q: %w", name, err)
	}
	if name == "" {
		return fmt.Errorf("failpoint: empty name")
	}
	mu.Lock()
	defer mu.Unlock()
	points[name] = p
	armed.Store(true)
	return nil
}

// Disable disarms the named point; unknown names are a no-op.
func Disable(name string) {
	mu.Lock()
	defer mu.Unlock()
	delete(points, name)
	armed.Store(len(points) > 0)
}

// Reset disarms every point, returning the package to its production
// no-op state. Tests defer it.
func Reset() {
	mu.Lock()
	defer mu.Unlock()
	points = map[string]*point{}
	armed.Store(false)
}

// Enabled reports whether any point is armed.
func Enabled() bool { return armed.Load() }

// EnableFromEnv arms every point listed in VERO_FAILPOINTS
// ("name=spec;name=spec", comma also accepted). An unset or empty
// variable is a no-op; a malformed entry is an error naming it.
func EnableFromEnv() error {
	env := os.Getenv(EnvVar)
	if env == "" {
		return nil
	}
	for _, entry := range strings.FieldsFunc(env, func(r rune) bool { return r == ';' || r == ',' }) {
		entry = strings.TrimSpace(entry)
		if entry == "" {
			continue
		}
		name, spec, ok := strings.Cut(entry, "=")
		if !ok {
			return fmt.Errorf("failpoint: malformed %s entry %q (want name=spec)", EnvVar, entry)
		}
		if err := Enable(strings.TrimSpace(name), strings.TrimSpace(spec)); err != nil {
			return err
		}
	}
	return nil
}

// Inject evaluates the named point. Disarmed (the production state) it
// returns nil after one atomic load. Armed, it counts the hit and — once
// the point's trigger count is reached — fails with the configured kind:
// returns ErrInjected, panics, or exits the process.
func Inject(name string) error {
	if !armed.Load() {
		return nil
	}
	mu.Lock()
	p := points[name]
	mu.Unlock()
	if p == nil {
		return nil
	}
	p.mu.Lock()
	p.hits++
	fire := p.hits >= p.after && (p.until == 0 || p.hits <= p.until)
	p.mu.Unlock()
	if !fire {
		return nil
	}
	switch p.kind {
	case kindPanic:
		panic("failpoint: injected panic at " + name)
	case kindExit:
		fmt.Fprintf(os.Stderr, "failpoint: injected exit(%d) at %s\n", p.exitCode, name)
		os.Exit(p.exitCode)
	case kindSleep:
		time.Sleep(p.sleep)
		return nil
	}
	return fmt.Errorf("%w at %s", ErrInjected, name)
}

// parseSpec reads "[N[-M]*]kind[(arg)]".
func parseSpec(spec string) (*point, error) {
	p := &point{after: 1, exitCode: 3, sleep: 10 * time.Millisecond}
	rest := spec
	if n, tail, ok := strings.Cut(rest, "*"); ok {
		if lo, hi, windowed := strings.Cut(n, "-"); windowed {
			until, err := strconv.Atoi(hi)
			if err != nil || until < 1 {
				return nil, fmt.Errorf("bad trigger window %q in spec %q", n, spec)
			}
			p.until = until
			n = lo
		}
		after, err := strconv.Atoi(n)
		if err != nil || after < 1 || (p.until != 0 && p.until < after) {
			return nil, fmt.Errorf("bad trigger count %q in spec %q", n, spec)
		}
		p.after = after
		rest = tail
	}
	arg := ""
	if open := strings.IndexByte(rest, '('); open >= 0 {
		if !strings.HasSuffix(rest, ")") {
			return nil, fmt.Errorf("unclosed argument in spec %q", spec)
		}
		arg = rest[open+1 : len(rest)-1]
		rest = rest[:open]
	}
	switch rest {
	case "error":
		p.kind = kindError
	case "panic":
		p.kind = kindPanic
	case "exit":
		p.kind = kindExit
		if arg != "" {
			code, err := strconv.Atoi(arg)
			if err != nil {
				return nil, fmt.Errorf("bad exit code %q in spec %q", arg, spec)
			}
			p.exitCode = code
		}
	case "sleep":
		p.kind = kindSleep
		if arg != "" {
			ms, err := strconv.Atoi(arg)
			if err != nil || ms < 0 {
				return nil, fmt.Errorf("bad sleep duration %q in spec %q", arg, spec)
			}
			p.sleep = time.Duration(ms) * time.Millisecond
		}
	default:
		return nil, fmt.Errorf("unknown kind %q in spec %q (want error, panic, exit or sleep)", rest, spec)
	}
	if p.kind != kindExit && p.kind != kindSleep && arg != "" {
		return nil, fmt.Errorf("kind %q takes no argument (spec %q)", rest, spec)
	}
	return p, nil
}
