package ingest

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"io"
	"math"
	"os"
	"path/filepath"
	"strings"
	"unsafe"

	"vero/internal/datasets"
	"vero/internal/failpoint"
)

// FailpointMmapRead fails a block read on a mapped .vbin view
// (MappedCache.Entries / SearchInst / LookupInst). The injected failure
// surfaces as an ErrCacheCorrupt-wrapped error so out-of-core training
// aborts with a descriptive message instead of crashing mid-train.
const FailpointMmapRead = "ingest.mmap.read"

// hostLittleEndian reports whether this machine stores integers
// little-endian — the .vbin wire order. Only then can mapped sections be
// reinterpreted in place; otherwise every read decodes through scratch.
var hostLittleEndian = func() bool {
	var x uint16 = 0x0102
	return *(*byte)(unsafe.Pointer(&x)) == 0x02
}()

// MapOptions configures how MapCacheFile accesses the image.
type MapOptions struct {
	// DisableMmap forces the positional-read (pread) fallback even where
	// memory mapping is available. Tests use it to prove both access paths
	// decode identically; operators can use it on filesystems where mmap
	// misbehaves.
	DisableMmap bool
}

// MappedCache is a read-only, out-of-core view over a .vbin cache image.
//
// Opening decodes only the O(cols+rows) metadata sections — split tables,
// feature counts, column pointers and labels — onto the heap, and verifies
// the payload checksum plus the structural invariants of the O(nnz)
// instance/bin sections in one streaming pass. The instance and bin arrays
// themselves stay on disk: they are either memory-mapped (and, on
// little-endian hosts, reinterpreted in place with zero copies) or served
// by positional reads into caller-provided scratch. Resident memory is
// therefore bounded by the metadata plus whatever scratch the caller
// passes to Entries, no matter how large the cache is.
//
// MappedCache implements datasets.BlockSource. All accessor methods are
// safe for concurrent use; Close must not race with them.
type MappedCache struct {
	name string
	f    *os.File // nil for byte-image views
	hdr  vbinHeader

	mapped  []byte // whole-file image (mmap or caller bytes); nil in pread mode
	ownsMap bool   // whether Close must munmap

	// Decoded metadata (heap-resident, O(cols+rows)).
	splits    [][]float32
	featCount []int64
	colPtr    []int64
	labels    []float32
	task      datasets.Task

	// Absolute file offsets of the on-disk sections.
	instOff int64
	binsOff int64

	// Zero-copy reinterpretations of the mapped sections, available only
	// on little-endian hosts with the expected (guaranteed) alignment.
	instView []uint32
	binsView []uint16 // binWidth == 2
	binsRaw  []byte   // binWidth == 1
}

// MapCacheFile opens a .vbin cache as an out-of-core view, preferring
// mmap and falling back to positional reads where mapping is unavailable.
func MapCacheFile(path string) (*MappedCache, error) {
	return MapCacheFileOptions(path, MapOptions{})
}

// MapCacheFileOptions opens a .vbin cache as an out-of-core view with
// explicit access options.
func MapCacheFileOptions(path string, opts MapOptions) (*MappedCache, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("ingest: %w", err)
	}
	m := &MappedCache{
		name: strings.TrimSuffix(filepath.Base(path), filepath.Ext(path)),
		f:    f,
	}
	st, err := f.Stat()
	if err != nil {
		f.Close()
		return nil, fmt.Errorf("ingest: cache map: %w", err)
	}
	if mmapAvailable && !opts.DisableMmap && st.Size() > 0 {
		if data, merr := mmapFile(f, st.Size()); merr == nil {
			m.mapped = data
			m.ownsMap = true
		}
		// On mmap failure fall through to pread silently: the view works
		// either way, mapping is only the faster path.
	}
	if err := m.open(st.Size()); err != nil {
		m.Close()
		return nil, err
	}
	return m, nil
}

// MapCacheBytes opens an in-memory .vbin image as a view. It exists for
// tests and for callers that already hold the image; no file is involved.
func MapCacheBytes(data []byte, name string) (*MappedCache, error) {
	m := &MappedCache{name: name, mapped: data}
	if err := m.open(int64(len(data))); err != nil {
		return nil, err
	}
	return m, nil
}

// Close releases the mapping and the underlying file. It is safe to call
// more than once, but must not race with in-flight reads.
func (m *MappedCache) Close() error {
	var err error
	if m.ownsMap && m.mapped != nil {
		err = munmapFile(m.mapped)
	}
	m.mapped = nil
	m.instView, m.binsView, m.binsRaw = nil, nil, nil
	m.ownsMap = false
	if m.f != nil {
		if cerr := m.f.Close(); err == nil {
			err = cerr
		}
		m.f = nil
	}
	return err
}

// open validates the image of the given total size and decodes the
// metadata sections. On return the view is ready for block reads.
func (m *MappedCache) open(size int64) error {
	var hbuf [vbinHeaderSize]byte
	if err := m.readRaw(hbuf[:], 0); err != nil {
		return err
	}
	h, err := parseVbinHeader(hbuf[:])
	if err != nil {
		return err
	}
	m.hdr = h
	payloadLen := size - vbinHeaderSize
	if err := h.checkPayloadSize(payloadLen); err != nil {
		return err
	}

	// Split counts pin the one variable-length section; after them the
	// payload size must match the header exactly.
	counts := make([]uint32, h.cols)
	if err := m.readU32s(counts, vbinHeaderSize); err != nil {
		return err
	}
	var splitsTotal int64
	for _, c := range counts {
		splitsTotal += int64(c)
		if 4*splitsTotal > payloadLen {
			return corruptf("split table overruns payload")
		}
	}
	if want := h.minPayload() + 4*splitsTotal; payloadLen != want {
		return corruptf("payload is %d bytes, header implies %d", payloadLen, want)
	}

	// Section offsets (absolute). The instance section is always 4-aligned
	// and the bin section 2-aligned: every preceding section is a
	// fixed-width array of 4- or 8-byte elements (see docs/DATA.md).
	c64 := int64(h.cols)
	splitValsOff := int64(vbinHeaderSize) + 4*c64
	featCountOff := splitValsOff + 4*splitsTotal
	colPtrOff := featCountOff + 8*c64
	m.instOff = colPtrOff + 8*(c64+1)
	m.binsOff = m.instOff + 4*h.nnz
	labelsOff := m.binsOff + int64(h.binWidth)*h.nnz

	if err := m.verifyChecksum(payloadLen); err != nil {
		return err
	}

	// Decode the O(cols+rows) metadata onto the heap.
	m.splits = make([][]float32, h.cols)
	{
		vals := make([]uint32, splitsTotal)
		if err := m.readU32s(vals, splitValsOff); err != nil {
			return err
		}
		off := 0
		for f, n := range counts {
			if n == 0 {
				continue
			}
			s := make([]float32, n)
			for k := range s {
				s[k] = math.Float32frombits(vals[off])
				off++
			}
			m.splits[f] = s
		}
	}
	m.featCount = make([]int64, h.cols)
	m.colPtr = make([]int64, h.cols+1)
	{
		raw := make([]uint64, h.cols)
		if err := m.readU64s(raw, featCountOff); err != nil {
			return err
		}
		for f, v := range raw {
			m.featCount[f] = int64(v)
		}
		raw = append(raw, 0)
		if err := m.readU64s(raw, colPtrOff); err != nil {
			return err
		}
		for j, v := range raw {
			m.colPtr[j] = int64(v)
		}
	}
	if m.colPtr[0] != 0 || m.colPtr[h.cols] != h.nnz {
		return corruptf("colPtr endpoints [%d,%d], want [0,%d]", m.colPtr[0], m.colPtr[h.cols], h.nnz)
	}
	for j := 0; j < h.cols; j++ {
		if m.colPtr[j] > m.colPtr[j+1] || m.colPtr[j+1] > h.nnz {
			return corruptf("colPtr not monotone at column %d", j)
		}
	}
	m.labels = make([]float32, h.rows)
	{
		raw := make([]uint32, h.rows)
		if err := m.readU32s(raw, labelsOff); err != nil {
			return err
		}
		for i, v := range raw {
			m.labels[i] = math.Float32frombits(v)
		}
	}
	switch {
	case h.numClass == 2:
		m.task = datasets.TaskBinary
	case h.numClass > 2:
		m.task = datasets.TaskMulti
	case h.numClass == 1:
		m.task = datasets.TaskRegression
	default:
		return corruptf("numClass %d", h.numClass)
	}

	m.setupViews()
	return m.validateColumns()
}

// verifyChecksum runs CRC-32C over the whole payload: directly on the
// image when mapped, in fixed-size chunks (O(1) memory) when reading
// positionally.
func (m *MappedCache) verifyChecksum(payloadLen int64) error {
	var got uint32
	if m.mapped != nil {
		got = crc32.Checksum(m.mapped[vbinHeaderSize:], crcTable)
	} else {
		buf := make([]byte, 1<<20)
		off := int64(vbinHeaderSize)
		remain := payloadLen
		for remain > 0 {
			n := int64(len(buf))
			if n > remain {
				n = remain
			}
			if err := m.readRaw(buf[:n], off); err != nil {
				return err
			}
			got = crc32.Update(got, crcTable, buf[:n])
			off += n
			remain -= n
		}
	}
	if got != m.hdr.crc {
		return corruptf("checksum %08x, want %08x", got, m.hdr.crc)
	}
	return nil
}

// setupViews installs zero-copy reinterpretations of the mapped instance
// and bin sections where byte order and alignment allow; reads fall back
// to decoding through scratch otherwise.
func (m *MappedCache) setupViews() {
	if m.mapped == nil {
		return
	}
	if m.hdr.binWidth == 1 {
		m.binsRaw = m.mapped[m.binsOff : m.binsOff+m.hdr.nnz]
	}
	if !hostLittleEndian {
		return
	}
	if m.hdr.nnz > 0 {
		inst := m.mapped[m.instOff : m.instOff+4*m.hdr.nnz]
		if uintptr(unsafe.Pointer(&inst[0]))%4 == 0 {
			m.instView = unsafe.Slice((*uint32)(unsafe.Pointer(&inst[0])), m.hdr.nnz)
		}
		if m.hdr.binWidth == 2 {
			bins := m.mapped[m.binsOff : m.binsOff+2*m.hdr.nnz]
			if uintptr(unsafe.Pointer(&bins[0]))%2 == 0 {
				m.binsView = unsafe.Slice((*uint16)(unsafe.Pointer(&bins[0])), m.hdr.nnz)
			}
		}
	}
}

// validateColumns streams the instance and bin sections once, checking
// per-column instance monotonicity (the invariant block reads binary-search
// on), instance range, and bin range against the split tables — the same
// guarantees ReadCache establishes while transposing.
func (m *MappedCache) validateColumns() error {
	const chunk = 32 << 10
	var instBuf []uint32
	var binBuf []uint16
	if m.instView == nil || (m.binsView == nil && m.binsRaw == nil) {
		instBuf = make([]uint32, chunk)
		binBuf = make([]uint16, chunk)
	} else {
		// Zero-copy views cover both sections; no scratch needed.
		instBuf = nil
		binBuf = make([]uint16, chunk)
	}
	rows := uint32(m.hdr.rows)
	for j := 0; j < m.hdr.cols; j++ {
		nb := len(m.splits[j])
		prev := int64(-1)
		for lo, hi := m.colPtr[j], m.colPtr[j+1]; lo < hi; {
			n := hi - lo
			if n > chunk {
				n = chunk
			}
			insts, bins, err := m.entriesRaw(lo, lo+n, instBuf, binBuf)
			if err != nil {
				return err
			}
			for k := range insts {
				if insts[k] >= rows {
					return corruptf("instance %d out of range (rows=%d)", insts[k], m.hdr.rows)
				}
				if int64(insts[k]) <= prev {
					return corruptf("column %d instances not strictly ascending at entry %d", j, lo+int64(k))
				}
				prev = int64(insts[k])
				if int(bins[k]) >= nb && !(nb == 0 && bins[k] == 0) {
					return corruptf("bin %d of feature %d out of range (%d bins)", bins[k], j, nb)
				}
			}
			lo += n
		}
	}
	return nil
}

// readRaw fills dst from the image at absolute offset off, copying from
// the mapped bytes or issuing a positional read. I/O failures wrap
// ErrCacheCorrupt so out-of-core training reports them uniformly.
func (m *MappedCache) readRaw(dst []byte, off int64) error {
	if len(dst) == 0 {
		return nil
	}
	if m.mapped != nil {
		if off < 0 || off+int64(len(dst)) > int64(len(m.mapped)) {
			return corruptf("read [%d,%d) beyond %d-byte image", off, off+int64(len(dst)), len(m.mapped))
		}
		copy(dst, m.mapped[off:])
		return nil
	}
	if _, err := m.f.ReadAt(dst, off); err != nil {
		if err == io.EOF || err == io.ErrUnexpectedEOF {
			return corruptf("%s: read [%d,%d) beyond end of file", m.name, off, off+int64(len(dst)))
		}
		return fmt.Errorf("%w: %s: read at offset %d: %v", ErrCacheCorrupt, m.name, off, err)
	}
	return nil
}

// u32ByteView reinterprets a uint32 slice as its backing bytes.
func u32ByteView(s []uint32) []byte {
	if len(s) == 0 {
		return nil
	}
	return unsafe.Slice((*byte)(unsafe.Pointer(&s[0])), 4*len(s))
}

// u16ByteView reinterprets a uint16 slice as its backing bytes.
func u16ByteView(s []uint16) []byte {
	if len(s) == 0 {
		return nil
	}
	return unsafe.Slice((*byte)(unsafe.Pointer(&s[0])), 2*len(s))
}

// u64ByteView reinterprets a uint64 slice as its backing bytes.
func u64ByteView(s []uint64) []byte {
	if len(s) == 0 {
		return nil
	}
	return unsafe.Slice((*byte)(unsafe.Pointer(&s[0])), 8*len(s))
}

// readU32s fills dst with little-endian uint32s from absolute offset off.
func (m *MappedCache) readU32s(dst []uint32, off int64) error {
	raw := u32ByteView(dst)
	if err := m.readRaw(raw, off); err != nil {
		return err
	}
	if !hostLittleEndian {
		for k := range dst {
			dst[k] = binary.LittleEndian.Uint32(raw[4*k:])
		}
	}
	return nil
}

// readU16s fills dst with little-endian uint16s from absolute offset off.
func (m *MappedCache) readU16s(dst []uint16, off int64) error {
	raw := u16ByteView(dst)
	if err := m.readRaw(raw, off); err != nil {
		return err
	}
	if !hostLittleEndian {
		for k := range dst {
			dst[k] = binary.LittleEndian.Uint16(raw[2*k:])
		}
	}
	return nil
}

// readU64s fills dst with little-endian uint64s from absolute offset off.
func (m *MappedCache) readU64s(dst []uint64, off int64) error {
	raw := u64ByteView(dst)
	if err := m.readRaw(raw, off); err != nil {
		return err
	}
	if !hostLittleEndian {
		for k := range dst {
			dst[k] = binary.LittleEndian.Uint64(raw[8*k:])
		}
	}
	return nil
}

// injectRead is the ingest.mmap.read failpoint seam shared by the block
// accessors; an injected fault reads as cache corruption to the trainer.
func (m *MappedCache) injectRead() error {
	if err := failpoint.Inject(FailpointMmapRead); err != nil {
		return fmt.Errorf("%w: %s: mapped view read failed: %w", ErrCacheCorrupt, m.name, err)
	}
	return nil
}

// Rows returns the number of instances.
func (m *MappedCache) Rows() int { return m.hdr.rows }

// Cols returns the number of features.
func (m *MappedCache) Cols() int { return m.hdr.cols }

// NNZ returns the number of stored (instance, bin) entries.
func (m *MappedCache) NNZ() int64 { return m.hdr.nnz }

// ColRange returns the half-open entry range [lo, hi) of column col in
// the global entry space.
func (m *MappedCache) ColRange(col int) (lo, hi int64) {
	return m.colPtr[col], m.colPtr[col+1]
}

// Entries materializes the entry range [lo, hi): instance ids and bin
// indexes in on-disk order (ascending instance within a column). The
// returned slices are either zero-copy views into the mapping — valid
// until Close, and must not be modified — or the provided scratch buffers
// filled by positional reads; callers must size the scratch to at least
// hi-lo entries unless views are guaranteed. Entries is safe for
// concurrent use with distinct scratch.
func (m *MappedCache) Entries(lo, hi int64, instBuf []uint32, binBuf []uint16) ([]uint32, []uint16, error) {
	if err := m.injectRead(); err != nil {
		return nil, nil, err
	}
	if lo < 0 || lo > hi || hi > m.hdr.nnz {
		return nil, nil, fmt.Errorf("ingest: entry range [%d,%d) outside [0,%d)", lo, hi, m.hdr.nnz)
	}
	return m.entriesRaw(lo, hi, instBuf, binBuf)
}

// entriesRaw is Entries without the failpoint and range validation; open
// -time validation uses it directly so armed failpoints count only
// training-time block reads.
func (m *MappedCache) entriesRaw(lo, hi int64, instBuf []uint32, binBuf []uint16) ([]uint32, []uint16, error) {
	n := int(hi - lo)
	var insts []uint32
	if m.instView != nil {
		insts = m.instView[lo:hi]
	} else {
		if len(instBuf) < n {
			return nil, nil, fmt.Errorf("ingest: instance scratch holds %d entries, need %d", len(instBuf), n)
		}
		insts = instBuf[:n]
		if err := m.readU32s(insts, m.instOff+4*lo); err != nil {
			return nil, nil, err
		}
	}
	var bins []uint16
	switch {
	case m.binsView != nil:
		bins = m.binsView[lo:hi]
	case len(binBuf) < n:
		return nil, nil, fmt.Errorf("ingest: bin scratch holds %d entries, need %d", len(binBuf), n)
	case m.binsRaw != nil:
		bins = binBuf[:n]
		for k, b := range m.binsRaw[lo:hi] {
			bins[k] = uint16(b)
		}
	case m.hdr.binWidth == 2:
		bins = binBuf[:n]
		if err := m.readU16s(bins, m.binsOff+2*lo); err != nil {
			return nil, nil, err
		}
	default:
		// pread, 1-byte bins: stage the raw bytes in the upper half of the
		// scratch's byte view, then widen forward in place. Writing entry k
		// touches bytes [2k, 2k+1], always below the unread stage byte n+k'.
		bins = binBuf[:n]
		raw := u16ByteView(bins)
		stage := raw[n : 2*n]
		if err := m.readRaw(stage, m.binsOff+lo); err != nil {
			return nil, nil, err
		}
		for k := 0; k < n; k++ {
			bins[k] = uint16(stage[k])
		}
	}
	return insts, bins, nil
}

// instAt reads the instance id at entry position pos.
func (m *MappedCache) instAt(pos int64) (uint32, error) {
	if m.instView != nil {
		return m.instView[pos], nil
	}
	if m.mapped != nil {
		return binary.LittleEndian.Uint32(m.mapped[m.instOff+4*pos:]), nil
	}
	var b [4]byte
	if err := m.readRaw(b[:], m.instOff+4*pos); err != nil {
		return 0, err
	}
	return binary.LittleEndian.Uint32(b[:]), nil
}

// binAt reads the bin index at entry position pos.
func (m *MappedCache) binAt(pos int64) (uint16, error) {
	switch {
	case m.binsView != nil:
		return m.binsView[pos], nil
	case m.binsRaw != nil:
		return uint16(m.binsRaw[pos]), nil
	case m.mapped != nil && m.hdr.binWidth == 2:
		return binary.LittleEndian.Uint16(m.mapped[m.binsOff+2*pos:]), nil
	}
	var b [2]byte
	if err := m.readRaw(b[:m.hdr.binWidth], m.binsOff+int64(m.hdr.binWidth)*pos); err != nil {
		return 0, err
	}
	if m.hdr.binWidth == 1 {
		return uint16(b[0]), nil
	}
	return binary.LittleEndian.Uint16(b[:]), nil
}

// searchInst is SearchInst without the failpoint.
func (m *MappedCache) searchInst(lo, hi int64, inst uint32) (int64, error) {
	for lo < hi {
		mid := lo + (hi-lo)/2
		v, err := m.instAt(mid)
		if err != nil {
			return 0, err
		}
		if v < inst {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo, nil
}

// SearchInst returns the first position in [lo, hi) whose instance id is
// >= inst (hi if none). The range must lie within one column, where
// instance ids are strictly ascending.
func (m *MappedCache) SearchInst(lo, hi int64, inst uint32) (int64, error) {
	if err := m.injectRead(); err != nil {
		return 0, err
	}
	return m.searchInst(lo, hi, inst)
}

// LookupInst binary-searches [lo, hi) — which must lie within one column —
// for an entry of instance inst, returning its bin and whether it exists.
func (m *MappedCache) LookupInst(lo, hi int64, inst uint32) (uint16, bool, error) {
	if err := m.injectRead(); err != nil {
		return 0, false, err
	}
	pos, err := m.searchInst(lo, hi, inst)
	if err != nil {
		return 0, false, err
	}
	if pos >= hi {
		return 0, false, nil
	}
	v, err := m.instAt(pos)
	if err != nil {
		return 0, false, err
	}
	if v != inst {
		return 0, false, nil
	}
	b, err := m.binAt(pos)
	return b, err == nil, err
}

// Fingerprint identifies the image for checkpoint validation: payload
// checksum plus shape.
func (m *MappedCache) Fingerprint() string {
	return fmt.Sprintf("vbin:%08x:%dx%d:%d", m.hdr.crc, m.hdr.rows, m.hdr.cols, m.hdr.nnz)
}

// Dataset wraps the view as an out-of-core dataset: X is nil, Blocks
// serves the binned matrix, and the Prebin carries the cached splits with
// Quantized set (training adopts them exactly as warm-cache datasets do).
// Closing the view invalidates the dataset.
func (m *MappedCache) Dataset() *datasets.Dataset {
	return &datasets.Dataset{
		Name:     m.name,
		Labels:   m.labels,
		NumClass: m.hdr.numClass,
		Task:     m.task,
		Blocks:   m,
		Prebin: &datasets.Prebin{
			SketchEps: m.hdr.eps,
			Q:         m.hdr.q,
			Splits:    m.splits,
			FeatCount: m.featCount,
			Quantized: true,
		},
	}
}
