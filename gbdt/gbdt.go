// Package gbdt is the public API of the Vero reproduction: distributed
// gradient-boosted decision trees under the four data-management quadrants
// of "An Experimental Evaluation of Large Scale GBDT Systems" (VLDB 2019).
//
// Training runs on a simulated cluster: workers execute real computation
// while communication is metered byte-exactly and converted to simulated
// time under a configurable network model. The quickstart:
//
//	ds, _ := gbdt.Synthetic(gbdt.SyntheticConfig{N: 10000, D: 100, C: 2,
//	        InformativeRatio: 0.2, Density: 0.2, Seed: 1})
//	train, valid := ds.Split(0.8, 1)
//	model, report, _ := gbdt.Train(train, gbdt.Options{
//	        System: gbdt.SystemVero, Workers: 8, Trees: 20})
//	fmt.Println(report.PerTreeSeconds, gbdt.AUC(model, valid))
package gbdt

import (
	"fmt"
	"io"
	"os"
	"sync"

	"vero/internal/cluster"
	"vero/internal/core"
	"vero/internal/costmodel"
	"vero/internal/datasets"
	"vero/internal/loss"
	"vero/internal/partition"
	"vero/internal/systems"
	"vero/internal/tree"
)

// Dataset is a feature matrix with labels. Construct one with Synthetic,
// NamedDataset or ReadLibSVM.
type Dataset = datasets.Dataset

// SyntheticConfig parametrizes the paper's synthetic data generator.
type SyntheticConfig = datasets.SyntheticConfig

// Synthetic generates a classification dataset from random linear models
// (Section 5.2 of the paper).
func Synthetic(cfg SyntheticConfig) (*Dataset, error) { return datasets.Synthetic(cfg) }

// SyntheticRegression generates a regression dataset y = x.w + noise.
func SyntheticRegression(n, d int, density, noise float64, seed int64) (*Dataset, error) {
	return datasets.SyntheticRegression(n, d, density, noise, seed)
}

// NamedDataset generates the scaled simulacrum of one of the paper's
// datasets (Table 2 / Section 6): susy, higgs, criteo, epsilon, rcv1,
// synthesis, rcv1-multi, synthesis-multi, gender, age, taste.
func NamedDataset(name string, seed int64) (*Dataset, error) { return datasets.Load(name, seed) }

// DatasetCatalog lists the paper's datasets with their original and
// simulated shapes.
func DatasetCatalog() []datasets.Descriptor { return datasets.Catalog() }

// ReadLibSVM parses LibSVM-format data. numClass is 1 for regression, 2
// for binary classification, >2 for multi-class.
func ReadLibSVM(r io.Reader, numClass int) (*Dataset, error) {
	return datasets.ReadLibSVM(r, numClass)
}

// ReadLibSVMFile reads a LibSVM file from disk.
func ReadLibSVMFile(path string, numClass int) (*Dataset, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("gbdt: %w", err)
	}
	defer f.Close()
	return datasets.ReadLibSVM(f, numClass)
}

// WriteLibSVM writes a dataset in LibSVM format.
func WriteLibSVM(w io.Writer, ds *Dataset) error { return datasets.WriteLibSVM(w, ds) }

// System selects one of the evaluated GBDT systems.
type System = systems.System

// The systems of the paper's evaluation.
const (
	SystemXGBoost    = systems.XGBoost
	SystemLightGBM   = systems.LightGBM
	SystemLightGBMFP = systems.LightGBMFP
	SystemDimBoost   = systems.DimBoost
	SystemYggdrasil  = systems.Yggdrasil
	SystemQD3        = systems.QD3Hybrid
	SystemVero       = systems.Vero
)

// Systems returns every available system.
func Systems() []System { return systems.All() }

// DescribeSystem summarizes a system's data-management policy.
func DescribeSystem(s System) string { return systems.Describe(s) }

// Quadrant selects a data-management quadrant of the paper's Figure 1
// directly, instead of going through a named system.
type Quadrant = core.Quadrant

// The four quadrants, plus automatic selection.
const (
	// QD1..QD4 train with the quadrant's reference system policy
	// (XGBoost, LightGBM, optimized QD3, Vero respectively).
	QD1 = core.QD1
	QD2 = core.QD2
	QD3 = core.QD3
	QD4 = core.QD4
	// QuadrantAuto lets the advisor choose the quadrant from the
	// dataset's shape, sparsity and the cluster's network model; the
	// decision and its rationale land in Report.Selection.
	QuadrantAuto = core.QuadrantAuto
)

// ParseQuadrant reads a quadrant from its command-line spelling
// ("qd1".."qd4", a bare digit, or "auto").
func ParseQuadrant(s string) (Quadrant, error) { return core.ParseQuadrant(s) }

// QuadrantSelection records an auto-quadrant decision: the chosen
// quadrant, the advisor workload derived from the dataset, and the full
// recommendation with its rationale.
type QuadrantSelection = core.Selection

// NetworkModel converts communication volume to simulated time.
type NetworkModel = cluster.NetworkModel

// Gigabit is the paper's laboratory network (Section 5.1).
func Gigabit() NetworkModel { return cluster.Gigabit() }

// TenGigabit is the paper's production network (Section 6).
func TenGigabit() NetworkModel { return cluster.TenGigabit() }

// Options configures a training run.
type Options struct {
	// System picks the data-management policy (default SystemVero).
	System System
	// Quadrant, when nonzero, selects the data-management quadrant
	// directly and takes precedence over System: QD1..QD4 train with the
	// quadrant's reference system policy, and QuadrantAuto asks the
	// advisor to choose from the dataset and network (the decision is
	// reported in Report.Selection).
	Quadrant Quadrant
	// Workers is the simulated cluster size W (default 8, the paper's
	// laboratory cluster).
	Workers int
	// Network is the cluster's network model (default Gigabit).
	Network NetworkModel
	// Concurrent runs the simulated workers on goroutines instead of
	// sequentially. Models are bit-identical either way (reductions are
	// order-normalized); timing fidelity requires ~W idle cores, which is
	// why the exactly-measured sequential mode stays the default.
	Concurrent bool
	// Distributed, when non-nil, replaces the in-process simulation with a
	// real TCP worker mesh: this process becomes one rank of the
	// deployment described by the peer list, every collective moves its
	// payload over sockets in the simulation's reduction order, and the
	// trained model is bit-identical to the simulated run. len(Peers)
	// overrides Workers. See docs/DISTRIBUTED.md.
	Distributed *DistributedOptions

	// Trees (T, default 100), Layers (L, default 8) and Splits (q,
	// default 20) follow Section 5.1.
	Trees  int
	Layers int
	Splits int

	LearningRate float64 // default 0.3
	Lambda       float64 // default 1
	Gamma        float64
	MinChildHess float64

	// Objective is "square", "logistic" or "softmax"; inferred from the
	// dataset when empty.
	Objective string
	// NumClass is the class count: 1 for regression, 2 for binary, >2 for
	// multi-class. Zero means infer from the dataset; file-based entry
	// points (IngestFile, TrainFile) default it to 2.
	NumClass int

	// Ingestion options, honored by the file-based entry points
	// (IngestFile, TrainFile) and ignored by Train on an in-memory
	// dataset.

	// Format is the input dialect, FormatLibSVM (default) or FormatCSV.
	Format Format
	// ChunkRows is the ingestion block size in input lines (default
	// 4096): rows are parsed in blocks of this many lines by the parallel
	// parser.
	ChunkRows int
	// NumParseWorkers sizes the ingestion parse pool (default
	// GOMAXPROCS).
	NumParseWorkers int
	// CacheDir, when set, enables the binned binary cache: cold runs
	// write a .vbin image there and warm runs load it directly, skipping
	// parse and bin while producing bit-identical models (docs/DATA.md).
	CacheDir string

	// OutOfCore trains from an mmap-backed view of the .vbin cache
	// instead of materializing the binned matrix in memory: the file-based
	// entry points map the cache image (building it first when the path is
	// not already a .vbin file — CacheDir must then be set), and training
	// streams blocks through scratch bounded by MemBudget. Models are
	// bit-identical to in-memory training. See docs/DATA.md and
	// docs/PERFORMANCE.md.
	OutOfCore bool
	// MemBudget bounds the out-of-core streaming scratch in bytes
	// (default 64 MiB). It sizes block buffers only; the trained model
	// does not depend on it.
	MemBudget int64

	Seed int64

	// CheckpointDir, together with CheckpointEvery > 0, makes training
	// crash-safe: every CheckpointEvery trees the trainer atomically
	// writes resumable state to CheckpointDir/train.vckp, and a rerun with
	// the same options and data resumes from the last checkpoint instead
	// of round zero (Report.StartRound says where it picked up). A
	// checkpoint whose configuration or dataset fingerprint does not match
	// is rejected with an error rather than resumed. See
	// docs/ROBUSTNESS.md.
	CheckpointDir string
	// CheckpointEvery is the checkpoint period in trees; zero disables
	// checkpointing.
	CheckpointEvery int

	// OnTree is invoked after each tree with the cumulative simulated
	// time and the new tree.
	OnTree func(treeIdx int, elapsedSec float64, tr *Tree)
}

// Tree is a single decision tree of a trained model.
type Tree = tree.Tree

// Model is a trained GBDT forest. A model is immutable once trained or
// decoded; prediction compiles the forest into the flat serving engine
// (see Predictor) on first use and is safe for concurrent use.
type Model struct {
	forest   *tree.Forest
	flatOnce sync.Once
	flat     *tree.FlatForest
}

// Forest exposes the underlying forest.
func (m *Model) Forest() *tree.Forest { return m.forest }

// NumTrees returns the number of trees.
func (m *Model) NumTrees() int { return m.forest.NumTrees() }

// HasBins reports whether the model carries the per-feature candidate
// splits its thresholds were drawn from — the metadata the binned
// inference engine (PredictorOptions.Binned) quantizes incoming rows
// with. Models trained by this version of the trainer always do; models
// decoded from older encodings do not.
func (m *Model) HasBins() bool { return m.forest.Splits != nil }

// flatForest compiles the forest on first use.
func (m *Model) flatForest() *tree.FlatForest {
	m.flatOnce.Do(func() { m.flat = tree.Compile(m.forest) })
	return m.flat
}

// PredictRow returns raw scores (margins) for one sparse row.
func (m *Model) PredictRow(feat []uint32, val []float32) []float64 {
	return m.flatForest().PredictRow(feat, val)
}

// Predict returns raw scores for every instance of ds, row-major with
// stride NumClass, computed in parallel by the flat serving engine. The
// dataset must be materialized: an out-of-core training view holds bin
// indexes on disk, not feature values — read the data with ReadDataFile
// (or train with evaluation on a separate materialized split) to score it.
func (m *Model) Predict(ds *Dataset) []float64 {
	if ds.OutOfCore() {
		panic("gbdt: Predict needs a materialized dataset; out-of-core views are training-only (load the data with ReadDataFile instead)")
	}
	return m.flatForest().PredictCSR(ds.X, 0) // 0: default worker count
}

// Encode serializes the model to JSON.
func (m *Model) Encode() ([]byte, error) { return m.forest.Encode() }

// DecodeModel parses a model serialized with Encode.
func DecodeModel(data []byte) (*Model, error) {
	f, err := tree.DecodeForest(data)
	if err != nil {
		return nil, err
	}
	return &Model{forest: f}, nil
}

// Report summarizes a training run: per-tree simulated time and the
// computation/communication breakdown the paper's figures report.
type Report struct {
	PerTreeSeconds []float64
	// Selection is non-nil when training ran with QuadrantAuto: the
	// advisor's chosen quadrant and rationale.
	Selection   *QuadrantSelection
	CompSeconds float64
	CommSeconds float64
	PrepSeconds float64
	// CommBytes is the total communication volume.
	CommBytes int64
	// HistogramPeakBytes is the largest per-worker histogram memory.
	HistogramPeakBytes int64
	// DataBytes is the largest per-worker data-shard memory.
	DataBytes int64
	// TransformBytes reports the Vero transformation volumes (QD4 only).
	TransformBytes partition.ByteReport
	// StartRound is the boosting round training began at: 0 for a fresh
	// run, k when a checkpoint with k completed trees was resumed.
	StartRound int
	// PeakHeapBytes is the process heap high-water mark sampled at tree
	// boundaries — the number an out-of-core run's MemBudget guarantee is
	// checked against.
	PeakHeapBytes uint64
	// CheckpointErr records a non-fatal checkpoint housekeeping failure
	// (a periodic save that could not be written, or a completed run's
	// checkpoint that could not be removed). The model itself is valid.
	CheckpointErr error

	// Distributed is true when training ran over a real TCP worker mesh
	// (Options.Distributed); the fields below are then populated.
	Distributed bool
	// Rank is this process's rank in the deployment (0 on the simulation).
	Rank int
	// MeasuredCommSeconds is wall-clock spent in transport operations,
	// per phase the slowest rank's, summed over phases — the measured
	// counterpart of CommSeconds' alpha-beta prediction.
	MeasuredCommSeconds float64
	// MeasuredCommBytes is the collective payload volume the deployment
	// put on the wire, summed across ranks. Equal to CommBytes by
	// construction: the model's accounted volume is what the transport
	// sends.
	MeasuredCommBytes int64
	// WireBytes is this rank's raw transmitted volume including frame
	// headers and checksums (the framing overhead above CommBytes' share).
	WireBytes int64
	// Phases is the per-phase accounted-vs-measured communication table.
	Phases []PhaseComm
}

// Train fits a GBDT model to the dataset. With Options.Distributed set it
// trains this rank's share of a real multi-process deployment instead;
// the mesh is closed before returning.
func Train(ds *Dataset, opts Options) (*Model, *Report, error) {
	opts = opts.withDefaults()
	cl, err := connectCluster(opts, meshFingerprint(ds))
	if err != nil {
		return nil, nil, err
	}
	defer cl.Close()
	res, err := runTrain(cl, ds, opts, baseConfig(opts))
	if err != nil {
		return nil, nil, err
	}
	if cl.Distributed() {
		// Replace each rank's local measurements with the deployment-wide
		// record (bytes summed, wall-clock maxed) so every rank reports
		// the same measured-vs-accounted table.
		if err := cl.SyncMeasured(); err != nil {
			return nil, nil, err
		}
	}
	return &Model{forest: res.Forest}, buildReport(cl, res), nil
}

// withDefaults fills the unset cluster options.
func (o Options) withDefaults() Options {
	if o.Distributed != nil {
		o.Workers = len(o.Distributed.Peers)
	}
	if o.Workers == 0 {
		o.Workers = 8
	}
	if o.Network == (NetworkModel{}) {
		o.Network = Gigabit()
	}
	if o.System == "" {
		o.System = SystemVero
	}
	return o
}

// baseConfig translates the options' hyper-parameters to a core config.
func baseConfig(opts Options) core.Config {
	cfg := core.Config{
		Trees:           opts.Trees,
		Layers:          opts.Layers,
		Splits:          opts.Splits,
		LearningRate:    opts.LearningRate,
		Lambda:          opts.Lambda,
		Gamma:           opts.Gamma,
		MinChildHess:    opts.MinChildHess,
		Objective:       opts.Objective,
		NumClass:        opts.NumClass,
		Seed:            opts.Seed,
		MemBudget:       opts.MemBudget,
		CheckpointDir:   opts.CheckpointDir,
		CheckpointEvery: opts.CheckpointEvery,
		OnTree:          opts.OnTree,
	}
	if d := opts.Distributed; d != nil {
		cfg.DistIdentity = distIdentity(d)
	}
	return cfg
}

// runTrain routes to the requested policy: an explicit quadrant trains
// its reference system, QuadrantAuto defers the choice to the trainer's
// advisor hook, and otherwise the named system decides.
func runTrain(cl *cluster.Cluster, ds *Dataset, opts Options, base core.Config) (*core.Result, error) {
	switch {
	case opts.Quadrant == QuadrantAuto:
		base.Quadrant = core.QuadrantAuto
		return core.Train(cl, ds, base)
	case opts.Quadrant != 0:
		s, err := systems.ForQuadrant(opts.Quadrant)
		if err != nil {
			return nil, err
		}
		return systems.Train(cl, ds, s, base)
	default:
		return systems.Train(cl, ds, opts.System, base)
	}
}

// buildReport assembles the public report from the run result and the
// cluster's accumulated statistics.
func buildReport(cl *cluster.Cluster, res *core.Result) *Report {
	_, _, bytes := cl.Stats().Totals()
	measuredSec, measuredBytes := cl.Stats().MeasuredTotals()
	return &Report{
		Distributed:         cl.Distributed(),
		Rank:                cl.Rank(),
		MeasuredCommSeconds: measuredSec,
		MeasuredCommBytes:   measuredBytes,
		WireBytes:           cl.WireBytes(),
		Phases:              phaseComms(cl),
		PerTreeSeconds:      res.PerTreeSeconds,
		Selection:           res.Selection,
		CompSeconds:         res.CompSeconds,
		CommSeconds:         res.CommSeconds,
		PrepSeconds:         res.PrepSeconds,
		CommBytes:           bytes,
		HistogramPeakBytes:  cl.Stats().Mem("histogram").MaxPeak(),
		DataBytes:           cl.Stats().Mem("data").MaxPeak(),
		TransformBytes:      res.TransformBytes,
		StartRound:          res.StartRound,
		PeakHeapBytes:       res.PeakHeapBytes,
		CheckpointErr:       res.CheckpointErr,
	}
}

// Evaluation metrics.

// AUC evaluates a binary model's area under the ROC curve on a dataset.
func AUC(m *Model, ds *Dataset) float64 {
	return loss.AUC(m.Predict(ds), ds.Labels)
}

// Accuracy evaluates classification accuracy (binary threshold at margin
// zero, multi-class by argmax).
func Accuracy(m *Model, ds *Dataset) float64 {
	scores := m.Predict(ds)
	if m.forest.NumClass > 1 {
		return loss.MultiAccuracy(scores, ds.Labels, m.forest.NumClass)
	}
	return loss.BinaryAccuracy(scores, ds.Labels)
}

// RMSE evaluates regression root-mean-square error.
func RMSE(m *Model, ds *Dataset) float64 {
	return loss.RMSE(m.Predict(ds), ds.Labels)
}

// LogLoss evaluates cross-entropy (binary or multi-class).
func LogLoss(m *Model, ds *Dataset) float64 {
	scores := m.Predict(ds)
	if m.forest.NumClass > 1 {
		return loss.MultiLogLoss(scores, ds.Labels, m.forest.NumClass)
	}
	return loss.LogLoss(scores, ds.Labels)
}

// Cost model (Section 3.1).

// CostWorkload is a workload in the paper's notation.
type CostWorkload = costmodel.Workload

// CostReport holds the closed-form memory and communication estimates.
type CostReport = costmodel.Report

// AnalyzeCost evaluates the paper's cost model on a workload.
func AnalyzeCost(w CostWorkload) (CostReport, error) { return costmodel.Analyze(w) }

// AgeExampleWorkload returns the Section 3.1.4 worked example.
func AgeExampleWorkload() CostWorkload { return costmodel.AgeExample() }
