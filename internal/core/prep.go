package core

import (
	"fmt"

	"vero/internal/cluster"
	"vero/internal/datasets"
	"vero/internal/partition"
	"vero/internal/sketch"
	"vero/internal/sparse"
)

// prepare constructs the quadrant's engine and lets it materialize each
// worker's data shard, charging the preparation communication. The row
// ranges of the incoming horizontal layout are shared: every quadrant
// sketches from them, and the vertical quadrants repartition from them.
func (t *trainer) prepare() error {
	t.ranges = partition.HorizontalRanges(t.n, t.w)
	if err := t.initStream(); err != nil {
		return err
	}
	eng, err := newEngine(t)
	if err != nil {
		return err
	}
	t.eng = eng
	return t.eng.prepare()
}

// newEngine maps the configured quadrant to its strategy implementation.
// Config.Quadrant is concrete here: QuadrantAuto was resolved by Train
// before the trainer was assembled.
func newEngine(t *trainer) (engine, error) {
	switch t.cfg.Quadrant {
	case QD1, QD2:
		return &horizontalEngine{t: t}, nil
	case QD3, QD4:
		return &verticalEngine{t: t}, nil
	}
	return nil, fmt.Errorf("core: unhandled quadrant %v", t.cfg.Quadrant)
}

// checkMaxBins caches the binner's widest candidate-split count and
// rejects datasets that admit no split at all.
func (t *trainer) checkMaxBins() error {
	t.maxBins = t.binner.MaxNumBins()
	if t.maxBins < 2 {
		return fmt.Errorf("core: dataset yields %d candidate splits; need >= 2", t.maxBins)
	}
	return nil
}

// usablePrebin returns the dataset's ingestion-derived binning when it
// matches the training configuration. A quantized dataset (values are bin
// representatives reconstructed from a .vbin cache) whose parameters do
// not match is an error: the source values needed to re-sketch are gone,
// so silently re-binning would produce a model that matches no source
// run. A non-quantized mismatch simply falls back to sketching.
func (t *trainer) usablePrebin() (*datasets.Prebin, error) {
	pb := t.ds.Prebin
	if pb.Matches(t.cfg.SketchEps, t.cfg.Splits) {
		return pb, nil
	}
	if pb != nil && pb.Quantized {
		return nil, fmt.Errorf("core: dataset was binned with eps=%v q=%d but training wants eps=%v q=%d; re-ingest the source or match the cache parameters",
			pb.SketchEps, pb.Q, t.cfg.SketchEps, t.cfg.Splits)
	}
	return nil, nil
}

// adoptPrebin installs ingestion-derived candidate splits, charging only
// the split broadcast: the sketch build and exchange were already paid at
// ingestion time, which is exactly the preparation cost a warm cache
// removes.
func (t *trainer) adoptPrebin(pb *datasets.Prebin) []int64 {
	t.binner = &sparse.Binner{Splits: pb.Splits}
	t.numBinsGlobal = make([]int, t.d)
	var splitBytes int64
	for f := 0; f < t.d; f++ {
		t.numBinsGlobal[f] = len(pb.Splits[f])
		splitBytes += int64(len(pb.Splits[f])) * 4
	}
	t.cl.Broadcast("prep.sketch", splitBytes)
	return pb.FeatCount
}

// distributedSketch builds worker-local quantile sketches (timed and
// charged like the real systems do), then derives canonical candidate
// splits and per-feature value counts. Canonical means partitioning-
// independent: splits come from one global row-order sketch per feature,
// so every quadrant and every worker count yields bit-identical models —
// the property the paper relies on when comparing quadrants "in the same
// code base". A dataset that arrives with matching ingestion-derived
// splits (datasets.Prebin) skips the sketch pass entirely; the splits are
// identical by construction, so so is the model.
func (t *trainer) distributedSketch() ([]int64, error) {
	pb, err := t.usablePrebin()
	if err != nil {
		return nil, err
	}
	if pb != nil {
		return t.adoptPrebin(pb), nil
	}
	if t.ds.Shard != nil {
		// Unreachable through Train (validateShard requires a quantized
		// prebin), kept as a hard stop for direct callers: sketching a shard
		// would derive splits from a fraction of the values.
		return nil, fmt.Errorf("core: cannot sketch candidate splits from a rank shard; load shards with ingest.ReadCacheShard so the cache's splits ride along")
	}
	local := make([][]*sketch.GK, t.w)
	t.cl.Parallel("prep.sketch", func(w int) {
		sks := make([]*sketch.GK, t.d)
		lo, hi := t.ranges[w][0], t.ranges[w][1]
		for i := lo; i < hi; i++ {
			feats, vals := t.ds.X.Row(i)
			for k, f := range feats {
				if sks[f] == nil {
					sks[f] = sketch.New(t.cfg.SketchEps)
				}
				sks[f].Add(float64(vals[k]))
			}
		}
		local[w] = sks
	})
	var sketchBytes int64
	for f := 0; f < t.d; f++ {
		for w := 0; w < t.w; w++ {
			if local[w][f] != nil {
				sketchBytes += int64(local[w][f].NumTuples()) * 16
			}
		}
	}
	t.cl.ChargeComm("prep.sketch", cluster.OpAllReduce, sketchBytes, t.commSeconds(sketchBytes, t.w-1))

	global := sketch.Canonical(t.ds.X, t.cfg.SketchEps)
	t.binner = &sparse.Binner{Splits: make([][]float32, t.d)}
	t.numBinsGlobal = make([]int, t.d)
	featCount := make([]int64, t.d)
	var splitBytes int64
	for f := 0; f < t.d; f++ {
		if global[f] == nil {
			continue
		}
		t.binner.Splits[f] = global[f].CandidateSplits(t.cfg.Splits)
		t.numBinsGlobal[f] = len(t.binner.Splits[f])
		featCount[f] = global[f].Count()
		splitBytes += int64(len(t.binner.Splits[f])) * 4
	}
	t.cl.Broadcast("prep.sketch", splitBytes)
	return featCount, nil
}

// commSeconds converts a byte volume into simulated seconds under the
// cluster's network model with the given number of latency steps.
func (t *trainer) commSeconds(bytes int64, steps int) float64 {
	net := t.cl.Net()
	return float64(steps)*net.LatencySec + float64(bytes)/net.BandwidthBytesPerSec
}

func binnedCSRBytes(m *sparse.BinnedCSR) int64 {
	return int64(len(m.RowPtr))*8 + int64(m.NNZ())*6
}

func binnedCSCBytes(m *sparse.BinnedCSC) int64 {
	return int64(len(m.ColPtr))*8 + int64(m.NNZ())*6
}
