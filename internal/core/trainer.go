package core

import (
	"vero/internal/cluster"
	"vero/internal/datasets"
	"vero/internal/histogram"
	"vero/internal/index"
	"vero/internal/loss"
	"vero/internal/partition"
	"vero/internal/sparse"
	"vero/internal/tree"
)

// Phase labels used in the cluster's statistics.
const (
	phaseGrad   = "train.gradient"
	phaseHist   = "train.histogram"
	phaseSplit  = "train.split"
	phaseNode   = "train.node"
	phaseUpdate = "train.update"
)

const noParent = int32(-1)

// nodeInfo tracks one active tree node during layer-wise growth.
type nodeInfo struct {
	id     int32
	count  int
	totalG []float64
	totalH []float64
	// buildDirect marks nodes whose histograms are constructed by
	// scanning instances; the sibling of a built node is derived by
	// subtraction when the quadrant supports it.
	buildDirect bool
	parent      int32
}

// resolvedSplit is a node's winning split translated to global feature ids.
type resolvedSplit struct {
	node        int32
	feature     int // global feature id
	bin         int
	gain        float64
	defaultLeft bool
	valid       bool
}

type trainer struct {
	cl  *cluster.Cluster
	cfg Config
	ds  *datasets.Dataset
	obj loss.Objective

	n, d, c, w int
	finder     histogram.Finder
	// pool recycles histogram buffers across nodes, layers and trees; all
	// histogram allocation in the training loop goes through it.
	pool *histogram.Pool
	// flatG/flatH are per-worker arena scratch for the routed column-scan
	// kernel: one flat buffer pair holds every histogram a worker builds in
	// a layer, reused (and re-zeroed) layer after layer.
	flatG, flatH [][]float64

	binner        *sparse.Binner
	numBinsGlobal []int
	maxBins       int

	preds, grads, hessv []float64   // n*c, row-major
	scratch             [][]float64 // per-worker redundant-compute buffers (vertical)

	// Horizontal state (QD1/QD2).
	ranges  [][2]int
	hRows   []*sparse.BinnedCSR // QD2: per-worker row shards
	hCols   []*sparse.BinnedCSC // QD1: per-worker column views of row shards
	hN2I    []*index.NodeToInstance
	hI2N    []*index.InstanceToNode
	aggHist map[int32]*histogram.Hist
	layoutH histogram.Layout

	// Vertical state (QD3/QD4).
	groups   [][]int
	ownerOf  []int32             // global feature -> worker
	slotOf   []int32             // global feature -> slot within its group
	shards   []*partition.Shard  // QD4
	fullRows *sparse.BinnedCSR   // QD4 FullCopy (feature-parallel)
	vCols    []*sparse.BinnedCSC // QD3: per-worker full columns (slot-indexed)
	vNumBins [][]int             // per worker, per slot
	vN2I     []*index.NodeToInstance
	vI2N     []*index.InstanceToNode // QD3 hybrid
	vCW      []*index.ColumnWise     // QD3 column-wise (Yggdrasil)
	vHist    []map[int32]*histogram.Hist
	vLayout  []histogram.Layout

	transformBytes partition.ByteReport
}

// allocRunState allocates the per-run prediction and gradient buffers
// (plus the vertical quadrants' redundant-compute scratch), seeding every
// instance's predictions with initScore.
func (t *trainer) allocRunState(initScore []float64) {
	t.preds = make([]float64, t.n*t.c)
	for i := 0; i < t.n; i++ {
		copy(t.preds[i*t.c:(i+1)*t.c], initScore)
	}
	t.grads = make([]float64, t.n*t.c)
	t.hessv = make([]float64, t.n*t.c)
	if t.cfg.Quadrant.Vertical() {
		t.scratch = make([][]float64, t.w)
		for w := 1; w < t.w; w++ {
			t.scratch[w] = make([]float64, t.n*t.c)
		}
	}
}

func (t *trainer) run() (*Result, error) {
	initScore := t.obj.InitScore(t.ds.Labels)
	t.allocRunState(initScore)
	forest := tree.NewForest(t.c, t.cfg.LearningRate, initScore, t.obj.Name(), t.d)

	prepComp, prepComm, _ := t.cl.Stats().Totals()
	lastComp, lastComm := prepComp, prepComm
	res := &Result{Forest: forest, PrepSeconds: prepComp + prepComm, TransformBytes: t.transformBytes}

	for ti := 0; ti < t.cfg.Trees; ti++ {
		t.computeGradients()
		tr := t.trainTree()
		forest.Append(tr)
		comp, comm, _ := t.cl.Stats().Totals()
		res.PerTreeSeconds = append(res.PerTreeSeconds, (comp-lastComp)+(comm-lastComm))
		lastComp, lastComm = comp, comm
		if t.cfg.OnTree != nil {
			t.cfg.OnTree(ti, (comp-prepComp)+(comm-prepComm), tr)
		}
		if t.cfg.ShouldStop != nil && t.cfg.ShouldStop(ti) {
			break
		}
	}
	// Release the final tree's remaining histograms (the last layer's
	// split parents, kept for subtraction, are otherwise only cleared
	// lazily at the next tree's start) so the memory gauge balances.
	t.clearHists()
	comp, comm, _ := t.cl.Stats().Totals()
	res.CompSeconds = comp
	res.CommSeconds = comm
	return res, nil
}

// computeGradients refreshes the per-instance gradient vectors. Horizontal
// workers each process their own row range; vertical workers all process
// every instance, because each needs the gradients of all instances to
// build histograms for its feature subset (labels were broadcast for
// exactly this purpose, Section 4.2.1 step 5).
func (t *trainer) computeGradients() {
	labels := t.ds.Labels
	if t.cfg.Quadrant.Vertical() {
		t.cl.Parallel(phaseGrad, func(w int) {
			g, h := t.grads, t.hessv
			if w != 0 {
				g = t.scratch[w][:t.n*t.c]
				h = t.scratch[w][:t.n*t.c] // same buffer: redundant work, discarded
			}
			for i := 0; i < t.n; i++ {
				t.obj.GradHess(t.preds[i*t.c:(i+1)*t.c], labels[i], g[i*t.c:(i+1)*t.c], h[i*t.c:(i+1)*t.c])
			}
		})
		return
	}
	t.cl.Parallel(phaseGrad, func(w int) {
		lo, hi := t.ranges[w][0], t.ranges[w][1]
		for i := lo; i < hi; i++ {
			t.obj.GradHess(t.preds[i*t.c:(i+1)*t.c], labels[i], t.grads[i*t.c:(i+1)*t.c], t.hessv[i*t.c:(i+1)*t.c])
		}
	})
}

// trainTree grows one tree layer by layer.
func (t *trainer) trainTree() *tree.Tree {
	tr := tree.New(t.c)
	t.resetIndexes()
	t.clearHists()

	root := &nodeInfo{id: tr.Root(), count: t.n, buildDirect: true, parent: noParent}
	root.totalG, root.totalH = t.rootTotals()
	frontier := []*nodeInfo{root}

	for layer := 1; layer < t.cfg.Layers && len(frontier) > 0; layer++ {
		var toBuild, toDerive []*nodeInfo
		for _, nd := range frontier {
			if nd.buildDirect {
				toBuild = append(toBuild, nd)
			} else {
				toDerive = append(toDerive, nd)
			}
		}
		t.buildHistograms(toBuild)
		t.deriveHistograms(toDerive)
		splits := t.findSplits(frontier)
		frontier = t.applySplits(tr, frontier, splits)
	}
	for _, nd := range frontier {
		t.setLeaf(tr, nd)
		t.dropHist(nd.id)
	}
	t.updatePredictions(tr)
	return tr
}

func (t *trainer) setLeaf(tr *tree.Tree, nd *nodeInfo) {
	tr.SetLeaf(nd.id, t.finder.LeafWeights(nd.totalG, nd.totalH))
}

// applySplits finalizes leaves, splits the rest, propagates placements and
// computes child statistics. It returns the next layer's frontier.
func (t *trainer) applySplits(tr *tree.Tree, frontier []*nodeInfo, splits map[int32]resolvedSplit) []*nodeInfo {
	type splitJob struct {
		parent *nodeInfo
		sp     resolvedSplit
		left   int32
		right  int32
	}
	var jobs []*splitJob
	for _, nd := range frontier {
		sp, ok := splits[nd.id]
		if !ok || !sp.valid {
			t.setLeaf(tr, nd)
			t.dropHist(nd.id)
			continue
		}
		splitValue := t.binner.Splits[sp.feature][sp.bin]
		l, r := tr.Split(nd.id, int32(sp.feature), splitValue, uint16(sp.bin), sp.defaultLeft, sp.gain)
		jobs = append(jobs, &splitJob{parent: nd, sp: sp, left: l, right: r})
	}
	if len(jobs) == 0 {
		return nil
	}

	layerSplits := make(map[int32]resolvedSplit, len(jobs))
	children := make(map[int32][2]int32, len(jobs))
	for _, j := range jobs {
		layerSplits[j.parent.id] = j.sp
		children[j.parent.id] = [2]int32{j.left, j.right}
	}
	t.applyLayer(layerSplits, children)

	// QD1 cannot exploit subtraction: drop parent histograms now.
	if t.cfg.Quadrant == QD1 {
		for _, j := range jobs {
			t.dropHist(j.parent.id)
		}
	}

	var next []*nodeInfo
	for _, j := range jobs {
		left := &nodeInfo{id: j.left, parent: j.parent.id}
		right := &nodeInfo{id: j.right, parent: j.parent.id}
		next = append(next, left, right)
	}
	t.childStats(next)
	// Histogram subtraction schedule: build the smaller child, derive the
	// sibling (Section 2.1.2). Without subtraction both children build.
	for i := 0; i < len(next); i += 2 {
		l, r := next[i], next[i+1]
		if t.cfg.Quadrant == QD1 {
			l.buildDirect, r.buildDirect = true, true
			continue
		}
		if l.count <= r.count {
			l.buildDirect = true
		} else {
			r.buildDirect = true
		}
	}
	return next
}

// histMapFor abstracts over the aggregated map (horizontal) and the
// per-worker maps (vertical).
func (t *trainer) clearHists() {
	g := t.cl.Stats().Mem("histogram")
	if t.cfg.Quadrant.Vertical() {
		for w := range t.vHist {
			for id, h := range t.vHist[w] {
				g.Add(w, -t.vLayout[w].SizeBytes())
				t.pool.Put(h)
				delete(t.vHist[w], id)
			}
		}
		return
	}
	for id, h := range t.aggHist {
		for w := 0; w < t.w; w++ {
			g.Add(w, -t.layoutH.SizeBytes())
		}
		t.pool.Put(h)
		delete(t.aggHist, id)
	}
}

func (t *trainer) dropHist(id int32) {
	g := t.cl.Stats().Mem("histogram")
	if t.cfg.Quadrant.Vertical() {
		for w := range t.vHist {
			if h, ok := t.vHist[w][id]; ok {
				g.Add(w, -t.vLayout[w].SizeBytes())
				t.pool.Put(h)
				delete(t.vHist[w], id)
			}
		}
		return
	}
	if h, ok := t.aggHist[id]; ok {
		for w := 0; w < t.w; w++ {
			g.Add(w, -t.layoutH.SizeBytes())
		}
		t.pool.Put(h)
		delete(t.aggHist, id)
	}
}

// deriveHistograms computes each node's histogram as parent minus built
// sibling, reusing the parent's storage (the parent entry is consumed).
func (t *trainer) deriveHistograms(toDerive []*nodeInfo) {
	if len(toDerive) == 0 {
		return
	}
	if t.cfg.Quadrant.Vertical() {
		t.cl.Parallel(phaseHist, func(w int) {
			hm := t.vHist[w]
			for _, nd := range toDerive {
				parent := hm[nd.parent]
				sibling := hm[siblingOf(nd)]
				parent.Sub(sibling)
				hm[nd.id] = parent
				delete(hm, nd.parent)
			}
		})
		return
	}
	t.cl.Parallel(phaseHist, func(w int) {
		if w != 0 {
			return // aggregated histograms are logically replicated; derive once
		}
		for _, nd := range toDerive {
			parent := t.aggHist[nd.parent]
			sibling := t.aggHist[siblingOf(nd)]
			parent.Sub(sibling)
			t.aggHist[nd.id] = parent
			delete(t.aggHist, nd.parent)
		}
	})
}

// flatScratch returns worker w's zeroed arena scratch of n floats per
// side, growing the buffers when a layer needs more histogram slots than
// any before it.
func (t *trainer) flatScratch(w, n int) (g, h []float64) {
	if cap(t.flatG[w]) < n {
		t.flatG[w] = make([]float64, n)
		t.flatH[w] = make([]float64, n)
	} else {
		t.flatG[w] = t.flatG[w][:n]
		t.flatH[w] = t.flatH[w][:n]
		clear(t.flatG[w])
		clear(t.flatH[w])
	}
	return t.flatG[w], t.flatH[w]
}

// siblingOf returns the sibling's node id: children are always created in
// pairs (left = parent's recorded left child).
func siblingOf(nd *nodeInfo) int32 {
	// Children pairs are allocated adjacently by tree.Split: left is even
	// offset, right = left+1. The derive node's sibling is the adjacent id.
	if nd.id%2 == 1 { // left children have odd ids (root=0, then 1,2,3,4...)
		return nd.id + 1
	}
	return nd.id - 1
}

// dispatch methods — quadrant-specific implementations live in
// horizontal.go and vertical.go.

func (t *trainer) resetIndexes() {
	switch t.cfg.Quadrant {
	case QD1:
		for _, idx := range t.hI2N {
			idx.Reset()
		}
	case QD2:
		for _, idx := range t.hN2I {
			idx.Reset()
		}
	case QD3:
		for _, idx := range t.vN2I {
			idx.Reset()
		}
		for _, idx := range t.vI2N {
			idx.Reset()
		}
		for _, idx := range t.vCW {
			idx.Reset()
		}
	case QD4:
		for _, idx := range t.vN2I {
			idx.Reset()
		}
	}
}

func (t *trainer) rootTotals() ([]float64, []float64) {
	if t.cfg.Quadrant.Vertical() {
		return t.verticalRootTotals()
	}
	return t.horizontalRootTotals()
}

func (t *trainer) buildHistograms(toBuild []*nodeInfo) {
	if len(toBuild) == 0 {
		return
	}
	if t.cfg.Quadrant.Vertical() {
		t.verticalBuildHistograms(toBuild)
		return
	}
	t.horizontalBuildHistograms(toBuild)
}

func (t *trainer) findSplits(frontier []*nodeInfo) map[int32]resolvedSplit {
	if t.cfg.Quadrant.Vertical() {
		return t.verticalFindSplits(frontier)
	}
	return t.horizontalFindSplits(frontier)
}

func (t *trainer) applyLayer(splits map[int32]resolvedSplit, children map[int32][2]int32) {
	if t.cfg.Quadrant.Vertical() {
		t.verticalApplyLayer(splits, children)
		return
	}
	t.horizontalApplyLayer(splits, children)
}

func (t *trainer) childStats(nodes []*nodeInfo) {
	if t.cfg.Quadrant.Vertical() {
		t.verticalChildStats(nodes)
		return
	}
	t.horizontalChildStats(nodes)
}

func (t *trainer) updatePredictions(tr *tree.Tree) {
	if t.cfg.Quadrant.Vertical() {
		t.verticalUpdatePredictions(tr)
		return
	}
	t.horizontalUpdatePredictions(tr)
}
