package gbdt

import (
	"strings"
	"testing"
)

// TestModelRoundTripBitExact pins the serialization contract: a model
// saved with Encode and reloaded with DecodeModel must predict bit-exactly
// the same margins for every task type. This is what makes a model trained
// here and served by cmd/veroserve trustworthy.
func TestModelRoundTripBitExact(t *testing.T) {
	for _, tc := range []struct {
		name    string
		classes int
	}{
		{"regression", 1},
		{"binary", 2},
		{"multiclass", 4},
	} {
		t.Run(tc.name, func(t *testing.T) {
			model, ds := trainSmall(t, tc.classes)
			data, err := model.Encode()
			if err != nil {
				t.Fatal(err)
			}
			decoded, err := DecodeModel(data)
			if err != nil {
				t.Fatal(err)
			}
			if decoded.NumTrees() != model.NumTrees() {
				t.Fatalf("decoded %d trees, want %d", decoded.NumTrees(), model.NumTrees())
			}
			f, g := model.Forest(), decoded.Forest()
			if f.NumClass != g.NumClass || f.LearningRate != g.LearningRate ||
				f.Objective != g.Objective || f.NumFeature != g.NumFeature {
				t.Fatalf("forest metadata changed: %+v vs %+v",
					[4]any{f.NumClass, f.LearningRate, f.Objective, f.NumFeature},
					[4]any{g.NumClass, g.LearningRate, g.Objective, g.NumFeature})
			}
			want := model.Predict(ds)
			got := decoded.Predict(ds)
			for i := range want {
				if got[i] != want[i] {
					t.Fatalf("%s: prediction %d changed across Encode/Decode: %v != %v",
						tc.name, i, got[i], want[i])
				}
			}
			// Second round trip is byte-identical (canonical encoding).
			data2, err := decoded.Encode()
			if err != nil {
				t.Fatal(err)
			}
			if string(data) != string(data2) {
				t.Fatal("Encode is not canonical: re-encoding a decoded model changed bytes")
			}
		})
	}
}

// TestDecodeModelRejectsCorruptStructure pins that malformed node links
// fail loudly at load time instead of silently misrouting predictions.
func TestDecodeModelRejectsCorruptStructure(t *testing.T) {
	for _, tc := range []struct {
		name, data string
	}{
		{"interior_nochild", `{"num_class":1,"learning_rate":0.3,
			"trees":[{"num_class":1,"nodes":[
				{"feature":0,"split_value":0.5,"left":-1,"right":-1}]}]}`},
		{"backward_link", `{"num_class":1,"learning_rate":0.3,
			"trees":[{"num_class":1,"nodes":[
				{"feature":0,"split_value":0.5,"left":0,"right":1},
				{"feature":-1,"left":-1,"right":-1,"weights":[1]}]}]}`},
		{"leaf_wrong_weights", `{"num_class":2,"learning_rate":0.3,
			"trees":[{"num_class":2,"nodes":[
				{"feature":-1,"left":-1,"right":-1,"weights":[1]}]}]}`},
		{"empty_tree", `{"num_class":1,"learning_rate":0.3,
			"trees":[{"num_class":1,"nodes":[]}]}`},
	} {
		t.Run(tc.name, func(t *testing.T) {
			if _, err := DecodeModel([]byte(tc.data)); err == nil {
				t.Fatal("corrupt model decoded without error")
			} else if !strings.Contains(err.Error(), "tree:") {
				t.Fatalf("unexpected error: %v", err)
			}
		})
	}
}
