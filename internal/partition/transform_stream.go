package partition

import (
	"fmt"

	"vero/internal/cluster"
	"vero/internal/datasets"
	"vero/internal/sparse"
)

// StreamResult is the output of the streamed horizontal-to-vertical
// transformation: the column grouping and binner the engine trains
// against, and the wire report. Unlike Transform's Result it carries no
// shards — the repartitioned rows stay on disk and are rebuilt
// block-by-block by the trainer.
type StreamResult struct {
	Groups [][]int
	Binner *sparse.Binner
	Bytes  ByteReport
}

// TransformStreamed is the out-of-core variant of Transform: it computes
// the column grouping and charges the transformation's wire costs
// (Section 4.2.1 steps 2-5) from an on-disk block source without
// materializing per-worker shards. It requires ingestion-derived splits
// (Options.Splits/FeatCount): a .vbin-backed dataset always has them, and
// sketching would need the raw values the binned cache no longer stores.
//
// The byte report matches Transform's for the same data exactly: each
// (source, destination) cell's row and entry counts are identical, only
// the counting is done by binary searches on the mapped columns instead
// of walks over materialized blocks.
func TransformStreamed(cl *cluster.Cluster, src datasets.BlockSource, labels []float32, opts Options) (*StreamResult, error) {
	if err := opts.setDefaults(); err != nil {
		return nil, err
	}
	rows, d := src.Rows(), src.Cols()
	if rows != len(labels) {
		return nil, fmt.Errorf("partition: %d rows but %d labels", rows, len(labels))
	}
	if opts.Splits == nil || opts.FeatCount == nil {
		return nil, fmt.Errorf("partition: streamed transformation requires ingestion-derived splits (train from a .vbin cache)")
	}
	if len(opts.Splits) != d || len(opts.FeatCount) != d {
		return nil, fmt.Errorf("partition: prebin covers %d features, matrix has %d", len(opts.Splits), d)
	}
	w := cl.Workers()
	ranges := HorizontalRanges(rows, w)
	var report ByteReport

	// Step 2 (warm): broadcast the ingestion-derived candidate splits.
	binner := &sparse.Binner{Splits: opts.Splits}
	var splitBytes int64
	for f := 0; f < d; f++ {
		splitBytes += int64(len(opts.Splits[f])) * 4
	}
	cl.Broadcast("transform.splits", splitBytes)
	report.SplitBroadcast = splitBytes

	// Step 3: column grouping. The per-(source, destination) entry counts
	// that size the repartition come from two binary searches per
	// (feature, source) on the mapped columns.
	groups := GroupColumnsBalanced(opts.FeatCount, w)
	groupOf := make([]int32, d)
	for g, feats := range groups {
		for _, f := range feats {
			groupOf[f] = int32(g)
		}
	}
	nnz := make([][]int64, w)
	for i := range nnz {
		nnz[i] = make([]int64, w)
	}
	errs := make([]error, w)
	cl.Parallel("transform.group", func(srcW int) {
		lo, hi := ranges[srcW][0], ranges[srcW][1]
		for f := 0; f < d; f++ {
			clo, chi := src.ColRange(f)
			from, err := src.SearchInst(clo, chi, uint32(lo))
			if err != nil {
				errs[srcW] = err
				return
			}
			to := chi
			if hi < rows {
				if to, err = src.SearchInst(from, chi, uint32(hi)); err != nil {
					errs[srcW] = err
					return
				}
			}
			nnz[srcW][groupOf[f]] += to - from
		}
	})
	if err := cluster.FirstError(errs); err != nil {
		return nil, err
	}

	// Step 4: charge the selected repartition variant; report all three.
	naive := make([][]int64, w)
	compressed := make([][]int64, w)
	blockified := make([][]int64, w)
	binWidth := BinWidthBytes(opts.Q)
	for s := 0; s < w; s++ {
		naive[s] = make([]int64, w)
		compressed[s] = make([]int64, w)
		blockified[s] = make([]int64, w)
		nrows := int64(ranges[s][1] - ranges[s][0])
		for dst := 0; dst < w; dst++ {
			n := nnz[s][dst]
			fw := FeatWidthBytes(len(groups[dst]))
			naive[s][dst] = n*naiveKVBytes + nrows*perObjectOverheadBytes
			compressed[s][dst] = n*(fw+binWidth) + nrows*perObjectOverheadBytes
			// Block wire image (Block.WireSizeBytes): 16-byte header,
			// nrows+1 row pointers at 4 bytes, packed entries.
			blockified[s][dst] = 16 + (nrows+1)*4 + n*(fw+binWidth)
		}
	}
	sumOffDiag := func(m [][]int64) int64 {
		var t int64
		for i := range m {
			for j := range m[i] {
				if i != j {
					t += m[i][j]
				}
			}
		}
		return t
	}
	report.NaiveShuffle = sumOffDiag(naive)
	report.CompressedShuffle = sumOffDiag(compressed)
	report.BlockifiedShuffle = sumOffDiag(blockified)
	switch opts.Charge {
	case VariantNaive:
		cl.Shuffle("transform.repartition", naive)
	case VariantCompressed:
		cl.Shuffle("transform.repartition", compressed)
	default:
		cl.Shuffle("transform.repartition", blockified)
	}

	// Step 5: label gather + broadcast.
	labelBytes := int64(len(labels)) * 4
	cl.PointToPoint("transform.labels", labelBytes)
	cl.Broadcast("transform.labels", labelBytes)
	report.LabelBroadcast = labelBytes

	return &StreamResult{Groups: groups, Binner: binner, Bytes: report}, nil
}
