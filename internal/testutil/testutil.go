// Package testutil holds the synthetic-dataset builders shared by test
// files across gbdt, internal/core and internal/serve, so each package
// does not grow its own copy of the generate-or-fatal boilerplate.
//
// The package deliberately depends only on internal/datasets: test files
// inside package gbdt import it too, and any dependency on gbdt here
// would cycle through their test binary.
package testutil

import (
	"testing"

	"vero/internal/datasets"
)

// Classification generates a synthetic classification dataset from an
// explicit config, failing the test on error. Use this when a test pins
// exact generator parameters; Binary and Multi cover the common shapes.
func Classification(tb testing.TB, cfg datasets.SyntheticConfig) *datasets.Dataset {
	tb.Helper()
	ds, err := datasets.Synthetic(cfg)
	if err != nil {
		tb.Fatal(err)
	}
	return ds
}

// Binary generates a deterministic binary-classification dataset with the
// trainer tests' standard informative ratio (0.4).
func Binary(tb testing.TB, n, d int, density float64, seed int64) *datasets.Dataset {
	tb.Helper()
	return Classification(tb, datasets.SyntheticConfig{
		N: n, D: d, C: 2, InformativeRatio: 0.4, Density: density, Seed: seed,
	})
}

// Multi generates a deterministic multi-class dataset with the trainer
// tests' standard informative ratio (0.4).
func Multi(tb testing.TB, n, d, c int, density float64, seed int64) *datasets.Dataset {
	tb.Helper()
	return Classification(tb, datasets.SyntheticConfig{
		N: n, D: d, C: c, InformativeRatio: 0.4, Density: density, Seed: seed,
	})
}

// Regression generates a deterministic regression dataset y = x.w + noise,
// failing the test on error.
func Regression(tb testing.TB, n, d int, density, noise float64, seed int64) *datasets.Dataset {
	tb.Helper()
	ds, err := datasets.SyntheticRegression(n, d, density, noise, seed)
	if err != nil {
		tb.Fatal(err)
	}
	return ds
}
