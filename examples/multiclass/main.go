// Multiclass: the Section 5.3 multi-classification scenario in miniature.
// Trains an RCV1-multi-like workload with XGBoost-, LightGBM- and
// Vero-style policies and prints convergence trajectories (validation
// accuracy vs simulated time) — the paper's Figure 11(g).
//
// Multi-classification multiplies histogram size by the class count, so
// horizontal aggregation volume explodes while Vero's placement broadcast
// stays constant — this example shows that gap directly.
package main

import (
	"fmt"
	"log"

	"vero/gbdt"
)

func main() {
	ds, err := gbdt.NamedDataset("rcv1-multi", 1)
	if err != nil {
		log.Fatal(err)
	}
	train, valid := ds.Split(0.8, 3)
	fmt.Printf("dataset: rcv1-multi simulacrum, %d x %d, %d classes\n\n",
		train.NumInstances(), train.NumFeatures(), ds.NumClass)

	for _, sys := range []gbdt.System{gbdt.SystemXGBoost, gbdt.SystemLightGBM, gbdt.SystemVero} {
		// Incrementally score the validation set as trees arrive.
		margins := make([]float64, valid.NumInstances()*ds.NumClass)
		type point struct {
			sec float64
			acc float64
		}
		var curve []point
		model, report, err := gbdt.Train(train, gbdt.Options{
			System: sys, Workers: 8, Trees: 10, Layers: 6,
			OnTree: func(_ int, elapsed float64, tr *gbdt.Tree) {
				for i := 0; i < valid.NumInstances(); i++ {
					feat, val := valid.X.Row(i)
					tr.Predict(feat, val, 0.3, margins[i*ds.NumClass:(i+1)*ds.NumClass])
				}
				correct := 0
				for i := 0; i < valid.NumInstances(); i++ {
					best := 0
					for k := 1; k < ds.NumClass; k++ {
						if margins[i*ds.NumClass+k] > margins[i*ds.NumClass+best] {
							best = k
						}
					}
					if best == int(valid.Labels[i]) {
						correct++
					}
				}
				curve = append(curve, point{elapsed, float64(correct) / float64(valid.NumInstances())})
			},
		})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-10s final accuracy %.4f, comm volume %.1f MB, histogram peak %.1f MB\n",
			sys, gbdt.Accuracy(model, valid),
			float64(report.CommBytes)/(1<<20),
			float64(report.HistogramPeakBytes)/(1<<20))
		fmt.Print("           curve:")
		for _, p := range curve {
			fmt.Printf(" (%.2fs, %.3f)", p.sec, p.acc)
		}
		fmt.Println()
	}
}
