package ingest

import (
	"fmt"
	"math"

	"vero/internal/datasets"
	"vero/internal/partition"
	"vero/internal/sparse"
)

// shardChunk bounds the scratch of one shard-materialization read, so
// loading a shard never stages more than a fixed slice of the entry
// sections no matter how large the cache is.
const shardChunk = 32 << 10

// ReadCacheShard opens a .vbin cache and materializes only rank's shard
// of it: the rank's row range (ShardRows, horizontal quadrants) or its
// balanced feature group (ShardCols, vertical quadrants). The shard
// bounds derive deterministically from (rank, workers, kind) via
// partition.HorizontalRanges / partition.GroupColumnsBalanced, so every
// rank of a deployment carves the same image identically.
//
// The returned dataset keeps the global n×d shape — X holds entries only
// inside the shard, while labels and the quantized Prebin stay full (the
// objective's init score and every engine's split tables need them) — and
// carries a datasets.Shard describing the slice, including the global
// entry counts communication charges must be derived from. Reads go
// through the mapped view, so only the shard's pages (plus the metadata
// and a binary-search trail) are ever touched: a rank materializes
// O(nnz/W) entries of an image no single rank could hold.
func ReadCacheShard(path string, kind datasets.ShardKind, rank, workers int) (*datasets.Dataset, error) {
	if workers <= 0 {
		return nil, fmt.Errorf("ingest: shard load: worker count %d", workers)
	}
	if rank < 0 || rank >= workers {
		return nil, fmt.Errorf("ingest: shard load: rank %d outside deployment of %d", rank, workers)
	}
	if kind != datasets.ShardRows && kind != datasets.ShardCols {
		return nil, fmt.Errorf("ingest: shard load: unknown shard kind %q", kind)
	}
	m, err := MapCacheFile(path)
	if err != nil {
		return nil, err
	}
	defer m.Close()
	return shardFromView(m, kind, rank, workers)
}

// shardFromView materializes one rank's shard from an open cache view.
func shardFromView(m *MappedCache, kind datasets.ShardKind, rank, workers int) (*datasets.Dataset, error) {
	rows, cols := m.Rows(), m.Cols()
	ranges := partition.HorizontalRanges(rows, workers)

	// Per-column selected entry range [sel[j], sel[j+1]) in global entry
	// space; empty for columns (or row spans) outside the shard.
	selLo := make([]int64, cols)
	selHi := make([]int64, cols)
	shard := &datasets.Shard{
		Kind:        kind,
		Rank:        rank,
		Workers:     workers,
		Fingerprint: m.Fingerprint(),
		GlobalNNZ:   m.NNZ(),
	}
	switch kind {
	case datasets.ShardRows:
		rlo, rhi := ranges[rank][0], ranges[rank][1]
		for j := 0; j < cols; j++ {
			glo, ghi := m.ColRange(j)
			lo, err := m.SearchInst(glo, ghi, uint32(rlo))
			if err != nil {
				return nil, err
			}
			hi := ghi
			if rhi < rows {
				if hi, err = m.SearchInst(lo, ghi, uint32(rhi)); err != nil {
					return nil, err
				}
			}
			selLo[j], selHi[j] = lo, hi
		}
	case datasets.ShardCols:
		groups := partition.GroupColumnsBalanced(m.featCount, workers)
		for _, f := range groups[rank] {
			selLo[f], selHi[f] = m.ColRange(f)
		}
		groupOf := make([]int, cols)
		for g, feats := range groups {
			for _, f := range feats {
				groupOf[f] = g
			}
		}
		// GroupNNZ[src][dst]: entries in horizontal range src belonging to
		// feature group dst — the charge matrix of the QD4 transformation,
		// derived from the column index alone so every rank computes the
		// identical volumes without touching remote shards.
		gnnz := make([][]int64, workers)
		for s := range gnnz {
			gnnz[s] = make([]int64, workers)
		}
		for f := 0; f < cols; f++ {
			glo, ghi := m.ColRange(f)
			pos := glo
			for s := 0; s < workers; s++ {
				hi := ghi
				if ranges[s][1] < rows {
					var err error
					if hi, err = m.SearchInst(pos, ghi, uint32(ranges[s][1])); err != nil {
						return nil, err
					}
				}
				gnnz[s][groupOf[f]] += hi - pos
				pos = hi
			}
		}
		shard.GroupNNZ = gnnz
	}

	// Count pass: per-row entry tallies of the selected ranges.
	instBuf := make([]uint32, shardChunk)
	binBuf := make([]uint16, shardChunk)
	rowCnt := make([]int64, rows+1)
	var localNNZ int64
	for j := 0; j < cols; j++ {
		for lo, hi := selLo[j], selHi[j]; lo < hi; {
			n := min(hi-lo, shardChunk)
			insts, _, err := m.Entries(lo, lo+n, instBuf, binBuf)
			if err != nil {
				return nil, err
			}
			for _, i := range insts {
				rowCnt[i+1]++
			}
			localNNZ += n
			lo += n
		}
	}
	rowPtr := make([]int64, rows+1)
	for i := 0; i < rows; i++ {
		rowPtr[i+1] = rowPtr[i] + rowCnt[i+1]
	}

	// Fill pass: columns ascending, instances ascending within a column —
	// the same transposition ReadCache performs, so values come out in the
	// identical order and bit pattern (bin representatives; NaN for
	// features binned without splits).
	feat := make([]uint32, localNNZ)
	val := make([]float32, localNNZ)
	next := make([]int64, rows)
	copy(next, rowPtr[:rows])
	nan := float32(math.NaN())
	for j := 0; j < cols; j++ {
		s := m.splits[j]
		for lo, hi := selLo[j], selHi[j]; lo < hi; {
			n := min(hi-lo, shardChunk)
			insts, bins, err := m.Entries(lo, lo+n, instBuf, binBuf)
			if err != nil {
				return nil, err
			}
			for k, i := range insts {
				p := next[i]
				feat[p] = uint32(j)
				if int(bins[k]) < len(s) {
					val[p] = s[bins[k]]
				} else if len(s) == 0 && bins[k] == 0 {
					val[p] = nan
				} else {
					return nil, corruptf("bin %d of feature %d out of range (%d bins)", bins[k], j, len(s))
				}
				next[i] = p + 1
			}
			lo += n
		}
	}
	x, err := sparse.NewCSR(rows, cols, rowPtr, feat, val)
	if err != nil {
		return nil, corruptf("%v", err)
	}
	ds := m.Dataset()
	ds.X = x
	ds.Blocks = nil
	ds.Shard = shard
	return ds, nil
}
