// Transformation: the five-step horizontal-to-vertical transformation of
// Section 4.2.1, run step by step on a synthetic sparse dataset, printing
// the wire volumes of the naive / compressed / blockified variants
// (Table 5) and the resulting blockified shards (Figure 9).
//
// This example uses the internal packages directly to expose the
// pipeline's moving parts; applications normally get all of this
// implicitly by training with gbdt.SystemVero.
package main

import (
	"fmt"
	"log"

	"vero/internal/cluster"
	"vero/internal/datasets"
	"vero/internal/partition"
)

func main() {
	ds, err := datasets.Synthetic(datasets.SyntheticConfig{
		N: 20000, D: 1000, C: 2,
		InformativeRatio: 0.2,
		Density:          0.05,
		Seed:             11,
	})
	if err != nil {
		log.Fatal(err)
	}
	const workers = 8
	cl := cluster.New(workers, cluster.Gigabit())
	res, err := partition.Transform(cl, ds.X, ds.Labels, partition.Options{
		Q:      20,
		Charge: partition.VariantBlockified,
	})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("dataset: %d x %d, %d nonzeros, horizontally partitioned over %d workers\n\n",
		ds.NumInstances(), ds.NumFeatures(), ds.X.NNZ(), workers)

	b := res.Bytes
	mb := func(v int64) float64 { return float64(v) / (1 << 20) }
	fmt.Println("step 1-2: quantile sketches merged, candidate splits broadcast")
	fmt.Printf("  sketch shuffle: %.2f MB   split broadcast: %.2f MB\n", mb(b.SketchShuffle), mb(b.SplitBroadcast))
	fmt.Println("step 3-4: column grouping, compression, blockify, repartition")
	fmt.Printf("  naive 12-byte pairs:     %8.2f MB\n", mb(b.NaiveShuffle))
	fmt.Printf("  compressed pairs:        %8.2f MB  (%.1fx smaller)\n",
		mb(b.CompressedShuffle), float64(b.NaiveShuffle)/float64(b.CompressedShuffle))
	fmt.Printf("  blockified (Vero):       %8.2f MB  (%.1fx smaller)\n",
		mb(b.BlockifiedShuffle), float64(b.NaiveShuffle)/float64(b.BlockifiedShuffle))
	fmt.Println("step 5: labels broadcast")
	fmt.Printf("  labels: %.2f MB\n\n", mb(b.LabelBroadcast))

	fmt.Println("resulting shards (two-phase index over merged blocks):")
	for _, shard := range res.Shards {
		fmt.Printf("  worker %d: %5d features, %7d pairs, %d blocks\n",
			shard.Worker, len(shard.Features), shard.Data.NNZ(), shard.Data.NumBlocks())
	}

	fmt.Println("\nper-phase cluster record:")
	fmt.Print(cl.Stats().String())
}
