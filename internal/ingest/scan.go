package ingest

import (
	"bufio"
	"fmt"
	"io"
	"runtime"
	"sync"

	"vero/internal/failpoint"
)

// Format selects the ingestion text dialect.
type Format string

// Supported input formats.
const (
	FormatLibSVM Format = "libsvm"
	FormatCSV    Format = "csv"
)

// ParseFormat reads a format from its command-line spelling.
func ParseFormat(s string) (Format, error) {
	switch Format(s) {
	case FormatLibSVM, FormatCSV:
		return Format(s), nil
	case "":
		return FormatLibSVM, nil
	}
	return "", fmt.Errorf("ingest: unknown format %q (want libsvm or csv)", s)
}

// Pipeline defaults.
const (
	// DefaultChunkRows is the block size used when Options.ChunkRows is
	// zero: large enough to amortize scheduling, small enough that a block
	// is a cache-friendly unit of parser work.
	DefaultChunkRows = 4096
	// DefaultSketchEps matches core.Config's sketch error default, so
	// ingestion-derived splits are adopted by default-configured training.
	DefaultSketchEps = 0.01
	// DefaultQ is the paper's candidate-split budget q.
	DefaultQ = 20
)

// Options configures the ingestion pipeline.
type Options struct {
	// Format is the input dialect (default FormatLibSVM).
	Format Format
	// NumClass is 1 for regression, 2 for binary classification, >2 for
	// multi-class; classification labels must be integers in [0, NumClass).
	NumClass int
	// ChunkRows is the number of input lines per parsed block (default
	// DefaultChunkRows).
	ChunkRows int
	// Workers is the parse-worker pool size (default GOMAXPROCS).
	Workers int
	// SketchEps is the quantile-sketch error bound used when deriving bin
	// boundaries (default 0.01, matching core.Config.SketchEps).
	SketchEps float64
	// Q is the candidate-split budget per feature (default 20, the
	// paper's q).
	Q int
}

func (o Options) withDefaults() (Options, error) {
	if o.Format == "" {
		o.Format = FormatLibSVM
	}
	if o.Format != FormatLibSVM && o.Format != FormatCSV {
		return o, fmt.Errorf("ingest: unknown format %q", o.Format)
	}
	if o.NumClass < 1 {
		return o, fmt.Errorf("ingest: numClass %d", o.NumClass)
	}
	if o.ChunkRows == 0 {
		o.ChunkRows = DefaultChunkRows
	}
	if o.ChunkRows < 1 {
		return o, fmt.Errorf("ingest: chunkRows %d", o.ChunkRows)
	}
	if o.Workers == 0 {
		o.Workers = runtime.GOMAXPROCS(0)
	}
	if o.Workers < 1 {
		return o, fmt.Errorf("ingest: workers %d", o.Workers)
	}
	if o.SketchEps == 0 {
		o.SketchEps = DefaultSketchEps
	}
	if o.SketchEps < 0 || o.SketchEps >= 1 {
		return o, fmt.Errorf("ingest: sketchEps %v out of (0,1)", o.SketchEps)
	}
	if o.Q == 0 {
		o.Q = DefaultQ
	}
	if o.Q < 2 {
		return o, fmt.Errorf("ingest: candidate splits q=%d", o.Q)
	}
	return o, nil
}

// Block is one contiguous run of parsed rows: a mini-CSR with labels. Rows
// within a block keep file order; feature pairs within a row are sorted by
// feature index.
type Block struct {
	// Index is the block's position in the file's block sequence.
	Index int
	// Start is the absolute dataset index of the block's first row.
	Start int
	// Labels holds one label per row.
	Labels []float32
	// RowPtr has NumRows+1 entries; row i occupies [RowPtr[i], RowPtr[i+1])
	// of Feat and Val.
	RowPtr []int64
	// Feat holds the feature indices of the block's entries.
	Feat []uint32
	// Val holds the values of the block's entries.
	Val []float32
	// Cols is one past the largest feature index seen in the block (zero
	// when the block stores no entries).
	Cols int

	// firstLine is the 1-based input line of the block's first physical
	// line; width is the CSV field count (0 for LibSVM), both kept for
	// cross-block error reporting.
	firstLine int
	width     int
}

// NumRows returns the number of parsed rows in the block.
func (b *Block) NumRows() int { return len(b.Labels) }

// Row returns the feature indices and values of block-local row i. The
// slices alias block storage.
func (b *Block) Row(i int) (feat []uint32, val []float32) {
	lo, hi := b.RowPtr[i], b.RowPtr[i+1]
	return b.Feat[lo:hi], b.Val[lo:hi]
}

// rawChunk is an unparsed run of complete input lines.
type rawChunk struct {
	index     int
	firstLine int // 1-based line number of the chunk's first line
	data      []byte
}

type blockResult struct {
	index int
	block *Block
	err   error
}

// ScanBlocks streams the input through the chunked parallel parser and
// invokes fn for each block in file order. Parsing runs on Options.Workers
// goroutines; fn runs on the calling goroutine, strictly sequentially, and
// a non-nil error from it stops the scan. The first error in file order
// wins, so results are deterministic regardless of scheduling.
func ScanBlocks(r io.Reader, opts Options, fn func(*Block) error) error {
	opts, err := opts.withDefaults()
	if err != nil {
		return err
	}
	parse := parseLibSVMChunk
	if opts.Format == FormatCSV {
		parse = parseCSVChunk
	}

	chunkCh := make(chan rawChunk, opts.Workers)
	resCh := make(chan blockResult, opts.Workers)
	stop := make(chan struct{})
	var stopOnce sync.Once
	halt := func() { stopOnce.Do(func() { close(stop) }) }
	defer halt()

	var readErr error
	go func() {
		defer close(chunkCh)
		readErr = produceChunks(r, opts.ChunkRows, chunkCh, stop)
	}()

	var wg sync.WaitGroup
	wg.Add(opts.Workers)
	for w := 0; w < opts.Workers; w++ {
		go func() {
			defer wg.Done()
			for c := range chunkCh {
				b, err := parse(c, opts)
				if err == nil {
					if ferr := failpoint.Inject(FailpointParseBlock); ferr != nil {
						err = fmt.Errorf("ingest: parse block %d: %w", c.index, ferr)
					}
				}
				select {
				case resCh <- blockResult{index: c.index, block: b, err: err}:
				case <-stop:
					return
				}
			}
		}()
	}
	go func() {
		wg.Wait()
		close(resCh)
	}()

	pending := make(map[int]blockResult)
	next, start, width := 0, 0, 0
	var emitErr error
	for res := range resCh {
		if emitErr != nil {
			continue // drain until workers exit
		}
		pending[res.index] = res
		for {
			cur, ok := pending[next]
			if !ok {
				break
			}
			delete(pending, next)
			if cur.err != nil {
				emitErr = cur.err
				halt()
				break
			}
			b := cur.block
			// CSV blocks must agree on the field count; each block is
			// internally consistent, so comparing block widths suffices.
			if b.width > 0 {
				if width == 0 {
					width = b.width
				} else if b.width != width {
					emitErr = fmt.Errorf("ingest: line %d: row has %d fields, want %d", b.firstDataLine(), b.width, width)
					halt()
					break
				}
			}
			b.Index = next
			b.Start = start
			start += b.NumRows()
			if err := fn(b); err != nil {
				emitErr = err
				halt()
				break
			}
			next++
		}
	}
	if emitErr != nil {
		return emitErr
	}
	return readErr
}

// firstDataLine approximates the block's first row's line number for
// cross-block error reports; blank and comment lines before it only make
// the reported line earlier, never wrong by direction.
func (b *Block) firstDataLine() int { return b.firstLine }

// produceChunks slices the input into runs of up to chunkRows complete
// lines. Line boundaries never split a chunk mid-row, so a row cannot
// straddle two blocks by construction.
func produceChunks(r io.Reader, chunkRows int, out chan<- rawChunk, stop <-chan struct{}) error {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<24)
	index, line := 0, 1
	first := 1
	rows := 0
	buf := make([]byte, 0, 64<<10)
	send := func() bool {
		select {
		case out <- rawChunk{index: index, firstLine: first, data: buf}:
		case <-stop:
			return false
		}
		index++
		first = line
		rows = 0
		buf = make([]byte, 0, cap(buf))
		return true
	}
	for sc.Scan() {
		buf = append(buf, sc.Bytes()...)
		buf = append(buf, '\n')
		rows++
		line++
		if rows >= chunkRows {
			if !send() {
				return nil
			}
		}
	}
	if err := sc.Err(); err != nil {
		return fmt.Errorf("ingest: read: %w", err)
	}
	if rows > 0 {
		if !send() {
			return nil
		}
	}
	return nil
}

// sortRow sorts a row's parallel (feat, val) slices by feature index and
// rejects duplicates. Rows are short and usually pre-sorted, so insertion
// sort is the right shape.
func sortRow(feat []uint32, val []float32, line int) error {
	for i := 1; i < len(feat); i++ {
		f, v := feat[i], val[i]
		j := i - 1
		for j >= 0 && feat[j] > f {
			feat[j+1], val[j+1] = feat[j], val[j]
			j--
		}
		feat[j+1], val[j+1] = f, v
	}
	for i := 1; i < len(feat); i++ {
		if feat[i] == feat[i-1] {
			return fmt.Errorf("ingest: line %d: duplicate feature index %d", line, feat[i])
		}
	}
	return nil
}

// checkLabel validates a classification label against the class count.
func checkLabel(y float64, numClass int, line int) error {
	if numClass < 2 {
		return nil
	}
	if y < 0 || int(y) >= numClass || y != float64(int(y)) {
		return fmt.Errorf("ingest: line %d: label %v outside [0,%d)", line, y, numClass)
	}
	return nil
}
