// Costmodel: the Section 3.1 closed-form analysis, reproducing the
// Section 3.1.4 worked example (the Tencent Age dataset) and exploring
// where the horizontal/vertical communication crossover falls.
package main

import (
	"fmt"
	"log"

	"vero/gbdt"
)

func main() {
	const (
		MiB = float64(1 << 20)
		GiB = float64(1 << 30)
	)
	w := gbdt.AgeExampleWorkload()
	r, err := gbdt.AnalyzeCost(w)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("Section 3.1.4 worked example: Age (N=48M, D=330K, C=9), 8 workers, L=8, q=20")
	fmt.Printf("  histogram per node:     %7.1f MB    (paper: ~906 MB)\n", float64(r.HistogramBytes)/MiB)
	fmt.Printf("  horizontal memory:      %7.1f GB    (paper: 56.6 GB)\n", float64(r.HorizontalMemoryBytes)/GiB)
	fmt.Printf("  vertical memory:        %7.2f GB    (paper: 7.08 GB)\n", float64(r.VerticalMemoryBytes)/GiB)
	fmt.Printf("  horizontal comm/tree:   %7.1f GB    (paper: ~900 GB)\n", float64(r.HorizontalCommBytesPerTree)/GiB)
	fmt.Printf("  vertical comm/tree:     %7.1f MB    (paper: 366 MB)\n", float64(r.VerticalCommBytesPerTree)/MiB)

	fmt.Println("\ncommunication crossover (D above which vertical wins), binary task, W=8, q=20:")
	for _, n := range []int64{1_000_000, 10_000_000, 50_000_000, 100_000_000} {
		for _, layers := range []int64{8, 10} {
			wl := gbdt.CostWorkload{N: n, D: 1, W: 8, L: layers, Q: 20, C: 1}
			// Find the crossover by comparing the two closed forms.
			lo, hi := int64(1), int64(1_000_000)
			for lo < hi {
				mid := (lo + hi) / 2
				wl.D = mid
				if wl.HorizontalCommBytesPerTree() < wl.VerticalCommBytesPerTree() {
					lo = mid + 1
				} else {
					hi = mid
				}
			}
			fmt.Printf("  N=%-11d L=%-2d  ->  D* = %d\n", n, layers, lo)
		}
	}
	fmt.Println("\nreading: deeper trees and more classes push the crossover toward")
	fmt.Println("lower D — exactly Table 1's advantageous-scenario matrix.")
}
