// Package serve implements the model-serving HTTP layer behind
// cmd/veroserve: JSON prediction endpoints over a compiled gbdt.Predictor
// with bounded request concurrency.
//
// Endpoints:
//
//	GET  /healthz     liveness probe
//	GET  /v1/model    model metadata (trees, classes, objective, features)
//	POST /v1/predict  single-row or batch prediction
//
// A predict request carries sparse rows (parallel indices/values arrays),
// dense rows, or both:
//
//	{"rows": [{"indices": [0, 7], "values": [1.5, -2.0]}],
//	 "dense": [[1.5, 0, 0, 0, 0, 0, 0, -2.0]],
//	 "proba": true}
//
// The response returns raw margins per row (stride num_class) and, when
// proba is set, sigmoid/softmax probabilities:
//
//	{"num_class": 1, "scores": [[0.83]], "probabilities": [[0.69]]}
//
// Concurrency is bounded two ways: MaxInFlight caps the predict requests
// decoded and scored at once (excess requests wait, honoring request
// cancellation), and the predictor's worker pool caps the goroutines one
// batch fans out to.
package serve

import (
	"encoding/json"
	"fmt"
	"net/http"
	"sort"

	"vero/gbdt"
)

// Options configures a Server.
type Options struct {
	// Workers bounds the prediction goroutines per batch (default
	// GOMAXPROCS, via gbdt.PredictorOptions).
	Workers int
	// MaxInFlight bounds concurrently served predict requests (default 64).
	MaxInFlight int
	// MaxBatchRows rejects predict requests with more rows (default 10000).
	MaxBatchRows int
}

// Server serves predictions for one loaded model.
type Server struct {
	pred         *gbdt.Predictor
	name         string
	numFeature   int
	maxBatchRows int
	inflight     chan struct{}
}

// New compiles the model and returns a ready Server. name is echoed in
// /v1/model (typically the model file path).
func New(model *gbdt.Model, name string, opts Options) (*Server, error) {
	pred, err := gbdt.NewPredictor(model, gbdt.PredictorOptions{Workers: opts.Workers})
	if err != nil {
		return nil, err
	}
	if opts.MaxInFlight <= 0 {
		opts.MaxInFlight = 64
	}
	if opts.MaxBatchRows <= 0 {
		opts.MaxBatchRows = 10000
	}
	return &Server{
		pred:         pred,
		name:         name,
		numFeature:   model.Forest().NumFeature,
		maxBatchRows: opts.MaxBatchRows,
		inflight:     make(chan struct{}, opts.MaxInFlight),
	}, nil
}

// Handler returns the HTTP handler tree.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		fmt.Fprintln(w, `{"status":"ok"}`)
	})
	mux.HandleFunc("GET /v1/model", s.handleModel)
	mux.HandleFunc("POST /v1/predict", s.handlePredict)
	return mux
}

// ModelInfo is the /v1/model response.
type ModelInfo struct {
	Name       string `json:"name"`
	NumTrees   int    `json:"num_trees"`
	NumClass   int    `json:"num_class"`
	NumFeature int    `json:"num_feature"`
	Objective  string `json:"objective"`
}

func (s *Server) handleModel(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, ModelInfo{
		Name:       s.name,
		NumTrees:   s.pred.NumTrees(),
		NumClass:   s.pred.NumClass(),
		NumFeature: s.numFeature,
		Objective:  s.pred.Objective(),
	})
}

// SparseRow is one instance in sparse form: parallel feature-id/value
// arrays, in any order, duplicates rejected.
type SparseRow struct {
	Indices []uint32  `json:"indices"`
	Values  []float32 `json:"values"`
}

// PredictRequest is the /v1/predict request body. Sparse rows are scored
// first, then dense rows.
type PredictRequest struct {
	Rows  []SparseRow `json:"rows,omitempty"`
	Dense [][]float32 `json:"dense,omitempty"`
	// Proba requests sigmoid/softmax probabilities alongside raw margins.
	Proba bool `json:"proba,omitempty"`
}

// PredictResponse is the /v1/predict response body.
type PredictResponse struct {
	NumClass      int         `json:"num_class"`
	Scores        [][]float64 `json:"scores"`
	Probabilities [][]float64 `json:"probabilities,omitempty"`
}

type apiError struct {
	Error string `json:"error"`
}

func (s *Server) handlePredict(w http.ResponseWriter, r *http.Request) {
	// Bounded concurrency: wait for an in-flight slot or client hang-up.
	select {
	case s.inflight <- struct{}{}:
		defer func() { <-s.inflight }()
	case <-r.Context().Done():
		writeJSON(w, http.StatusServiceUnavailable, apiError{Error: "request canceled while waiting for capacity"})
		return
	}

	var req PredictRequest
	dec := json.NewDecoder(r.Body)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&req); err != nil {
		writeJSON(w, http.StatusBadRequest, apiError{Error: "decode request: " + err.Error()})
		return
	}
	n := len(req.Rows) + len(req.Dense)
	if n == 0 {
		writeJSON(w, http.StatusBadRequest, apiError{Error: "empty request: provide rows or dense"})
		return
	}
	if n > s.maxBatchRows {
		writeJSON(w, http.StatusRequestEntityTooLarge,
			apiError{Error: fmt.Sprintf("%d rows exceeds batch limit %d", n, s.maxBatchRows)})
		return
	}

	feats := make([][]uint32, 0, n)
	vals := make([][]float32, 0, n)
	for i := range req.Rows {
		feat, val, err := normalizeSparse(req.Rows[i])
		if err != nil {
			writeJSON(w, http.StatusBadRequest, apiError{Error: fmt.Sprintf("row %d: %v", i, err)})
			return
		}
		feats, vals = append(feats, feat), append(vals, val)
	}
	for _, dense := range req.Dense {
		feat, val := sparsify(dense)
		feats, vals = append(feats, feat), append(vals, val)
	}
	margins := s.pred.PredictRows(feats, vals)

	k := s.pred.NumClass()
	resp := PredictResponse{NumClass: k, Scores: reshape(margins, k)}
	if req.Proba {
		resp.Probabilities = reshape(s.pred.Probabilities(margins), k)
	}
	writeJSON(w, http.StatusOK, resp)
}

// normalizeSparse validates one sparse row and returns it sorted by
// feature id, as the prediction engine requires.
func normalizeSparse(row SparseRow) ([]uint32, []float32, error) {
	if len(row.Indices) != len(row.Values) {
		return nil, nil, fmt.Errorf("%d indices but %d values", len(row.Indices), len(row.Values))
	}
	feat := append([]uint32(nil), row.Indices...)
	val := append([]float32(nil), row.Values...)
	if !sort.SliceIsSorted(feat, func(i, j int) bool { return feat[i] < feat[j] }) {
		order := make([]int, len(feat))
		for i := range order {
			order[i] = i
		}
		sort.Slice(order, func(i, j int) bool { return feat[order[i]] < feat[order[j]] })
		sf := make([]uint32, len(feat))
		sv := make([]float32, len(val))
		for i, o := range order {
			sf[i] = feat[o]
			sv[i] = val[o]
		}
		feat, val = sf, sv
	}
	for i := 1; i < len(feat); i++ {
		if feat[i] == feat[i-1] {
			return nil, nil, fmt.Errorf("duplicate feature index %d", feat[i])
		}
	}
	return feat, val, nil
}

// sparsify converts a dense row to sorted sparse form, dropping zeros
// (the storage convention of the training data).
func sparsify(dense []float32) ([]uint32, []float32) {
	var feat []uint32
	var val []float32
	for j, v := range dense {
		if v != 0 {
			feat = append(feat, uint32(j))
			val = append(val, v)
		}
	}
	return feat, val
}

// reshape splits a flat stride-k score vector into per-row slices.
func reshape(flat []float64, k int) [][]float64 {
	rows := make([][]float64, len(flat)/k)
	for i := range rows {
		rows[i] = flat[i*k : (i+1)*k]
	}
	return rows
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	_ = json.NewEncoder(w).Encode(v)
}
