package tree

import (
	"math/rand"
	"testing"

	"vero/internal/sparse"
)

// randomForest grows a random but structurally valid forest for
// equivalence testing: random splits over d features, random leaf weights,
// random default directions.
func randomForest(t testing.TB, rng *rand.Rand, trees, layers, d, numClass int) *Forest {
	t.Helper()
	f := NewForest(numClass, 0.3, make([]float64, numClass), "logistic", d)
	for i := 0; i < trees; i++ {
		tr := New(numClass)
		frontier := []int32{0}
		for l := 0; l < layers; l++ {
			var next []int32
			for _, id := range frontier {
				if rng.Float64() < 0.2 { // leave some leaves shallow
					continue
				}
				left, right := tr.Split(id, int32(rng.Intn(d)), float32(rng.NormFloat64()),
					uint16(rng.Intn(20)), rng.Intn(2) == 0, rng.Float64())
				next = append(next, left, right)
			}
			frontier = next
		}
		for id := range tr.Nodes {
			if tr.Nodes[id].IsLeaf() {
				w := make([]float64, numClass)
				for k := range w {
					w[k] = rng.NormFloat64()
				}
				tr.SetLeaf(int32(id), w)
			}
		}
		f.Append(tr)
	}
	return f
}

// randomCSR builds a random sparse matrix with the given density.
func randomCSR(t testing.TB, rng *rand.Rand, rows, cols int, density float64) *sparse.CSR {
	t.Helper()
	b := sparse.NewCSRBuilder(cols)
	for i := 0; i < rows; i++ {
		var kvs []sparse.KV
		for j := 0; j < cols; j++ {
			if rng.Float64() < density {
				kvs = append(kvs, sparse.KV{Index: uint32(j), Value: float32(rng.NormFloat64())})
			}
		}
		if err := b.AddRow(kvs); err != nil {
			t.Fatal(err)
		}
	}
	return b.Build()
}

func TestFlatMatchesPointerWalk(t *testing.T) {
	for _, tc := range []struct {
		name     string
		numClass int
		density  float64
	}{
		{"binary_dense", 1, 0.9},
		{"binary_sparse", 1, 0.1},
		{"multiclass", 4, 0.3},
	} {
		t.Run(tc.name, func(t *testing.T) {
			rng := rand.New(rand.NewSource(7))
			f := randomForest(t, rng, 12, 6, 50, tc.numClass)
			m := randomCSR(t, rng, 200, 50, tc.density)
			ff := Compile(f)
			if err := ff.Validate(); err != nil {
				t.Fatal(err)
			}
			want := f.PredictCSR(m)
			for _, workers := range []int{1, 4} {
				got := ff.PredictCSR(m, workers)
				if len(got) != len(want) {
					t.Fatalf("workers=%d: got %d scores, want %d", workers, len(got), len(want))
				}
				for i := range got {
					if got[i] != want[i] {
						t.Fatalf("workers=%d: score[%d] = %v, want %v (bit-exact)", workers, i, got[i], want[i])
					}
				}
			}
			// Single-row path.
			for i := 0; i < m.Rows(); i += 17 {
				feat, val := m.Row(i)
				got := ff.PredictRow(feat, val)
				for k := range got {
					if got[k] != want[i*tc.numClass+k] {
						t.Fatalf("row %d class %d: %v != %v", i, k, got[k], want[i*tc.numClass+k])
					}
				}
			}
		})
	}
}

func TestFlatMissingValuesFollowDefault(t *testing.T) {
	f := NewForest(1, 1, []float64{0}, "square", 3)
	tr := New(1)
	l, r := tr.Split(0, 2, 0.5, 0, true, 1) // route on feature 2, missing goes left
	tr.SetLeaf(l, []float64{-1})
	tr.SetLeaf(r, []float64{+1})
	f.Append(tr)
	ff := Compile(f)

	// Feature 2 absent: default left.
	if got := ff.PredictRow([]uint32{0, 1}, []float32{9, 9})[0]; got != -1 {
		t.Fatalf("missing value routed to %v, want -1", got)
	}
	// Present below threshold: left. Present above: right.
	if got := ff.PredictRow([]uint32{2}, []float32{0.4})[0]; got != -1 {
		t.Fatalf("0.4 routed to %v, want -1", got)
	}
	if got := ff.PredictRow([]uint32{2}, []float32{0.6})[0]; got != 1 {
		t.Fatalf("0.6 routed to %v, want +1", got)
	}
}

func TestFlatRootOnlyForestAndEmptyMatrix(t *testing.T) {
	f := NewForest(2, 0.1, []float64{0.5, -0.5}, "softmax", 4)
	tr := New(2)
	tr.SetLeaf(0, []float64{1, 2})
	f.Append(tr)
	ff := Compile(f)
	got := ff.PredictRow(nil, nil)
	want := []float64{0.5 + 0.1*1, -0.5 + 0.1*2}
	for k := range got {
		if got[k] != want[k] {
			t.Fatalf("root-only: got %v, want %v", got, want)
		}
	}

	empty := sparse.NewCSRBuilder(4).Build()
	if out := ff.PredictCSR(empty, 4); len(out) != 0 {
		t.Fatalf("empty matrix produced %d scores", len(out))
	}
}

func TestFlatScratchDimSkipsUnroutedFeatures(t *testing.T) {
	// Splits only touch feature 0; rows carrying huge feature ids must not
	// panic or perturb routing.
	f := NewForest(1, 1, []float64{0}, "square", 1_000_000)
	tr := New(1)
	l, r := tr.Split(0, 0, 0, 0, false, 1)
	tr.SetLeaf(l, []float64{-1})
	tr.SetLeaf(r, []float64{+1})
	f.Append(tr)
	ff := Compile(f)
	if got := ff.PredictRow([]uint32{0, 999_999}, []float32{-1, 42})[0]; got != -1 {
		t.Fatalf("got %v, want -1", got)
	}
}

// TestPredictBlockMatchesPerRow is the blocked-kernel property test:
// across random forests, random sparse batches, block sizes and worker
// counts, the tree-major blocked traversal must reproduce the per-row
// walk bit-exactly.
func TestPredictBlockMatchesPerRow(t *testing.T) {
	for _, tc := range []struct {
		name     string
		numClass int
		density  float64
		trees    int
		layers   int
		d        int
	}{
		{"binary_dense", 1, 0.9, 12, 6, 50},
		{"binary_sparse", 1, 0.05, 30, 5, 300},
		{"multiclass", 4, 0.3, 12, 6, 50},
		{"deep_narrow", 1, 0.7, 3, 9, 8},
	} {
		t.Run(tc.name, func(t *testing.T) {
			for trial := int64(0); trial < 4; trial++ {
				rng := rand.New(rand.NewSource(100 + trial))
				f := randomForest(t, rng, tc.trees, tc.layers, tc.d, tc.numClass)
				m := randomCSR(t, rng, 150, tc.d, tc.density)
				ff := Compile(f)
				want := ff.PredictCSR(m, 1)

				feats := make([][]uint32, m.Rows())
				vals := make([][]float32, m.Rows())
				for i := range feats {
					feats[i], vals[i] = m.Row(i)
				}
				for _, block := range []int{1, 3, DefaultBlockRows, 1000} {
					got := make([]float64, len(want))
					ff.PredictBlock(feats, vals, got, block)
					for i := range got {
						if got[i] != want[i] {
							t.Fatalf("trial %d block %d: score[%d] = %v, want %v (bit-exact)",
								trial, block, i, got[i], want[i])
						}
					}
					for _, workers := range []int{1, 4} {
						csr := ff.PredictCSRBlocked(m, workers, block)
						for i := range csr {
							if csr[i] != want[i] {
								t.Fatalf("trial %d block %d workers %d: CSR score[%d] = %v, want %v",
									trial, block, workers, i, csr[i], want[i])
							}
						}
					}
				}
			}
		})
	}
}

// TestPredictBlockEdgeCases covers shapes the property test's generator
// does not produce: empty batches, all-empty rows, root-only forests and
// rows carrying feature ids no split routes on.
func TestPredictBlockEdgeCases(t *testing.T) {
	t.Run("root_only", func(t *testing.T) {
		f := NewForest(2, 0.1, []float64{0.5, -0.5}, "softmax", 4)
		tr := New(2)
		tr.SetLeaf(0, []float64{1, 2})
		f.Append(tr)
		ff := Compile(f)
		out := make([]float64, 2*2)
		ff.PredictBlock([][]uint32{nil, {1}}, [][]float32{nil, {3}}, out, 0)
		want := []float64{0.5 + 0.1*1, -0.5 + 0.1*2}
		for r := 0; r < 2; r++ {
			for k := range want {
				if out[r*2+k] != want[k] {
					t.Fatalf("row %d: got %v, want %v", r, out[r*2:r*2+2], want)
				}
			}
		}
		if res := ff.PredictCSRBlocked(sparse.NewCSRBuilder(4).Build(), 4, 0); len(res) != 0 {
			t.Fatalf("empty matrix produced %d scores", len(res))
		}
	})
	t.Run("unrouted_features", func(t *testing.T) {
		f := NewForest(1, 1, []float64{0}, "square", 1_000_000)
		tr := New(1)
		l, r := tr.Split(0, 0, 0, 0, false, 1)
		tr.SetLeaf(l, []float64{-1})
		tr.SetLeaf(r, []float64{+1})
		f.Append(tr)
		ff := Compile(f)
		out := make([]float64, 2)
		ff.PredictBlock(
			[][]uint32{{0, 999_999}, {999_999}},
			[][]float32{{-1, 42}, {42}},
			out, 7)
		if out[0] != -1 || out[1] != 1 {
			t.Fatalf("got %v, want [-1 1]", out)
		}
	})
	t.Run("empty_batch", func(t *testing.T) {
		rng := rand.New(rand.NewSource(2))
		ff := Compile(randomForest(t, rng, 3, 4, 10, 1))
		ff.PredictBlock(nil, nil, nil, 0) // must not panic
	})
}

func BenchmarkFlatCompile(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	f := randomForest(b, rng, 100, 8, 200, 1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Compile(f)
	}
}
