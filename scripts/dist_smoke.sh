#!/usr/bin/env bash
# Distributed training smoke test: train the same `.vbin` cache image
# twice through a real `veroctl` — once on the single-process simulation,
# once as three OS processes meshed over loopback TCP — and require the
# two model files to be byte-identical. Also asserts the distributed run
# reports its measured payload equal to the alpha-beta model's accounted
# volume, and that an armed `cluster.tcp.write` failpoint aborts training
# at a tree boundary instead of hanging or writing a model. Run from the
# repo root; used by CI and reproducible locally with
# `bash scripts/dist_smoke.sh`.
set -euo pipefail

DIR="$(mktemp -d)"
trap 'rm -rf "$DIR"' EXIT

TRAIN_ARGS=(-data "$DIR/train.vbin" -classes 2 -trees 12 -layers 5 -system vero)

fail() { echo "FAIL: $1"; shift; for f in "$@"; do echo "--- $f:"; cat "$f"; done; exit 1; }

echo "== build"
go build -o "$DIR/veroctl" ./cmd/veroctl
go build -o "$DIR/datagen" ./cmd/datagen

echo "== generate a .vbin cache image"
"$DIR/datagen" -n 20000 -d 300 -c 2 -density 0.3 -informative 0.3 \
  -format vbin -out "$DIR/train.vbin"

echo "== single-process simulated reference run (3 workers)"
"$DIR/veroctl" train "${TRAIN_ARGS[@]}" -workers 3 -model "$DIR/sim.json" >"$DIR/sim.log" \
  || fail "simulated run failed" "$DIR/sim.log"

BASE=$(( (RANDOM % 20000) + 20000 ))
PEERS="127.0.0.1:$BASE,127.0.0.1:$((BASE+1)),127.0.0.1:$((BASE+2))"

echo "== 3-rank loopback deployment on $PEERS"
"$DIR/veroctl" train "${TRAIN_ARGS[@]}" -workers "$PEERS" -rank 1 \
  -model "$DIR/rank1.json" >"$DIR/rank1.log" 2>&1 & PID1=$!
"$DIR/veroctl" train "${TRAIN_ARGS[@]}" -workers "$PEERS" -rank 2 \
  -model "$DIR/rank2.json" >"$DIR/rank2.log" 2>&1 & PID2=$!
"$DIR/veroctl" train "${TRAIN_ARGS[@]}" -workers "$PEERS" -rank 0 \
  -model "$DIR/dist.json" >"$DIR/dist.log" 2>&1 \
  || fail "rank 0 failed" "$DIR/dist.log" "$DIR/rank1.log" "$DIR/rank2.log"
wait "$PID1" || fail "rank 1 failed" "$DIR/rank1.log"
wait "$PID2" || fail "rank 2 failed" "$DIR/rank2.log"

cmp -s "$DIR/sim.json" "$DIR/dist.json" \
  || fail "socket-trained model differs from the simulation" "$DIR/sim.log" "$DIR/dist.log"
grep -q "bytes agree" "$DIR/dist.log" \
  || fail "measured payload does not match the accounted volume" "$DIR/dist.log"
# Only the coordinating rank persists the model.
[ -f "$DIR/rank1.json" ] && fail "rank 1 wrote a model file" "$DIR/rank1.log"
echo "   models byte-identical; $(grep 'measured:' "$DIR/dist.log")"

echo "== injected transport write failure aborts at a tree boundary"
BASE=$(( (RANDOM % 20000) + 20000 ))
PEERS="127.0.0.1:$BASE,127.0.0.1:$((BASE+1))"
set +e
VERO_FAILPOINTS='cluster.tcp.write=20*error' \
  "$DIR/veroctl" train "${TRAIN_ARGS[@]}" -workers "$PEERS" -rank 1 \
  -model "$DIR/faulted1.json" >"$DIR/fault1.log" 2>&1 & PIDF=$!
VERO_FAILPOINTS='cluster.tcp.write=20*error' \
  "$DIR/veroctl" train "${TRAIN_ARGS[@]}" -workers "$PEERS" -rank 0 \
  -model "$DIR/faulted0.json" >"$DIR/fault0.log" 2>&1
STATUS=$?
wait "$PIDF"
STATUS1=$?
set -e
[ "$STATUS" -ne 0 ] || fail "rank 0 succeeded with a broken transport" "$DIR/fault0.log"
[ "$STATUS1" -ne 0 ] || fail "rank 1 succeeded with a broken transport" "$DIR/fault1.log"
grep -q "aborted during round" "$DIR/fault0.log" \
  || fail "injected-fault error is not the tree-boundary abort" "$DIR/fault0.log"
[ -f "$DIR/faulted0.json" ] && fail "model written despite injected write failures"
echo "   aborted with: $(tail -1 "$DIR/fault0.log")"

echo "== SIGKILL one rank mid-run, restart the deployment, resume from checkpoints"
"$DIR/veroctl" train "${TRAIN_ARGS[@]}" -workers 2 -model "$DIR/sim2.json" >"$DIR/sim2.log" \
  || fail "2-worker simulated reference failed" "$DIR/sim2.log"

CKPT="$DIR/ckpt"
BASE=$(( (RANDOM % 20000) + 20000 ))
PEERS="127.0.0.1:$BASE,127.0.0.1:$((BASE+1))"
set +e
"$DIR/veroctl" train "${TRAIN_ARGS[@]}" -workers "$PEERS" -rank 1 \
  -checkpoint-dir "$CKPT" -checkpoint-every 4 \
  -model "$DIR/crash1.json" >"$DIR/crash1.log" 2>&1 & PIDK=$!
"$DIR/veroctl" train "${TRAIN_ARGS[@]}" -workers "$PEERS" -rank 0 \
  -checkpoint-dir "$CKPT" -checkpoint-every 4 \
  -model "$DIR/crash0.json" >"$DIR/crash0.log" 2>&1 & PID0=$!
# Kill rank 1 the moment its first checkpoint lands, so the deployment
# dies mid-training with resumable state on disk.
for _ in $(seq 1 600); do
  [ -f "$CKPT/train-rank1.vckp" ] && break
  kill -0 "$PIDK" 2>/dev/null || break
  sleep 0.05
done
[ -f "$CKPT/train-rank1.vckp" ] || fail "rank 1 never checkpointed" "$DIR/crash1.log"
kill -9 "$PIDK"
wait "$PIDK" 2>/dev/null
wait "$PID0"
STATUS0=$?
set -e
[ "$STATUS0" -ne 0 ] || fail "rank 0 survived its peer's SIGKILL" "$DIR/crash0.log"
[ -f "$CKPT/train-rank0.vckp" ] || fail "rank 0 aborted without leaving its checkpoint" "$DIR/crash0.log"
[ -f "$DIR/crash0.json" ] && fail "model written despite the crashed deployment"

BASE=$(( (RANDOM % 20000) + 20000 ))
PEERS="127.0.0.1:$BASE,127.0.0.1:$((BASE+1))"
"$DIR/veroctl" train "${TRAIN_ARGS[@]}" -workers "$PEERS" -rank 1 \
  -checkpoint-dir "$CKPT" -checkpoint-every 4 \
  -model "$DIR/resume1.json" >"$DIR/resume1.log" 2>&1 & PIDR=$!
"$DIR/veroctl" train "${TRAIN_ARGS[@]}" -workers "$PEERS" -rank 0 \
  -checkpoint-dir "$CKPT" -checkpoint-every 4 \
  -model "$DIR/resume0.json" >"$DIR/resume0.log" 2>&1 \
  || fail "resumed rank 0 failed" "$DIR/resume0.log" "$DIR/resume1.log"
wait "$PIDR" || fail "resumed rank 1 failed" "$DIR/resume1.log"
grep -q "resumed from checkpoint at round" "$DIR/resume0.log" \
  || fail "restarted deployment trained from scratch instead of resuming" "$DIR/resume0.log"
cmp -s "$DIR/sim2.json" "$DIR/resume0.json" \
  || fail "resumed model differs from the uninterrupted reference" "$DIR/sim2.log" "$DIR/resume0.log"
echo "   $(grep 'resumed from checkpoint' "$DIR/resume0.log"); model byte-identical"

echo "dist smoke OK"
