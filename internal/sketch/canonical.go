package sketch

import "vero/internal/sparse"

// Canonical builds one quantile sketch per feature of x by inserting
// values in global row order. The result is independent of how the matrix
// is partitioned across workers, so candidate splits derived from it are
// identical for every quadrant and worker count — which is what lets the
// reproduction verify that all four data-management policies grow
// bit-identical trees. Features with no stored values get a nil sketch.
func Canonical(x *sparse.CSR, eps float64) []*GK {
	sks := make([]*GK, x.Cols())
	for i := 0; i < x.Rows(); i++ {
		feats, vals := x.Row(i)
		for k, f := range feats {
			if sks[f] == nil {
				sks[f] = New(eps)
			}
			sks[f].Add(float64(vals[k]))
		}
	}
	return sks
}
