package gbdt

import (
	"bytes"
	"flag"
	"os"
	"path/filepath"
	"testing"

	"vero/internal/tree"
)

var updateGolden = flag.Bool("update", false, "rewrite golden model files")

// goldenBinaryModel hand-builds a small deterministic binary forest —
// independent of the trainer, so the golden bytes pin the serialization
// format alone, not training numerics.
func goldenBinaryModel() *Model {
	f := tree.NewForest(1, 0.5, []float64{0.25}, "logistic", 6)
	t1 := tree.New(1)
	l, r := t1.Split(t1.Root(), 2, 0.75, 3, true, 1.5)
	ll, lr := t1.Split(l, 0, -1.25, 1, false, 0.75)
	t1.SetLeaf(ll, []float64{0.125})
	t1.SetLeaf(lr, []float64{0.375})
	t1.SetLeaf(r, []float64{1})
	f.Append(t1)
	t2 := tree.New(1)
	t2.SetLeaf(t2.Root(), []float64{0.0625})
	f.Append(t2)
	return &Model{forest: f}
}

// goldenMultiModel covers vector leaves and a softmax objective.
func goldenMultiModel() *Model {
	f := tree.NewForest(3, 0.25, []float64{0.5, 0.25, 0.125}, "softmax", 4)
	t1 := tree.New(3)
	l, r := t1.Split(t1.Root(), 1, 0.5, 2, false, 2)
	t1.SetLeaf(l, []float64{-0.5, 0, 0.5})
	t1.SetLeaf(r, []float64{0.5, 0, -0.5})
	f.Append(t1)
	return &Model{forest: f}
}

// TestEncodeGolden pins the encoded-model byte format against committed
// golden files. Hot-swap deployments (veroserve's admin endpoint) feed
// files produced by older builds to newer ones, so the on-disk format
// must not drift: if this test fails, either restore compatibility or —
// for a deliberate format change — regenerate with `go test ./gbdt
// -run TestEncodeGolden -update` and note the break in docs/SERVING.md.
func TestEncodeGolden(t *testing.T) {
	for _, tc := range []struct {
		golden string
		model  *Model
	}{
		{"model_binary.golden.json", goldenBinaryModel()},
		{"model_multiclass.golden.json", goldenMultiModel()},
	} {
		t.Run(tc.golden, func(t *testing.T) {
			path := filepath.Join("testdata", tc.golden)
			got, err := tc.model.Encode()
			if err != nil {
				t.Fatal(err)
			}
			if *updateGolden {
				if err := os.WriteFile(path, got, 0o644); err != nil {
					t.Fatal(err)
				}
			}
			want, err := os.ReadFile(path)
			if err != nil {
				t.Fatalf("read golden (regenerate with -update): %v", err)
			}
			if !bytes.Equal(got, want) {
				t.Fatalf("Encode output drifted from %s:\n got: %s\nwant: %s", path, got, want)
			}
		})
	}
}

// TestDecodeGoldenPredicts loads the committed golden files — exactly
// what a veroserve hot-swap does — and checks hard-coded predictions, so
// a format change that still round-trips but misroutes is caught too.
// All expected margins are sums of exactly-representable binary
// fractions, so == comparison is portable.
func TestDecodeGoldenPredicts(t *testing.T) {
	data, err := os.ReadFile(filepath.Join("testdata", "model_binary.golden.json"))
	if err != nil {
		t.Fatal(err)
	}
	m, err := DecodeModel(data)
	if err != nil {
		t.Fatal(err)
	}
	for _, tc := range []struct {
		name string
		feat []uint32
		val  []float32
		want float64 // 0.25 init + 0.5*leaf1 + 0.5*0.0625
	}{
		{"both_routed", []uint32{0, 2}, []float32{-2, 0.5}, 0.34375},        // leaf 0.125
		{"defaults", nil, nil, 0.46875},                                     // missing: left then right, leaf 0.375
		{"right", []uint32{2}, []float32{2}, 0.78125},                       // leaf 1
		{"threshold_edge", []uint32{0, 2}, []float32{-1.25, 0.75}, 0.34375}, // <= goes left twice
	} {
		if got := m.PredictRow(tc.feat, tc.val)[0]; got != tc.want {
			t.Fatalf("%s: margin %v, want %v", tc.name, got, tc.want)
		}
	}

	data, err = os.ReadFile(filepath.Join("testdata", "model_multiclass.golden.json"))
	if err != nil {
		t.Fatal(err)
	}
	m, err = DecodeModel(data)
	if err != nil {
		t.Fatal(err)
	}
	got := m.PredictRow([]uint32{1}, []float32{0.25})
	want := []float64{0.5 - 0.125, 0.25, 0.125 + 0.125} // init + 0.25*[-0.5,0,0.5]
	for k := range want {
		if got[k] != want[k] {
			t.Fatalf("multiclass margin[%d] = %v, want %v", k, got[k], want[k])
		}
	}
}
