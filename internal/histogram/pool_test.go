package histogram

import "testing"

func TestPoolReuseReturnsZeroed(t *testing.T) {
	p := NewPool()
	l := Layout{NumFeat: 3, MaxBins: 4, NumClass: 2}

	h := p.Get(l)
	for i := range h.Grad {
		h.Grad[i] = float64(i) + 1
		h.Hess[i] = -float64(i) - 1
	}
	p.Put(h)

	r := p.Get(l)
	if r != h {
		t.Fatalf("expected the released histogram back, got a fresh allocation")
	}
	for i := range r.Grad {
		if r.Grad[i] != 0 || r.Hess[i] != 0 {
			t.Fatalf("recycled histogram not zeroed at index %d: grad=%v hess=%v", i, r.Grad[i], r.Hess[i])
		}
	}
	if gets, reuses := p.Stats(); gets != 2 || reuses != 1 {
		t.Fatalf("stats = (%d gets, %d reuses), want (2, 1)", gets, reuses)
	}
}

func TestPoolLayoutMismatchAllocatesFresh(t *testing.T) {
	p := NewPool()
	small := Layout{NumFeat: 2, MaxBins: 4, NumClass: 1}
	big := Layout{NumFeat: 8, MaxBins: 16, NumClass: 3}

	h := p.Get(small)
	p.Put(h)

	// A different layout must not be served by the recycled buffer.
	fresh := p.Get(big)
	if fresh == h {
		t.Fatalf("layout mismatch served a recycled buffer")
	}
	if fresh.Layout != big || len(fresh.Grad) != big.FloatsPerSide() {
		t.Fatalf("fresh histogram has layout %+v, want %+v", fresh.Layout, big)
	}
	if gets, reuses := p.Stats(); gets != 2 || reuses != 0 {
		t.Fatalf("stats = (%d gets, %d reuses), want (2, 0)", gets, reuses)
	}

	// The small buffer is still there for its own layout.
	if again := p.Get(small); again != h {
		t.Fatalf("matching layout did not reuse the released buffer")
	}
}

func TestPoolPutRejectsViews(t *testing.T) {
	p := NewPool()
	l := Layout{NumFeat: 2, MaxBins: 4, NumClass: 1}

	// A histogram wrapping borrowed slices of the wrong length must be
	// dropped, not recycled.
	view := &Hist{Layout: l, Grad: make([]float64, 1), Hess: make([]float64, 1)}
	p.Put(view)
	if h := p.Get(l); h == view {
		t.Fatalf("pool recycled a histogram with mismatched buffers")
	}

	p.Put(nil) // must not panic
}

func TestPoolConcurrent(t *testing.T) {
	p := NewPool()
	l := Layout{NumFeat: 4, MaxBins: 8, NumClass: 1}
	done := make(chan struct{})
	for g := 0; g < 4; g++ {
		go func() {
			defer func() { done <- struct{}{} }()
			for i := 0; i < 200; i++ {
				h := p.Get(l)
				h.Add(1, 2, 0, 1, 1)
				p.Put(h)
			}
		}()
	}
	for g := 0; g < 4; g++ {
		<-done
	}
	if gets, _ := p.Stats(); gets != 800 {
		t.Fatalf("gets = %d, want 800", gets)
	}
}
