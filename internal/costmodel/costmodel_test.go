package costmodel

import "testing"

// TestAgeExample reproduces the numbers of Section 3.1.4 verbatim:
// "the estimated size of histograms on one tree node can be up to 906MB...
// the memory consumption would be 56.6GB and the total communication cost
// would be 900GB... the expected memory cost of histograms is 7.08GB per
// tree and the communication cost is merely 366MB for one tree."
func TestAgeExample(t *testing.T) {
	r, err := Analyze(AgeExample())
	if err != nil {
		t.Fatal(err)
	}
	const MiB = 1 << 20
	const GiB = 1 << 30

	if got := float64(r.HistogramBytes) / MiB; got < 905 || got > 908 {
		t.Errorf("Sizehist = %.1f MiB, paper says ~906 MB", got)
	}
	if got := float64(r.HorizontalMemoryBytes) / GiB; got < 56.5 || got > 56.8 {
		t.Errorf("horizontal memory = %.1f GiB, paper says 56.6 GB", got)
	}
	if got := float64(r.VerticalMemoryBytes) / GiB; got < 7.0 || got > 7.1 {
		t.Errorf("vertical memory = %.2f GiB, paper says 7.08 GB", got)
	}
	if got := float64(r.HorizontalCommBytesPerTree) / GiB; got < 890 || got > 905 {
		t.Errorf("horizontal comm = %.0f GiB/tree, paper says ~900 GB", got)
	}
	if got := float64(r.VerticalCommBytesPerTree) / MiB; got < 365 || got > 367 {
		t.Errorf("vertical comm = %.1f MiB/tree, paper says 366 MB", got)
	}
}

func TestHistogramBytesFormula(t *testing.T) {
	w := Workload{N: 1000, D: 100, W: 4, L: 8, Q: 20, C: 2}
	if got := w.HistogramBytes(); got != 2*100*20*2*8 {
		t.Fatalf("HistogramBytes = %d", got)
	}
}

func TestMemoryRatioIsW(t *testing.T) {
	w := Workload{N: 1000, D: 4096, W: 8, L: 9, Q: 20, C: 3}
	if w.HorizontalMemoryBytes() != 8*w.VerticalMemoryBytes() {
		t.Fatal("vertical memory is not horizontal / W")
	}
}

func TestHorizontalCommGrowsExponentiallyWithDepth(t *testing.T) {
	base := Workload{N: 1000, D: 100, W: 4, L: 8, Q: 20, C: 1}
	deep := base
	deep.L = 9
	// 2^(L-1)-1 nearly doubles per extra layer.
	ratio := float64(deep.HorizontalCommBytesPerTree()) / float64(base.HorizontalCommBytesPerTree())
	if ratio < 1.9 || ratio > 2.1 {
		t.Fatalf("depth ratio = %v, want ~2", ratio)
	}
	// Vertical grows only linearly: 9/8.
	vr := float64(deep.VerticalCommBytesPerTree()) / float64(base.VerticalCommBytesPerTree())
	if vr < 1.1 || vr > 1.2 {
		t.Fatalf("vertical depth ratio = %v, want 1.125", vr)
	}
}

func TestVerticalCommIndependentOfDimAndClasses(t *testing.T) {
	a := Workload{N: 5000, D: 100, W: 4, L: 8, Q: 20, C: 2}
	b := a
	b.D = 100000
	b.C = 50
	if a.VerticalCommBytesPerTree() != b.VerticalCommBytesPerTree() {
		t.Fatal("vertical comm depends on D or C")
	}
	if a.HorizontalCommBytesPerTree() >= b.HorizontalCommBytesPerTree() {
		t.Fatal("horizontal comm not increasing in D and C")
	}
}

func TestAnalyzeValidation(t *testing.T) {
	if _, err := Analyze(Workload{}); err == nil {
		t.Fatal("Analyze accepted zero workload")
	}
	if _, err := Analyze(Workload{N: 1, D: 1, W: 1, L: 1, Q: 1, C: 1}); err == nil {
		t.Fatal("Analyze accepted L=1")
	}
}

func TestCrossover(t *testing.T) {
	w := Workload{N: 50_000_000, D: 0, W: 8, L: 8, Q: 20, C: 2}
	d := Crossover(w)
	if d < 1 {
		t.Fatalf("crossover = %d", d)
	}
	// At the crossover dimensionality the two costs are within one
	// per-feature quantum of each other.
	w.D = d
	h := w.HorizontalCommBytesPerTree()
	v := w.VerticalCommBytesPerTree()
	w.D = d + 1
	h2 := w.HorizontalCommBytesPerTree()
	if !(h <= v && h2 > v) {
		t.Fatalf("crossover mislocated: h(d)=%d v=%d h(d+1)=%d", h, v, h2)
	}
}
