package transporttest

import (
	"encoding/binary"
	"fmt"
	"net"
	"sync"
	"testing"
	"time"

	"vero/internal/cluster"
	"vero/internal/cluster/tcptransport"
	"vero/internal/failpoint"
)

// Chaos harness: a fault-schedule runner for real deployments. Where the
// conformance suite proves a healthy mesh computes the right values, the
// chaos tests prove an unhealthy one fails the right way — every rank
// surfaces an error naming the culprit instead of hanging, delayed frames
// never change results, and transient connect loss heals by retry.

// FaultKind names one way a deployment misbehaves.
type FaultKind string

// The fault kinds a Schedule can carry.
const (
	// FaultKill closes Rank's transport cold at the start of round Round —
	// from the outside indistinguishable from the process dying.
	FaultKill FaultKind = "kill"
	// FaultDelay stalls frame writes: the deployment's first Frames frame
	// writes each sleep DelayMS before touching the wire. Delays are not
	// failures — results must stay bit-identical.
	FaultDelay FaultKind = "delay"
	// FaultDrop fails the deployment's first Drops dial attempts during
	// mesh establishment — a transient connect loss every rank must heal
	// by retrying.
	FaultDrop FaultKind = "drop"
)

// Fault is one scheduled fault. Kill faults are applied by RunSchedule;
// delay and drop faults map to process-global failpoints and are armed
// with ArmFault before the mesh connects.
type Fault struct {
	Kind FaultKind
	// Rank and Round place a kill: the rank that dies and the 0-based
	// control round it dies at.
	Rank, Round int
	// DelayMS and Frames shape a delay fault.
	DelayMS, Frames int
	// Drops counts a drop fault's failed dial attempts.
	Drops int
}

// ArmFault arms the failpoint a delay or drop fault maps to (kill faults
// are RunSchedule's job, not a failpoint's). The points are global to the
// process, so one armed fault strikes whichever rank hits the seam next —
// chaotic by design. Reset is registered on tb.
func ArmFault(tb testing.TB, f Fault) {
	tb.Helper()
	var name, spec string
	switch f.Kind {
	case FaultDelay:
		name = tcptransport.FailpointWrite
		spec = fmt.Sprintf("1-%d*sleep(%d)", f.Frames, f.DelayMS)
	case FaultDrop:
		name = tcptransport.FailpointDial
		spec = fmt.Sprintf("1-%d*error", f.Drops)
	default:
		tb.Fatalf("fault kind %q does not arm a failpoint", f.Kind)
	}
	if err := failpoint.Enable(name, spec); err != nil {
		tb.Fatal(err)
	}
	tb.Cleanup(failpoint.Reset)
}

// MeshConfig tailors a chaos deployment.
type MeshConfig struct {
	W     int
	Model cluster.NetworkModel // zero value: Gigabit
	// DialTimeout and OpTimeout default to 10s and 2s — short enough that
	// a killed peer surfaces as an error in test time, not CI-timeout time.
	DialTimeout, OpTimeout time.Duration
	// Fingerprint, when set, gives each rank its dataset fingerprint for
	// the hello exchange (the seed of the mismatch tests); nil means zero
	// everywhere.
	Fingerprint func(rank int) uint32
}

// ConnectMesh builds a loopback deployment per cfg and returns the
// rank-ordered handles next to each rank's connect error. Unlike
// Loopback it does not Fatal on a failed connect: chaos tests assert on
// those errors. Handles of failed ranks are nil; Close of the successful
// ones is registered on tb.
func ConnectMesh(tb testing.TB, cfg MeshConfig) ([]*cluster.Cluster, []error) {
	tb.Helper()
	if cfg.Model == (cluster.NetworkModel{}) {
		cfg.Model = cluster.Gigabit()
	}
	if cfg.DialTimeout == 0 {
		cfg.DialTimeout = 10 * time.Second
	}
	if cfg.OpTimeout == 0 {
		cfg.OpTimeout = 2 * time.Second
	}
	listeners := make([]net.Listener, cfg.W)
	peers := make([]string, cfg.W)
	for r := range listeners {
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			tb.Fatalf("binding loopback listener %d: %v", r, err)
		}
		listeners[r] = ln
		peers[r] = ln.Addr().String()
	}
	handles := make([]*cluster.Cluster, cfg.W)
	errs := make([]error, cfg.W)
	var wg sync.WaitGroup
	wg.Add(cfg.W)
	for r := 0; r < cfg.W; r++ {
		go func(r int) {
			defer wg.Done()
			var fp uint32
			if cfg.Fingerprint != nil {
				fp = cfg.Fingerprint(r)
			}
			tr, err := tcptransport.Connect(tcptransport.Config{
				Rank:        r,
				Peers:       peers,
				Listener:    listeners[r],
				DialTimeout: cfg.DialTimeout,
				OpTimeout:   cfg.OpTimeout,
				Fingerprint: fp,
			})
			if err != nil {
				errs[r] = err
				listeners[r].Close()
				return
			}
			handles[r] = cluster.New(cfg.W, cfg.Model, cluster.WithTransport(tr))
		}(r)
	}
	wg.Wait()
	tb.Cleanup(func() {
		for _, h := range handles {
			if h != nil {
				h.Close()
			}
		}
	})
	return handles, errs
}

// RunSchedule drives `rounds` control rounds against the handles, one
// goroutine per rank, applying the schedule's kill faults, and returns
// each rank's sticky transport error (nil for a clean run; the killed
// rank itself reports nil — it left on purpose). Delay and drop faults
// in the schedule must have been armed with ArmFault beforehand.
//
// Each control round replays the collectives distributed training v2
// added: the resume agreement's fixed-record all-gather of round votes
// and the early-stopping broadcast from rank 0 (the same shapes
// core.Train issues as "ckpt.resume" and "train.earlystop"). When verify
// is true — a schedule with no kills — the round also checks the values
// that arrived.
func RunSchedule(t *testing.T, handles []*cluster.Cluster, rounds int, faults []Fault, verify bool) []error {
	t.Helper()
	kills := make(map[int]int)
	for _, f := range faults {
		if f.Kind == FaultKill {
			kills[f.Rank] = f.Round
		}
	}
	errs := make([]error, len(handles))
	var wg sync.WaitGroup
	for r, h := range handles {
		if h == nil {
			continue
		}
		wg.Add(1)
		go func(rank int, c *cluster.Cluster) {
			defer wg.Done()
			for round := 0; round < rounds; round++ {
				if killRound, dies := kills[rank]; dies && round == killRound {
					c.Close()
					return
				}
				controlRound(t, c, len(handles), round, verify)
				if c.Err() != nil {
					break
				}
			}
			errs[rank] = c.Err()
		}(r, h)
	}
	wg.Wait()
	return errs
}

// controlRound is one round of the v2 control collectives on one handle.
func controlRound(t *testing.T, c *cluster.Cluster, w, round int, verify bool) {
	t.Helper()
	// Resume agreement: every rank votes its checkpoint round as an
	// 8-byte record; the all-gather hands each rank the full ballot.
	recs := make([][]byte, w)
	for v := 0; v < w; v++ {
		recs[v] = make([]byte, 8)
		if c.HostsWorker(v) {
			binary.LittleEndian.PutUint64(recs[v], uint64(round*1000+v))
		}
	}
	c.AllGatherFixed("ckpt.resume", recs)
	if verify && c.Err() == nil {
		for v := 0; v < w; v++ {
			if got := binary.LittleEndian.Uint64(recs[v]); got != uint64(round*1000+v) {
				t.Errorf("rank %d round %d: vote %d arrived as %d", c.Rank(), round, v, got)
			}
		}
	}

	// Early-stopping verdict: rank 0 fills the 10-byte stop record,
	// everyone receives it.
	stop := make([]byte, 10)
	if !c.Distributed() || c.Rank() == 0 {
		stop[0] = byte(round % 2)
		binary.LittleEndian.PutUint64(stop[1:9], uint64(round))
	}
	c.BroadcastBytes("train.earlystop", stop, 0)
	if verify && c.Err() == nil {
		if stop[0] != byte(round%2) || binary.LittleEndian.Uint64(stop[1:9]) != uint64(round) {
			t.Errorf("rank %d round %d: stop record arrived as %v", c.Rank(), round, stop)
		}
	}
}
