package cluster

import "fmt"

// Collective primitives. Each reduces/moves data that in a real deployment
// would cross the network; here the data movement happens in memory while
// the byte volume and simulated wall time are recorded under the caller's
// phase label.
//
// Cost model (W workers, n bytes of payload per worker, alpha latency,
// beta seconds/byte — Thakur et al., cited as [36] by the paper):
//
//	all-reduce (ring):      2(W-1) steps, each moving n/W bytes per worker
//	reduce-scatter (ring):  (W-1) steps, each moving n/W bytes per worker
//	gather (to one root):   root receives (W-1) * n bytes serially
//	broadcast (binomial):   ceil(log2 W) steps, n bytes per step
//	all-gather (small):     every worker receives (W-1) * n bytes
//	all-to-all (shuffle):   bounded by the busiest worker's send+recv bytes

const float64Size = 8

// AllReduceSum element-wise sums the per-worker arrays and returns the
// global array. Every worker ends up holding the result (ring all-reduce).
// The minimal data transferred per worker is the size of its local
// histogram — the paper's lower bound in Section 3.1.3.
func (c *Cluster) AllReduceSum(phase string, locals [][]float64) []float64 {
	if len(locals) != c.w {
		panic(fmt.Sprintf("cluster: %d locals for %d workers", len(locals), c.w))
	}
	sum := sumAligned(locals)
	c.ChargeAllReduce(phase, int64(len(sum))*float64Size)
	return sum
}

// AllReduceSumInto is AllReduceSum reducing into a caller-owned dst (same
// length as the locals, overwritten; must not alias any local) — for
// callers that recycle result buffers instead of taking a fresh
// allocation per reduction.
func (c *Cluster) AllReduceSumInto(phase string, locals [][]float64, dst []float64) {
	if len(locals) != c.w {
		panic(fmt.Sprintf("cluster: %d locals for %d workers", len(locals), c.w))
	}
	sumAlignedInto(locals, dst)
	c.ChargeAllReduce(phase, int64(len(dst))*float64Size)
}

// ChargeAllReduce records the cost of ring all-reducing a payload of n
// bytes per worker without moving data (for callers that reduce in place).
func (c *Cluster) ChargeAllReduce(phase string, n int64) {
	perWorkerBytes := int64(2) * int64(c.w-1) * n / int64(c.w)
	c.stats.addComm(phase, OpAllReduce, perWorkerBytes*int64(c.w),
		c.simTime(2*(c.w-1), float64(n)/float64(c.w)*2*float64(c.w-1)))
}

// ReduceScatterSum element-wise sums the per-worker arrays; worker i ends
// up owning the i-th contiguous shard of the result. The full summed
// array and the shard ranges are returned (LightGBM's aggregation,
// Section 4.1). Only the reduce-scatter bytes are charged; exchanging the
// subsequent per-shard best splits is a separate AllGatherSmall.
func (c *Cluster) ReduceScatterSum(phase string, locals [][]float64) (sum []float64, shard [][2]int) {
	if len(locals) != c.w {
		panic(fmt.Sprintf("cluster: %d locals for %d workers", len(locals), c.w))
	}
	sum = sumAligned(locals)
	c.ChargeReduceScatter(phase, int64(len(sum))*float64Size)
	shard = make([][2]int, c.w)
	per := (len(sum) + c.w - 1) / c.w
	for w := 0; w < c.w; w++ {
		lo := min(w*per, len(sum))
		hi := min(lo+per, len(sum))
		shard[w] = [2]int{lo, hi}
	}
	return sum, shard
}

// ReduceScatterSumInto is ReduceScatterSum reducing into a caller-owned
// dst (overwritten), for callers that do not need the shard ranges.
func (c *Cluster) ReduceScatterSumInto(phase string, locals [][]float64, dst []float64) {
	if len(locals) != c.w {
		panic(fmt.Sprintf("cluster: %d locals for %d workers", len(locals), c.w))
	}
	sumAlignedInto(locals, dst)
	c.ChargeReduceScatter(phase, int64(len(dst))*float64Size)
}

// ChargeReduceScatter records the cost of ring reduce-scattering n bytes
// per worker without moving data.
func (c *Cluster) ChargeReduceScatter(phase string, n int64) {
	perWorkerBytes := int64(c.w-1) * n / int64(c.w)
	c.stats.addComm(phase, OpReduceScatter, perWorkerBytes*int64(c.w),
		c.simTime(c.w-1, float64(n)/float64(c.w)*float64(c.w-1)))
}

// GatherSum element-wise sums the per-worker arrays at a single root
// (DimBoost's parameter-server aggregation collapses to this when the PS
// has one shard; use ShardedGatherSum for multiple shards).
func (c *Cluster) GatherSum(phase string, locals [][]float64) []float64 {
	if len(locals) != c.w {
		panic(fmt.Sprintf("cluster: %d locals for %d workers", len(locals), c.w))
	}
	sum := sumAligned(locals)
	n := int64(len(sum)) * float64Size
	total := int64(c.w-1) * n
	c.stats.addComm(phase, OpGather, total, c.simTime(c.w-1, float64(total)))
	return sum
}

// ShardedGatherSum models a parameter-server with `shards` servers
// co-located on the workers: each worker pushes the shard-sized fraction
// of its local array to each shard owner, so the per-link volume divides
// by the shard count and shards receive in parallel.
func (c *Cluster) ShardedGatherSum(phase string, locals [][]float64, shards int) []float64 {
	if shards <= 0 {
		panic(fmt.Sprintf("cluster: shard count %d", shards))
	}
	sum := sumAligned(locals)
	c.ChargeShardedGather(phase, int64(len(sum))*float64Size, shards)
	return sum
}

// ShardedGatherSumInto is ShardedGatherSum reducing into a caller-owned
// dst (overwritten).
func (c *Cluster) ShardedGatherSumInto(phase string, locals [][]float64, dst []float64, shards int) {
	if shards <= 0 {
		panic(fmt.Sprintf("cluster: shard count %d", shards))
	}
	if len(locals) != c.w {
		panic(fmt.Sprintf("cluster: %d locals for %d workers", len(locals), c.w))
	}
	sumAlignedInto(locals, dst)
	c.ChargeShardedGather(phase, int64(len(dst))*float64Size, shards)
}

// ChargeShardedGather records the cost of a sharded gather of n bytes per
// worker without moving data.
func (c *Cluster) ChargeShardedGather(phase string, n int64, shards int) {
	total := int64(c.w-1) * n // every byte still leaves its worker once
	perShard := float64(total) / float64(shards)
	c.stats.addComm(phase, OpGather, total, c.simTime(c.w-1, perShard))
}

// Broadcast charges a binomial-tree broadcast of b payload bytes from one
// root to the other W-1 workers (e.g. the instance-placement bitmap of
// vertical partitioning, Section 3.1.3).
func (c *Cluster) Broadcast(phase string, b int64) {
	steps := ceilLog2(c.w)
	total := int64(c.w-1) * b
	c.stats.addComm(phase, OpBroadcast, total, c.simTime(steps, float64(steps)*float64(b)))
}

// AllGatherSmall charges an all-gather where every worker contributes b
// bytes and receives everyone else's contribution (exchanging local best
// splits in vertical partitioning, Section 2.2.1).
func (c *Cluster) AllGatherSmall(phase string, b int64) {
	total := int64(c.w) * int64(c.w-1) * b
	c.stats.addComm(phase, OpAllGather, total, c.simTime(ceilLog2(c.w), float64(c.w-1)*float64(b)))
}

// PointToPoint charges a single b-byte message between two workers (or
// worker and master).
func (c *Cluster) PointToPoint(phase string, b int64) {
	c.stats.addComm(phase, OpPointToPoint, b, c.simTime(1, float64(b)))
}

// Shuffle charges an all-to-all repartition where sendBytes[i][j] bytes
// move from worker i to worker j (step 4 of the horizontal-to-vertical
// transformation). Simulated time is bounded by the busiest worker's
// send plus receive volume.
func (c *Cluster) Shuffle(phase string, sendBytes [][]int64) {
	if len(sendBytes) != c.w {
		panic(fmt.Sprintf("cluster: shuffle matrix has %d rows for %d workers", len(sendBytes), c.w))
	}
	var total int64
	var busiest float64
	for i := 0; i < c.w; i++ {
		var out, in int64
		for j := 0; j < c.w; j++ {
			if i != j {
				out += sendBytes[i][j]
				in += sendBytes[j][i]
			}
		}
		total += out
		if v := float64(out + in); v > busiest {
			busiest = v
		}
	}
	c.stats.addComm(phase, OpShuffle, total, c.simTime(c.w-1, busiest))
}

// ChargeComm records a raw communication volume with an explicit simulated
// duration; used by components that model costs themselves.
func (c *Cluster) ChargeComm(phase string, kind OpKind, bytes int64, seconds float64) {
	c.stats.addComm(phase, kind, bytes, seconds)
}

// sumAligned element-wise sums arrays that must all share one length.
func sumAligned(locals [][]float64) []float64 {
	sum := make([]float64, len(locals[0]))
	sumAlignedInto(locals, sum)
	return sum
}

// sumAlignedInto element-wise sums the arrays into dst, overwriting it.
// All arrays and dst must share one length, and the reduction adds workers
// in index order — the deterministic order every collective exposes. dst
// must not alias any local: it is cleared before the sum, so an aliased
// worker's contribution would silently vanish.
func sumAlignedInto(locals [][]float64, dst []float64) {
	n := len(dst)
	for w, l := range locals {
		if len(l) != n {
			panic(fmt.Sprintf("cluster: worker %d array has %d entries, dst has %d", w, len(l), n))
		}
		if n > 0 && &l[0] == &dst[0] {
			panic(fmt.Sprintf("cluster: dst aliases worker %d's array", w))
		}
	}
	clear(dst)
	for _, l := range locals {
		for i, v := range l {
			dst[i] += v
		}
	}
}

func ceilLog2(x int) int {
	n := 0
	for p := 1; p < x; p <<= 1 {
		n++
	}
	return n
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
