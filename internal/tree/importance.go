package tree

import (
	"fmt"
	"sort"
	"strings"
)

// ImportanceKind selects how feature importance is aggregated.
type ImportanceKind string

// Importance kinds, mirroring the conventions of the systems the paper
// evaluates (XGBoost/LightGBM expose the same three).
const (
	// ImportanceGain sums Equation 2 split gains per feature.
	ImportanceGain ImportanceKind = "gain"
	// ImportanceSplit counts how many splits use the feature.
	ImportanceSplit ImportanceKind = "split"
)

// FeatureImportance aggregates importance over all trees of the forest,
// returning a map from global feature id to score.
func (f *Forest) FeatureImportance(kind ImportanceKind) (map[int32]float64, error) {
	out := make(map[int32]float64)
	for _, t := range f.Trees {
		for i := range t.Nodes {
			n := &t.Nodes[i]
			if n.IsLeaf() {
				continue
			}
			switch kind {
			case ImportanceGain:
				out[n.Feature] += n.Gain
			case ImportanceSplit:
				out[n.Feature]++
			default:
				return nil, fmt.Errorf("tree: unknown importance kind %q", kind)
			}
		}
	}
	return out, nil
}

// RankedFeature is one entry of a sorted importance report.
type RankedFeature struct {
	Feature int32
	Score   float64
}

// TopFeatures returns the k most important features, ties broken by
// feature id.
func (f *Forest) TopFeatures(kind ImportanceKind, k int) ([]RankedFeature, error) {
	imp, err := f.FeatureImportance(kind)
	if err != nil {
		return nil, err
	}
	out := make([]RankedFeature, 0, len(imp))
	for feat, score := range imp {
		out = append(out, RankedFeature{Feature: feat, Score: score})
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Score != out[j].Score {
			return out[i].Score > out[j].Score
		}
		return out[i].Feature < out[j].Feature
	})
	if k > 0 && len(out) > k {
		out = out[:k]
	}
	return out, nil
}

// Dump renders the tree as an indented text diagram, one node per line —
// the diagnostic format every mature GBDT system ships.
func (t *Tree) Dump() string {
	var b strings.Builder
	var walk func(id int32, depth int)
	walk = func(id int32, depth int) {
		n := &t.Nodes[id]
		indent := strings.Repeat("  ", depth)
		if n.IsLeaf() {
			fmt.Fprintf(&b, "%s%d: leaf weights=%v\n", indent, id, n.Weights)
			return
		}
		dir := "right"
		if n.DefaultLeft {
			dir = "left"
		}
		fmt.Fprintf(&b, "%s%d: [f%d <= %g] gain=%.4f default=%s\n",
			indent, id, n.Feature, n.SplitValue, n.Gain, dir)
		walk(n.Left, depth+1)
		walk(n.Right, depth+1)
	}
	if len(t.Nodes) > 0 {
		walk(0, 0)
	}
	return b.String()
}

// Stats summarizes a forest for reporting.
type Stats struct {
	NumTrees    int
	TotalNodes  int
	TotalLeaves int
	MaxDepth    int
	// MeanGain is the average split gain across all interior nodes.
	MeanGain float64
}

// Summarize computes forest statistics.
func (f *Forest) Summarize() Stats {
	s := Stats{NumTrees: len(f.Trees)}
	var gainSum float64
	var splits int
	for _, t := range f.Trees {
		s.TotalNodes += len(t.Nodes)
		s.TotalLeaves += t.NumLeaves()
		if d := t.MaxDepth(); d > s.MaxDepth {
			s.MaxDepth = d
		}
		for i := range t.Nodes {
			if !t.Nodes[i].IsLeaf() {
				gainSum += t.Nodes[i].Gain
				splits++
			}
		}
	}
	if splits > 0 {
		s.MeanGain = gainSum / float64(splits)
	}
	return s
}
