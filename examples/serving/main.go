// Serving: train a model, save it with Encode (the artifact cmd/veroserve
// loads), then score traffic through the flat serving engine — the same
// Predictor that backs veroserve's HTTP endpoints — comparing the
// training-side pointer walk, the per-row flat walk, and the blocked
// tree-major batch kernel. All three produce bit-identical margins.
//
// To serve the saved model over HTTP instead (with hot-swap enabled):
//
//	go run ./cmd/veroserve -model /tmp/vero-model.json -admin
//	curl -d '{"rows":[{"indices":[0,3],"values":[1.5,-2]}],"proba":true}' localhost:8080/v1/predict
//	curl -d '{"path":"/tmp/vero-model.json"}' localhost:8080/v1/models/default  # hot-swap
//	curl localhost:8080/metricz
package main

import (
	"fmt"
	"log"
	"os"
	"time"

	"vero/gbdt"
)

func main() {
	ds, err := gbdt.Synthetic(gbdt.SyntheticConfig{
		N: 20000, D: 100, C: 2,
		InformativeRatio: 0.2, Density: 0.2, LabelNoise: 0.05, Seed: 7,
	})
	if err != nil {
		log.Fatal(err)
	}
	train, traffic := ds.Split(0.5, 7)
	model, _, err := gbdt.Train(train, gbdt.Options{Workers: 8, Trees: 50, Layers: 6})
	if err != nil {
		log.Fatal(err)
	}

	encoded, err := model.Encode()
	if err != nil {
		log.Fatal(err)
	}
	const path = "/tmp/vero-model.json"
	if err := os.WriteFile(path, encoded, 0o644); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("saved %d-tree model (%d KB) to %s\n", model.NumTrees(), len(encoded)/1024, path)

	// Three engines, one margin: the training forest's pointer walk, the
	// flat per-row walk (BlockRows: 1) and the blocked batch kernel
	// (default), all single-threaded so the comparison isolates layout.
	perRow, err := gbdt.NewPredictor(model, gbdt.PredictorOptions{Workers: 1, BlockRows: 1})
	if err != nil {
		log.Fatal(err)
	}
	blocked, err := gbdt.NewPredictor(model, gbdt.PredictorOptions{Workers: 1})
	if err != nil {
		log.Fatal(err)
	}

	start := time.Now()
	slow := model.Forest().PredictCSR(traffic.X)
	pointerSec := time.Since(start).Seconds()
	start = time.Now()
	flat := perRow.Predict(traffic)
	flatSec := time.Since(start).Seconds()
	start = time.Now()
	fast := blocked.Predict(traffic)
	blockSec := time.Since(start).Seconds()
	for i := range fast {
		if fast[i] != slow[i] || flat[i] != slow[i] {
			log.Fatalf("engines disagree at %d", i)
		}
	}
	n := float64(traffic.NumInstances())
	fmt.Printf("pointer walk:  %8.0f rows/s\n", n/pointerSec)
	fmt.Printf("flat per-row:  %8.0f rows/s (%.1fx, bit-exact)\n", n/flatSec, pointerSec/flatSec)
	fmt.Printf("flat blocked:  %8.0f rows/s (%.1fx, bit-exact)\n", n/blockSec, pointerSec/blockSec)

	probs := blocked.Probabilities(fast[:5])
	fmt.Printf("first margins:       %.4f\n", fast[:5])
	fmt.Printf("first probabilities: %.4f\n", probs)
}
