package gbdt

import (
	"bytes"
	"fmt"
	"net"
	"strings"
	"sync"
	"testing"
	"time"

	"vero/internal/cluster/tcptransport"
	"vero/internal/failpoint"
)

// loopbackMesh pre-binds one port-0 loopback listener per rank so every
// peer's address exists before any rank dials, and returns the resulting
// rank-ordered peer list with the listeners to hand each rank.
func loopbackMesh(t *testing.T, w int) ([]string, []net.Listener) {
	t.Helper()
	peers := make([]string, w)
	lns := make([]net.Listener, w)
	for r := 0; r < w; r++ {
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { ln.Close() })
		lns[r] = ln
		peers[r] = ln.Addr().String()
	}
	return peers, lns
}

// distDataset builds the dataset every rank of a test deployment loads.
// Synthetic generation is deterministic, so separate calls stand in for
// separate processes reading the same file.
func distDataset(t *testing.T) *Dataset {
	t.Helper()
	ds, err := Synthetic(SyntheticConfig{N: 400, D: 24, C: 2, InformativeRatio: 0.5, Density: 0.5, Seed: 21})
	if err != nil {
		t.Fatal(err)
	}
	return ds
}

// distRank is one rank's training outcome.
type distRank struct {
	enc    []byte
	report *Report
	err    error
}

// trainMesh trains opts on a W-rank loopback mesh, one goroutine per
// rank, each with its own independently loaded dataset.
func trainMesh(t *testing.T, opts Options, w int) []distRank {
	t.Helper()
	peers, lns := loopbackMesh(t, w)
	outs := make([]distRank, w)
	var wg sync.WaitGroup
	for r := 0; r < w; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			ds, err := Synthetic(SyntheticConfig{N: 400, D: 24, C: 2, InformativeRatio: 0.5, Density: 0.5, Seed: 21})
			if err != nil {
				outs[r].err = err
				return
			}
			o := opts
			o.Distributed = &DistributedOptions{
				Peers: peers, Rank: r, listener: lns[r],
				DialTimeout: 10 * time.Second, OpTimeout: 10 * time.Second,
			}
			m, rep, err := Train(ds, o)
			if err != nil {
				outs[r].err = err
				return
			}
			outs[r].report = rep
			outs[r].enc, outs[r].err = m.Encode()
		}(r)
	}
	wg.Wait()
	return outs
}

// TestSocketTrainingBitIdentical is the tentpole acceptance test: for
// every quadrant (and both QD2 aggregation schemes), a real TCP loopback
// deployment of 2 and 4 ranks must train byte-for-byte the model a
// single-process simulation of the same worker count produces, and every
// phase's measured payload must equal the alpha-beta model's accounted
// volume exactly.
func TestSocketTrainingBitIdentical(t *testing.T) {
	if testing.Short() {
		t.Skip("spins up multi-rank TCP meshes")
	}
	cases := []struct {
		name string
		opts Options
	}{
		{"qd1-allreduce", Options{Quadrant: QD1}},
		{"qd2-reducescatter", Options{Quadrant: QD2}},
		{"qd2-paramserver", Options{System: SystemDimBoost}},
		{"qd3-hybrid", Options{Quadrant: QD3}},
		{"qd4-vero", Options{Quadrant: QD4}},
	}
	for _, tc := range cases {
		for _, w := range []int{2, 4} {
			t.Run(fmt.Sprintf("%s/w%d", tc.name, w), func(t *testing.T) {
				opts := tc.opts
				opts.Workers = w
				opts.Trees = 2
				opts.Layers = 4
				opts.Splits = 12
				simM, simR, err := Train(distDataset(t), opts)
				if err != nil {
					t.Fatalf("simulated: %v", err)
				}
				want := encode(t, simM)

				outs := trainMesh(t, opts, w)
				for r, out := range outs {
					if out.err != nil {
						t.Fatalf("rank %d: %v", r, out.err)
					}
					if !bytes.Equal(out.enc, want) {
						t.Errorf("rank %d: socket-trained model differs from the simulation", r)
					}
					rep := out.report
					if !rep.Distributed || rep.Rank != r {
						t.Errorf("rank %d: report says distributed=%v rank=%d", r, rep.Distributed, rep.Rank)
					}
					// The model's accounted volume is invariant across
					// backends, and the deployment-wide measured payload
					// must match it phase by phase.
					if rep.CommBytes != simR.CommBytes {
						t.Errorf("rank %d: accounted %d B, simulation accounted %d B", r, rep.CommBytes, simR.CommBytes)
					}
					if rep.MeasuredCommBytes != rep.CommBytes {
						t.Errorf("rank %d: measured %d B != accounted %d B", r, rep.MeasuredCommBytes, rep.CommBytes)
					}
					if rep.WireBytes <= 0 {
						t.Errorf("rank %d: wire volume %d B, want framing overhead on top of the payload", r, rep.WireBytes)
					}
					for _, p := range rep.Phases {
						if p.MeasuredBytes != p.AccountedBytes {
							t.Errorf("rank %d phase %s: measured %d B != accounted %d B", r, p.Phase, p.MeasuredBytes, p.AccountedBytes)
						}
					}
				}
			})
		}
	}
}

// TestDistributedAbortsAtTreeBoundary injects a transport write failure
// after the first tree completes: every rank must abort with the trainer's
// tree-boundary error instead of hanging or appending a half-reduced tree.
func TestDistributedAbortsAtTreeBoundary(t *testing.T) {
	if testing.Short() {
		t.Skip("spins up a TCP mesh")
	}
	defer failpoint.Reset()
	opts := Options{Quadrant: QD1, Trees: 4, Layers: 4, Splits: 12}
	opts.OnTree = func(i int, _ float64, _ *Tree) {
		// Arm on every rank's first tree boundary; the point is global to
		// the process, so the first rank to finish tree 0 breaks the mesh.
		if i == 0 {
			if err := failpoint.Enable(tcptransport.FailpointWrite, "error"); err != nil {
				t.Error(err)
			}
		}
	}
	for r, out := range trainMesh(t, opts, 2) {
		if out.err == nil {
			t.Fatalf("rank %d: training succeeded with a broken transport", r)
		}
		if !strings.Contains(out.err.Error(), "distributed training aborted during round") {
			t.Errorf("rank %d: error %q is not the tree-boundary abort", r, out.err)
		}
	}
}

// TestDistributedRejections covers the v1 feature gates: options that
// cannot keep ranks bit-identical must be refused up front.
func TestDistributedRejections(t *testing.T) {
	ds := distDataset(t)
	opts := Options{Trees: 1, Layers: 3,
		Distributed: &DistributedOptions{Peers: []string{"127.0.0.1:1", "127.0.0.1:2"}}}
	if _, _, err := TrainWithEarlyStopping(ds, ds, opts, 2); err == nil ||
		!strings.Contains(err.Error(), "early stopping") {
		t.Errorf("early stopping on a distributed cluster: err = %v", err)
	}
}
