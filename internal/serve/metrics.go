// Per-model request accounting: lock-free counters plus a fixed-bucket
// latency histogram cheap enough to update on every request, from which
// /metricz derives p50/p99 at scrape time.
package serve

import (
	"sync/atomic"
	"time"
)

// latBuckets is the number of geometric latency buckets. Bucket i counts
// requests with latency <= latBucketFloor<<i; the last bucket absorbs
// everything slower.
const (
	latBuckets     = 26
	latBucketFloor = 10 * time.Microsecond // bucket 0 upper bound
)

// modelMetrics is the accounting shared by every version of a served
// model name. All fields are atomics; updates never block prediction.
type modelMetrics struct {
	requests atomic.Int64 // completed predict requests (any status)
	errors   atomic.Int64 // predict requests answered with an error status
	rejected atomic.Int64 // requests that gave up waiting for admission
	rows     atomic.Int64 // instances scored
	inFlight atomic.Int64 // predict requests currently admitted
	buckets  [latBuckets]atomic.Int64

	// Micro-batching accounting (see batcher.go). batchedRows/batches is
	// the achieved batching factor.
	batches     atomic.Int64             // coalesced batches flushed
	batchedRows atomic.Int64             // rows scored through batches
	batchInline atomic.Int64             // rows that took the inline fast path
	batchFlush  [3]atomic.Int64          // flushes by cause: full, deadline, drain
	queueWait   [latBuckets]atomic.Int64 // per-row time spent queued
}

// observeQueueWait records how long one row waited in the coalescing
// queue before its batch flushed.
func (m *modelMetrics) observeQueueWait(d time.Duration) {
	b, bound := 0, latBucketFloor
	for b < latBuckets-1 && d > bound {
		b++
		bound <<= 1
	}
	m.queueWait[b].Add(1)
}

// observe records one completed request.
func (m *modelMetrics) observe(d time.Duration, rows int, failed bool) {
	m.requests.Add(1)
	m.rows.Add(int64(rows))
	if failed {
		m.errors.Add(1)
		return
	}
	b, bound := 0, latBucketFloor
	for b < latBuckets-1 && d > bound {
		b++
		bound <<= 1
	}
	m.buckets[b].Add(1)
}

// MetricsSnapshot is one model's /metricz entry.
type MetricsSnapshot struct {
	Model     string  `json:"model"`
	Version   int     `json:"version"`
	Requests  int64   `json:"requests"`
	Errors    int64   `json:"errors"`
	Rejected  int64   `json:"rejected"`
	Rows      int64   `json:"rows"`
	InFlight  int64   `json:"in_flight"`
	LatencyMs Latency `json:"latency_ms"`
	// Batching is present when the model serves with micro-batching.
	Batching *BatchingSnapshot `json:"batching,omitempty"`
}

// BatchingSnapshot is a model's micro-batching accounting in /metricz.
type BatchingSnapshot struct {
	Batches     int64 `json:"batches"`
	BatchedRows int64 `json:"batched_rows"`
	// Factor is the achieved batching factor, rows per flushed batch.
	Factor        float64 `json:"factor"`
	FlushFull     int64   `json:"flush_full"`
	FlushDeadline int64   `json:"flush_deadline"`
	FlushDrain    int64   `json:"flush_drain"`
	// Inline counts rows that skipped the queue (no concurrent request to
	// coalesce with) and were scored directly.
	Inline int64 `json:"inline"`
	// QueueWaitMs summarizes per-row time spent in the coalescing queue.
	QueueWaitMs Latency `json:"queue_wait_ms"`
}

// Latency summarizes the fixed-bucket histogram. P50 and P99 are upper
// bounds of the bucket containing the quantile (0 when no request has
// completed successfully).
type Latency struct {
	Count int64   `json:"count"`
	P50   float64 `json:"p50"`
	P99   float64 `json:"p99"`
}

// snapshot reads the counters. Concurrent updates may land between reads;
// each individual figure is exact at its read point. batching selects
// whether the micro-batching section is included.
func (m *modelMetrics) snapshot(name string, version int, batching bool) MetricsSnapshot {
	var counts [latBuckets]int64
	var total int64
	for i := range counts {
		counts[i] = m.buckets[i].Load()
		total += counts[i]
	}
	snap := MetricsSnapshot{
		Model:    name,
		Version:  version,
		Requests: m.requests.Load(),
		Errors:   m.errors.Load(),
		Rejected: m.rejected.Load(),
		Rows:     m.rows.Load(),
		InFlight: m.inFlight.Load(),
		LatencyMs: Latency{
			Count: total,
			P50:   quantileMs(counts[:], total, 0.50),
			P99:   quantileMs(counts[:], total, 0.99),
		},
	}
	if batching {
		var waits [latBuckets]int64
		var waited int64
		for i := range waits {
			waits[i] = m.queueWait[i].Load()
			waited += waits[i]
		}
		bs := &BatchingSnapshot{
			Batches:       m.batches.Load(),
			BatchedRows:   m.batchedRows.Load(),
			FlushFull:     m.batchFlush[flushFull].Load(),
			FlushDeadline: m.batchFlush[flushDeadline].Load(),
			FlushDrain:    m.batchFlush[flushDrain].Load(),
			Inline:        m.batchInline.Load(),
			QueueWaitMs: Latency{
				Count: waited,
				P50:   quantileMs(waits[:], waited, 0.50),
				P99:   quantileMs(waits[:], waited, 0.99),
			},
		}
		if bs.Batches > 0 {
			bs.Factor = float64(bs.BatchedRows) / float64(bs.Batches)
		}
		snap.Batching = bs
	}
	return snap
}

// quantileMs returns the upper bound, in milliseconds, of the bucket
// containing quantile q.
func quantileMs(counts []int64, total int64, q float64) float64 {
	if total == 0 {
		return 0
	}
	rank := int64(q*float64(total-1)) + 1
	var cum int64
	bound := latBucketFloor
	for i, c := range counts {
		cum += c
		if cum >= rank || i == len(counts)-1 {
			return float64(bound) / float64(time.Millisecond)
		}
		bound <<= 1
	}
	return float64(bound) / float64(time.Millisecond)
}
