package cluster

import (
	"encoding/binary"
	"fmt"
	"io"
	"math"
	"net"
	"sync"
)

// RingAllReduce performs a real ring all-reduce of per-worker float64
// arrays over the given connections: conns[i] carries traffic from worker
// i to worker (i+1) mod W. It exists to validate the simulator's cost
// accounting against genuine wire traffic (see TestRingAllReduceMatches
// Model): every worker sends exactly 2(W-1)/W of the payload, the volume
// ChargeAllReduce charges.
//
// The reduce-scatter phase circulates partial sums for W-1 steps; the
// all-gather phase circulates finished shards for another W-1 steps. Each
// step moves one shard (1/W of the array) per worker.
func RingAllReduce(locals [][]float64, send []net.Conn, recv []net.Conn) error {
	w := len(locals)
	if w == 0 {
		return fmt.Errorf("cluster: no workers")
	}
	if len(send) != w || len(recv) != w {
		return fmt.Errorf("cluster: %d workers but %d/%d connections", w, len(send), len(recv))
	}
	n := len(locals[0])
	for i, l := range locals {
		if len(l) != n {
			return fmt.Errorf("cluster: worker %d has %d entries, worker 0 has %d", i, len(l), n)
		}
	}
	if w == 1 {
		return nil
	}
	// Shard boundaries: shard s covers [bounds[s], bounds[s+1]).
	bounds := make([]int, w+1)
	for s := 0; s <= w; s++ {
		bounds[s] = s * n / w
	}
	shard := func(x []float64, s int) []float64 {
		s = ((s % w) + w) % w
		return x[bounds[s]:bounds[s+1]]
	}

	var wg sync.WaitGroup
	errs := make([]error, w)
	wg.Add(w)
	for i := 0; i < w; i++ {
		go func(i int) {
			defer wg.Done()
			buf := locals[i]
			tmp := make([]float64, n)
			// Phase 1: reduce-scatter. At step t, worker i sends shard
			// (i-t) and receives shard (i-t-1), adding it in.
			for t := 0; t < w-1; t++ {
				out := shard(buf, i-t)
				in := shard(tmp, i-t-1)
				if err := exchange(send[i], recv[i], out, in); err != nil {
					errs[i] = err
					return
				}
				dst := shard(buf, i-t-1)
				for k := range dst {
					dst[k] += in[k]
				}
			}
			// Phase 2: all-gather. Worker i owns the fully reduced shard
			// (i+1); circulate finished shards.
			for t := 0; t < w-1; t++ {
				out := shard(buf, i+1-t)
				in := shard(tmp, i-t)
				if err := exchange(send[i], recv[i], out, in); err != nil {
					errs[i] = err
					return
				}
				copy(shard(buf, i-t), in)
			}
		}(i)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}

// exchange concurrently writes out to the send connection and fills in
// from the receive connection.
func exchange(send, recv net.Conn, out, in []float64) error {
	errc := make(chan error, 1)
	go func() {
		errc <- writeFloats(send, out)
	}()
	if err := readFloats(recv, in); err != nil {
		<-errc
		return err
	}
	return <-errc
}

func writeFloats(w io.Writer, xs []float64) error {
	buf := make([]byte, 8*len(xs))
	for i, x := range xs {
		binary.LittleEndian.PutUint64(buf[i*8:], math.Float64bits(x))
	}
	_, err := w.Write(buf)
	return err
}

func readFloats(r io.Reader, xs []float64) error {
	buf := make([]byte, 8*len(xs))
	if _, err := io.ReadFull(r, buf); err != nil {
		return err
	}
	for i := range xs {
		xs[i] = math.Float64frombits(binary.LittleEndian.Uint64(buf[i*8:]))
	}
	return nil
}

// CountingConn wraps a net.Conn and counts bytes in both directions.
type CountingConn struct {
	net.Conn
	mu      sync.Mutex
	written int64
	read    int64
}

// Write implements net.Conn.
func (c *CountingConn) Write(p []byte) (int, error) {
	n, err := c.Conn.Write(p)
	c.mu.Lock()
	c.written += int64(n)
	c.mu.Unlock()
	return n, err
}

// Read implements net.Conn.
func (c *CountingConn) Read(p []byte) (int, error) {
	n, err := c.Conn.Read(p)
	c.mu.Lock()
	c.read += int64(n)
	c.mu.Unlock()
	return n, err
}

// Written returns the total bytes written through the connection.
func (c *CountingConn) Written() int64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.written
}

// ReadBytes returns the total bytes read through the connection.
func (c *CountingConn) ReadBytes() int64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.read
}
