package systems

import (
	"testing"

	"vero/internal/cluster"
	"vero/internal/core"
	"vero/internal/datasets"
	"vero/internal/loss"
)

func testData(t *testing.T, c int) *datasets.Dataset {
	t.Helper()
	ds, err := datasets.Synthetic(datasets.SyntheticConfig{
		N: 1200, D: 60, C: c, InformativeRatio: 0.4, Density: 0.3, Seed: 31,
	})
	if err != nil {
		t.Fatal(err)
	}
	return ds
}

func baseConfig() core.Config {
	return core.Config{Trees: 3, Layers: 5, Splits: 16}
}

func TestAllSystemsTrainBinary(t *testing.T) {
	ds := testData(t, 2)
	train, valid := ds.Split(0.8, 5)
	for _, s := range All() {
		cl := cluster.New(4, cluster.Gigabit())
		res, err := Train(cl, train, s, baseConfig())
		if err != nil {
			t.Fatalf("%s: %v", s, err)
		}
		auc := loss.AUC(res.Forest.PredictCSR(valid.X), valid.Labels)
		if auc < 0.6 {
			t.Errorf("%s: validation AUC %v", s, auc)
		}
	}
}

// TestSystemsAgreeOnModel: every facade is the same algorithm, so all
// must produce the identical forest (the paper's same-code-base premise).
func TestSystemsAgreeOnModel(t *testing.T) {
	ds := testData(t, 2)
	var ref *core.Result
	for _, s := range All() {
		cl := cluster.New(3, cluster.Gigabit())
		res, err := Train(cl, ds, s, baseConfig())
		if err != nil {
			t.Fatal(err)
		}
		if ref == nil {
			ref = res
			continue
		}
		for ti := range ref.Forest.Trees {
			a, b := ref.Forest.Trees[ti], res.Forest.Trees[ti]
			if len(a.Nodes) != len(b.Nodes) {
				t.Fatalf("%s: tree %d shape differs", s, ti)
			}
			for ni := range a.Nodes {
				if a.Nodes[ni].Feature != b.Nodes[ni].Feature || a.Nodes[ni].SplitBin != b.Nodes[ni].SplitBin {
					t.Fatalf("%s: tree %d node %d differs", s, ti, ni)
				}
			}
		}
	}
}

func TestDimBoostRejectsMultiClass(t *testing.T) {
	ds := testData(t, 4)
	cl := cluster.New(2, cluster.Gigabit())
	if _, err := Train(cl, ds, DimBoost, baseConfig()); err == nil {
		t.Fatal("DimBoost accepted a multi-class dataset")
	}
}

func TestMultiClassSystems(t *testing.T) {
	ds := testData(t, 4)
	for _, s := range []System{XGBoost, LightGBM, Vero} {
		cl := cluster.New(3, cluster.Gigabit())
		res, err := Train(cl, ds, s, baseConfig())
		if err != nil {
			t.Fatalf("%s: %v", s, err)
		}
		acc := loss.MultiAccuracy(res.Forest.PredictCSR(ds.X), ds.Labels, 4)
		if acc < 0.4 {
			t.Errorf("%s: train accuracy %v", s, acc)
		}
	}
}

func TestUnknownSystem(t *testing.T) {
	ds := testData(t, 2)
	if _, err := Configure("nope", baseConfig(), ds); err == nil {
		t.Fatal("unknown system accepted")
	}
}

func TestDescribe(t *testing.T) {
	for _, s := range All() {
		if Describe(s) == "unknown system" {
			t.Errorf("%s lacks a description", s)
		}
	}
}

// TestHighDimCommOrdering reproduces Table 3's qualitative ordering on a
// high-dimensional sparse workload: XGBoost moves the most bytes (full
// all-reduce, no subtraction benefit), LightGBM less (reduce-scatter +
// subtraction), Vero the least (placement bitmaps only).
func TestHighDimCommOrdering(t *testing.T) {
	ds, err := datasets.Synthetic(datasets.SyntheticConfig{
		N: 1500, D: 800, C: 2, InformativeRatio: 0.2, Density: 0.05, Seed: 77,
	})
	if err != nil {
		t.Fatal(err)
	}
	trainBytes := func(s System) int64 {
		cl := cluster.New(4, cluster.Gigabit())
		if _, err := Train(cl, ds, s, baseConfig()); err != nil {
			t.Fatal(err)
		}
		var total int64
		for _, ph := range []string{"train.histogram", "train.split", "train.node", "train.update", "train.gradient"} {
			p := cl.Stats().Phase(ph)
			total += p.TotalBytes()
		}
		return total
	}
	xgb := trainBytes(XGBoost)
	lgb := trainBytes(LightGBM)
	vero := trainBytes(Vero)
	if !(xgb > lgb && lgb > vero) {
		t.Fatalf("byte ordering violated: xgboost=%d lightgbm=%d vero=%d", xgb, lgb, vero)
	}
}
