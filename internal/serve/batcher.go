// Cross-request micro-batching: concurrent single-row predict requests
// coalesce into one blocked PredictRows call, trading a bounded sub-
// millisecond queue wait for the throughput of the batch kernel.
//
// The coalescer is leader-follower and runs no background goroutine. The
// first request to find the queue empty opens a batch and becomes its
// leader, arming the flush deadline; followers append rows. The batch is
// scored by whichever request closes it: the follower whose row fills it
// to MaxRows (flush cause "full"), the leader when the deadline timer
// fires first (cause "deadline"), or Close during shutdown (cause
// "drain"). Every enqueued request blocks on the batch's done channel and
// reads its own margin slice back — exactly one response per request, no
// drops, no double answers.
//
// A batcher is bound to one compiled predictor, so each model version gets
// a fresh batcher: rows enqueued before a hot-swap are scored by — and
// answered as — the version they resolved. Swap and Delete drain the
// outgoing version's queue immediately rather than waiting out its
// deadline.
//
// Queuing only pays when another request is likely to arrive within the
// deadline, and the predictor scores a single row in microseconds — far
// less than any deadline — so instantaneous occupancy is a useless
// signal: even at tens of thousands of requests per second the previous
// request has usually finished before the next arrives. The coalescer
// therefore keys the fast path off the arrival rate instead. When the
// queue is empty and the previous request arrived more than one deadline
// ago, no companion can be expected before the flush and waiting would be
// pure added latency: enqueue refuses (the "inline" fast path) and the
// handler scores directly. Under load, inter-arrival gaps shrink below
// the deadline and every request queues.
package serve

import (
	"sync"
	"time"

	"vero/gbdt"
)

// BatchConfig configures one model's micro-batching.
type BatchConfig struct {
	// Deadline is the longest a queued row waits before its batch is
	// flushed. Zero or negative disables batching.
	Deadline time.Duration
	// MaxRows flushes a batch as soon as this many rows coalesce (default
	// Options.BlockRows, clamped to MaxInFlight — admission caps how many
	// single-row requests can ever wait at once). Values <= 1 disable
	// batching.
	MaxRows int
}

// clock abstracts time for the batcher so tests drive deadlines
// deterministically.
type clock interface {
	Now() time.Time
	NewTimer(d time.Duration) batchTimer
}

type batchTimer interface {
	C() <-chan time.Time
	Stop() bool
}

type realClock struct{}

func (realClock) Now() time.Time { return time.Now() }

func (realClock) NewTimer(d time.Duration) batchTimer { return realTimer{time.NewTimer(d)} }

type realTimer struct{ t *time.Timer }

func (t realTimer) C() <-chan time.Time { return t.t.C }
func (t realTimer) Stop() bool          { return t.t.Stop() }

// flush causes, indexed into modelMetrics.
const (
	flushFull = iota
	flushDeadline
	flushDrain
)

// pendingBatch is one open batch: rows from distinct requests awaiting a
// shared scoring call.
type pendingBatch struct {
	feats [][]uint32
	vals  [][]float32
	enq   []time.Time // per-row enqueue time, for the queue-wait histogram

	// taken flips (under the batcher mutex) when a flusher claims the
	// batch; full is then closed so a waiting leader stops its timer.
	taken bool
	full  chan struct{}
	// done is closed once out holds every row's margins.
	done chan struct{}
	out  []float64
}

// batcher coalesces single-row requests for one (model, version) handle.
type batcher struct {
	pred    *gbdt.Predictor
	cfg     BatchConfig
	clk     clock
	metrics *modelMetrics

	mu     sync.Mutex
	cur    *pendingBatch // open batch accepting rows, nil when none
	last   time.Time     // previous enqueue attempt, for the arrival-gap fast path
	closed bool
}

func newBatcher(pred *gbdt.Predictor, cfg BatchConfig, clk clock, m *modelMetrics) *batcher {
	return &batcher{pred: pred, cfg: cfg, clk: clk, metrics: m}
}

// enqueue submits one row and blocks until its batch is scored, returning
// the row's margins (length NumClass). ok is false when the batcher is
// closed or chose the inline fast path — the caller then scores the row
// itself.
func (b *batcher) enqueue(feat []uint32, val []float32) (margins []float64, ok bool) {
	now := b.clk.Now()
	b.mu.Lock()
	if b.closed {
		b.mu.Unlock()
		return nil, false
	}
	prev := b.last
	b.last = now
	leader := false
	if b.cur == nil {
		// Nobody queued. If arrivals are sparser than the deadline, no
		// companion will show up before the flush either; skip the wait.
		if prev.IsZero() || now.Sub(prev) > b.cfg.Deadline {
			b.mu.Unlock()
			b.metrics.batchInline.Add(1)
			return nil, false
		}
		b.cur = &pendingBatch{
			feats: make([][]uint32, 0, b.cfg.MaxRows),
			vals:  make([][]float32, 0, b.cfg.MaxRows),
			enq:   make([]time.Time, 0, b.cfg.MaxRows),
			full:  make(chan struct{}),
			done:  make(chan struct{}),
		}
		leader = true
	}
	bt := b.cur
	idx := len(bt.feats)
	bt.feats = append(bt.feats, feat)
	bt.vals = append(bt.vals, val)
	bt.enq = append(bt.enq, now)
	filled := len(bt.feats) >= b.cfg.MaxRows
	if filled {
		b.takeLocked(bt)
	}
	b.mu.Unlock()

	if filled {
		b.flush(bt, flushFull)
	} else if leader {
		timer := b.clk.NewTimer(b.cfg.Deadline)
		select {
		case <-bt.full:
			// A follower filled the batch (or Close drained it); the
			// taker flushes.
			timer.Stop()
		case <-timer.C():
			b.mu.Lock()
			took := !bt.taken
			if took {
				b.takeLocked(bt)
			}
			b.mu.Unlock()
			if took {
				b.flush(bt, flushDeadline)
			}
		}
	}

	<-bt.done
	k := b.pred.NumClass()
	return bt.out[idx*k : (idx+1)*k], true
}

// takeLocked claims bt for flushing. Callers hold b.mu.
func (b *batcher) takeLocked(bt *pendingBatch) {
	bt.taken = true
	if b.cur == bt {
		b.cur = nil
	}
	close(bt.full)
}

// flush scores a claimed batch and releases every waiting request.
func (b *batcher) flush(bt *pendingBatch, cause int) {
	now := b.clk.Now()
	for _, t0 := range bt.enq {
		b.metrics.observeQueueWait(now.Sub(t0))
	}
	b.metrics.batches.Add(1)
	b.metrics.batchedRows.Add(int64(len(bt.feats)))
	b.metrics.batchFlush[cause].Add(1)
	bt.out = b.pred.PredictRows(bt.feats, bt.vals)
	close(bt.done)
}

// Close drains the open batch (flush cause "drain") and rejects further
// enqueues, which fall back to inline scoring. Requests already waiting
// are scored and answered; none are dropped. Safe to call more than once.
func (b *batcher) Close() {
	b.mu.Lock()
	b.closed = true
	bt := b.cur
	if bt != nil {
		b.takeLocked(bt)
	}
	b.mu.Unlock()
	if bt != nil {
		b.flush(bt, flushDrain)
	}
}
