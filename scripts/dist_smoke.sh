#!/usr/bin/env bash
# Distributed training smoke test: train the same `.vbin` cache image
# twice through a real `veroctl` — once on the single-process simulation,
# once as three OS processes meshed over loopback TCP — and require the
# two model files to be byte-identical. Also asserts the distributed run
# reports its measured payload equal to the alpha-beta model's accounted
# volume, and that an armed `cluster.tcp.write` failpoint aborts training
# at a tree boundary instead of hanging or writing a model. Run from the
# repo root; used by CI and reproducible locally with
# `bash scripts/dist_smoke.sh`.
set -euo pipefail

DIR="$(mktemp -d)"
trap 'rm -rf "$DIR"' EXIT

TRAIN_ARGS=(-data "$DIR/train.vbin" -classes 2 -trees 12 -layers 5 -system vero)

fail() { echo "FAIL: $1"; shift; for f in "$@"; do echo "--- $f:"; cat "$f"; done; exit 1; }

echo "== build"
go build -o "$DIR/veroctl" ./cmd/veroctl
go build -o "$DIR/datagen" ./cmd/datagen

echo "== generate a .vbin cache image"
"$DIR/datagen" -n 20000 -d 300 -c 2 -density 0.3 -informative 0.3 \
  -format vbin -out "$DIR/train.vbin"

echo "== single-process simulated reference run (3 workers)"
"$DIR/veroctl" train "${TRAIN_ARGS[@]}" -workers 3 -model "$DIR/sim.json" >"$DIR/sim.log" \
  || fail "simulated run failed" "$DIR/sim.log"

BASE=$(( (RANDOM % 20000) + 20000 ))
PEERS="127.0.0.1:$BASE,127.0.0.1:$((BASE+1)),127.0.0.1:$((BASE+2))"

echo "== 3-rank loopback deployment on $PEERS"
"$DIR/veroctl" train "${TRAIN_ARGS[@]}" -workers "$PEERS" -rank 1 \
  -model "$DIR/rank1.json" >"$DIR/rank1.log" 2>&1 & PID1=$!
"$DIR/veroctl" train "${TRAIN_ARGS[@]}" -workers "$PEERS" -rank 2 \
  -model "$DIR/rank2.json" >"$DIR/rank2.log" 2>&1 & PID2=$!
"$DIR/veroctl" train "${TRAIN_ARGS[@]}" -workers "$PEERS" -rank 0 \
  -model "$DIR/dist.json" >"$DIR/dist.log" 2>&1 \
  || fail "rank 0 failed" "$DIR/dist.log" "$DIR/rank1.log" "$DIR/rank2.log"
wait "$PID1" || fail "rank 1 failed" "$DIR/rank1.log"
wait "$PID2" || fail "rank 2 failed" "$DIR/rank2.log"

cmp -s "$DIR/sim.json" "$DIR/dist.json" \
  || fail "socket-trained model differs from the simulation" "$DIR/sim.log" "$DIR/dist.log"
grep -q "bytes agree" "$DIR/dist.log" \
  || fail "measured payload does not match the accounted volume" "$DIR/dist.log"
# Only the coordinating rank persists the model.
[ -f "$DIR/rank1.json" ] && fail "rank 1 wrote a model file" "$DIR/rank1.log"
echo "   models byte-identical; $(grep 'measured:' "$DIR/dist.log")"

echo "== injected transport write failure aborts at a tree boundary"
BASE=$(( (RANDOM % 20000) + 20000 ))
PEERS="127.0.0.1:$BASE,127.0.0.1:$((BASE+1))"
set +e
VERO_FAILPOINTS='cluster.tcp.write=20*error' \
  "$DIR/veroctl" train "${TRAIN_ARGS[@]}" -workers "$PEERS" -rank 1 \
  -model "$DIR/faulted1.json" >"$DIR/fault1.log" 2>&1 & PIDF=$!
VERO_FAILPOINTS='cluster.tcp.write=20*error' \
  "$DIR/veroctl" train "${TRAIN_ARGS[@]}" -workers "$PEERS" -rank 0 \
  -model "$DIR/faulted0.json" >"$DIR/fault0.log" 2>&1
STATUS=$?
wait "$PIDF"
STATUS1=$?
set -e
[ "$STATUS" -ne 0 ] || fail "rank 0 succeeded with a broken transport" "$DIR/fault0.log"
[ "$STATUS1" -ne 0 ] || fail "rank 1 succeeded with a broken transport" "$DIR/fault1.log"
grep -q "aborted during round" "$DIR/fault0.log" \
  || fail "injected-fault error is not the tree-boundary abort" "$DIR/fault0.log"
[ -f "$DIR/faulted0.json" ] && fail "model written despite injected write failures"
echo "   aborted with: $(tail -1 "$DIR/fault0.log")"

echo "dist smoke OK"
