package histogram

import "sync"

// Pool is a layout-keyed histogram arena. One training run allocates
// O(nodes x workers x trees) histograms, each 2 x NumFeat x MaxBins x C
// float64s — recycling them across nodes, layers and trees removes the
// dominant steady-state allocation of the training loop. Buffers are
// recycled per layout, so one pool serves workers with different feature
// group sizes (vertical quadrants); a Get under a layout the pool has
// never recycled simply falls back to a fresh allocation.
//
// Get returns zeroed histograms: fresh allocations are zero by
// construction, recycled ones are cleared on Put, so a pooled histogram is
// indistinguishable from histogram.New's output.
//
// Pool is safe for concurrent use — workers of a concurrent cluster
// allocate and release node histograms in parallel.
type Pool struct {
	mu   sync.Mutex
	free map[Layout][]*Hist

	gets, reuses int64
}

// NewPool returns an empty arena.
func NewPool() *Pool {
	return &Pool{free: make(map[Layout][]*Hist)}
}

// Get returns a zeroed histogram with the given layout, recycling a
// released buffer when one with the exact layout is available and
// allocating fresh otherwise.
func (p *Pool) Get(l Layout) *Hist {
	p.mu.Lock()
	p.gets++
	if hs := p.free[l]; len(hs) > 0 {
		h := hs[len(hs)-1]
		p.free[l] = hs[:len(hs)-1]
		p.reuses++
		p.mu.Unlock()
		return h
	}
	p.mu.Unlock()
	return New(l)
}

// Put releases a histogram back to the arena for reuse. Nil histograms and
// histograms whose buffers do not match their layout (e.g. views wrapping
// borrowed slices) are dropped rather than recycled. The caller must not
// touch h afterwards.
func (p *Pool) Put(h *Hist) {
	if h == nil {
		return
	}
	n := h.FloatsPerSide()
	if len(h.Grad) != n || len(h.Hess) != n {
		return
	}
	h.Reset() // zero now so Get hands out ready-to-use buffers
	p.mu.Lock()
	p.free[h.Layout] = append(p.free[h.Layout], h)
	p.mu.Unlock()
}

// Stats reports the number of Get calls and how many of them were served
// by recycling (the remainder allocated fresh).
func (p *Pool) Stats() (gets, reuses int64) {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.gets, p.reuses
}
