// Package index implements the three indexes between tree nodes and
// training instances analyzed in Section 3.2 of the paper:
//
//   - node-to-instance: tree node -> the instances on it. Used with
//     row-store (QD2, QD4); enables the histogram subtraction technique
//     because any node's instance set is directly addressable.
//   - instance-to-node: instance -> its current tree node. Used with
//     column-store by XGBoost (QD1); histogram construction queries it for
//     every (instance, value) pair.
//   - column-wise node-to-instance: a node-to-instance index per feature
//     column, as in Yggdrasil (QD3). Locating a node's entries on every
//     column is O(1), but every node split must update all D indexes.
//
// All three support the same split protocol: a parent node's instances are
// partitioned into left and right children given a placement predicate.
package index

import "fmt"

// NodeToInstance maps tree nodes to their instances. Instances are kept in
// a single permutation array; each node owns a contiguous range, so
// splitting a node is a stable in-place partition of its range — the
// LightGBM data-partition layout.
type NodeToInstance struct {
	pos     []uint32
	scratch []uint32
	ranges  map[int32][2]int
}

// NewNodeToInstance returns an index with all n instances on root node 0.
func NewNodeToInstance(n int) *NodeToInstance {
	idx := &NodeToInstance{
		pos:     make([]uint32, n),
		scratch: make([]uint32, n),
		ranges:  make(map[int32][2]int, 16),
	}
	for i := range idx.pos {
		idx.pos[i] = uint32(i)
	}
	idx.ranges[0] = [2]int{0, n}
	return idx
}

// Reset reassigns every instance to root node 0 (start of a new tree).
func (idx *NodeToInstance) Reset() {
	for i := range idx.pos {
		idx.pos[i] = uint32(i)
	}
	clear(idx.ranges)
	idx.ranges[0] = [2]int{0, len(idx.pos)}
}

// Instances returns the instances currently on node. The slice aliases
// internal storage and is invalidated by the next Split involving node's
// range.
func (idx *NodeToInstance) Instances(node int32) []uint32 {
	r, ok := idx.ranges[node]
	if !ok {
		return nil
	}
	return idx.pos[r[0]:r[1]]
}

// Count returns the number of instances on node.
func (idx *NodeToInstance) Count(node int32) int {
	r := idx.ranges[node]
	return r[1] - r[0]
}

// Split partitions node's instances into left and right children using the
// placement predicate. It is stable: relative instance order is preserved
// within each child, keeping row scans sequential.
func (idx *NodeToInstance) Split(node, left, right int32, goesLeft func(inst uint32) bool) {
	r, ok := idx.ranges[node]
	if !ok {
		panic(fmt.Sprintf("index: split of unknown node %d", node))
	}
	lo, hi := r[0], r[1]
	nl := 0
	rightBuf := idx.scratch[:0]
	out := idx.pos[lo:lo]
	for _, inst := range idx.pos[lo:hi] {
		if goesLeft(inst) {
			out = append(out, inst)
			nl++
		} else {
			rightBuf = append(rightBuf, inst)
		}
	}
	copy(idx.pos[lo+nl:hi], rightBuf)
	delete(idx.ranges, node)
	idx.ranges[left] = [2]int{lo, lo + nl}
	idx.ranges[right] = [2]int{lo + nl, hi}
}

// Nodes returns the number of nodes currently holding ranges.
func (idx *NodeToInstance) Nodes() int { return len(idx.ranges) }

// InstanceToNode maps each instance to its current tree node.
type InstanceToNode struct {
	node []int32
}

// NewInstanceToNode returns an index with all n instances on root node 0.
func NewInstanceToNode(n int) *InstanceToNode {
	return &InstanceToNode{node: make([]int32, n)}
}

// Reset reassigns every instance to root node 0.
func (idx *InstanceToNode) Reset() {
	for i := range idx.node {
		idx.node[i] = 0
	}
}

// Node returns the tree node of instance i.
func (idx *InstanceToNode) Node(i uint32) int32 { return idx.node[i] }

// Assignments returns the raw instance-to-node array (entry i is the node
// of instance i). The slice aliases internal storage and must be treated
// as read-only; it is the flat view the histogram kernels scan instead of
// calling Node per entry.
func (idx *InstanceToNode) Assignments() []int32 { return idx.node }

// Len returns the number of instances.
func (idx *InstanceToNode) Len() int { return len(idx.node) }

// SplitLayer applies one layer's node splits in a single pass over all
// instances — the cost profile of Section 3.2.4: O(N) per layer no matter
// how many nodes split. children maps a splitting parent to its (left,
// right) pair; goesLeft decides the placement of an instance whose parent
// is splitting.
func (idx *InstanceToNode) SplitLayer(children map[int32][2]int32, goesLeft func(inst uint32) bool) {
	for i := range idx.node {
		ch, ok := children[idx.node[i]]
		if !ok {
			continue
		}
		if goesLeft(uint32(i)) {
			idx.node[i] = ch[0]
		} else {
			idx.node[i] = ch[1]
		}
	}
}

// ColumnWise keeps a node-to-instance index per feature column: for every
// column, a permutation of the column's entry positions grouped by tree
// node. colLen gives each column's entry count; the instance owning each
// entry is resolved through the instOf callback supplied to Split, so the
// index works for any column storage.
type ColumnWise struct {
	perm    [][]uint32
	ranges  []map[int32][2]int
	scratch []uint32
}

// NewColumnWise builds an index over columns with the given entry counts.
func NewColumnWise(colLen []int) *ColumnWise {
	cw := &ColumnWise{
		perm:   make([][]uint32, len(colLen)),
		ranges: make([]map[int32][2]int, len(colLen)),
	}
	maxLen := 0
	for j, n := range colLen {
		cw.perm[j] = make([]uint32, n)
		for k := range cw.perm[j] {
			cw.perm[j][k] = uint32(k)
		}
		cw.ranges[j] = map[int32][2]int{0: {0, n}}
		if n > maxLen {
			maxLen = n
		}
	}
	cw.scratch = make([]uint32, maxLen)
	return cw
}

// Reset reassigns every column's entries to root node 0.
func (cw *ColumnWise) Reset() {
	for j := range cw.perm {
		for k := range cw.perm[j] {
			cw.perm[j][k] = uint32(k)
		}
		clear(cw.ranges[j])
		cw.ranges[j][0] = [2]int{0, len(cw.perm[j])}
	}
}

// Entries returns the positions (into the column's storage arrays) of the
// entries whose instances sit on node. The slice aliases internal storage.
func (cw *ColumnWise) Entries(col int, node int32) []uint32 {
	r, ok := cw.ranges[col][node]
	if !ok {
		return nil
	}
	return cw.perm[col][r[0]:r[1]]
}

// Split partitions every column's entries of the splitting node — the
// update whose cost is proportional to D and which Section 3.2.3 flags as
// the fatal drawback for high-dimensional data. instOf resolves the
// instance id of a column entry position.
func (cw *ColumnWise) Split(node, left, right int32, goesLeft func(inst uint32) bool, instOf func(col int, pos uint32) uint32) {
	for j := range cw.perm {
		r, ok := cw.ranges[j][node]
		if !ok {
			continue
		}
		lo, hi := r[0], r[1]
		nl := 0
		rightBuf := cw.scratch[:0]
		out := cw.perm[j][lo:lo]
		for _, pos := range cw.perm[j][lo:hi] {
			if goesLeft(instOf(j, pos)) {
				out = append(out, pos)
				nl++
			} else {
				rightBuf = append(rightBuf, pos)
			}
		}
		copy(cw.perm[j][lo+nl:hi], rightBuf)
		delete(cw.ranges[j], node)
		cw.ranges[j][left] = [2]int{lo, lo + nl}
		cw.ranges[j][right] = [2]int{lo + nl, hi}
	}
}

// NumCols returns the number of indexed columns.
func (cw *ColumnWise) NumCols() int { return len(cw.perm) }
