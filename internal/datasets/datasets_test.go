package datasets

import (
	"bytes"
	"strings"
	"testing"
)

func TestSyntheticShapeAndDeterminism(t *testing.T) {
	cfg := SyntheticConfig{N: 200, D: 50, C: 3, InformativeRatio: 0.2, Density: 0.1, Seed: 1}
	a, err := Synthetic(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if a.NumInstances() != 200 || a.NumFeatures() != 50 || a.NumClass != 3 || a.Task != TaskMulti {
		t.Fatalf("shape = %d x %d, C=%d task=%s", a.NumInstances(), a.NumFeatures(), a.NumClass, a.Task)
	}
	// Density: every row gets exactly phi*D = 5 nonzeros.
	for i := 0; i < a.NumInstances(); i++ {
		if a.X.RowNNZ(i) != 5 {
			t.Fatalf("row %d has %d nonzeros, want 5", i, a.X.RowNNZ(i))
		}
	}
	// Labels in range and not all one class.
	seen := map[float32]bool{}
	for _, y := range a.Labels {
		if y < 0 || y > 2 {
			t.Fatalf("label %v out of range", y)
		}
		seen[y] = true
	}
	if len(seen) < 2 {
		t.Fatal("degenerate labels")
	}
	b, err := Synthetic(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for i := range a.Labels {
		if a.Labels[i] != b.Labels[i] {
			t.Fatal("same seed produced different labels")
		}
	}
	c, err := Synthetic(SyntheticConfig{N: 200, D: 50, C: 3, InformativeRatio: 0.2, Density: 0.1, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	same := true
	for i := range a.Labels {
		if a.Labels[i] != c.Labels[i] {
			same = false
			break
		}
	}
	if same {
		t.Fatal("different seeds produced identical labels")
	}
}

func TestSyntheticBinaryTask(t *testing.T) {
	ds, err := Synthetic(SyntheticConfig{N: 50, D: 10, C: 2, InformativeRatio: 0.5, Density: 0.5, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	if ds.Task != TaskBinary {
		t.Fatalf("task = %s, want binary", ds.Task)
	}
}

func TestSyntheticValidation(t *testing.T) {
	bad := []SyntheticConfig{
		{N: 0, D: 10, C: 2, InformativeRatio: 0.5, Density: 0.5},
		{N: 10, D: 10, C: 1, InformativeRatio: 0.5, Density: 0.5},
		{N: 10, D: 10, C: 2, InformativeRatio: 0, Density: 0.5},
		{N: 10, D: 10, C: 2, InformativeRatio: 0.5, Density: 1.5},
	}
	for i, cfg := range bad {
		if _, err := Synthetic(cfg); err == nil {
			t.Errorf("config %d accepted: %+v", i, cfg)
		}
	}
}

func TestSyntheticRegression(t *testing.T) {
	ds, err := SyntheticRegression(100, 20, 0.5, 0.1, 4)
	if err != nil {
		t.Fatal(err)
	}
	if ds.Task != TaskRegression || ds.NumClass != 1 {
		t.Fatalf("task=%s numClass=%d", ds.Task, ds.NumClass)
	}
	var varSum float64
	for _, y := range ds.Labels {
		varSum += float64(y) * float64(y)
	}
	if varSum == 0 {
		t.Fatal("all labels zero")
	}
}

func TestSplit(t *testing.T) {
	ds, err := Synthetic(SyntheticConfig{N: 100, D: 10, C: 2, InformativeRatio: 0.5, Density: 0.5, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	train, valid := ds.Split(0.8, 7)
	if train.NumInstances() != 80 || valid.NumInstances() != 20 {
		t.Fatalf("split sizes %d/%d", train.NumInstances(), valid.NumInstances())
	}
	if train.X.NNZ()+valid.X.NNZ() != ds.X.NNZ() {
		t.Fatal("split lost entries")
	}
}

func TestCatalogComplete(t *testing.T) {
	names := map[string]bool{}
	for _, d := range Catalog() {
		names[d.Name] = true
		if d.SimN <= 0 || d.SimD <= 0 || d.SimC < 2 {
			t.Errorf("%s: bad simulacrum shape %+v", d.Name, d)
		}
		if d.PaperN <= 0 || d.PaperD <= 0 {
			t.Errorf("%s: missing paper shape", d.Name)
		}
	}
	// Every dataset of Table 2 and Section 6 must be present.
	for _, want := range []string{
		"susy", "higgs", "criteo", "epsilon", "rcv1", "synthesis",
		"rcv1-multi", "synthesis-multi", "gender", "age", "taste",
	} {
		if !names[want] {
			t.Errorf("catalog missing %q", want)
		}
	}
}

func TestDescribeUnknown(t *testing.T) {
	if _, err := Describe("nope"); err == nil {
		t.Fatal("Describe accepted unknown name")
	}
	if _, err := Load("nope", 1); err == nil {
		t.Fatal("Load accepted unknown name")
	}
}

func TestLoadSimulacrum(t *testing.T) {
	ds, err := Load("rcv1-multi", 1)
	if err != nil {
		t.Fatal(err)
	}
	desc, _ := Describe("rcv1-multi")
	if ds.NumInstances() != desc.SimN || ds.NumFeatures() != desc.SimD || ds.NumClass != desc.SimC {
		t.Fatalf("simulacrum shape %dx%d C=%d, want %dx%d C=%d",
			ds.NumInstances(), ds.NumFeatures(), ds.NumClass, desc.SimN, desc.SimD, desc.SimC)
	}
	if ds.Task != TaskMulti {
		t.Fatalf("task = %s", ds.Task)
	}
}

func TestLibSVMRoundTrip(t *testing.T) {
	ds, err := Synthetic(SyntheticConfig{N: 50, D: 30, C: 2, InformativeRatio: 0.3, Density: 0.2, Seed: 6})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := WriteLibSVM(&buf, ds); err != nil {
		t.Fatal(err)
	}
	back, err := ReadLibSVM(&buf, 2)
	if err != nil {
		t.Fatal(err)
	}
	if back.NumInstances() != ds.NumInstances() {
		t.Fatalf("rows %d, want %d", back.NumInstances(), ds.NumInstances())
	}
	if back.X.NNZ() != ds.X.NNZ() {
		t.Fatalf("nnz %d, want %d", back.X.NNZ(), ds.X.NNZ())
	}
	for i := range ds.Labels {
		if ds.Labels[i] != back.Labels[i] {
			t.Fatalf("label %d: %v vs %v", i, ds.Labels[i], back.Labels[i])
		}
	}
}

func TestReadLibSVMErrors(t *testing.T) {
	cases := map[string]string{
		"bad label": "x 1:2\n",
		"bad pair":  "1 nonsense\n",
		"bad index": "1 x:2\n",
		"bad value": "1 2:x\n",
	}
	for name, input := range cases {
		if _, err := ReadLibSVM(strings.NewReader(input), 2); err == nil {
			t.Errorf("%s: accepted %q", name, input)
		}
	}
	// Out-of-range class label.
	if _, err := ReadLibSVM(strings.NewReader("5 1:1\n"), 2); err == nil {
		t.Error("accepted label 5 for binary task")
	}
	// Comments and blank lines are fine.
	ds, err := ReadLibSVM(strings.NewReader("# comment\n\n1 3:4.5\n"), 2)
	if err != nil {
		t.Fatal(err)
	}
	if ds.NumInstances() != 1 || ds.NumFeatures() != 4 {
		t.Fatalf("shape %dx%d", ds.NumInstances(), ds.NumFeatures())
	}
}

func TestReadLibSVMRegression(t *testing.T) {
	ds, err := ReadLibSVM(strings.NewReader("3.25 0:1 2:2\n-1.5 1:4\n"), 1)
	if err != nil {
		t.Fatal(err)
	}
	if ds.Task != TaskRegression {
		t.Fatalf("task = %s", ds.Task)
	}
	if ds.Labels[0] != 3.25 || ds.Labels[1] != -1.5 {
		t.Fatalf("labels = %v", ds.Labels)
	}
}
