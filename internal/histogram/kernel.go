package histogram

// Flat accumulation kernels. Histogram construction dominates GBDT
// training time (the cost every quadrant of Section 3 is built around), so
// the hot accumulation loops get specialized entry points that work on raw
// gradient arrays instead of routing every (instance, feature) entry
// through AddVec — no per-entry method call, no per-entry gradient
// sub-slicing, and a scalar fast path for NumClass == 1 (binary
// classification and regression, the dominant case) with the histogram
// arrays hoisted out of the loop.
//
// Every kernel preserves the exact per-entry accumulation order of the
// naive per-entry path it replaces: entries are added in the same sequence
// with the same float64 additions, so trained models stay bit-identical
// (the invariant the cross-quadrant property test pins).
//
// Gradient indexing convention: grad and hess are row-major [n*C] arrays
// and an instance's gradient vector starts at (base+inst)*C, where base
// re-bases worker-local instance ids to global rows (horizontal shards) and
// is zero when instance ids are already global (vertical).

// rowVec is the multiclass row kernel: the gradient vectors are sliced
// once per row instead of once per entry.
func (h *Hist) rowVec(feats []uint32, bins []uint16, g, hs []float64) {
	hg, hh := h.Grad, h.Hess
	mb, c := h.MaxBins, h.NumClass
	bins = bins[:len(feats)]
	for k, f := range feats {
		i := (int(f)*mb + int(bins[k])) * c
		for j := 0; j < c; j++ {
			hg[i+j] += g[j]
			hh[i+j] += hs[j]
		}
	}
}

// RowScan is the fused node-to-instance row-store kernel (QD2, QD4):
// it scans a node's instance list against raw CSR storage — rowPtr
// delimits each row's entries in feat/bin — accumulating every row without
// a per-row method call. rowOff re-bases instance ids into rowPtr (a
// shard's first global row, or a block's RowStart); base re-bases them
// into the gradient arrays.
func (h *Hist) RowScan(insts []uint32, rowOff int, rowPtr []int64, feat []uint32, bin []uint16, grad, hess []float64, base int) {
	if h.NumClass == 1 {
		hg, hh := h.Grad, h.Hess
		mb := h.MaxBins
		for _, inst := range insts {
			r := int(inst) - rowOff
			lo, hi := rowPtr[r], rowPtr[r+1]
			fs, bs := feat[lo:hi], bin[lo:hi]
			bs = bs[:len(fs)] // hoist the bin bounds check
			g, hs := grad[base+int(inst)], hess[base+int(inst)]
			for k, f := range fs {
				i := int(f)*mb + int(bs[k])
				hg[i] += g
				hh[i] += hs
			}
		}
		return
	}
	c := h.NumClass
	for _, inst := range insts {
		r := int(inst) - rowOff
		lo, hi := rowPtr[r], rowPtr[r+1]
		gi := (base + int(inst)) * c
		h.rowVec(feat[lo:hi], bin[lo:hi], grad[gi:gi+c], hess[gi:gi+c])
	}
}

// RowScanOwned is RowScan restricted to the feature slots a worker owns:
// full rows are scanned but only entries with ownerOf[f] == owner are
// accumulated, at slot slotOf[f] — the feature-parallel full-copy shape
// (LightGBM feature-parallel, Appendix D).
func (h *Hist) RowScanOwned(insts []uint32, rowPtr []int64, feat []uint32, bin []uint16, ownerOf, slotOf []int32, owner int32, grad, hess []float64) {
	if h.NumClass == 1 {
		hg, hh := h.Grad, h.Hess
		mb := h.MaxBins
		for _, inst := range insts {
			lo, hi := rowPtr[inst], rowPtr[inst+1]
			g, hs := grad[inst], hess[inst]
			for e := lo; e < hi; e++ {
				f := feat[e]
				if ownerOf[f] != owner {
					continue
				}
				i := int(slotOf[f])*mb + int(bin[e])
				hg[i] += g
				hh[i] += hs
			}
		}
		return
	}
	c := h.NumClass
	for _, inst := range insts {
		lo, hi := rowPtr[inst], rowPtr[inst+1]
		gi := int(inst) * c
		g, hs := grad[gi:gi+c], hess[gi:gi+c]
		for e := lo; e < hi; e++ {
			f := feat[e]
			if ownerOf[f] != owner {
				continue
			}
			i := (int(slotOf[f])*h.MaxBins + int(bin[e])) * c
			for j := 0; j < c; j++ {
				h.Grad[i+j] += g[j]
				h.Hess[i+j] += hs[j]
			}
		}
	}
}

// ColumnScanNode is the fused column kernel filtered to one node (the
// QD3 hybrid plan's linear-scan arm): one column's (instance, bin) entries
// are scanned and entries whose instance sits on node are accumulated into
// feature slot col. nodeOf is the raw instance-to-node assignment array.
func (h *Hist) ColumnScanNode(col int, insts []uint32, bins []uint16, nodeOf []int32, node int32, grad, hess []float64) {
	if h.NumClass == 1 {
		hg, hh := h.Grad, h.Hess
		colBase := col * h.MaxBins
		bins = bins[:len(insts)]
		for k, inst := range insts {
			if nodeOf[inst] != node {
				continue
			}
			i := colBase + int(bins[k])
			hg[i] += grad[inst]
			hh[i] += hess[inst]
		}
		return
	}
	c := h.NumClass
	colBase := col * h.MaxBins * c
	bins = bins[:len(insts)]
	for k, inst := range insts {
		if nodeOf[inst] != node {
			continue
		}
		i := colBase + int(bins[k])*c
		gi := int(inst) * c
		for j := 0; j < c; j++ {
			h.Grad[i+j] += grad[gi+j]
			h.Hess[i+j] += hess[gi+j]
		}
	}
}

// ColumnGather accumulates the column entries at the given positions —
// the column-wise node-to-instance shape (QD3 with Yggdrasil's index),
// where an index already knows which entry positions belong to the node.
func (h *Hist) ColumnGather(col int, positions []uint32, insts []uint32, bins []uint16, grad, hess []float64) {
	if h.NumClass == 1 {
		hg, hh := h.Grad, h.Hess
		colBase := col * h.MaxBins
		for _, pos := range positions {
			i := colBase + int(bins[pos])
			inst := insts[pos]
			hg[i] += grad[inst]
			hh[i] += hess[inst]
		}
		return
	}
	c := h.NumClass
	colBase := col * h.MaxBins * c
	for _, pos := range positions {
		i := colBase + int(bins[pos])*c
		gi := int(insts[pos]) * c
		for j := 0; j < c; j++ {
			h.Grad[i+j] += grad[gi+j]
			h.Hess[i+j] += hess[gi+j]
		}
	}
}

// AddFlat accumulates one (feat, bin) entry reading the gradient vector at
// flat index gi — AddVec without the caller-side sub-slicing, with the
// C==1 fast path (used by the QD3 hybrid plan's binary-search arm).
func (h *Hist) AddFlat(feat, bin int, grad, hess []float64, gi int) {
	i := (feat*h.MaxBins + bin) * h.NumClass
	if h.NumClass == 1 {
		h.Grad[i] += grad[gi]
		h.Hess[i] += hess[gi]
		return
	}
	for j := 0; j < h.NumClass; j++ {
		h.Grad[i+j] += grad[gi+j]
		h.Hess[i+j] += hess[gi+j]
	}
}

// ColumnScanRouted is the fused instance-to-node column-store kernel
// (QD1): one pass over a column routes every (instance, bin) entry to the
// histogram of the node the instance currently sits on. The destination is a flat arena holding
// the histograms of all nodes under construction — gdst/hdst pack one
// l-shaped histogram per slot, stride floats apart — so an accumulation is
// a single indexed add per side with no per-entry pointer chasing. slot
// maps a node id to its arena slot (-1 or out of range: the node is not
// being built this layer); base re-bases shard-local instance ids into the
// gradient arrays.
//
// Within one destination histogram the entries of column col accumulate in
// column order, exactly as a dedicated per-node scan would add them — and
// since a column's entries touch only that feature slot's bins, arena
// contents fold into per-node histograms by addition over disjoint
// support, keeping the result bit-identical to the unfused path.
func ColumnScanRouted(gdst, hdst []float64, stride int, l Layout, col int, insts []uint32, bins []uint16, nodeOf, slot []int32, grad, hess []float64, base int) {
	if len(insts) == 0 {
		return
	}
	bins = bins[:len(insts)]
	if l.NumClass == 1 {
		colBase := col * l.MaxBins
		for k, inst := range insts {
			nid := nodeOf[inst]
			if int(nid) >= len(slot) {
				continue
			}
			s := slot[nid]
			if s < 0 {
				continue
			}
			i := int(s)*stride + colBase + int(bins[k])
			gi := base + int(inst)
			gdst[i] += grad[gi]
			hdst[i] += hess[gi]
		}
		return
	}
	c := l.NumClass
	colBase := col * l.MaxBins * c
	for k, inst := range insts {
		nid := nodeOf[inst]
		if int(nid) >= len(slot) {
			continue
		}
		s := slot[nid]
		if s < 0 {
			continue
		}
		i := int(s)*stride + colBase + int(bins[k])*c
		gi := (base + int(inst)) * c
		for j := 0; j < c; j++ {
			gdst[i+j] += grad[gi+j]
			hdst[i+j] += hess[gi+j]
		}
	}
}
