package ingest

import (
	"bytes"
	"encoding/binary"
	"errors"
	"io"
	"strings"
	"testing"

	"vero/internal/datasets"
	"vero/internal/failpoint"
)

// sampleCacheImage builds one valid .vbin image for corruption tests.
func sampleCacheImage(t *testing.T) []byte {
	t.Helper()
	ds, err := datasets.Synthetic(datasets.SyntheticConfig{
		N: 50, D: 10, C: 2, InformativeRatio: 0.4, Density: 0.5, Seed: 5,
	})
	if err != nil {
		t.Fatal(err)
	}
	pb := Prebinned(ds, DefaultSketchEps, 8)
	var buf bytes.Buffer
	if err := WriteCache(&buf, ds, pb); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// TestReadCacheEveryTruncationRejected cuts a valid image at every single
// byte offset: each prefix must come back as a wrapped ErrCacheCorrupt (or
// a version mismatch for the degenerate sub-header prefixes) — never a
// panic, never an accepted dataset.
func TestReadCacheEveryTruncationRejected(t *testing.T) {
	img := sampleCacheImage(t)
	for cut := 0; cut < len(img); cut++ {
		_, err := ReadCache(bytes.NewReader(img[:cut]), "trunc")
		if err == nil {
			t.Fatalf("truncation at %d of %d accepted", cut, len(img))
		}
		var mismatch *CacheMismatchError
		if !errors.Is(err, ErrCacheCorrupt) && !errors.As(err, &mismatch) {
			t.Fatalf("truncation at %d: error does not wrap ErrCacheCorrupt: %v", cut, err)
		}
	}
	if _, err := ReadCache(bytes.NewReader(img), "whole"); err != nil {
		t.Fatalf("untruncated image rejected: %v", err)
	}
}

// TestReadCacheOversizedHeaderRejected forges headers claiming huge
// section tables over a tiny payload. The header sits outside the CRC, so
// the reader must cross-check it against the file size and reject before
// allocating anything of the claimed magnitude.
func TestReadCacheOversizedHeaderRejected(t *testing.T) {
	img := sampleCacheImage(t)
	for _, field := range []struct {
		name string
		off  int
	}{
		{"rows", 8}, {"cols", 16}, {"nnz", 24},
	} {
		for _, dim := range []uint64{1 << 20, 1 << 39, 1 << 40} {
			bad := append([]byte(nil), img...)
			binary.LittleEndian.PutUint64(bad[field.off:], dim)
			_, err := ReadCache(bytes.NewReader(bad), "oversized")
			if err == nil {
				t.Fatalf("%s=%d accepted", field.name, dim)
			}
			if !errors.Is(err, ErrCacheCorrupt) {
				t.Fatalf("%s=%d: error does not wrap ErrCacheCorrupt: %v", field.name, dim, err)
			}
		}
	}
	// Beyond the plausibility bound entirely.
	bad := append([]byte(nil), img...)
	binary.LittleEndian.PutUint64(bad[24:], 1<<50)
	if _, err := ReadCache(bytes.NewReader(bad), "absurd"); !errors.Is(err, ErrCacheCorrupt) {
		t.Fatalf("nnz=1<<50: %v", err)
	}
}

// countingReader counts how many bytes ReadCache actually consumes.
type countingReader struct {
	r io.Reader
	n int
}

func (c *countingReader) Read(p []byte) (int, error) {
	n, err := c.r.Read(p)
	c.n += n
	return n, err
}

// TestReadCacheHeaderValidatedFromPrefix: a corrupt or forged header must
// be rejected from the 64-byte prefix alone — the reader is never asked
// for the body, so a hostile header cannot make ReadCache slurp (or
// allocate for) a huge claimed payload.
func TestReadCacheHeaderValidatedFromPrefix(t *testing.T) {
	img := sampleCacheImage(t)
	body := make([]byte, 1<<20) // a large tail the reader must never see
	for _, tc := range []struct {
		name string
		mut  func([]byte)
	}{
		{"magic", func(b []byte) { b[0] = 'X' }},
		{"version", func(b []byte) { binary.LittleEndian.PutUint32(b[4:], 999) }},
		{"implausible nnz", func(b []byte) { binary.LittleEndian.PutUint64(b[24:], 1<<50) }},
		{"bin width", func(b []byte) { binary.LittleEndian.PutUint32(b[48:], 7) }},
	} {
		hdr := append([]byte(nil), img[:vbinHeaderSize]...)
		tc.mut(hdr)
		cr := &countingReader{r: io.MultiReader(bytes.NewReader(hdr), bytes.NewReader(body))}
		if _, err := ReadCache(cr, tc.name); err == nil {
			t.Fatalf("%s: corrupt header accepted", tc.name)
		}
		if cr.n > vbinHeaderSize {
			t.Fatalf("%s: reader consumed %d bytes, want <= %d (header prefix only)",
				tc.name, cr.n, vbinHeaderSize)
		}
	}
}

// TestReadCacheBitFlipRejected flips one payload bit: the checksum must
// catch it.
func TestReadCacheBitFlipRejected(t *testing.T) {
	img := sampleCacheImage(t)
	bad := append([]byte(nil), img...)
	bad[vbinHeaderSize+len(bad)/2] ^= 0x10
	_, err := ReadCache(bytes.NewReader(bad), "flip")
	if !errors.Is(err, ErrCacheCorrupt) || !strings.Contains(err.Error(), "checksum") {
		t.Fatalf("bit flip: %v", err)
	}
}

// TestReadCacheFailpoint arms ingest.readcache and checks the injected
// failure surfaces as a cache-read error, not a panic or silent miss.
func TestReadCacheFailpoint(t *testing.T) {
	defer failpoint.Reset()
	img := sampleCacheImage(t)
	if err := failpoint.Enable(FailpointReadCache, "error"); err != nil {
		t.Fatal(err)
	}
	_, err := ReadCache(bytes.NewReader(img), "fp")
	if !errors.Is(err, failpoint.ErrInjected) {
		t.Fatalf("want injected failure, got %v", err)
	}
	failpoint.Reset()
	if _, err := ReadCache(bytes.NewReader(img), "fp"); err != nil {
		t.Fatalf("disarmed read failed: %v", err)
	}
}

// TestScanBlocksWorkerFailpoint injects a failure into the parse worker
// pool: the scan must stop with the injected error — deterministically,
// with no goroutine leak or hang — and succeed again once disarmed.
func TestScanBlocksWorkerFailpoint(t *testing.T) {
	defer failpoint.Reset()
	var text strings.Builder
	for i := 0; i < 64; i++ {
		text.WriteString("1 0:1 3:2\n0 1:0.5\n")
	}
	opts := Options{NumClass: 2, ChunkRows: 4, Workers: 4}

	if err := failpoint.Enable(FailpointParseBlock, "3*error"); err != nil {
		t.Fatal(err)
	}
	err := ScanBlocks(strings.NewReader(text.String()), opts, func(*Block) error { return nil })
	if !errors.Is(err, failpoint.ErrInjected) {
		t.Fatalf("want injected failure, got %v", err)
	}

	failpoint.Reset()
	blocks := 0
	if err := ScanBlocks(strings.NewReader(text.String()), opts, func(*Block) error { blocks++; return nil }); err != nil {
		t.Fatalf("disarmed scan failed: %v", err)
	}
	if blocks == 0 {
		t.Fatal("disarmed scan produced no blocks")
	}
}
