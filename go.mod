module vero

go 1.24
