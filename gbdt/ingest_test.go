package gbdt

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func writeTrainFile(t *testing.T, dir string) string {
	t.Helper()
	ds, err := Synthetic(SyntheticConfig{N: 300, D: 30, C: 2, InformativeRatio: 0.2, Density: 0.3, Seed: 17})
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(dir, "train.libsvm")
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	if err := WriteLibSVM(f, ds); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestTrainFileWithCache(t *testing.T) {
	dir := t.TempDir()
	path := writeTrainFile(t, dir)
	opts := Options{Trees: 3, Layers: 4, Workers: 4, CacheDir: filepath.Join(dir, "cache")}

	cold, _, err := IngestFile(path, opts)
	if err != nil {
		t.Fatal(err)
	}
	warm, status, err := IngestFile(path, opts)
	if err != nil {
		t.Fatal(err)
	}
	if status != IngestWarm {
		t.Fatalf("second ingest: status %s, want warm", status)
	}

	mc, _, err := Train(cold, opts)
	if err != nil {
		t.Fatal(err)
	}
	mw, _, err := Train(warm, opts)
	if err != nil {
		t.Fatal(err)
	}
	ec, err := mc.Encode()
	if err != nil {
		t.Fatal(err)
	}
	ew, err := mw.Encode()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(ec, ew) {
		t.Fatal("warm-cache model differs from cold model")
	}

	// TrainFile accepts the .vbin image directly.
	entries, err := os.ReadDir(filepath.Join(dir, "cache"))
	if err != nil || len(entries) != 1 {
		t.Fatalf("cache dir: %v entries, err %v", len(entries), err)
	}
	mv, _, err := TrainFile(filepath.Join(dir, "cache", entries[0].Name()), Options{Trees: 3, Layers: 4, Workers: 4})
	if err != nil {
		t.Fatal(err)
	}
	ev, err := mv.Encode()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(ev, ec) {
		t.Fatal("direct .vbin model differs")
	}
}

func TestTrainFileCSV(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "train.csv")
	csv := "label,a,b\n1,0.5,2\n0,,1\n1,0.25,\n0,1,1\n1,0.1,3\n0,2,0\n"
	if err := os.WriteFile(path, []byte(csv), 0o644); err != nil {
		t.Fatal(err)
	}
	m, _, err := TrainFile(path, Options{Format: FormatCSV, Trees: 2, Layers: 3, Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	if m.NumTrees() != 2 {
		t.Fatalf("trees = %d, want 2", m.NumTrees())
	}
}

func TestWriteReadCacheFile(t *testing.T) {
	ds, err := Synthetic(SyntheticConfig{N: 200, D: 25, C: 3, InformativeRatio: 0.2, Density: 0.3, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "ds.vbin")
	if err := WriteCacheFile(path, ds, Options{}); err != nil {
		t.Fatal(err)
	}
	got, err := ReadCacheFile(path)
	if err != nil {
		t.Fatal(err)
	}
	opts := Options{Trees: 3, Layers: 4, Workers: 4}
	md, _, err := Train(ds, opts)
	if err != nil {
		t.Fatal(err)
	}
	mg, _, err := Train(got, opts)
	if err != nil {
		t.Fatal(err)
	}
	ed, err := md.Encode()
	if err != nil {
		t.Fatal(err)
	}
	eg, err := mg.Encode()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(ed, eg) {
		t.Fatal("cache-round-tripped synthetic dataset trains a different model")
	}
}

// TestQuantizedSplitKeepsGuard: splitting a cache-loaded dataset must
// keep the cached bins on both halves — training them with matching
// parameters works, and a parameter mismatch is still rejected instead
// of silently re-sketching bin representatives.
func TestQuantizedSplitKeepsGuard(t *testing.T) {
	ds, err := Synthetic(SyntheticConfig{N: 300, D: 20, C: 2, InformativeRatio: 0.3, Density: 0.3, Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "ds.vbin")
	if err := WriteCacheFile(path, ds, Options{}); err != nil {
		t.Fatal(err)
	}
	warm, err := ReadCacheFile(path)
	if err != nil {
		t.Fatal(err)
	}
	train, valid := warm.Split(0.8, 1)
	if train.Prebin == nil || !train.Prebin.Quantized || valid.Prebin == nil {
		t.Fatal("quantized halves lost their prebin")
	}
	if _, _, err := Train(train, Options{Trees: 2, Layers: 3, Workers: 2}); err != nil {
		t.Fatalf("matching-parameter train on quantized half: %v", err)
	}
	_, _, err = Train(train, Options{Trees: 2, Layers: 3, Workers: 2, Splits: 16})
	if err == nil || !strings.Contains(err.Error(), "re-ingest") {
		t.Fatalf("mismatched train on quantized half: err = %v, want rejection", err)
	}
}

// TestReadDataFileSkipsSketch: the evaluation read path must not derive
// bins — and must still warm-load a fresh cache when one exists.
func TestReadDataFileSkipsSketch(t *testing.T) {
	dir := t.TempDir()
	path := writeTrainFile(t, dir)
	ds, status, err := ReadDataFile(path, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if status != IngestCold || ds.Prebin != nil {
		t.Fatalf("plain read: status %s, prebin %v", status, ds.Prebin)
	}
	opts := Options{CacheDir: filepath.Join(dir, "cache")}
	if _, _, err := IngestFile(path, opts); err != nil { // build the cache
		t.Fatal(err)
	}
	ds, status, err = ReadDataFile(path, opts)
	if err != nil {
		t.Fatal(err)
	}
	if status != IngestWarm || ds.Prebin == nil || !ds.Prebin.Quantized {
		t.Fatalf("cached read: status %s, prebin %+v", status, ds.Prebin)
	}
}

// TestWriteCacheFileHonorsSplits: an existing raw prebin with a
// different q is re-derived at the requested q; a quantized dataset
// refuses a q change.
func TestWriteCacheFileHonorsSplits(t *testing.T) {
	dir := t.TempDir()
	path := writeTrainFile(t, dir)
	ds, _, err := IngestFile(path, Options{}) // raw prebin at q=20
	if err != nil {
		t.Fatal(err)
	}
	out := filepath.Join(dir, "q50.vbin")
	if err := WriteCacheFile(out, ds, Options{Splits: 50}); err != nil {
		t.Fatal(err)
	}
	back, err := ReadCacheFile(out)
	if err != nil {
		t.Fatal(err)
	}
	if back.Prebin.Q != 50 {
		t.Fatalf("cache q = %d, want 50", back.Prebin.Q)
	}
	if err := WriteCacheFile(filepath.Join(dir, "bad.vbin"), back, Options{Splits: 20}); err == nil || !strings.Contains(err.Error(), "re-ingest") {
		t.Fatalf("quantized q change: err = %v, want rejection", err)
	}
}
