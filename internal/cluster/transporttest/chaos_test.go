package transporttest

import (
	"fmt"
	"strings"
	"sync"
	"testing"
	"time"

	"vero/internal/cluster"
)

// TestChaosKillAbortsWithAttribution kills one rank at one control round
// and requires every survivor to surface a sticky transport error that
// names the dead rank — not a hang, not a silent wrong answer. The sweep
// covers the root dying, a leaf dying, and deaths at different rounds.
func TestChaosKillAbortsWithAttribution(t *testing.T) {
	if testing.Short() {
		t.Skip("spins up TCP meshes")
	}
	cases := []struct {
		w, rank, round int
	}{
		{2, 1, 0}, // leaf dies before the first collective
		{2, 0, 2}, // the broadcast root dies mid-schedule
		{3, 2, 1},
		{3, 0, 0},
	}
	for _, tc := range cases {
		t.Run(fmt.Sprintf("w%d-kill%d@%d", tc.w, tc.rank, tc.round), func(t *testing.T) {
			handles, cerrs := ConnectMesh(t, MeshConfig{W: tc.w, OpTimeout: 2 * time.Second})
			for r, err := range cerrs {
				if err != nil {
					t.Fatalf("connect rank %d: %v", r, err)
				}
			}
			start := time.Now()
			errs := RunSchedule(t, handles, 4, []Fault{
				{Kind: FaultKill, Rank: tc.rank, Round: tc.round},
			}, false)
			if elapsed := time.Since(start); elapsed > 20*time.Second {
				t.Fatalf("schedule took %v — survivors hung instead of failing fast", elapsed)
			}
			for r, err := range errs {
				if r == tc.rank {
					continue // the dead rank left on purpose
				}
				if err == nil {
					t.Fatalf("rank %d finished cleanly next to a dead rank %d", r, tc.rank)
				}
				if !strings.Contains(err.Error(), fmt.Sprintf("rank %d", tc.rank)) {
					t.Errorf("rank %d: error does not name the dead rank %d: %v", r, tc.rank, err)
				}
			}
		})
	}
}

// TestChaosDelayIsHarmless stalls the deployment's early frame writes and
// requires the control collectives to still deliver bit-exact values and
// charge exactly what an undisturbed simulation charges: delays slow a
// mesh down, they never change what it computes.
func TestChaosDelayIsHarmless(t *testing.T) {
	if testing.Short() {
		t.Skip("spins up a TCP mesh")
	}
	ArmFault(t, Fault{Kind: FaultDelay, DelayMS: 5, Frames: 40})
	handles, cerrs := ConnectMesh(t, MeshConfig{W: 3})
	for r, err := range cerrs {
		if err != nil {
			t.Fatalf("connect rank %d: %v", r, err)
		}
	}
	const rounds = 3
	errs := RunSchedule(t, handles, rounds, nil, true)
	for r, err := range errs {
		if err != nil {
			t.Fatalf("rank %d: delayed frames broke the schedule: %v", r, err)
		}
	}
	// SyncMeasured is itself a collective: every rank joins concurrently.
	var wg sync.WaitGroup
	for _, h := range handles {
		wg.Add(1)
		go func(h *cluster.Cluster) {
			defer wg.Done()
			if err := h.SyncMeasured(); err != nil {
				t.Errorf("rank %d: SyncMeasured: %v", h.Rank(), err)
			}
		}(h)
	}
	wg.Wait()
	if t.Failed() {
		return
	}
	ref := cluster.New(3, cluster.Gigabit())
	for round := 0; round < rounds; round++ {
		controlRound(t, ref, 3, round, true)
	}
	for _, h := range handles {
		checkAccounting(t, h, ref)
	}
}

// TestChaosDropThenReconnect fails the deployment's first dial attempts:
// mesh establishment must heal by retrying and the schedule then run
// clean, because a transient connect loss is recoverable where a dead
// peer is not.
func TestChaosDropThenReconnect(t *testing.T) {
	if testing.Short() {
		t.Skip("spins up a TCP mesh")
	}
	ArmFault(t, Fault{Kind: FaultDrop, Drops: 3})
	handles, cerrs := ConnectMesh(t, MeshConfig{W: 2, DialTimeout: 10 * time.Second})
	for r, err := range cerrs {
		if err != nil {
			t.Fatalf("connect rank %d did not heal the dropped dials: %v", r, err)
		}
	}
	for r, err := range RunSchedule(t, handles, 2, nil, true) {
		if err != nil {
			t.Fatalf("rank %d: %v", r, err)
		}
	}
}

// TestChaosFingerprintMismatch gives one rank a different dataset
// fingerprint: the hello exchange must refuse the whole deployment, and
// the healthy ranks' errors must name the odd rank and the reason.
func TestChaosFingerprintMismatch(t *testing.T) {
	if testing.Short() {
		t.Skip("spins up a TCP mesh")
	}
	const odd = 2
	_, cerrs := ConnectMesh(t, MeshConfig{
		W:           3,
		DialTimeout: 2 * time.Second,
		Fingerprint: func(rank int) uint32 {
			if rank == odd {
				return 0xdeadbeef
			}
			return 0x1
		},
	})
	attributed := false
	for r, err := range cerrs {
		if err == nil {
			t.Fatalf("rank %d connected across a dataset-fingerprint mismatch", r)
		}
		// The first rank to see the odd hello reports the mismatch; its
		// teardown then cascades to the others as reset connections, so
		// only the root-cause error is required to carry the full story.
		if r != odd && strings.Contains(err.Error(), "ingested different data") &&
			strings.Contains(err.Error(), fmt.Sprintf("rank %d", odd)) {
			attributed = true
		}
	}
	if !attributed {
		t.Errorf("no healthy rank attributed the mismatch to rank %d: %v", odd, cerrs)
	}
}
