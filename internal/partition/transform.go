package partition

import (
	"fmt"

	"vero/internal/cluster"
	"vero/internal/sketch"
	"vero/internal/sparse"
)

// Variant selects the wire representation charged for the repartition
// step, matching the three rows of Table 5 in the paper's appendix.
type Variant int

// Transformation variants of Table 5.
const (
	// VariantNaive ships raw 12-byte key-value pairs.
	VariantNaive Variant = iota
	// VariantCompressed encodes feature ids in ceil(log p) bytes and
	// values as bin indexes in ceil(log q) bytes, but still ships one
	// small object per row.
	VariantCompressed
	// VariantBlockified ships compressed pairs packed into per-file-split
	// blocks (Figure 9) — the full Vero pipeline.
	VariantBlockified
)

// String names the variant as in Table 5.
func (v Variant) String() string {
	switch v {
	case VariantNaive:
		return "naive"
	case VariantCompressed:
		return "compress"
	case VariantBlockified:
		return "vero"
	default:
		return fmt.Sprintf("variant(%d)", int(v))
	}
}

const (
	// naiveKVBytes is the size of an uncompressed key-value pair: 4-byte
	// feature index + 8-byte double value (the paper's "original 12-byte
	// key-value pairs", Table 5).
	naiveKVBytes = 12
	// perObjectOverheadBytes models the serialization header of each
	// small row vector when column groups are not blockified — the
	// (de)serialization overhead Section 4.2.3 blockifies away.
	perObjectOverheadBytes = 24
	// sketchTupleBytes is the wire size of one GK tuple (value + g +
	// delta, packed).
	sketchTupleBytes = 16
)

// Options configures the transformation.
type Options struct {
	// Q is the number of candidate splits per feature.
	Q int
	// SketchEps is the quantile-sketch error bound (default 0.01).
	SketchEps float64
	// MaxBlocks is the block-merge target per worker (default 4; the
	// paper reports fewer than 5 blocks after merging).
	MaxBlocks int
	// Charge selects which variant's wire cost is charged to the cluster
	// (default VariantBlockified). Byte counts for all three variants are
	// reported regardless.
	Charge Variant
	// Splits and FeatCount, when both set, are ingestion-derived candidate
	// splits (and per-feature value counts) for every feature of x; steps
	// 1–2 of the transformation — sketch build, sketch shuffle and split
	// derivation — are skipped, and only the split broadcast is charged.
	// The values must be what the canonical sketch pass would produce;
	// internal/ingest guarantees that for warm-cache datasets.
	Splits    [][]float32
	FeatCount []int64
}

func (o *Options) setDefaults() error {
	if o.Q <= 1 {
		return fmt.Errorf("partition: candidate splits q=%d", o.Q)
	}
	if o.SketchEps == 0 {
		o.SketchEps = 0.01
	}
	if o.MaxBlocks == 0 {
		o.MaxBlocks = 4
	}
	return nil
}

// ByteReport records the wire volume of each transformation step, with the
// repartition step broken down by variant (Table 5).
type ByteReport struct {
	SketchShuffle     int64
	SplitBroadcast    int64
	NaiveShuffle      int64
	CompressedShuffle int64
	BlockifiedShuffle int64
	LabelBroadcast    int64
}

// Shard is one worker's vertical, row-stored data after the
// transformation: its feature group as blockified rows over within-group
// feature slots, plus the broadcast labels.
type Shard struct {
	Worker   int
	Features []int // slot -> global feature id
	NumBins  []int // candidate-split count per slot
	Data     *BlockSet
	Labels   []float32
}

// Result is the output of the horizontal-to-vertical transformation.
type Result struct {
	Groups [][]int
	Binner *sparse.Binner
	Shards []*Shard
	Bytes  ByteReport
}

// Transform runs the five-step horizontal-to-vertical transformation of
// Section 4.2.1 over a dataset whose rows are horizontally partitioned
// across the cluster's workers (worker w owns the rows of
// HorizontalRanges(N, W)[w]). Compute time is measured under the
// "transform.*" phases; network volume is charged per the options.
func Transform(cl *cluster.Cluster, x *sparse.CSR, labels []float32, opts Options) (*Result, error) {
	if err := opts.setDefaults(); err != nil {
		return nil, err
	}
	if x.Rows() != len(labels) {
		return nil, fmt.Errorf("partition: %d rows but %d labels", x.Rows(), len(labels))
	}
	w := cl.Workers()
	d := x.Cols()
	ranges := HorizontalRanges(x.Rows(), w)
	var report ByteReport

	// Warm path: ingestion already derived the candidate splits, so the
	// transformation starts at step 3 after broadcasting them.
	if opts.Splits != nil && opts.FeatCount != nil {
		if len(opts.Splits) != d || len(opts.FeatCount) != d {
			return nil, fmt.Errorf("partition: prebin covers %d features, matrix has %d", len(opts.Splits), d)
		}
		binner := &sparse.Binner{Splits: opts.Splits}
		var splitBytes int64
		for f := 0; f < d; f++ {
			splitBytes += int64(len(opts.Splits[f])) * 4
		}
		cl.Broadcast("transform.splits", splitBytes)
		report.SplitBroadcast = splitBytes
		return transformGrouped(cl, x, labels, opts, binner, opts.FeatCount, report)
	}

	// Step 1: per-worker quantile sketches, repartitioned by feature and
	// merged into global sketches.
	local := make([][]*sketch.GK, w)
	cl.Parallel("transform.sketch", func(wk int) {
		sks := make([]*sketch.GK, d)
		lo, hi := ranges[wk][0], ranges[wk][1]
		for i := lo; i < hi; i++ {
			feats, vals := x.Row(i)
			for k, f := range feats {
				if sks[f] == nil {
					sks[f] = sketch.New(opts.SketchEps)
				}
				sks[f].Add(float64(vals[k]))
			}
		}
		local[wk] = sks
	})
	// Sketch repartition: feature f's local sketches travel to worker
	// f mod W for merging. The candidate splits themselves come from the
	// canonical row-order sketches so they are identical to what the
	// horizontal quadrants compute (see sketch.Canonical).
	sketchSend := make([][]int64, w)
	for i := range sketchSend {
		sketchSend[i] = make([]int64, w)
	}
	for f := 0; f < d; f++ {
		owner := f % w
		for wk := 0; wk < w; wk++ {
			if local[wk][f] == nil {
				continue
			}
			if wk != owner {
				sketchSend[wk][owner] += int64(local[wk][f].NumTuples())*sketchTupleBytes + 16
			}
		}
	}
	global := sketch.Canonical(x, opts.SketchEps)
	cl.Shuffle("transform.sketch", sketchSend)
	for i := range sketchSend {
		for j := range sketchSend[i] {
			if i != j {
				report.SketchShuffle += sketchSend[i][j]
			}
		}
	}

	// Step 2: candidate splits from the merged sketches; the master
	// collects them and broadcasts to all workers.
	binner := &sparse.Binner{Splits: make([][]float32, d)}
	featCount := make([]int64, d)
	var splitBytes int64
	for f := 0; f < d; f++ {
		if global[f] == nil {
			continue
		}
		binner.Splits[f] = global[f].CandidateSplits(opts.Q)
		featCount[f] = global[f].Count()
		splitBytes += int64(len(binner.Splits[f])) * 4
	}
	cl.PointToPoint("transform.splits", splitBytes) // gather at master
	cl.Broadcast("transform.splits", splitBytes)
	report.SplitBroadcast = splitBytes
	return transformGrouped(cl, x, labels, opts, binner, featCount, report)
}

// transformGrouped runs steps 3–5 of the transformation — column
// grouping, blockified repartition and label broadcast — from already
// derived candidate splits.
func transformGrouped(cl *cluster.Cluster, x *sparse.CSR, labels []float32, opts Options, binner *sparse.Binner, featCount []int64, report ByteReport) (*Result, error) {
	w := cl.Workers()
	d := x.Cols()
	ranges := HorizontalRanges(x.Rows(), w)

	// Step 3: column grouping with greedy load balancing, plus compact
	// encoding of each (source worker, destination group) partial column
	// group into a block.
	groups := GroupColumnsBalanced(featCount, w)
	slotOf := make([]int32, d) // global feature -> slot within its group
	groupOf := make([]int32, d)
	for g, feats := range groups {
		for slot, f := range feats {
			groupOf[f] = int32(g)
			slotOf[f] = int32(slot)
		}
	}
	// blocks[src][dst] built in parallel over sources.
	blocks := make([][]*Block, w)
	cl.Parallel("transform.group", func(src int) {
		lo, hi := ranges[src][0], ranges[src][1]
		out := make([]*Block, w)
		for dst := 0; dst < w; dst++ {
			out[dst] = &Block{RowStart: lo, RowPtr: make([]int64, 1, hi-lo+1)}
		}
		for i := lo; i < hi; i++ {
			feats, vals := x.Row(i)
			for k, f := range feats {
				dst := groupOf[f]
				b := out[dst]
				b.Feat = append(b.Feat, uint32(slotOf[f]))
				b.Bin = append(b.Bin, binner.BinValue(int(f), vals[k]))
			}
			for dst := 0; dst < w; dst++ {
				out[dst].RowPtr = append(out[dst].RowPtr, int64(len(out[dst].Feat)))
			}
		}
		blocks[src] = out
	})

	// Step 4: repartition the column groups and charge the selected
	// variant's wire cost; all three variants' volumes are reported.
	naive := make([][]int64, w)
	compressed := make([][]int64, w)
	blockified := make([][]int64, w)
	binWidth := BinWidthBytes(opts.Q)
	for src := 0; src < w; src++ {
		naive[src] = make([]int64, w)
		compressed[src] = make([]int64, w)
		blockified[src] = make([]int64, w)
		for dst := 0; dst < w; dst++ {
			b := blocks[src][dst]
			rows := int64(b.NumRows())
			nnz := int64(b.NNZ())
			fw := FeatWidthBytes(len(groups[dst]))
			naive[src][dst] = nnz*naiveKVBytes + rows*perObjectOverheadBytes
			compressed[src][dst] = nnz*(fw+binWidth) + rows*perObjectOverheadBytes
			blockified[src][dst] = b.WireSizeBytes(fw, binWidth)
		}
	}
	sumOffDiag := func(m [][]int64) int64 {
		var t int64
		for i := range m {
			for j := range m[i] {
				if i != j {
					t += m[i][j]
				}
			}
		}
		return t
	}
	report.NaiveShuffle = sumOffDiag(naive)
	report.CompressedShuffle = sumOffDiag(compressed)
	report.BlockifiedShuffle = sumOffDiag(blockified)
	switch opts.Charge {
	case VariantNaive:
		cl.Shuffle("transform.repartition", naive)
	case VariantCompressed:
		cl.Shuffle("transform.repartition", compressed)
	default:
		cl.Shuffle("transform.repartition", blockified)
	}

	// Step 5: the master collects all labels and broadcasts them so every
	// worker can coalesce rows with labels.
	labelBytes := int64(len(labels)) * 4
	cl.PointToPoint("transform.labels", labelBytes)
	cl.Broadcast("transform.labels", labelBytes)
	report.LabelBroadcast = labelBytes

	// Assemble shards: sort received blocks by source offset (they are
	// contiguous row ranges) and merge down to MaxBlocks.
	shards := make([]*Shard, w)
	// Per-worker error slots: each worker writes only its own, so the
	// assembly stays race-free on a concurrent cluster.
	shardErrs := make([]error, w)
	cl.Parallel("transform.assemble", func(dst int) {
		recv := make([]*Block, 0, w)
		for src := 0; src < w; src++ {
			recv = append(recv, blocks[src][dst])
		}
		bs, err := NewBlockSet(recv)
		if err != nil {
			shardErrs[dst] = err
			return
		}
		bs.Merge(opts.MaxBlocks)
		numBins := make([]int, len(groups[dst]))
		for slot, f := range groups[dst] {
			numBins[slot] = len(binner.Splits[f])
		}
		shards[dst] = &Shard{
			Worker:   dst,
			Features: groups[dst],
			NumBins:  numBins,
			Data:     bs,
			Labels:   labels,
		}
	})
	if err := cluster.FirstError(shardErrs); err != nil {
		return nil, err
	}
	return &Result{Groups: groups, Binner: binner, Shards: shards, Bytes: report}, nil
}
