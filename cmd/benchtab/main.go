// Command benchtab regenerates the tables and figures of "An Experimental
// Evaluation of Large Scale GBDT Systems" on the simulated cluster and
// prints them in the paper's layout.
//
// Usage:
//
//	benchtab -exp all            # everything (slow)
//	benchtab -exp table3         # one experiment
//	benchtab -exp fig10b -scale 0.5
//
// Experiments: costmodel, fig10a..fig10h, table3, fig11, table4, table5,
// table6, table7, table8, ablations.
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"strings"

	"vero/internal/costmodel"
	"vero/internal/experiments"
	"vero/internal/partition"
	"vero/internal/systems"
)

func main() {
	exp := flag.String("exp", "all", "experiment to run (comma-separated), or 'all'")
	scale := flag.Float64("scale", 1.0, "instance-count scale factor")
	fig11Data := flag.String("fig11", "susy,rcv1", "datasets for fig11 curves")
	fig11Trees := flag.Int("trees", 10, "trees per fig11 curve")
	flag.Parse()

	want := map[string]bool{}
	for _, e := range strings.Split(*exp, ",") {
		want[strings.TrimSpace(e)] = true
	}
	all := want["all"]
	run := func(name string, f func() error) {
		if !all && !want[name] {
			return
		}
		fmt.Printf("\n===== %s =====\n", name)
		if err := f(); err != nil {
			fmt.Fprintf(os.Stderr, "%s: %v\n", name, err)
			os.Exit(1)
		}
	}

	run("costmodel", func() error { return printCostModel() })
	for _, panel := range []struct {
		name string
		f    func(float64) ([]experiments.Point, error)
		mem  bool
	}{
		{"fig10a", experiments.Fig10a, false},
		{"fig10b", experiments.Fig10b, false},
		{"fig10c", experiments.Fig10c, false},
		{"fig10d", experiments.Fig10d, false},
		{"fig10e", experiments.Fig10e, true},
		{"fig10f", experiments.Fig10f, true},
		{"fig10g", experiments.Fig10g, false},
		{"fig10h", experiments.Fig10h, false},
	} {
		panel := panel
		run(panel.name, func() error {
			pts, err := panel.f(*scale)
			if err != nil {
				return err
			}
			printPoints(pts, panel.mem)
			return nil
		})
	}
	run("table3", func() error { return printTable3(*scale) })
	run("fig11", func() error { return printFig11(*fig11Data, *fig11Trees, *scale) })
	run("table4", func() error { return printTable4(*scale) })
	run("table5", func() error { return printTable5(*scale) })
	run("table6", func() error { return printTable6(*scale) })
	run("table7", func() error { return printTable7(*scale) })
	run("table8", func() error { return printTable8(*scale) })
	run("ablations", func() error { return printAblations(*scale) })

	var ms runtime.MemStats
	runtime.ReadMemStats(&ms)
	fmt.Printf("\npeak heap: %.1f MiB reserved from the OS across all experiments\n",
		float64(ms.HeapSys)/(1<<20))
}

func printCostModel() error {
	r, err := costmodel.Analyze(costmodel.AgeExample())
	if err != nil {
		return err
	}
	const MiB, GiB = float64(1 << 20), float64(1 << 30)
	fmt.Println("Section 3.1.4 worked example (Age: N=48M, D=330K, C=9, W=8, L=8, q=20)")
	fmt.Printf("  Sizehist per node:            %8.1f MB   (paper: ~906 MB)\n", float64(r.HistogramBytes)/MiB)
	fmt.Printf("  horizontal memory per worker: %8.1f GB   (paper: 56.6 GB)\n", float64(r.HorizontalMemoryBytes)/GiB)
	fmt.Printf("  vertical memory per worker:   %8.2f GB   (paper: 7.08 GB)\n", float64(r.VerticalMemoryBytes)/GiB)
	fmt.Printf("  horizontal comm per tree:     %8.1f GB   (paper: ~900 GB)\n", float64(r.HorizontalCommBytesPerTree)/GiB)
	fmt.Printf("  vertical comm per tree:       %8.1f MB   (paper: 366 MB)\n", float64(r.VerticalCommBytesPerTree)/MiB)
	return nil
}

func printPoints(pts []experiments.Point, mem bool) {
	if mem {
		fmt.Printf("%-10s %-12s %12s %12s\n", "workload", "system", "hist (MB)", "data (MB)")
		for _, p := range pts {
			fmt.Printf("%-10s %-12s %12.2f %12.2f\n", p.Workload, p.System, p.HistMB, p.DataMB)
		}
		return
	}
	fmt.Printf("%-10s %-12s %12s %12s %12s\n", "workload", "system", "comp (s)", "comm (s)", "comm (MB)")
	for _, p := range pts {
		fmt.Printf("%-10s %-12s %12.4f %12.4f %12.3f\n", p.Workload, p.System, p.CompSec, p.CommSec, p.CommMB)
	}
}

func printTable3(scale float64) error {
	rows, err := experiments.Table3(scale)
	if err != nil {
		return err
	}
	ss := []systems.System{systems.XGBoost, systems.LightGBM, systems.DimBoost, systems.Vero}
	fmt.Println("Average run time per tree scaled by Vero (Table 3; '-' = unsupported)")
	fmt.Printf("%-16s", "dataset")
	for _, s := range ss {
		fmt.Printf(" %12s", s)
	}
	fmt.Println()
	for _, r := range rows {
		fmt.Printf("%-16s", r.Dataset)
		for _, s := range ss {
			if _, bad := r.Errs[s]; bad {
				fmt.Printf(" %12s", "-")
			} else {
				fmt.Printf(" %12.2f", r.Relative[s])
			}
		}
		fmt.Printf("   (vero: %.3fs/tree)\n", r.Seconds[systems.Vero])
	}
	return nil
}

func printFig11(names string, trees int, scale float64) error {
	for _, name := range strings.Split(names, ",") {
		name = strings.TrimSpace(name)
		curves, err := experiments.Fig11(name, trees, scale)
		if err != nil {
			return err
		}
		fmt.Printf("convergence on %s (validation %s vs simulated seconds)\n", name, curves[0].MetricName)
		for _, c := range curves {
			if c.Err != "" {
				fmt.Printf("  %-12s unsupported: %s\n", c.System, c.Err)
				continue
			}
			fmt.Printf("  %-12s", c.System)
			for _, p := range c.Points {
				fmt.Printf(" (%.2fs, %.4f)", p.Seconds, p.Metric)
			}
			fmt.Println()
		}
	}
	return nil
}

func printTable4(scale float64) error {
	rows, err := experiments.Table4(scale)
	if err != nil {
		return err
	}
	fmt.Println("Industrial datasets, run time per tree in seconds (Table 4, 10 Gbps)")
	for _, r := range rows {
		fmt.Printf("%-8s", r.Dataset)
		for _, s := range []systems.System{systems.XGBoost, systems.DimBoost, systems.Vero} {
			if sec, ok := r.Seconds[s]; ok {
				fmt.Printf("  %s=%.3fs", s, sec)
			}
		}
		fmt.Println()
	}
	return nil
}

func printTable5(scale float64) error {
	rows, err := experiments.Table5(scale)
	if err != nil {
		return err
	}
	fmt.Println("Transformation cost (Table 5): simulated network seconds / volume MB")
	fmt.Printf("%-12s %10s %10s %22s %22s %22s %10s\n",
		"dataset", "sketch(s)", "splits(s)", "naive", "compress", "vero", "labels(s)")
	for _, r := range rows {
		fmt.Printf("%-12s %10.3f %10.3f %12.3fs/%6.1fMB %12.3fs/%6.1fMB %12.3fs/%6.1fMB %10.3f\n",
			r.Dataset, r.LoadSeconds, r.SplitsSeconds,
			r.RepartitionSec[partition.VariantNaive], r.RepartitionMB[partition.VariantNaive],
			r.RepartitionSec[partition.VariantCompressed], r.RepartitionMB[partition.VariantCompressed],
			r.RepartitionSec[partition.VariantBlockified], r.RepartitionMB[partition.VariantBlockified],
			r.LabelSeconds)
	}
	return nil
}

func printTable6(scale float64) error {
	rows, err := experiments.Table6(scale)
	if err != nil {
		return err
	}
	fmt.Println("Scalability of Vero (Table 6)")
	fmt.Printf("%-16s %8s %12s %8s\n", "dataset", "workers", "sec/tree", "speedup")
	for _, r := range rows {
		fmt.Printf("%-16s %8d %12.3f %8.2f\n", r.Dataset, r.Workers, r.Seconds, r.Speedup)
	}
	return nil
}

func printTable7(scale float64) error {
	rows, err := experiments.Table7(scale)
	if err != nil {
		return err
	}
	fmt.Println("Yggdrasil comparison (Table 7), seconds per tree")
	fmt.Printf("%-10s %12s %12s %12s\n", "dataset", "yggdrasil", "qd3(ours)", "vero")
	for _, r := range rows {
		fmt.Printf("%-10s %12.3f %12.3f %12.3f\n", r.Dataset,
			r.Seconds[systems.Yggdrasil], r.Seconds[systems.QD3Hybrid], r.Seconds[systems.Vero])
	}
	return nil
}

func printTable8(scale float64) error {
	rows, err := experiments.Table8(scale)
	if err != nil {
		return err
	}
	fmt.Println("LightGBM comparison (Table 8), seconds per tree / data MB per worker")
	fmt.Printf("%-12s %20s %20s %20s\n", "dataset", "lightgbm(DP)", "lightgbm(FP)", "vero")
	for _, r := range rows {
		f := func(s systems.System) string {
			return fmt.Sprintf("%.3fs/%.1fMB", r.Seconds[s], r.DataMB[s])
		}
		fmt.Printf("%-12s %20s %20s %20s\n", r.Dataset,
			f(systems.LightGBM), f(systems.LightGBMFP), f(systems.Vero))
	}
	return nil
}

func printAblations(scale float64) error {
	fmt.Println("Design-choice ablations (DESIGN.md index)")
	sub, err := experiments.AblationSubtraction(scale)
	if err != nil {
		return err
	}
	fmt.Printf("  %-32s enabled=%.4fs  disabled=%.4fs\n", sub.Name, sub.BaselineSec, sub.AblatedSec)
	comp, err := experiments.AblationCompression(scale)
	if err != nil {
		return err
	}
	fmt.Printf("  %-32s blockified=%.4fs  naive=%.4fs\n", comp.Name, comp.BaselineSec, comp.AblatedSec)
	lb, err := experiments.AblationLoadBalance(scale)
	if err != nil {
		return err
	}
	fmt.Printf("  %-32s greedy-max-load=%.0f  round-robin-max-load=%.0f\n", lb.Name, lb.BaselineSec, lb.AblatedSec)
	return nil
}
