package core

import (
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"hash"
	"hash/crc32"
	"math"
	"os"
	"path/filepath"

	"vero/internal/failpoint"
	"vero/internal/tree"
)

// Training checkpoints make long boosting runs crash-safe: every
// Config.CheckpointEvery trees the trainer serializes everything needed
// to resume — the partial forest in the golden-pinned Encode format, the
// boosting round, a hash of the model-affecting configuration and a
// fingerprint of the dataset — into CheckpointDir, using the same atomic
// temp+rename + CRC-32C pattern as the .vbin cache writer. A later Train
// with a matching config and dataset resumes from the next round; the
// resumed run's model is byte-identical to an uninterrupted one, because
// resume replays each checkpointed tree through the engine's own index
// and prediction-update machinery (the exact float operations of the
// original run) instead of approximating the state.
//
// The file layout is "VCKP" | version u32 | crc32c u32 | JSON body. The
// CRC covers the body, so a torn or bit-flipped checkpoint is detected
// and rejected with a descriptive error rather than silently training
// from corrupt state.
const (
	ckptMagic      = "VCKP"
	ckptVersion    = 1
	ckptHeaderSize = 12
	// CheckpointFile is the file name a checkpoint occupies inside
	// Config.CheckpointDir.
	CheckpointFile = "train.vckp"
)

var ckptCRCTable = crc32.MakeTable(crc32.Castagnoli)

// Failpoint names of the checkpoint seams (see internal/failpoint).
const (
	// FailpointCheckpointSave fails a checkpoint write cleanly (ENOSPC
	// style): the temp file never lands, training continues.
	FailpointCheckpointSave = "checkpoint.save"
	// FailpointCheckpointTorn simulates a torn non-atomic write: a
	// truncated image is left at the final path.
	FailpointCheckpointTorn = "checkpoint.torn"
	// FailpointAfterTree fires after each boosting round's checkpoint
	// logic; arm it with "K*error" (or "K*exit") to crash deterministically
	// right after round K's checkpoint lands.
	FailpointAfterTree = "core.aftertree"
)

// checkpointBody is the JSON payload of a checkpoint file.
type checkpointBody struct {
	// Round is the number of completed boosting rounds (== trees in Model).
	Round int `json:"round"`
	// ConfigHash fingerprints every model-affecting Config field plus the
	// resolved objective; see configHash.
	ConfigHash string `json:"config_hash"`
	// DataFingerprint is the CRC-32C of the materialized dataset; see
	// datasetFingerprint.
	DataFingerprint string `json:"data_fingerprint"`
	// Model is the partial forest in the Encode format.
	Model json.RawMessage `json:"model"`
	// Rank, Workers and PeerFingerprint identify the deployment slot a
	// distributed rank's checkpoint belongs to (zero/empty on
	// single-process checkpoints). PeerFingerprint is Config.DistIdentity —
	// the rank/worker-count/peer-set triple — so a file from a reshaped or
	// reshuffled deployment is rejected with a precise error even before
	// the config hash is consulted.
	Rank            int    `json:"rank,omitempty"`
	Workers         int    `json:"workers,omitempty"`
	PeerFingerprint string `json:"peer_fingerprint,omitempty"`
}

// checkpoint is a decoded, validated checkpoint ready to resume from.
type checkpoint struct {
	round  int
	forest *tree.Forest
}

// checkpointPath returns the checkpoint file location for cfg, or "" when
// checkpointing is off.
func (c *Config) checkpointPath() string {
	if c.CheckpointDir == "" || c.CheckpointEvery <= 0 {
		return ""
	}
	return filepath.Join(c.CheckpointDir, CheckpointFile)
}

// checkpointPath returns this trainer's checkpoint file: the shared
// train.vckp for single-process runs, a per-rank train-rank<R>.vckp on a
// distributed cluster (every rank writes its own state; ranks sharing a
// CheckpointDir — the in-process test meshes do — must not clobber each
// other).
func (t *trainer) checkpointPath() string {
	base := t.cfg.checkpointPath()
	if base == "" || !t.cl.Distributed() {
		return base
	}
	return filepath.Join(t.cfg.CheckpointDir, fmt.Sprintf("train-rank%d.vckp", t.cl.Rank()))
}

// configHash digests the fields that determine the trained model's bits:
// hyper-parameters, quadrant policy and the resolved objective. Timing
// and observation knobs (network model, callbacks, checkpoint placement
// itself) stay out — changing them cannot change the model, so they must
// not invalidate a checkpoint.
func (t *trainer) configHash() string {
	c := t.cfg
	s := fmt.Sprintf("v%d|q%d|T%d|L%d|S%d|lr%v|la%v|ga%v|mh%v|obj:%s|c%d|agg%d|ci%d|fc%t|tc%d|eps%v|seed%d|w%d",
		ckptVersion, c.Quadrant, c.Trees, c.Layers, c.Splits,
		c.LearningRate, c.Lambda, c.Gamma, c.MinChildHess,
		t.obj.Name(), t.c, c.Aggregation, c.ColumnIndex, c.FullCopy,
		c.TransformCharge, c.SketchEps, c.Seed, t.w)
	if c.DistIdentity != "" {
		// Deployment identity (rank/workers@peers) folds in only when set,
		// keeping every pre-existing single-process hash unchanged.
		s += "|dist:" + c.DistIdentity
	}
	sum := sha256.Sum256([]byte(s))
	return hex.EncodeToString(sum[:8])
}

// datasetFingerprint digests the materialized training data: shape,
// labels and the sparse matrix, all bit-exact. Note it fingerprints the
// in-memory dataset, not the source file: a cold parse and a warm .vbin
// load of the same source materialize different value bytes (raw values
// vs bin representatives), so a resumed run must ingest the same way the
// crashed run did — docs/ROBUSTNESS.md spells this out.
func (t *trainer) datasetFingerprint() string {
	h := crc32.New(ckptCRCTable)
	le := binary.LittleEndian
	var scratch [8]byte
	writeU64 := func(v uint64) {
		le.PutUint64(scratch[:], v)
		h.Write(scratch[:])
	}
	writeU64(uint64(t.n))
	writeU64(uint64(t.d))
	writeU64(uint64(t.c))
	for _, y := range t.ds.Labels {
		writeU32(h, scratch[:4], math.Float32bits(y))
	}
	if t.ds.Shard != nil {
		// A shard materializes only its slice of the image; the backing
		// cache's fingerprint — identical at every rank — stands in for the
		// per-row walk, suffixed with the shard axis so a rows shard and a
		// cols shard of the same image fingerprint differently.
		h.Write([]byte(t.ds.Shard.Fingerprint))
		h.Write([]byte(t.ds.Shard.Kind))
		return fmt.Sprintf("%08x", h.Sum32())
	}
	if t.ds.OutOfCore() {
		// Out-of-core matrices stay on disk; the block source's
		// fingerprint (derived from the cache image's payload CRC) stands
		// in for the per-row walk.
		h.Write([]byte(t.ds.Blocks.Fingerprint()))
		return fmt.Sprintf("%08x", h.Sum32())
	}
	for i := 0; i < t.n; i++ {
		feats, vals := t.ds.X.Row(i)
		writeU64(uint64(len(feats)))
		for k, f := range feats {
			writeU32(h, scratch[:4], f)
			writeU32(h, scratch[:4], math.Float32bits(vals[k]))
		}
	}
	return fmt.Sprintf("%08x", h.Sum32())
}

// writeU32 feeds one little-endian uint32 into h via buf (len >= 4).
func writeU32(h hash.Hash32, buf []byte, v uint32) {
	binary.LittleEndian.PutUint32(buf, v)
	h.Write(buf[:4])
}

// saveCheckpoint writes the current training state atomically: temp file
// in CheckpointDir, CRC-32C over the body, then rename. round is the
// number of completed boosting rounds.
func (t *trainer) saveCheckpoint(path string, forest *tree.Forest, round int) error {
	model, err := forest.Encode()
	if err != nil {
		return fmt.Errorf("core: checkpoint encode: %w", err)
	}
	cb := checkpointBody{
		Round:           round,
		ConfigHash:      t.ckptConfigHash,
		DataFingerprint: t.ckptDataFP,
		Model:           model,
	}
	if t.cl.Distributed() {
		cb.Rank = t.cl.Rank()
		cb.Workers = t.w
		cb.PeerFingerprint = t.cfg.DistIdentity
	}
	body, err := json.Marshal(cb)
	if err != nil {
		return fmt.Errorf("core: checkpoint encode: %w", err)
	}
	header := make([]byte, ckptHeaderSize)
	copy(header, ckptMagic)
	binary.LittleEndian.PutUint32(header[4:], ckptVersion)
	binary.LittleEndian.PutUint32(header[8:], crc32.Checksum(body, ckptCRCTable))

	if err := failpoint.Inject(FailpointCheckpointTorn); err != nil {
		// Simulate the failure mode the atomic pattern exists to prevent: a
		// direct, partial write to the final path (a torn image), as a
		// non-atomic writer would leave after a crash mid-write.
		torn := append(append([]byte(nil), header...), body[:len(body)/2]...)
		_ = os.WriteFile(path, torn, 0o644)
		return fmt.Errorf("core: checkpoint write torn: %w", err)
	}
	if err := failpoint.Inject(FailpointCheckpointSave); err != nil {
		return fmt.Errorf("core: checkpoint write: %w", err)
	}

	if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
		return fmt.Errorf("core: checkpoint write: %w", err)
	}
	tmp, err := os.CreateTemp(filepath.Dir(path), CheckpointFile+".tmp*")
	if err != nil {
		return fmt.Errorf("core: checkpoint write: %w", err)
	}
	defer os.Remove(tmp.Name())
	if _, err := tmp.Write(header); err != nil {
		tmp.Close()
		return fmt.Errorf("core: checkpoint write: %w", err)
	}
	if _, err := tmp.Write(body); err != nil {
		tmp.Close()
		return fmt.Errorf("core: checkpoint write: %w", err)
	}
	if err := tmp.Close(); err != nil {
		return fmt.Errorf("core: checkpoint write: %w", err)
	}
	if err := os.Rename(tmp.Name(), path); err != nil {
		return fmt.Errorf("core: checkpoint write: %w", err)
	}
	return nil
}

// loadCheckpoint reads and validates the checkpoint at path. A missing
// file returns (nil, nil) — a fresh run. A structurally corrupt file, or
// one whose config hash or dataset fingerprint does not match the current
// run, is an error: resuming from it would silently produce a model that
// matches no uninterrupted run, so the caller must delete the checkpoint
// (or restore the matching config/data) explicitly.
func (t *trainer) loadCheckpoint(path string) (*checkpoint, error) {
	data, err := os.ReadFile(path)
	if os.IsNotExist(err) {
		return nil, nil
	}
	if err != nil {
		return nil, fmt.Errorf("core: checkpoint read: %w", err)
	}
	corrupt := func(format string, args ...any) error {
		return fmt.Errorf("core: checkpoint %s is corrupt (%s); delete it to retrain from scratch",
			path, fmt.Sprintf(format, args...))
	}
	if len(data) < ckptHeaderSize || string(data[:4]) != ckptMagic {
		return nil, corrupt("bad magic")
	}
	if v := binary.LittleEndian.Uint32(data[4:]); v != ckptVersion {
		return nil, fmt.Errorf("core: checkpoint %s has version %d, want %d; delete it to retrain from scratch", path, v, ckptVersion)
	}
	body := data[ckptHeaderSize:]
	if got, want := crc32.Checksum(body, ckptCRCTable), binary.LittleEndian.Uint32(data[8:]); got != want {
		return nil, corrupt("checksum %08x, want %08x — torn or bit-flipped write", got, want)
	}
	var cb checkpointBody
	if err := json.Unmarshal(body, &cb); err != nil {
		return nil, corrupt("body: %v", err)
	}
	if cb.ConfigHash != t.ckptConfigHash {
		return nil, fmt.Errorf("core: checkpoint %s was written under config %s but this run is %s — config changed; delete the checkpoint or retrain with the original configuration",
			path, cb.ConfigHash, t.ckptConfigHash)
	}
	if cb.DataFingerprint != t.ckptDataFP {
		return nil, fmt.Errorf("core: checkpoint %s was written for dataset %s but this run ingested %s — data changed (or the ingestion mode differs: a cold parse and a warm .vbin load materialize different bytes); delete the checkpoint or re-ingest the original data the original way",
			path, cb.DataFingerprint, t.ckptDataFP)
	}
	if t.cl.Distributed() {
		if cb.Workers != t.w || cb.Rank != t.cl.Rank() {
			return nil, fmt.Errorf("core: checkpoint %s belongs to rank %d of a %d-worker deployment but this process is rank %d of %d; delete the stale checkpoints to retrain from scratch",
				path, cb.Rank, cb.Workers, t.cl.Rank(), t.w)
		}
		if cb.PeerFingerprint != t.cfg.DistIdentity {
			return nil, fmt.Errorf("core: checkpoint %s was written under deployment %q but this run is %q — the peer set changed; delete the stale checkpoints to retrain from scratch",
				path, cb.PeerFingerprint, t.cfg.DistIdentity)
		}
	}
	forest, err := tree.DecodeForest(cb.Model)
	if err != nil {
		return nil, corrupt("model: %v", err)
	}
	if cb.Round != forest.NumTrees() {
		return nil, corrupt("round %d but %d trees", cb.Round, forest.NumTrees())
	}
	if cb.Round > t.cfg.Trees {
		// Trees is part of the config hash, so this only guards a
		// hand-edited body that still matched the CRC.
		return nil, corrupt("round %d exceeds configured trees %d", cb.Round, t.cfg.Trees)
	}
	return &checkpoint{round: cb.Round, forest: forest}, nil
}

// loadCheckpointDistributed resumes a distributed run: every rank loads
// and verifies its own per-rank checkpoint, then the mesh agrees on one
// common resume round via a min-reduction (an 8-byte all-gather) before
// any tree is replayed. A rank whose checkpoint is missing, corrupt or
// mismatched does not error out unilaterally — its peers would block in
// the agreement collective — it votes for round 0 instead, dragging the
// whole cluster to a fresh start. The outcome is always uniform: either
// every rank resumes from the same round (the minimum any rank can
// replay, forests truncated to match) or every rank starts from scratch;
// a mixed resume, where ranks disagree on the completed-round count and
// every subsequent collective desynchronizes, cannot happen.
func (t *trainer) loadCheckpointDistributed(path string) (*checkpoint, error) {
	ck, lerr := t.loadCheckpoint(path)
	if lerr == nil && ck != nil {
		lerr = t.verifyResume(ck.forest)
	}
	if lerr != nil {
		ck = nil
	}
	local := 0
	if ck != nil {
		local = ck.round
	}
	recs := make([][]byte, t.w)
	t.cl.ParallelLocal("ckpt.resume", func(w int) {
		buf := make([]byte, 8)
		binary.LittleEndian.PutUint64(buf, uint64(local))
		recs[w] = buf
	})
	for w := range recs {
		if recs[w] == nil {
			recs[w] = make([]byte, 8)
		}
	}
	t.cl.AllGatherFixed("ckpt.resume", recs)
	if err := t.cl.Err(); err != nil {
		return nil, fmt.Errorf("core: distributed resume agreement failed: %w", err)
	}
	common := local
	for _, r := range recs {
		if v := int(binary.LittleEndian.Uint64(r)); v < common {
			common = v
		}
	}
	if common == 0 || ck == nil {
		return nil, nil
	}
	if common < ck.round {
		// A peer checkpointed fewer rounds (it crashed before a later save
		// landed); replay only the common prefix so every rank regrows the
		// same trees from the same state.
		ck.forest.Trees = ck.forest.Trees[:common]
		ck.round = common
	}
	return ck, nil
}

// verifyResume cross-checks the decoded forest against the freshly
// prepared trainer: the candidate splits the checkpointed trees were
// grown against must be bit-identical to the ones this run derived, and
// the run geometry must agree. Any divergence means the config/data
// fingerprints lied (or the file was tampered with inside its CRC), so
// resuming would not be bit-identical — reject instead.
func (t *trainer) verifyResume(f *tree.Forest) error {
	mismatch := func(what string) error {
		return fmt.Errorf("core: checkpoint does not match this run (%s); delete the checkpoint or retrain with the original configuration and data", what)
	}
	if f.NumClass != t.c || f.NumFeature != t.d {
		return mismatch(fmt.Sprintf("model is %d-class over %d features, run is %d-class over %d", f.NumClass, f.NumFeature, t.c, t.d))
	}
	if f.LearningRate != t.cfg.LearningRate || f.Objective != t.obj.Name() {
		return mismatch("learning rate or objective differs")
	}
	if len(f.Splits) != len(t.binner.Splits) {
		return mismatch("candidate split tables differ")
	}
	for fi := range f.Splits {
		a, b := f.Splits[fi], t.binner.Splits[fi]
		if len(a) != len(b) {
			return mismatch(fmt.Sprintf("feature %d has %d candidate splits, run derived %d", fi, len(a), len(b)))
		}
		for k := range a {
			if math.Float32bits(a[k]) != math.Float32bits(b[k]) {
				return mismatch(fmt.Sprintf("feature %d candidate split %d differs", fi, k))
			}
		}
	}
	want := t.obj.InitScore(t.ds.Labels)
	if len(f.InitScore) != len(want) {
		return mismatch("init score differs")
	}
	for k := range want {
		if math.Float64bits(f.InitScore[k]) != math.Float64bits(want[k]) {
			return mismatch("init score differs")
		}
	}
	return nil
}

// replayTree re-routes every instance through one checkpointed tree and
// re-applies its prediction updates, using the engine's own applyLayer
// and updatePredictions — the identical index transitions and float
// operations the original run performed — so the trainer state after
// replaying k trees is bit-identical to having trained them.
func (t *trainer) replayTree(tr *tree.Tree) {
	t.eng.resetIndexes()
	frontier := []int32{tr.Root()}
	for len(frontier) > 0 {
		splits := make(map[int32]resolvedSplit)
		children := make(map[int32][2]int32)
		var next []int32
		for _, id := range frontier {
			n := &tr.Nodes[id]
			if n.IsLeaf() {
				continue
			}
			splits[id] = resolvedSplit{
				node:        id,
				feature:     int(n.Feature),
				bin:         int(n.SplitBin),
				gain:        n.Gain,
				defaultLeft: n.DefaultLeft,
				valid:       true,
			}
			children[id] = [2]int32{n.Left, n.Right}
			next = append(next, n.Left, n.Right)
		}
		if len(children) == 0 {
			break
		}
		t.eng.applyLayer(splits, children)
		frontier = next
	}
	t.eng.updatePredictions(tr)
}

// resume replays every checkpointed tree, restoring the prediction state
// the original run had after round ck.round.
func (t *trainer) resume(ck *checkpoint) {
	for _, tr := range ck.forest.Trees {
		t.replayTree(tr)
	}
}
