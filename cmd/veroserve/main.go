// Command veroserve serves single-row and batch JSON predictions for
// models trained with gbdt.Train and saved with Model.Encode (for example
// by `veroctl train -model model.json`).
//
// Usage:
//
//	veroserve -model model.json [flags]
//	veroserve -model main=model.json -model canary=candidate.json -admin [flags]
//
// Each -model flag is name=path (a bare path serves as the "default"
// model); the first -model is the default served by the legacy /v1/model
// and /v1/predict aliases. With -admin, models can be loaded, hot-swapped
// and deleted at runtime without dropping traffic.
//
// -batch-deadline enables cross-request micro-batching: concurrent
// single-row predicts coalesce into one blocked scoring call, flushed at
// -batch-rows rows or when the deadline expires (-model-batch overrides
// per model). -binned scores through integer bin-code descent for models
// carrying their candidate splits; margins are bit-identical either way.
//
// Endpoints (see internal/serve and docs/SERVING.md for the wire format):
//
//	curl localhost:8080/healthz
//	curl localhost:8080/readyz
//	curl localhost:8080/v1/models
//	curl localhost:8080/metricz
//	curl -d '{"rows":[{"indices":[0,3],"values":[1.5,-2]}],"proba":true}' localhost:8080/v1/predict
//	curl -d '{"path":"retrained.json"}' localhost:8080/v1/models/default   # -admin only
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"os/signal"
	"strconv"
	"strings"
	"syscall"
	"time"

	"vero/gbdt"
	"vero/internal/serve"
)

// modelFlags collects repeated -model name=path flags.
type modelFlags []string

func (m *modelFlags) String() string { return strings.Join(*m, ", ") }
func (m *modelFlags) Set(v string) error {
	*m = append(*m, v)
	return nil
}

// parseSpec splits one -model flag into (name, path). A bare path serves
// as the default model.
func parseSpec(arg string) (name, path string, err error) {
	if eq := strings.IndexByte(arg, '='); eq >= 0 {
		name, path = arg[:eq], arg[eq+1:]
		if name == "" || path == "" {
			return "", "", fmt.Errorf("bad -model %q: want name=path", arg)
		}
		return name, path, nil
	}
	return serve.DefaultModel, arg, nil
}

// parseBatchOverride splits one -model-batch flag, name=deadline[,rows],
// into its per-model batching config. A zero deadline disables batching
// for that model.
func parseBatchOverride(arg string) (name string, cfg serve.BatchConfig, err error) {
	eq := strings.IndexByte(arg, '=')
	if eq <= 0 {
		return "", cfg, fmt.Errorf("bad -model-batch %q: want name=deadline[,rows]", arg)
	}
	name, spec := arg[:eq], arg[eq+1:]
	if c := strings.IndexByte(spec, ','); c >= 0 {
		rows, err := strconv.Atoi(spec[c+1:])
		if err != nil {
			return "", cfg, fmt.Errorf("bad -model-batch %q rows: %w", arg, err)
		}
		cfg.MaxRows = rows
		spec = spec[:c]
	}
	d, err := time.ParseDuration(spec)
	if err != nil {
		return "", cfg, fmt.Errorf("bad -model-batch %q deadline: %w", arg, err)
	}
	cfg.Deadline = d
	return name, cfg, nil
}

func main() {
	var models, batchOverrides modelFlags
	var (
		addr        = flag.String("addr", ":8080", "listen address")
		workers     = flag.Int("workers", 0, "prediction goroutines per batch (0 = GOMAXPROCS)")
		blockRows   = flag.Int("block-rows", 0, "batch-scoring instance-block size (0 = default, 1 = per-row)")
		maxInflight = flag.Int("max-inflight", 64, "concurrent predict requests per model before queueing")
		maxBatch    = flag.Int("max-batch", 10000, "maximum rows per predict request")
		admin       = flag.Bool("admin", false, "enable model load/hot-swap/delete endpoints")

		batchDeadline = flag.Duration("batch-deadline", 0,
			"micro-batching flush deadline for concurrent single-row requests (0 disables; try 200us)")
		batchRows = flag.Int("batch-rows", 0,
			"rows that flush a micro-batch early (0 = block-rows)")
		binned = flag.Bool("binned", false,
			"serve through bin-code descent when the model carries candidate splits (bit-identical margins)")
	)
	flag.Var(&models, "model", "model to serve, as name=path or a bare path (repeatable; first is the default)")
	flag.Var(&batchOverrides, "model-batch",
		"per-model micro-batching override, as name=deadline[,rows] (repeatable; deadline 0 disables that model's batching)")
	flag.Parse()
	if len(models) == 0 {
		flag.Usage()
		os.Exit(2)
	}

	logger := log.New(os.Stderr, "veroserve: ", log.LstdFlags)
	var specs []serve.ModelSpec
	for _, arg := range models {
		name, path, err := parseSpec(arg)
		if err != nil {
			logger.Fatal(err)
		}
		data, err := os.ReadFile(path)
		if err != nil {
			logger.Fatal(err)
		}
		model, err := gbdt.DecodeModel(data)
		if err != nil {
			logger.Fatalf("%s: %v", path, err)
		}
		specs = append(specs, serve.ModelSpec{Name: name, Source: path, Model: model})
	}

	overrides := map[string]serve.BatchConfig{}
	for _, arg := range batchOverrides {
		name, cfg, err := parseBatchOverride(arg)
		if err != nil {
			logger.Fatal(err)
		}
		overrides[name] = cfg
	}

	srv, err := serve.NewMulti(specs, serve.Options{
		Workers:        *workers,
		BlockRows:      *blockRows,
		MaxInFlight:    *maxInflight,
		MaxBatchRows:   *maxBatch,
		Batch:          serve.BatchConfig{Deadline: *batchDeadline, MaxRows: *batchRows},
		BatchOverrides: overrides,
		Binned:         *binned,
		EnableAdmin:    *admin,
		Logger:         logger,
	})
	if err != nil {
		logger.Fatal(err)
	}

	for _, st := range srv.Registry().List() {
		def := ""
		if st.Name == srv.DefaultModelName() {
			def = " (default)"
		}
		logger.Printf("model %q v%d%s: %d trees, %d classes, objective %q from %s",
			st.Name, st.Version, def, st.NumTrees, st.NumClass, st.Objective, st.Source)
	}
	if *admin {
		logger.Printf("admin endpoints enabled: POST/DELETE /v1/models/{name}")
	}
	if *batchDeadline > 0 {
		logger.Printf("micro-batching on: deadline %v, batch rows %d (0 = block size)", *batchDeadline, *batchRows)
	}
	if *binned {
		logger.Printf("binned inference on: models without candidate splits fall back to float descent")
	}

	httpSrv := &http.Server{
		Addr:              *addr,
		Handler:           srv.Handler(),
		ReadHeaderTimeout: 10 * time.Second,
	}
	// On SIGINT/SIGTERM: flip /readyz to 503 first so load balancers stop
	// routing, then stop accepting and drain the coalescing queues so
	// every already-enqueued row is scored and answered.
	stop := make(chan os.Signal, 1)
	signal.Notify(stop, os.Interrupt, syscall.SIGTERM)
	go func() {
		<-stop
		logger.Printf("shutting down: readiness off, draining micro-batches")
		srv.BeginDrain()
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		_ = httpSrv.Shutdown(ctx)
		srv.Close()
	}()
	logger.Printf("serving %d model(s) on %s", len(specs), *addr)
	if err := httpSrv.ListenAndServe(); err != http.ErrServerClosed {
		logger.Fatal(err)
	}
}
