package core

import (
	"fmt"

	"vero/internal/cluster"
	"vero/internal/histogram"
	"vero/internal/index"
	"vero/internal/partition"
	"vero/internal/sketch"
	"vero/internal/sparse"
)

// prepare builds the candidate splits and materializes each worker's data
// shard according to the quadrant, charging the preparation communication.
func (t *trainer) prepare() error {
	t.ranges = partition.HorizontalRanges(t.n, t.w)
	t.flatG = make([][]float64, t.w)
	t.flatH = make([][]float64, t.w)

	if t.cfg.Quadrant == QD4 && !t.cfg.FullCopy {
		return t.prepareVero()
	}

	featCount, err := t.distributedSketch()
	if err != nil {
		return err
	}
	t.maxBins = t.binner.MaxNumBins()
	if t.maxBins < 2 {
		return fmt.Errorf("core: dataset yields %d candidate splits; need >= 2", t.maxBins)
	}

	dataGauge := t.cl.Stats().Mem("data")
	switch t.cfg.Quadrant {
	case QD2:
		t.layoutH = histogram.Layout{NumFeat: t.d, MaxBins: t.maxBins, NumClass: t.c}
		t.aggHist = make(map[int32]*histogram.Hist)
		t.hRows = make([]*sparse.BinnedCSR, t.w)
		t.hN2I = make([]*index.NodeToInstance, t.w)
		var prepErr error
		t.cl.Parallel("prep.bin", func(w int) {
			shard := t.ds.X.SliceRows(t.ranges[w][0], t.ranges[w][1])
			binned, err := t.binner.BinCSR(shard)
			if err != nil {
				prepErr = err
				return
			}
			t.hRows[w] = binned
			t.hN2I[w] = index.NewNodeToInstance(binned.Rows())
			dataGauge.Set(w, binnedCSRBytes(binned))
		})
		return prepErr

	case QD1:
		t.layoutH = histogram.Layout{NumFeat: t.d, MaxBins: t.maxBins, NumClass: t.c}
		t.aggHist = make(map[int32]*histogram.Hist)
		t.hCols = make([]*sparse.BinnedCSC, t.w)
		t.hI2N = make([]*index.InstanceToNode, t.w)
		var prepErr error
		t.cl.Parallel("prep.bin", func(w int) {
			shard := t.ds.X.SliceRows(t.ranges[w][0], t.ranges[w][1])
			binned, err := t.binner.BinCSR(shard)
			if err != nil {
				prepErr = err
				return
			}
			t.hCols[w] = binned.ToCSC()
			t.hI2N[w] = index.NewInstanceToNode(shard.Rows())
			dataGauge.Set(w, binnedCSCBytes(t.hCols[w]))
		})
		return prepErr

	case QD3:
		t.groups = partition.GroupColumnsBalanced(featCount, t.w)
		t.buildFeatureMaps()
		t.vCols = make([]*sparse.BinnedCSC, t.w)
		t.vNumBins = make([][]int, t.w)
		t.vN2I = make([]*index.NodeToInstance, t.w)
		t.vI2N = make([]*index.InstanceToNode, t.w)
		t.vHist = make([]map[int32]*histogram.Hist, t.w)
		t.vLayout = make([]histogram.Layout, t.w)
		if t.cfg.ColumnIndex == IndexColumnWise {
			t.vCW = make([]*index.ColumnWise, t.w)
		}
		var prepErr error
		var shuffleBytes int64
		t.cl.Parallel("prep.bin", func(w int) {
			sub := t.ds.X.SelectColumns(t.groups[w])
			subBinner := &sparse.Binner{Splits: make([][]float32, len(t.groups[w]))}
			numBins := make([]int, len(t.groups[w]))
			for slot, f := range t.groups[w] {
				subBinner.Splits[slot] = t.binner.Splits[f]
				numBins[slot] = len(t.binner.Splits[f])
			}
			binned, err := subBinner.BinCSR(sub)
			if err != nil {
				prepErr = err
				return
			}
			t.vCols[w] = binned.ToCSC()
			t.vNumBins[w] = numBins
			t.vN2I[w] = index.NewNodeToInstance(t.n)
			t.vI2N[w] = index.NewInstanceToNode(t.n)
			t.vLayout[w] = histogram.Layout{NumFeat: len(t.groups[w]), MaxBins: t.maxBins, NumClass: t.c}
			t.vHist[w] = make(map[int32]*histogram.Hist)
			if t.vCW != nil {
				colLens := make([]int, len(t.groups[w]))
				for j := range colLens {
					colLens[j] = t.vCols[w].ColNNZ(j)
				}
				t.vCW[w] = index.NewColumnWise(colLens)
			}
			dataGauge.Set(w, binnedCSCBytes(t.vCols[w])+int64(t.n)*4) // + broadcast labels
		})
		if prepErr != nil {
			return prepErr
		}
		// Vertical repartition of the raw data, shipped as uncompressed
		// key-value pairs (QD3 predates Vero's compact transformation).
		shuffleBytes = int64(t.ds.X.NNZ()) * 12 * int64(t.w-1) / int64(t.w)
		t.cl.ChargeComm("prep.repartition", cluster.OpShuffle, shuffleBytes, t.commSeconds(shuffleBytes, t.w-1))
		// Labels are broadcast so every worker can compute gradients.
		t.cl.Broadcast("prep.labels", int64(t.n)*4)
		return nil

	case QD4: // FullCopy (feature-parallel)
		t.groups = partition.GroupColumnsBalanced(featCount, t.w)
		t.buildFeatureMaps()
		binned, err := t.binner.BinCSR(t.ds.X)
		if err != nil {
			return err
		}
		t.fullRows = binned
		t.vN2I = make([]*index.NodeToInstance, t.w)
		t.vHist = make([]map[int32]*histogram.Hist, t.w)
		t.vLayout = make([]histogram.Layout, t.w)
		t.vNumBins = make([][]int, t.w)
		for w := 0; w < t.w; w++ {
			t.vN2I[w] = index.NewNodeToInstance(t.n)
			t.vLayout[w] = histogram.Layout{NumFeat: len(t.groups[w]), MaxBins: t.maxBins, NumClass: t.c}
			t.vHist[w] = make(map[int32]*histogram.Hist)
			numBins := make([]int, len(t.groups[w]))
			for slot, f := range t.groups[w] {
				numBins[slot] = len(t.binner.Splits[f])
			}
			t.vNumBins[w] = numBins
			// Feature-parallel's defining cost: the whole dataset on
			// every worker (Appendix D).
			dataGauge.Set(w, binnedCSRBytes(binned)+int64(t.n)*4)
		}
		return nil
	}
	return fmt.Errorf("core: unhandled quadrant %v", t.cfg.Quadrant)
}

// prepareVero runs the full horizontal-to-vertical transformation
// (Section 4.2.1) and adopts its shards.
func (t *trainer) prepareVero() error {
	res, err := partition.Transform(t.cl, t.ds.X, t.ds.Labels, partition.Options{
		Q:         t.cfg.Splits,
		SketchEps: t.cfg.SketchEps,
		Charge:    t.cfg.TransformCharge,
	})
	if err != nil {
		return err
	}
	t.binner = res.Binner
	t.groups = res.Groups
	t.shards = res.Shards
	t.transformBytes = res.Bytes
	t.buildFeatureMaps()
	t.numBinsGlobal = make([]int, t.d)
	for f := range t.binner.Splits {
		t.numBinsGlobal[f] = len(t.binner.Splits[f])
	}
	t.maxBins = t.binner.MaxNumBins()
	if t.maxBins < 2 {
		return fmt.Errorf("core: dataset yields %d candidate splits; need >= 2", t.maxBins)
	}
	t.vN2I = make([]*index.NodeToInstance, t.w)
	t.vHist = make([]map[int32]*histogram.Hist, t.w)
	t.vLayout = make([]histogram.Layout, t.w)
	t.vNumBins = make([][]int, t.w)
	dataGauge := t.cl.Stats().Mem("data")
	for w := 0; w < t.w; w++ {
		t.vN2I[w] = index.NewNodeToInstance(t.n)
		t.vLayout[w] = histogram.Layout{NumFeat: len(t.groups[w]), MaxBins: t.maxBins, NumClass: t.c}
		t.vHist[w] = make(map[int32]*histogram.Hist)
		t.vNumBins[w] = t.shards[w].NumBins
		var blockBytes int64
		for _, b := range t.shards[w].Data.Blocks {
			blockBytes += int64(len(b.RowPtr))*8 + int64(b.NNZ())*6
		}
		dataGauge.Set(w, blockBytes+int64(t.n)*4)
	}
	return nil
}

// distributedSketch builds worker-local quantile sketches (timed and
// charged like the real systems do), then derives canonical candidate
// splits and per-feature value counts. Canonical means partitioning-
// independent: splits come from one global row-order sketch per feature,
// so every quadrant and every worker count yields bit-identical models —
// the property the paper relies on when comparing quadrants "in the same
// code base".
func (t *trainer) distributedSketch() ([]int64, error) {
	local := make([][]*sketch.GK, t.w)
	t.cl.Parallel("prep.sketch", func(w int) {
		sks := make([]*sketch.GK, t.d)
		lo, hi := t.ranges[w][0], t.ranges[w][1]
		for i := lo; i < hi; i++ {
			feats, vals := t.ds.X.Row(i)
			for k, f := range feats {
				if sks[f] == nil {
					sks[f] = sketch.New(t.cfg.SketchEps)
				}
				sks[f].Add(float64(vals[k]))
			}
		}
		local[w] = sks
	})
	var sketchBytes int64
	for f := 0; f < t.d; f++ {
		for w := 0; w < t.w; w++ {
			if local[w][f] != nil {
				sketchBytes += int64(local[w][f].NumTuples()) * 16
			}
		}
	}
	t.cl.ChargeComm("prep.sketch", cluster.OpAllReduce, sketchBytes, t.commSeconds(sketchBytes, t.w-1))

	global := sketch.Canonical(t.ds.X, t.cfg.SketchEps)
	t.binner = &sparse.Binner{Splits: make([][]float32, t.d)}
	t.numBinsGlobal = make([]int, t.d)
	featCount := make([]int64, t.d)
	var splitBytes int64
	for f := 0; f < t.d; f++ {
		if global[f] == nil {
			continue
		}
		t.binner.Splits[f] = global[f].CandidateSplits(t.cfg.Splits)
		t.numBinsGlobal[f] = len(t.binner.Splits[f])
		featCount[f] = global[f].Count()
		splitBytes += int64(len(t.binner.Splits[f])) * 4
	}
	t.cl.Broadcast("prep.sketch", splitBytes)
	return featCount, nil
}

// buildFeatureMaps fills ownerOf and slotOf from groups.
func (t *trainer) buildFeatureMaps() {
	t.ownerOf = make([]int32, t.d)
	t.slotOf = make([]int32, t.d)
	for i := range t.ownerOf {
		t.ownerOf[i] = -1
	}
	for g, feats := range t.groups {
		for slot, f := range feats {
			t.ownerOf[f] = int32(g)
			t.slotOf[f] = int32(slot)
		}
	}
}

// commSeconds converts a byte volume into simulated seconds under the
// cluster's network model with the given number of latency steps.
func (t *trainer) commSeconds(bytes int64, steps int) float64 {
	net := t.cl.Net()
	return float64(steps)*net.LatencySec + float64(bytes)/net.BandwidthBytesPerSec
}

func binnedCSRBytes(m *sparse.BinnedCSR) int64 {
	return int64(len(m.RowPtr))*8 + int64(m.NNZ())*6
}

func binnedCSCBytes(m *sparse.BinnedCSC) int64 {
	return int64(len(m.ColPtr))*8 + int64(m.NNZ())*6
}
