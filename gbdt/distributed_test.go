package gbdt

import (
	"bytes"
	"errors"
	"fmt"
	"net"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"

	"vero/internal/cluster/tcptransport"
	"vero/internal/core"
	"vero/internal/failpoint"
)

// loopbackMesh pre-binds one port-0 loopback listener per rank so every
// peer's address exists before any rank dials, and returns the resulting
// rank-ordered peer list with the listeners to hand each rank.
func loopbackMesh(t *testing.T, w int) ([]string, []net.Listener) {
	t.Helper()
	peers := make([]string, w)
	lns := make([]net.Listener, w)
	for r := 0; r < w; r++ {
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { ln.Close() })
		lns[r] = ln
		peers[r] = ln.Addr().String()
	}
	return peers, lns
}

// distDataset builds the dataset every rank of a test deployment loads.
// Synthetic generation is deterministic, so separate calls stand in for
// separate processes reading the same file.
func distDataset(t *testing.T) *Dataset {
	t.Helper()
	ds, err := Synthetic(SyntheticConfig{N: 400, D: 24, C: 2, InformativeRatio: 0.5, Density: 0.5, Seed: 21})
	if err != nil {
		t.Fatal(err)
	}
	return ds
}

// distRank is one rank's training outcome.
type distRank struct {
	enc    []byte
	report *Report
	err    error
}

// trainMeshLoad trains opts on a W-rank loopback mesh, one goroutine per
// rank. Each rank's dataset comes from load, which sees the rank's full
// options (Distributed already set) — the hook sharded and out-of-core
// variants use to load per-rank views of one cache image.
func trainMeshLoad(t *testing.T, opts Options, w int, load func(r int, o Options) (*Dataset, error)) []distRank {
	t.Helper()
	peers, lns := loopbackMesh(t, w)
	outs := make([]distRank, w)
	var wg sync.WaitGroup
	for r := 0; r < w; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			o := opts
			o.Distributed = &DistributedOptions{
				Peers: peers, Rank: r, listener: lns[r],
				DialTimeout: 10 * time.Second, OpTimeout: 10 * time.Second,
			}
			ds, err := load(r, o)
			if err != nil {
				outs[r].err = err
				return
			}
			defer ds.Close()
			m, rep, err := Train(ds, o)
			if err != nil {
				outs[r].err = err
				return
			}
			outs[r].report = rep
			outs[r].enc, outs[r].err = m.Encode()
		}(r)
	}
	wg.Wait()
	return outs
}

// trainMesh trains opts on a W-rank loopback mesh, one goroutine per
// rank, each with its own independently loaded full dataset.
func trainMesh(t *testing.T, opts Options, w int) []distRank {
	t.Helper()
	return trainMeshLoad(t, opts, w, func(int, Options) (*Dataset, error) {
		return Synthetic(SyntheticConfig{N: 400, D: 24, C: 2, InformativeRatio: 0.5, Density: 0.5, Seed: 21})
	})
}

// writeDistCache writes the test dataset as a .vbin cache image — the
// on-disk form every rank of a sharded or out-of-core deployment opens.
func writeDistCache(t *testing.T, splits int) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), "train.vbin")
	if err := WriteCacheFile(path, distDataset(t), Options{Splits: splits}); err != nil {
		t.Fatal(err)
	}
	return path
}

// TestSocketTrainingBitIdentical is the tentpole acceptance test: for
// every quadrant (and both QD2 aggregation schemes), a real TCP loopback
// deployment of 2 and 4 ranks must train byte-for-byte the model a
// single-process simulation of the same worker count produces, and every
// phase's measured payload must equal the alpha-beta model's accounted
// volume exactly.
func TestSocketTrainingBitIdentical(t *testing.T) {
	if testing.Short() {
		t.Skip("spins up multi-rank TCP meshes")
	}
	cases := []struct {
		name string
		opts Options
	}{
		{"qd1-allreduce", Options{Quadrant: QD1}},
		{"qd2-reducescatter", Options{Quadrant: QD2}},
		{"qd2-paramserver", Options{System: SystemDimBoost}},
		{"qd3-hybrid", Options{Quadrant: QD3}},
		{"qd4-vero", Options{Quadrant: QD4}},
	}
	for _, tc := range cases {
		for _, w := range []int{2, 4} {
			t.Run(fmt.Sprintf("%s/w%d", tc.name, w), func(t *testing.T) {
				opts := tc.opts
				opts.Workers = w
				opts.Trees = 2
				opts.Layers = 4
				opts.Splits = 12
				simM, simR, err := Train(distDataset(t), opts)
				if err != nil {
					t.Fatalf("simulated: %v", err)
				}
				want := encode(t, simM)

				outs := trainMesh(t, opts, w)
				for r, out := range outs {
					if out.err != nil {
						t.Fatalf("rank %d: %v", r, out.err)
					}
					if !bytes.Equal(out.enc, want) {
						t.Errorf("rank %d: socket-trained model differs from the simulation", r)
					}
					rep := out.report
					if !rep.Distributed || rep.Rank != r {
						t.Errorf("rank %d: report says distributed=%v rank=%d", r, rep.Distributed, rep.Rank)
					}
					// The model's accounted volume is invariant across
					// backends, and the deployment-wide measured payload
					// must match it phase by phase.
					if rep.CommBytes != simR.CommBytes {
						t.Errorf("rank %d: accounted %d B, simulation accounted %d B", r, rep.CommBytes, simR.CommBytes)
					}
					if rep.MeasuredCommBytes != rep.CommBytes {
						t.Errorf("rank %d: measured %d B != accounted %d B", r, rep.MeasuredCommBytes, rep.CommBytes)
					}
					if rep.WireBytes <= 0 {
						t.Errorf("rank %d: wire volume %d B, want framing overhead on top of the payload", r, rep.WireBytes)
					}
					for _, p := range rep.Phases {
						if p.MeasuredBytes != p.AccountedBytes {
							t.Errorf("rank %d phase %s: measured %d B != accounted %d B", r, p.Phase, p.MeasuredBytes, p.AccountedBytes)
						}
					}
				}
			})
		}
	}
}

// TestDistributedAbortsAtTreeBoundary injects a transport write failure
// after the first tree completes: every rank must abort with the trainer's
// tree-boundary error instead of hanging or appending a half-reduced tree.
func TestDistributedAbortsAtTreeBoundary(t *testing.T) {
	if testing.Short() {
		t.Skip("spins up a TCP mesh")
	}
	defer failpoint.Reset()
	opts := Options{Quadrant: QD1, Trees: 4, Layers: 4, Splits: 12}
	opts.OnTree = func(i int, _ float64, _ *Tree) {
		// Arm on every rank's first tree boundary; the point is global to
		// the process, so the first rank to finish tree 0 breaks the mesh.
		if i == 0 {
			if err := failpoint.Enable(tcptransport.FailpointWrite, "error"); err != nil {
				t.Error(err)
			}
		}
	}
	for r, out := range trainMesh(t, opts, 2) {
		if out.err == nil {
			t.Fatalf("rank %d: training succeeded with a broken transport", r)
		}
		if !strings.Contains(out.err.Error(), "distributed training aborted during round") {
			t.Errorf("rank %d: error %q is not the tree-boundary abort", r, out.err)
		}
	}
}

// TestShardedTrainingBitIdentical is the v2 tentpole acceptance test: a
// deployment where every rank materializes only its own row range
// (QD1/QD2) or feature group (QD3/QD4) of one cache image must train
// byte-for-byte the model the full-image simulation produces, charge the
// identical communication volume, and move exactly that volume on the
// wire.
func TestShardedTrainingBitIdentical(t *testing.T) {
	if testing.Short() {
		t.Skip("spins up multi-rank TCP meshes")
	}
	cache := writeDistCache(t, 12)
	full, err := ReadCacheFile(cache)
	if err != nil {
		t.Fatal(err)
	}
	for _, q := range []Quadrant{QD1, QD2, QD3, QD4} {
		for _, w := range []int{2, 4} {
			t.Run(fmt.Sprintf("%v/w%d", q, w), func(t *testing.T) {
				opts := Options{Quadrant: q, Workers: w, Trees: 2, Layers: 4, Splits: 12}
				simM, simR, err := Train(full, opts)
				if err != nil {
					t.Fatalf("simulated: %v", err)
				}
				want := encode(t, simM)

				outs := trainMeshLoad(t, opts, w, func(r int, o Options) (*Dataset, error) {
					return IngestShard(cache, o)
				})
				for r, out := range outs {
					if out.err != nil {
						t.Fatalf("rank %d: %v", r, out.err)
					}
					if !bytes.Equal(out.enc, want) {
						t.Errorf("rank %d: shard-trained model differs from the full-image simulation", r)
					}
					// Sharded vertical layers broadcast one whole bitmap per
					// splitting owner where the replicated model charges the
					// paper's single compacted bitmap, so accounted volume may
					// sit slightly above the simulation's — but never below,
					// and the wire must carry exactly what was accounted.
					if out.report.CommBytes < simR.CommBytes {
						t.Errorf("rank %d: accounted %d B, below the simulation's %d B", r, out.report.CommBytes, simR.CommBytes)
					}
					if out.report.MeasuredCommBytes != out.report.CommBytes {
						t.Errorf("rank %d: measured %d B != accounted %d B", r, out.report.MeasuredCommBytes, out.report.CommBytes)
					}
				}
			})
		}
	}
}

// TestOutOfCoreDistributedBitIdentical lifts v1's out-of-core gate: every
// rank streams blocks from its own mapping of one cache image, and the
// mesh still trains the byte-identical model of the out-of-core (and
// in-memory) simulation.
func TestOutOfCoreDistributedBitIdentical(t *testing.T) {
	if testing.Short() {
		t.Skip("spins up multi-rank TCP meshes")
	}
	cache := writeDistCache(t, 12)
	for _, q := range []Quadrant{QD1, QD2, QD3, QD4} {
		for _, w := range []int{2, 4} {
			t.Run(fmt.Sprintf("%v/w%d", q, w), func(t *testing.T) {
				opts := Options{Quadrant: q, Workers: w, Trees: 2, Layers: 4, Splits: 12,
					OutOfCore: true, MemBudget: 1 << 20}
				simDS, _, err := IngestFile(cache, opts)
				if err != nil {
					t.Fatal(err)
				}
				defer simDS.Close()
				simM, _, err := Train(simDS, opts)
				if err != nil {
					t.Fatalf("simulated: %v", err)
				}
				want := encode(t, simM)

				outs := trainMeshLoad(t, opts, w, func(r int, o Options) (*Dataset, error) {
					ds, _, err := IngestFile(cache, o)
					return ds, err
				})
				for r, out := range outs {
					if out.err != nil {
						t.Fatalf("rank %d: %v", r, out.err)
					}
					if !bytes.Equal(out.enc, want) {
						t.Errorf("rank %d: out-of-core socket model differs from the simulation", r)
					}
				}
			})
		}
	}
}

// TestDistributedEarlyStoppingBitIdentical lifts v1's early-stopping
// gate: rank 0 owns the validation set and broadcasts its verdict, so a
// mesh must stop at — and truncate to — exactly the trees the simulated
// early-stopped run keeps.
func TestDistributedEarlyStoppingBitIdentical(t *testing.T) {
	if testing.Short() {
		t.Skip("spins up multi-rank TCP meshes")
	}
	for _, q := range []Quadrant{QD1, QD2, QD3, QD4} {
		for _, w := range []int{2, 4} {
			t.Run(fmt.Sprintf("%v/w%d", q, w), func(t *testing.T) {
				opts := Options{Quadrant: q, Workers: w, Trees: 10, Layers: 3, Splits: 12}
				const patience = 2
				ds := distDataset(t)
				simM, _, err := TrainWithEarlyStopping(ds, ds, opts, patience)
				if err != nil {
					t.Fatalf("simulated: %v", err)
				}
				want := encode(t, simM)

				peers, lns := loopbackMesh(t, w)
				outs := make([]distRank, w)
				var wg sync.WaitGroup
				for r := 0; r < w; r++ {
					wg.Add(1)
					go func(r int) {
						defer wg.Done()
						rds := distDataset(t)
						o := opts
						o.Distributed = &DistributedOptions{
							Peers: peers, Rank: r, listener: lns[r],
							DialTimeout: 10 * time.Second, OpTimeout: 10 * time.Second,
						}
						m, rep, err := TrainWithEarlyStopping(rds, rds, o, patience)
						if err != nil {
							outs[r].err = err
							return
						}
						outs[r].report = rep
						outs[r].enc, outs[r].err = m.Encode()
					}(r)
				}
				wg.Wait()
				for r, out := range outs {
					if out.err != nil {
						t.Fatalf("rank %d: %v", r, out.err)
					}
					if !bytes.Equal(out.enc, want) {
						t.Errorf("rank %d: early-stopped socket model differs from the simulation (%d trees, sim %d)",
							r, mustDecode(t, out.enc).NumTrees(), simM.NumTrees())
					}
				}
			})
		}
	}
}

// TestDistributedCrashMatrixResume is the crash matrix: for every
// quadrant and deployment size, kill exactly one rank right after every
// boosting round, restart the whole deployment against the same
// checkpoint directory, and require (1) every rank of the crashed run to
// fail — no survivor computing alone, (2) the restarted ranks to agree
// on one common resume round, and (3) the resumed model to be
// byte-identical to an uninterrupted run.
func TestDistributedCrashMatrixResume(t *testing.T) {
	if testing.Short() {
		t.Skip("spins up multi-rank TCP meshes")
	}
	const trees, every = 4, 2
	for _, q := range []Quadrant{QD1, QD2, QD3, QD4} {
		for _, w := range []int{2, 4} {
			t.Run(fmt.Sprintf("%v/w%d", q, w), func(t *testing.T) {
				opts := Options{Quadrant: q, Workers: w, Trees: trees, Layers: 3, Splits: 12}
				simM, _, err := Train(distDataset(t), opts)
				if err != nil {
					t.Fatalf("simulated: %v", err)
				}
				want := encode(t, simM)

				for round := 0; round < trees-1; round++ {
					o := opts
					o.CheckpointDir = t.TempDir()
					o.CheckpointEvery = every

					// Ranks proceed in lockstep (every layer is a collective
					// barrier), so global after-tree hits w*round+1 through
					// w*(round+1) all belong to `round`. A one-hit window on
					// the first of them kills exactly one rank right after it
					// finishes the round; its peers must then abort at their
					// own tree boundary.
					hit := round*w + 1
					if err := failpoint.Enable(core.FailpointAfterTree, fmt.Sprintf("%d-%d*error", hit, hit)); err != nil {
						t.Fatal(err)
					}
					outs := trainMesh(t, o, w)
					failpoint.Reset()
					injected := 0
					for r, out := range outs {
						if out.err == nil {
							t.Fatalf("round %d: rank %d survived the cluster crash", round, r)
						}
						if errors.Is(out.err, failpoint.ErrInjected) {
							injected++
						} else if !strings.Contains(out.err.Error(), "aborted during round") {
							t.Errorf("round %d: rank %d died without the tree-boundary abort: %v", round, r, out.err)
						}
					}
					if injected != 1 {
						t.Fatalf("round %d: %d ranks hit the injected kill, want exactly 1", round, injected)
					}

					// Every rank checkpointed the boundary before the crash,
					// so the min-reduction must land there — and the resumed
					// run must finish on the uninterrupted bytes.
					wantStart := ((round + 1) / every) * every
					outs = trainMesh(t, o, w)
					for r, out := range outs {
						if out.err != nil {
							t.Fatalf("round %d: resume rank %d: %v", round, r, out.err)
						}
						if out.report.StartRound != wantStart {
							t.Errorf("round %d: rank %d resumed from %d, want %d", round, r, out.report.StartRound, wantStart)
						}
						if !bytes.Equal(out.enc, want) {
							t.Errorf("round %d: rank %d resumed model differs from uninterrupted run", round, r)
						}
					}
				}
			})
		}
	}
}

// TestDistributedCheckpointWorkerMismatch: checkpoints written by a W=2
// deployment must be rejected by a W=4 one — the deployment identity is
// part of the config hash — and the whole mesh must then fall back to
// round 0 together, never a mixed resume.
func TestDistributedCheckpointWorkerMismatch(t *testing.T) {
	if testing.Short() {
		t.Skip("spins up multi-rank TCP meshes")
	}
	opts := Options{Quadrant: QD2, Trees: 4, Layers: 3, Splits: 12,
		CheckpointDir: t.TempDir(), CheckpointEvery: 2}

	// Crash a W=2 deployment after round 2: both ranks leave round-2
	// checkpoints behind (hits 5 and 6 are the two round-2 completions).
	if err := failpoint.Enable(core.FailpointAfterTree, "5-6*error"); err != nil {
		t.Fatal(err)
	}
	outs := trainMesh(t, opts, 2)
	failpoint.Reset()
	for r, out := range outs {
		if out.err == nil {
			t.Fatalf("rank %d survived the crash", r)
		}
	}

	// A W=4 deployment over the same checkpoint directory must reject the
	// W=2 images and start from scratch — cluster-wide.
	o := opts
	o.Workers = 4
	simM, _, err := Train(distDataset(t), Options{Quadrant: QD2, Workers: 4, Trees: 4, Layers: 3, Splits: 12})
	if err != nil {
		t.Fatal(err)
	}
	want := encode(t, simM)
	for r, out := range trainMesh(t, o, 4) {
		if out.err != nil {
			t.Fatalf("rank %d: %v", r, out.err)
		}
		if out.report.StartRound != 0 {
			t.Errorf("rank %d resumed a W=2 checkpoint under W=4 (start round %d)", r, out.report.StartRound)
		}
		if !bytes.Equal(out.enc, want) {
			t.Errorf("rank %d: model differs from the W=4 reference", r)
		}
	}
}

// TestDistributedRejections covers what v2 still refuses: combinations
// that cannot keep ranks bit-identical fail up front with an error that
// says why.
func TestDistributedRejections(t *testing.T) {
	cache := writeDistCache(t, 12)
	dist := &DistributedOptions{Peers: []string{"127.0.0.1:1", "127.0.0.1:2"}, Rank: 0}

	// A shard is a deployment slot's slice: no deployment, no shard.
	if _, err := IngestShard(cache, Options{Quadrant: QD2}); err == nil ||
		!strings.Contains(err.Error(), "Distributed") {
		t.Errorf("shard load without a deployment: err = %v", err)
	}
	// The sharding axis follows the quadrant, so the advisor cannot pick.
	if _, err := IngestShard(cache, Options{Distributed: dist, Quadrant: QuadrantAuto}); err == nil ||
		!strings.Contains(err.Error(), "Quadrant") {
		t.Errorf("shard load with auto quadrant: err = %v", err)
	}
	// Shards come from cache images, not source text.
	if _, err := IngestShard("train.libsvm", Options{Distributed: dist, Quadrant: QD1}); err == nil ||
		!strings.Contains(err.Error(), ".vbin") {
		t.Errorf("shard load from a non-cache path: err = %v", err)
	}
	// A sharded dataset on a simulated cluster would train on a fraction
	// of the data; core must refuse it.
	sh, err := IngestShard(cache, Options{Distributed: dist, Quadrant: QD2})
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := Train(sh, Options{Quadrant: QD2, Workers: 2, Trees: 1, Layers: 3, Splits: 12}); err == nil ||
		!strings.Contains(err.Error(), "simulated") {
		t.Errorf("sharded dataset on a simulated cluster: err = %v", err)
	}
}

// mustDecode decodes a model encoding or fails the test.
func mustDecode(t *testing.T, enc []byte) *Model {
	t.Helper()
	m, err := DecodeModel(enc)
	if err != nil {
		t.Fatal(err)
	}
	return m
}
