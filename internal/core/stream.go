package core

import (
	"fmt"
	"math/bits"
	"sync"

	"vero/internal/bitmap"
	"vero/internal/cluster"
	"vero/internal/datasets"
	"vero/internal/histogram"
	"vero/internal/index"
	"vero/internal/partition"
)

// Out-of-core training. When the dataset is served by a
// datasets.BlockSource (an mmap-backed .vbin view) instead of a
// materialized matrix, the engines replace every data access with
// streamed block reads through a colStream: column scans arrive in
// fixed-size entry chunks, row stores are rebuilt block-by-block from the
// on-disk columns, and point probes become binary searches over the
// mapped column ranges. Resident scratch is bounded by Config.MemBudget.
//
// The invariant every streamed path preserves is bit-identity with the
// in-memory engines: chunking a sequential scan never reorders the
// additions flowing into any single accumulator, block transposition
// emits each row's entries in ascending global feature order (exactly the
// materialized CSR row order), and aggregation inputs and reduction order
// are unchanged — so the trained forest's encoded bytes match the
// in-memory run for any block size.

// defaultMemBudget bounds resident streaming scratch when Config.MemBudget
// is unset.
const defaultMemBudget int64 = 64 << 20

// minDerivedChunk floors the derived column-chunk size so a tiny budget
// cannot degrade scans to per-entry reads; explicit Config.BlockNNZ
// overrides may go all the way down to one entry (the block-boundary
// tests do).
const minDerivedChunk = 256

// colStream provides budgeted, chunked access to an out-of-core block
// source for every worker. Each worker owns scratch for one column chunk;
// read failures are sticky — the first error is recorded and the trainer
// aborts the run at the next tree boundary with a descriptive error
// instead of crashing mid-scan.
type colStream struct {
	src       datasets.BlockSource
	chunk     int // entries per column-chunk read
	blockRows int // rows per rebuilt row block
	perWorker int64

	inst [][]uint32
	bins [][]uint16

	mu  sync.Mutex
	err error
}

// newColStream sizes the streaming scratch from the configuration: the
// budget is split evenly between column-chunk scratch and row-block
// scratch across workers; explicit BlockNNZ/BlockRows override the
// derived sizes (tests use them to pin block-boundary edge cases).
func newColStream(src datasets.BlockSource, w int, cfg Config) *colStream {
	budget := cfg.MemBudget
	if budget <= 0 {
		budget = defaultMemBudget
	}
	s := &colStream{src: src}
	// A column-chunk entry costs 6 bytes of scratch (uint32 instance +
	// uint16 bin). A quarter of the budget serves the column chunks and a
	// quarter the row blocks; the remaining half is headroom for
	// histograms and trainer state, so whole-run peak heap stays under
	// the budget rather than matching it.
	s.chunk = int(budget / 4 / int64(w) / 6)
	if s.chunk < minDerivedChunk {
		s.chunk = minDerivedChunk
	}
	if cfg.BlockNNZ > 0 {
		s.chunk = cfg.BlockNNZ
	}
	// Row blocks hold ~avgRowNNZ entries of 6 bytes plus an 8-byte row
	// pointer per row.
	rows, nnz := src.Rows(), src.NNZ()
	avgRowNNZ := int64(1)
	if rows > 0 && nnz > int64(rows) {
		avgRowNNZ = nnz / int64(rows)
	}
	s.blockRows = int(budget / 4 / int64(w) / (6*avgRowNNZ + 8))
	if s.blockRows < 1 {
		s.blockRows = 1
	}
	if cfg.BlockRows > 0 {
		s.blockRows = cfg.BlockRows
	}
	s.perWorker = budget / int64(w)
	s.inst = make([][]uint32, w)
	s.bins = make([][]uint16, w)
	for i := 0; i < w; i++ {
		s.inst[i] = make([]uint32, s.chunk)
		s.bins[i] = make([]uint16, s.chunk)
	}
	return s
}

// fail records the first streaming error; later errors are dropped.
func (s *colStream) fail(err error) {
	s.mu.Lock()
	if s.err == nil {
		s.err = err
	}
	s.mu.Unlock()
}

// ok returns the sticky streaming error, if any.
func (s *colStream) ok() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.err
}

// failed reports cheaply whether a streaming error was recorded.
func (s *colStream) failed() bool { return s.ok() != nil }

// scan streams the entry range [lo, hi) through fn in chunks, using
// worker w's scratch. When rebase is nonzero the instance ids are copied
// into scratch and shifted down by rebase (the horizontal quadrants index
// per-shard state with shard-local ids; the mapped view is read-only, so
// rebasing must not touch zero-copy slices). Returns false after
// recording a read failure.
func (s *colStream) scan(w int, lo, hi int64, rebase int, fn func(insts []uint32, bins []uint16)) bool {
	for lo < hi {
		n := hi - lo
		if n > int64(s.chunk) {
			n = int64(s.chunk)
		}
		ri, rb, err := s.src.Entries(lo, lo+n, s.inst[w], s.bins[w])
		if err != nil {
			s.fail(err)
			return false
		}
		if rebase != 0 && len(ri) > 0 {
			buf := s.inst[w][:len(ri)]
			if &buf[0] != &ri[0] {
				copy(buf, ri)
			}
			for k := range buf {
				buf[k] -= uint32(rebase)
			}
			ri = buf
		}
		fn(ri, rb)
		lo += n
	}
	return true
}

// search wraps SearchInst with sticky error recording; on failure it
// returns hi (an empty residual range).
func (s *colStream) search(lo, hi int64, inst uint32) int64 {
	pos, err := s.src.SearchInst(lo, hi, inst)
	if err != nil {
		s.fail(err)
		return hi
	}
	return pos
}

// entryRange returns the entry range of column col restricted to global
// rows [rowLo, rowHi).
func (s *colStream) entryRange(col, rowLo, rowHi int) (int64, int64) {
	lo, hi := s.src.ColRange(col)
	if rowLo > 0 {
		lo = s.search(lo, hi, uint32(rowLo))
	}
	if rowHi < s.src.Rows() {
		hi = s.search(lo, hi, uint32(rowHi))
	}
	return lo, hi
}

// lookup probes column col for instance inst — the streamed equivalent of
// searchColumn over a materialized column. On a read failure it reports
// the instance missing; the sticky error aborts the run at the tree
// boundary, so the garbage placement is never observed in a result.
func (s *colStream) lookup(col int, inst uint32) (uint16, bool) {
	lo, hi := s.src.ColRange(col)
	bin, found, err := s.src.LookupInst(lo, hi, inst)
	if err != nil {
		s.fail(err)
		return 0, false
	}
	return bin, found
}

// initStream validates the out-of-core configuration and sizes the
// streaming scratch. Called by prepare before the engine is constructed.
func (t *trainer) initStream() error {
	if !t.ds.OutOfCore() {
		return nil
	}
	if t.ds.Prebin == nil || !t.ds.Prebin.Quantized {
		return fmt.Errorf("core: out-of-core training requires a binned cache view with its prebin (map a .vbin cache)")
	}
	if t.cfg.Quadrant == QD3 && t.cfg.ColumnIndex == IndexColumnWise {
		return fmt.Errorf("core: the column-wise index (Yggdrasil) materializes whole columns and cannot stream; use the hybrid index for out-of-core QD3")
	}
	if t.cfg.Quadrant == QD4 && t.cfg.FullCopy {
		return fmt.Errorf("core: feature-parallel full copy replicates the dataset on every worker and cannot stream; disable FullCopy for out-of-core QD4")
	}
	t.stream = newColStream(t.ds.Blocks, t.w, t.cfg)
	return nil
}

// rowBlockBuilder rebuilds a row store block-by-block from the on-disk
// columns: per-column cursors advance through the global row range, and
// each block is a two-pass (count, scatter) transpose of the cursor
// segments. Columns are processed in ascending global feature id order,
// so each row's entries come out exactly as the materialized CSR stores
// them — the bit-identity requirement of the row-scan kernels.
type rowBlockBuilder struct {
	s            *colStream
	w            int
	rowLo, rowHi int
	cols         []int    // global feature ids, ascending
	emit         []uint32 // Feat value per column (global id or group slot)

	cur, end []int64 // per-column cursor / end of restricted range
	ends     []int64 // per-block segment ends scratch
	row      int     // next global row to emit

	rowPtr  []int64
	nextPos []int64
	feat    []uint32
	bin     []uint16
}

// newRowBlockBuilder prepares a builder over global rows [rowLo, rowHi)
// for the given columns; emit[i] is the feature value written for
// cols[i]'s entries.
func newRowBlockBuilder(s *colStream, w, rowLo, rowHi int, cols []int, emit []uint32) *rowBlockBuilder {
	return &rowBlockBuilder{
		s: s, w: w, rowLo: rowLo, rowHi: rowHi, cols: cols, emit: emit,
		cur:  make([]int64, len(cols)),
		end:  make([]int64, len(cols)),
		ends: make([]int64, len(cols)),
	}
}

// reset repositions every column cursor at the start of the row range.
func (b *rowBlockBuilder) reset() {
	for i, f := range b.cols {
		b.cur[i], b.end[i] = b.s.entryRange(f, b.rowLo, b.rowHi)
	}
	b.row = b.rowLo
}

// next assembles the next row block. It returns the block's first global
// row, local row pointers (rows [start, start+len(rowPtr)-1)), and the
// entry arrays; ok is false when the range is exhausted or a read failed.
// The returned slices are reused by the following next call.
func (b *rowBlockBuilder) next() (start int, rowPtr []int64, feat []uint32, bin []uint16, ok bool) {
	if b.row >= b.rowHi || b.s.failed() {
		return 0, nil, nil, nil, false
	}
	start = b.row
	end := start + b.s.blockRows
	if end > b.rowHi {
		end = b.rowHi
	}
	nrows := end - start

	if cap(b.rowPtr) < nrows+1 {
		b.rowPtr = make([]int64, nrows+1)
		b.nextPos = make([]int64, nrows)
	}
	b.rowPtr = b.rowPtr[:nrows+1]
	b.nextPos = b.nextPos[:nrows]
	clear(b.rowPtr)

	// Pass 1: count each row's entries across the column segments that
	// fall inside the block (rowPtr[r+1] accumulates row r's count).
	for i := range b.cols {
		b.ends[i] = b.s.search(b.cur[i], b.end[i], uint32(end))
		if !b.s.scan(b.w, b.cur[i], b.ends[i], 0, func(insts []uint32, _ []uint16) {
			for _, inst := range insts {
				b.rowPtr[int(inst)-start+1]++
			}
		}) {
			return 0, nil, nil, nil, false
		}
	}
	for r := 0; r < nrows; r++ {
		b.rowPtr[r+1] += b.rowPtr[r]
	}
	total := b.rowPtr[nrows]
	if int64(cap(b.feat)) < total {
		b.feat = make([]uint32, total)
		b.bin = make([]uint16, total)
	}
	b.feat = b.feat[:total]
	b.bin = b.bin[:total]

	// Pass 2: scatter, ascending feature order within each row.
	copy(b.nextPos, b.rowPtr[:nrows])
	for i := range b.cols {
		ev := b.emit[i]
		if !b.s.scan(b.w, b.cur[i], b.ends[i], 0, func(insts []uint32, binsArr []uint16) {
			for k, inst := range insts {
				r := int(inst) - start
				p := b.nextPos[r]
				b.feat[p] = ev
				b.bin[p] = binsArr[k]
				b.nextPos[r] = p + 1
			}
		}) {
			return 0, nil, nil, nil, false
		}
		b.cur[i] = b.ends[i]
	}
	b.row = end
	return start, b.rowPtr, b.feat, b.bin, true
}

// allFeatures returns [0..d) with identity emit values — the column set
// of a horizontal row shard (all features, global ids).
func allFeatures(d int) (cols []int, emit []uint32) {
	cols = make([]int, d)
	emit = make([]uint32, d)
	for f := 0; f < d; f++ {
		cols[f] = f
		emit[f] = uint32(f)
	}
	return cols, emit
}

// ---- horizontal engine, streamed (QD1/QD2) ----

// prepareStreamed sets up the horizontal quadrants without materializing
// shards: indexes cover the worker row ranges, and the data gauge charges
// the per-worker streaming scratch budget instead of shard bytes.
func (e *horizontalEngine) prepareStreamed() error {
	t := e.t
	if _, err := t.distributedSketch(); err != nil {
		return err
	}
	if err := t.checkMaxBins(); err != nil {
		return err
	}
	e.flatG = make([][]float64, t.w)
	e.flatH = make([][]float64, t.w)
	e.layout = histogram.Layout{NumFeat: t.d, MaxBins: t.maxBins, NumClass: t.c}
	e.agg = make(map[int32]*histogram.Hist)
	dataGauge := t.cl.Stats().Mem("data")
	if t.cfg.Quadrant == QD2 {
		e.n2i = make([]*index.NodeToInstance, t.w)
		e.blocks = make([]*rowBlockBuilder, t.w)
		cols, emit := allFeatures(t.d)
		// ParallelLocal: on a distributed cluster each rank builds only its
		// hosted worker's index and block builder — the aggregation path
		// (sumLocalInto) requires the locals' shape to match the hosting.
		t.cl.ParallelLocal("prep.bin", func(w int) {
			lo, hi := t.ranges[w][0], t.ranges[w][1]
			e.n2i[w] = index.NewNodeToInstance(hi - lo)
			e.blocks[w] = newRowBlockBuilder(t.stream, w, lo, hi, cols, emit)
			dataGauge.Set(w, t.stream.perWorker)
		})
		return t.stream.ok()
	}
	e.i2n = make([]*index.InstanceToNode, t.w)
	t.cl.ParallelLocal("prep.bin", func(w int) {
		lo, hi := t.ranges[w][0], t.ranges[w][1]
		e.i2n[w] = index.NewInstanceToNode(hi - lo)
		dataGauge.Set(w, t.stream.perWorker)
	})
	return t.stream.ok()
}

// buildHistogramsStreamedQD2 is buildHistograms for streamed QD2,
// restructured block-outer/node-inner: each worker rebuilds its row
// blocks once per layer and advances every build node's instance cursor
// through them, so the data is read once regardless of the node count.
// Per node the accumulation order (ascending instances, CSR row order
// within) and the per-node aggregation order over workers are exactly the
// in-memory ones, so the result is bit-identical.
func (e *horizontalEngine) buildHistogramsStreamedQD2(toBuild []*nodeInfo) {
	t := e.t
	locals := make([][]*histogram.Hist, len(toBuild))
	for i := range locals {
		locals[i] = make([]*histogram.Hist, t.w)
	}
	t.cl.ParallelLocal(phaseHist, func(w int) {
		base := t.ranges[w][0]
		insts := make([][]uint32, len(toBuild))
		pos := make([]int, len(toBuild))
		for i, nd := range toBuild {
			locals[i][w] = t.pool.Get(e.layout)
			insts[i] = e.n2i[w].Instances(nd.id)
		}
		b := e.blocks[w]
		b.reset()
		for {
			start, rowPtr, feat, bin, ok := b.next()
			if !ok {
				break
			}
			localStart := start - base
			localEnd := localStart + len(rowPtr) - 1
			for i := range toBuild {
				list := insts[i]
				k := pos[i]
				from := k
				for k < len(list) && int(list[k]) < localEnd {
					k++
				}
				pos[i] = k
				locals[i][w].RowScan(list[from:k], localStart, rowPtr, feat, bin, t.grads, t.hessv, base)
			}
		}
	})
	for i, nd := range toBuild {
		e.aggregate(nd.id, locals[i])
		for _, h := range locals[i] {
			if h != nil { // distributed ranks fill only their hosted slot
				t.pool.Put(h)
			}
		}
	}
}

// buildHistogramsStreamedQD1 is the streamed QD1 pass: identical routed
// column-scan structure, with each worker's column restricted to its row
// range by two binary searches and streamed in chunks. Chunking preserves
// the per-accumulator addition order, and the worker-order merge is
// unchanged, so the aggregated histograms are bit-identical.
func (e *horizontalEngine) buildHistogramsStreamedQD1(toBuild []*nodeInfo, slot []int32, acc []*histogram.Hist, merged []chan struct{}) {
	t := e.t
	t.cl.ParallelLocal(phaseHist, func(w int) {
		stride := e.layout.FloatsPerSide()
		ag, ah := e.flatScratch(w, stride*len(toBuild))
		nodeOf := e.i2n[w].Assignments()
		base := t.ranges[w][0]
		rowLo, rowHi := t.ranges[w][0], t.ranges[w][1]
		for j := 0; j < t.d && !t.stream.failed(); j++ {
			lo, hi := t.stream.entryRange(j, rowLo, rowHi)
			t.stream.scan(w, lo, hi, base, func(insts []uint32, bins []uint16) {
				histogram.ColumnScanRouted(ag, ah, stride, e.layout, j, insts, bins, nodeOf, slot, t.grads, t.hessv, base)
			})
		}
		// A distributed rank hosts one worker; its predecessor's channel is
		// never closed locally (the AllReduce below replaces the chain).
		if w > 0 && t.cl.HostsWorker(w-1) {
			<-merged[w-1]
		}
		for i := range acc {
			acc[i].Merge(&histogram.Hist{Layout: e.layout,
				Grad: ag[i*stride : (i+1)*stride], Hess: ah[i*stride : (i+1)*stride]})
		}
		close(merged[w])
	})
}

// applyLayerStreamed updates the horizontal indexes with split-feature
// probes served by binary searches over the mapped columns (global
// instance ids); the placement decisions are the same booleans the
// materialized shards produce.
func (e *horizontalEngine) applyLayerStreamed(splits map[int32]resolvedSplit, children map[int32][2]int32) {
	t := e.t
	t.cl.Broadcast(phaseNode, int64(len(splits))*splitWireBytes)
	if t.cfg.Quadrant == QD2 {
		t.cl.ParallelLocal(phaseNode, func(w int) {
			base := t.ranges[w][0]
			for parent, ch := range children {
				sp := splits[parent]
				e.n2i[w].Split(parent, ch[0], ch[1], func(inst uint32) bool {
					bin, ok := t.stream.lookup(sp.feature, uint32(base)+inst)
					if !ok {
						return sp.defaultLeft
					}
					return int(bin) <= sp.bin
				})
			}
		})
		return
	}
	t.cl.ParallelLocal(phaseNode, func(w int) {
		base := t.ranges[w][0]
		i2n := e.i2n[w]
		i2n.SplitLayer(children, func(inst uint32) bool {
			sp := splits[i2n.Node(inst)]
			bin, ok := t.stream.lookup(sp.feature, uint32(base)+inst)
			if !ok {
				return sp.defaultLeft
			}
			return int(bin) <= sp.bin
		})
	})
}

// ---- vertical engine, streamed (QD3 hybrid / QD4 Vero) ----

// prepareStreamedQD3 mirrors the QD3 preparation without materializing
// the per-worker column shards: groups, indexes and charges are identical
// (the repartition shuffle is charged from the source's entry count), but
// column data stays on disk.
func (e *verticalEngine) prepareStreamedQD3() error {
	t := e.t
	featCount, err := t.distributedSketch()
	if err != nil {
		return err
	}
	if err := t.checkMaxBins(); err != nil {
		return err
	}
	e.groups = partition.GroupColumnsBalanced(featCount, t.w)
	e.buildFeatureMaps()
	dataGauge := t.cl.Stats().Mem("data")
	e.numBins = make([][]int, t.w)
	e.n2i = make([]*index.NodeToInstance, t.w)
	e.i2n = make([]*index.InstanceToNode, t.w)
	e.hist = make([]map[int32]*histogram.Hist, t.w)
	e.layout = make([]histogram.Layout, t.w)
	t.cl.Parallel("prep.bin", func(w int) {
		numBins := make([]int, len(e.groups[w]))
		for slot, f := range e.groups[w] {
			numBins[slot] = len(t.binner.Splits[f])
		}
		e.numBins[w] = numBins
		e.n2i[w] = index.NewNodeToInstance(t.n)
		e.i2n[w] = index.NewInstanceToNode(t.n)
		e.layout[w] = histogram.Layout{NumFeat: len(e.groups[w]), MaxBins: t.maxBins, NumClass: t.c}
		e.hist[w] = make(map[int32]*histogram.Hist)
		dataGauge.Set(w, t.stream.perWorker+int64(t.n)*4)
	})
	shuffleBytes := t.ds.NNZ() * 12 * int64(t.w-1) / int64(t.w)
	t.cl.ChargeComm("prep.repartition", cluster.OpShuffle, shuffleBytes, t.commSeconds(shuffleBytes, t.w-1))
	t.cl.Broadcast("prep.labels", int64(t.n)*4)
	return t.stream.ok()
}

// prepareStreamedVero mirrors prepareVero: the transformation's grouping
// and wire charges are computed from the mapped columns
// (partition.TransformStreamed), and each worker gets a row-block builder
// over its feature group instead of materialized shards. Group feature
// lists are ascending (GroupColumnsBalanced sorts them), so rebuilt rows
// list slots in ascending global feature order — the order the
// materialized transformation stores.
func (e *verticalEngine) prepareStreamedVero() error {
	t := e.t
	pb, err := t.usablePrebin()
	if err != nil {
		return err
	}
	if pb == nil {
		return fmt.Errorf("core: out-of-core QD4 requires ingestion-derived splits (train from a .vbin cache)")
	}
	res, err := partition.TransformStreamed(t.cl, t.ds.Blocks, t.ds.Labels, partition.Options{
		Q:         t.cfg.Splits,
		SketchEps: t.cfg.SketchEps,
		Charge:    t.cfg.TransformCharge,
		Splits:    pb.Splits,
		FeatCount: pb.FeatCount,
	})
	if err != nil {
		return err
	}
	t.binner = res.Binner
	e.groups = res.Groups
	e.transformBytes = res.Bytes
	e.buildFeatureMaps()
	t.numBinsGlobal = make([]int, t.d)
	for f := range t.binner.Splits {
		t.numBinsGlobal[f] = len(t.binner.Splits[f])
	}
	if err := t.checkMaxBins(); err != nil {
		return err
	}
	e.n2i = make([]*index.NodeToInstance, t.w)
	e.hist = make([]map[int32]*histogram.Hist, t.w)
	e.layout = make([]histogram.Layout, t.w)
	e.numBins = make([][]int, t.w)
	e.blocks = make([]*rowBlockBuilder, t.w)
	dataGauge := t.cl.Stats().Mem("data")
	for w := 0; w < t.w; w++ {
		e.n2i[w] = index.NewNodeToInstance(t.n)
		e.layout[w] = histogram.Layout{NumFeat: len(e.groups[w]), MaxBins: t.maxBins, NumClass: t.c}
		e.hist[w] = make(map[int32]*histogram.Hist)
		numBins := make([]int, len(e.groups[w]))
		emit := make([]uint32, len(e.groups[w]))
		for slot, f := range e.groups[w] {
			numBins[slot] = len(t.binner.Splits[f])
			emit[slot] = uint32(slot)
		}
		e.numBins[w] = numBins
		e.blocks[w] = newRowBlockBuilder(t.stream, w, 0, t.n, e.groups[w], emit)
		dataGauge.Set(w, t.stream.perWorker+int64(t.n)*4)
	}
	return t.stream.ok()
}

// buildHistogramsStreamedVertical is buildHistograms for the streamed
// vertical quadrants. QD4 runs block-outer/node-inner over rebuilt row
// blocks (one data pass per layer); QD3 runs the hybrid per-node plan
// with streamed linear scans and mapped binary probes. Both preserve the
// in-memory accumulation order exactly.
func (e *verticalEngine) buildHistogramsStreamedVertical(toBuild []*nodeInfo) {
	t := e.t
	mem := t.cl.Stats().Mem("histogram")
	t.cl.Parallel(phaseHist, func(w int) {
		hs := make([]*histogram.Hist, len(toBuild))
		for i := range hs {
			hs[i] = t.pool.Get(e.layout[w])
			mem.Add(w, e.layout[w].SizeBytes())
		}
		if t.cfg.Quadrant == QD4 {
			e.buildRowStoreStreamed(w, toBuild, hs)
		} else {
			for i, nd := range toBuild {
				e.buildHybridStreamed(w, nd, hs[i])
			}
		}
		for i, nd := range toBuild {
			e.hist[w][nd.id] = hs[i]
		}
	})
}

// buildRowStoreStreamed advances every build node's (ascending) instance
// cursor through the worker's rebuilt row blocks — the streamed analogue
// of buildRowStore's per-block segment scans, covering all build nodes in
// one data pass.
func (e *verticalEngine) buildRowStoreStreamed(w int, toBuild []*nodeInfo, hs []*histogram.Hist) {
	t := e.t
	insts := make([][]uint32, len(toBuild))
	pos := make([]int, len(toBuild))
	for i, nd := range toBuild {
		insts[i] = e.n2i[w].Instances(nd.id)
	}
	b := e.blocks[w]
	b.reset()
	for {
		start, rowPtr, feat, bin, ok := b.next()
		if !ok {
			return
		}
		end := start + len(rowPtr) - 1
		for i := range toBuild {
			list := insts[i]
			k := pos[i]
			from := k
			for k < len(list) && int(list[k]) < end {
				k++
			}
			pos[i] = k
			hs[i].RowScan(list[from:k], start, rowPtr, feat, bin, t.grads, t.hessv, 0)
		}
	}
}

// buildHybridStreamed is buildHybrid over mapped columns: the same
// cost test chooses between a chunked linear scan and per-instance
// binary probes, with identical accumulation order in both arms.
func (e *verticalEngine) buildHybridStreamed(w int, nd *nodeInfo, h *histogram.Hist) {
	t := e.t
	nodeOf := e.i2n[w].Assignments()
	nodeInsts := e.n2i[w].Instances(nd.id)
	for _, f := range e.groups[w] {
		j := int(e.slotOf[f])
		lo, hi := t.stream.src.ColRange(f)
		colLen := int(hi - lo)
		if colLen == 0 {
			continue
		}
		if t.stream.failed() {
			return
		}
		searchCost := len(nodeInsts) * (bits.Len(uint(colLen)) + 1)
		if colLen <= searchCost {
			t.stream.scan(w, lo, hi, 0, func(insts []uint32, binsArr []uint16) {
				h.ColumnScanNode(j, insts, binsArr, nodeOf, nd.id, t.grads, t.hessv)
			})
			continue
		}
		for _, inst := range nodeInsts {
			bin, ok := t.stream.lookup(f, inst)
			if !ok {
				continue
			}
			h.AddFlat(j, int(bin), t.grads, t.hessv, int(inst)*t.c)
		}
	}
}

// fillPlacementStreamed writes one splitting node's placement bits from
// the mapped split-feature column: QD4 probes each node instance by
// binary search, QD3 streams the column linearly with node-membership
// checks — the same decisions the materialized shards produce.
func (e *verticalEngine) fillPlacementStreamed(w int, parent int32, sp resolvedSplit, bm *bitmap.Bitmap) {
	t := e.t
	insts := e.n2i[w].Instances(parent)
	if sp.defaultLeft {
		for _, inst := range insts {
			bm.Set(int(inst))
		}
	}
	if t.cfg.Quadrant == QD4 {
		for _, inst := range insts {
			bin, ok := t.stream.lookup(sp.feature, inst)
			if !ok {
				continue // stays at the default direction
			}
			bm.SetTo(int(inst), int(bin) <= sp.bin)
		}
		return
	}
	lo, hi := t.stream.src.ColRange(sp.feature)
	i2n := e.i2n[w]
	t.stream.scan(w, lo, hi, 0, func(colInsts []uint32, binsArr []uint16) {
		for k, inst := range colInsts {
			if i2n.Node(inst) != parent {
				continue
			}
			bm.SetTo(int(inst), int(binsArr[k]) <= sp.bin)
		}
	})
}
