package sparse

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func buildTestCSR(t *testing.T) *CSR {
	t.Helper()
	b := NewCSRBuilder(5)
	rows := [][]KV{
		{{0, 1.0}, {2, 2.0}},
		{{1, 3.0}},
		{},
		{{0, 4.0}, {3, 5.0}, {4, 6.0}},
	}
	for _, r := range rows {
		if err := b.AddRow(r); err != nil {
			t.Fatalf("AddRow: %v", err)
		}
	}
	return b.Build()
}

func TestCSRBuilderBasics(t *testing.T) {
	m := buildTestCSR(t)
	if m.Rows() != 4 || m.Cols() != 5 || m.NNZ() != 6 {
		t.Fatalf("shape = %dx%d nnz=%d, want 4x5 nnz=6", m.Rows(), m.Cols(), m.NNZ())
	}
	feat, val := m.Row(0)
	if len(feat) != 2 || feat[0] != 0 || feat[1] != 2 || val[1] != 2.0 {
		t.Fatalf("Row(0) = %v %v", feat, val)
	}
	if m.RowNNZ(2) != 0 {
		t.Fatalf("RowNNZ(2) = %d, want 0", m.RowNNZ(2))
	}
}

func TestCSRBuilderSortsRows(t *testing.T) {
	b := NewCSRBuilder(10)
	if err := b.AddRow([]KV{{7, 1}, {2, 2}, {5, 3}}); err != nil {
		t.Fatal(err)
	}
	m := b.Build()
	feat, _ := m.Row(0)
	for k := 1; k < len(feat); k++ {
		if feat[k-1] >= feat[k] {
			t.Fatalf("row not sorted: %v", feat)
		}
	}
}

func TestCSRBuilderRejectsDuplicates(t *testing.T) {
	b := NewCSRBuilder(10)
	if err := b.AddRow([]KV{{3, 1}, {3, 2}}); err == nil {
		t.Fatal("AddRow accepted duplicate feature index")
	}
}

func TestCSRBuilderRejectsOutOfRange(t *testing.T) {
	b := NewCSRBuilder(3)
	if err := b.AddRow([]KV{{3, 1}}); err == nil {
		t.Fatal("AddRow accepted out-of-range feature index")
	}
}

func TestNewCSRValidation(t *testing.T) {
	if _, err := NewCSR(2, 2, []int64{0, 1}, []uint32{0}, []float32{1}); err == nil {
		t.Error("accepted short rowPtr")
	}
	if _, err := NewCSR(1, 2, []int64{0, 2}, []uint32{0, 5}, []float32{1, 2}); err == nil {
		t.Error("accepted out-of-range feature")
	}
	if _, err := NewCSR(2, 2, []int64{0, 2, 1}, []uint32{0}, []float32{1}); err == nil {
		t.Error("accepted non-monotone rowPtr")
	}
	if _, err := NewCSR(1, 1, []int64{0, 1}, []uint32{0}, []float32{1}); err != nil {
		t.Errorf("rejected valid matrix: %v", err)
	}
}

func TestTransposeRoundTrip(t *testing.T) {
	m := buildTestCSR(t)
	csc := m.ToCSC()
	if csc.Rows() != m.Rows() || csc.Cols() != m.Cols() || csc.NNZ() != m.NNZ() {
		t.Fatalf("CSC shape mismatch")
	}
	inst, val := csc.Col(0)
	if len(inst) != 2 || inst[0] != 0 || inst[1] != 3 || val[1] != 4.0 {
		t.Fatalf("Col(0) = %v %v", inst, val)
	}
	back := csc.ToCSR()
	assertCSREqual(t, m, back)
}

func assertCSREqual(t *testing.T, a, b *CSR) {
	t.Helper()
	if a.Rows() != b.Rows() || a.Cols() != b.Cols() || a.NNZ() != b.NNZ() {
		t.Fatalf("shape mismatch: %dx%d/%d vs %dx%d/%d",
			a.Rows(), a.Cols(), a.NNZ(), b.Rows(), b.Cols(), b.NNZ())
	}
	for i := 0; i < a.Rows(); i++ {
		af, av := a.Row(i)
		bf, bv := b.Row(i)
		if len(af) != len(bf) {
			t.Fatalf("row %d: nnz %d vs %d", i, len(af), len(bf))
		}
		for k := range af {
			if af[k] != bf[k] || av[k] != bv[k] {
				t.Fatalf("row %d entry %d: (%d,%v) vs (%d,%v)", i, k, af[k], av[k], bf[k], bv[k])
			}
		}
	}
}

func randomCSR(rng *rand.Rand, rows, cols int, density float64) *CSR {
	b := NewCSRBuilder(cols)
	for i := 0; i < rows; i++ {
		var kvs []KV
		for j := 0; j < cols; j++ {
			if rng.Float64() < density {
				kvs = append(kvs, KV{uint32(j), float32(rng.NormFloat64())})
			}
		}
		if err := b.AddRow(kvs); err != nil {
			panic(err)
		}
	}
	return b.Build()
}

func TestTransposeRoundTripRandom(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for trial := 0; trial < 20; trial++ {
		m := randomCSR(rng, 1+rng.Intn(50), 1+rng.Intn(30), rng.Float64())
		assertCSREqual(t, m, m.ToCSC().ToCSR())
	}
}

func TestSliceRows(t *testing.T) {
	m := buildTestCSR(t)
	s := m.SliceRows(1, 4)
	if s.Rows() != 3 || s.NNZ() != 4 {
		t.Fatalf("slice shape %dx nnz=%d, want 3 rows nnz=4", s.Rows(), s.NNZ())
	}
	feat, _ := s.Row(0)
	if len(feat) != 1 || feat[0] != 1 {
		t.Fatalf("slice Row(0) = %v", feat)
	}
	empty := m.SliceRows(2, 2)
	if empty.Rows() != 0 || empty.NNZ() != 0 {
		t.Fatalf("empty slice has %d rows, %d nnz", empty.Rows(), empty.NNZ())
	}
}

func TestSliceRowsPanicsOutOfRange(t *testing.T) {
	m := buildTestCSR(t)
	defer func() {
		if recover() == nil {
			t.Fatal("SliceRows out of range did not panic")
		}
	}()
	m.SliceRows(0, 99)
}

func TestSelectColumns(t *testing.T) {
	m := buildTestCSR(t)
	s := m.SelectColumns([]int{3, 0})
	if s.Rows() != 4 || s.Cols() != 2 {
		t.Fatalf("shape %dx%d, want 4x2", s.Rows(), s.Cols())
	}
	// Row 3 originally has feats {0:4, 3:5, 4:6}; selected cols 3->0, 0->1.
	feat, val := s.Row(3)
	if len(feat) != 2 {
		t.Fatalf("Row(3) nnz = %d, want 2", len(feat))
	}
	if feat[0] != 0 || val[0] != 5.0 {
		t.Fatalf("Row(3)[0] = (%d,%v), want (0,5)", feat[0], val[0])
	}
	if feat[1] != 1 || val[1] != 4.0 {
		t.Fatalf("Row(3)[1] = (%d,%v), want (1,4)", feat[1], val[1])
	}
}

func TestDensity(t *testing.T) {
	m := buildTestCSR(t)
	want := 6.0 / 20.0
	if got := m.Density(); got != want {
		t.Fatalf("Density() = %v, want %v", got, want)
	}
	if (&CSR{}).Density() != 0 {
		t.Fatal("empty density not 0")
	}
}

func TestVerticalHorizontalDecompositionPreservesNNZ(t *testing.T) {
	// Property: splitting a matrix horizontally or vertically across W
	// parts preserves the total number of entries.
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		m := randomCSR(rng, 1+rng.Intn(40), 2+rng.Intn(20), 0.3)
		const w = 3
		total := 0
		per := (m.Rows() + w - 1) / w
		for p := 0; p < w; p++ {
			lo := p * per
			hi := lo + per
			if lo > m.Rows() {
				lo = m.Rows()
			}
			if hi > m.Rows() {
				hi = m.Rows()
			}
			total += m.SliceRows(lo, hi).NNZ()
		}
		if total != m.NNZ() {
			return false
		}
		total = 0
		for p := 0; p < w; p++ {
			var cols []int
			for c := p; c < m.Cols(); c += w {
				cols = append(cols, c)
			}
			total += m.SelectColumns(cols).NNZ()
		}
		return total == m.NNZ()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}
