// Package tcptransport is the socket backend behind cluster.Transport: it
// carries collective payloads between the W processes of a distributed
// deployment over a full mesh of TCP connections.
//
// Reductions use direct exchange: every rank sends its contribution of
// segment s to the segment's owner (rank s), and the owner accumulates
// the W contributions in rank order starting from zero — exactly the
// simulation's reduction order, which is what makes models trained over
// sockets bit-identical to simulated runs. The wire volume of each
// collective equals the alpha-beta model's charged volume byte for byte,
// so measured and accounted communication are directly comparable.
//
// Every frame carries the sender's rank, a CRC-32C of the phase label and
// a per-transport operation sequence number. Because training is SPMD —
// each rank replays the identical collective sequence — these let a
// receiver detect a desynchronized peer immediately instead of silently
// reducing mismatched data.
package tcptransport

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"io"
)

// Wire format of one frame:
//
//	offset  size  field
//	0       4     magic "VFRM"
//	4       1     version (1)
//	5       1     op
//	6       2     sender rank (u16 LE)
//	8       4     CRC-32C of the phase label (u32 LE)
//	12      4     operation sequence number (u32 LE)
//	16      4     payload length (u32 LE)
//	20      n     payload
//	20+n    4     CRC-32C of header+payload (u32 LE)
const (
	frameMagic  = "VFRM"
	wireVersion = 1
	headerSize  = 20
	trailerSize = 4
)

// op identifies a frame's role within a collective.
type op uint8

const (
	opHello   op = 1 // connection handshake: W, rank, peer-list hash
	opContrib op = 2 // reduction contribution sent to a segment owner
	opResult  op = 3 // reduced segment distributed back (all-reduce)
	opRecord  op = 4 // fixed-size all-gather record
	opShadow  op = 5 // synthetic traffic realizing a charge-only collective
	opBcast   op = 6 // data-carrying broadcast payload from the root rank
)

func (o op) String() string {
	switch o {
	case opHello:
		return "hello"
	case opContrib:
		return "contrib"
	case opResult:
		return "result"
	case opRecord:
		return "record"
	case opShadow:
		return "shadow"
	case opBcast:
		return "bcast"
	default:
		return fmt.Sprintf("op(%d)", uint8(o))
	}
}

var crcTable = crc32.MakeTable(crc32.Castagnoli)

// phaseCRC hashes a phase label into the fixed-width form frames carry.
func phaseCRC(phase string) uint32 {
	return crc32.Checksum([]byte(phase), crcTable)
}

// frame is one decoded wire frame.
type frame struct {
	Op       op
	Rank     uint16
	PhaseCRC uint32
	Seq      uint32
	Payload  []byte
}

// encodedSize returns the full wire size of the frame.
func (f *frame) encodedSize() int {
	return headerSize + len(f.Payload) + trailerSize
}

// appendFrame appends the frame's wire encoding to dst.
func appendFrame(dst []byte, f *frame) []byte {
	start := len(dst)
	dst = append(dst, frameMagic...)
	dst = append(dst, wireVersion, byte(f.Op))
	dst = binary.LittleEndian.AppendUint16(dst, f.Rank)
	dst = binary.LittleEndian.AppendUint32(dst, f.PhaseCRC)
	dst = binary.LittleEndian.AppendUint32(dst, f.Seq)
	dst = binary.LittleEndian.AppendUint32(dst, uint32(len(f.Payload)))
	dst = append(dst, f.Payload...)
	return binary.LittleEndian.AppendUint32(dst, crc32.Checksum(dst[start:], crcTable))
}

// decodeFrame parses one frame from the front of b, returning the frame
// and the number of bytes consumed. The payload is aliased, not copied.
// maxPayload bounds the payload length field before any allocation or
// slicing, so a corrupt length cannot cause oversized reads.
func decodeFrame(b []byte, maxPayload int) (frame, int, error) {
	if len(b) < headerSize {
		return frame{}, 0, fmt.Errorf("tcptransport: frame truncated: %d bytes, header needs %d", len(b), headerSize)
	}
	if string(b[:4]) != frameMagic {
		return frame{}, 0, fmt.Errorf("tcptransport: bad frame magic %q", b[:4])
	}
	if b[4] != wireVersion {
		return frame{}, 0, fmt.Errorf("tcptransport: unsupported wire version %d", b[4])
	}
	n := binary.LittleEndian.Uint32(b[16:20])
	if int64(n) > int64(maxPayload) {
		return frame{}, 0, fmt.Errorf("tcptransport: payload length %d exceeds limit %d", n, maxPayload)
	}
	total := headerSize + int(n) + trailerSize
	if len(b) < total {
		return frame{}, 0, fmt.Errorf("tcptransport: frame truncated: %d bytes, frame needs %d", len(b), total)
	}
	body := b[:headerSize+int(n)]
	want := binary.LittleEndian.Uint32(b[headerSize+int(n):])
	if got := crc32.Checksum(body, crcTable); got != want {
		return frame{}, 0, fmt.Errorf("tcptransport: frame checksum mismatch: computed %#x, trailer %#x", got, want)
	}
	return frame{
		Op:       op(b[5]),
		Rank:     binary.LittleEndian.Uint16(b[6:8]),
		PhaseCRC: binary.LittleEndian.Uint32(b[8:12]),
		Seq:      binary.LittleEndian.Uint32(b[12:16]),
		Payload:  b[headerSize : headerSize+int(n)],
	}, total, nil
}

// readFrame reads exactly one frame from r. Unlike decodeFrame it owns
// its buffers, so the returned payload remains valid after further reads.
func readFrame(r io.Reader, maxPayload int) (frame, error) {
	hdr := make([]byte, headerSize)
	if _, err := io.ReadFull(r, hdr); err != nil {
		return frame{}, err
	}
	if string(hdr[:4]) != frameMagic {
		return frame{}, fmt.Errorf("tcptransport: bad frame magic %q", hdr[:4])
	}
	if hdr[4] != wireVersion {
		return frame{}, fmt.Errorf("tcptransport: unsupported wire version %d", hdr[4])
	}
	n := binary.LittleEndian.Uint32(hdr[16:20])
	if int64(n) > int64(maxPayload) {
		return frame{}, fmt.Errorf("tcptransport: payload length %d exceeds limit %d", n, maxPayload)
	}
	rest := make([]byte, int(n)+trailerSize)
	if _, err := io.ReadFull(r, rest); err != nil {
		return frame{}, fmt.Errorf("tcptransport: reading %d-byte payload: %w", n, err)
	}
	crc := crc32.Checksum(hdr, crcTable)
	crc = crc32.Update(crc, crcTable, rest[:n])
	if want := binary.LittleEndian.Uint32(rest[n:]); crc != want {
		return frame{}, fmt.Errorf("tcptransport: frame checksum mismatch: computed %#x, trailer %#x", crc, want)
	}
	return frame{
		Op:       op(hdr[5]),
		Rank:     binary.LittleEndian.Uint16(hdr[6:8]),
		PhaseCRC: binary.LittleEndian.Uint32(hdr[8:12]),
		Seq:      binary.LittleEndian.Uint32(hdr[12:16]),
		Payload:  rest[:n:n],
	}, nil
}
