package bitmap

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestNewEmpty(t *testing.T) {
	b := New(0)
	if b.Len() != 0 {
		t.Fatalf("Len() = %d, want 0", b.Len())
	}
	if b.SizeBytes() != 0 {
		t.Fatalf("SizeBytes() = %d, want 0", b.SizeBytes())
	}
}

func TestNewNegativePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("New(-1) did not panic")
		}
	}()
	New(-1)
}

func TestSetGetClear(t *testing.T) {
	b := New(130)
	for _, i := range []int{0, 1, 63, 64, 65, 127, 128, 129} {
		if b.Get(i) {
			t.Fatalf("bit %d set in fresh bitmap", i)
		}
		b.Set(i)
		if !b.Get(i) {
			t.Fatalf("bit %d not set after Set", i)
		}
		b.Clear(i)
		if b.Get(i) {
			t.Fatalf("bit %d still set after Clear", i)
		}
	}
}

func TestSetTo(t *testing.T) {
	b := New(10)
	b.SetTo(3, true)
	if !b.Get(3) {
		t.Fatal("SetTo(3,true) did not set")
	}
	b.SetTo(3, false)
	if b.Get(3) {
		t.Fatal("SetTo(3,false) did not clear")
	}
}

func TestCount(t *testing.T) {
	b := New(200)
	want := 0
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < 200; i++ {
		if rng.Intn(2) == 1 {
			b.Set(i)
			want++
		}
	}
	if got := b.Count(); got != want {
		t.Fatalf("Count() = %d, want %d", got, want)
	}
}

func TestReset(t *testing.T) {
	b := New(100)
	for i := 0; i < 100; i += 3 {
		b.Set(i)
	}
	b.Reset()
	if b.Count() != 0 {
		t.Fatalf("Count() after Reset = %d, want 0", b.Count())
	}
}

func TestSizeBytes(t *testing.T) {
	cases := []struct{ n, want int }{
		{0, 0}, {1, 1}, {7, 1}, {8, 1}, {9, 2}, {64, 8}, {65, 9},
	}
	for _, c := range cases {
		if got := New(c.n).SizeBytes(); got != c.want {
			t.Errorf("SizeBytes(n=%d) = %d, want %d", c.n, got, c.want)
		}
	}
}

func TestMarshalRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for _, n := range []int{1, 8, 9, 63, 64, 100, 1000} {
		b := New(n)
		for i := 0; i < n; i++ {
			b.SetTo(i, rng.Intn(2) == 1)
		}
		data, err := b.MarshalBinary()
		if err != nil {
			t.Fatalf("MarshalBinary: %v", err)
		}
		if len(data) != b.SizeBytes() {
			t.Fatalf("payload %d bytes, want %d", len(data), b.SizeBytes())
		}
		c := New(n)
		if err := c.UnmarshalBinary(data); err != nil {
			t.Fatalf("UnmarshalBinary: %v", err)
		}
		for i := 0; i < n; i++ {
			if b.Get(i) != c.Get(i) {
				t.Fatalf("n=%d: bit %d mismatch after round trip", n, i)
			}
		}
	}
}

func TestUnmarshalWrongLength(t *testing.T) {
	b := New(16)
	if err := b.UnmarshalBinary(make([]byte, 3)); err == nil {
		t.Fatal("UnmarshalBinary accepted wrong-length payload")
	}
}

func TestClone(t *testing.T) {
	b := New(70)
	b.Set(69)
	c := b.Clone()
	c.Clear(69)
	if !b.Get(69) {
		t.Fatal("Clone shares storage with original")
	}
}

func TestPopcountQuick(t *testing.T) {
	f := func(x uint64) bool {
		want := 0
		for i := 0; i < 64; i++ {
			if x&(1<<uint(i)) != 0 {
				want++
			}
		}
		return popcount(x) == want
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestRoundTripQuick(t *testing.T) {
	f := func(bits []bool) bool {
		b := New(len(bits))
		for i, v := range bits {
			b.SetTo(i, v)
		}
		data, _ := b.MarshalBinary()
		c := New(len(bits))
		if err := c.UnmarshalBinary(data); err != nil {
			return false
		}
		for i, v := range bits {
			if c.Get(i) != v {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}
