package datasets

import "hash/crc32"

// ShardKind says which axis of the global image a shard covers.
type ShardKind string

// Shard axes: horizontal quadrants (QD1/QD2) shard by rows, vertical
// quadrants (QD3/QD4) by feature columns.
const (
	ShardRows ShardKind = "rows"
	ShardCols ShardKind = "cols"
)

// Shard describes one rank's slice of a global dataset image. The shard
// bounds themselves are never stored: they derive deterministically from
// (Rank, Workers, Kind) — partition.HorizontalRanges for rows,
// partition.GroupColumnsBalanced for columns — so every rank of a
// deployment, and a resumed run, reconstructs the identical partition.
//
// The dataset's X keeps the global n×d shape with entries materialized
// only inside the shard, which lets the engines' existing row/column
// slicing work unchanged; the fields here carry the global quantities a
// rank can no longer derive from its local entries (communication charges
// must be computed from replicated state or ranks desynchronize).
type Shard struct {
	// Kind is the sharding axis.
	Kind ShardKind
	// Rank and Workers identify this shard within the deployment.
	Rank, Workers int
	// Fingerprint identifies the backing global image (the .vbin cache's
	// fingerprint string) — identical at every rank even though each
	// rank's materialized entries differ, so it backs both the hello
	// handshake's dataset exchange and checkpoint validation.
	Fingerprint string
	// GlobalNNZ is the full image's stored-entry count.
	GlobalNNZ int64
	// GroupNNZ, for column shards, is the W×W matrix of entry counts:
	// GroupNNZ[src][dst] entries fall in horizontal row range src and
	// belong to feature group dst. It is derived from the cache's column
	// index alone (identical at every rank) and prices the QD4
	// transformation without touching remote data.
	GroupNNZ [][]int64
}

// FingerprintCRC hashes the shard's image fingerprint into the 32-bit
// form the transport's hello handshake exchanges.
func (s *Shard) FingerprintCRC() uint32 {
	return crc32.Checksum([]byte(s.Fingerprint), crc32.MakeTable(crc32.Castagnoli))
}
