// Package histogram implements gradient histograms and histogram-based
// split finding (Section 2.1.2 of the paper).
//
// A gradient histogram summarizes, for one feature on one tree node, the
// sums of first- and second-order gradients of the instances whose feature
// value falls into each candidate-split bin. For C-class problems each bin
// holds a C-dimensional gradient vector, which makes the histogram size
// Sizehist = 2 * D * q * C * 8 bytes per node (Section 3.1.1) — the
// quantity that drives the paper's memory and communication analysis.
//
// The package also implements the histogram subtraction technique: the
// instances of two sibling nodes partition those of the parent, so
// hist(parent) - hist(builtChild) = hist(siblingChild), letting the trainer
// skip at least half the instance scans per layer.
package histogram

import "fmt"

// Layout describes the shape of a node's histograms over a worker's
// feature slots. MaxBins is the uniform per-slot bin budget (features with
// fewer candidate splits simply leave high bins at zero).
type Layout struct {
	NumFeat  int // number of feature slots on this worker
	MaxBins  int // bins per feature (q in the paper)
	NumClass int // gradient dimension C
}

// FloatsPerSide returns the number of float64 entries in one gradient
// array (first-order or second-order).
func (l Layout) FloatsPerSide() int { return l.NumFeat * l.MaxBins * l.NumClass }

// SizeBytes returns the in-memory histogram size for one node under this
// layout: 2 sides x NumFeat x MaxBins x NumClass x 8 bytes, the paper's
// Sizehist with D replaced by the worker-local feature count.
func (l Layout) SizeBytes() int64 { return int64(2*l.FloatsPerSide()) * 8 }

// Hist holds the first- and second-order gradient histograms of one tree
// node for all feature slots of a worker.
type Hist struct {
	Layout
	Grad []float64 // [feat*MaxBins*C + bin*C + class]
	Hess []float64
}

// New allocates a zeroed histogram with the given layout.
func New(l Layout) *Hist {
	n := l.FloatsPerSide()
	return &Hist{Layout: l, Grad: make([]float64, n), Hess: make([]float64, n)}
}

// offset returns the flat index of (feat, bin, class 0).
func (h *Hist) offset(feat, bin int) int {
	return (feat*h.MaxBins + bin) * h.NumClass
}

// Add accumulates a scalar gradient pair into (feat, bin, class).
func (h *Hist) Add(feat, bin, class int, g, hs float64) {
	i := h.offset(feat, bin) + class
	h.Grad[i] += g
	h.Hess[i] += hs
}

// AddVec accumulates a C-dimensional gradient pair into (feat, bin).
// len(g) and len(hs) must equal NumClass.
func (h *Hist) AddVec(feat, bin int, g, hs []float64) {
	i := h.offset(feat, bin)
	for k := 0; k < h.NumClass; k++ {
		h.Grad[i+k] += g[k]
		h.Hess[i+k] += hs[k]
	}
}

// At returns the accumulated (grad, hess) at (feat, bin, class).
func (h *Hist) At(feat, bin, class int) (float64, float64) {
	i := h.offset(feat, bin) + class
	return h.Grad[i], h.Hess[i]
}

// Merge element-wise adds other into h. Layouts must match.
func (h *Hist) Merge(other *Hist) {
	h.checkLayout(other)
	for i := range h.Grad {
		h.Grad[i] += other.Grad[i]
		h.Hess[i] += other.Hess[i]
	}
}

// Sub element-wise subtracts other from h: the histogram subtraction
// technique (h := parent, other := built child, result := sibling).
func (h *Hist) Sub(other *Hist) {
	h.checkLayout(other)
	for i := range h.Grad {
		h.Grad[i] -= other.Grad[i]
		h.Hess[i] -= other.Hess[i]
	}
}

// Reset zeroes the histogram in place.
func (h *Hist) Reset() {
	for i := range h.Grad {
		h.Grad[i] = 0
		h.Hess[i] = 0
	}
}

// Clone returns a deep copy.
func (h *Hist) Clone() *Hist {
	c := New(h.Layout)
	copy(c.Grad, h.Grad)
	copy(c.Hess, h.Hess)
	return c
}

func (h *Hist) checkLayout(other *Hist) {
	if h.Layout != other.Layout {
		panic(fmt.Sprintf("histogram: layout mismatch %+v vs %+v", h.Layout, other.Layout))
	}
}

// FeatTotals sums the per-class gradients of one feature slot across all
// bins, writing into g and hs (length NumClass). Together with the node
// totals this yields the gradient mass of instances with a missing value
// on the feature.
func (h *Hist) FeatTotals(feat int, g, hs []float64) {
	for k := 0; k < h.NumClass; k++ {
		g[k] = 0
		hs[k] = 0
	}
	base := h.offset(feat, 0)
	for b := 0; b < h.MaxBins; b++ {
		for k := 0; k < h.NumClass; k++ {
			g[k] += h.Grad[base+b*h.NumClass+k]
			hs[k] += h.Hess[base+b*h.NumClass+k]
		}
	}
}
