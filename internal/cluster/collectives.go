package cluster

import "fmt"

// Collective primitives. Each reduces/moves data that in a real deployment
// crosses the network; the byte volume and simulated wall time are always
// recorded under the caller's phase label against the alpha-beta model.
// On the simulated backend (the default) the data movement happens in
// memory; with a real transport attached (WithTransport) the same
// collectives move their payloads over the wire — in the same rank-ordered
// reduction order, so trained models are bit-identical — and the phase
// additionally records measured bytes and wall-clock.
//
// Cost model (W workers, n bytes of payload per worker, alpha latency,
// beta seconds/byte — Thakur et al., cited as [36] by the paper):
//
//	all-reduce (ring):      2(W-1) steps, 2(W-1)*n total bytes
//	reduce-scatter (ring):  (W-1) steps, (W-1)*n total bytes
//	gather (to one root):   root receives (W-1) * n bytes serially
//	broadcast (binomial):   ceil(log2 W) steps, (W-1)*n total bytes
//	all-gather (small):     every worker receives (W-1) * n bytes
//	all-to-all (shuffle):   bounded by the busiest worker's send+recv bytes
//
// The charged totals are exact: they equal the bytes a direct-exchange
// implementation of the collective puts on the wire, which is what the
// TCP backend's measured-vs-accounted equality check relies on.
//
// Locals convention: every data collective takes a locals slice of length
// W. On the simulation all entries are non-nil (every worker is hosted
// in-process); on a distributed cluster exactly the hosted workers'
// entries are non-nil — ParallelLocal produces this shape naturally.

const float64Size = 8

// EvenBounds splits n elements into parts contiguous segments: segment s
// covers [bounds[s], bounds[s+1]). It is the canonical segment layout
// shared by the collectives and any transport implementation.
func EvenBounds(n, parts int) []int {
	bounds := make([]int, parts+1)
	for s := 0; s <= parts; s++ {
		bounds[s] = s * n / parts
	}
	return bounds
}

// AllReduceSum element-wise sums the per-worker arrays and returns the
// global array. Every worker ends up holding the result (ring all-reduce).
// The minimal data transferred per worker is the size of its local
// histogram — the paper's lower bound in Section 3.1.3.
func (c *Cluster) AllReduceSum(phase string, locals [][]float64) []float64 {
	sum := make([]float64, c.localLen(locals))
	c.AllReduceSumInto(phase, locals, sum)
	return sum
}

// AllReduceSumInto is AllReduceSum reducing into a caller-owned dst (same
// length as the locals, overwritten; must not alias any local) — for
// callers that recycle result buffers instead of taking a fresh
// allocation per reduction.
func (c *Cluster) AllReduceSumInto(phase string, locals [][]float64, dst []float64) {
	c.sumLocalInto(locals, dst)
	c.ChargeAllReduce(phase, int64(len(dst))*float64Size)
	if c.tr != nil {
		c.transportOp(phase, func() error { return c.tr.AllReduce(phase, dst) })
	}
}

// ChargeAllReduce records the cost of ring all-reducing a payload of n
// bytes per worker without moving data (for callers that reduce in place).
func (c *Cluster) ChargeAllReduce(phase string, n int64) {
	total := 2 * int64(c.w-1) * n
	c.stats.addComm(phase, OpAllReduce, total,
		c.simTime(2*(c.w-1), float64(n)/float64(c.w)*2*float64(c.w-1)))
}

// AllReduceMerged all-reduces buffers that already hold the hosted
// workers' merged contribution in place: charge-only on the simulation
// (where the buffers are already the global sum), a real all-reduce on a
// distributed cluster. It serves reductions whose simulation merges
// incrementally into shared accumulators instead of materializing
// per-worker arrays (QD1's shared histogram accumulators). The buffers
// are charged as one payload — one collective of their combined size.
func (c *Cluster) AllReduceMerged(phase string, bufs ...[]float64) {
	c.ChargeAllReduce(phase, mergedBytes(bufs))
	if c.tr != nil {
		for _, buf := range bufs {
			buf := buf
			c.transportOp(phase, func() error { return c.tr.AllReduce(phase, buf) })
		}
	}
}

// ReduceScatterSum element-wise sums the per-worker arrays; worker i ends
// up owning the i-th contiguous shard of the result. The full summed
// array and the shard ranges are returned (LightGBM's aggregation,
// Section 4.1). Only the reduce-scatter bytes are charged; exchanging the
// subsequent per-shard best splits is a separate all-gather.
func (c *Cluster) ReduceScatterSum(phase string, locals [][]float64) (sum []float64, shard [][2]int) {
	sum = make([]float64, c.localLen(locals))
	per := (len(sum) + c.w - 1) / c.w
	bounds := make([]int, c.w+1)
	shard = make([][2]int, c.w)
	for w := 0; w < c.w; w++ {
		lo := min(w*per, len(sum))
		hi := min(lo+per, len(sum))
		shard[w] = [2]int{lo, hi}
		bounds[w], bounds[w+1] = lo, hi
	}
	c.ReduceScatterSumInto(phase, locals, sum, bounds)
	return sum, shard
}

// ReduceScatterSumInto is ReduceScatterSum reducing into a caller-owned
// dst (overwritten). bounds assigns dst's contiguous segments to their
// owning workers (segment s, [bounds[s], bounds[s+1]), belongs to worker
// s); nil means an even element split. On the simulation the whole dst is
// the global sum; on a distributed cluster only this rank's segment is —
// callers must read each segment at its owner, which is where the
// aggregation methods place the follow-up work anyway.
func (c *Cluster) ReduceScatterSumInto(phase string, locals [][]float64, dst []float64, bounds []int) {
	c.sumLocalInto(locals, dst)
	c.ChargeReduceScatter(phase, int64(len(dst))*float64Size)
	if c.tr != nil {
		if bounds == nil {
			bounds = EvenBounds(len(dst), c.w)
		}
		c.transportOp(phase, func() error { return c.tr.ReduceScatter(phase, dst, bounds) })
	}
}

// ChargeReduceScatter records the cost of ring reduce-scattering n bytes
// per worker without moving data.
func (c *Cluster) ChargeReduceScatter(phase string, n int64) {
	total := int64(c.w-1) * n
	c.stats.addComm(phase, OpReduceScatter, total,
		c.simTime(c.w-1, float64(n)/float64(c.w)*float64(c.w-1)))
}

// ReduceScatterMerged is AllReduceMerged's reduce-scatter counterpart:
// the buffers hold the hosted workers' merged contribution; after the
// call each bounds segment is globally reduced at its owner (everywhere
// on the simulation). nil bounds means an even element split, applied to
// each buffer separately; all buffers share one charge.
func (c *Cluster) ReduceScatterMerged(phase string, bounds []int, bufs ...[]float64) {
	c.ChargeReduceScatter(phase, mergedBytes(bufs))
	if c.tr != nil {
		for _, buf := range bufs {
			b := bounds
			if b == nil {
				b = EvenBounds(len(buf), c.w)
			}
			buf := buf
			c.transportOp(phase, func() error { return c.tr.ReduceScatter(phase, buf, b) })
		}
	}
}

// GatherSum element-wise sums the per-worker arrays at a single root —
// worker 0 (DimBoost's parameter-server aggregation collapses to this
// when the PS has one shard; use ShardedGatherSum for multiple shards).
// On a distributed cluster the result is defined at the root only.
func (c *Cluster) GatherSum(phase string, locals [][]float64) []float64 {
	sum := make([]float64, c.localLen(locals))
	c.sumLocalInto(locals, sum)
	n := int64(len(sum)) * float64Size
	total := int64(c.w-1) * n
	c.stats.addComm(phase, OpGather, total, c.simTime(c.w-1, float64(total)))
	if c.tr != nil {
		c.transportOp(phase, func() error { return c.tr.Gather(phase, sum, 0) })
	}
	return sum
}

// ShardedGatherSum models a parameter-server with `shards` servers
// co-located on the workers: each worker pushes the shard-sized fraction
// of its local array to each shard owner, so the per-link volume divides
// by the shard count and shards receive in parallel.
func (c *Cluster) ShardedGatherSum(phase string, locals [][]float64, shards int) []float64 {
	sum := make([]float64, c.localLen(locals))
	c.ShardedGatherSumInto(phase, locals, sum, shards, nil)
	return sum
}

// ShardedGatherSumInto is ShardedGatherSum reducing into a caller-owned
// dst (overwritten). bounds assigns dst's segments to the shard servers
// (segment s belongs to worker s, s < shards); nil means an even element
// split over the shards. On a distributed cluster only each server's
// segment is globally reduced, at that server.
func (c *Cluster) ShardedGatherSumInto(phase string, locals [][]float64, dst []float64, shards int, bounds []int) {
	if shards <= 0 || shards > c.w {
		panic(fmt.Sprintf("cluster: shard count %d for %d workers", shards, c.w))
	}
	c.sumLocalInto(locals, dst)
	c.ChargeShardedGather(phase, int64(len(dst))*float64Size, shards)
	if c.tr != nil {
		if bounds == nil {
			bounds = EvenBounds(len(dst), shards)
		}
		c.transportOp(phase, func() error { return c.tr.ReduceScatter(phase, dst, bounds) })
	}
}

// ChargeShardedGather records the cost of a sharded gather of n bytes per
// worker without moving data.
func (c *Cluster) ChargeShardedGather(phase string, n int64, shards int) {
	total := int64(c.w-1) * n // every byte still leaves its worker once
	perShard := float64(total) / float64(shards)
	c.stats.addComm(phase, OpGather, total, c.simTime(c.w-1, perShard))
}

// ShardedGatherMerged is the merged-contribution form of
// ShardedGatherSumInto (see AllReduceMerged).
func (c *Cluster) ShardedGatherMerged(phase string, shards int, bounds []int, bufs ...[]float64) {
	if shards <= 0 || shards > c.w {
		panic(fmt.Sprintf("cluster: shard count %d for %d workers", shards, c.w))
	}
	c.ChargeShardedGather(phase, mergedBytes(bufs), shards)
	if c.tr != nil {
		for _, buf := range bufs {
			b := bounds
			if b == nil {
				b = EvenBounds(len(buf), shards)
			}
			buf := buf
			c.transportOp(phase, func() error { return c.tr.ReduceScatter(phase, buf, b) })
		}
	}
}

// mergedBytes is the combined byte size of a merged collective's buffers.
func mergedBytes(bufs [][]float64) int64 {
	var n int64
	for _, b := range bufs {
		n += int64(len(b)) * float64Size
	}
	return n
}

// AllGatherFixed exchanges one fixed-size opaque record per worker:
// recs[w] is worker w's serialized contribution (the per-worker best
// splits of Section 2.2.1). All entries must be non-nil with one shared
// length. On the simulation the records are already in place and only the
// all-gather cost is charged; on a distributed cluster every non-hosted
// entry is overwritten with that rank's record.
func (c *Cluster) AllGatherFixed(phase string, recs [][]byte) {
	if len(recs) != c.w {
		panic(fmt.Sprintf("cluster: %d records for %d workers", len(recs), c.w))
	}
	b := len(recs[0])
	for w, r := range recs {
		if r == nil || len(r) != b {
			panic(fmt.Sprintf("cluster: record %d has %d bytes, record 0 has %d", w, len(r), b))
		}
	}
	c.chargeAllGather(phase, int64(b))
	if c.tr != nil {
		c.transportOp(phase, func() error { return c.tr.AllGather(phase, recs) })
	}
}

// chargeAllGather records the all-gather cost without moving data.
func (c *Cluster) chargeAllGather(phase string, b int64) {
	total := int64(c.w) * int64(c.w-1) * b
	c.stats.addComm(phase, OpAllGather, total, c.simTime(ceilLog2(c.w), float64(c.w-1)*float64(b)))
}

// Broadcast charges a binomial-tree broadcast of b payload bytes from one
// root to the other W-1 workers (e.g. the instance-placement bitmap of
// vertical partitioning, Section 3.1.3). The payload itself is replicated
// state every rank derives locally, so on a distributed cluster the
// charge is realized as shadow traffic of exactly the charged volume
// (rank 0 to every peer), keeping measured equal to accounted.
func (c *Cluster) Broadcast(phase string, b int64) {
	steps := ceilLog2(c.w)
	total := int64(c.w-1) * b
	c.stats.addComm(phase, OpBroadcast, total, c.simTime(steps, float64(steps)*float64(b)))
	c.shadow(phase, func(send [][]int64) {
		for j := 1; j < c.w; j++ {
			send[0][j] = b
		}
	})
}

// BroadcastBytes is the data-carrying form of Broadcast: buf moves from
// the root worker to every other worker, charged exactly like Broadcast.
// On the simulation the payload is already in place (one process hosts
// every worker) and only the cost is charged; on a distributed cluster
// the root's bytes overwrite every peer's buf. len(buf) must be identical
// at every rank. It carries decisions only one rank can make — the
// early-stopping verdict, instance-placement bitmaps of sharded vertical
// training — so every rank proceeds from identical bytes.
func (c *Cluster) BroadcastBytes(phase string, buf []byte, root int) {
	steps := ceilLog2(c.w)
	b := int64(len(buf))
	total := int64(c.w-1) * b
	c.stats.addComm(phase, OpBroadcast, total, c.simTime(steps, float64(steps)*float64(b)))
	if c.tr != nil && c.w > 1 {
		c.transportOp(phase, func() error { return c.tr.Broadcast(phase, buf, root) })
	}
}

// AllGatherSmall charges an all-gather where every worker contributes b
// bytes and receives everyone else's contribution (exchanging local best
// splits in vertical partitioning, Section 2.2.1). Shadow traffic on a
// distributed cluster; AllGatherFixed is the data-carrying form.
func (c *Cluster) AllGatherSmall(phase string, b int64) {
	c.chargeAllGather(phase, b)
	c.shadow(phase, func(send [][]int64) {
		for i := 0; i < c.w; i++ {
			for j := 0; j < c.w; j++ {
				if i != j {
					send[i][j] = b
				}
			}
		}
	})
}

// PointToPoint charges a single b-byte message between two workers (or
// worker and master). Shadow traffic (rank 0 to rank 1) on a distributed
// cluster.
func (c *Cluster) PointToPoint(phase string, b int64) {
	c.stats.addComm(phase, OpPointToPoint, b, c.simTime(1, float64(b)))
	c.shadow(phase, func(send [][]int64) {
		send[0][1] = b
	})
}

// Shuffle charges an all-to-all repartition where sendBytes[i][j] bytes
// move from worker i to worker j (step 4 of the horizontal-to-vertical
// transformation). Simulated time is bounded by the busiest worker's
// send plus receive volume. On a distributed cluster the exact matrix is
// realized as shadow traffic (the repartitioned data is replicated state
// every rank derives locally).
func (c *Cluster) Shuffle(phase string, sendBytes [][]int64) {
	if len(sendBytes) != c.w {
		panic(fmt.Sprintf("cluster: shuffle matrix has %d rows for %d workers", len(sendBytes), c.w))
	}
	var total int64
	var busiest float64
	for i := 0; i < c.w; i++ {
		var out, in int64
		for j := 0; j < c.w; j++ {
			if i != j {
				out += sendBytes[i][j]
				in += sendBytes[j][i]
			}
		}
		total += out
		if v := float64(out + in); v > busiest {
			busiest = v
		}
	}
	c.stats.addComm(phase, OpShuffle, total, c.simTime(c.w-1, busiest))
	c.shadow(phase, func(send [][]int64) {
		for i := 0; i < c.w; i++ {
			for j := 0; j < c.w; j++ {
				if i != j {
					send[i][j] = sendBytes[i][j]
				}
			}
		}
	})
}

// ChargeComm records a raw communication volume with an explicit simulated
// duration; used by components that model costs themselves. The volume is
// realized as shadow traffic spread evenly over all ordered worker pairs
// (remainder bytes to the lexicographically first pairs) on a distributed
// cluster. Callers must therefore invoke it with identical arguments at
// every rank — true for all in-tree callers, whose volumes derive from
// replicated state.
func (c *Cluster) ChargeComm(phase string, kind OpKind, bytes int64, seconds float64) {
	c.stats.addComm(phase, kind, bytes, seconds)
	c.shadow(phase, func(send [][]int64) {
		pairs := int64(c.w) * int64(c.w-1)
		base, rem := bytes/pairs, bytes%pairs
		for i := 0; i < c.w; i++ {
			for j := 0; j < c.w; j++ {
				if i == j {
					continue
				}
				send[i][j] = base
				if rem > 0 {
					send[i][j]++
					rem--
				}
			}
		}
	})
}

// shadow realizes a charge-only collective as real wire traffic: fill
// populates the send matrix (send[i][j] = bytes from rank i to rank j),
// which must come out identical at every rank. No-op on the simulation
// and on single-worker deployments.
func (c *Cluster) shadow(phase string, fill func(send [][]int64)) {
	if c.tr == nil || c.w == 1 {
		return
	}
	send := make([][]int64, c.w)
	for i := range send {
		send[i] = make([]int64, c.w)
	}
	fill(send)
	c.transportOp(phase, func() error { return c.tr.Shadow(phase, send) })
}

// localLen returns the shared length of the hosted locals.
func (c *Cluster) localLen(locals [][]float64) int {
	if len(locals) != c.w {
		panic(fmt.Sprintf("cluster: %d locals for %d workers", len(locals), c.w))
	}
	for _, l := range locals {
		if l != nil {
			return len(l)
		}
	}
	panic("cluster: no hosted locals")
}

// sumLocalInto element-wise sums the hosted workers' arrays into dst,
// overwriting it. Exactly the hosted workers' entries must be non-nil
// (all of them on the simulation), all sharing dst's length, and dst must
// not alias any local: it is cleared before the sum, so an aliased
// worker's contribution would silently vanish. The reduction adds workers
// in index order — the deterministic order every collective exposes, and
// the order a transport must reproduce on the wire.
func (c *Cluster) sumLocalInto(locals [][]float64, dst []float64) {
	if len(locals) != c.w {
		panic(fmt.Sprintf("cluster: %d locals for %d workers", len(locals), c.w))
	}
	n := len(dst)
	for w, l := range locals {
		if hosted := c.HostsWorker(w); hosted != (l != nil) {
			panic(fmt.Sprintf("cluster: worker %d hosted=%v but local present=%v", w, hosted, l != nil))
		}
		if l == nil {
			continue
		}
		if len(l) != n {
			panic(fmt.Sprintf("cluster: worker %d array has %d entries, dst has %d", w, len(l), n))
		}
		if n > 0 && &l[0] == &dst[0] {
			panic(fmt.Sprintf("cluster: dst aliases worker %d's array", w))
		}
	}
	clear(dst)
	for _, l := range locals {
		for i, v := range l {
			dst[i] += v
		}
	}
}

func ceilLog2(x int) int {
	n := 0
	for p := 1; p < x; p <<= 1 {
		n++
	}
	return n
}
