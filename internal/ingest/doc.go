// Package ingest is the dataset ingestion pipeline: chunked, parallel
// parsing of LibSVM and CSV sources, a streaming quantile-sketch pass that
// derives histogram bin boundaries while the data is read, and a
// versioned, columnar binned binary cache (.vbin) that lets warm runs skip
// parsing and binning entirely.
//
// # Pipeline
//
// ScanBlocks splits the input into fixed-size row blocks (complete lines),
// parses the blocks on a worker pool, and re-sequences the results so the
// consumer sees blocks in file order. Everything downstream is a consumer
// of that one block iterator:
//
//   - ReadDataset accumulates blocks into an in-memory Dataset — the same
//     matrix the single-threaded reference parser (datasets.ReadLibSVM)
//     produces, bit for bit.
//   - Ingest additionally feeds every value into per-feature
//     Greenwald–Khanna sketches (internal/sketch) as blocks arrive. Because
//     blocks are re-sequenced into row order first, the streaming pass
//     reproduces sketch.Canonical exactly, and the resulting candidate
//     splits are attached to the Dataset as a datasets.Prebin the trainer
//     adopts instead of re-sketching.
//
// Chunking bounds the parser's scratch memory, not the final matrix: the
// trainer needs the whole (binned) dataset resident, so ingestion still
// materializes it. What the pipeline removes is single-threaded parsing
// and the repeated sketch+bin work — and the cache below removes the parse
// itself.
//
// # The .vbin cache
//
// WriteCacheFile stores a dataset in binned columnar form: per-feature
// candidate splits, bin-width-packed (instance, bin) columns, and the
// label block, all little-endian with a versioned header and checksum (the
// byte-level specification lives in docs/DATA.md). ReadCacheFile
// reconstructs a Dataset whose values are bin representatives — each value
// re-bins to exactly the bin stored in the cache — with Prebin.Quantized
// set. Training such a dataset with the cache's (SketchEps, Q) parameters
// produces a model bit-identical to training from the original source
// file; training it with other parameters is rejected, because the source
// values needed to re-sketch are gone.
//
// Cached ties it together: it warm-loads a fresh cache when one exists and
// cold-ingests (then writes the cache) otherwise. The cache format is also
// the intended shard-exchange format for future distributed ingestion: a
// shard is just a .vbin file whose columns cover a feature group.
package ingest
