// Package systems maps the named GBDT systems of the paper's evaluation
// onto configured core trainers, reproducing each system's data-management
// policy (Section 4.1):
//
//	XGBoost      QD1: horizontal + column, instance-to-node index,
//	             all-reduce aggregation with leader-side split finding
//	LightGBM     QD2: horizontal + row, node-to-instance index,
//	             reduce-scatter aggregation (data-parallel mode)
//	LightGBM-FP  feature-parallel mode: full data copy per worker,
//	             per-feature-subset histograms, local node splitting
//	DimBoost     QD2 with parameter-server aggregation and server-side
//	             split finding; binary classification only
//	Yggdrasil    QD3: vertical + column with the column-wise
//	             node-to-instance index
//	QD3          the paper's optimized QD3 baseline (hybrid index)
//	Vero         QD4: vertical + row with the horizontal-to-vertical
//	             transformation — the paper's system
package systems

import (
	"fmt"
	"sort"

	"vero/internal/cluster"
	"vero/internal/core"
	"vero/internal/datasets"
)

// System names one of the evaluated GBDT systems.
type System string

// The systems compared in the paper's evaluation (Sections 5 and 6).
const (
	XGBoost    System = "xgboost"
	LightGBM   System = "lightgbm"
	LightGBMFP System = "lightgbm-fp"
	DimBoost   System = "dimboost"
	Yggdrasil  System = "yggdrasil"
	QD3Hybrid  System = "qd3"
	Vero       System = "vero"
)

// All returns every known system, sorted.
func All() []System {
	out := []System{XGBoost, LightGBM, LightGBMFP, DimBoost, Yggdrasil, QD3Hybrid, Vero}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// Describe returns a one-line summary of the system's policy.
func Describe(s System) string {
	switch s {
	case XGBoost:
		return "QD1 horizontal+column, all-reduce histograms, leader split finding"
	case LightGBM:
		return "QD2 horizontal+row, reduce-scatter histograms, subtraction"
	case LightGBMFP:
		return "feature-parallel: full copy per worker, local node splitting"
	case DimBoost:
		return "QD2 horizontal+row, parameter-server aggregation (binary only)"
	case Yggdrasil:
		return "QD3 vertical+column, column-wise node-to-instance index"
	case QD3Hybrid:
		return "QD3 vertical+column, hybrid index (paper's optimized baseline)"
	case Vero:
		return "QD4 vertical+row, horizontal-to-vertical transformation"
	default:
		return "unknown system"
	}
}

// ForQuadrant returns the quadrant's reference system — the named system
// occupying that quadrant of Figure 1 (the same mapping the trainer's
// auto-quadrant selection applies to the advisor's recommendation).
func ForQuadrant(q core.Quadrant) (System, error) {
	switch q {
	case core.QD1:
		return XGBoost, nil
	case core.QD2:
		return LightGBM, nil
	case core.QD3:
		return QD3Hybrid, nil
	case core.QD4:
		return Vero, nil
	}
	return "", fmt.Errorf("systems: no reference system for quadrant %v", q)
}

// Configure specializes a base configuration (hyper-parameters only) to
// the named system's data-management policy. It rejects workloads the real
// system cannot run, e.g. DimBoost with multi-classification.
func Configure(s System, base core.Config, ds *datasets.Dataset) (core.Config, error) {
	cfg := base
	switch s {
	// The quadrant reference systems share core's single copy of the
	// quadrant-to-policy mapping with auto-quadrant selection.
	case XGBoost:
		return core.ConfigureQuadrant(core.QD1, cfg)
	case LightGBM:
		return core.ConfigureQuadrant(core.QD2, cfg)
	case QD3Hybrid:
		return core.ConfigureQuadrant(core.QD3, cfg)
	case Vero:
		return core.ConfigureQuadrant(core.QD4, cfg)
	case LightGBMFP:
		cfg.Quadrant = core.QD4
		cfg.FullCopy = true
	case DimBoost:
		if ds.NumClass > 2 {
			return cfg, fmt.Errorf("systems: DimBoost only supports binary classification (dataset has %d classes)", ds.NumClass)
		}
		cfg.Quadrant = core.QD2
		cfg.Aggregation = core.AggParameterServer
	case Yggdrasil:
		cfg.Quadrant = core.QD3
		cfg.ColumnIndex = core.IndexColumnWise
	default:
		return cfg, fmt.Errorf("systems: unknown system %q", s)
	}
	return cfg, nil
}

// Train runs the named system on the dataset.
func Train(cl *cluster.Cluster, ds *datasets.Dataset, s System, base core.Config) (*core.Result, error) {
	cfg, err := Configure(s, base, ds)
	if err != nil {
		return nil, err
	}
	return core.Train(cl, ds, cfg)
}
