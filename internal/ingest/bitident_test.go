package ingest

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"vero/internal/cluster"
	"vero/internal/core"
	"vero/internal/datasets"
)

// encodeTrained trains with the given quadrant's reference policy and
// returns the serialized forest.
func encodeTrained(t *testing.T, ds *datasets.Dataset, q core.Quadrant, splits int) []byte {
	t.Helper()
	cfg, err := core.ConfigureQuadrant(q, core.Config{Trees: 4, Layers: 4, Splits: splits})
	if err != nil {
		t.Fatal(err)
	}
	res, err := core.Train(cluster.New(4, cluster.Gigabit()), ds, cfg)
	if err != nil {
		t.Fatal(err)
	}
	enc, err := res.Forest.Encode()
	if err != nil {
		t.Fatal(err)
	}
	return enc
}

// TestTrainFromCacheBitIdentical is the acceptance property of the cache:
// for every quadrant, training from the reconstructed .vbin dataset
// produces byte-identical model encodings to training from the source
// LibSVM text, and the cold chunked-ingest path (raw values + prebin)
// matches too.
func TestTrainFromCacheBitIdentical(t *testing.T) {
	_, text := sampleLibSVM(t, 300, 40, 2, 33)

	// Cold reference: the plain single-threaded parser, no prebin.
	ref, err := datasets.ReadLibSVM(strings.NewReader(text), 2)
	if err != nil {
		t.Fatal(err)
	}
	// Cold ingest: chunked parse with streaming sketches attached.
	cold, err := Ingest(strings.NewReader(text), Options{NumClass: 2, ChunkRows: 64})
	if err != nil {
		t.Fatal(err)
	}
	// Warm: through the binary cache.
	var buf bytes.Buffer
	if err := WriteCache(&buf, cold, cold.Prebin); err != nil {
		t.Fatal(err)
	}
	warm, err := ReadCache(bytes.NewReader(buf.Bytes()), "warm")
	if err != nil {
		t.Fatal(err)
	}

	for _, q := range []core.Quadrant{core.QD1, core.QD2, core.QD3, core.QD4} {
		want := encodeTrained(t, ref, q, 20)
		if got := encodeTrained(t, cold, q, 20); !bytes.Equal(got, want) {
			t.Fatalf("%v: cold-ingest model differs from reference", q)
		}
		if got := encodeTrained(t, warm, q, 20); !bytes.Equal(got, want) {
			t.Fatalf("%v: warm-cache model differs from reference", q)
		}
	}
}

// TestQuantizedParameterMismatchRejected: a cache-loaded dataset cannot
// be trained with different sketch parameters — the source values are
// gone, so the trainer must refuse rather than silently drift.
func TestQuantizedParameterMismatchRejected(t *testing.T) {
	_, text := sampleLibSVM(t, 100, 20, 2, 8)
	ds, err := Ingest(strings.NewReader(text), Options{NumClass: 2})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := WriteCache(&buf, ds, ds.Prebin); err != nil {
		t.Fatal(err)
	}
	warm, err := ReadCache(bytes.NewReader(buf.Bytes()), "warm")
	if err != nil {
		t.Fatal(err)
	}
	for _, q := range []core.Quadrant{core.QD1, core.QD4} {
		cfg, err := core.ConfigureQuadrant(q, core.Config{Trees: 2, Layers: 3, Splits: 16})
		if err != nil {
			t.Fatal(err)
		}
		_, err = core.Train(cluster.New(4, cluster.Gigabit()), warm, cfg)
		if err == nil || !strings.Contains(err.Error(), "re-ingest") {
			t.Fatalf("%v: err = %v, want parameter-mismatch rejection", q, err)
		}
	}
}

// TestRawPrebinMismatchFallsBack: a cold-ingested dataset still has its
// source values, so training with different parameters just re-sketches.
func TestRawPrebinMismatchFallsBack(t *testing.T) {
	_, text := sampleLibSVM(t, 150, 20, 2, 12)
	ref, err := datasets.ReadLibSVM(strings.NewReader(text), 2)
	if err != nil {
		t.Fatal(err)
	}
	cold, err := Ingest(strings.NewReader(text), Options{NumClass: 2}) // prebin at q=20
	if err != nil {
		t.Fatal(err)
	}
	want := encodeTrained(t, ref, core.QD2, 16)
	if got := encodeTrained(t, cold, core.QD2, 16); !bytes.Equal(got, want) {
		t.Fatal("fallback re-sketch model differs from reference")
	}
}

// TestCachedEndToEnd drives the whole warm path through the file system:
// source file -> Cached cold -> Cached warm -> identical models.
func TestCachedEndToEnd(t *testing.T) {
	dir := t.TempDir()
	_, text := sampleLibSVM(t, 200, 25, 2, 40)
	src := filepath.Join(dir, "train.libsvm")
	if err := writeFile(src, text); err != nil {
		t.Fatal(err)
	}
	opts := Options{NumClass: 2}
	cold, status, err := Cached(filepath.Join(dir, "cache"), src, opts)
	if err != nil || status != CacheCold {
		t.Fatalf("cold: %v %s", err, status)
	}
	warm, status, err := Cached(filepath.Join(dir, "cache"), src, opts)
	if err != nil || status != CacheWarm {
		t.Fatalf("warm: %v %s", err, status)
	}
	want := encodeTrained(t, cold, core.QD4, 20)
	if got := encodeTrained(t, warm, core.QD4, 20); !bytes.Equal(got, want) {
		t.Fatal("warm model differs from cold model")
	}
}

func writeFile(path, text string) error {
	return os.WriteFile(path, []byte(text), 0o644)
}
