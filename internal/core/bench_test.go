package core

import (
	"fmt"
	"testing"

	"vero/internal/cluster"
	"vero/internal/datasets"
)

// BenchmarkTrainTree isolates the per-tree training loop — gradient
// computation, histogram construction (the dominant phase), split finding
// and node splitting — from data preparation, so allocs/op reflects the
// steady-state loop rather than one-time sketching and binning. The
// repo-root BenchmarkTrainHist* suite measures the end-to-end picture.
func BenchmarkTrainTree(b *testing.B) {
	for _, c := range []int{2, 5} {
		name := "binary"
		if c > 2 {
			name = "multiclass"
		}
		ds, err := datasets.Synthetic(datasets.SyntheticConfig{
			N: 8000, D: 60, C: c,
			InformativeRatio: 0.3, Density: 0.3, LabelNoise: 0.05, Seed: 17,
		})
		if err != nil {
			b.Fatal(err)
		}
		for _, q := range []Quadrant{QD1, QD2, QD3, QD4} {
			b.Run(fmt.Sprintf("QD%d/%s", int(q), name), func(b *testing.B) {
				cl := cluster.New(4, cluster.Gigabit())
				t := newTestTrainer(b, cl, ds, Config{Quadrant: q, Trees: 1, Layers: 6, Splits: 20})
				t.allocRunState(t.obj.InitScore(ds.Labels))
				t.computeGradients()
				b.ReportAllocs()
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					t.trainTree()
				}
			})
		}
	}
}
