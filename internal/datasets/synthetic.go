package datasets

import (
	"fmt"
	"math/rand"

	"vero/internal/sparse"
)

// Task enumerates the supported learning tasks.
type Task string

// Supported task kinds.
const (
	TaskRegression Task = "regression"
	TaskBinary     Task = "binary"
	TaskMulti      Task = "multi"
)

// Dataset couples a feature matrix with labels.
type Dataset struct {
	Name     string
	X        *sparse.CSR
	Labels   []float32
	NumClass int // 1 for regression, 2 for binary, C for multi-class
	Task     Task
	// Prebin, when non-nil, carries candidate splits derived during
	// ingestion; a trainer with matching sketch parameters adopts them
	// instead of re-sketching. Split keeps it on the halves of a
	// quantized dataset (the splits stay authoritative for subsets of
	// cache-reconstructed values) and drops it for raw datasets.
	Prebin *Prebin
	// Blocks, when non-nil with X nil, serves the binned matrix from
	// out-of-core storage; see BlockSource.
	Blocks BlockSource
	// Shard, when non-nil, marks this dataset as one rank's shard of a
	// larger global image: X keeps the global shape but holds entries only
	// inside the shard's row or column range (labels and candidate splits
	// stay full — every quadrant needs them). See Shard.
	Shard *Shard
}

// NumInstances returns N.
func (d *Dataset) NumInstances() int {
	if d.OutOfCore() {
		return d.Blocks.Rows()
	}
	return d.X.Rows()
}

// NumFeatures returns D.
func (d *Dataset) NumFeatures() int {
	if d.OutOfCore() {
		return d.Blocks.Cols()
	}
	return d.X.Cols()
}

// SyntheticConfig parametrizes the paper's generator.
type SyntheticConfig struct {
	N, D, C          int
	InformativeRatio float64 // p: fraction of features with nonzero weights
	Density          float64 // phi: expected fraction of nonzero features per instance
	Seed             int64
	// LabelNoise flips this fraction of labels uniformly at random
	// (classification only). The paper's generator is noise-free; a small
	// noise level makes convergence curves realistic.
	LabelNoise float64
	// InformativeBoost is the probability that a sampled feature is drawn
	// from the informative set rather than uniformly — the way frequent
	// words carry the signal in real high-dimensional text corpora (RCV1).
	// Zero keeps the paper's uniform sampling; high-dimensional simulacra
	// use a small boost so their labels are learnable at laptop N.
	InformativeBoost float64
}

// validate normalizes and checks the configuration.
func (c *SyntheticConfig) validate() error {
	if c.N <= 0 || c.D <= 0 {
		return fmt.Errorf("datasets: invalid shape N=%d D=%d", c.N, c.D)
	}
	if c.C < 2 {
		return fmt.Errorf("datasets: synthetic classification needs C >= 2, got %d", c.C)
	}
	if c.InformativeRatio <= 0 || c.InformativeRatio > 1 {
		return fmt.Errorf("datasets: informative ratio %v out of (0,1]", c.InformativeRatio)
	}
	if c.Density <= 0 || c.Density > 1 {
		return fmt.Errorf("datasets: density %v out of (0,1]", c.Density)
	}
	return nil
}

// Synthetic generates a classification dataset per the paper's process
// (Section 5.2, p = phi = 0.2 in their experiments).
func Synthetic(cfg SyntheticConfig) (*Dataset, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	rng := rand.New(rand.NewSource(cfg.Seed))

	// Informative feature set: pD features carry nonzero weight rows.
	nInf := int(cfg.InformativeRatio * float64(cfg.D))
	if nInf < 1 {
		nInf = 1
	}
	perm := rng.Perm(cfg.D)[:nInf]
	weights := make(map[int][]float64, nInf)
	for _, f := range perm {
		row := make([]float64, cfg.C)
		for k := range row {
			row[k] = rng.NormFloat64()
		}
		weights[f] = row
	}

	b := sparse.NewCSRBuilder(cfg.D)
	labels := make([]float32, cfg.N)
	scores := make([]float64, cfg.C)
	kvs := make([]sparse.KV, 0, int(cfg.Density*float64(cfg.D))+8)
	nnzPerRow := int(cfg.Density * float64(cfg.D))
	if nnzPerRow < 1 {
		nnzPerRow = 1
	}
	for i := 0; i < cfg.N; i++ {
		kvs = kvs[:0]
		for k := range scores {
			scores[k] = 0
		}
		// Sample nnzPerRow distinct features via rejection on a
		// light-weight set to stay O(nnz).
		seen := make(map[int]struct{}, nnzPerRow)
		for len(seen) < nnzPerRow {
			var f int
			if cfg.InformativeBoost > 0 && rng.Float64() < cfg.InformativeBoost {
				f = perm[rng.Intn(len(perm))]
			} else {
				f = rng.Intn(cfg.D)
			}
			if _, dup := seen[f]; dup {
				continue
			}
			seen[f] = struct{}{}
			v := rng.NormFloat64()
			kvs = append(kvs, sparse.KV{Index: uint32(f), Value: float32(v)})
			if w, ok := weights[f]; ok {
				for k := range scores {
					scores[k] += v * w[k]
				}
			}
		}
		best := 0
		for k := 1; k < cfg.C; k++ {
			if scores[k] > scores[best] {
				best = k
			}
		}
		if cfg.LabelNoise > 0 && rng.Float64() < cfg.LabelNoise {
			best = rng.Intn(cfg.C)
		}
		labels[i] = float32(best)
		if err := b.AddRow(kvs); err != nil {
			return nil, err
		}
	}
	task := TaskMulti
	if cfg.C == 2 {
		task = TaskBinary
	}
	return &Dataset{
		Name:     fmt.Sprintf("synthetic-n%d-d%d-c%d", cfg.N, cfg.D, cfg.C),
		X:        b.Build(),
		Labels:   labels,
		NumClass: cfg.C,
		Task:     task,
	}, nil
}

// SyntheticRegression generates a regression dataset y = x.w + noise from
// the same sparse-feature process.
func SyntheticRegression(n, d int, density float64, noise float64, seed int64) (*Dataset, error) {
	cfg := SyntheticConfig{N: n, D: d, C: 2, InformativeRatio: 1, Density: density, Seed: seed}
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	rng := rand.New(rand.NewSource(seed))
	w := make([]float64, d)
	for i := range w {
		w[i] = rng.NormFloat64()
	}
	b := sparse.NewCSRBuilder(d)
	labels := make([]float32, n)
	nnzPerRow := int(density * float64(d))
	if nnzPerRow < 1 {
		nnzPerRow = 1
	}
	for i := 0; i < n; i++ {
		var kvs []sparse.KV
		seen := make(map[int]struct{}, nnzPerRow)
		var y float64
		for len(seen) < nnzPerRow {
			f := rng.Intn(d)
			if _, dup := seen[f]; dup {
				continue
			}
			seen[f] = struct{}{}
			v := rng.NormFloat64()
			kvs = append(kvs, sparse.KV{Index: uint32(f), Value: float32(v)})
			y += v * w[f]
		}
		labels[i] = float32(y + noise*rng.NormFloat64())
		if err := b.AddRow(kvs); err != nil {
			return nil, err
		}
	}
	return &Dataset{
		Name:     fmt.Sprintf("synthetic-reg-n%d-d%d", n, d),
		X:        b.Build(),
		Labels:   labels,
		NumClass: 1,
		Task:     TaskRegression,
	}, nil
}

// Split partitions the dataset into train and validation parts by a
// deterministic shuffled split. frac is the training fraction.
func (d *Dataset) Split(frac float64, seed int64) (train, valid *Dataset) {
	n := d.NumInstances()
	perm := rand.New(rand.NewSource(seed)).Perm(n)
	nTrain := int(frac * float64(n))
	build := func(ids []int, suffix string) *Dataset {
		b := sparse.NewCSRBuilder(d.NumFeatures())
		labels := make([]float32, 0, len(ids))
		for _, i := range ids {
			feat, val := d.X.Row(i)
			kvs := make([]sparse.KV, len(feat))
			for k := range feat {
				kvs[k] = sparse.KV{Index: feat[k], Value: val[k]}
			}
			if err := b.AddRow(kvs); err != nil {
				panic(err) // indices already validated by source matrix
			}
			labels = append(labels, d.Labels[i])
		}
		out := &Dataset{
			Name:     d.Name + suffix,
			X:        b.Build(),
			Labels:   labels,
			NumClass: d.NumClass,
			Task:     d.Task,
		}
		// A quantized dataset's values are bin representatives: its splits
		// stay authoritative for any subset (re-sketching representatives
		// is exactly what Prebin.Quantized guards against), so the halves
		// inherit the prebin. Raw datasets drop it — re-sketching a raw
		// subset is the correct canonical behavior.
		if d.Prebin != nil && d.Prebin.Quantized {
			out.Prebin = d.Prebin
		}
		return out
	}
	return build(perm[:nTrain], "-train"), build(perm[nTrain:], "-valid")
}
